/**
 * @file
 * ghrp-served: the long-running sweep-serving daemon.
 *
 *   ghrp-served --socket PATH --journal-dir DIR [--jobs N]
 *               [--total-threads N] [--max-active N]
 *               [--max-queue N] [--trace-cache DIR]
 *               [--fsync every|close|off] [--start-paused] [--quiet]
 *               [--log-level quiet|warn|info] [--trace-out FILE]
 *
 * Listens on a unix-domain socket for ghrp-client requests (see
 * src/service/protocol.hh), executes submitted sweeps concurrently on
 * one shared simulation pool — --total-threads is the global thread
 * budget every running job leases from, --max-active bounds how many
 * jobs run at once (1 restores the old serial daemon) and --jobs is
 * the default per-job thread request — journals every completed leg
 * under --journal-dir and serves the finished ghrp-run-report JSON
 * back. SIGTERM/SIGINT drain the in-flight jobs at their next leg
 * boundary and exit; restarting over the same --journal-dir resumes
 * every unfinished job from its last durable leg.
 *
 * --start-paused brings the daemon up with its scheduler paused: it
 * accepts, queues and journals submissions but runs nothing. Meant for
 * fault-injection harnesses (CI kills a paused daemon to force shard
 * retry at a deterministic point); there is no unpause request, so a
 * paused daemon only ever drains after a restart.
 *
 * With --trace-out, span recording stays on for the daemon's entire
 * lifetime and a Chrome trace_event JSON covering every served job is
 * written on clean shutdown. Live metrics are always available through
 * `ghrp-client metrics` — no flag needed.
 *
 * Exit codes: 0 clean shutdown, 2 startup/usage error.
 */

#include <csignal>
#include <cstdio>

#include "core/cli.hh"
#include "service/server.hh"
#include "telemetry/span.hh"
#include "util/logging.hh"

namespace
{

ghrp::service::ServiceServer *activeServer = nullptr;

void
handleSignal(int)
{
    if (activeServer)
        activeServer->requestStop();  // async-signal-safe
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace ghrp;

    const core::CliOptions cli(argc, argv);
    core::applyLogLevel(cli);
    telemetry::setThreadName("main");
    const std::string trace_out = cli.getString("trace-out", "");
    if (!trace_out.empty())
        telemetry::setTracingEnabled(true);

    service::ServerConfig config;
    config.socketPath = cli.getString("socket", "");
    config.journalDir = cli.getString("journal-dir", "");
    config.traceCacheDir = cli.getString("trace-cache", "");
    config.jobs = static_cast<unsigned>(cli.getUint("jobs", 0));
    config.totalThreads =
        static_cast<unsigned>(cli.getUint("total-threads", 0));
    config.maxActiveJobs =
        static_cast<unsigned>(cli.getUint("max-active", 0));
    config.maxQueue = static_cast<std::size_t>(cli.getUint("max-queue", 8));
    config.startPaused = cli.has("start-paused");

    if (config.socketPath.empty() || config.journalDir.empty()) {
        std::fprintf(stderr,
                     "usage: ghrp-served --socket PATH --journal-dir DIR"
                     " [--jobs N] [--total-threads N] [--max-active N]"
                     " [--max-queue N] [--trace-cache DIR]"
                     " [--fsync every|close|off] [--start-paused]"
                     " [--quiet] [--log-level L] [--trace-out FILE]\n");
        return 2;
    }

    try {
        config.fsync =
            service::parseFsyncPolicy(cli.getString("fsync", "every"));

        service::ServiceServer server(std::move(config));
        server.start();

        activeServer = &server;
        std::signal(SIGTERM, handleSignal);
        std::signal(SIGINT, handleSignal);
        std::signal(SIGPIPE, SIG_IGN);

        server.run();
        activeServer = nullptr;

        if (!trace_out.empty() &&
            !telemetry::writeChromeTrace(trace_out))
            warn("cannot write trace '%s'", trace_out.c_str());
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "ghrp-served: %s\n", e.what());
        return 2;
    }
}

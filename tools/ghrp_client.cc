/**
 * @file
 * ghrp-client: command-line client of the sweep-serving daemon.
 *
 *   ghrp-client submit --socket PATH [--experiment NAME] [--traces N]
 *       [--seed S] [--instructions M] [--jobs N] [--fused]
 *       [--phase-window N] [--priority P] [--timeout SEC] [--wait]
 *       [--out FILE]
 *       Submit a suite sweep (fig03-style defaults). With --wait,
 *       stream progress until the job finishes, then fetch the run
 *       report (to --out FILE, else stdout). The wait loop reconnects
 *       with exponential backoff, so it survives a daemon restart.
 *       --phase-window enables the flight recorder on the daemon side;
 *       the records land in the report and stream to watchers.
 *
 *   ghrp-client status --socket PATH --job ID
 *   ghrp-client watch  --socket PATH --job ID [--phases]
 *       Stream progress until the job finishes. With --phases, each
 *       progress frame's flight-recorder record (protocol minor 3) is
 *       rendered as a rolling interval I-cache MPKI / direction
 *       accuracy readout of the latest finished leg.
 *   ghrp-client result --socket PATH --job ID [--out FILE]
 *   ghrp-client cancel --socket PATH --job ID
 *   ghrp-client ping   --socket PATH
 *   ghrp-client metrics --socket PATH [--prometheus] [--out FILE]
 *       [--watch SECS]
 *       Fetch the daemon's live telemetry snapshot: queue depth, job
 *       wait/run histograms, trace-store hit counters, journal fsync
 *       latency, service.jobs_failed, service.uptime_seconds. Default
 *       output is the snapshot JSON; --prometheus renders Prometheus
 *       text exposition instead. --watch refreshes every SECS seconds
 *       (reconnecting across daemon restarts) until interrupted and
 *       prints a one-line uptime/failure health summary per refresh,
 *       so scheduler behaviour is observable live.
 *   ghrp-client shutdown --socket PATH
 *
 *   ghrp-client sweep (--daemons S1,S2,... | --daemons-file FILE)
 *       [--experiment NAME] [--traces N] [--instructions M] [--fused]
 *       [--seeds A,B,...] [--policies P,Q,...] [--shard-attempts N]
 *       [--poll-ms MS] [--timeout SEC] [--out-dir DIR | --out FILE]
 *       Expand the (seeds x policies) grid into per-policy shards,
 *       load-balance them across the daemon pool using live telemetry,
 *       retry shards lost to daemon crashes, and merge each seed
 *       cell's shard reports into the document an in-process run
 *       would have produced (bit-identical per leg). One cell goes to
 *       --out/stdout; multiple cells require --out-dir.
 *
 * Exit codes: 0 success, 1 job failed/cancelled or rejected,
 * 2 usage or connection error.
 */

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "core/cli.hh"
#include "report/report.hh"
#include "report/telemetry_json.hh"
#include "service/client.hh"
#include "service/sweep.hh"
#include "telemetry/exposition.hh"
#include "util/logging.hh"

namespace
{

using namespace ghrp;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: ghrp-client submit --socket PATH [--experiment NAME]\n"
        "           [--traces N] [--seed S] [--instructions M] [--jobs N]\n"
        "           [--fused] [--phase-window N] [--priority P]\n"
        "           [--timeout SEC] [--wait] [--out FILE]\n"
        "       ghrp-client status|watch|result|cancel --socket PATH"
        " --job ID [--out FILE] [--phases]\n"
        "       ghrp-client metrics --socket PATH [--prometheus]"
        " [--out FILE] [--watch SECS]\n"
        "       ghrp-client ping|shutdown --socket PATH\n"
        "       ghrp-client sweep (--daemons LIST | --daemons-file F)\n"
        "           [--experiment NAME] [--traces N] [--instructions M]\n"
        "           [--fused] [--seeds A,B,...] [--policies P,Q,...]\n"
        "           [--shard-attempts N] [--poll-ms MS] [--timeout SEC]\n"
        "           [--out-dir DIR | --out FILE]\n");
    return 2;
}

/** Split a comma-separated list, dropping empty tokens. */
std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream stream(text);
    std::string token;
    while (std::getline(stream, token, ','))
        if (!token.empty())
            out.push_back(token);
    return out;
}

/** Write @p text to --out FILE, or stdout when no flag was given. */
void
emit(const core::CliOptions &cli, const std::string &text)
{
    const std::string out = cli.getString("out", "");
    if (out.empty()) {
        std::fputs(text.c_str(), stdout);
        return;
    }
    std::ofstream file(out);
    if (!file || !(file << text))
        throw service::ProtocolError("cannot write '" + out + "'");
    std::fprintf(stderr, "wrote %s\n", out.c_str());
}

/** Fetch the finished job's report and emit it. */
int
fetchResult(service::ServiceClient &client, const core::CliOptions &cli,
            const std::string &job)
{
    report::Json request = service::makeMessage("result");
    request.set("job", job);
    const report::Json reply = client.request(request);
    if (service::checkMessage(reply) != "result")
        throw service::ProtocolError("unexpected reply to result");
    emit(cli, reply.at("report").dump(2) + "\n");
    return 0;
}

/**
 * Follow @p job until it reaches a terminal state, printing progress
 * to stderr. Survives daemon restarts: on EOF the watch reconnects
 * with backoff and re-issues the request (the restarted daemon knows
 * the job from its journal).
 */
int
followJob(service::ServiceClient &client, const std::string &job,
          bool fetch, const core::CliOptions &cli)
{
    // Fallback clock for daemons that predate the elapsedSeconds
    // progress member (protocol minor 1): wall time since the watch
    // began rather than since the job started running.
    const auto watch_start = std::chrono::steady_clock::now();

    while (true) {
        report::Json request = service::makeMessage("watch");
        request.set("job", job);
        client.send(request);

        while (true) {
            std::optional<report::Json> message = client.receive();
            if (!message)
                break;  // connection lost: reconnect below
            const std::string type = service::checkMessage(*message);
            if (type == "progress") {
                const auto completed = message->at("completed").asUint();
                const auto total = message->at("total").asUint();
                double elapsed = std::chrono::duration<double>(
                                     std::chrono::steady_clock::now() -
                                     watch_start)
                                     .count();
                if (const report::Json *e =
                        message->find("elapsedSeconds"))
                    elapsed = e->asDouble();
                const double rate =
                    elapsed > 0.0
                        ? static_cast<double>(completed) / elapsed
                        : 0.0;
                // Rolling flight-recorder readout (--phases): the
                // newest phase record of the latest finished leg,
                // attached by protocol-minor-3 daemons.
                std::string phase_text;
                const report::Json *phase = message->find("phase");
                if (cli.has("phases") && phase) {
                    const double span =
                        static_cast<double>(
                            phase->at("phaseWindow").asUint()) *
                        static_cast<double>(
                            phase->at("stride").asUint());
                    const double mpki =
                        span > 0.0
                            ? static_cast<double>(
                                  phase->at("icacheMisses").asUint()) *
                                  1000.0 / span
                            : 0.0;
                    const std::uint64_t branches =
                        phase->at("condBranches").asUint();
                    const double accuracy =
                        branches
                            ? 100.0 *
                                  (1.0 -
                                   static_cast<double>(
                                       phase->at("condMispredicts")
                                           .asUint()) /
                                       static_cast<double>(branches))
                            : 0.0;
                    char buf[160];
                    std::snprintf(
                        buf, sizeof(buf),
                        " | %s/%s w%llu I$ %.2f MPKI dir %.1f%%",
                        phase->at("trace").asString().c_str(),
                        phase->at("policy").asString().c_str(),
                        static_cast<unsigned long long>(
                            phase->at("window").asUint()),
                        mpki, accuracy);
                    phase_text = buf;
                }
                std::fprintf(
                    stderr, "\r[%llu/%llu] %6.1fs %6.1f legs/s %-40s%s",
                    static_cast<unsigned long long>(completed),
                    static_cast<unsigned long long>(total),
                    elapsed, rate,
                    message->at("leg").asString().c_str(),
                    phase_text.c_str());
                continue;
            }
            if (type == "error")
                throw service::ProtocolError(
                    message->at("error").asString());
            if (type != "jobStatus")
                continue;
            const std::string state = message->at("state").asString();
            if (state == "queued" || state == "running")
                continue;
            std::fprintf(stderr, "\n%s: %s\n", job.c_str(),
                         state.c_str());
            if (state != "done") {
                if (const report::Json *e = message->find("error"))
                    std::fprintf(stderr, "%s\n",
                                 e->asString().c_str());
                return 1;
            }
            return fetch ? fetchResult(client, cli, job) : 0;
        }

        std::fprintf(stderr,
                     "\nghrp-client: connection lost, reconnecting...\n");
        if (!client.connect(60.0))
            throw service::ProtocolError(
                "could not reconnect to " + client.socketPath());
    }
}

int
cmdSubmit(service::ServiceClient &client, const core::CliOptions &cli)
{
    // fig03-style defaults: the paper's five policies over the
    // standard suite, default front-end geometry.
    core::SuiteOptions options;
    options.numTraces =
        static_cast<std::uint32_t>(cli.getUint("traces", 24));
    options.baseSeed = cli.getUint("seed", 42);
    options.instructionOverride = cli.getUint("instructions", 0);
    options.jobs = static_cast<unsigned>(cli.getUint("jobs", 0));
    options.fused = cli.has("fused");
    options.base.phaseWindow = cli.getUint("phase-window", 0);

    report::Json request = service::makeMessage("submit");
    request.set("experiment",
                cli.getString("experiment", "fig03_icache_scurve"));
    request.set("options", report::suiteOptionsToJson(options));
    request.set("priority",
                static_cast<std::int64_t>(cli.getUint("priority", 0)));
    request.set("timeoutSeconds", cli.getDouble("timeout", 0.0));

    const report::Json reply = client.request(request);
    const std::string type = service::checkMessage(reply);
    if (type == "rejected") {
        std::fprintf(stderr, "rejected: %s\n",
                     reply.at("reason").asString().c_str());
        if (const report::Json *retry = reply.find("retryAfterSeconds"))
            std::fprintf(stderr, "retry after %llus\n",
                         static_cast<unsigned long long>(
                             retry->asUint()));
        return 1;
    }
    if (type != "submitted")
        throw service::ProtocolError("unexpected reply to submit");

    const std::string job = reply.at("job").asString();
    std::fprintf(stderr, "submitted %s\n", job.c_str());
    if (!cli.has("wait")) {
        std::printf("%s\n", job.c_str());
        return 0;
    }
    return followJob(client, job, true, cli);
}

/**
 * Fetch the daemon's live telemetry snapshot: JSON by default,
 * Prometheus text exposition with --prometheus.
 */
int
cmdMetrics(service::ServiceClient &client, const core::CliOptions &cli)
{
    const double watch = cli.getDouble("watch", 0.0);
    while (true) {
        const report::Json reply =
            client.request(service::makeMessage("metrics"));
        if (service::checkMessage(reply) != "metrics")
            throw service::ProtocolError("unexpected reply to metrics");
        const report::Json &snapshot_json = reply.at("metrics");
        if (cli.has("prometheus")) {
            const telemetry::Snapshot snapshot =
                report::telemetryFromJson(snapshot_json);
            emit(cli, telemetry::renderPrometheus(snapshot));
        } else {
            emit(cli, snapshot_json.dump(2) + "\n");
        }
        if (watch <= 0.0)
            return 0;
        {
            // One-line daemon health summary per refresh, so a
            // dashboard tailing stderr sees uptime and failures
            // without parsing the snapshot.
            const telemetry::Snapshot snapshot =
                report::telemetryFromJson(snapshot_json);
            double uptime = 0.0;
            std::uint64_t failed = 0;
            if (const auto it =
                    snapshot.gauges.find("service.uptime_seconds");
                it != snapshot.gauges.end())
                uptime = it->second;
            if (const auto it =
                    snapshot.counters.find("service.jobs_failed");
                it != snapshot.counters.end())
                failed = it->second;
            std::fprintf(stderr,
                         "[health] uptime %.0fs, %llu job(s) failed\n",
                         uptime,
                         static_cast<unsigned long long>(failed));
        }
        // Each refresh must reach a redirected stdout immediately —
        // a dashboard pipe should not lag a block-buffer behind.
        std::fflush(stdout);
        std::this_thread::sleep_for(
            std::chrono::duration<double>(watch));
        // Survive a daemon restart between refreshes.
        if (!client.connected() && !client.connect(watch + 5.0))
            throw service::ProtocolError("lost connection to " +
                                         client.socketPath());
    }
}

int
cmdSweep(const core::CliOptions &cli)
{
    namespace fs = std::filesystem;

    service::SweepOptions options;
    options.daemons = splitList(cli.getString("daemons", ""));
    const std::string daemons_file = cli.getString("daemons-file", "");
    if (!daemons_file.empty()) {
        const std::vector<std::string> discovered =
            service::readDaemonsFile(daemons_file);
        options.daemons.insert(options.daemons.end(), discovered.begin(),
                               discovered.end());
    }
    if (options.daemons.empty()) {
        std::fprintf(stderr, "ghrp-client sweep: --daemons or "
                             "--daemons-file required\n");
        return 2;
    }
    options.maxAttempts =
        static_cast<unsigned>(cli.getUint("shard-attempts", 3));
    options.pollSeconds = cli.getDouble("poll-ms", 200.0) / 1000.0;
    options.campaignTimeoutSeconds = cli.getDouble("timeout", 0.0);
    options.verbose = true;  // inform() already honors --log-level

    service::SweepGrid grid;
    grid.experiment =
        cli.getString("experiment", "fig03_icache_scurve");
    grid.base.numTraces =
        static_cast<std::uint32_t>(cli.getUint("traces", 24));
    grid.base.instructionOverride = cli.getUint("instructions", 0);
    grid.base.fused = cli.has("fused");
    for (const std::string &token :
         splitList(cli.getString("seeds", "42")))
        grid.seeds.push_back(std::stoull(token));
    grid.policies =
        frontend::parsePolicyList(cli.getString("policies", ""));

    const service::SweepOutcome outcome =
        service::runSweepCampaign(grid, options);
    std::fprintf(stderr,
                 "sweep: %zu shard(s), %zu resubmit(s), %zu cell "
                 "report(s)\n",
                 outcome.shards, outcome.resubmits,
                 outcome.cells.size());

    const std::string out_dir = cli.getString("out-dir", "");
    if (out_dir.empty()) {
        if (outcome.cells.size() != 1) {
            std::fprintf(stderr, "ghrp-client sweep: %zu cell reports "
                                 "need --out-dir\n",
                         outcome.cells.size());
            return 2;
        }
        emit(cli, outcome.cells.front().toJson().dump(2) + "\n");
        return 0;
    }
    fs::create_directories(out_dir);
    for (std::size_t i = 0; i < outcome.cells.size(); ++i) {
        const std::string path =
            out_dir + "/" + grid.experiment + "-seed" +
            std::to_string(outcome.cellOptions[i].baseSeed) +
            ".report.json";
        outcome.cells[i].write(path);
        std::fprintf(stderr, "wrote %s\n", path.c_str());
    }
    return 0;
}

int
cmdSimple(service::ServiceClient &client, const core::CliOptions &cli,
          const std::string &type)
{
    report::Json request = service::makeMessage(type);
    if (type != "ping" && type != "shutdown")
        request.set("job", cli.getString("job", ""));
    const report::Json reply = client.request(request);
    std::printf("%s\n", reply.dump(2).c_str());
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    // argv[1] (the subcommand) takes the program-name slot so the flag
    // parser sees only the remaining --flag arguments.
    const core::CliOptions cli(argc - 1, argv + 1);
    core::applyLogLevel(cli);

    if (command == "sweep") {
        try {
            return cmdSweep(cli);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "ghrp-client: %s\n", e.what());
            return 2;
        }
    }

    const std::string socket = cli.getString("socket", "");
    if (socket.empty())
        return usage();

    try {
        service::ServiceClient client(socket);
        if (!client.connect(cli.getDouble("timeout", 10.0))) {
            std::fprintf(stderr, "ghrp-client: cannot connect to %s\n",
                         socket.c_str());
            return 2;
        }

        if (command == "submit")
            return cmdSubmit(client, cli);
        if (command == "status" || command == "cancel")
            return cmdSimple(client, cli,
                             command == "status" ? "status" : "cancel");
        if (command == "watch")
            return followJob(client, cli.getString("job", ""), false,
                             cli);
        if (command == "result")
            return fetchResult(client, cli, cli.getString("job", ""));
        if (command == "metrics")
            return cmdMetrics(client, cli);
        if (command == "ping" || command == "shutdown")
            return cmdSimple(client, cli, command);
        return usage();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "ghrp-client: %s\n", e.what());
        return 2;
    }
}

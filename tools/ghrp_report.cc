/**
 * @file
 * ghrp-report: command-line consumer of ghrp-run-report JSON files.
 *
 *   ghrp-report render FILE...  [--splice DOC] [--check-docs DOC]
 *       Print each report's Markdown block (markers included). With
 *       --splice, rewrite DOC's marked blocks in place instead; with
 *       --check-docs, byte-compare each block against DOC and fail on
 *       drift (exit 1) — the CI guard that EXPERIMENTS.md matches the
 *       committed seed reports.
 *
 *   ghrp-report diff BASELINE CANDIDATE [--check] [--max-regress PCT]
 *       Per-policy MPKI deltas and sweep-throughput comparison. With
 *       --check, exit 1 when any MPKI changed (simulation is
 *       deterministic — a delta is a code change) or when legs/s
 *       regressed by more than PCT (default 5).
 *
 *   ghrp-report trajectory FILE... [--out-dir DIR]
 *       Write BENCH_<name>.json trajectory points (throughput,
 *       per-policy MPKI, set-dueling winner flips) for benchmark
 *       tracking. Reports that fail to load or parse are skipped with
 *       a warning instead of aborting the whole emission; exit 1 only
 *       when every input was skipped.
 *
 *   ghrp-report plot FILE... [--out-dir DIR]
 *       Regenerate gnuplot S-curve sources from each report's legs:
 *       an <experiment>_<structure>.dat rank table plus a .gp script
 *       per structure (icache, btb) that saw accesses, and a
 *       psel_<trace>.dat/.gp PSEL trajectory per trace with
 *       set-dueling legs. Run `gnuplot <experiment>_icache.gp` to
 *       render the PNG.
 *
 *   ghrp-report phases FILE... [--out-dir DIR] [--check]
 *   ghrp-report phases --diff A B
 *       Render each report's flight-recorder phase trajectories as
 *       ASCII sparklines, one block per leg (interval I-cache/BTB
 *       MPKI, direction mispredict rate, dead-eviction share, duel
 *       PSEL). With --out-dir, also write phase_<trace>_<policy>.dat
 *       gnuplot tables plus a phase_<experiment>.gp overlay script.
 *       With --check, validate the records instead (some leg carries
 *       them; window ids and instruction commits strictly monotone;
 *       the 128-record decimation bound holds) — the CI gate on the
 *       perf-smoke fig03 report. With --diff, align two reports'
 *       trajectories and print one line per per-window I-cache MPKI
 *       winner flip.
 *
 *   ghrp-report check-telemetry FILE...
 *       Verify each report carries a parseable extras.telemetry
 *       snapshot (schema minor >= 2); exit 1 when any is missing or
 *       malformed — the CI gate that benches keep embedding telemetry.
 *
 *   ghrp-report check-docs DOC
 *       Verify the policy-authoring guide mentions every registered
 *       replacement policy name plus the duel:<A>,<B> composition
 *       syntax; exit 1 listing what is missing — the CI gate that
 *       docs/ADDING_A_POLICY.md keeps up with the registry.
 *
 * Exit codes: 0 success, 1 gate/drift failure, 2 usage or load error.
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "frontend/frontend.hh"
#include "report/render.hh"
#include "report/report.hh"
#include "report/telemetry_json.hh"

namespace
{

using namespace ghrp;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: ghrp-report render FILE... [--splice DOC] "
        "[--check-docs DOC]\n"
        "       ghrp-report diff BASELINE CANDIDATE [--check] "
        "[--max-regress PCT]\n"
        "       ghrp-report trajectory FILE... [--out-dir DIR]\n"
        "       ghrp-report plot FILE... [--out-dir DIR]\n"
        "       ghrp-report phases FILE... [--out-dir DIR] [--check]\n"
        "       ghrp-report phases --diff A B\n"
        "       ghrp-report check-telemetry FILE...\n"
        "       ghrp-report check-docs DOC\n");
    return 2;
}

std::string
readFile(const std::string &path)
{
    std::ifstream file(path);
    if (!file)
        throw report::ReportError("cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return buffer.str();
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream file(path);
    if (!file)
        throw report::ReportError("cannot open '" + path +
                                  "' for writing");
    file << text;
    if (!file)
        throw report::ReportError("write to '" + path + "' failed");
}

/** The marked block of @p experiment inside @p document, markers
 *  included; empty when either marker is missing. */
std::string
extractBlock(const std::string &document, const std::string &experiment)
{
    const std::string begin = report::beginMarker(experiment);
    const std::string end = report::endMarker(experiment);
    const std::size_t begin_pos = document.find(begin);
    if (begin_pos == std::string::npos)
        return "";
    const std::size_t end_pos = document.find(end, begin_pos);
    if (end_pos == std::string::npos)
        return "";
    return document.substr(begin_pos, end_pos + end.size() - begin_pos);
}

int
cmdRender(const std::vector<std::string> &args)
{
    std::vector<std::string> files;
    std::string splice_doc, check_doc;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--splice" && i + 1 < args.size())
            splice_doc = args[++i];
        else if (args[i] == "--check-docs" && i + 1 < args.size())
            check_doc = args[++i];
        else if (args[i].rfind("--", 0) == 0)
            return usage();
        else
            files.push_back(args[i]);
    }
    if (files.empty() || (!splice_doc.empty() && !check_doc.empty()))
        return usage();

    if (!splice_doc.empty()) {
        std::string document = readFile(splice_doc);
        for (const std::string &file : files) {
            const report::RunReport run = report::RunReport::load(file);
            if (!report::spliceBlock(document, run)) {
                std::fprintf(stderr,
                             "ghrp-report: no markers for '%s' in %s\n",
                             run.experiment.c_str(), splice_doc.c_str());
                return 1;
            }
            std::fprintf(stderr, "spliced %s into %s\n",
                         run.experiment.c_str(), splice_doc.c_str());
        }
        writeFile(splice_doc, document);
        return 0;
    }

    if (!check_doc.empty()) {
        const std::string document = readFile(check_doc);
        bool drift = false;
        for (const std::string &file : files) {
            const report::RunReport run = report::RunReport::load(file);
            const std::string expected = report::renderBlock(run);
            const std::string actual =
                extractBlock(document, run.experiment);
            if (actual.empty()) {
                std::fprintf(stderr,
                             "ghrp-report: no markers for '%s' in %s\n",
                             run.experiment.c_str(), check_doc.c_str());
                drift = true;
            } else if (actual != expected) {
                std::fprintf(stderr,
                             "ghrp-report: %s drifted from %s\n"
                             "--- expected (from report) ---\n%s\n"
                             "--- found (in doc) ---\n%s\n",
                             run.experiment.c_str(), check_doc.c_str(),
                             expected.c_str(), actual.c_str());
                drift = true;
            } else {
                std::fprintf(stderr, "%s: in sync\n",
                             run.experiment.c_str());
            }
        }
        return drift ? 1 : 0;
    }

    for (const std::string &file : files) {
        const report::RunReport run = report::RunReport::load(file);
        std::printf("%s\n", report::renderBlock(run).c_str());
    }
    return 0;
}

int
cmdDiff(const std::vector<std::string> &args)
{
    std::vector<std::string> files;
    report::DiffOptions options;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--check")
            options.check = true;
        else if (args[i] == "--max-regress" && i + 1 < args.size())
            options.maxRegressPct = std::strtod(args[++i].c_str(), nullptr);
        else if (args[i].rfind("--", 0) == 0)
            return usage();
        else
            files.push_back(args[i]);
    }
    if (files.size() != 2)
        return usage();

    const report::RunReport baseline = report::RunReport::load(files[0]);
    const report::RunReport candidate = report::RunReport::load(files[1]);
    const report::DiffResult result =
        report::diffReports(baseline, candidate, options);
    std::printf("%s", result.text.c_str());
    return result.ok() ? 0 : 1;
}

int
cmdTrajectory(const std::vector<std::string> &args)
{
    std::vector<std::string> files;
    std::string out_dir = ".";
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--out-dir" && i + 1 < args.size())
            out_dir = args[++i];
        else if (args[i].rfind("--", 0) == 0)
            return usage();
        else
            files.push_back(args[i]);
    }
    if (files.empty())
        return usage();
    std::filesystem::create_directories(out_dir);

    std::size_t emitted = 0;
    for (const std::string &file : files) {
        // A stale or future-schema report must not abort the whole
        // emission: warn, skip, and keep writing the others' points.
        report::RunReport run;
        try {
            run = report::RunReport::load(file);
        } catch (const std::exception &e) {
            std::fprintf(stderr,
                         "ghrp-report: skipping %s (no trajectory "
                         "points: %s)\n",
                         file.c_str(), e.what());
            continue;
        }
        ++emitted;
        for (const auto &[name, point] : report::trajectoryPoints(run)) {
            const std::string path =
                out_dir + "/BENCH_" + name + ".json";
            writeFile(path, point.dump(2) + "\n");
            std::printf("wrote %s\n", path.c_str());
        }
    }
    return emitted == 0 ? 1 : 0;
}

int
cmdPlot(const std::vector<std::string> &args)
{
    std::vector<std::string> files;
    std::string out_dir = ".";
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--out-dir" && i + 1 < args.size())
            out_dir = args[++i];
        else if (args[i].rfind("--", 0) == 0)
            return usage();
        else
            files.push_back(args[i]);
    }
    if (files.empty())
        return usage();
    std::filesystem::create_directories(out_dir);

    for (const std::string &file : files) {
        const report::RunReport run = report::RunReport::load(file);
        const auto plots = report::plotFiles(run);
        if (plots.empty()) {
            std::fprintf(stderr,
                         "ghrp-report: %s has no legs to plot\n",
                         file.c_str());
            return 1;
        }
        for (const auto &[name, content] : plots) {
            const std::string path = out_dir + "/" + name;
            writeFile(path, content);
            std::printf("wrote %s\n", path.c_str());
        }
    }
    return 0;
}

int
cmdPhases(const std::vector<std::string> &args)
{
    std::vector<std::string> files;
    std::string out_dir;
    bool check = false, diff = false;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--out-dir" && i + 1 < args.size())
            out_dir = args[++i];
        else if (args[i] == "--check")
            check = true;
        else if (args[i] == "--diff")
            diff = true;
        else if (args[i].rfind("--", 0) == 0)
            return usage();
        else
            files.push_back(args[i]);
    }

    if (diff) {
        if (files.size() != 2 || check)
            return usage();
        const report::RunReport a = report::RunReport::load(files[0]);
        const report::RunReport b = report::RunReport::load(files[1]);
        std::printf("%s", report::diffPhases(a, b).c_str());
        return 0;
    }
    if (files.empty())
        return usage();

    bool failed = false;
    for (const std::string &file : files) {
        const report::RunReport run = report::RunReport::load(file);
        if (check) {
            const report::PhaseCheckResult result =
                report::checkPhases(run);
            std::printf("%s:\n%s", file.c_str(), result.text.c_str());
            if (!result.ok)
                failed = true;
            continue;
        }
        const std::string text = report::renderPhases(run);
        if (text.empty()) {
            std::fprintf(stderr,
                         "ghrp-report: %s has no flight-recorder "
                         "records (rerun with --phase-window N)\n",
                         file.c_str());
            failed = true;
            continue;
        }
        std::printf("%s", text.c_str());
        if (!out_dir.empty()) {
            std::filesystem::create_directories(out_dir);
            for (const auto &[name, content] :
                 report::phaseFiles(run)) {
                const std::string path = out_dir + "/" + name;
                writeFile(path, content);
                std::printf("wrote %s\n", path.c_str());
            }
        }
    }
    return failed ? 1 : 0;
}

int
cmdCheckTelemetry(const std::vector<std::string> &args)
{
    if (args.empty())
        return usage();
    bool failed = false;
    for (const std::string &file : args) {
        const report::RunReport run = report::RunReport::load(file);
        const report::Json *snapshot_json =
            run.extras.find("telemetry");
        if (!snapshot_json) {
            std::fprintf(stderr,
                         "ghrp-report: %s has no extras.telemetry\n",
                         file.c_str());
            failed = true;
            continue;
        }
        try {
            const telemetry::Snapshot snapshot =
                report::telemetryFromJson(*snapshot_json);
            std::printf("%s: telemetry ok (%zu counters, %zu gauges, "
                        "%zu histograms)\n",
                        file.c_str(), snapshot.counters.size(),
                        snapshot.gauges.size(),
                        snapshot.histograms.size());
        } catch (const report::ReportError &e) {
            std::fprintf(stderr,
                         "ghrp-report: %s telemetry malformed: %s\n",
                         file.c_str(), e.what());
            failed = true;
        }
    }
    return failed ? 1 : 0;
}

int
cmdCheckDocs(const std::vector<std::string> &args)
{
    if (args.size() != 1 || args[0].rfind("--", 0) == 0)
        return usage();
    const std::string document = readFile(args[0]);
    std::vector<std::string> missing;
    for (frontend::PolicyKind kind : frontend::allPolicyKinds()) {
        const std::string name = frontend::policyName(kind);
        if (document.find(name) == std::string::npos)
            missing.push_back(name);
    }
    // The meta-policy is spelled as a spec, not a bare name.
    if (document.find("duel:") == std::string::npos)
        missing.push_back("duel:<A>,<B>");
    if (!missing.empty()) {
        std::fprintf(stderr,
                     "ghrp-report: %s does not mention every registered "
                     "policy:\n",
                     args[0].c_str());
        for (const std::string &name : missing)
            std::fprintf(stderr, "  missing: %s\n", name.c_str());
        return 1;
    }
    std::printf("%s: all %zu registered policies (and duel syntax) "
                "documented\n",
                args[0].c_str(), frontend::allPolicyKinds().size());
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);

    try {
        if (command == "render")
            return cmdRender(args);
        if (command == "diff")
            return cmdDiff(args);
        if (command == "trajectory")
            return cmdTrajectory(args);
        if (command == "plot")
            return cmdPlot(args);
        if (command == "phases")
            return cmdPhases(args);
        if (command == "check-telemetry")
            return cmdCheckTelemetry(args);
        if (command == "check-docs")
            return cmdCheckDocs(args);
        return usage();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "ghrp-report: %s\n", e.what());
        return 2;
    }
}

/**
 * @file
 * Table I: GHRP storage budget for a 64KB 8-way I-cache with 64B
 * blocks, plus the (considerably larger) budget of the adapted SDBP,
 * and the Exynos-M1 example from Section III-B (64KB with 128B
 * blocks, where GHRP's overhead is ~8% of I-cache capacity).
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/storage.hh"
#include "stats/table.hh"

namespace
{

using namespace ghrp;

void
printBudget(const char *title, const core::StorageBudget &budget,
            std::uint64_t cache_bytes)
{
    std::printf("--- %s ---\n", title);
    stats::TextTable table({"component", "bits", "KiB"});
    for (const core::StorageItem &item : budget.items)
        table.addRow({item.component, std::to_string(item.bits),
                      stats::TextTable::num(item.kib(), 3)});
    table.addRow({"TOTAL", std::to_string(budget.totalBits()),
                  stats::TextTable::num(budget.totalKiB(), 3)});
    std::printf("%s", table.render().c_str());
    std::printf("overhead vs cache capacity: %.1f%%\n\n",
                budget.overheadFraction(cache_bytes) * 100.0);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    core::CliOptions cli(argc, argv);

    std::printf("=== Table I: storage requirements ===\n\n");

    predictor::GhrpConfig ghrp_cfg;
    predictor::SdbpConfig sdbp_cfg;

    const cache::CacheConfig icache64 = cache::CacheConfig::icache(64, 8);
    const core::StorageBudget ghrp64 =
        core::ghrpStorage(icache64, ghrp_cfg, 4096);
    const core::StorageBudget sdbp64 =
        core::sdbpStorage(icache64, sdbp_cfg);
    printBudget("GHRP, 64KB 8-way I-cache (64B blocks) + 4K-entry BTB",
                ghrp64, icache64.sizeBytes);
    printBudget("adapted SDBP, 64KB 8-way I-cache (64B blocks)", sdbp64,
                icache64.sizeBytes);

    // The Exynos M1 example of Section III-B: 64KB with 128B blocks.
    const cache::CacheConfig exynos = cache::CacheConfig::icache(64, 8, 128);
    const core::StorageBudget ghrp_exynos =
        core::ghrpStorage(exynos, ghrp_cfg, 0);
    printBudget("GHRP, Exynos-M1-style 64KB I-cache (128B blocks)",
                ghrp_exynos, exynos.sizeBytes);

    std::printf("paper: GHRP adds ~5KB of metadata+tables (about 8%% of "
                "a 64KB I-cache);\nthe modified SDBP needs considerably "
                "more because of its full-size sampler\nand wider "
                "counters.\n");

    report::ReportBuilder builder("tab01_storage");
    builder.addMetric("ghrp_64kb_total_kib", ghrp64.totalKiB());
    builder.addMetric("ghrp_64kb_overhead_pct",
                      ghrp64.overheadFraction(icache64.sizeBytes) * 100.0);
    builder.addMetric("sdbp_64kb_total_kib", sdbp64.totalKiB());
    builder.addMetric("sdbp_64kb_overhead_pct",
                      sdbp64.overheadFraction(icache64.sizeBytes) * 100.0);
    builder.addMetric("ghrp_exynos_total_kib", ghrp_exynos.totalKiB());
    builder.addMetric("ghrp_exynos_overhead_pct",
                      ghrp_exynos.overheadFraction(exynos.sizeBytes) *
                          100.0);
    bench::maybeWriteReport(cli, builder.finish());
    return 0;
}

/**
 * @file
 * Figure 6: per-benchmark I-cache MPKI bars (64KB 8-way, 64B lines)
 * for the five policies, with an average column as the last group —
 * the per-benchmark companion to the Figure 3 S-curve.
 */

#include <cstdio>

#include "bench_common.hh"
#include "stats/table.hh"

int
main(int argc, char **argv)
{
    using namespace ghrp;

    core::CliOptions cli(argc, argv);
    core::SuiteOptions options = bench::suiteOptions(cli, 10, 0, "fig06_icache_perbench");

    const core::SuiteResults results =
        bench::runSuiteTimed(options, cli, "fig06_icache_perbench");

    std::printf("=== Figure 6: per-benchmark I-cache MPKI "
                "(64KB 8-way 64B, %zu traces) ===\n\n",
                results.specs.size());

    stats::TextTable table(
        {"trace", "LRU", "Random", "SRRIP", "SDBP", "GHRP"});
    for (std::size_t i = 0; i < results.specs.size(); ++i) {
        std::vector<std::string> row{results.specs[i].name};
        for (frontend::PolicyKind policy : frontend::paperPolicies)
            row.push_back(stats::TextTable::num(
                results.results.at(policy)[i].icacheMpki));
        table.addRow(std::move(row));
    }
    std::vector<std::string> avg{"AVERAGE"};
    for (frontend::PolicyKind policy : frontend::paperPolicies)
        avg.push_back(stats::TextTable::num(
            core::SuiteResults::mean(results.icacheMpki(policy))));
    table.addRow(std::move(avg));

    std::printf("%s\n", table.render().c_str());
    std::printf("paper shape: GHRP provides the lowest bar for the vast "
                "majority of benchmarks.\n");
    return 0;
}

/**
 * @file
 * Ablation study over GHRP's design choices (DESIGN.md Section 5):
 * majority vote vs summation, dead/bypass thresholds, bypass on/off,
 * path-history depth, and speculative-history recovery. Each variant
 * reports mean I-cache and BTB MPKI against the LRU baseline over the
 * same trace suite.
 */

#include <cctype>
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_common.hh"
#include "stats/running_stats.hh"
#include "stats/table.hh"
#include "workload/suite.hh"

namespace
{

using namespace ghrp;

struct Variant
{
    std::string name;
    std::function<void(frontend::FrontendConfig &)> apply;
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    core::CliOptions cli(argc, argv);
    const auto num_traces =
        static_cast<std::uint32_t>(cli.getUint("traces", 8));
    const std::uint64_t instructions = cli.getUint("instructions", 0);
    const std::uint64_t base_seed = cli.getUint("seed", 42);
    const auto jobs = static_cast<unsigned>(cli.getUint("jobs", 0));
    bench::initTelemetry(cli, "ablation_ghrp");

    const std::vector<Variant> variants = {
        {"GHRP (default)", [](frontend::FrontendConfig &) {}},
        {"no bypass",
         [](frontend::FrontendConfig &c) { c.ghrp.bypassEnabled = false; }},
        {"summation (vs majority)",
         [](frontend::FrontendConfig &c) { c.ghrp.majorityVote = false; }},
        {"dead threshold 1",
         [](frontend::FrontendConfig &c) { c.ghrp.deadThreshold = 1; }},
        {"dead threshold 3",
         [](frontend::FrontendConfig &c) { c.ghrp.deadThreshold = 3; }},
        {"bypass threshold 2",
         [](frontend::FrontendConfig &c) { c.ghrp.bypassThreshold = 2; }},
        {"history 8 bits (2 accesses)",
         [](frontend::FrontendConfig &c) { c.ghrp.historyBits = 8; }},
        {"history 24 bits (6 accesses)",
         [](frontend::FrontendConfig &c) { c.ghrp.historyBits = 24; }},
        {"no history recovery",
         [](frontend::FrontendConfig &c) {
             c.recoverGhrpHistory = false;
             c.wrongPathNoise = 8;
         }},
        {"btb dead threshold 2",
         [](frontend::FrontendConfig &c) { c.ghrp.btbDeadThreshold = 2; }},
        {"dedicated BTB predictor",
         [](frontend::FrontendConfig &c) { c.ghrpDedicatedBtb = true; }},
    };

    // Generate traces once; run LRU plus every variant on each.
    const std::vector<workload::TraceSpec> specs =
        workload::makeSuite(num_traces, base_seed);

    // One pool job per trace; the serial reduction below keeps the
    // RunningStats accumulation order identical to the serial loop.
    struct PerTrace
    {
        double lruIcache = 0, lruBtb = 0;
        std::vector<double> icache, btb;
    };
    double sweep_wall = 0.0;
    const std::vector<PerTrace> rows = bench::mapTraceSweep(
        specs, instructions, jobs, variants.size() + 1,
        [&](const workload::TraceSpec &, const trace::Trace &tr) {
            PerTrace out;
            frontend::FrontendConfig lru_config;
            lru_config.policy = frontend::PolicyKind::Lru;
            const frontend::FrontendResult lru =
                frontend::simulateTrace(lru_config, tr);
            out.lruIcache = lru.icacheMpki;
            out.lruBtb = lru.btbMpki;
            for (const Variant &variant : variants) {
                frontend::FrontendConfig config;
                config.policy = frontend::PolicyKind::Ghrp;
                variant.apply(config);
                const frontend::FrontendResult r =
                    frontend::simulateTrace(config, tr);
                out.icache.push_back(r.icacheMpki);
                out.btb.push_back(r.btbMpki);
            }
            return out;
        },
        &sweep_wall);

    stats::RunningStats lru_icache, lru_btb;
    std::vector<stats::RunningStats> var_icache(variants.size());
    std::vector<stats::RunningStats> var_btb(variants.size());
    for (const PerTrace &row : rows) {
        lru_icache.add(row.lruIcache);
        lru_btb.add(row.lruBtb);
        for (std::size_t v = 0; v < variants.size(); ++v) {
            var_icache[v].add(row.icache[v]);
            var_btb[v].add(row.btb[v]);
        }
    }

    std::printf("=== GHRP ablation study (%u traces) ===\n\n", num_traces);
    stats::TextTable table({"variant", "icache-MPKI", "vs LRU %",
                            "btb-MPKI", "vs LRU %"});
    table.addRow({"LRU baseline", stats::TextTable::num(lru_icache.mean()),
                  "-", stats::TextTable::num(lru_btb.mean()), "-"});
    for (std::size_t v = 0; v < variants.size(); ++v) {
        const double ic = var_icache[v].mean();
        const double bt = var_btb[v].mean();
        const double ic_rel =
            lru_icache.mean() > 0
                ? (ic - lru_icache.mean()) / lru_icache.mean() * 100
                : 0;
        const double bt_rel =
            lru_btb.mean() > 0
                ? (bt - lru_btb.mean()) / lru_btb.mean() * 100
                : 0;
        table.addRow({variants[v].name, stats::TextTable::num(ic),
                      stats::TextTable::num(ic_rel, 1),
                      stats::TextTable::num(bt),
                      stats::TextTable::num(bt_rel, 1)});
    }
    std::printf("%s\n", table.render().c_str());

    // Variant labels become metric keys: lowercase, non-alnum -> '_'.
    report::ReportBuilder builder("ablation_ghrp");
    const auto metric_key = [](const std::string &label) {
        std::string key;
        for (char c : label) {
            if (std::isalnum(static_cast<unsigned char>(c)))
                key.push_back(static_cast<char>(
                    std::tolower(static_cast<unsigned char>(c))));
            else if (!key.empty() && key.back() != '_')
                key.push_back('_');
        }
        while (!key.empty() && key.back() == '_')
            key.pop_back();
        return key;
    };
    builder.addMetric("lru_icache_mpki", lru_icache.mean());
    builder.addMetric("lru_btb_mpki", lru_btb.mean());
    for (std::size_t v = 0; v < variants.size(); ++v) {
        const std::string key = metric_key(variants[v].name);
        builder.addMetric(key + "_icache_mpki", var_icache[v].mean());
        builder.addMetric(key + "_btb_mpki", var_btb[v].mean());
    }
    builder.setSweep(sweep_wall, jobs,
                     specs.size() * (variants.size() + 1));
    bench::maybeWriteReport(cli, builder.finish());
    bench::writeTraceIfRequested(cli, "ablation_ghrp");
    return 0;
}

/**
 * @file
 * BTB stress ablation: enables the stub-farm workload component
 * (dense jump-stub code that floods the BTB with an order of magnitude
 * more taken sites than I-cache blocks) and compares the five policies
 * on the BTB under that pressure. Stub farms are off in the default
 * suite — they drown the I-cache's learnable reuse structure — so this
 * binary exists to exercise the dead-entry BTB traffic regime the
 * paper's server traces exhibit.
 */

#include <array>
#include <cstdio>

#include "bench_common.hh"
#include "stats/running_stats.hh"
#include "stats/table.hh"
#include "util/random.hh"
#include "workload/executor.hh"
#include "workload/generator.hh"

int
main(int argc, char **argv)
{
    using namespace ghrp;

    core::CliOptions cli(argc, argv);
    const auto num_traces =
        static_cast<std::uint32_t>(cli.getUint("traces", 4));
    const std::uint64_t instructions =
        cli.getUint("instructions", 12'000'000);
    const std::uint64_t base_seed = cli.getUint("seed", 42);
    const auto jobs = static_cast<unsigned>(cli.getUint("jobs", 0));
    bench::initTelemetry(cli, "ablation_btb_stress");

    // One pool job per stress trace, results in per-trace slots so the
    // reduction below is deterministic. Per-trace seeds use the pure
    // traceSeed derivation (see src/util/random.hh).
    std::vector<std::array<frontend::FrontendResult, 5>> rows(num_traces);
    const auto sweep_start = std::chrono::steady_clock::now();
    {
        util::ThreadPool pool(jobs);
        std::vector<std::future<void>> futures;
        futures.reserve(num_traces);
        for (std::uint32_t t = 0; t < num_traces; ++t)
            futures.push_back(pool.submit([&, t]() {
                const std::uint64_t seed = traceSeed(base_seed, t);
                workload::WorkloadParams params = workload::makeParams(
                    workload::Category::LongServer, seed);
                // Enable the stub farms: ~1-2% of functions, 600-1500
                // jump stubs each, dispatched ~6% of the time.
                params.stubFarmFraction = 0.012;
                params.stubBlocksLo = 600;
                params.stubBlocksHi = 1500;
                params.stubCallProbability = 0.06;
                params.targetInstructions = instructions;

                const workload::Program program =
                    workload::generateProgram(params);
                workload::ExecParams exec;
                exec.seed = seed * 0x2545F4914F6CDD1Dull + 1;
                exec.maxInstructions = params.targetInstructions;
                exec.phaseLengthInstructions =
                    params.phaseLengthInstructions;
                exec.zipfSkew = params.zipfSkew;
                exec.scanCallProbability = params.scanCallProbability;
                exec.bigLoopCallProbability =
                    params.bigLoopCallProbability;
                exec.stubCallProbability = params.stubCallProbability;
                const trace::Trace tr = workload::execute(
                    program, exec, "btb-stress", "LONG-SERVER");

                for (std::size_t p = 0;
                     p < std::size(frontend::paperPolicies); ++p) {
                    frontend::FrontendConfig config;
                    config.policy = frontend::paperPolicies[p];
                    rows[t][p] = frontend::simulateTrace(config, tr);
                }
            }));
        for (std::uint32_t t = 0; t < num_traces; ++t) {
            futures[t].get();
            if (informEnabled())
                std::fprintf(stderr, "\r[%u/%u traces]", t + 1,
                             num_traces);
        }
    }
    if (informEnabled())
        std::fprintf(stderr, "\n");
    const double sweep_wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      sweep_start)
            .count();

    stats::RunningStats acc[5];
    stats::RunningStats dead_evict_pct;
    for (std::uint32_t t = 0; t < num_traces; ++t) {
        for (std::size_t p = 0; p < std::size(frontend::paperPolicies);
             ++p) {
            const frontend::FrontendResult &r = rows[t][p];
            acc[p].add(r.btbMpki);
            if (frontend::paperPolicies[p] == frontend::PolicyKind::Ghrp &&
                r.btb.evictions) {
                dead_evict_pct.add(
                    100.0 * static_cast<double>(r.btb.deadEvictions) /
                    static_cast<double>(r.btb.evictions));
            }
        }
    }

    std::printf("=== BTB stress (stub farms enabled, %u traces) ===\n\n",
                num_traces);
    stats::TextTable table({"policy", "mean BTB MPKI", "vs LRU %"});
    for (std::size_t p = 0; p < 5; ++p) {
        const double lru = acc[0].mean();
        table.addRow(
            {frontend::policyName(frontend::paperPolicies[p]),
             stats::TextTable::num(acc[p].mean()),
             p == 0 ? "-"
                    : stats::TextTable::num(
                          lru > 0 ? (acc[p].mean() - lru) / lru * 100 : 0,
                          1)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("GHRP dead-entry evictions: %.1f%% of BTB evictions\n",
                dead_evict_pct.mean());

    report::ReportBuilder builder("ablation_btb_stress");
    for (std::uint32_t t = 0; t < num_traces; ++t) {
        char trace_name[32];
        std::snprintf(trace_name, sizeof(trace_name), "btb-stress-%u", t);
        for (std::size_t p = 0; p < std::size(frontend::paperPolicies);
             ++p)
            builder.addLeg(trace_name,
                           frontend::policyName(frontend::paperPolicies[p]),
                           rows[t][p]);
    }
    builder.addMetric("ghrp_dead_evict_pct", dead_evict_pct.mean());
    builder.setSweep(sweep_wall, jobs);
    bench::maybeWriteReport(cli, builder.finish());
    bench::writeTraceIfRequested(cli, "ablation_btb_stress");
    return 0;
}

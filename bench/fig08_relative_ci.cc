/**
 * @file
 * Figure 8: mean per-trace relative I-cache MPKI difference vs LRU
 * with 95% confidence intervals. In the paper, GHRP's mean relative
 * difference is -33% with the interval entirely below zero.
 */

#include <cstdio>

#include "bench_common.hh"
#include "stats/table.hh"

int
main(int argc, char **argv)
{
    using namespace ghrp;

    core::CliOptions cli(argc, argv);
    core::SuiteOptions options = bench::suiteOptions(cli, 16, 0, "fig08_relative_ci");

    const core::SuiteResults results =
        bench::runSuiteTimed(options, cli, "fig08_relative_ci");
    const std::vector<double> lru =
        results.icacheMpki(frontend::PolicyKind::Lru);

    std::printf("=== Figure 8: relative I-cache MPKI difference vs LRU "
                "with 95%% CI (%zu traces) ===\n\n",
                results.specs.size());

    stats::TextTable table({"policy", "mean rel diff %", "95% CI low %",
                            "95% CI high %", "traces"});
    for (frontend::PolicyKind policy : frontend::paperPolicies) {
        if (policy == frontend::PolicyKind::Lru)
            continue;
        const std::vector<double> rel =
            core::SuiteResults::relativeDifference(
                results.icacheMpki(policy), lru);
        const stats::ConfidenceInterval ci =
            stats::meanConfidence(rel, 0.95);
        table.addRow({frontend::policyName(policy),
                      stats::TextTable::num(ci.mean * 100, 1),
                      stats::TextTable::num(ci.lower() * 100, 1),
                      stats::TextTable::num(ci.upper() * 100, 1),
                      std::to_string(rel.size())});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("paper: GHRP mean -33%% with the whole interval below "
                "zero; Random's above zero.\n");
    return 0;
}

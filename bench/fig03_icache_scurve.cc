/**
 * @file
 * Figure 3 + Section V-A headline numbers: I-cache MPKI for the five
 * policies over the whole trace suite, printed as an S-curve (traces
 * ordered by LRU MPKI) plus the aggregate summary the paper reports:
 *
 *   "GHRP achieves 0.86 average MPKI, compared with 1.05 for LRU,
 *    1.14 for Random, 1.02 for SRRIP, and 1.10 for SDBP ... For a
 *    subset of benchmarks experiencing at least 1 MPKI under LRU,
 *    GHRP achieves 4.32 MPKI compared with 5.11 for LRU ..."
 *
 * Default: 64KB 8-way I-cache, 64B lines (the paper's configuration).
 */

#include <cstdio>

#include "bench_common.hh"
#include "stats/table.hh"

int
main(int argc, char **argv)
{
    using namespace ghrp;

    core::CliOptions cli(argc, argv);
    core::SuiteOptions options = bench::suiteOptions(cli, 24, 0, "fig03_icache_scurve");

    const core::SuiteResults results =
        bench::runSuiteTimed(options, cli, "fig03_icache_scurve");

    const std::vector<double> lru =
        results.icacheMpki(frontend::PolicyKind::Lru);

    std::printf("=== Figure 3: I-cache MPKI S-curve "
                "(64KB 8-way, 64B lines, %zu traces) ===\n\n",
                results.specs.size());

    // ---- S-curve: traces ordered by LRU MPKI -----------------------
    const stats::SCurve curve = stats::SCurve::byAscending(lru);
    stats::TextTable scurve({"rank", "trace", "LRU", "Random", "SRRIP",
                             "SDBP", "GHRP"});
    for (std::size_t rank = 0; rank < curve.order.size(); ++rank) {
        const std::size_t i = curve.order[rank];
        scurve.addRow(
            {std::to_string(rank + 1), results.specs[i].name,
             stats::TextTable::num(lru[i]),
             stats::TextTable::num(
                 results.results.at(frontend::PolicyKind::Random)[i]
                     .icacheMpki),
             stats::TextTable::num(
                 results.results.at(frontend::PolicyKind::Srrip)[i]
                     .icacheMpki),
             stats::TextTable::num(
                 results.results.at(frontend::PolicyKind::Sdbp)[i]
                     .icacheMpki),
             stats::TextTable::num(
                 results.results.at(frontend::PolicyKind::Ghrp)[i]
                     .icacheMpki)});
    }
    std::printf("%s\n", scurve.render().c_str());

    // ---- headline summary ------------------------------------------
    std::printf("=== Section V-A summary ===\n\n");
    stats::TextTable summary({"policy", "mean MPKI", "vs LRU %",
                              "mean MPKI (LRU >= 1)", "vs LRU % (subset)"});
    const auto [lru_subset_mean, subset_size] =
        core::SuiteResults::subsetMean(lru, lru, 1.0);
    for (frontend::PolicyKind policy : frontend::paperPolicies) {
        const std::vector<double> series = results.icacheMpki(policy);
        const double m = core::SuiteResults::mean(series);
        const double lm = core::SuiteResults::mean(lru);
        const auto [sm, sn] =
            core::SuiteResults::subsetMean(series, lru, 1.0);
        summary.addRow(
            {frontend::policyName(policy), stats::TextTable::num(m),
             policy == frontend::PolicyKind::Lru
                 ? "-"
                 : stats::TextTable::num((m - lm) / lm * 100, 1),
             stats::TextTable::num(sm),
             policy == frontend::PolicyKind::Lru
                 ? "-"
                 : stats::TextTable::num(
                       lru_subset_mean > 0
                           ? (sm - lru_subset_mean) / lru_subset_mean * 100
                           : 0,
                       1)});
    }
    std::printf("%s\n", summary.render().c_str());
    std::printf("subset: %zu of %zu traces with >= 1 MPKI under LRU\n"
                "paper:  GHRP -18%% vs LRU overall; -26%% on the subset; "
                "Random/SDBP worse than LRU, SRRIP slightly better\n",
                subset_size, results.specs.size());
    return 0;
}

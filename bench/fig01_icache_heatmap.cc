/**
 * @file
 * Figure 1: cache-efficiency heat map of a 16KB 8-way I-cache under
 * the five replacement policies for one trace. Efficiency is the
 * fraction of occupied time a frame's block is live [Burger et al.];
 * lighter cells mean longer live times. Prints the mean efficiency
 * and an ASCII rendering per policy; --pgm PREFIX writes PGM images.
 */

#include <cstdio>

#include "bench_common.hh"
#include "workload/suite.hh"

int
main(int argc, char **argv)
{
    using namespace ghrp;

    core::CliOptions cli(argc, argv);
    workload::TraceSpec spec;
    spec.category = workload::parseCategory(
        cli.getString("category", "SHORT-SERVER"));
    spec.seed = cli.getUint("seed", 13);
    spec.name = "fig01";
    const std::uint64_t instructions =
        cli.getUint("instructions", 4'000'000);
    const std::string pgm_prefix = cli.getString("pgm", "");
    if (cli.has("quiet"))
        setLogLevel(LogLevel::Quiet);

    const trace::Trace tr = workload::buildTrace(spec, instructions);

    std::printf("=== Figure 1: I-cache efficiency heat map "
                "(16KB 8-way, trace %s seed %llu) ===\n\n",
                workload::categoryName(spec.category),
                static_cast<unsigned long long>(spec.seed));

    for (frontend::PolicyKind policy : frontend::paperPolicies) {
        frontend::FrontendConfig config;
        config.policy = policy;
        config.icache = cache::CacheConfig::icache(16, 8);
        config.trackEfficiency = true;

        frontend::FrontendSim sim(config);
        const frontend::FrontendResult r = sim.run(tr);
        const stats::EfficiencyTracker &eff = *sim.icacheTracker();

        std::printf("--- %s: mean efficiency %.3f, MPKI %.3f ---\n",
                    frontend::policyName(policy), eff.meanEfficiency(),
                    r.icacheMpki);
        std::printf("%s\n", eff.renderAscii(16).c_str());

        if (!pgm_prefix.empty()) {
            const std::string path = pgm_prefix + "_" +
                                     frontend::policyName(policy) +
                                     ".pgm";
            eff.writePgm(path);
            std::printf("wrote %s\n\n", path.c_str());
        }
    }
    std::printf("paper: GHRP shows the lightest (most live) map; Random "
                "the darkest.\n");
    return 0;
}

/**
 * @file
 * Micro-benchmark (google-benchmark): per-access software cost of each
 * replacement policy on the I-cache model, of GHRP's prediction
 * primitives, of the decoded-stream front-end path against the
 * per-leg walker path and the fused all-policies walk, and of trace
 * acquisition through the
 * content-addressed store (cold generate-and-persist vs. warm mmap),
 * and of the telemetry hot paths (counter add, histogram observe,
 * disabled/enabled spans) that back the subsystem's low-overhead
 * claim. These measure simulator overhead, not hardware latency — the
 * paper argues all GHRP operations are off the critical path.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "report/report.hh"

#include "cache/basic_policies.hh"
#include "cache/cache.hh"
#include "frontend/frontend.hh"
#include "frontend/fused.hh"
#include "predictor/ghrp.hh"
#include "predictor/sdbp.hh"
#include "telemetry/metrics.hh"
#include "telemetry/span.hh"
#include "trace/decoded_trace.hh"
#include "util/random.hh"
#include "workload/suite.hh"
#include "workload/trace_store.hh"

namespace
{

using namespace ghrp;

/** A pseudo-random but loop-heavy block-address stream. */
std::vector<Addr>
makeStream(std::size_t n)
{
    Rng rng(0xBEEF);
    std::vector<Addr> stream;
    stream.reserve(n);
    Addr base = 0x400000;
    for (std::size_t i = 0; i < n; ++i) {
        if (rng.nextBool(0.7)) {
            base += 64;  // sequential run
        } else {
            base = 0x400000 + rng.nextBounded(1u << 21);
        }
        stream.push_back(base & ~Addr{63});
    }
    return stream;
}

template <typename MakePolicy>
void
runCacheBench(benchmark::State &state, MakePolicy &&make_policy)
{
    const std::vector<Addr> stream = makeStream(1 << 16);
    cache::CacheModel<> model(cache::CacheConfig::icache(64, 8),
                              make_policy());
    std::size_t i = 0;
    for (auto _ : state) {
        const Addr addr = stream[i];
        benchmark::DoNotOptimize(model.access(addr, addr));
        i = (i + 1) & (stream.size() - 1);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void
BM_AccessLru(benchmark::State &state)
{
    runCacheBench(state,
                  [] { return std::make_unique<cache::LruPolicy>(); });
}
BENCHMARK(BM_AccessLru);

void
BM_AccessRandom(benchmark::State &state)
{
    runCacheBench(state,
                  [] { return std::make_unique<cache::RandomPolicy>(); });
}
BENCHMARK(BM_AccessRandom);

void
BM_AccessSrrip(benchmark::State &state)
{
    runCacheBench(state,
                  [] { return std::make_unique<cache::SrripPolicy>(); });
}
BENCHMARK(BM_AccessSrrip);

void
BM_AccessSdbp(benchmark::State &state)
{
    runCacheBench(
        state, [] { return std::make_unique<predictor::SdbpReplacement>(); });
}
BENCHMARK(BM_AccessSdbp);

void
BM_AccessGhrp(benchmark::State &state)
{
    // GHRP needs the shared predictor to outlive the policy.
    static predictor::GhrpPredictor predictor;
    runCacheBench(state, [] {
        return std::make_unique<predictor::GhrpReplacement>(predictor);
    });
}
BENCHMARK(BM_AccessGhrp);

void
BM_GhrpSignature(benchmark::State &state)
{
    predictor::GhrpPredictor predictor;
    Addr pc = 0x400000;
    for (auto _ : state) {
        predictor.updateSpecHistory(pc);
        benchmark::DoNotOptimize(predictor.signature(pc));
        pc += 64;
    }
}
BENCHMARK(BM_GhrpSignature);

void
BM_GhrpVoteAndTrain(benchmark::State &state)
{
    predictor::GhrpPredictor predictor;
    std::uint16_t sig = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(predictor.predictDead(sig));
        predictor.train(sig, (sig & 1) != 0);
        ++sig;
    }
}
BENCHMARK(BM_GhrpVoteAndTrain);

// ------------------------------------------------ decoded vs. walker

/** One representative suite trace, kept modest so the benchmark loop
 *  turns over in tens of milliseconds. */
const trace::Trace &
benchTrace()
{
    static const trace::Trace tr = [] {
        const auto specs = workload::makeSuite(1, 42);
        return workload::buildTrace(specs.front(), 500'000);
    }();
    return tr;
}

frontend::FrontendConfig
benchConfig(frontend::PolicyKind policy)
{
    frontend::FrontendConfig cfg;
    cfg.policy = policy;
    return cfg;
}

/** Per-access cost of a full leg on the legacy walker path: every
 *  iteration re-walks and re-classifies the record stream. */
void
BM_LegWalker(benchmark::State &state)
{
    const trace::Trace &tr = benchTrace();
    const trace::DecodedTrace dec = trace::decodeTrace(tr, 64, 4);
    for (auto _ : state) {
        frontend::FrontendSim sim(benchConfig(frontend::PolicyKind::Ghrp));
        benchmark::DoNotOptimize(sim.runWalker(tr));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(dec.numFetchOps()));
}
BENCHMARK(BM_LegWalker)->Unit(benchmark::kMillisecond);

/** Per-access cost of the same leg on the decode-once path: the stream
 *  is decoded a single time outside the loop, as the suite runner does,
 *  so each iteration is pure simulation. */
void
BM_LegDecoded(benchmark::State &state)
{
    const trace::DecodedTrace dec = trace::decodeTrace(benchTrace(), 64, 4);
    for (auto _ : state) {
        frontend::FrontendSim sim(benchConfig(frontend::PolicyKind::Ghrp));
        benchmark::DoNotOptimize(sim.run(dec));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(dec.numFetchOps()));
}
BENCHMARK(BM_LegDecoded)->Unit(benchmark::kMillisecond);

/** Decode-once path with the direction stream also pre-resolved (the
 *  full configuration core::runSuite uses for every leg). */
void
BM_LegDecodedPreResolved(benchmark::State &state)
{
    trace::DecodedTrace dec = trace::decodeTrace(benchTrace(), 64, 4);
    frontend::resolveDirectionStream(
        dec, frontend::DirectionKind::HashedPerceptron);
    for (auto _ : state) {
        frontend::FrontendSim sim(benchConfig(frontend::PolicyKind::Ghrp));
        benchmark::DoNotOptimize(sim.run(dec));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(dec.numFetchOps()));
}
BENCHMARK(BM_LegDecodedPreResolved)->Unit(benchmark::kMillisecond);

/**
 * All nine policies over the pre-resolved stream in ONE fused chunked
 * walk (frontend::FusedSim). Items = fetch ops x lanes, so items/s is
 * directly comparable with the per-leg numbers above: the fused walk
 * should push more simulated accesses per second than nine separate
 * BM_LegDecodedPreResolved legs because the decoded chunk is pulled
 * from memory once per group instead of once per leg.
 */
void
BM_LegFused(benchmark::State &state)
{
    trace::DecodedTrace dec = trace::decodeTrace(benchTrace(), 64, 4);
    frontend::resolveDirectionStream(
        dec, frontend::DirectionKind::HashedPerceptron);
    const std::vector<frontend::PolicySpec> policies(
        frontend::allPolicyKinds().begin(),
        frontend::allPolicyKinds().end());
    for (auto _ : state) {
        benchmark::DoNotOptimize(frontend::simulateFused(
            benchConfig(frontend::PolicyKind::Lru), policies, dec));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(dec.numFetchOps()) *
        static_cast<std::int64_t>(policies.size()));
}
BENCHMARK(BM_LegFused)->Unit(benchmark::kMillisecond);

/** Cost of the decode itself (amortised once over all legs of a
 *  trace). */
void
BM_DecodeTrace(benchmark::State &state)
{
    const trace::Trace &tr = benchTrace();
    for (auto _ : state)
        benchmark::DoNotOptimize(trace::decodeTrace(tr, 64, 4));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(tr.records.size()));
}
BENCHMARK(BM_DecodeTrace)->Unit(benchmark::kMillisecond);

// ------------------------------------------------------- trace store

/** Scratch store directory, cleaned up at exit. */
const std::string &
benchStoreDir()
{
    static const std::string dir = [] {
        auto path = std::filesystem::temp_directory_path() /
                    "ghrp-bench-trace-store";
        std::filesystem::create_directories(path);
        return path.string();
    }();
    return dir;
}

/** Cold acquire: the keyed file is removed every iteration, so each
 *  acquire generates the trace and persists it. */
void
BM_TraceStoreCold(benchmark::State &state)
{
    const auto specs = workload::makeSuite(1, 42);
    workload::TraceStore store(benchStoreDir());
    for (auto _ : state) {
        std::remove(store.pathFor(specs.front(), 500'000).c_str());
        benchmark::DoNotOptimize(
            store.acquireDecoded(specs.front(), 500'000, 64, 4));
    }
}
BENCHMARK(BM_TraceStoreCold)->Unit(benchmark::kMillisecond);

/** Warm acquire: every iteration decodes straight from the mmap-backed
 *  file persisted by the first. */
void
BM_TraceStoreWarm(benchmark::State &state)
{
    const auto specs = workload::makeSuite(1, 42);
    workload::TraceStore store(benchStoreDir());
    benchmark::DoNotOptimize(
        store.acquireDecoded(specs.front(), 500'000, 64, 4));
    for (auto _ : state)
        benchmark::DoNotOptimize(
            store.acquireDecoded(specs.front(), 500'000, 64, 4));
}
BENCHMARK(BM_TraceStoreWarm)->Unit(benchmark::kMillisecond);

/** Telemetry hot paths: the costs the 2%-overhead budget rests on. */
void
BM_TelemetryCounterAdd(benchmark::State &state)
{
    telemetry::Counter counter;
    for (auto _ : state)
        counter.add();
    benchmark::DoNotOptimize(counter.get());
}
BENCHMARK(BM_TelemetryCounterAdd);

void
BM_TelemetryHistogramObserve(benchmark::State &state)
{
    telemetry::Histogram histogram;
    std::uint64_t nanos = 1;
    for (auto _ : state) {
        histogram.observeNanos(nanos);
        nanos = (nanos * 2862933555777941757ull + 3037000493ull) &
                0xffffffffull;
    }
    benchmark::DoNotOptimize(histogram.count());
}
BENCHMARK(BM_TelemetryHistogramObserve);

void
BM_TelemetrySpanDisabled(benchmark::State &state)
{
    telemetry::setTracingEnabled(false);
    for (auto _ : state) {
        TELEMETRY_SPAN("bench");
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_TelemetrySpanDisabled);

void
BM_TelemetrySpanEnabled(benchmark::State &state)
{
    telemetry::setTracingEnabled(true);
    for (auto _ : state) {
        TELEMETRY_SPAN("bench");
        benchmark::ClobberMemory();
    }
    telemetry::setTracingEnabled(false);
    telemetry::clearSpans();
}
BENCHMARK(BM_TelemetrySpanEnabled);

/**
 * Console reporter that additionally collects each benchmark's
 * adjusted real time, so the binary can emit a ghrp-run-report beside
 * google-benchmark's own output formats.
 */
class CollectingReporter : public benchmark::ConsoleReporter
{
  public:
    std::vector<std::pair<std::string, double>> metrics;

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs)
            if (!run.error_occurred && run.run_type == Run::RT_Iteration)
                metrics.emplace_back(run.benchmark_name(),
                                     run.GetAdjustedRealTime());
        ConsoleReporter::ReportRuns(runs);
    }
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    // Peel off --report FILE / --report=FILE before google-benchmark
    // sees the command line (it rejects unknown flags).
    std::string report_file;
    std::vector<char *> args;
    args.reserve(static_cast<std::size_t>(argc));
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
            report_file = argv[++i];
        } else if (std::strncmp(argv[i], "--report=", 9) == 0) {
            report_file = argv[i] + 9;
        } else {
            args.push_back(argv[i]);
        }
    }
    if (report_file.empty())
        if (const char *dir = std::getenv("GHRP_REPORT_DIR"); dir && *dir)
            report_file =
                std::string(dir) + "/micro_policy_overhead.json";

    int bench_argc = static_cast<int>(args.size());
    benchmark::Initialize(&bench_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data()))
        return 1;

    CollectingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);

    if (!report_file.empty()) {
        ghrp::report::ReportBuilder builder("micro_policy_overhead");
        for (const auto &[name, seconds] : reporter.metrics)
            builder.addMetric(name, seconds);
        builder.finish().write(report_file);
        std::fprintf(stderr, "[report] wrote %s\n", report_file.c_str());
    }
    return 0;
}

/**
 * @file
 * Micro-benchmark (google-benchmark): per-access software cost of each
 * replacement policy on the I-cache model, and of GHRP's prediction
 * primitives. These measure simulator overhead, not hardware latency —
 * the paper argues all GHRP operations are off the critical path.
 */

#include <benchmark/benchmark.h>

#include "cache/basic_policies.hh"
#include "cache/cache.hh"
#include "predictor/ghrp.hh"
#include "predictor/sdbp.hh"
#include "util/random.hh"

namespace
{

using namespace ghrp;

/** A pseudo-random but loop-heavy block-address stream. */
std::vector<Addr>
makeStream(std::size_t n)
{
    Rng rng(0xBEEF);
    std::vector<Addr> stream;
    stream.reserve(n);
    Addr base = 0x400000;
    for (std::size_t i = 0; i < n; ++i) {
        if (rng.nextBool(0.7)) {
            base += 64;  // sequential run
        } else {
            base = 0x400000 + rng.nextBounded(1u << 21);
        }
        stream.push_back(base & ~Addr{63});
    }
    return stream;
}

template <typename MakePolicy>
void
runCacheBench(benchmark::State &state, MakePolicy &&make_policy)
{
    const std::vector<Addr> stream = makeStream(1 << 16);
    cache::CacheModel<> model(cache::CacheConfig::icache(64, 8),
                              make_policy());
    std::size_t i = 0;
    for (auto _ : state) {
        const Addr addr = stream[i];
        benchmark::DoNotOptimize(model.access(addr, addr));
        i = (i + 1) & (stream.size() - 1);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void
BM_AccessLru(benchmark::State &state)
{
    runCacheBench(state,
                  [] { return std::make_unique<cache::LruPolicy>(); });
}
BENCHMARK(BM_AccessLru);

void
BM_AccessRandom(benchmark::State &state)
{
    runCacheBench(state,
                  [] { return std::make_unique<cache::RandomPolicy>(); });
}
BENCHMARK(BM_AccessRandom);

void
BM_AccessSrrip(benchmark::State &state)
{
    runCacheBench(state,
                  [] { return std::make_unique<cache::SrripPolicy>(); });
}
BENCHMARK(BM_AccessSrrip);

void
BM_AccessSdbp(benchmark::State &state)
{
    runCacheBench(
        state, [] { return std::make_unique<predictor::SdbpReplacement>(); });
}
BENCHMARK(BM_AccessSdbp);

void
BM_AccessGhrp(benchmark::State &state)
{
    // GHRP needs the shared predictor to outlive the policy.
    static predictor::GhrpPredictor predictor;
    runCacheBench(state, [] {
        return std::make_unique<predictor::GhrpReplacement>(predictor);
    });
}
BENCHMARK(BM_AccessGhrp);

void
BM_GhrpSignature(benchmark::State &state)
{
    predictor::GhrpPredictor predictor;
    Addr pc = 0x400000;
    for (auto _ : state) {
        predictor.updateSpecHistory(pc);
        benchmark::DoNotOptimize(predictor.signature(pc));
        pc += 64;
    }
}
BENCHMARK(BM_GhrpSignature);

void
BM_GhrpVoteAndTrain(benchmark::State &state)
{
    predictor::GhrpPredictor predictor;
    std::uint16_t sig = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(predictor.predictDead(sig));
        predictor.train(sig, (sig & 1) != 0);
        ++sig;
    }
}
BENCHMARK(BM_GhrpVoteAndTrain);

} // anonymous namespace

BENCHMARK_MAIN();

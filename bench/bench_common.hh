/**
 * @file
 * Shared helpers for the figure/table regeneration binaries: suite
 * options from the command line and progress reporting.
 *
 * Every bench binary accepts:
 *   --traces N         suite size (default varies per figure)
 *   --instructions M   per-trace dynamic length override
 *   --seed S           suite base seed
 *   --quiet            suppress progress
 */

#ifndef GHRP_BENCH_BENCH_COMMON_HH
#define GHRP_BENCH_BENCH_COMMON_HH

#include <cstdio>

#include "core/cli.hh"
#include "core/runner.hh"
#include "util/logging.hh"

namespace ghrp::bench
{

/** Build SuiteOptions from CLI flags with per-binary defaults. */
inline core::SuiteOptions
suiteOptions(const core::CliOptions &cli, std::uint32_t default_traces,
             std::uint64_t default_instructions)
{
    core::SuiteOptions options;
    options.numTraces =
        static_cast<std::uint32_t>(cli.getUint("traces", default_traces));
    options.baseSeed = cli.getUint("seed", 42);
    options.instructionOverride =
        cli.getUint("instructions", default_instructions);
    if (cli.has("quiet"))
        setLogLevel(LogLevel::Quiet);
    return options;
}

/** Progress meter printing to stderr (suppressed by --quiet). */
inline core::ProgressFn
progressMeter()
{
    return [](std::size_t done, std::size_t total,
              const std::string &what) {
        if (logLevel() == LogLevel::Quiet)
            return;
        std::fprintf(stderr, "\r[%3zu/%3zu] %-40s", done, total,
                     what.c_str());
        if (done == total)
            std::fprintf(stderr, "\n");
    };
}

} // namespace ghrp::bench

#endif // GHRP_BENCH_BENCH_COMMON_HH

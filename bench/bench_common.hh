/**
 * @file
 * Shared helpers for the figure/table regeneration binaries: suite
 * options from the command line, progress reporting, parallel sweep
 * execution, and throughput accounting.
 *
 * Every bench binary accepts:
 *   --traces N         suite size (default varies per figure)
 *   --instructions M   per-trace dynamic length override
 *   --seed S           suite base seed
 *   --jobs N           sweep worker threads (0 = hardware concurrency,
 *                      1 = serial; results are bit-identical either way)
 *   --fused            fuse all policy legs of a trace into one chunked
 *                      walk of its decoded stream (or GHRP_FUSED=1);
 *                      results are bit-identical to per-leg runs, the
 *                      stream is just read from memory once per trace
 *                      instead of once per policy
 *   --trace-cache DIR  content-addressed trace store directory
 *                      (default: the GHRP_TRACE_CACHE environment
 *                      variable; traces are generated in memory when
 *                      neither is set — results are identical, warm
 *                      runs just skip regeneration)
 *   --leg-times        print the per-leg wall-time table
 *   --quiet            suppress progress and throughput reporting
 *                      (equivalent to --log-level warn)
 *   --log-level L      verbosity: quiet|warn|info (or GHRP_LOG_LEVEL)
 *   --slow-leg-ms N    warn() about (trace, policy) legs slower than
 *                      N milliseconds
 *   --trace-out FILE   record spans and write a Chrome trace_event
 *                      JSON (perfetto-loadable) of the run to FILE;
 *                      with no flag, the GHRP_TRACE_DIR environment
 *                      variable (when set) selects
 *                      <dir>/<experiment>.trace.json
 *   --report FILE      write a versioned JSON run report (schema
 *                      "ghrp-run-report") to FILE; with no flag, the
 *                      GHRP_REPORT_DIR environment variable (when set)
 *                      selects <dir>/<experiment>.json — handy for
 *                      fleet runs that report every binary
 *   --duel A,B[,...]   append a duel:A,B[,psel=N][,leaders=K]
 *                      set-dueling leg to the suite's policy axis
 *   --phase-window N   phase flight recorder: sample a windowed
 *                      telemetry record every N instructions per leg
 *                      (or GHRP_PHASE_WINDOW; 0 = off, the default;
 *                      records land under each report leg's "phases")
 */

#ifndef GHRP_BENCH_BENCH_COMMON_HH
#define GHRP_BENCH_BENCH_COMMON_HH

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string_view>
#include <vector>

#include "core/cli.hh"
#include "core/runner.hh"
#include "report/report.hh"
#include "telemetry/span.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"
#include "workload/trace_store.hh"

namespace ghrp::bench
{

/**
 * Where this run's Chrome trace JSON should go: the --trace-out flag,
 * else <GHRP_TRACE_DIR>/<experiment>.trace.json when the environment
 * variable is set, else empty (tracing stays off).
 */
inline std::string
tracePath(const core::CliOptions &cli, const std::string &experiment)
{
    const std::string path = cli.getString("trace-out", "");
    if (!path.empty() || experiment.empty())
        return path;
    if (const char *dir = std::getenv("GHRP_TRACE_DIR"); dir && *dir)
        return std::string(dir) + "/" + experiment + ".trace.json";
    return "";
}

/**
 * Per-binary telemetry setup: apply the unified log level (--log-level
 * / --quiet / GHRP_LOG_LEVEL), name the main thread's trace row, and
 * enable span recording when a --trace-out / GHRP_TRACE_DIR
 * destination exists. Called by suiteOptions(); custom bench loops
 * that bypass it call this directly.
 */
inline void
initTelemetry(const core::CliOptions &cli, const std::string &experiment)
{
    core::applyLogLevel(cli);
    telemetry::setThreadName("main");
    if (!tracePath(cli, experiment).empty())
        telemetry::setTracingEnabled(true);
}

/**
 * Serialize the spans recorded so far to the --trace-out /
 * GHRP_TRACE_DIR destination, if any. No-op (and no file) when
 * tracing was never enabled.
 */
inline void
writeTraceIfRequested(const core::CliOptions &cli,
                      const std::string &experiment)
{
    const std::string path = tracePath(cli, experiment);
    if (path.empty() || !telemetry::tracingEnabled())
        return;
    if (!telemetry::writeChromeTrace(path))
        warn("cannot write trace '%s'", path.c_str());
    else if (informEnabled())
        std::fprintf(stderr, "[trace] wrote %s\n", path.c_str());
}

/** Build SuiteOptions from CLI flags with per-binary defaults. */
inline core::SuiteOptions
suiteOptions(const core::CliOptions &cli, std::uint32_t default_traces,
             std::uint64_t default_instructions,
             const std::string &experiment = "")
{
    core::SuiteOptions options;
    options.numTraces =
        static_cast<std::uint32_t>(cli.getUint("traces", default_traces));
    options.baseSeed = cli.getUint("seed", 42);
    options.instructionOverride =
        cli.getUint("instructions", default_instructions);
    options.jobs = static_cast<unsigned>(cli.getUint("jobs", 0));
    options.fused = cli.has("fused");
    if (!options.fused)
        if (const char *env = std::getenv("GHRP_FUSED"); env && *env &&
            std::string_view(env) != "0")
            options.fused = true;
    options.traceCacheDir = cli.getString("trace-cache", "");
    options.slowLegMs = cli.getDouble("slow-leg-ms", 0.0);
    options.base.phaseWindow = cli.getUint("phase-window", 0);
    if (!cli.has("phase-window"))
        if (const char *env = std::getenv("GHRP_PHASE_WINDOW");
            env && *env)
            options.base.phaseWindow =
                std::strtoull(env, nullptr, 10);
    if (const std::string duel = cli.getString("duel", ""); !duel.empty())
        options.policies.push_back(
            frontend::parsePolicySpec("duel:" + duel));
    initTelemetry(cli, experiment);
    return options;
}

/**
 * Where this run's JSON report should go: the --report flag, else
 * <GHRP_REPORT_DIR>/<experiment>.json when the environment variable is
 * set, else empty (no report).
 */
inline std::string
reportPath(const core::CliOptions &cli, const std::string &experiment)
{
    const std::string path = cli.getString("report", "");
    if (!path.empty())
        return path;
    if (const char *dir = std::getenv("GHRP_REPORT_DIR"); dir && *dir)
        return std::string(dir) + "/" + experiment + ".json";
    return "";
}

/** Write @p report to @p path (no-op when @p path is empty). */
inline void
writeReport(const report::RunReport &report, const std::string &path)
{
    if (path.empty())
        return;
    report.write(path);
    if (informEnabled())
        std::fprintf(stderr, "[report] wrote %s\n", path.c_str());
}

/**
 * Report hook for the custom bench loops: write @p report to the
 * --report / GHRP_REPORT_DIR destination, if any.
 */
inline void
maybeWriteReport(const core::CliOptions &cli,
                 const report::RunReport &report)
{
    writeReport(report, reportPath(cli, report.experiment));
}

/** Worker count a set of SuiteOptions will actually use. */
inline unsigned
effectiveJobs(const core::SuiteOptions &options)
{
    return options.jobs ? options.jobs : util::ThreadPool::hardwareJobs();
}

/** Progress meter printing to stderr (suppressed by --quiet). */
inline core::ProgressFn
progressMeter()
{
    return [](std::size_t done, std::size_t total,
              const std::string &what) {
        if (!informEnabled())
            return;
        std::fprintf(stderr, "\r[%3zu/%3zu] %-40s", done, total,
                     what.c_str());
        if (done == total)
            std::fprintf(stderr, "\n");
    };
}

/**
 * Throughput report for a finished sweep: legs/sec and simulated
 * instructions/sec over the wall clock, plus the slowest leg (the
 * critical path any further parallelism has to beat). Suppressed by
 * --quiet. Pass print_leg_times (the --leg-times flag) for the full
 * per-leg wall-time table.
 */
inline void
reportThroughput(const core::SuiteResults &results, unsigned jobs,
                 bool print_leg_times = false)
{
    if (!informEnabled())
        return;

    const std::size_t legs = results.totalLegs();
    const double wall = results.wallSeconds;
    const double instr =
        static_cast<double>(results.simulatedInstructions());

    double busy = 0.0, slowest = 0.0;
    std::string slow_trace;
    std::string slow_policy;
    for (const auto &[policy, seconds] : results.legSeconds) {
        for (std::size_t i = 0; i < seconds.size(); ++i) {
            busy += seconds[i];
            if (seconds[i] > slowest) {
                slowest = seconds[i];
                slow_trace = results.specs[i].name;
                slow_policy = frontend::policyName(policy);
            }
        }
    }

    std::fprintf(stderr,
                 "[sweep] %zu legs in %.2f s with %u jobs — "
                 "%.2f legs/s, %.1f Minstr/s, speedup %.2fx "
                 "(busy %.2f s; slowest leg %.2f s: %s/%s)\n",
                 legs, wall, jobs, wall > 0 ? legs / wall : 0.0,
                 wall > 0 ? instr / wall / 1e6 : 0.0,
                 wall > 0 ? busy / wall : 0.0, busy, slowest,
                 slow_trace.c_str(), slow_policy.c_str());

    if (results.traceStoreEnabled)
        std::fprintf(stderr,
                     "[sweep] trace store: %llu hits, %llu misses, "
                     "%llu persisted\n",
                     static_cast<unsigned long long>(
                         results.traceStore.hits),
                     static_cast<unsigned long long>(
                         results.traceStore.misses),
                     static_cast<unsigned long long>(
                         results.traceStore.stores));

    if (print_leg_times) {
        std::fprintf(stderr, "[sweep] per-leg wall time (seconds):\n");
        for (const auto &[policy, seconds] : results.legSeconds)
            for (std::size_t i = 0; i < seconds.size(); ++i)
                std::fprintf(stderr, "[sweep]   %-18s %-8s %8.3f\n",
                             results.specs[i].name.c_str(),
                             frontend::policyName(policy).c_str(),
                             seconds[i]);
    }
}

/**
 * Run the standard sweep on the parallel path with progress and a
 * throughput report, then honor --report / GHRP_REPORT_DIR with the
 * standard suite report for @p experiment. Drop-in replacement for
 * core::runSuite in the figure binaries.
 */
inline core::SuiteResults
runSuiteTimed(const core::SuiteOptions &options,
              const core::CliOptions &cli, const std::string &experiment)
{
    const core::SuiteResults results =
        core::runSuite(options, progressMeter());
    reportThroughput(results, effectiveJobs(options),
                     cli.has("leg-times"));
    writeReport(report::buildSuiteReport(experiment, options, results),
                reportPath(cli, experiment));
    writeTraceIfRequested(cli, experiment);
    return results;
}

/**
 * Parallel per-trace sweep for the custom bench loops that do not go
 * through core::runSuite (config sweeps, ablations, OPT replays):
 * builds each trace on a work-stealing pool, applies @p fn, and
 * returns the per-trace values in suite order, so downstream
 * aggregation is deterministic regardless of scheduling. @p fn must
 * not touch shared mutable state. Prints a throughput report based on
 * @p legs_per_trace (simulation runs per trace inside fn). When
 * @p wall_seconds_out is non-null, the sweep wall time is stored there
 * (for run-report sweep stats).
 */
template <typename Fn>
auto
mapTraceSweep(const std::vector<workload::TraceSpec> &specs,
              std::uint64_t instruction_override, unsigned jobs,
              std::size_t legs_per_trace, Fn &&fn,
              double *wall_seconds_out = nullptr)
    -> std::vector<decltype(fn(specs.front(), trace::Trace{}))>
{
    using R = decltype(fn(specs.front(), trace::Trace{}));

    const unsigned n = jobs ? jobs : util::ThreadPool::hardwareJobs();
    std::vector<R> out(specs.size());
    // Env-driven store (GHRP_TRACE_CACHE): warm custom sweeps skip
    // trace regeneration just like core::runSuite does.
    workload::TraceStore store;
    const auto start = std::chrono::steady_clock::now();

    if (n <= 1 || specs.size() <= 1) {
        for (std::size_t i = 0; i < specs.size(); ++i) {
            const trace::Trace tr =
                store.acquire(specs[i], instruction_override);
            out[i] = fn(specs[i], tr);
            if (informEnabled())
                std::fprintf(stderr, "\r[%3zu/%3zu traces]", i + 1,
                             specs.size());
        }
    } else {
        util::ThreadPool pool(n);
        std::vector<std::future<void>> futures;
        futures.reserve(specs.size());
        for (std::size_t i = 0; i < specs.size(); ++i)
            futures.push_back(pool.submit([&, i]() {
                const trace::Trace tr =
                    store.acquire(specs[i], instruction_override);
                out[i] = fn(specs[i], tr);
            }));
        for (std::size_t i = 0; i < futures.size(); ++i) {
            futures[i].get();
            if (informEnabled())
                std::fprintf(stderr, "\r[%3zu/%3zu traces]", i + 1,
                             specs.size());
        }
    }

    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    if (wall_seconds_out)
        *wall_seconds_out = wall;
    if (informEnabled()) {
        const std::size_t legs = specs.size() * legs_per_trace;
        std::fprintf(stderr,
                     "\n[sweep] %zu traces (%zu legs) in %.2f s with "
                     "%u jobs — %.2f legs/s\n",
                     specs.size(), legs, wall, n,
                     wall > 0 ? legs / wall : 0.0);
    }
    return out;
}

} // namespace ghrp::bench

#endif // GHRP_BENCH_BENCH_COMMON_HH

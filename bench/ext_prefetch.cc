/**
 * @file
 * Extension: interaction of replacement policy and next-line
 * instruction prefetching (the context of the paper's related work,
 * Section II-E). Reports I-cache demand MPKI for LRU and GHRP with
 * prefetch degrees 0, 1 and 2. Prefetching absorbs the sequential
 * misses (scans, straight-line code); the replacement policy then
 * fights over what pollution the prefetcher adds.
 */

#include <cstdio>

#include "bench_common.hh"
#include "stats/running_stats.hh"
#include "stats/table.hh"
#include "workload/suite.hh"

int
main(int argc, char **argv)
{
    using namespace ghrp;

    core::CliOptions cli(argc, argv);
    const auto num_traces =
        static_cast<std::uint32_t>(cli.getUint("traces", 8));
    const std::uint64_t instructions = cli.getUint("instructions", 0);
    const std::uint64_t base_seed = cli.getUint("seed", 42);
    const auto jobs = static_cast<unsigned>(cli.getUint("jobs", 0));
    bench::initTelemetry(cli, "ext_prefetch");

    const std::vector<workload::TraceSpec> specs =
        workload::makeSuite(num_traces, base_seed);

    const std::uint32_t degrees[] = {0, 1, 2};

    struct PerTrace
    {
        double lru[3] = {}, ghrp[3] = {};
    };
    double sweep_wall = 0.0;
    const std::vector<PerTrace> rows = bench::mapTraceSweep(
        specs, instructions, jobs, 2 * std::size(degrees),
        [&](const workload::TraceSpec &, const trace::Trace &tr) {
            PerTrace out;
            for (std::size_t d = 0; d < std::size(degrees); ++d) {
                frontend::FrontendConfig cfg;
                cfg.nextLinePrefetch = degrees[d];
                cfg.policy = frontend::PolicyKind::Lru;
                out.lru[d] = frontend::simulateTrace(cfg, tr).icacheMpki;
                cfg.policy = frontend::PolicyKind::Ghrp;
                out.ghrp[d] = frontend::simulateTrace(cfg, tr).icacheMpki;
            }
            return out;
        },
        &sweep_wall);

    stats::RunningStats lru_acc[3], ghrp_acc[3];
    for (const PerTrace &row : rows) {
        for (std::size_t d = 0; d < std::size(degrees); ++d) {
            lru_acc[d].add(row.lru[d]);
            ghrp_acc[d].add(row.ghrp[d]);
        }
    }

    std::printf("=== Extension: next-line prefetch x replacement "
                "(%u traces) ===\n\n",
                num_traces);
    stats::TextTable table({"prefetch degree", "LRU MPKI", "GHRP MPKI",
                            "GHRP vs LRU %"});
    for (std::size_t d = 0; d < std::size(degrees); ++d) {
        const double rel =
            lru_acc[d].mean() > 0
                ? (ghrp_acc[d].mean() - lru_acc[d].mean()) /
                      lru_acc[d].mean() * 100
                : 0;
        table.addRow({std::to_string(degrees[d]),
                      stats::TextTable::num(lru_acc[d].mean()),
                      stats::TextTable::num(ghrp_acc[d].mean()),
                      stats::TextTable::num(rel, 1)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Sequential prefetching absorbs the straight-line "
                "misses; what remains is\nthe reuse-limit traffic that "
                "replacement policy fights over.\n");

    report::ReportBuilder builder("ext_prefetch");
    for (std::size_t d = 0; d < std::size(degrees); ++d) {
        const std::string key = "degree" + std::to_string(degrees[d]);
        builder.addMetric(key + "_lru_mpki", lru_acc[d].mean());
        builder.addMetric(key + "_ghrp_mpki", ghrp_acc[d].mean());
    }
    builder.setSweep(sweep_wall, jobs,
                     specs.size() * 2 * std::size(degrees));
    bench::maybeWriteReport(cli, builder.finish());
    bench::writeTraceIfRequested(cli, "ext_prefetch");
    return 0;
}

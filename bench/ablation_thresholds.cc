/**
 * @file
 * Threshold sweep for the two predictive policies (DESIGN.md ablation
 * index): GHRP counter width x dead/bypass thresholds, and SDBP
 * dead/bypass sum thresholds. Reports mean I-cache MPKI split by
 * mobile and server categories, against LRU.
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"
#include "stats/running_stats.hh"
#include "stats/table.hh"
#include "workload/suite.hh"

namespace
{

using namespace ghrp;

bool
isMobile(const workload::TraceSpec &spec)
{
    return spec.category == workload::Category::ShortMobile ||
           spec.category == workload::Category::LongMobile;
}

struct Accumulator
{
    stats::RunningStats mobile;
    stats::RunningStats server;
    stats::RunningStats btb;

    void
    add(const workload::TraceSpec &spec,
        const frontend::FrontendResult &r)
    {
        (isMobile(spec) ? mobile : server).add(r.icacheMpki);
        btb.add(r.btbMpki);
    }
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    core::CliOptions cli(argc, argv);
    const auto num_traces =
        static_cast<std::uint32_t>(cli.getUint("traces", 8));
    const std::uint64_t instructions = cli.getUint("instructions", 0);
    const std::uint64_t base_seed = cli.getUint("seed", 42);
    const auto jobs = static_cast<unsigned>(cli.getUint("jobs", 0));
    bench::initTelemetry(cli, "ablation_thresholds");

    struct GhrpVariant
    {
        unsigned counterBits;
        std::uint32_t dead;
        std::uint32_t bypass;
        std::uint32_t btbDead;
    };
    const std::vector<GhrpVariant> ghrp_variants = {
        {2, 2, 3, 2},  {2, 3, 3, 3},  {3, 3, 5, 3},  {3, 4, 6, 3},
        {3, 4, 6, 4},  {3, 5, 7, 4},  {3, 5, 7, 5},  {3, 6, 7, 5},
        {4, 8, 12, 6}, {4, 10, 14, 8},
    };
    struct SdbpVariant
    {
        std::uint32_t dead;
        std::uint32_t bypass;
    };
    const std::vector<SdbpVariant> sdbp_variants = {
        {16, 40}, {32, 80}, {64, 160}, {128, 300},
    };

    const std::vector<workload::TraceSpec> specs =
        workload::makeSuite(num_traces, base_seed);

    // One pool job per trace; the serial reduction below keeps the
    // accumulation order identical to the old serial loop.
    struct PerTrace
    {
        frontend::FrontendResult lru;
        std::vector<frontend::FrontendResult> ghrp, sdbp;
    };
    double sweep_wall = 0.0;
    const std::vector<PerTrace> rows = bench::mapTraceSweep(
        specs, instructions, jobs,
        1 + ghrp_variants.size() + sdbp_variants.size(),
        [&](const workload::TraceSpec &, const trace::Trace &tr) {
            PerTrace out;
            frontend::FrontendConfig config;
            config.policy = frontend::PolicyKind::Lru;
            out.lru = frontend::simulateTrace(config, tr);

            for (const GhrpVariant &v : ghrp_variants) {
                config = frontend::FrontendConfig{};
                config.policy = frontend::PolicyKind::Ghrp;
                config.ghrp.counterBits = v.counterBits;
                config.ghrp.deadThreshold = v.dead;
                config.ghrp.bypassThreshold = v.bypass;
                config.ghrp.btbDeadThreshold = v.btbDead;
                out.ghrp.push_back(frontend::simulateTrace(config, tr));
            }
            for (const SdbpVariant &v : sdbp_variants) {
                config = frontend::FrontendConfig{};
                config.policy = frontend::PolicyKind::Sdbp;
                config.sdbp.deadThreshold = v.dead;
                config.sdbp.bypassThreshold = v.bypass;
                out.sdbp.push_back(frontend::simulateTrace(config, tr));
            }
            return out;
        },
        &sweep_wall);

    Accumulator lru;
    std::vector<Accumulator> ghrp_acc(ghrp_variants.size());
    std::vector<Accumulator> sdbp_acc(sdbp_variants.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
        lru.add(specs[i], rows[i].lru);
        for (std::size_t v = 0; v < ghrp_variants.size(); ++v)
            ghrp_acc[v].add(specs[i], rows[i].ghrp[v]);
        for (std::size_t v = 0; v < sdbp_variants.size(); ++v)
            sdbp_acc[v].add(specs[i], rows[i].sdbp[v]);
    }

    std::printf("=== Predictor threshold sweep (%u traces) ===\n\n",
                num_traces);
    stats::TextTable table({"variant", "mob icache", "srv icache",
                            "mob %", "srv %", "btb MPKI", "btb %"});
    auto rel = [](double v, double base) {
        return base > 0 ? (v - base) / base * 100 : 0.0;
    };
    table.addRow({"LRU", stats::TextTable::num(lru.mobile.mean()),
                  stats::TextTable::num(lru.server.mean()), "-", "-",
                  stats::TextTable::num(lru.btb.mean()), "-"});
    for (std::size_t v = 0; v < ghrp_variants.size(); ++v) {
        char name[64];
        std::snprintf(name, sizeof(name), "GHRP c%u d%u b%u bd%u",
                      ghrp_variants[v].counterBits, ghrp_variants[v].dead,
                      ghrp_variants[v].bypass, ghrp_variants[v].btbDead);
        table.addRow(
            {name, stats::TextTable::num(ghrp_acc[v].mobile.mean()),
             stats::TextTable::num(ghrp_acc[v].server.mean()),
             stats::TextTable::num(
                 rel(ghrp_acc[v].mobile.mean(), lru.mobile.mean()), 1),
             stats::TextTable::num(
                 rel(ghrp_acc[v].server.mean(), lru.server.mean()), 1),
             stats::TextTable::num(ghrp_acc[v].btb.mean()),
             stats::TextTable::num(
                 rel(ghrp_acc[v].btb.mean(), lru.btb.mean()), 1)});
    }
    for (std::size_t v = 0; v < sdbp_variants.size(); ++v) {
        char name[64];
        std::snprintf(name, sizeof(name), "SDBP d%u b%u",
                      sdbp_variants[v].dead, sdbp_variants[v].bypass);
        table.addRow(
            {name, stats::TextTable::num(sdbp_acc[v].mobile.mean()),
             stats::TextTable::num(sdbp_acc[v].server.mean()),
             stats::TextTable::num(
                 rel(sdbp_acc[v].mobile.mean(), lru.mobile.mean()), 1),
             stats::TextTable::num(
                 rel(sdbp_acc[v].server.mean(), lru.server.mean()), 1),
             stats::TextTable::num(sdbp_acc[v].btb.mean()),
             stats::TextTable::num(
                 rel(sdbp_acc[v].btb.mean(), lru.btb.mean()), 1)});
    }
    std::printf("%s\n", table.render().c_str());

    report::ReportBuilder builder("ablation_thresholds");
    builder.addMetric("lru_mobile_icache_mpki", lru.mobile.mean());
    builder.addMetric("lru_server_icache_mpki", lru.server.mean());
    builder.addMetric("lru_btb_mpki", lru.btb.mean());
    for (std::size_t v = 0; v < ghrp_variants.size(); ++v) {
        char key[64];
        std::snprintf(key, sizeof(key), "ghrp_c%u_d%u_b%u_bd%u",
                      ghrp_variants[v].counterBits, ghrp_variants[v].dead,
                      ghrp_variants[v].bypass, ghrp_variants[v].btbDead);
        builder.addMetric(std::string(key) + "_mobile_icache_mpki",
                          ghrp_acc[v].mobile.mean());
        builder.addMetric(std::string(key) + "_server_icache_mpki",
                          ghrp_acc[v].server.mean());
        builder.addMetric(std::string(key) + "_btb_mpki",
                          ghrp_acc[v].btb.mean());
    }
    for (std::size_t v = 0; v < sdbp_variants.size(); ++v) {
        char key[64];
        std::snprintf(key, sizeof(key), "sdbp_d%u_b%u",
                      sdbp_variants[v].dead, sdbp_variants[v].bypass);
        builder.addMetric(std::string(key) + "_mobile_icache_mpki",
                          sdbp_acc[v].mobile.mean());
        builder.addMetric(std::string(key) + "_server_icache_mpki",
                          sdbp_acc[v].server.mean());
    }
    builder.setSweep(sweep_wall, jobs,
                     specs.size() *
                         (1 + ghrp_variants.size() + sdbp_variants.size()));
    bench::maybeWriteReport(cli, builder.finish());
    bench::writeTraceIfRequested(cli, "ablation_thresholds");
    return 0;
}

/**
 * @file
 * Figure 5: efficiency heat map of a 256-entry 8-way BTB under the
 * five replacement policies for one trace. Darker cells are frames
 * holding dead entries longer; GHRP improves live time.
 */

#include <cstdio>

#include "bench_common.hh"
#include "workload/suite.hh"

int
main(int argc, char **argv)
{
    using namespace ghrp;

    core::CliOptions cli(argc, argv);
    workload::TraceSpec spec;
    spec.category = workload::parseCategory(
        cli.getString("category", "SHORT-SERVER"));
    spec.seed = cli.getUint("seed", 13);
    spec.name = "fig05";
    const std::uint64_t instructions =
        cli.getUint("instructions", 4'000'000);
    const std::string pgm_prefix = cli.getString("pgm", "");
    bench::initTelemetry(cli, "fig05_btb_heatmap");

    const trace::Trace tr = workload::buildTrace(spec, instructions);

    std::printf("=== Figure 5: BTB efficiency heat map "
                "(256-entry 8-way, trace %s seed %llu) ===\n\n",
                workload::categoryName(spec.category),
                static_cast<unsigned long long>(spec.seed));

    // One pool job per policy leg; rendered text is collected into
    // per-policy slots and printed in paper order afterwards.
    struct PolicyOutput
    {
        std::string text;
        std::string pgmPath;
        frontend::FrontendResult result;
        double meanEfficiency = 0.0;
        report::Json matrix = report::Json::object();
    };
    const std::size_t num_policies = std::size(frontend::paperPolicies);
    std::vector<PolicyOutput> outputs(num_policies);
    const auto sweep_start = std::chrono::steady_clock::now();
    {
        util::ThreadPool pool(
            static_cast<unsigned>(cli.getUint("jobs", 0)));
        std::vector<std::future<void>> legs;
        legs.reserve(num_policies);
        for (std::size_t p = 0; p < num_policies; ++p)
            legs.push_back(pool.submit([&, p]() {
                frontend::FrontendConfig config;
                config.policy = frontend::paperPolicies[p];
                config.btb = cache::CacheConfig::btb(256, 8);
                config.trackEfficiency = true;

                frontend::FrontendSim sim(config);
                const frontend::FrontendResult r = sim.run(tr);
                const stats::EfficiencyTracker &eff = *sim.btbTracker();

                char head[128];
                std::snprintf(head, sizeof(head),
                              "--- %s: mean efficiency %.3f, "
                              "BTB MPKI %.3f ---\n",
                              frontend::policyName(config.policy),
                              eff.meanEfficiency(), r.btbMpki);
                outputs[p].text =
                    std::string(head) + eff.renderAscii(16) + "\n";
                outputs[p].result = r;
                outputs[p].meanEfficiency = eff.meanEfficiency();
                outputs[p].matrix = report::efficiencyMatrixJson(eff);
                if (!pgm_prefix.empty()) {
                    outputs[p].pgmPath =
                        pgm_prefix + "_" +
                        frontend::policyName(config.policy) + ".pgm";
                    eff.writePgm(outputs[p].pgmPath);
                }
            }));
        for (std::future<void> &f : legs)
            f.get();
    }
    const double sweep_wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      sweep_start)
            .count();
    for (const PolicyOutput &out : outputs) {
        std::printf("%s", out.text.c_str());
        if (!out.pgmPath.empty())
            std::printf("wrote %s\n\n", out.pgmPath.c_str());
    }

    report::ReportBuilder builder("fig05_btb_heatmap");
    report::Json efficiency = report::Json::object();
    for (std::size_t p = 0; p < num_policies; ++p) {
        const char *policy =
            frontend::policyName(frontend::paperPolicies[p]);
        builder.addLeg(spec.name, policy, outputs[p].result);
        builder.addMetric(std::string(policy) + "_mean_efficiency",
                          outputs[p].meanEfficiency);
        efficiency.set(policy, std::move(outputs[p].matrix));
    }
    builder.addExtra("efficiency", std::move(efficiency));
    builder.setSweep(sweep_wall,
                     static_cast<unsigned>(cli.getUint("jobs", 0)));
    bench::maybeWriteReport(cli, builder.finish());
    bench::writeTraceIfRequested(cli, "fig05_btb_heatmap");
    return 0;
}

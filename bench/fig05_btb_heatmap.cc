/**
 * @file
 * Figure 5: efficiency heat map of a 256-entry 8-way BTB under the
 * five replacement policies for one trace. Darker cells are frames
 * holding dead entries longer; GHRP improves live time.
 */

#include <cstdio>

#include "bench_common.hh"
#include "workload/suite.hh"

int
main(int argc, char **argv)
{
    using namespace ghrp;

    core::CliOptions cli(argc, argv);
    workload::TraceSpec spec;
    spec.category = workload::parseCategory(
        cli.getString("category", "SHORT-SERVER"));
    spec.seed = cli.getUint("seed", 13);
    spec.name = "fig05";
    const std::uint64_t instructions =
        cli.getUint("instructions", 4'000'000);
    const std::string pgm_prefix = cli.getString("pgm", "");
    if (cli.has("quiet"))
        setLogLevel(LogLevel::Quiet);

    const trace::Trace tr = workload::buildTrace(spec, instructions);

    std::printf("=== Figure 5: BTB efficiency heat map "
                "(256-entry 8-way, trace %s seed %llu) ===\n\n",
                workload::categoryName(spec.category),
                static_cast<unsigned long long>(spec.seed));

    for (frontend::PolicyKind policy : frontend::paperPolicies) {
        frontend::FrontendConfig config;
        config.policy = policy;
        config.btb = cache::CacheConfig::btb(256, 8);
        config.trackEfficiency = true;

        frontend::FrontendSim sim(config);
        const frontend::FrontendResult r = sim.run(tr);
        const stats::EfficiencyTracker &eff = *sim.btbTracker();

        std::printf("--- %s: mean efficiency %.3f, BTB MPKI %.3f ---\n",
                    frontend::policyName(policy), eff.meanEfficiency(),
                    r.btbMpki);
        std::printf("%s\n", eff.renderAscii(16).c_str());

        if (!pgm_prefix.empty()) {
            const std::string path = pgm_prefix + "_" +
                                     frontend::policyName(policy) +
                                     ".pgm";
            eff.writePgm(path);
            std::printf("wrote %s\n\n", path.c_str());
        }
    }
    return 0;
}

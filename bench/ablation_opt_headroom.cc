/**
 * @file
 * OPT headroom ablation: for each trace, I-cache and BTB misses under
 * LRU, GHRP and Belady's OPT (offline optimum with bypass). Reports
 * how much of the LRU-to-OPT gap GHRP captures — the honest upper
 * bound any online policy is fighting for (EXPERIMENTS.md fidelity
 * analysis).
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/opt.hh"
#include "stats/table.hh"
#include "workload/suite.hh"

int
main(int argc, char **argv)
{
    using namespace ghrp;

    core::CliOptions cli(argc, argv);
    const auto num_traces =
        static_cast<std::uint32_t>(cli.getUint("traces", 6));
    const std::uint64_t instructions =
        cli.getUint("instructions", 4'000'000);
    const std::uint64_t base_seed = cli.getUint("seed", 42);
    const auto jobs = static_cast<unsigned>(cli.getUint("jobs", 0));
    bench::initTelemetry(cli, "ablation_opt_headroom");

    const std::vector<workload::TraceSpec> specs =
        workload::makeSuite(num_traces, base_seed);

    std::printf("=== OPT headroom (cold caches, %u traces) ===\n\n",
                num_traces);
    stats::TextTable table({"trace", "LRU MPKI", "GHRP MPKI", "OPT MPKI",
                            "headroom %", "captured %"});

    struct PerTrace
    {
        double lru = 0, ghrp = 0, opt = 0;
    };
    double sweep_wall = 0.0;
    const std::vector<PerTrace> rows = bench::mapTraceSweep(
        specs, instructions, jobs, 3,
        [](const workload::TraceSpec &, const trace::Trace &tr) {
            PerTrace out;
            frontend::FrontendConfig cfg;
            cfg.warmupFraction = 0.0;  // OPT replays the whole trace
            cfg.policy = frontend::PolicyKind::Lru;
            out.lru = frontend::simulateTrace(cfg, tr).icacheMpki;
            cfg.policy = frontend::PolicyKind::Ghrp;
            out.ghrp = frontend::simulateTrace(cfg, tr).icacheMpki;
            out.opt = core::simulateOptIcache(tr, cfg.icache).mpki();
            return out;
        },
        &sweep_wall);

    double sum_headroom = 0, sum_captured = 0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto &[lru, ghrp, opt] = rows[i];
        const double headroom = lru > 0 ? (lru - opt) / lru * 100 : 0;
        const double captured =
            lru - opt > 1e-9 ? (lru - ghrp) / (lru - opt) * 100 : 0;
        sum_headroom += headroom;
        sum_captured += captured;

        table.addRow({specs[i].name, stats::TextTable::num(lru),
                      stats::TextTable::num(ghrp),
                      stats::TextTable::num(opt),
                      stats::TextTable::num(headroom, 1),
                      stats::TextTable::num(captured, 1)});
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("mean headroom %.1f%%; mean share captured by GHRP "
                "%.1f%%\n",
                sum_headroom / num_traces, sum_captured / num_traces);

    report::ReportBuilder builder("ablation_opt_headroom");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        builder.addMetric(specs[i].name + "_lru_mpki", rows[i].lru);
        builder.addMetric(specs[i].name + "_ghrp_mpki", rows[i].ghrp);
        builder.addMetric(specs[i].name + "_opt_mpki", rows[i].opt);
    }
    builder.addMetric("mean_headroom_pct", sum_headroom / num_traces);
    builder.addMetric("mean_captured_pct", sum_captured / num_traces);
    builder.setSweep(sweep_wall, jobs, specs.size() * 3);
    bench::maybeWriteReport(cli, builder.finish());
    bench::writeTraceIfRequested(cli, "ablation_opt_headroom");
    return 0;
}

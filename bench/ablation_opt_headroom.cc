/**
 * @file
 * OPT headroom ablation: for each trace, I-cache and BTB misses under
 * LRU, GHRP and Belady's OPT (offline optimum with bypass). Reports
 * how much of the LRU-to-OPT gap GHRP captures — the honest upper
 * bound any online policy is fighting for (EXPERIMENTS.md fidelity
 * analysis).
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/opt.hh"
#include "stats/table.hh"
#include "workload/suite.hh"

int
main(int argc, char **argv)
{
    using namespace ghrp;

    core::CliOptions cli(argc, argv);
    const auto num_traces =
        static_cast<std::uint32_t>(cli.getUint("traces", 6));
    const std::uint64_t instructions =
        cli.getUint("instructions", 4'000'000);
    const std::uint64_t base_seed = cli.getUint("seed", 42);
    if (cli.has("quiet"))
        setLogLevel(LogLevel::Quiet);

    const std::vector<workload::TraceSpec> specs =
        workload::makeSuite(num_traces, base_seed);

    std::printf("=== OPT headroom (cold caches, %u traces) ===\n\n",
                num_traces);
    stats::TextTable table({"trace", "LRU MPKI", "GHRP MPKI", "OPT MPKI",
                            "headroom %", "captured %"});

    double sum_headroom = 0, sum_captured = 0;
    std::size_t done = 0;
    for (const workload::TraceSpec &spec : specs) {
        const trace::Trace tr = workload::buildTrace(spec, instructions);

        frontend::FrontendConfig cfg;
        cfg.warmupFraction = 0.0;  // OPT replays the whole trace
        cfg.policy = frontend::PolicyKind::Lru;
        const double lru = frontend::simulateTrace(cfg, tr).icacheMpki;
        cfg.policy = frontend::PolicyKind::Ghrp;
        const double ghrp = frontend::simulateTrace(cfg, tr).icacheMpki;
        const double opt =
            core::simulateOptIcache(tr, cfg.icache).mpki();

        const double headroom = lru > 0 ? (lru - opt) / lru * 100 : 0;
        const double captured =
            lru - opt > 1e-9 ? (lru - ghrp) / (lru - opt) * 100 : 0;
        sum_headroom += headroom;
        sum_captured += captured;

        table.addRow({spec.name, stats::TextTable::num(lru),
                      stats::TextTable::num(ghrp),
                      stats::TextTable::num(opt),
                      stats::TextTable::num(headroom, 1),
                      stats::TextTable::num(captured, 1)});
        ++done;
        if (logLevel() != LogLevel::Quiet)
            std::fprintf(stderr, "\r[%zu/%zu traces]", done, specs.size());
    }
    if (logLevel() != LogLevel::Quiet)
        std::fprintf(stderr, "\n");

    std::printf("%s\n", table.render().c_str());
    std::printf("mean headroom %.1f%%; mean share captured by GHRP "
                "%.1f%%\n",
                sum_headroom / num_traces, sum_captured / num_traces);
    return 0;
}

/**
 * @file
 * Dynamic policy selection headline: set-dueling GHRP-vs-LRU on the
 * Figure 3 I-cache configuration. Runs the two static constituents
 * plus the duel:GHRP,LRU meta-policy over the same suite, and prints
 * the dueling summary the report's extras carry — dueling MPKI
 * against the per-trace best-static oracle upper bound, plus each
 * trace's final PSEL verdict.
 *
 * Default: 64KB 8-way I-cache, 64B lines (the paper's configuration),
 * the standard BTB alongside. The committed seed report drives the
 * EXPERIMENTS.md "fig03_duel" block.
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.hh"
#include "stats/table.hh"

int
main(int argc, char **argv)
{
    using namespace ghrp;

    core::CliOptions cli(argc, argv);
    core::SuiteOptions options =
        bench::suiteOptions(cli, 24, 0, "fig03_duel");
    const frontend::PolicySpec duel =
        frontend::parsePolicySpec("duel:ghrp,lru");
    options.policies = {frontend::PolicyKind::Lru,
                        frontend::PolicyKind::Ghrp, duel};

    const core::SuiteResults results =
        bench::runSuiteTimed(options, cli, "fig03_duel");

    std::printf("=== Dynamic selection: duel:GHRP,LRU vs constituents "
                "(64KB 8-way I-cache, %zu traces) ===\n\n",
                results.specs.size());

    const std::vector<double> lru_icache =
        results.icacheMpki(frontend::PolicyKind::Lru);
    const std::vector<double> ghrp_icache =
        results.icacheMpki(frontend::PolicyKind::Ghrp);
    const std::vector<double> duel_icache = results.icacheMpki(duel);
    const std::vector<double> lru_btb =
        results.btbMpki(frontend::PolicyKind::Lru);
    const std::vector<double> ghrp_btb =
        results.btbMpki(frontend::PolicyKind::Ghrp);
    const std::vector<double> duel_btb = results.btbMpki(duel);

    // Per-trace best static constituent: the bound a perfect selector
    // would reach.
    std::vector<double> oracle_icache, oracle_btb;
    for (std::size_t i = 0; i < results.specs.size(); ++i) {
        oracle_icache.push_back(
            std::min(lru_icache[i], ghrp_icache[i]));
        oracle_btb.push_back(std::min(lru_btb[i], ghrp_btb[i]));
    }

    stats::TextTable summary(
        {"policy", "I-cache MPKI", "BTB MPKI"});
    const auto row = [&](const std::string &name,
                         const std::vector<double> &icache,
                         const std::vector<double> &btb) {
        summary.addRow({name,
                        stats::TextTable::num(
                            core::SuiteResults::mean(icache)),
                        stats::TextTable::num(
                            core::SuiteResults::mean(btb))});
    };
    row("LRU", lru_icache, lru_btb);
    row("GHRP", ghrp_icache, ghrp_btb);
    row(frontend::policyName(duel), duel_icache, duel_btb);
    row("oracle (per-trace best)", oracle_icache, oracle_btb);
    std::printf("%s\n", summary.render().c_str());

    // Final PSEL verdict per trace: negative picks GHRP (policy A),
    // non-negative picks... see DuelPolicy — winner A iff psel >= 0.
    stats::TextTable verdicts({"trace", "I$ final PSEL", "I$ winner",
                               "BTB final PSEL", "BTB winner"});
    const std::vector<frontend::FrontendResult> &duel_runs =
        results.results.at(duel);
    for (std::size_t i = 0; i < duel_runs.size(); ++i) {
        const auto &ic = duel_runs[i].icacheDuel;
        const auto &bt = duel_runs[i].btbDuel;
        verdicts.addRow({results.specs[i].name,
                         std::to_string(ic.finalPsel),
                         ic.finalPsel >= 0 ? "GHRP" : "LRU",
                         std::to_string(bt.finalPsel),
                         bt.finalPsel >= 0 ? "GHRP" : "LRU"});
    }
    std::printf("%s\n", verdicts.render().c_str());

    const double duel_mean = core::SuiteResults::mean(duel_icache);
    const double worst_static =
        std::max(core::SuiteResults::mean(lru_icache),
                 core::SuiteResults::mean(ghrp_icache));
    std::printf("dueling I-cache mean %.4f MPKI vs worst static %.4f — "
                "%s\n",
                duel_mean, worst_static,
                duel_mean <= worst_static
                    ? "within the constituents' envelope"
                    : "OUTSIDE the constituents' envelope");
    return 0;
}

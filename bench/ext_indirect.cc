/**
 * @file
 * Future-work extension (paper Section VI): interaction with indirect
 * branch prediction. Compares indirect-target misprediction rates with
 * the BTB's last-seen target (the paper's baseline) against the
 * path-history-indexed indirect target predictor, under GHRP
 * replacement, and reports the effect on BTB MPKI.
 */

#include <cstdio>

#include "bench_common.hh"
#include "stats/running_stats.hh"
#include "stats/table.hh"
#include "workload/suite.hh"

int
main(int argc, char **argv)
{
    using namespace ghrp;

    core::CliOptions cli(argc, argv);
    const auto num_traces =
        static_cast<std::uint32_t>(cli.getUint("traces", 8));
    const std::uint64_t instructions = cli.getUint("instructions", 0);
    const std::uint64_t base_seed = cli.getUint("seed", 42);
    const auto jobs = static_cast<unsigned>(cli.getUint("jobs", 0));
    bench::initTelemetry(cli, "ext_indirect");

    const std::vector<workload::TraceSpec> specs =
        workload::makeSuite(num_traces, base_seed);

    struct PerTrace
    {
        frontend::FrontendResult base, itp;
    };
    double sweep_wall = 0.0;
    const std::vector<PerTrace> rows = bench::mapTraceSweep(
        specs, instructions, jobs, 2,
        [](const workload::TraceSpec &, const trace::Trace &tr) {
            PerTrace out;
            frontend::FrontendConfig cfg;
            cfg.policy = frontend::PolicyKind::Ghrp;
            out.base = frontend::simulateTrace(cfg, tr);
            cfg.useIndirectPredictor = true;
            out.itp = frontend::simulateTrace(cfg, tr);
            return out;
        },
        &sweep_wall);

    stats::RunningStats base_rate, itp_rate, base_mpki, itp_mpki;
    for (const PerTrace &row : rows) {
        const frontend::FrontendResult &base = row.base;
        const frontend::FrontendResult &itp = row.itp;
        if (base.indirectBranches > 0) {
            base_rate.add(100.0 *
                          static_cast<double>(base.indirectMispredicts) /
                          static_cast<double>(base.indirectBranches));
            itp_rate.add(100.0 *
                         static_cast<double>(itp.indirectMispredicts) /
                         static_cast<double>(itp.indirectBranches));
        }
        base_mpki.add(base.indirectMpki());
        itp_mpki.add(itp.indirectMpki());
    }

    std::printf("=== Extension: indirect target prediction (GHRP "
                "replacement, %u traces) ===\n\n",
                num_traces);
    stats::TextTable table({"scheme", "indirect mispredict %",
                            "indirect MPKI"});
    table.addRow({"BTB last-seen target",
                  stats::TextTable::num(base_rate.mean(), 2),
                  stats::TextTable::num(base_mpki.mean())});
    table.addRow({"+ path-history target predictor",
                  stats::TextTable::num(itp_rate.mean(), 2),
                  stats::TextTable::num(itp_mpki.mean())});
    std::printf("%s\n", table.render().c_str());
    std::printf("paper Section VI lists this interaction as future "
                "work; the polymorphic,\npath-correlated indirect sites "
                "(cyclic callee rotation in the workload)\nare exactly "
                "what last-target prediction cannot capture.\n");

    report::ReportBuilder builder("ext_indirect");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        builder.addLeg(specs[i].name, "GHRP+last-target", rows[i].base);
        builder.addLeg(specs[i].name, "GHRP+path-itp", rows[i].itp);
    }
    builder.addMetric("base_indirect_mispredict_pct", base_rate.mean());
    builder.addMetric("itp_indirect_mispredict_pct", itp_rate.mean());
    builder.addMetric("base_indirect_mpki", base_mpki.mean());
    builder.addMetric("itp_indirect_mpki", itp_mpki.mean());
    builder.setSweep(sweep_wall, jobs);
    bench::maybeWriteReport(cli, builder.finish());
    bench::writeTraceIfRequested(cli, "ext_indirect");
    return 0;
}

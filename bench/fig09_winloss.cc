/**
 * @file
 * Figure 9: per-policy counts of traces that are better than, similar
 * to, or worse than LRU on I-cache MPKI. Paper (662 traces): Random
 * worse on 541; SDBP worse on 106 / better on ~271; SRRIP worse on
 * 110; GHRP better on 83%, similar 14%, worse 2%.
 */

#include <cstdio>

#include "bench_common.hh"
#include "stats/table.hh"

int
main(int argc, char **argv)
{
    using namespace ghrp;

    core::CliOptions cli(argc, argv);
    core::SuiteOptions options = bench::suiteOptions(cli, 16, 0, "fig09_winloss");
    const double tolerance = cli.getDouble("tolerance", 0.02);

    const core::SuiteResults results =
        bench::runSuiteTimed(options, cli, "fig09_winloss");
    const std::vector<double> lru =
        results.icacheMpki(frontend::PolicyKind::Lru);

    std::printf("=== Figure 9: traces better/similar/worse than LRU "
                "(%zu traces, +/-%.0f%% tolerance) ===\n\n",
                results.specs.size(), tolerance * 100);

    stats::TextTable table(
        {"policy", "better", "similar", "worse", "worse %"});
    for (frontend::PolicyKind policy : frontend::paperPolicies) {
        if (policy == frontend::PolicyKind::Lru)
            continue;
        const core::SuiteResults::WinLoss wl = core::SuiteResults::winLoss(
            results.icacheMpki(policy), lru, tolerance);
        table.addRow(
            {frontend::policyName(policy), std::to_string(wl.better),
             std::to_string(wl.similar), std::to_string(wl.worse),
             stats::TextTable::num(
                 100.0 * static_cast<double>(wl.worse) /
                     static_cast<double>(results.specs.size()),
                 1)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("paper: Random worse on 82%% of traces, SRRIP/SDBP on "
                "~16%%, GHRP on only 2%%.\n");
    return 0;
}

/**
 * @file
 * Figure 7: average I-cache MPKI across cache configurations — the
 * {8, 16, 32, 64}KB x {4, 8}-way grid with 64B lines — for the five
 * policies. The paper's trend: the ordering of policies is the same at
 * every size, with GHRP lowest.
 */

#include <cstdio>

#include "bench_common.hh"
#include "stats/table.hh"

int
main(int argc, char **argv)
{
    using namespace ghrp;

    core::CliOptions cli(argc, argv);
    const auto num_traces =
        static_cast<std::uint32_t>(cli.getUint("traces", 8));
    const std::uint64_t instructions =
        cli.getUint("instructions", 4'000'000);
    const std::uint64_t base_seed = cli.getUint("seed", 42);
    const auto jobs = static_cast<unsigned>(cli.getUint("jobs", 0));
    bench::initTelemetry(cli, "fig07_icache_configs");

    struct Config
    {
        std::uint32_t kb;
        std::uint32_t assoc;
    };
    const Config configs[] = {{8, 4},  {8, 8},  {16, 4}, {16, 8},
                              {32, 4}, {32, 8}, {64, 4}, {64, 8}};

    const std::vector<workload::TraceSpec> specs =
        workload::makeSuite(num_traces, base_seed);

    // Per-trace MPKI grid, computed one trace per pool job; the serial
    // reduction below keeps the summation order fixed.
    struct PerTrace
    {
        double mpki[8][5] = {};
    };
    double sweep_wall = 0.0;
    const std::vector<PerTrace> grids = bench::mapTraceSweep(
        specs, instructions, jobs,
        std::size(configs) * std::size(frontend::paperPolicies),
        [&](const workload::TraceSpec &, const trace::Trace &tr) {
            PerTrace out;
            for (std::size_t c = 0; c < std::size(configs); ++c) {
                for (std::size_t p = 0;
                     p < std::size(frontend::paperPolicies); ++p) {
                    frontend::FrontendConfig config;
                    config.policy = frontend::paperPolicies[p];
                    config.icache = cache::CacheConfig::icache(
                        configs[c].kb, configs[c].assoc);
                    out.mpki[c][p] =
                        frontend::simulateTrace(config, tr).icacheMpki;
                }
            }
            return out;
        },
        &sweep_wall);

    // means[config][policy]
    double sums[8][5] = {};
    for (const PerTrace &grid : grids)
        for (std::size_t c = 0; c < std::size(configs); ++c)
            for (std::size_t p = 0; p < 5; ++p)
                sums[c][p] += grid.mpki[c][p];

    std::printf("=== Figure 7: average I-cache MPKI by configuration "
                "(%u traces) ===\n\n",
                num_traces);
    stats::TextTable table(
        {"config", "LRU", "Random", "SRRIP", "SDBP", "GHRP"});
    for (std::size_t c = 0; c < std::size(configs); ++c) {
        char name[32];
        std::snprintf(name, sizeof(name), "%2uKB %u-way", configs[c].kb,
                      configs[c].assoc);
        std::vector<std::string> row{name};
        for (std::size_t p = 0; p < 5; ++p)
            row.push_back(stats::TextTable::num(
                sums[c][p] / static_cast<double>(num_traces)));
        table.addRow(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("paper trend: same ordering at every configuration; "
                "Random worst, GHRP lowest.\n");

    report::ReportBuilder builder("fig07_icache_configs");
    for (std::size_t c = 0; c < std::size(configs); ++c) {
        char key[32];
        std::snprintf(key, sizeof(key), "%ukb_%uway", configs[c].kb,
                      configs[c].assoc);
        for (std::size_t p = 0; p < 5; ++p)
            builder.addMetric(
                std::string(key) + "_" +
                    frontend::policyName(frontend::paperPolicies[p]) +
                    "_mpki",
                sums[c][p] / static_cast<double>(num_traces));
    }
    builder.setSweep(sweep_wall, jobs,
                     specs.size() * std::size(configs) *
                         std::size(frontend::paperPolicies));
    bench::maybeWriteReport(cli, builder.finish());
    bench::writeTraceIfRequested(cli, "fig07_icache_configs");
    return 0;
}

/**
 * @file
 * Figure 10: per-benchmark BTB MPKI for a 4-way 4K-entry BTB
 * (modeled after the Samsung Mongoose BTB) under the five policies,
 * with the average as the last row.
 */

#include <cstdio>

#include "bench_common.hh"
#include "stats/table.hh"

int
main(int argc, char **argv)
{
    using namespace ghrp;

    core::CliOptions cli(argc, argv);
    core::SuiteOptions options = bench::suiteOptions(cli, 10, 0, "fig10_btb_perbench");
    options.base.btb = cache::CacheConfig::btb(
        static_cast<std::uint32_t>(cli.getUint("btb-entries", 4096)),
        static_cast<std::uint32_t>(cli.getUint("btb-assoc", 4)));

    const core::SuiteResults results =
        bench::runSuiteTimed(options, cli, "fig10_btb_perbench");

    std::printf("=== Figure 10: per-benchmark BTB MPKI (%s, %zu traces) "
                "===\n\n",
                options.base.btb.describe().c_str(),
                results.specs.size());

    stats::TextTable table(
        {"trace", "LRU", "Random", "SRRIP", "SDBP", "GHRP"});
    for (std::size_t i = 0; i < results.specs.size(); ++i) {
        std::vector<std::string> row{results.specs[i].name};
        for (frontend::PolicyKind policy : frontend::paperPolicies)
            row.push_back(stats::TextTable::num(
                results.results.at(policy)[i].btbMpki));
        table.addRow(std::move(row));
    }
    std::vector<std::string> avg{"AVERAGE"};
    for (frontend::PolicyKind policy : frontend::paperPolicies)
        avg.push_back(stats::TextTable::num(
            core::SuiteResults::mean(results.btbMpki(policy))));
    table.addRow(std::move(avg));

    std::printf("%s\n", table.render().c_str());
    std::printf("paper averages: LRU 4.58, Random 4.81, SRRIP 4.17, "
                "SDBP 4.57, GHRP 3.21.\n");
    return 0;
}

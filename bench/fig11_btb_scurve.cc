/**
 * @file
 * Figure 11 + Section V-B headline numbers: BTB MPKI for the five
 * policies over the whole suite, as an S-curve (traces ordered by LRU
 * BTB MPKI) plus the summary the paper reports:
 *
 *   "the LRU policy yields an average 4.58 MPKI. Random is worse at
 *    4.81, SRRIP and SDBP are slightly better at 4.17 and 4.57.
 *    GHRP has the lowest average MPKI at 3.21, a 30.0% improvement
 *    over LRU, 33.3% over Random, 23.1% over SRRIP and 29.1% over
 *    SDBP."
 *
 * Default: 4K-entry 8-way BTB (the paper's Figure 11 configuration).
 */

#include <cstdio>

#include "bench_common.hh"
#include "stats/table.hh"

int
main(int argc, char **argv)
{
    using namespace ghrp;

    core::CliOptions cli(argc, argv);
    core::SuiteOptions options = bench::suiteOptions(cli, 24, 0, "fig11_btb_scurve");
    options.base.btb = cache::CacheConfig::btb(
        static_cast<std::uint32_t>(cli.getUint("btb-entries", 4096)),
        static_cast<std::uint32_t>(cli.getUint("btb-assoc", 8)));

    const core::SuiteResults results =
        bench::runSuiteTimed(options, cli, "fig11_btb_scurve");

    const std::vector<double> lru =
        results.btbMpki(frontend::PolicyKind::Lru);

    std::printf("=== Figure 11: BTB MPKI S-curve (%s, %zu traces) ===\n\n",
                options.base.btb.describe().c_str(), results.specs.size());

    const stats::SCurve curve = stats::SCurve::byAscending(lru);
    stats::TextTable scurve({"rank", "trace", "LRU", "Random", "SRRIP",
                             "SDBP", "GHRP"});
    for (std::size_t rank = 0; rank < curve.order.size(); ++rank) {
        const std::size_t i = curve.order[rank];
        scurve.addRow(
            {std::to_string(rank + 1), results.specs[i].name,
             stats::TextTable::num(lru[i]),
             stats::TextTable::num(
                 results.results.at(frontend::PolicyKind::Random)[i]
                     .btbMpki),
             stats::TextTable::num(
                 results.results.at(frontend::PolicyKind::Srrip)[i]
                     .btbMpki),
             stats::TextTable::num(
                 results.results.at(frontend::PolicyKind::Sdbp)[i]
                     .btbMpki),
             stats::TextTable::num(
                 results.results.at(frontend::PolicyKind::Ghrp)[i]
                     .btbMpki)});
    }
    std::printf("%s\n", scurve.render().c_str());

    std::printf("=== Section V-B summary ===\n\n");
    stats::TextTable summary({"policy", "mean BTB MPKI", "vs LRU %"});
    const double lru_mean = core::SuiteResults::mean(lru);
    for (frontend::PolicyKind policy : frontend::paperPolicies) {
        const double m =
            core::SuiteResults::mean(results.btbMpki(policy));
        summary.addRow({frontend::policyName(policy),
                        stats::TextTable::num(m),
                        policy == frontend::PolicyKind::Lru
                            ? "-"
                            : stats::TextTable::num(
                                  lru_mean > 0
                                      ? (m - lru_mean) / lru_mean * 100
                                      : 0,
                                  1)});
    }
    std::printf("%s\n", summary.render().c_str());
    std::printf("paper: GHRP -30.0%% vs LRU, -33.3%% vs Random, "
                "-23.1%% vs SRRIP, -29.1%% vs SDBP\n");
    return 0;
}

/** @file Unit tests for the branch target buffer. */

#include <gtest/gtest.h>

#include "branch/btb.hh"
#include "cache/basic_policies.hh"

namespace
{

using namespace ghrp;
using namespace ghrp::branch;

Btb
makeBtb(std::uint32_t entries = 64, std::uint32_t assoc = 4)
{
    return Btb(cache::CacheConfig::btb(entries, assoc),
               std::make_unique<cache::LruPolicy>());
}

TEST(Btb, MissThenHit)
{
    Btb btb = makeBtb();
    const BtbResult miss = btb.accessTaken(0x1000, 0x2000);
    EXPECT_FALSE(miss.hit);
    const BtbResult hit = btb.accessTaken(0x1000, 0x2000);
    EXPECT_TRUE(hit.hit);
    EXPECT_TRUE(hit.targetMatched);
}

TEST(Btb, TargetMismatchDetectedAndUpdated)
{
    Btb btb = makeBtb();
    btb.accessTaken(0x1000, 0x2000);
    const BtbResult changed = btb.accessTaken(0x1000, 0x3000);
    EXPECT_TRUE(changed.hit);
    EXPECT_FALSE(changed.targetMatched);
    // The stored target is updated.
    EXPECT_EQ(btb.predictTarget(0x1000).value(), 0x3000u);
}

TEST(Btb, PredictTargetWithoutStateChange)
{
    Btb btb = makeBtb(8, 2);  // 4 sets
    EXPECT_FALSE(btb.predictTarget(0x1000).has_value());
    btb.accessTaken(0x1000, 0x2000);
    // Probing must not refresh recency: fill the set and check the
    // probed entry is still evicted in LRU order.
    EXPECT_TRUE(btb.predictTarget(0x1000).has_value());
    // Same set: pc advances by sets*4 bytes = 16.
    btb.accessTaken(0x1010, 0xA);
    btb.predictTarget(0x1000);
    btb.accessTaken(0x1020, 0xB);  // evicts 0x1000 (LRU)
    EXPECT_FALSE(btb.predictTarget(0x1000).has_value());
}

TEST(Btb, DistinctBranchesInOneBlockMapToDistinctSets)
{
    // Modulo indexing by pc >> 2: adjacent instructions hit adjacent
    // sets (paper Section III-E point 3).
    Btb btb = makeBtb(64, 4);  // 16 sets
    const auto &model = btb.cacheModel();
    EXPECT_NE(model.setIndex(0x1000), model.setIndex(0x1004));
}

TEST(Btb, StatsCountMisses)
{
    Btb btb = makeBtb();
    btb.accessTaken(0x1000, 0x2000);
    btb.accessTaken(0x1000, 0x2000);
    btb.accessTaken(0x2000, 0x3000);
    EXPECT_EQ(btb.accessStats().misses, 2u);
    EXPECT_EQ(btb.accessStats().hits, 1u);
    btb.resetStats();
    EXPECT_EQ(btb.accessStats().accesses, 0u);
}

TEST(Btb, CapacityEviction)
{
    Btb btb = makeBtb(8, 2);  // 4 sets x 2 ways
    // Three branches mapping to set 0: pc >> 2 multiples of 4.
    btb.accessTaken(0x00, 1);
    btb.accessTaken(0x10, 2);
    btb.accessTaken(0x20, 3);
    EXPECT_FALSE(btb.predictTarget(0x00).has_value());
    EXPECT_TRUE(btb.predictTarget(0x10).has_value());
    EXPECT_TRUE(btb.predictTarget(0x20).has_value());
}

} // anonymous namespace

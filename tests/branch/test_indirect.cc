/** @file Unit tests for the indirect target predictor. */

#include <gtest/gtest.h>

#include "branch/indirect.hh"

namespace
{

using namespace ghrp;
using namespace ghrp::branch;

TEST(Indirect, ColdPredictsNothing)
{
    IndirectPredictor p;
    EXPECT_FALSE(p.predict(0x1000).has_value());
}

TEST(Indirect, LearnsMonomorphicTarget)
{
    IndirectPredictor p;
    for (int i = 0; i < 4; ++i)
        p.update(0x1000, 0x2000);
    // With a stable history (same target each time), the entry for the
    // current history must hold the target.
    const auto predicted = p.predict(0x1000);
    ASSERT_TRUE(predicted.has_value());
    EXPECT_EQ(*predicted, 0x2000u);
}

TEST(Indirect, LearnsCyclicTargetsViaHistory)
{
    // Target alternates A,B,A,B: last-target prediction is 0% correct
    // after warmup; the history-indexed predictor approaches 100%.
    IndirectPredictor p;
    const Addr pc = 0x4000;
    const Addr targets[2] = {0xA000, 0xB000};
    int correct = 0;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
        const Addr actual = targets[i % 2];
        const auto predicted = p.predict(pc);
        if (predicted && *predicted == actual)
            ++correct;
        p.update(pc, actual);
    }
    EXPECT_GT(static_cast<double>(correct) / n, 0.9);
}

TEST(Indirect, HistoryUpdatesOnEveryResolve)
{
    IndirectPredictor p;
    const std::uint32_t h0 = p.history();
    p.update(0x1000, 0x2000);
    EXPECT_NE(p.history(), h0);
}

TEST(Indirect, ConfidenceProtectsResidentEntries)
{
    IndirectConfig cfg;
    cfg.entries = 16;  // force conflicts
    IndirectPredictor p(cfg);
    // Build confidence on one branch...
    for (int i = 0; i < 3; ++i)
        p.update(0x1000, 0x2000);
    // ...then a single conflicting update must not immediately steal
    // the entry (it only ages confidence).
    // (Exact aliasing is hash-dependent; this is a smoke check that
    // updates never crash and predictions stay type-sound.)
    p.update(0x5554, 0x9000);
    SUCCEED();
}

TEST(Indirect, StorageBits)
{
    IndirectConfig cfg;
    cfg.entries = 2048;
    cfg.tagBits = 10;
    cfg.confBits = 2;
    IndirectPredictor p(cfg);
    EXPECT_EQ(p.storageBits(), 2048ull * (1 + 10 + 64 + 2));
}

} // anonymous namespace

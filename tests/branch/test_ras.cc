/** @file Unit tests for the return address stack. */

#include <gtest/gtest.h>

#include "branch/ras.hh"

namespace
{

using ghrp::branch::ReturnAddressStack;

TEST(Ras, LifoOrder)
{
    ReturnAddressStack ras(8);
    ras.push(0x100);
    ras.push(0x200);
    ras.push(0x300);
    EXPECT_EQ(ras.pop(), 0x300u);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(Ras, EmptyPopReturnsZero)
{
    ReturnAddressStack ras(4);
    EXPECT_TRUE(ras.empty());
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(Ras, OverflowWrapsKeepingNewest)
{
    ReturnAddressStack ras(2);
    ras.push(1);
    ras.push(2);
    ras.push(3);  // overwrites the oldest
    EXPECT_EQ(ras.size(), 2u);
    EXPECT_EQ(ras.pop(), 3u);
    EXPECT_EQ(ras.pop(), 2u);
    EXPECT_TRUE(ras.empty());
}

TEST(Ras, SizeTracksPushPop)
{
    ReturnAddressStack ras(4);
    EXPECT_EQ(ras.size(), 0u);
    ras.push(1);
    EXPECT_EQ(ras.size(), 1u);
    ras.pop();
    EXPECT_EQ(ras.size(), 0u);
}

TEST(Ras, DepthReported)
{
    ReturnAddressStack ras(32);
    EXPECT_EQ(ras.depth(), 32u);
}

} // anonymous namespace

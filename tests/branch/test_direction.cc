/** @file Unit tests for the direction predictors. */

#include <gtest/gtest.h>

#include "branch/direction.hh"
#include "util/random.hh"
#include "branch/perceptron.hh"

namespace
{

using namespace ghrp;
using namespace ghrp::branch;

double
accuracyOn(DirectionPredictor &p, const std::vector<bool> &outcomes,
           Addr pc = 0x4000)
{
    int correct = 0;
    for (bool taken : outcomes) {
        if (p.predict(pc) == taken)
            ++correct;
        p.update(pc, taken);
    }
    return static_cast<double>(correct) /
           static_cast<double>(outcomes.size());
}

std::vector<bool>
repeated(bool value, int n)
{
    return std::vector<bool>(static_cast<std::size_t>(n), value);
}

TEST(Bimodal, LearnsBias)
{
    BimodalPredictor p(1024);
    EXPECT_GT(accuracyOn(p, repeated(true, 200)), 0.95);
    BimodalPredictor q(1024);
    EXPECT_GT(accuracyOn(q, repeated(false, 200)), 0.95);
}

TEST(Bimodal, HysteresisSurvivesSingleFlip)
{
    BimodalPredictor p(1024);
    accuracyOn(p, repeated(true, 10));
    p.predict(0x4000);
    p.update(0x4000, false);  // one not-taken
    EXPECT_TRUE(p.predict(0x4000));  // still predicts taken
}

TEST(Gshare, LearnsAlternation)
{
    // T,N,T,N... is history-predictable: gshare should approach 100%
    // after warmup; bimodal cannot exceed ~50%.
    std::vector<bool> alt;
    for (int i = 0; i < 2000; ++i)
        alt.push_back(i % 2 == 0);

    GsharePredictor g;
    const double gshare_acc = accuracyOn(g, alt);
    BimodalPredictor b;
    const double bimodal_acc = accuracyOn(b, alt);
    EXPECT_GT(gshare_acc, 0.9);
    EXPECT_LT(bimodal_acc, 0.7);
}

TEST(Perceptron, LearnsBias)
{
    HashedPerceptron p;
    EXPECT_GT(accuracyOn(p, repeated(true, 400)), 0.9);
}

TEST(Perceptron, LearnsPeriodicPattern)
{
    // Period-5 pattern TTTNN...: linearly separable on history bits.
    std::vector<bool> pattern;
    for (int i = 0; i < 4000; ++i)
        pattern.push_back(i % 5 < 3);
    HashedPerceptron p;
    EXPECT_GT(accuracyOn(p, pattern), 0.9);
}

TEST(Perceptron, BeatsBimodalOnCorrelatedBranches)
{
    // Branch B's outcome equals branch A's previous outcome.
    HashedPerceptron hp;
    BimodalPredictor bi;
    Rng rng(3);
    int hp_correct = 0, bi_correct = 0;
    const int n = 4000;
    bool a_prev = false;
    for (int i = 0; i < n; ++i) {
        const bool a = rng.nextBool(0.5);
        // Branch A at 0x1000.
        hp.predict(0x1000);
        hp.update(0x1000, a);
        bi.predict(0x1000);
        bi.update(0x1000, a);
        // Branch B at 0x2000 repeats A's outcome.
        const bool b = a_prev;
        if (hp.predict(0x2000) == b)
            ++hp_correct;
        hp.update(0x2000, b);
        if (bi.predict(0x2000) == b)
            ++bi_correct;
        bi.update(0x2000, b);
        a_prev = a;
    }
    EXPECT_GT(hp_correct, bi_correct);
    EXPECT_GT(static_cast<double>(hp_correct) / n, 0.8);
}

TEST(Perceptron, ThetaDerivedFromHistoryLengths)
{
    PerceptronConfig cfg;
    cfg.historyLengths = {0, 10, 20, 30};
    HashedPerceptron p(cfg);
    // theta = 1.93 * mean(15) + 14 = ~42.
    EXPECT_NEAR(p.theta(), 42, 2);
}

TEST(Perceptron, ExplicitThetaHonored)
{
    PerceptronConfig cfg;
    cfg.theta = 77;
    HashedPerceptron p(cfg);
    EXPECT_EQ(p.theta(), 77);
}

TEST(Direction, NamesDistinct)
{
    BimodalPredictor b;
    GsharePredictor g;
    HashedPerceptron h;
    EXPECT_NE(b.name(), g.name());
    EXPECT_NE(g.name(), h.name());
}

} // anonymous namespace

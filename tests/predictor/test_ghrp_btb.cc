/**
 * @file
 * Tests for GHRP's BTB coupling (paper Section III-E): the BTB policy
 * reads the signature stored with the branch's I-cache block, carries
 * one dead bit per entry, and falls back to a fresh signature when the
 * block is absent.
 */

#include <gtest/gtest.h>

#include "branch/btb.hh"
#include "cache/cache.hh"
#include "predictor/ghrp.hh"

namespace
{

using namespace ghrp;
using namespace ghrp::predictor;

struct BtbCouplingFixture : public ::testing::Test
{
    BtbCouplingFixture()
        : predictor(config()),
          icache_policy_ptr(new GhrpReplacement(predictor)),
          icache(cache::CacheConfig::icache(1, 4),
                 std::unique_ptr<cache::ReplacementPolicy>(
                     icache_policy_ptr)),
          btb_policy_ptr(new GhrpBtbReplacement(predictor,
                                                *icache_policy_ptr,
                                                icache)),
          btb(cache::CacheConfig::btb(16, 4),
              std::unique_ptr<cache::ReplacementPolicy>(btb_policy_ptr))
    {
    }

    static GhrpConfig
    config()
    {
        GhrpConfig cfg;
        cfg.counterBits = 3;
        cfg.deadThreshold = 2;
        cfg.bypassThreshold = 7;   // keep fills flowing
        cfg.btbDeadThreshold = 2;
        return cfg;
    }

    GhrpPredictor predictor;
    GhrpReplacement *icache_policy_ptr;
    cache::CacheModel<> icache;
    GhrpBtbReplacement *btb_policy_ptr;
    branch::Btb btb;
};

TEST_F(BtbCouplingFixture, UsesResidentBlockSignature)
{
    // Fill the branch's block into the I-cache, then access the BTB.
    icache.access(0x400000, 0x400000);
    btb.accessTaken(0x400010, 0x500000);
    EXPECT_EQ(btb_policy_ptr->couplingStats().residentBlock, 1u);
    EXPECT_EQ(btb_policy_ptr->couplingStats().fallback, 0u);
}

TEST_F(BtbCouplingFixture, FallsBackWhenBlockAbsent)
{
    btb.accessTaken(0x400010, 0x500000);  // block never fetched
    EXPECT_EQ(btb_policy_ptr->couplingStats().fallback, 1u);
}

TEST_F(BtbCouplingFixture, DeadEntryPreferredVictim)
{
    // Prepare: fetch the branch block, saturate its stored signature
    // dead so the BTB marks the entry dead at fill.
    icache.access(0x400000, 0x400000);
    const std::uint16_t sig = icache_policy_ptr->signatureAt(
        icache.setIndex(0x400000), *icache.probe(0x400000));
    for (int i = 0; i < 8; ++i)
        predictor.train(sig, true);

    // Allocate the dead-marked branch (maps to BTB set of pc>>2 mod 4).
    // pc = 0x400000: (pc>>2) % 4 = 0.
    btb.accessTaken(0x400000, 0xAAAA);
    EXPECT_EQ(btb_policy_ptr->couplingStats().predictedDead, 1u);

    // Fill the rest of set 0 with live branches (blocks not resident ->
    // fallback signatures, untrained -> live).
    btb.accessTaken(0x400010, 0xBBBB);
    btb.accessTaken(0x400020, 0xCCCC);
    btb.accessTaken(0x400030, 0xDDDD);
    // A new branch in set 0 must evict the dead entry (0x400000),
    // not the LRU one.
    btb.accessTaken(0x400040, 0xEEEE);
    EXPECT_FALSE(btb.predictTarget(0x400000).has_value());
    EXPECT_TRUE(btb.predictTarget(0x400010).has_value());
    EXPECT_EQ(btb.accessStats().deadEvictions, 1u);
}

TEST_F(BtbCouplingFixture, LruFallbackWithoutDeadEntries)
{
    btb.accessTaken(0x400000, 1);
    btb.accessTaken(0x400010, 2);
    btb.accessTaken(0x400020, 3);
    btb.accessTaken(0x400030, 4);
    btb.accessTaken(0x400040, 5);  // evicts the oldest (0x400000)
    EXPECT_FALSE(btb.predictTarget(0x400000).has_value());
    EXPECT_EQ(btb.accessStats().deadEvictions, 0u);
}

TEST_F(BtbCouplingFixture, HitRefreshesDeadBit)
{
    icache.access(0x400000, 0x400000);
    btb.accessTaken(0x400000, 0xAAAA);
    // Saturate after allocation; the dead bit updates on the next hit.
    const std::uint16_t sig = icache_policy_ptr->signatureAt(
        icache.setIndex(0x400000), *icache.probe(0x400000));
    for (int i = 0; i < 8; ++i)
        predictor.train(sig, true);
    const std::uint64_t before =
        btb_policy_ptr->couplingStats().predictedDead;
    btb.accessTaken(0x400000, 0xAAAA);  // hit -> re-predict
    EXPECT_EQ(btb_policy_ptr->couplingStats().predictedDead, before + 1);
}

TEST_F(BtbCouplingFixture, BtbBypassDisabledByDefault)
{
    GhrpConfig cfg;
    EXPECT_FALSE(cfg.btbBypassEnabled);
    // With bypass disabled every taken miss allocates.
    btb.accessTaken(0x400100, 0x1);
    EXPECT_TRUE(btb.predictTarget(0x400100).has_value());
}

} // anonymous namespace

/** @file Unit tests for the adapted SHiP policy. */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "frontend/frontend.hh"
#include "predictor/ship.hh"

namespace
{

using namespace ghrp;
using namespace ghrp::predictor;

TEST(Ship, SignatureBlockGranular)
{
    ShipReplacement p;
    p.reset(4, 2);
    EXPECT_EQ(p.signatureOf(0x400000), p.signatureOf(0x40003C));
    EXPECT_NE(p.signatureOf(0x400000), p.signatureOf(0x400040));
}

TEST(Ship, ShctLearnsHitters)
{
    auto policy = std::make_unique<ShipReplacement>();
    ShipReplacement *p = policy.get();
    cache::CacheModel<> c(cache::CacheConfig::icache(1, 2),
                          std::move(policy));
    const Addr hot = 0x700000;
    const std::uint32_t before = p->shctOf(p->signatureOf(hot));
    c.access(hot, hot);
    c.access(hot, hot);  // hit -> SHCT increment
    EXPECT_GT(p->shctOf(p->signatureOf(hot)), before);
}

TEST(Ship, ShctLearnsNonHitters)
{
    auto policy = std::make_unique<ShipReplacement>();
    ShipReplacement *p = policy.get();
    cache::CacheModel<> c(cache::CacheConfig::icache(1, 2),
                          std::move(policy));
    // Stream distinct blocks through set 0 (stride = 8 blocks): the
    // one-shot signatures drop to zero.
    const Addr dead = 0x10000;
    const std::uint32_t sig = p->signatureOf(dead);
    for (int round = 0; round < 4; ++round)
        for (int b = 0; b < 3; ++b)
            c.access(dead + static_cast<Addr>(b) * 512,
                     dead + static_cast<Addr>(b) * 512);
    EXPECT_EQ(p->shctOf(sig), 0u);
}

TEST(Ship, OutcomeBitIncrementsOncePerGeneration)
{
    auto policy = std::make_unique<ShipReplacement>();
    ShipReplacement *p = policy.get();
    cache::CacheModel<> c(cache::CacheConfig::icache(1, 2),
                          std::move(policy));
    const Addr hot = 0x700000;
    c.access(hot, hot);
    for (int i = 0; i < 20; ++i)
        c.access(hot, hot);
    // 3-bit SHCT saturates at 7; started at 1, one generation adds 1.
    EXPECT_EQ(p->shctOf(p->signatureOf(hot)), 2u);
}

TEST(Ship, RunsThroughFrontend)
{
    trace::Trace tr;
    tr.entryPc = 0x1000;
    for (int i = 0; i < 500; ++i)
        tr.records.push_back({0x1100, 0x1000,
                              trace::BranchType::CondDirect, true});
    frontend::FrontendConfig cfg;
    cfg.policy = frontend::PolicyKind::Ship;
    cfg.warmupFraction = 0.0;
    const frontend::FrontendResult r = frontend::simulateTrace(cfg, tr);
    EXPECT_EQ(r.policy, "SHiP");
    EXPECT_GT(r.icache.accesses, 0u);
}

TEST(Ship, ParseName)
{
    EXPECT_EQ(frontend::parsePolicy("ship"), frontend::PolicyKind::Ship);
}

} // anonymous namespace

/** @file Unit tests for the adapted SDBP. */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "predictor/sdbp.hh"

namespace
{

using namespace ghrp;
using namespace ghrp::predictor;

SdbpConfig
testConfig()
{
    SdbpConfig cfg;
    cfg.deadThreshold = 6;
    cfg.bypassThreshold = 12;
    return cfg;
}

TEST(Sdbp, PartialPcStable)
{
    SdbpReplacement p(testConfig());
    p.reset(4, 2);
    EXPECT_EQ(p.partialPc(0x400000), p.partialPc(0x400000));
    EXPECT_LE(p.partialPc(0x12345678), 0xFFFu);
}

TEST(Sdbp, BlockGranularSignature)
{
    // pcAlignShift = 6: all PCs within one 64B block share a signature
    // (Section II-A: the PC itself indexes the structure).
    SdbpReplacement p(testConfig());
    p.reset(4, 2);
    EXPECT_EQ(p.partialPc(0x400000), p.partialPc(0x40003C));
    EXPECT_NE(p.partialPc(0x400000), p.partialPc(0x400040));
}

TEST(Sdbp, SamplerTrainsDeadOnEvictions)
{
    // Drive a tiny SDBP-backed cache with a no-reuse stream; the
    // signatures must eventually predict dead.
    auto policy = std::make_unique<SdbpReplacement>(testConfig());
    SdbpReplacement *p = policy.get();
    cache::CacheModel<> c(cache::CacheConfig::icache(1, 2),
                          std::move(policy));
    // One PC's blocks streaming through a single set: stride 8 blocks.
    const Addr pc = 0x700000;
    for (int i = 0; i < 64; ++i)
        c.access(pc, pc);  // same block: hit after first -> trains live
    EXPECT_FALSE(p->predictDead(p->partialPc(pc)));

    // Now a dead stream: distinct blocks, same accessing PC signature
    // is per-block here, so use blocks that alias to one signature by
    // revisiting each exactly once per generation.
    std::uint64_t dead_before = c.accessStats().deadEvictions;
    for (int round = 0; round < 40; ++round)
        for (int b = 1; b <= 3; ++b)
            c.access(0x800000 + static_cast<Addr>(b) * 512, 0x800000);
    // At least the mechanism ran without dead-evicting the hot block.
    EXPECT_TRUE(c.probe(pc).has_value() ||
                c.accessStats().deadEvictions >= dead_before);
}

TEST(Sdbp, DeadPredictionAfterRepeatedGenerations)
{
    auto policy = std::make_unique<SdbpReplacement>(testConfig());
    SdbpReplacement *p = policy.get();
    cache::CacheModel<> c(cache::CacheConfig::icache(1, 2),
                          std::move(policy));
    // Three blocks cycling through a 2-way set: every access misses,
    // every generation is dead. All three blocks map to set 0.
    const Addr stride = 8 * 64;
    for (int round = 0; round < 30; ++round)
        for (int b = 0; b < 3; ++b) {
            const Addr addr = 0x10000 + static_cast<Addr>(b) * stride;
            c.access(addr, addr);
        }
    // At least one of the streaming blocks' signatures is now dead.
    int dead = 0;
    for (int b = 0; b < 3; ++b)
        if (p->predictDead(
                p->partialPc(0x10000 + static_cast<Addr>(b) * stride)))
            ++dead;
    EXPECT_GT(dead, 0);
    EXPECT_GT(c.accessStats().bypasses + c.accessStats().deadEvictions,
              0u);
}

TEST(Sdbp, StorageAccounting)
{
    SdbpReplacement p(testConfig());
    p.reset(128, 8);  // 1024 frames
    // sampler: 1024*(1+1+3+12+16); tables 3*4096*8; meta 1024*4.
    EXPECT_EQ(p.storageBits(),
              1024ull * 33 + 3ull * 4096 * 8 + 1024ull * 4);
}

TEST(Sdbp, NameIsSdbp)
{
    SdbpReplacement p;
    EXPECT_EQ(p.name(), "SDBP");
}

} // anonymous namespace

/** @file Unit tests for GHRP: history, signatures, votes, replacement. */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "predictor/ghrp.hh"

namespace
{

using namespace ghrp;
using namespace ghrp::predictor;

TEST(GhrpHistory, UpdateFormula)
{
    GhrpPredictor p;
    // historyPcShift = 6: push ((pc >> 6) & 7) << 1.
    p.updateSpecHistory(0x40);  // block 1 -> nibble 0b0010
    EXPECT_EQ(p.specHistory(), 0b0010u);
    p.updateSpecHistory(0xC0);  // block 3 -> nibble 0b0110
    EXPECT_EQ(p.specHistory(), 0b0010'0110u);
}

TEST(GhrpHistory, SixteenBitWindow)
{
    GhrpPredictor p;
    for (int i = 0; i < 8; ++i)
        p.updateSpecHistory(static_cast<Addr>(i) << 6);
    EXPECT_LE(p.specHistory(), 0xFFFFu);
    // Only the last 4 accesses remain (4 bits each).
    GhrpPredictor q;
    for (int i = 4; i < 8; ++i)
        q.updateSpecHistory(static_cast<Addr>(i) << 6);
    EXPECT_EQ(p.specHistory(), q.specHistory());
}

TEST(GhrpHistory, SpeculativeRecovery)
{
    GhrpPredictor p;
    p.updateSpecHistory(0x40);
    p.updateRetiredHistory(0x40);
    const std::uint32_t good = p.specHistory();
    p.updateSpecHistory(0xFFC0);  // wrong-path pollution
    EXPECT_NE(p.specHistory(), good);
    p.recoverHistory();
    EXPECT_EQ(p.specHistory(), good);
    EXPECT_EQ(p.specHistory(), p.retiredHistory());
}

TEST(GhrpSignature, XorOfHistoryAndPc)
{
    GhrpPredictor p;
    const Addr pc = 0x1234 << 2;
    EXPECT_EQ(p.signatureFor(pc, 0), 0x1234u);
    EXPECT_EQ(p.signatureFor(pc, 0xFFFF), 0x1234u ^ 0xFFFFu);
}

TEST(GhrpSignature, DependsOnHistory)
{
    GhrpPredictor p;
    const std::uint16_t before = p.signature(0x400000);
    p.updateSpecHistory(0x400040);
    p.updateSpecHistory(0x400080);
    EXPECT_NE(p.signature(0x400000), before);
}

TEST(GhrpVote, ThresholdsRespected)
{
    GhrpConfig cfg;
    cfg.counterBits = 3;
    cfg.deadThreshold = 2;
    cfg.bypassThreshold = 4;
    GhrpPredictor p(cfg);
    const std::uint16_t sig = 0x0AB1;
    EXPECT_FALSE(p.predictDead(sig));
    p.train(sig, true);
    p.train(sig, true);
    EXPECT_TRUE(p.predictDead(sig));
    EXPECT_FALSE(p.predictBypass(sig));  // needs 4
    p.train(sig, true);
    p.train(sig, true);
    EXPECT_TRUE(p.predictBypass(sig));
}

TEST(GhrpVote, SummationMode)
{
    GhrpConfig cfg;
    cfg.majorityVote = false;
    cfg.counterBits = 2;
    cfg.sumDeadThreshold = 6;
    GhrpPredictor p(cfg);
    const std::uint16_t sig = 0x777;
    p.train(sig, true);  // sum 3
    EXPECT_FALSE(p.predictDead(sig));
    p.train(sig, true);  // sum 6
    EXPECT_TRUE(p.predictDead(sig));
}

TEST(GhrpVote, LiveTrainingClears)
{
    GhrpPredictor p;
    const std::uint16_t sig = 0x1F2;
    for (int i = 0; i < 8; ++i)
        p.train(sig, true);
    EXPECT_TRUE(p.predictDead(sig));
    for (int i = 0; i < 8; ++i)
        p.train(sig, false);
    EXPECT_FALSE(p.predictDead(sig));
}

TEST(GhrpStorage, TableAndHistoryBits)
{
    GhrpConfig cfg;
    cfg.tableEntries = 4096;
    cfg.counterBits = 2;
    GhrpPredictor p(cfg);
    EXPECT_EQ(p.storageBits(), 3ull * 4096 * 2 + 2 * 16);
}

// ---- replacement policy behaviour ---------------------------------

struct GhrpCacheFixture : public ::testing::Test
{
    GhrpCacheFixture()
        : predictor(makeConfig()),
          policy_ptr(new GhrpReplacement(predictor)),
          icache(cache::CacheConfig::icache(1, 4),
                 std::unique_ptr<cache::ReplacementPolicy>(policy_ptr))
    {
    }

    static GhrpConfig
    makeConfig()
    {
        GhrpConfig cfg;
        cfg.counterBits = 3;
        cfg.deadThreshold = 2;
        cfg.bypassThreshold = 3;
        return cfg;
    }

    static GhrpConfig
    makeNoBypassConfig()
    {
        GhrpConfig cfg = makeConfig();
        cfg.bypassEnabled = false;
        return cfg;
    }

    GhrpPredictor predictor;
    GhrpReplacement *policy_ptr;
    cache::CacheModel<> icache;
};

TEST_F(GhrpCacheFixture, FillsStoreSignatures)
{
    predictor.updateSpecHistory(0x40);
    const auto out = icache.access(0x400000, 0x400000);
    EXPECT_FALSE(out.hit);
    EXPECT_EQ(policy_ptr->signatureAt(out.set, out.way),
              predictor.signature(0x400000));
}

TEST(GhrpVictim, PredictedDeadBlockEvictedBeforeLru)
{
    GhrpConfig cfg;
    cfg.counterBits = 3;
    cfg.deadThreshold = 2;
    cfg.bypassEnabled = false;  // isolate victim selection
    GhrpPredictor predictor(cfg);
    auto policy = std::make_unique<GhrpReplacement>(predictor);
    GhrpReplacement *p = policy.get();
    cache::CacheModel<> icache(cache::CacheConfig::icache(1, 4),
                               std::move(policy));

    // Stride mapping all blocks to set 0; each fill uses its own PC so
    // the four blocks carry distinct signatures.
    const Addr stride = 4 * 64;
    for (int i = 0; i < 4; ++i) {
        const Addr addr = stride * static_cast<Addr>(i);
        icache.access(addr, addr);
    }
    // Train block C's (way 2) stored signature dead and refresh its
    // prediction bit with a hit; the live training of that hit is
    // outweighed by re-training afterwards.
    for (int i = 0; i < 8; ++i)
        predictor.train(p->signatureAt(0, 2), true);
    icache.access(stride * 2, stride * 2);  // refresh bit, C is MRU
    for (int i = 0; i < 8; ++i)
        predictor.train(p->signatureAt(0, 2), true);
    icache.access(stride * 2, stride * 2);
    ASSERT_TRUE(p->predictionAt(0, 2));
    // Age C off the MRU position (the staleness guard skips MRU).
    icache.access(stride * 0, stride * 0);
    icache.access(stride * 1, stride * 1);
    // Now miss: the victim must be the predicted-dead C, not LRU(D).
    const auto out = icache.access(stride * 10, stride * 10);
    EXPECT_TRUE(out.evicted);
    EXPECT_TRUE(out.victimWasDead);
    EXPECT_EQ(out.way, 2u);
}

TEST_F(GhrpCacheFixture, StalenessGuardSkipsMruDeadBlock)
{
    const Addr stride = 4 * 64;
    for (int i = 0; i < 4; ++i)
        icache.access(stride * static_cast<Addr>(i), 0x100);
    // Saturate the most recent block's (way 3) signature dead and
    // refresh its bit via a hit.
    for (int i = 0; i < 8; ++i)
        predictor.train(policy_ptr->signatureAt(0, 3), true);
    icache.access(stride * 3, 0x100);  // hit: way 3 becomes MRU + dead
    for (int i = 0; i < 8; ++i)
        predictor.train(policy_ptr->signatureAt(0, 3), true);
    icache.access(stride * 3, 0x100);
    if (policy_ptr->predictionAt(0, 3)) {
        const auto out = icache.access(stride * 11, 0x100);
        // With the staleness guard, the MRU block must not be the
        // victim even though it is predicted dead.
        EXPECT_NE(out.way, 3u);
    }
}

TEST_F(GhrpCacheFixture, BypassAfterSaturation)
{
    // Saturate the signature for a specific (history, pc) pair.
    const std::uint16_t sig = predictor.signature(0x500000);
    for (int i = 0; i < 8; ++i)
        predictor.train(sig, true);
    const auto out = icache.access(0x500000, 0x500000);
    EXPECT_TRUE(out.bypassed);
    EXPECT_FALSE(icache.probe(0x500000).has_value());
}

TEST_F(GhrpCacheFixture, EvictionTrainsDead)
{
    const Addr stride = 4 * 64;
    for (int i = 0; i < 5; ++i)
        icache.access(stride * static_cast<Addr>(i), 0x100);
    // The first block was evicted; its signature got one dead training.
    // Drive the same fill signature to the dead threshold and verify
    // prediction flips after one more training.
    const std::uint16_t sig = predictor.signatureFor(0x100, 0);
    (void)sig;
    SUCCEED();  // covered in detail by GhrpVote tests; smoke only
}

} // anonymous namespace

/** @file Unit tests for the skewed prediction-table bank. */

#include <gtest/gtest.h>

#include "predictor/pred_tables.hh"

namespace
{

using namespace ghrp::predictor;

TEST(PredTables, IndicesDeterministicAndInRange)
{
    PredictionTables bank(4096, 2);
    const TableIndices a = bank.computeIndices(0x1234);
    const TableIndices b = bank.computeIndices(0x1234);
    for (unsigned t = 0; t < numPredTables; ++t) {
        EXPECT_EQ(a[t], b[t]);
        EXPECT_LT(a[t], 4096u);
    }
}

TEST(PredTables, TablesAreSkewed)
{
    // Two signatures that collide in one table should rarely collide
    // in the others; check the three hashes differ for typical inputs.
    PredictionTables bank(4096, 2);
    int all_same = 0;
    for (std::uint32_t sig = 0; sig < 1024; ++sig) {
        const TableIndices idx = bank.computeIndices(sig);
        if (idx[0] == idx[1] && idx[1] == idx[2])
            ++all_same;
    }
    EXPECT_LT(all_same, 3);
}

TEST(PredTables, TrainSaturates)
{
    PredictionTables bank(256, 2);
    const TableIndices idx = bank.computeIndices(7);
    for (int i = 0; i < 10; ++i)
        bank.train(idx, true);
    for (std::uint8_t counter : bank.readCounters(idx))
        EXPECT_EQ(counter, 3u);
    for (int i = 0; i < 20; ++i)
        bank.train(idx, false);
    for (std::uint8_t counter : bank.readCounters(idx))
        EXPECT_EQ(counter, 0u);
}

TEST(PredTables, MajorityVote)
{
    PredictionTables bank(256, 2);
    const TableIndices idx = bank.computeIndices(42);
    EXPECT_FALSE(bank.majorityVote(idx, 1));
    bank.train(idx, true);  // all three counters -> 1
    EXPECT_TRUE(bank.majorityVote(idx, 1));
    EXPECT_FALSE(bank.majorityVote(idx, 2));
}

TEST(PredTables, MajorityNeedsTwoOfThree)
{
    PredictionTables bank(256, 2);
    const TableIndices idx = bank.computeIndices(42);
    bank.train(idx, true);
    bank.train(idx, true);
    // Manually knock one counter down via an aliasing signature would
    // be fragile; instead verify the boundary with thresholds.
    EXPECT_TRUE(bank.majorityVote(idx, 2));
    EXPECT_FALSE(bank.majorityVote(idx, 3));
}

TEST(PredTables, SumVote)
{
    PredictionTables bank(256, 8);
    const TableIndices idx = bank.computeIndices(9);
    for (int i = 0; i < 5; ++i)
        bank.train(idx, true);
    // Sum = 15.
    EXPECT_TRUE(bank.sumVote(idx, 15));
    EXPECT_FALSE(bank.sumVote(idx, 16));
}

TEST(PredTables, ClearZeroes)
{
    PredictionTables bank(256, 2);
    const TableIndices idx = bank.computeIndices(1);
    bank.train(idx, true);
    bank.clear();
    EXPECT_FALSE(bank.majorityVote(idx, 1));
}

TEST(PredTables, StorageBits)
{
    PredictionTables bank2(4096, 2);
    EXPECT_EQ(bank2.storageBits(), 3ull * 4096 * 2);
    PredictionTables bank8(4096, 8);
    EXPECT_EQ(bank8.storageBits(), 3ull * 4096 * 8);
}

} // anonymous namespace

/** @file Tests for the stand-alone (dedicated) BTB GHRP ablation. */

#include <gtest/gtest.h>

#include "branch/btb.hh"
#include "frontend/frontend.hh"
#include "predictor/ghrp.hh"

namespace
{

using namespace ghrp;
using namespace ghrp::predictor;

GhrpConfig
config()
{
    GhrpConfig cfg;
    cfg.counterBits = 3;
    cfg.btbDeadThreshold = 2;
    return cfg;
}

TEST(GhrpBtbDedicated, SelfContainedHistory)
{
    auto policy = std::make_unique<GhrpBtbDedicated>(config());
    GhrpBtbDedicated *p = policy.get();
    branch::Btb btb(cache::CacheConfig::btb(16, 4), std::move(policy));

    EXPECT_EQ(p->predictor().specHistory(), 0u);
    btb.accessTaken(0x1040, 0x2000);
    // The dedicated history was fed with the branch PC.
    EXPECT_NE(p->predictor().specHistory(), 0u);
}

TEST(GhrpBtbDedicated, TrainsOnEvictionsAndPrefersDead)
{
    branch::Btb btb(cache::CacheConfig::btb(16, 4),
                    std::make_unique<GhrpBtbDedicated>(config()));

    // Cycle one-shot branches through set 0 (pc>>2 mod 4 == 0) so
    // their signatures train dead. Set-0 pcs: pc = 16*k.
    for (int round = 0; round < 40; ++round)
        for (int k = 0; k < 6; ++k)
            btb.accessTaken(0x1000 + static_cast<Addr>(k) * 16, 0xAA);
    // The streaming entries eventually die by prediction, not LRU.
    EXPECT_GT(btb.accessStats().deadEvictions, 0u);
}

TEST(GhrpBtbDedicated, StorageLargerThanSharedVariantCost)
{
    // The paper's argument for the shared design: a dedicated BTB
    // predictor costs tables + 20 bits per entry, vs 1 bit per entry
    // for the shared coupling.
    auto policy = std::make_unique<GhrpBtbDedicated>(config());
    GhrpBtbDedicated *p = policy.get();
    branch::Btb btb(cache::CacheConfig::btb(4096, 4), std::move(policy));
    const std::uint64_t shared_extra_bits = 4096;  // one bit per entry
    EXPECT_GT(p->storageBits(), 20 * shared_extra_bits);
}

TEST(GhrpBtbDedicated, LruFallbackWhenNothingDead)
{
    branch::Btb btb(cache::CacheConfig::btb(16, 4),
                    std::make_unique<GhrpBtbDedicated>(config()));
    btb.accessTaken(0x1000, 1);
    btb.accessTaken(0x1010, 2);
    btb.accessTaken(0x1020, 3);
    btb.accessTaken(0x1030, 4);
    btb.accessTaken(0x1040, 5);  // evicts LRU (0x1000)
    EXPECT_FALSE(btb.predictTarget(0x1000).has_value());
    EXPECT_TRUE(btb.predictTarget(0x1040).has_value());
}

TEST(GhrpBtbDedicated, FrontendFlagSelectsIt)
{
    // Just exercise the wiring end to end.
    trace::Trace tr;
    tr.entryPc = 0x1000;
    for (int i = 0; i < 200; ++i) {
        tr.records.push_back({0x1010, 0x2000, trace::BranchType::Call,
                              true});
        tr.records.push_back({0x2008, 0x1014, trace::BranchType::Return,
                              true});
        tr.records.push_back({0x1020, 0x1000,
                              trace::BranchType::CondDirect, true});
    }
    frontend::FrontendConfig cfg;
    cfg.policy = frontend::PolicyKind::Ghrp;
    cfg.ghrpDedicatedBtb = true;
    cfg.warmupFraction = 0.0;
    const frontend::FrontendResult r = frontend::simulateTrace(cfg, tr);
    EXPECT_GT(r.btb.accesses, 0u);
}

} // anonymous namespace

/**
 * @file
 * Randomized property tests for the replacement policies. Rather than
 * checking specific victim sequences, these drive CacheModel with
 * thousands of random accesses and assert invariants that every
 * policy must uphold:
 *
 *  - the chosen victim is always a valid way index;
 *  - a block that just hit is never the immediate LRU victim;
 *  - a bypassed miss leaves the set's contents untouched;
 *  - tag/metadata bookkeeping stays consistent with a shadow model
 *    across arbitrarily many fill/evict cycles.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "cache/basic_policies.hh"
#include "cache/cache.hh"
#include "predictor/ghrp.hh"
#include "util/random.hh"

namespace
{

using namespace ghrp;

/** Small geometry so random traffic exercises evictions heavily. */
cache::CacheConfig
smallConfig()
{
    return cache::CacheConfig::icache(4, 4);  // 4KB, 4-way, 16 sets
}

/**
 * Shadow tag store: tracks which block addresses each set holds, fed
 * only from the AccessOutcomes the cache reports. Any divergence
 * between the shadow and the cache's probe() means the policy or the
 * model corrupted its bookkeeping.
 */
class ShadowTags
{
  public:
    explicit ShadowTags(std::uint32_t ways) : ways(ways) {}

    void
    apply(const cache::AccessOutcome &outcome, Addr block_addr)
    {
        std::set<Addr> &resident = sets[outcome.set];
        if (outcome.hit) {
            ASSERT_TRUE(resident.count(block_addr))
                << "hit on a block the shadow thinks is absent";
            return;
        }
        if (outcome.bypassed) {
            ASSERT_FALSE(resident.count(block_addr));
            return;
        }
        if (outcome.evicted) {
            ASSERT_EQ(resident.erase(outcome.victimAddress), 1u)
                << "evicted a block the shadow thinks is absent";
        }
        ASSERT_TRUE(resident.insert(block_addr).second);
        ASSERT_LE(resident.size(), ways) << "set over-filled";
    }

    const std::set<Addr> &residentIn(std::uint32_t set) { return sets[set]; }

  private:
    std::uint32_t ways;
    std::map<std::uint32_t, std::set<Addr>> sets;
};

/**
 * Run @p accesses random accesses against @p model, checking the
 * shadow-consistency and valid-victim invariants on every step.
 */
void
runRandomTraffic(cache::CacheModel<> &model, std::uint64_t seed,
                 int accesses, int address_pool)
{
    Rng rng(seed);
    ShadowTags shadow(model.numWays());
    for (int i = 0; i < accesses; ++i) {
        const Addr addr = rng.nextBounded(address_pool) * 64;
        const Addr pc = addr ^ (rng.nextBounded(16) << 3);

        const bool was_resident = model.probe(addr).has_value();
        const cache::AccessOutcome outcome = model.access(addr, pc);

        ASSERT_EQ(outcome.hit, was_resident)
            << "access outcome disagrees with a prior probe";
        if (!outcome.bypassed) {
            ASSERT_LT(outcome.way, model.numWays())
                << "victim way out of range";
        }
        if (!outcome.hit && !outcome.bypassed) {
            ASSERT_TRUE(model.probe(addr).has_value())
                << "filled block not findable";
        }

        shadow.apply(outcome, model.blockAddress(addr) * 64);
        if (::testing::Test::HasFatalFailure())
            return;

        // The shadow's residents must all still probe successfully.
        for (Addr resident : shadow.residentIn(outcome.set))
            ASSERT_TRUE(model.probe(resident).has_value())
                << "shadow-resident block lost from set " << outcome.set;
    }
    const stats::AccessStats &stats = model.accessStats();
    EXPECT_EQ(stats.accesses, static_cast<std::uint64_t>(accesses));
    EXPECT_EQ(stats.hits + stats.misses, stats.accesses);
    EXPECT_GT(stats.evictions, 0u) << "traffic never caused an eviction; "
                                      "the test exercised nothing";
}

TEST(PolicyProperties, LruShadowConsistency)
{
    cache::CacheModel<> model(smallConfig(),
                              std::make_unique<cache::LruPolicy>());
    runRandomTraffic(model, 1, 20000, 256);
}

TEST(PolicyProperties, RandomShadowConsistency)
{
    cache::CacheModel<> model(smallConfig(),
                              std::make_unique<cache::RandomPolicy>(99));
    runRandomTraffic(model, 2, 20000, 256);
}

TEST(PolicyProperties, SrripShadowConsistency)
{
    cache::CacheModel<> model(smallConfig(),
                              std::make_unique<cache::SrripPolicy>());
    runRandomTraffic(model, 3, 20000, 256);
}

TEST(PolicyProperties, GhrpShadowConsistency)
{
    predictor::GhrpPredictor predictor;
    cache::CacheModel<> model(
        smallConfig(), std::make_unique<predictor::GhrpReplacement>(predictor));

    // Drive the predictor's history alongside the traffic so its
    // signatures vary and both the bypass and dead-victim paths run.
    Rng rng(4);
    ShadowTags shadow(model.numWays());
    const int accesses = 30000;
    std::uint64_t bypasses = 0;
    for (int i = 0; i < accesses; ++i) {
        const Addr addr = rng.nextBounded(256) * 64;
        predictor.updateSpecHistory(addr);
        if (rng.nextBool(0.1))
            predictor.updateRetiredHistory(addr);
        if (rng.nextBool(0.01))
            predictor.recoverHistory();

        const cache::AccessOutcome outcome = model.access(addr, addr);
        if (!outcome.bypassed) {
            ASSERT_LT(outcome.way, model.numWays());
        } else {
            ++bypasses;
        }
        shadow.apply(outcome, model.blockAddress(addr) * 64);
        if (::testing::Test::HasFatalFailure())
            return;
    }
    EXPECT_EQ(model.accessStats().bypasses, bypasses);
    EXPECT_GT(model.accessStats().evictions, 0u);
}

TEST(PolicyProperties, JustHitBlockNotImmediateLruVictim)
{
    const cache::CacheConfig cfg = smallConfig();
    cache::CacheModel<> model(cfg, std::make_unique<cache::LruPolicy>());
    const std::uint32_t ways = cfg.assoc;
    const std::uint32_t sets = cfg.numSets();

    Rng rng(5);
    for (int round = 0; round < 200; ++round) {
        const std::uint32_t set = rng.nextBounded(sets);
        // Fill the set with `ways` distinct blocks mapping to it.
        std::vector<Addr> blocks;
        for (std::uint32_t w = 0; w < ways; ++w)
            blocks.push_back(
                (static_cast<Addr>(round * ways + w) * sets +
                 set) * 64);
        for (Addr b : blocks)
            model.access(b, b);

        // Touch one resident block, then force an eviction: the victim
        // must not be the block that just hit.
        const Addr touched = blocks[rng.nextBounded(ways)];
        const cache::AccessOutcome hit = model.access(touched, touched);
        ASSERT_TRUE(hit.hit);

        const Addr fresh =
            (static_cast<Addr>((round + 1000) * ways) * sets + set) * 64;
        const cache::AccessOutcome fill = model.access(fresh, fresh);
        ASSERT_FALSE(fill.hit);
        if (fill.evicted) {
            EXPECT_NE(fill.victimAddress, model.blockAddress(touched) * 64)
                << "LRU evicted the block that was just hit";
        }
    }
}

/** LRU that vetoes every fill — isolates the cache's bypass path. */
class AlwaysBypassPolicy : public cache::LruPolicy
{
  public:
    bool shouldBypass(const cache::AccessInfo &) override { return true; }
    std::string name() const override { return "AlwaysBypass"; }
};

TEST(PolicyProperties, BypassNeverCorruptsSetState)
{
    const cache::CacheConfig cfg = smallConfig();
    cache::CacheModel<> model(cfg,
                              std::make_unique<AlwaysBypassPolicy>());
    Rng rng(6);
    for (int i = 0; i < 5000; ++i) {
        const Addr addr = rng.nextBounded(512) * 64;
        const cache::AccessOutcome outcome = model.access(addr, addr);
        ASSERT_FALSE(outcome.hit);
        ASSERT_TRUE(outcome.bypassed);
        ASSERT_FALSE(outcome.evicted);
        ASSERT_FALSE(model.probe(addr).has_value())
            << "bypassed block was filled anyway";
    }
    const stats::AccessStats &stats = model.accessStats();
    EXPECT_EQ(stats.misses, stats.accesses);
    EXPECT_EQ(stats.bypasses, stats.accesses);
    EXPECT_EQ(stats.evictions, 0u);
}

TEST(PolicyProperties, MetadataSurvivesInvalidateAll)
{
    // After invalidateAll the policy metadata keeps its sizing and the
    // model must behave like a cold cache, not crash or misattribute.
    for (int which = 0; which < 3; ++which) {
        std::unique_ptr<cache::ReplacementPolicy> policy;
        if (which == 0)
            policy = std::make_unique<cache::LruPolicy>();
        else if (which == 1)
            policy = std::make_unique<cache::SrripPolicy>();
        else
            policy = std::make_unique<cache::RandomPolicy>(7);

        cache::CacheModel<> model(smallConfig(), std::move(policy));
        runRandomTraffic(model, 8 + which, 5000, 128);
        if (::testing::Test::HasFatalFailure())
            return;

        model.invalidateAll();
        model.resetStats();
        runRandomTraffic(model, 100 + which, 5000, 128);
    }
}

} // anonymous namespace

/**
 * @file
 * Tag-search back ends: the scalar reference and the AVX2 variant must
 * agree on every input, and the runtime dispatch (CPU detection plus
 * the GHRP_NO_AVX2 override) must pick the right one. The dispatch
 * cases run on every host — a machine without AVX2 still covers the
 * scalar selection and the override logic.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cache/tag_search.hh"
#include "util/random.hh"

namespace
{

using namespace ghrp;
using namespace ghrp::cache;

std::uint64_t
lowMask(std::uint32_t bits)
{
    return bits >= 64 ? ~std::uint64_t{0}
                      : (std::uint64_t{1} << bits) - 1;
}

TEST(TagSearchScalar, FindsUniqueValidMatch)
{
    const Addr tags[4] = {10, 20, 30, 40};
    EXPECT_EQ(findTagWayScalar(tags, 0xF, 4, 30), 2u);
    EXPECT_EQ(findTagWayScalar(tags, 0xF, 4, 10), 0u);
    EXPECT_EQ(findTagWayScalar(tags, 0xF, 4, 40), 3u);
    EXPECT_EQ(findTagWayScalar(tags, 0xF, 4, 99), 4u);  // absent
}

TEST(TagSearchScalar, InvalidWaysNeverMatch)
{
    const Addr tags[4] = {10, 20, 30, 40};
    EXPECT_EQ(findTagWayScalar(tags, 0b1011, 4, 30), 4u);
    EXPECT_EQ(findTagWayScalar(tags, 0, 4, 10), 4u);
    // A stale tag in an invalid frame must not shadow anything.
    EXPECT_EQ(findTagWayScalar(tags, 0b0001, 4, 10), 0u);
}

TEST(TagSearchScalar, ZeroTagInValidWayMatches)
{
    // Tag 0 is a legal block address; only the valid bit distinguishes
    // an empty frame from a block at address 0.
    const Addr tags[2] = {0, 7};
    EXPECT_EQ(findTagWayScalar(tags, 0b01, 2, 0), 0u);
    EXPECT_EQ(findTagWayScalar(tags, 0b10, 2, 0), 2u);
}

/**
 * Differential: both back ends over randomized rows for every
 * associativity 1..64, including the odd/non-power-of-two widths where
 * the AVX2 kernel's 4-wide main loop hands off to its scalar tail.
 * Skipped (scalar vs scalar) only when the CPU lacks AVX2.
 */
TEST(TagSearchDifferential, BackEndsAgreeOnRandomRows)
{
    if (!tagSearchAvx2Supported())
        GTEST_SKIP() << "no AVX2 on this CPU; scalar is the only back end";
#if GHRP_TAG_SEARCH_HAVE_AVX2
    Rng rng(splitMix64(0x7A65EA5C));
    for (std::uint32_t ways = 1; ways <= 64; ++ways) {
        for (int round = 0; round < 64; ++round) {
            std::vector<Addr> tags(ways);
            for (Addr &t : tags)
                t = rng.nextBounded(ways * 2);  // force duplicates
            const std::uint64_t valid = rng.next() & lowMask(ways);
            // Probe present, absent and zero tags.
            const Addr probes[] = {
                tags[rng.nextBounded(ways)],
                static_cast<Addr>(rng.nextBounded(ways * 2)), 0,
                ~Addr{0}};
            for (Addr probe : probes) {
                const std::uint32_t scalar =
                    findTagWayScalar(tags.data(), valid, ways, probe);
                const std::uint32_t avx2 =
                    findTagWayAvx2(tags.data(), valid, ways, probe);
                ASSERT_EQ(scalar, avx2)
                    << "ways " << ways << " valid " << valid << " probe "
                    << probe;
            }
        }
    }
#endif
}

#if GHRP_TAG_SEARCH_HAVE_AVX2
TEST(TagSearchDifferential, Avx2LowestMatchingWayWinsAmongDuplicates)
{
    if (!tagSearchAvx2Supported())
        GTEST_SKIP() << "no AVX2 on this CPU";
    // The model never fills duplicate valid tags, but the contract the
    // back ends share (lowest set bit of match & valid) must still
    // agree when stale invalid frames duplicate a valid tag.
    const Addr tags[8] = {5, 5, 5, 5, 5, 5, 5, 5};
    for (std::uint64_t valid = 0; valid < 256; ++valid)
        ASSERT_EQ(findTagWayScalar(tags, valid, 8, 5),
                  findTagWayAvx2(tags, valid, 8, 5))
            << "valid " << valid;
}
#endif

/** RAII environment-variable override. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name(name)
    {
        const char *old = std::getenv(name);
        had = old != nullptr;
        if (had)
            saved = old;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (had)
            ::setenv(name.c_str(), saved.c_str(), 1);
        else
            ::unsetenv(name.c_str());
    }

  private:
    std::string name;
    std::string saved;
    bool had = false;
};

TEST(TagSearchDispatch, NoAvx2OverrideForcesScalar)
{
    ScopedEnv env("GHRP_NO_AVX2", "1");
    EXPECT_EQ(resolveTagSearch(), &findTagWayScalar);
}

TEST(TagSearchDispatch, EmptyOverrideIsNotAnOverride)
{
    ScopedEnv env("GHRP_NO_AVX2", "");
    if (tagSearchAvx2Supported()) {
#if GHRP_TAG_SEARCH_HAVE_AVX2
        EXPECT_EQ(resolveTagSearch(), &findTagWayAvx2);
#endif
    } else {
        EXPECT_EQ(resolveTagSearch(), &findTagWayScalar);
    }
}

TEST(TagSearchDispatch, DefaultFollowsCpuSupport)
{
    ScopedEnv env("GHRP_NO_AVX2", nullptr);
    if (tagSearchAvx2Supported()) {
#if GHRP_TAG_SEARCH_HAVE_AVX2
        EXPECT_EQ(resolveTagSearch(), &findTagWayAvx2);
#endif
    } else {
        EXPECT_EQ(resolveTagSearch(), &findTagWayScalar);
    }
}

TEST(TagSearchDispatch, ActiveBackendNameMatchesFunction)
{
    const char *name = tagSearchBackend();
    if (std::strcmp(name, "avx2") == 0) {
        EXPECT_TRUE(tagSearchAvx2Supported());
#if GHRP_TAG_SEARCH_HAVE_AVX2
        EXPECT_EQ(activeTagSearch(), &findTagWayAvx2);
#endif
    } else {
        EXPECT_STREQ(name, "scalar");
        EXPECT_EQ(activeTagSearch(), &findTagWayScalar);
    }
    // Cached: repeated calls return the same function.
    EXPECT_EQ(activeTagSearch(), activeTagSearch());
}

} // anonymous namespace

/** @file Unit tests for prefetch-aware cache fills. */

#include <gtest/gtest.h>

#include "cache/basic_policies.hh"
#include "cache/cache.hh"

namespace
{

using namespace ghrp;
using namespace ghrp::cache;

TEST(Prefetch, FillsWithoutDemandStats)
{
    CacheModel<> c(CacheConfig::icache(1, 2),
                   std::make_unique<LruPolicy>());
    EXPECT_TRUE(c.prefetch(0x1000, 0x1000));
    EXPECT_EQ(c.accessStats().accesses, 0u);
    EXPECT_EQ(c.accessStats().misses, 0u);
    EXPECT_EQ(c.prefetchFills(), 1u);
    // The prefetched block then hits on demand.
    EXPECT_TRUE(c.access(0x1000, 0x1000).hit);
}

TEST(Prefetch, NoDuplicateFill)
{
    CacheModel<> c(CacheConfig::icache(1, 2),
                   std::make_unique<LruPolicy>());
    c.access(0x1000, 0x1000);
    EXPECT_FALSE(c.prefetch(0x1000, 0x1000));
    EXPECT_EQ(c.prefetchFills(), 0u);
}

TEST(Prefetch, EvictsThroughPolicy)
{
    CacheModel<> c(CacheConfig::icache(1, 2),
                   std::make_unique<LruPolicy>());
    // Fill set 0 completely (stride 8 blocks), then prefetch into it.
    c.access(0x0000, 0);
    c.access(0x0200, 0);
    EXPECT_TRUE(c.prefetch(0x0400, 0));
    EXPECT_EQ(c.accessStats().evictions, 1u);
    // LRU victim was 0x0000.
    EXPECT_FALSE(c.probe(0x0000).has_value());
}

} // anonymous namespace

/**
 * @file
 * Differential test: the CacheModel + LruPolicy pair must agree, hit
 * for hit and eviction for eviction, with an independently written
 * reference LRU cache over long randomized access streams.
 */

#include <gtest/gtest.h>

#include <list>
#include <unordered_map>

#include "cache/basic_policies.hh"
#include "cache/cache.hh"
#include "util/random.hh"

namespace
{

using namespace ghrp;
using namespace ghrp::cache;

/** Straightforward reference: per-set std::list in recency order. */
class ReferenceLru
{
  public:
    ReferenceLru(std::uint32_t sets, std::uint32_t ways)
        : numSets(sets), numWays(ways), setsData(sets)
    {
    }

    bool
    access(Addr block)
    {
        auto &set = setsData[block % numSets];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (*it == block) {
                set.erase(it);
                set.push_front(block);
                return true;
            }
        }
        if (set.size() >= numWays)
            set.pop_back();
        set.push_front(block);
        return false;
    }

  private:
    std::uint32_t numSets;
    std::uint32_t numWays;
    std::vector<std::list<Addr>> setsData;
};

class DifferentialLru
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, int>>
{
};

TEST_P(DifferentialLru, MatchesReferenceOnRandomStream)
{
    const auto [assoc, seed] = GetParam();
    const CacheConfig cfg = CacheConfig::icache(8, assoc);  // small
    CacheModel<> model(cfg, std::make_unique<LruPolicy>());
    ReferenceLru ref(cfg.numSets(), assoc);

    Rng rng(static_cast<std::uint64_t>(seed));
    Addr base = 0;
    for (int i = 0; i < 20000; ++i) {
        // Mix of sequential and jumpy addresses for realistic reuse.
        if (rng.nextBool(0.6))
            base += 64;
        else
            base = rng.nextBounded(1u << 14) & ~Addr{63};
        const bool model_hit = model.access(base, base).hit;
        const bool ref_hit = ref.access(base >> 6);
        ASSERT_EQ(model_hit, ref_hit) << "access " << i << " addr "
                                      << std::hex << base;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, DifferentialLru,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(1, 2, 3)));

TEST(DifferentialLru, HitCountsMatchOverWorkload)
{
    const CacheConfig cfg = CacheConfig::icache(4, 4);
    CacheModel<> model(cfg, std::make_unique<LruPolicy>());
    ReferenceLru ref(cfg.numSets(), 4);
    Rng rng(77);
    std::uint64_t ref_hits = 0;
    for (int i = 0; i < 50000; ++i) {
        const Addr block =
            rng.nextZipf(256, 1.4) * 64;  // zipf-popular blocks
        model.access(block, block);
        if (ref.access(block >> 6))
            ++ref_hits;
    }
    EXPECT_EQ(model.accessStats().hits, ref_hits);
}

} // anonymous namespace

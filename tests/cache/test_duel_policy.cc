/** @file Unit tests for the set-dueling meta-policy wrapper. */

#include <gtest/gtest.h>

#include <memory>

#include "cache/basic_policies.hh"
#include "cache/duel_policy.hh"

namespace
{

using namespace ghrp;
using namespace ghrp::cache;

AccessInfo
info(std::uint32_t set, std::uint64_t tick = 0)
{
    AccessInfo i;
    i.set = set;
    i.tick = tick;
    return i;
}

DuelPolicy
makeDuel(DuelPolicy::Params params = {})
{
    return DuelPolicy(std::make_unique<LruPolicy>(),
                      std::make_unique<FifoPolicy>(), params,
                      "duel:LRU,FIFO");
}

/** First A-leader and B-leader set indices after reset(num_sets). */
std::pair<std::uint32_t, std::uint32_t>
firstLeaders(const DuelPolicy &p, std::uint32_t num_sets)
{
    std::uint32_t leader_a = num_sets, leader_b = num_sets;
    for (std::uint32_t s = 0; s < num_sets; ++s) {
        if (p.role(s) == DuelPolicy::SetRole::LeaderA &&
            leader_a == num_sets)
            leader_a = s;
        if (p.role(s) == DuelPolicy::SetRole::LeaderB &&
            leader_b == num_sets)
            leader_b = s;
    }
    return {leader_a, leader_b};
}

TEST(DuelPolicy, LeaderAssignmentMatchesDrripGeometry)
{
    DuelPolicy p = makeDuel({1023, 32});
    p.reset(128, 8);

    // 32 leaders per constituent over 128 sets: stride 2, so even
    // slots alternate LeaderA at 4k and LeaderB at 4k+2.
    std::uint32_t a = 0, b = 0, followers = 0;
    for (std::uint32_t s = 0; s < 128; ++s) {
        switch (p.role(s)) {
          case DuelPolicy::SetRole::LeaderA: ++a; break;
          case DuelPolicy::SetRole::LeaderB: ++b; break;
          case DuelPolicy::SetRole::Follower: ++followers; break;
        }
    }
    EXPECT_EQ(a, 32u);
    EXPECT_EQ(b, 32u);
    EXPECT_EQ(followers, 64u);
    // stride = 128 / (32 * 2) = 2: A-leaders at 4k, B-leaders at 4k+2.
    EXPECT_EQ(p.role(0), DuelPolicy::SetRole::LeaderA);
    EXPECT_EQ(p.role(1), DuelPolicy::SetRole::Follower);
    EXPECT_EQ(p.role(2), DuelPolicy::SetRole::LeaderB);
    EXPECT_EQ(p.role(4), DuelPolicy::SetRole::LeaderA);
}

TEST(DuelPolicy, TinyCacheClampsLeadersToHalfTheSets)
{
    DuelPolicy p = makeDuel({1023, 32});
    p.reset(4, 4);  // 32*2 > 4 -> 2 leaders per constituent
    std::uint32_t a = 0, b = 0;
    for (std::uint32_t s = 0; s < 4; ++s) {
        a += p.role(s) == DuelPolicy::SetRole::LeaderA;
        b += p.role(s) == DuelPolicy::SetRole::LeaderB;
    }
    EXPECT_EQ(a, 2u);
    EXPECT_EQ(b, 2u);
}

TEST(DuelPolicy, PselSaturatesAtConfiguredBound)
{
    DuelPolicy p = makeDuel({4, 1});
    p.reset(64, 4);
    const auto [leader_a, leader_b] = firstLeaders(p, 64);
    ASSERT_LT(leader_a, 64u);
    ASSERT_LT(leader_b, 64u);

    // Misses in the A-leader drive PSEL down; it must clamp at -4.
    for (int i = 0; i < 10; ++i)
        p.shouldBypass(info(leader_a));
    EXPECT_EQ(p.psel(), -4);
    EXPECT_FALSE(p.winnerIsA());

    // Misses in the B-leader drive it back up and clamp at +4.
    for (int i = 0; i < 20; ++i)
        p.shouldBypass(info(leader_b));
    EXPECT_EQ(p.psel(), 4);
    EXPECT_TRUE(p.winnerIsA());

    const DuelTelemetry t = p.telemetry();
    EXPECT_EQ(t.leaderMissesA, 10u);
    EXPECT_EQ(t.leaderMissesB, 20u);
    EXPECT_EQ(t.finalPsel, 4);
    EXPECT_EQ(t.winnerFlips, 2u);  // A->B on first dip, B->A on climb
}

TEST(DuelPolicy, FollowerMissesCarryNoSignal)
{
    DuelPolicy p = makeDuel({1023, 1});
    p.reset(64, 4);
    std::uint32_t follower = 64;
    for (std::uint32_t s = 0; s < 64; ++s)
        if (p.role(s) == DuelPolicy::SetRole::Follower) {
            follower = s;
            break;
        }
    ASSERT_LT(follower, 64u);
    for (int i = 0; i < 50; ++i)
        p.shouldBypass(info(follower));
    EXPECT_EQ(p.psel(), 0);
    EXPECT_EQ(p.telemetry().leaderMissesA, 0u);
    EXPECT_EQ(p.telemetry().leaderMissesB, 0u);
    EXPECT_TRUE(p.telemetry().trajectory.empty());
}

TEST(DuelPolicy, FollowersObeyPselWinner)
{
    // A = LRU, B = FIFO, in a follower set where they disagree:
    // fill 0,1,2, then hit way 0. LRU now victimizes way 1; FIFO
    // still victimizes way 0.
    DuelPolicy p = makeDuel({8, 1});
    p.reset(64, 3);
    const auto [leader_a, leader_b] = firstLeaders(p, 64);
    std::uint32_t follower = 64;
    for (std::uint32_t s = 0; s < 64; ++s)
        if (p.role(s) == DuelPolicy::SetRole::Follower) {
            follower = s;
            break;
        }
    ASSERT_LT(follower, 64u);

    const auto prime = [&] {
        for (std::uint32_t w = 0; w < 3; ++w)
            p.onFill(info(follower), w);
        p.onHit(info(follower), 0);
    };

    prime();
    EXPECT_TRUE(p.winnerIsA());  // PSEL starts at 0 -> A (LRU) wins
    EXPECT_EQ(p.chooseVictim(info(follower)), 1u);

    // Push PSEL negative: B (FIFO) takes over the followers.
    for (int i = 0; i < 8; ++i)
        p.shouldBypass(info(leader_a));
    ASSERT_FALSE(p.winnerIsA());
    p.reset(64, 3);
    for (int i = 0; i < 8; ++i)
        p.shouldBypass(info(leader_a));
    prime();
    EXPECT_EQ(p.chooseVictim(info(follower)), 0u);
}

TEST(DuelPolicy, TrajectoryDecimatesDeterministically)
{
    DuelPolicy p = makeDuel({1023, 1});
    p.reset(64, 4);
    const auto [leader_a, leader_b] = firstLeaders(p, 64);
    (void)leader_b;

    // Far more leader misses than the 128-sample capacity: the stride
    // must have doubled (at least once) and the buffer stayed bounded.
    for (int i = 0; i < 1000; ++i)
        p.shouldBypass(info(leader_a));
    const DuelTelemetry t = p.telemetry();
    EXPECT_LE(t.trajectory.size(), 128u);
    EXPECT_GT(t.sampleStride, 1u);
    EXPECT_FALSE(t.trajectory.empty());
    // Monotone input -> monotone non-increasing samples.
    for (std::size_t i = 1; i < t.trajectory.size(); ++i)
        EXPECT_LE(t.trajectory[i], t.trajectory[i - 1]);

    // Identical stimulus after reset reproduces the exact trajectory.
    DuelPolicy q = makeDuel({1023, 1});
    q.reset(64, 4);
    for (int i = 0; i < 1000; ++i)
        q.shouldBypass(info(leader_a));
    EXPECT_EQ(q.telemetry().trajectory, t.trajectory);
    EXPECT_EQ(q.telemetry().sampleStride, t.sampleStride);
}

TEST(DuelPolicy, ResetClearsAllDuelingState)
{
    DuelPolicy p = makeDuel({16, 1});
    p.reset(64, 4);
    const auto [leader_a, leader_b] = firstLeaders(p, 64);
    (void)leader_b;
    for (int i = 0; i < 10; ++i)
        p.shouldBypass(info(leader_a));
    EXPECT_NE(p.psel(), 0);

    p.reset(64, 4);
    EXPECT_EQ(p.psel(), 0);
    const DuelTelemetry t = p.telemetry();
    EXPECT_EQ(t.leaderMissesA, 0u);
    EXPECT_EQ(t.leaderMissesB, 0u);
    EXPECT_EQ(t.winnerFlips, 0u);
    EXPECT_EQ(t.sampleStride, 1u);
    EXPECT_TRUE(t.trajectory.empty());
}

} // anonymous namespace

/** @file Unit and property tests for the LRU stack helper. */

#include <gtest/gtest.h>

#include "cache/lru_stack.hh"
#include "util/random.hh"

namespace
{

using ghrp::Rng;
using ghrp::cache::LruStack;

TEST(LruStack, InitialOrderIsWayOrder)
{
    LruStack s;
    s.reset(2, 4);
    EXPECT_EQ(s.positionOf(0, 0), 0);
    EXPECT_EQ(s.positionOf(0, 3), 3);
    EXPECT_EQ(s.lruWay(0), 3u);
}

TEST(LruStack, TouchPromotesToMru)
{
    LruStack s;
    s.reset(1, 4);
    s.touch(0, 2);
    EXPECT_EQ(s.positionOf(0, 2), 0);
    EXPECT_EQ(s.lruWay(0), 3u);
    s.touch(0, 3);
    EXPECT_EQ(s.positionOf(0, 3), 0);
    EXPECT_EQ(s.positionOf(0, 2), 1);
    EXPECT_EQ(s.lruWay(0), 1u);
}

TEST(LruStack, SetsIndependent)
{
    LruStack s;
    s.reset(2, 2);
    s.touch(0, 1);
    EXPECT_EQ(s.lruWay(0), 0u);
    EXPECT_EQ(s.lruWay(1), 1u);
}

TEST(LruStack, RepeatTouchIsIdempotent)
{
    LruStack s;
    s.reset(1, 3);
    s.touch(0, 1);
    s.touch(0, 1);
    EXPECT_EQ(s.positionOf(0, 1), 0);
    EXPECT_EQ(s.lruWay(0), 2u);
}

/** Property: positions always form a permutation of 0..ways-1. */
class LruStackWays : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(LruStackWays, PositionsArePermutation)
{
    const std::uint32_t ways = GetParam();
    LruStack s;
    s.reset(4, ways);
    Rng rng(99);
    for (int i = 0; i < 500; ++i) {
        const auto set = static_cast<std::uint32_t>(rng.nextBounded(4));
        const auto way =
            static_cast<std::uint32_t>(rng.nextBounded(ways));
        s.touch(set, way);
        std::vector<bool> seen(ways, false);
        for (std::uint32_t w = 0; w < ways; ++w) {
            const std::uint8_t pos = s.positionOf(set, w);
            ASSERT_LT(pos, ways);
            ASSERT_FALSE(seen[pos]);
            seen[pos] = true;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Ways, LruStackWays,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

} // anonymous namespace

/** @file Unit tests for cache geometry configuration. */

#include <gtest/gtest.h>

#include "cache/config.hh"

namespace
{

using ghrp::cache::CacheConfig;

TEST(CacheConfig, IcacheGeometry)
{
    const CacheConfig c = CacheConfig::icache(64, 8);
    EXPECT_EQ(c.sizeBytes, 64u * 1024);
    EXPECT_EQ(c.blockBytes, 64u);
    EXPECT_EQ(c.numSets(), 128u);
    EXPECT_EQ(c.numBlocks(), 1024u);
}

TEST(CacheConfig, IcacheCustomBlock)
{
    const CacheConfig c = CacheConfig::icache(64, 8, 128);
    EXPECT_EQ(c.numSets(), 64u);
    EXPECT_EQ(c.numBlocks(), 512u);
}

TEST(CacheConfig, BtbGeometry)
{
    const CacheConfig c = CacheConfig::btb(4096, 4);
    EXPECT_EQ(c.numEntries(), 4096u);
    EXPECT_EQ(c.numSets(), 1024u);
}

TEST(CacheConfig, Describe)
{
    EXPECT_EQ(CacheConfig::icache(64, 8).describe(), "64KB 8-way 64B");
    EXPECT_EQ(CacheConfig::btb(4096, 4).describe(), "4096-entry 4-way");
}

TEST(CacheConfig, SmallConfigsFromFig7)
{
    for (std::uint32_t kb : {8u, 16u, 32u, 64u}) {
        for (std::uint32_t assoc : {4u, 8u}) {
            const CacheConfig c = CacheConfig::icache(kb, assoc);
            EXPECT_EQ(c.numSets() * assoc * 64, kb * 1024);
        }
    }
}

} // anonymous namespace

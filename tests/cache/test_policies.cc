/** @file Unit tests for the baseline replacement policies. */

#include <gtest/gtest.h>

#include "cache/basic_policies.hh"
#include "cache/cache.hh"

namespace
{

using namespace ghrp;
using namespace ghrp::cache;

AccessInfo
info(std::uint32_t set, std::uint64_t tick = 0)
{
    AccessInfo i;
    i.set = set;
    i.tick = tick;
    return i;
}

TEST(LruPolicy, EvictsLeastRecent)
{
    LruPolicy p;
    p.reset(1, 4);
    for (std::uint32_t w = 0; w < 4; ++w)
        p.onFill(info(0), w);
    // Fill order 0,1,2,3 -> LRU is 0.
    EXPECT_EQ(p.chooseVictim(info(0)), 0u);
    p.onHit(info(0), 0);
    EXPECT_EQ(p.chooseVictim(info(0)), 1u);
}

TEST(RandomPolicy, VictimInRange)
{
    RandomPolicy p(123);
    p.reset(4, 8);
    for (int i = 0; i < 200; ++i)
        EXPECT_LT(p.chooseVictim(info(i % 4)), 8u);
}

TEST(RandomPolicy, CoversAllWaysEventually)
{
    RandomPolicy p(7);
    p.reset(1, 4);
    bool seen[4] = {};
    for (int i = 0; i < 200; ++i)
        seen[p.chooseVictim(info(0))] = true;
    EXPECT_TRUE(seen[0] && seen[1] && seen[2] && seen[3]);
}

TEST(FifoPolicy, EvictsInFillOrderIgnoringHits)
{
    FifoPolicy p;
    p.reset(1, 3);
    p.onFill(info(0), 0);
    p.onFill(info(0), 1);
    p.onFill(info(0), 2);
    p.onHit(info(0), 0);  // hits do not refresh FIFO order
    EXPECT_EQ(p.chooseVictim(info(0)), 0u);
    p.onFill(info(0), 0);  // replaced slot 0
    EXPECT_EQ(p.chooseVictim(info(0)), 1u);
}

TEST(SrripPolicy, InsertsAtLongNotDistant)
{
    SrripPolicy p(2);
    p.reset(1, 2);
    p.onFill(info(0), 0);
    // Way 1 never filled: stays at distant (3) and is the victim.
    EXPECT_EQ(p.chooseVictim(info(0)), 1u);
}

TEST(SrripPolicy, HitPromotesToNearImmediate)
{
    SrripPolicy p(2);
    p.reset(1, 2);
    p.onFill(info(0), 0);
    p.onFill(info(0), 1);
    p.onHit(info(0), 0);
    // Both at RRPV 2 after fills; hit sets way 0 to 0. Victim search
    // ages until way 1 reaches 3 first.
    EXPECT_EQ(p.chooseVictim(info(0)), 1u);
}

TEST(SrripPolicy, AgingTerminates)
{
    SrripPolicy p(2);
    p.reset(1, 4);
    for (std::uint32_t w = 0; w < 4; ++w) {
        p.onFill(info(0), w);
        p.onHit(info(0), w);
    }
    // All at RRPV 0: chooseVictim must age and return way 0.
    EXPECT_EQ(p.chooseVictim(info(0)), 0u);
}

TEST(BrripPolicy, MostInsertionsDistant)
{
    BrripPolicy p(2, 1.0 / 32, 5);
    p.reset(1, 8);
    // Fill way 0 many times; with prob 31/32 insertion RRPV is max.
    // Immediately after a distant insertion, way 0 is a victim
    // candidate without aging. Count how often.
    int distant = 0;
    for (int i = 0; i < 320; ++i) {
        p.onFill(info(0), 0);
        if (p.chooseVictim(info(0)) == 0u)
            ++distant;
        // Reset other ways to distant for a clean next round.
        p.reset(1, 8);
    }
    EXPECT_GT(distant, 250);
}

TEST(DrripPolicy, BehavesAndStaysInRange)
{
    DrripPolicy p(2, 4, 11);
    p.reset(64, 4);
    for (int i = 0; i < 1000; ++i) {
        const auto set = static_cast<std::uint32_t>(i % 64);
        p.shouldBypass(info(set));  // scores the duel
        p.onFill(info(set), static_cast<std::uint32_t>(i % 4));
        EXPECT_LT(p.chooseVictim(info(set)), 4u);
    }
}

TEST(Policies, NamesAreDistinct)
{
    LruPolicy lru;
    RandomPolicy rnd;
    FifoPolicy fifo;
    SrripPolicy srrip;
    BrripPolicy brrip;
    DrripPolicy drrip;
    const std::string names[] = {lru.name(),   rnd.name(),
                                 fifo.name(),  srrip.name(),
                                 brrip.name(), drrip.name()};
    for (std::size_t a = 0; a < std::size(names); ++a)
        for (std::size_t b = a + 1; b < std::size(names); ++b)
            EXPECT_NE(names[a], names[b]);
}

/**
 * Behavioural property: under a cyclic working set one block larger
 * than the set (the classic LRU-adversarial loop), the bimodal
 * insertion of BRRIP keeps part of the set resident while LRU misses
 * every single access. (SRRIP alone also thrashes here; thrash
 * resistance is the B in BRRIP.)
 */
TEST(Policies, BrripBeatsLruOnCyclicThrash)
{
    const CacheConfig cfg = CacheConfig::icache(1, 4);  // 4 sets x 4
    CacheModel<> lru(cfg, std::make_unique<LruPolicy>());
    CacheModel<> brrip(cfg, std::make_unique<BrripPolicy>());

    // 5 blocks mapping to set 0 (stride 4 blocks * 64B = 256B).
    const int blocks = 5;
    for (int round = 0; round < 400; ++round) {
        for (int b = 0; b < blocks; ++b) {
            const Addr addr = static_cast<Addr>(b) * 256;
            lru.access(addr, addr);
            brrip.access(addr, addr);
        }
    }
    EXPECT_GT(brrip.accessStats().hitRate(),
              lru.accessStats().hitRate());
    // LRU gets exactly zero hits on this pattern.
    EXPECT_EQ(lru.accessStats().hits, 0u);
}

} // anonymous namespace

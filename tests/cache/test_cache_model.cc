/** @file Unit tests for the generic set-associative cache model. */

#include <gtest/gtest.h>

#include "cache/basic_policies.hh"
#include "cache/cache.hh"

namespace
{

using namespace ghrp;
using namespace ghrp::cache;

/** A policy that bypasses everything (for bypass-path testing). */
class AlwaysBypass : public ReplacementPolicy
{
  public:
    void reset(std::uint32_t, std::uint32_t) override {}
    bool shouldBypass(const AccessInfo &) override { return true; }
    std::uint32_t chooseVictim(const AccessInfo &) override { return 0; }
    void onHit(const AccessInfo &, std::uint32_t) override {}
    void onFill(const AccessInfo &, std::uint32_t) override {}
    std::string name() const override { return "always-bypass"; }
};

CacheModel<>
makeCache(std::uint32_t kb = 1, std::uint32_t assoc = 2)
{
    return CacheModel<>(CacheConfig::icache(kb, assoc),
                        std::make_unique<LruPolicy>());
}

TEST(CacheModel, ColdMissThenHit)
{
    CacheModel<> c = makeCache();
    const AccessOutcome miss = c.access(0x1000, 0x1000);
    EXPECT_FALSE(miss.hit);
    EXPECT_FALSE(miss.evicted);
    const AccessOutcome hit = c.access(0x1000, 0x1000);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(c.accessStats().hits, 1u);
    EXPECT_EQ(c.accessStats().misses, 1u);
}

TEST(CacheModel, SameBlockDifferentOffsetsHit)
{
    CacheModel<> c = makeCache();
    c.access(0x1000, 0x1000);
    EXPECT_TRUE(c.access(0x103F, 0x103F).hit);
    EXPECT_FALSE(c.access(0x1040, 0x1040).hit);
}

TEST(CacheModel, SetIndexing)
{
    CacheModel<> c = makeCache(1, 2);  // 1KB/64B/2-way = 8 sets
    EXPECT_EQ(c.numSets(), 8u);
    EXPECT_EQ(c.setIndex(0x0000), 0u);
    EXPECT_EQ(c.setIndex(0x0040), 1u);
    EXPECT_EQ(c.setIndex(0x0200), 0u);  // wraps modulo 8 blocks
}

TEST(CacheModel, EvictsLruWhenSetFull)
{
    CacheModel<> c = makeCache(1, 2);
    // Three blocks in set 0 (stride = 8 blocks * 64B = 512B).
    c.access(0x0000, 0);
    c.access(0x0200, 0);
    c.access(0x0000, 0);  // touch A -> B becomes LRU
    const AccessOutcome out = c.access(0x0400, 0);
    EXPECT_TRUE(out.evicted);
    EXPECT_EQ(out.victimAddress, 0x0200u);
    EXPECT_TRUE(c.access(0x0000, 0).hit);   // A survived
    EXPECT_FALSE(c.access(0x0200, 0).hit);  // B was evicted
}

TEST(CacheModel, BypassDoesNotFill)
{
    CacheModel<> c(CacheConfig::icache(1, 2),
                   std::make_unique<AlwaysBypass>());
    const AccessOutcome out = c.access(0x1000, 0x1000);
    EXPECT_TRUE(out.bypassed);
    EXPECT_FALSE(c.probe(0x1000).has_value());
    EXPECT_EQ(c.accessStats().bypasses, 1u);
    EXPECT_EQ(c.accessStats().misses, 1u);
}

TEST(CacheModel, ProbeDoesNotTouchState)
{
    CacheModel<> c = makeCache(1, 2);
    c.access(0x0000, 0);  // A
    c.access(0x0200, 0);  // B; LRU = A
    // Probing A must NOT refresh it.
    EXPECT_TRUE(c.probe(0x0000).has_value());
    c.access(0x0400, 0);  // evicts A (still LRU despite the probe)
    EXPECT_FALSE(c.probe(0x0000).has_value());
    EXPECT_TRUE(c.probe(0x0200).has_value());
}

TEST(CacheModel, PayloadStoredAndUpdated)
{
    CacheModel<Addr> c(CacheConfig::btb(64, 4),
                       std::make_unique<LruPolicy>());
    c.access(0x1000, 0x1000, 0xAAAA);
    auto way = c.probe(0x1000);
    ASSERT_TRUE(way.has_value());
    EXPECT_EQ(c.payloadAt(0x1000, *way), 0xAAAAu);
    c.access(0x1000, 0x1000, 0xBBBB);  // hit updates payload
    EXPECT_EQ(c.payloadAt(0x1000, *way), 0xBBBBu);
}

TEST(CacheModel, InvalidateAll)
{
    CacheModel<> c = makeCache();
    c.access(0x1000, 0);
    c.invalidateAll();
    EXPECT_FALSE(c.probe(0x1000).has_value());
}

TEST(CacheModel, ResetStatsKeepsContents)
{
    CacheModel<> c = makeCache();
    c.access(0x1000, 0);
    c.resetStats();
    EXPECT_EQ(c.accessStats().accesses, 0u);
    EXPECT_TRUE(c.access(0x1000, 0).hit);
}

TEST(CacheModel, TracksEfficiency)
{
    CacheModel<> c = makeCache(1, 2);
    stats::EfficiencyTracker tracker(c.numSets(), c.numWays());
    c.attachTracker(&tracker);
    c.access(0x0000, 0);
    c.access(0x0000, 0);
    tracker.finalize(c.ticks());
    EXPECT_GT(tracker.meanEfficiency(), 0.0);
}

TEST(CacheModel, DeadEvictionCounters)
{
    // LRU never reports dead victims.
    CacheModel<> c = makeCache(1, 2);
    c.access(0x0000, 0);
    c.access(0x0200, 0);
    c.access(0x0400, 0);
    EXPECT_EQ(c.accessStats().evictions, 1u);
    EXPECT_EQ(c.accessStats().deadEvictions, 0u);
}

} // anonymous namespace

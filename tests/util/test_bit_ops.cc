/** @file Unit tests for util/bit_ops.hh. */

#include <gtest/gtest.h>

#include "util/bit_ops.hh"

namespace
{

using namespace ghrp;

TEST(BitOps, MaskWidths)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(3), 7u);
    EXPECT_EQ(mask(16), 0xFFFFu);
    EXPECT_EQ(mask(63), 0x7FFFFFFFFFFFFFFFull);
    EXPECT_EQ(mask(64), ~std::uint64_t{0});
    EXPECT_EQ(mask(100), ~std::uint64_t{0});
}

TEST(BitOps, BitsExtraction)
{
    EXPECT_EQ(bits(0xDEADBEEF, 0, 4), 0xFu);
    EXPECT_EQ(bits(0xDEADBEEF, 4, 4), 0xEu);
    EXPECT_EQ(bits(0xDEADBEEF, 16, 16), 0xDEADu);
    EXPECT_EQ(bits(0xFF, 8, 8), 0u);
}

TEST(BitOps, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2((1ull << 40) + 1));
}

TEST(BitOps, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(floorLog2(65), 6u);
    EXPECT_EQ(floorLog2(1ull << 63), 63u);
}

TEST(BitOps, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(64), 6u);
    EXPECT_EQ(ceilLog2(65), 7u);
}

TEST(BitOps, FoldXorIdentityForWideWidths)
{
    EXPECT_EQ(foldXor(0x1234, 64), 0x1234u);
    EXPECT_EQ(foldXor(0x1234, 0), 0x1234u);
}

TEST(BitOps, FoldXorFoldsChunks)
{
    // 0xAB ^ 0xCD in 8-bit chunks.
    EXPECT_EQ(foldXor(0xABCD, 8), 0xABu ^ 0xCDu);
    // Three 4-bit chunks.
    EXPECT_EQ(foldXor(0xABC, 4), 0xAu ^ 0xBu ^ 0xCu);
    EXPECT_EQ(foldXor(0, 12), 0u);
}

/** Property sweep: folded values always fit in the target width. */
class FoldXorWidth : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FoldXorWidth, ResultFitsWidth)
{
    const unsigned width = GetParam();
    std::uint64_t x = 0x9E3779B97F4A7C15ull;
    for (int i = 0; i < 100; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        EXPECT_LE(foldXor(x, width), mask(width));
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, FoldXorWidth,
                         ::testing::Values(1u, 3u, 8u, 12u, 16u, 31u, 47u));

} // anonymous namespace

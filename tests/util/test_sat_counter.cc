/** @file Unit tests for saturating counters. */

#include <gtest/gtest.h>

#include "util/sat_counter.hh"

namespace
{

using namespace ghrp;

TEST(SatCounter, SaturatesHigh)
{
    SatCounter c(2);
    EXPECT_EQ(c.maximum(), 3u);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.count(), 3u);
    EXPECT_TRUE(c.saturated());
}

TEST(SatCounter, SaturatesLow)
{
    SatCounter c(2, 1);
    c.decrement();
    c.decrement();
    c.decrement();
    EXPECT_EQ(c.count(), 0u);
}

TEST(SatCounter, InitialClamped)
{
    SatCounter c(2, 100);
    EXPECT_EQ(c.count(), 3u);
}

TEST(SatCounter, SetClamps)
{
    SatCounter c(3);
    c.set(5);
    EXPECT_EQ(c.count(), 5u);
    c.set(100);
    EXPECT_EQ(c.count(), 7u);
}

TEST(SatCounter, Threshold)
{
    SatCounter c(3, 4);
    EXPECT_TRUE(c.atLeast(4));
    EXPECT_TRUE(c.atLeast(0));
    EXPECT_FALSE(c.atLeast(5));
}

/** Property: counts never exceed the width-implied maximum. */
class SatCounterWidth : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SatCounterWidth, NeverExceedsMax)
{
    SatCounter c(GetParam());
    const std::uint32_t max = (1u << GetParam()) - 1;
    EXPECT_EQ(c.maximum(), max);
    for (int i = 0; i < 300; ++i) {
        c.increment();
        ASSERT_LE(c.count(), max);
    }
    for (int i = 0; i < 600; ++i) {
        c.decrement();
        ASSERT_LE(c.count(), max);
    }
    EXPECT_EQ(c.count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Widths, SatCounterWidth,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u));

TEST(SignedSatCounter, ClampsBothSides)
{
    SignedSatCounter w(3);  // [-4, 3]
    EXPECT_EQ(w.minimum(), -4);
    EXPECT_EQ(w.maximum(), 3);
    for (int i = 0; i < 10; ++i)
        w.train(true);
    EXPECT_EQ(w.count(), 3);
    for (int i = 0; i < 20; ++i)
        w.train(false);
    EXPECT_EQ(w.count(), -4);
}

TEST(SignedSatCounter, InitialClamped)
{
    SignedSatCounter hi(4, 100);
    EXPECT_EQ(hi.count(), 7);
    SignedSatCounter lo(4, -100);
    EXPECT_EQ(lo.count(), -8);
}

TEST(SignedSatCounter, TrainsTowardOutcome)
{
    SignedSatCounter w(8);
    w.train(true);
    w.train(true);
    w.train(false);
    EXPECT_EQ(w.count(), 1);
}

} // anonymous namespace

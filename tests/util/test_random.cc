/** @file Unit tests for the xoroshiro128++ RNG and its distributions. */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/random.hh"

namespace
{

using namespace ghrp;

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInBounds)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Rng, BoundedOneAlwaysZero)
{
    Rng rng(9);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(rng.nextBounded(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(13);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    // Mean of U(0,1) is 0.5; with n=10000 the error is tiny.
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BoolRespectsProbability)
{
    Rng rng(17);
    int trues = 0;
    for (int i = 0; i < 10000; ++i)
        trues += rng.nextBool(0.3) ? 1 : 0;
    EXPECT_NEAR(trues / 10000.0, 0.3, 0.03);

    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.nextBool(0.0));
        EXPECT_TRUE(rng.nextBool(1.0));
    }
}

TEST(Rng, GeometricMean)
{
    Rng rng(19);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.nextGeometric(0.5));
    // E[1 + Geom(p=0.5 continue)] = 2.
    EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, ZipfInRangeAndSkewed)
{
    Rng rng(23);
    const std::uint64_t n = 100;
    std::vector<int> counts(n, 0);
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t r = rng.nextZipf(n, 1.3);
        ASSERT_LT(r, n);
        ++counts[r];
    }
    // Rank 0 must be the most popular and much more popular than the
    // median rank.
    EXPECT_GT(counts[0], counts[50] * 4);
    EXPECT_GT(counts[0], counts[10]);
}

TEST(Rng, ZipfSingleElement)
{
    Rng rng(29);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.nextZipf(1, 1.5), 0u);
}

TEST(Rng, WeightedRespectsWeights)
{
    Rng rng(31);
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 30000; ++i)
        ++counts[rng.nextWeighted({1.0, 2.0, 7.0})];
    EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.02);
    EXPECT_NEAR(counts[1] / 30000.0, 0.2, 0.02);
    EXPECT_NEAR(counts[2] / 30000.0, 0.7, 0.02);
}

TEST(Rng, WeightedZeroWeightNeverChosen)
{
    Rng rng(37);
    for (int i = 0; i < 1000; ++i)
        EXPECT_NE(rng.nextWeighted({1.0, 0.0, 1.0}), 1u);
}

TEST(Rng, WeightedAllZeroFallsBackUniform)
{
    Rng rng(41);
    bool saw[3] = {false, false, false};
    for (int i = 0; i < 200; ++i)
        saw[rng.nextWeighted({0.0, 0.0, 0.0})] = true;
    EXPECT_TRUE(saw[0] && saw[1] && saw[2]);
}

TEST(SplitMix, PureAndDeterministic)
{
    for (std::uint64_t x : {0ull, 1ull, 42ull, ~0ull})
        EXPECT_EQ(splitMix64(x), splitMix64(x));
    // Known scrambler property: distinct inputs scramble to distinct
    // outputs (splitMix64 is a bijection on 64-bit values).
    EXPECT_NE(splitMix64(0), splitMix64(1));
    EXPECT_NE(splitMix64(1), splitMix64(2));
}

TEST(TraceSeed, PureFunctionOfBaseAndIndex)
{
    for (std::uint64_t base : {0ull, 42ull, 0xDEADBEEFull}) {
        for (std::uint64_t i : {0ull, 1ull, 7ull, 661ull}) {
            EXPECT_EQ(traceSeed(base, i), traceSeed(base, i));
        }
    }
}

TEST(TraceSeed, DistinctAcrossIndicesAndBases)
{
    std::vector<std::uint64_t> seen;
    for (std::uint64_t base : {1ull, 42ull})
        for (std::uint64_t i = 0; i < 256; ++i)
            seen.push_back(traceSeed(base, i));
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST(TraceSeed, MatchesStatefulSplitMixStream)
{
    // traceSeed(base, i) must equal the (i+1)-th output of a classic
    // stateful SplitMix64 generator seeded with base — that is what
    // makes it an O(1) random-access jump into the stream, so trace N
    // can be seeded without deriving seeds for traces 0..N-1.
    constexpr std::uint64_t gamma = 0x9E3779B97F4A7C15ull;
    const std::uint64_t base = 42;
    std::uint64_t state = base;
    for (std::uint64_t i = 0; i < 64; ++i) {
        state += gamma;
        std::uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        z ^= z >> 31;
        EXPECT_EQ(traceSeed(base, i), z) << "index " << i;
    }
}

TEST(TraceSeed, SeedsIndependentRngStreams)
{
    // Adjacent trace seeds must drive uncorrelated xoroshiro streams.
    Rng a(traceSeed(42, 0)), b(traceSeed(42, 1));
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

} // anonymous namespace

/** @file Unit tests for the logging/error facility. */

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace
{

using namespace ghrp;

TEST(Logging, LevelRoundTrip)
{
    const LogLevel original = logLevel();
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(LogLevel::Verbose);
    EXPECT_EQ(logLevel(), LogLevel::Verbose);
    setLogLevel(original);
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 42), "panic: boom 42");
}

TEST(LoggingDeathTest, FatalExitsWithCode1)
{
    EXPECT_EXIT(fatal("bad config '%s'", "x"),
                ::testing::ExitedWithCode(1), "fatal: bad config 'x'");
}

TEST(LoggingDeathTest, AssertMacroPanicsOnFalse)
{
    EXPECT_DEATH(GHRP_ASSERT(1 == 2), "assertion failed");
}

TEST(Logging, AssertMacroPassesOnTrue)
{
    GHRP_ASSERT(1 == 1);  // must not abort
    SUCCEED();
}

} // anonymous namespace

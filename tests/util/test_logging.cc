/** @file Unit tests for the logging/error facility. */

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace
{

using namespace ghrp;

TEST(Logging, LevelRoundTrip)
{
    const LogLevel original = logLevel();
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(LogLevel::Verbose);
    EXPECT_EQ(logLevel(), LogLevel::Verbose);
    setLogLevel(original);
}

TEST(Logging, EnabledPredicatesFollowTheLevel)
{
    const LogLevel original = logLevel();

    setLogLevel(LogLevel::Quiet);
    EXPECT_FALSE(warnEnabled());
    EXPECT_FALSE(informEnabled());

    setLogLevel(LogLevel::Warn);
    EXPECT_TRUE(warnEnabled());
    EXPECT_FALSE(informEnabled());

    setLogLevel(LogLevel::Normal);
    EXPECT_TRUE(warnEnabled());
    EXPECT_TRUE(informEnabled());

    setLogLevel(original);
}

TEST(Logging, ParseLogLevelNamesAndAliases)
{
    LogLevel level = LogLevel::Normal;
    EXPECT_TRUE(parseLogLevel("quiet", level));
    EXPECT_EQ(level, LogLevel::Quiet);
    EXPECT_TRUE(parseLogLevel("warn", level));
    EXPECT_EQ(level, LogLevel::Warn);
    EXPECT_TRUE(parseLogLevel("info", level));
    EXPECT_EQ(level, LogLevel::Normal);
    EXPECT_TRUE(parseLogLevel("normal", level));
    EXPECT_EQ(level, LogLevel::Normal);
    EXPECT_TRUE(parseLogLevel("debug", level));
    EXPECT_EQ(level, LogLevel::Verbose);
    EXPECT_TRUE(parseLogLevel("verbose", level));
    EXPECT_EQ(level, LogLevel::Verbose);

    level = LogLevel::Warn;
    EXPECT_FALSE(parseLogLevel("loud", level));
    EXPECT_EQ(level, LogLevel::Warn);  // untouched on failure
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 42), "panic: boom 42");
}

TEST(LoggingDeathTest, FatalExitsWithCode1)
{
    EXPECT_EXIT(fatal("bad config '%s'", "x"),
                ::testing::ExitedWithCode(1), "fatal: bad config 'x'");
}

TEST(LoggingDeathTest, AssertMacroPanicsOnFalse)
{
    EXPECT_DEATH(GHRP_ASSERT(1 == 2), "assertion failed");
}

TEST(Logging, AssertMacroPassesOnTrue)
{
    GHRP_ASSERT(1 == 1);  // must not abort
    SUCCEED();
}

} // anonymous namespace

/** @file Tests for the CFG executor: trace consistency properties. */

#include <gtest/gtest.h>

#include <unordered_set>

#include "trace/fetch_stream.hh"
#include "workload/executor.hh"
#include "workload/generator.hh"
#include "workload/suite.hh"

namespace
{

using namespace ghrp;
using namespace ghrp::workload;

trace::Trace
smallTrace(Category cat = Category::ShortMobile, std::uint64_t seed = 3,
           std::uint64_t instructions = 200'000)
{
    TraceSpec spec;
    spec.category = cat;
    spec.seed = seed;
    spec.name = "test";
    return buildTrace(spec, instructions);
}

TEST(Executor, ProducesRecords)
{
    const trace::Trace t = smallTrace();
    EXPECT_GT(t.records.size(), 1000u);
    EXPECT_EQ(t.name, "test");
    EXPECT_EQ(t.category, std::string("SHORT-MOBILE"));
}

TEST(Executor, TraceIsSequentiallyConsistent)
{
    // Core property: every record's PC lies at or after the current
    // fetch PC, and fall-through/target transitions line up. The
    // FetchStreamWalker's resync counter detects violations.
    const trace::Trace t = smallTrace(Category::ShortServer, 11);
    trace::FetchStreamWalker walker(t.entryPc);
    for (const trace::BranchRecord &rec : t.records)
        walker.advance(rec, [](Addr) {});
    EXPECT_EQ(walker.resyncs(), 0u);
}

TEST(Executor, RespectsInstructionBudget)
{
    const std::uint64_t budget = 150'000;
    const trace::Trace t =
        smallTrace(Category::ShortMobile, 5, budget);
    trace::FetchStreamWalker walker(t.entryPc);
    for (const trace::BranchRecord &rec : t.records)
        walker.advance(rec, [](Addr) {});
    // Within one dispatch (max function cost) of the budget.
    EXPECT_GE(walker.instructionCount(), budget * 9 / 10);
    EXPECT_LT(walker.instructionCount(), budget + 100'000);
}

TEST(Executor, DeterministicForSeed)
{
    const trace::Trace a = smallTrace(Category::LongMobile, 9, 100'000);
    const trace::Trace b = smallTrace(Category::LongMobile, 9, 100'000);
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t i = 0; i < a.records.size(); ++i)
        ASSERT_EQ(a.records[i], b.records[i]);
}

TEST(Executor, DifferentSeedsDiffer)
{
    const trace::Trace a = smallTrace(Category::LongMobile, 1, 100'000);
    const trace::Trace b = smallTrace(Category::LongMobile, 2, 100'000);
    EXPECT_NE(a.records.size(), b.records.size());
}

TEST(Executor, CallsAndReturnsAreTaken)
{
    const trace::Trace t = smallTrace();
    for (const trace::BranchRecord &rec : t.records) {
        if (trace::isCall(rec.type) ||
            rec.type == trace::BranchType::Return ||
            rec.type == trace::BranchType::UncondDirect ||
            rec.type == trace::BranchType::UncondIndirect) {
            ASSERT_TRUE(rec.taken)
                << "unconditional type must be taken";
        }
    }
}

TEST(Executor, ReturnsMatchCallDepth)
{
    const trace::Trace t = smallTrace();
    std::int64_t depth = 0;
    for (const trace::BranchRecord &rec : t.records) {
        if (trace::isCall(rec.type))
            ++depth;
        else if (rec.type == trace::BranchType::Return)
            --depth;
        ASSERT_GE(depth, 0) << "return without a call";
    }
}

TEST(Executor, ReturnTargetsAreCallSitePlus4)
{
    const trace::Trace t = smallTrace(Category::ShortServer, 21);
    std::vector<Addr> stack;
    for (const trace::BranchRecord &rec : t.records) {
        if (trace::isCall(rec.type)) {
            stack.push_back(rec.pc + 4);
        } else if (rec.type == trace::BranchType::Return) {
            ASSERT_FALSE(stack.empty());
            EXPECT_EQ(rec.target, stack.back());
            stack.pop_back();
        }
    }
}

TEST(Executor, MixesBranchTypes)
{
    const trace::Trace t = smallTrace(Category::ShortServer, 13, 500'000);
    const trace::TraceSummary s = summarize(t);
    using trace::BranchType;
    EXPECT_GT(s.perType[static_cast<int>(BranchType::CondDirect)], 0u);
    EXPECT_GT(s.perType[static_cast<int>(BranchType::Call)], 0u);
    EXPECT_GT(s.perType[static_cast<int>(BranchType::Return)], 0u);
    EXPECT_GT(s.perType[static_cast<int>(BranchType::IndirectCall)], 0u);
}

TEST(Executor, TakenFractionPlausible)
{
    const trace::Trace t = smallTrace(Category::ShortMobile, 17, 500'000);
    const double taken = summarize(t).takenFraction();
    EXPECT_GT(taken, 0.3);
    EXPECT_LT(taken, 0.95);
}

TEST(Suite, CyclesCategories)
{
    const std::vector<TraceSpec> suite = makeSuite(8, 42);
    ASSERT_EQ(suite.size(), 8u);
    EXPECT_EQ(suite[0].category, Category::ShortMobile);
    EXPECT_EQ(suite[1].category, Category::ShortServer);
    EXPECT_EQ(suite[2].category, Category::LongMobile);
    EXPECT_EQ(suite[3].category, Category::LongServer);
    EXPECT_EQ(suite[4].category, Category::ShortMobile);
    // Distinct seeds and names.
    std::unordered_set<std::uint64_t> seeds;
    std::unordered_set<std::string> names;
    for (const TraceSpec &spec : suite) {
        seeds.insert(spec.seed);
        names.insert(spec.name);
    }
    EXPECT_EQ(seeds.size(), 8u);
    EXPECT_EQ(names.size(), 8u);
}

} // anonymous namespace

/** @file Unit tests for the workload category presets. */

#include <gtest/gtest.h>

#include "workload/params.hh"

namespace
{

using namespace ghrp::workload;

TEST(Params, LongCategoriesRunLonger)
{
    const WorkloadParams sm = makeParams(Category::ShortMobile, 1);
    const WorkloadParams lm = makeParams(Category::LongMobile, 1);
    const WorkloadParams ss = makeParams(Category::ShortServer, 1);
    const WorkloadParams ls = makeParams(Category::LongServer, 1);
    EXPECT_GT(lm.targetInstructions, sm.targetInstructions);
    EXPECT_GT(ls.targetInstructions, ss.targetInstructions);
}

TEST(Params, ServersBiggerThanMobiles)
{
    const WorkloadParams mobile = makeParams(Category::ShortMobile, 3);
    const WorkloadParams server = makeParams(Category::ShortServer, 3);
    EXPECT_GT(server.numModules, mobile.numModules);
    EXPECT_GT(server.funcsPerModuleLo, mobile.funcsPerModuleLo);
}

TEST(Params, SeedPerturbsShape)
{
    const WorkloadParams a = makeParams(Category::ShortServer, 1);
    const WorkloadParams b = makeParams(Category::ShortServer, 2);
    const bool differs = a.numModules != b.numModules ||
                         a.zipfSkew != b.zipfSkew ||
                         a.scanCodeFraction != b.scanCodeFraction;
    EXPECT_TRUE(differs);
}

TEST(Params, DeterministicPerSeed)
{
    const WorkloadParams a = makeParams(Category::LongServer, 9);
    const WorkloadParams b = makeParams(Category::LongServer, 9);
    EXPECT_EQ(a.numModules, b.numModules);
    EXPECT_EQ(a.zipfSkew, b.zipfSkew);
    EXPECT_EQ(a.phaseLengthInstructions, b.phaseLengthInstructions);
}

TEST(Params, ProbabilitiesAreProbabilities)
{
    for (std::uint64_t seed : {1ull, 5ull, 99ull}) {
        for (Category c : {Category::ShortMobile, Category::LongMobile,
                           Category::ShortServer, Category::LongServer}) {
            const WorkloadParams p = makeParams(c, seed);
            for (double prob :
                 {p.callFraction, p.indirectCallFraction, p.loopFraction,
                  p.switchFraction, p.scanCodeFraction,
                  p.bigLoopFraction, p.scanCallProbability,
                  p.bigLoopCallProbability, p.crossModuleCallFraction,
                  p.biasSkew}) {
                EXPECT_GE(prob, 0.0);
                EXPECT_LE(prob, 1.0);
            }
            EXPECT_GE(p.blocksPerFuncHi, p.blocksPerFuncLo);
            EXPECT_GE(p.instrsPerBlockHi, p.instrsPerBlockLo);
            EXPECT_GE(p.loopTripMeanHi, p.loopTripMeanLo);
            EXPECT_GT(p.phaseLengthInstructions, 0u);
            EXPECT_GT(p.maxFunctionCost, 1000u);
        }
    }
}

} // anonymous namespace

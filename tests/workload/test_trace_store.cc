/** @file Unit tests for the content-addressed trace store. */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "frontend/frontend.hh"
#include "trace/decoded_trace.hh"
#include "trace/trace_io.hh"
#include "workload/trace_store.hh"

namespace
{

using namespace ghrp;
using namespace ghrp::workload;

/** Fresh scratch directory per test. */
std::string
scratchDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "/store-" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

std::vector<TraceSpec>
specs(std::uint32_t n = 2, std::uint64_t seed = 11)
{
    return makeSuite(n, seed);
}

bool
sameTrace(const trace::Trace &a, const trace::Trace &b)
{
    if (a.entryPc != b.entryPc || a.records.size() != b.records.size())
        return false;
    for (std::size_t i = 0; i < a.records.size(); ++i)
        if (!(a.records[i] == b.records[i]))
            return false;
    return true;
}

TEST(ContentKey, StableAcrossCalls)
{
    const auto sp = specs();
    EXPECT_EQ(TraceStore::contentKey(sp[0], 0),
              TraceStore::contentKey(sp[0], 0));
}

TEST(ContentKey, SensitiveToGenerationInputs)
{
    const auto sp = specs();
    const std::uint64_t base = TraceStore::contentKey(sp[0], 0);
    // A different spec, a different seed, and a different instruction
    // override must all move the key.
    EXPECT_NE(base, TraceStore::contentKey(sp[1], 0));
    EXPECT_NE(base, TraceStore::contentKey(sp[0], 50'000));
    TraceSpec reseeded = sp[0];
    reseeded.seed ^= 1;
    EXPECT_NE(base, TraceStore::contentKey(reseeded, 0));
}

TEST(ContentKey, NameIsPresentationOnly)
{
    // The name is patched from the spec on load, so renaming a spec
    // must not invalidate its cached trace.
    const auto sp = specs();
    TraceSpec renamed = sp[0];
    renamed.name = "SOMETHING-ELSE";
    EXPECT_EQ(TraceStore::contentKey(sp[0], 0),
              TraceStore::contentKey(renamed, 0));
}

TEST(TraceStoreTest, DisabledStoreStillBuilds)
{
    TraceStore store("");
    // No GHRP_TRACE_CACHE in the test environment means disabled.
    if (store.enabled())
        GTEST_SKIP() << "GHRP_TRACE_CACHE set in environment";
    const auto sp = specs(1);
    const trace::Trace direct = buildTrace(sp[0], 40'000);
    const trace::Trace via_store = store.acquire(sp[0], 40'000);
    EXPECT_TRUE(sameTrace(direct, via_store));
    EXPECT_EQ(store.stats().hits, 0u);
    EXPECT_EQ(store.stats().misses, 0u);
}

TEST(TraceStoreTest, MissThenHitRoundTrip)
{
    TraceStore store(scratchDir("roundtrip"));
    const auto sp = specs(1);

    const trace::Trace first = store.acquire(sp[0], 40'000);
    EXPECT_EQ(store.stats().misses, 1u);
    EXPECT_EQ(store.stats().stores, 1u);
    EXPECT_TRUE(std::filesystem::exists(store.pathFor(sp[0], 40'000)));

    const trace::Trace second = store.acquire(sp[0], 40'000);
    EXPECT_EQ(store.stats().hits, 1u);
    EXPECT_TRUE(sameTrace(first, second));
    EXPECT_TRUE(sameTrace(first, buildTrace(sp[0], 40'000)));
    // Presentation metadata comes from the spec, not the file.
    EXPECT_EQ(second.name, sp[0].name);
}

TEST(TraceStoreTest, MappedReadEqualsStreamedRead)
{
    TraceStore store(scratchDir("mmap"));
    const auto sp = specs(1);
    (void)store.acquire(sp[0], 40'000);

    const std::string path = store.pathFor(sp[0], 40'000);
    const auto mapped = trace::MappedTrace::tryOpen(path);
    ASSERT_TRUE(mapped.has_value());
    const trace::Trace streamed = trace::readTrace(path);
    ASSERT_EQ(mapped->numRecords(), streamed.records.size());
    EXPECT_EQ(mapped->entryPc(), streamed.entryPc);
    for (std::size_t i = 0; i < streamed.records.size(); ++i)
        EXPECT_EQ(mapped->record(i), streamed.records[i]);
    EXPECT_TRUE(sameTrace(mapped->materialize(), streamed));
}

TEST(TraceStoreTest, AcquireDecodedMatchesInMemoryPipeline)
{
    TraceStore store(scratchDir("decoded"));
    const auto sp = specs(1);
    const trace::DecodedTrace reference =
        trace::decodeTrace(buildTrace(sp[0], 40'000), 64, 4);

    // Cold (generate + persist) and warm (decode from the mmap) must
    // both reproduce the in-memory pipeline exactly.
    for (int round = 0; round < 2; ++round) {
        const trace::DecodedTrace dec =
            store.acquireDecoded(sp[0], 40'000, 64, 4);
        EXPECT_EQ(dec.brPc, reference.brPc);
        EXPECT_EQ(dec.brTarget, reference.brTarget);
        EXPECT_EQ(dec.brMeta, reference.brMeta);
        EXPECT_EQ(dec.cumInstructions, reference.cumInstructions);
        EXPECT_EQ(dec.opBegin, reference.opBegin);
        EXPECT_EQ(dec.fetchPc, reference.fetchPc);
        EXPECT_EQ(dec.name, sp[0].name);
    }
    EXPECT_EQ(store.stats().misses, 1u);
    EXPECT_EQ(store.stats().hits, 1u);
}

TEST(TraceStoreTest, StaleFormatVersionIsAMiss)
{
    TraceStore store(scratchDir("stale"));
    const auto sp = specs(1);
    (void)store.acquire(sp[0], 40'000);
    const std::string path = store.pathFor(sp[0], 40'000);

    // Corrupt the format version byte; the mapped open must refuse the
    // file (nullopt, not fatal) and the store must regenerate.
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        ASSERT_TRUE(f.good());
        f.seekp(8);  // just past the 8-byte magic
        const char bogus = 99;
        f.write(&bogus, 1);
    }
    EXPECT_FALSE(trace::MappedTrace::tryOpen(path).has_value());

    const trace::Trace rebuilt = store.acquire(sp[0], 40'000);
    EXPECT_EQ(store.stats().misses, 2u);
    EXPECT_TRUE(sameTrace(rebuilt, buildTrace(sp[0], 40'000)));
    // The stale file was overwritten with a fresh, valid one.
    EXPECT_TRUE(trace::MappedTrace::tryOpen(path).has_value());
}

TEST(TraceStoreTest, CorruptFileIsAMiss)
{
    TraceStore store(scratchDir("corrupt"));
    const auto sp = specs(1);
    const std::string path = store.pathFor(sp[0], 40'000);
    std::filesystem::create_directories(store.directory());
    {
        std::ofstream f(path, std::ios::binary);
        f << "garbage that is not a trace";
    }
    EXPECT_FALSE(trace::MappedTrace::tryOpen(path).has_value());
    const trace::Trace built = store.acquire(sp[0], 40'000);
    EXPECT_EQ(store.stats().misses, 1u);
    EXPECT_TRUE(sameTrace(built, buildTrace(sp[0], 40'000)));
}

TEST(TraceStoreTest, TruncatedFileIsAMiss)
{
    TraceStore store(scratchDir("trunc"));
    const auto sp = specs(1);
    (void)store.acquire(sp[0], 40'000);
    const std::string path = store.pathFor(sp[0], 40'000);

    const auto full = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, full / 2);
    EXPECT_FALSE(trace::MappedTrace::tryOpen(path).has_value());
    (void)store.acquire(sp[0], 40'000);
    EXPECT_EQ(store.stats().misses, 2u);
}

TEST(TraceStoreTest, FailedPublishFallsBackToStoreless)
{
    const std::string dir = scratchDir("publish-fail");
    TraceStore store(dir);
    const auto sp = specs();

    // Occupy the entry's final path with a non-empty directory: the
    // temp-file write succeeds but the atomic rename cannot replace
    // it (a stand-in for ENOSPC or a broken store mount at publish
    // time). acquire() must still return the trace, not die.
    std::filesystem::create_directories(store.pathFor(sp[0], 40'000) +
                                        "/occupied");
    const trace::Trace first = store.acquire(sp[0], 40'000);
    EXPECT_TRUE(sameTrace(first, buildTrace(sp[0], 40'000)));
    EXPECT_EQ(store.stats().stores, 0u);

    // The store flipped to read-only; later acquires keep working
    // storeless instead of re-paying doomed publish attempts.
    const trace::Trace second = store.acquire(sp[1], 40'000);
    EXPECT_TRUE(sameTrace(second, buildTrace(sp[1], 40'000)));
    EXPECT_EQ(store.stats().stores, 0u);
    EXPECT_FALSE(
        std::filesystem::exists(store.pathFor(sp[1], 40'000)));

    // No temp droppings either: the failed publish cleaned up.
    std::size_t regular_files = 0;
    for (const auto &entry :
         std::filesystem::recursive_directory_iterator(dir))
        regular_files += entry.is_regular_file() ? 1 : 0;
    EXPECT_EQ(regular_files, 0u);
}

TEST(DirectionSidecar, RoundTripReproducesLiveResolve)
{
    TraceStore store(scratchDir("dir-roundtrip"));
    const auto sp = specs(1);
    const int kind =
        static_cast<int>(frontend::DirectionKind::HashedPerceptron);

    trace::DecodedTrace dec = store.acquireDecoded(sp[0], 40'000, 64, 4);
    ASSERT_FALSE(store.loadDirectionStream(sp[0], 40'000, kind, dec));
    frontend::resolveDirectionStream(
        dec, frontend::DirectionKind::HashedPerceptron);
    store.storeDirectionStream(sp[0], 40'000, kind, dec);
    ASSERT_TRUE(std::filesystem::exists(
        store.directory() + "/" +
        std::filesystem::path(store.pathFor(sp[0], 40'000))
            .stem().string() + ".dir" + std::to_string(kind)));

    // A second decode served from the sidecar must be byte-identical
    // to the live resolve.
    trace::DecodedTrace again = store.acquireDecoded(sp[0], 40'000, 64, 4);
    ASSERT_TRUE(store.loadDirectionStream(sp[0], 40'000, kind, again));
    EXPECT_EQ(again.directionKind, kind);
    EXPECT_EQ(again.dirPredictedTaken, dec.dirPredictedTaken);
}

TEST(DirectionSidecar, MismatchedHeaderIsAMiss)
{
    TraceStore store(scratchDir("dir-mismatch"));
    const auto sp = specs(1);
    const int kind =
        static_cast<int>(frontend::DirectionKind::HashedPerceptron);

    trace::DecodedTrace dec = store.acquireDecoded(sp[0], 40'000, 64, 4);
    frontend::resolveDirectionStream(
        dec, frontend::DirectionKind::HashedPerceptron);
    store.storeDirectionStream(sp[0], 40'000, kind, dec);

    // A different direction kind never matches this sidecar.
    trace::DecodedTrace probe = store.acquireDecoded(sp[0], 40'000, 64, 4);
    EXPECT_FALSE(
        store.loadDirectionStream(sp[0], 40'000, kind + 1, probe));
    EXPECT_FALSE(probe.hasDirectionStream());

    // Corrupting the version field must degrade to a miss, not load.
    const std::string path =
        store.directory() + "/" +
        std::filesystem::path(store.pathFor(sp[0], 40'000))
            .stem().string() + ".dir" + std::to_string(kind);
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        ASSERT_TRUE(f.good());
        f.seekp(4);  // version field, just past the magic
        const char bogus = 127;
        f.write(&bogus, 1);
    }
    EXPECT_FALSE(store.loadDirectionStream(sp[0], 40'000, kind, probe));

    // So must truncating the body.
    store.storeDirectionStream(sp[0], 40'000, kind, dec);
    std::filesystem::resize_file(
        path, std::filesystem::file_size(path) / 2);
    EXPECT_FALSE(store.loadDirectionStream(sp[0], 40'000, kind, probe));
}

} // anonymous namespace

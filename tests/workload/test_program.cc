/** @file Unit tests for the program model and its validator. */

#include <gtest/gtest.h>

#include "workload/program.hh"

namespace
{

using namespace ghrp;
using namespace ghrp::workload;

Program
minimalProgram()
{
    Program p;
    Function f;
    f.entry = 0x1000;
    BasicBlock b0;
    b0.start = 0x1000;
    b0.numInstrs = 2;
    b0.term = TermKind::None;
    BasicBlock b1;
    b1.start = 0x1008;
    b1.numInstrs = 1;
    b1.term = TermKind::Return;
    f.blocks = {b0, b1};
    p.functions = {f};
    p.modules = {{0}};
    return p;
}

TEST(Program, MinimalValidates)
{
    validateProgram(minimalProgram());
    SUCCEED();
}

TEST(Program, BlockHelpers)
{
    BasicBlock b;
    b.start = 0x1000;
    b.numInstrs = 4;
    EXPECT_EQ(b.terminatorPc(4), 0x100Cu);
    EXPECT_EQ(b.fallThrough(4), 0x1010u);
}

TEST(Program, FootprintBytes)
{
    const Program p = minimalProgram();
    EXPECT_EQ(p.footprintBytes(), 3u * 4u);
    EXPECT_EQ(p.functions[0].sizeBytes(4), 12u);
}

TEST(ProgramDeathTest, EmptyProgramPanics)
{
    Program p;
    EXPECT_DEATH(validateProgram(p), "no functions");
}

TEST(ProgramDeathTest, NonContiguousBlocksPanic)
{
    Program p = minimalProgram();
    p.functions[0].blocks[1].start = 0x2000;
    EXPECT_DEATH(validateProgram(p), "not contiguous");
}

TEST(ProgramDeathTest, ForwardTargetMustBeForward)
{
    Program p = minimalProgram();
    p.functions[0].blocks[0].term = TermKind::CondForward;
    p.functions[0].blocks[0].targetBlock = 0;  // not > 0
    EXPECT_DEATH(validateProgram(p), "bad forward target");
}

TEST(ProgramDeathTest, CallWithoutCalleesPanics)
{
    Program p = minimalProgram();
    p.functions[0].blocks[0].term = TermKind::Call;
    EXPECT_DEATH(validateProgram(p), "no callees");
}

TEST(ProgramDeathTest, CalleeOutOfRangePanics)
{
    Program p = minimalProgram();
    p.functions[0].blocks[0].term = TermKind::Call;
    p.functions[0].blocks[0].callees = {7};
    EXPECT_DEATH(validateProgram(p), "callee out of range");
}

TEST(ProgramDeathTest, LastBlockFallThroughPanics)
{
    Program p = minimalProgram();
    p.functions[0].blocks[1].term = TermKind::None;
    EXPECT_DEATH(validateProgram(p), "");
}

TEST(ProgramDeathTest, SwitchWithoutTargetsPanics)
{
    Program p = minimalProgram();
    p.functions[0].blocks[0].term = TermKind::IndirectJump;
    EXPECT_DEATH(validateProgram(p), "switch with no targets");
}

} // anonymous namespace

/**
 * @file
 * Tests for the optional workload components that are off in the
 * default suite (big streaming loops are on; stub farms off): when
 * enabled through WorkloadParams they must generate valid structures
 * with the documented shapes.
 */

#include <gtest/gtest.h>

#include "trace/fetch_stream.hh"
#include "workload/executor.hh"
#include "workload/generator.hh"

namespace
{

using namespace ghrp;
using namespace ghrp::workload;

WorkloadParams
stressParams()
{
    WorkloadParams p = makeParams(Category::LongServer, 77);
    p.stubFarmFraction = 0.02;
    p.stubBlocksLo = 100;
    p.stubBlocksHi = 200;
    p.stubCallProbability = 0.10;
    p.targetInstructions = 300'000;
    return p;
}

TEST(StressKinds, StubFarmsGenerated)
{
    const Program prog = generateProgram(stressParams());
    std::size_t farms = 0;
    for (const Function &f : prog.functions) {
        if (!f.isStubFarm)
            continue;
        ++farms;
        // Stub farms: tiny blocks, jump-terminated except the return.
        for (std::size_t b = 0; b + 1 < f.blocks.size(); ++b) {
            EXPECT_LE(f.blocks[b].numInstrs, 2u);
            EXPECT_EQ(f.blocks[b].term, TermKind::Jump);
        }
        EXPECT_EQ(f.blocks.back().term, TermKind::Return);
    }
    EXPECT_GT(farms, 0u);
}

TEST(StressKinds, StubFarmsDenseInBtbSites)
{
    const Program prog = generateProgram(stressParams());
    for (const Function &f : prog.functions) {
        if (!f.isStubFarm)
            continue;
        // Taken sites per I-cache block must far exceed regular code:
        // >= 4 jumps per 64B block on average.
        const double blocks64 =
            static_cast<double>(f.sizeBytes(4)) / 64.0;
        const double jumps =
            static_cast<double>(f.blocks.size() - 1);
        EXPECT_GT(jumps / blocks64, 4.0);
        break;
    }
}

TEST(StressKinds, BigLoopsGenerated)
{
    const Program prog =
        generateProgram(makeParams(Category::ShortServer, 3));
    std::size_t big = 0;
    for (const Function &f : prog.functions) {
        if (!f.isBigLoop)
            continue;
        ++big;
        // Latch is the second-to-last block and loops back to 0.
        const BasicBlock &latch = f.blocks[f.blocks.size() - 2];
        EXPECT_EQ(latch.term, TermKind::CondLoop);
        EXPECT_EQ(latch.targetBlock, 0u);
        EXPECT_GE(latch.loopTripMean, 2u);
    }
    EXPECT_GT(big, 0u);
}

TEST(StressKinds, StubTraceExecutesConsistently)
{
    const WorkloadParams p = stressParams();
    const Program prog = generateProgram(p);
    ExecParams exec;
    exec.seed = 1;
    exec.maxInstructions = p.targetInstructions;
    exec.phaseLengthInstructions = p.phaseLengthInstructions;
    exec.stubCallProbability = p.stubCallProbability;
    const trace::Trace tr = execute(prog, exec, "stub", "LONG-SERVER");
    EXPECT_GT(tr.records.size(), 100u);
    trace::FetchStreamWalker walker(tr.entryPc);
    for (const trace::BranchRecord &rec : tr.records)
        walker.advance(rec, [](Addr) {});
    EXPECT_EQ(walker.resyncs(), 0u);
}

TEST(StressKinds, ScansCallSharedLeaves)
{
    // At least one scan function should carry leaf calls (the
    // mixed-context device of DESIGN.md §3).
    const Program prog =
        generateProgram(makeParams(Category::ShortServer, 11));
    bool scan_with_call = false;
    for (const Function &f : prog.functions) {
        if (!f.isScan)
            continue;
        for (const BasicBlock &b : f.blocks)
            if (b.term == TermKind::Call)
                scan_with_call = true;
    }
    EXPECT_TRUE(scan_with_call);
}

} // anonymous namespace

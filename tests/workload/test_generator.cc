/** @file Unit and property tests for the program generator. */

#include <gtest/gtest.h>

#include "workload/generator.hh"

namespace
{

using namespace ghrp;
using namespace ghrp::workload;

/** Property sweep over categories x seeds. */
class GeneratorSweep
    : public ::testing::TestWithParam<std::tuple<Category, std::uint64_t>>
{
  protected:
    Program
    generate() const
    {
        const auto [cat, seed] = GetParam();
        return generateProgram(makeParams(cat, seed));
    }
};

TEST_P(GeneratorSweep, ProgramValidates)
{
    const Program p = generate();  // generateProgram validates itself
    EXPECT_GE(p.functions.size(), 2u);
}

TEST_P(GeneratorSweep, CallGraphIsDag)
{
    const Program p = generate();
    for (std::size_t fi = 1; fi < p.functions.size(); ++fi)
        for (const BasicBlock &b : p.functions[fi].blocks)
            for (std::uint32_t callee : b.callees)
                EXPECT_GT(callee, fi) << "call edge violates DAG order";
}

TEST_P(GeneratorSweep, DispatcherShape)
{
    const Program p = generate();
    const Function &main_fn = p.functions[p.mainFunction];
    ASSERT_EQ(main_fn.blocks.size(), 4u);
    EXPECT_EQ(main_fn.blocks[1].term, TermKind::IndirectCall);
    EXPECT_EQ(main_fn.blocks[2].term, TermKind::CondLoop);
    EXPECT_EQ(main_fn.blocks[3].term, TermKind::Return);
    EXPECT_FALSE(main_fn.blocks[1].callees.empty());
}

TEST_P(GeneratorSweep, ModulesPartitionFunctions)
{
    const Program p = generate();
    std::vector<int> seen(p.functions.size(), 0);
    seen[p.mainFunction] = 1;
    for (const auto &module : p.modules)
        for (std::uint32_t fi : module)
            ++seen[fi];
    for (std::size_t fi = 0; fi < seen.size(); ++fi)
        EXPECT_EQ(seen[fi], 1) << "function " << fi;
}

TEST_P(GeneratorSweep, FunctionsAligned)
{
    const Program p = generate();
    for (std::size_t fi = 1; fi < p.functions.size(); ++fi)
        EXPECT_EQ(p.functions[fi].entry % 64, 0u);
}

TEST_P(GeneratorSweep, DeterministicForSeed)
{
    const auto [cat, seed] = GetParam();
    const Program a = generateProgram(makeParams(cat, seed));
    const Program b = generateProgram(makeParams(cat, seed));
    ASSERT_EQ(a.functions.size(), b.functions.size());
    for (std::size_t fi = 0; fi < a.functions.size(); ++fi) {
        EXPECT_EQ(a.functions[fi].entry, b.functions[fi].entry);
        EXPECT_EQ(a.functions[fi].blocks.size(),
                  b.functions[fi].blocks.size());
    }
}

TEST_P(GeneratorSweep, FootprintReasonable)
{
    const auto [cat, seed] = GetParam();
    const Program p = generate();
    const bool server = cat == Category::ShortServer ||
                        cat == Category::LongServer;
    const std::uint64_t kb = p.footprintBytes() / 1024;
    if (server) {
        EXPECT_GT(kb, 256u);   // servers: well beyond a 64KB I-cache
        EXPECT_LT(kb, 16384u);
    } else {
        EXPECT_GT(kb, 64u);
        EXPECT_LT(kb, 8192u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    CategoriesAndSeeds, GeneratorSweep,
    ::testing::Combine(::testing::Values(Category::ShortMobile,
                                         Category::LongMobile,
                                         Category::ShortServer,
                                         Category::LongServer),
                       ::testing::Values(1ull, 7ull, 42ull)));

TEST(Generator, SeedsProduceDifferentPrograms)
{
    const Program a =
        generateProgram(makeParams(Category::ShortServer, 1));
    const Program b =
        generateProgram(makeParams(Category::ShortServer, 2));
    EXPECT_NE(a.functions.size(), b.functions.size());
}

TEST(Generator, ScanFunctionsExist)
{
    const Program p =
        generateProgram(makeParams(Category::ShortServer, 5));
    std::size_t scans = 0;
    for (std::size_t fi = 0; fi < p.functions.size(); ++fi)
        if (isScanFunction(p, static_cast<std::uint32_t>(fi)))
            ++scans;
    EXPECT_GT(scans, 0u);
}

TEST(Generator, CategoryNamesRoundTrip)
{
    for (Category c : {Category::ShortMobile, Category::LongMobile,
                       Category::ShortServer, Category::LongServer})
        EXPECT_EQ(parseCategory(categoryName(c)), c);
}

TEST(GeneratorDeathTest, UnknownCategoryIsFatal)
{
    EXPECT_EXIT(parseCategory("BOGUS"), ::testing::ExitedWithCode(1),
                "unknown workload category");
}

} // anonymous namespace

/**
 * @file
 * Property test for the fused multi-policy executor: seed-randomized
 * short traces and geometries (splitMix64-derived lengths, set counts,
 * associativities — including non-power-of-two and 1-way sets) are
 * hammered through FusedSim and checked lane-by-lane against the
 * independent runWalker oracle. On a mismatch the failing seed is
 * printed so the exact case replays with a one-line test.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "frontend/fused.hh"
#include "trace/decoded_trace.hh"
#include "util/random.hh"

namespace
{

using namespace ghrp;
using namespace ghrp::frontend;

constexpr PolicyKind allPolicies[] = {
    PolicyKind::Lru,   PolicyKind::Random, PolicyKind::Fifo,
    PolicyKind::Srrip, PolicyKind::Brrip,  PolicyKind::Drrip,
    PolicyKind::Sdbp,  PolicyKind::Ship,   PolicyKind::Ghrp,
};

/**
 * Random short trace. Well-formed by construction: each branch pc lies
 * a random distance past the current fetch pc (the walker's "record.pc
 * >= fetch pc" contract), and the next fetch pc follows the outcome.
 * Targets are drawn from a small pool so control flow revisits blocks
 * (cache reuse, predictor training); calls/returns exercise the RAS
 * and indirect jumps occasionally switch targets so the BTB sees
 * target mismatches, not just presence misses.
 */
trace::Trace
randomTrace(Rng &rng)
{
    trace::Trace t;
    t.entryPc = 0x1000 + rng.nextBounded(64) * 4;

    std::vector<Addr> targets(4 + rng.nextBounded(16));
    for (Addr &target : targets)
        target = 0x1000 + rng.nextBounded(2048) * 4;

    Addr fetch = t.entryPc;
    const std::size_t len = 50 + rng.nextBounded(3000);
    t.records.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
        trace::BranchRecord r;
        r.pc = fetch + rng.nextBounded(12) * 4;  // 0..11-inst run
        const std::uint64_t kind = rng.nextBounded(8);
        r.type = kind == 0   ? trace::BranchType::UncondDirect
                 : kind == 1 ? trace::BranchType::Call
                 : kind == 2 ? trace::BranchType::Return
                 : kind == 3 ? trace::BranchType::UncondIndirect
                             : trace::BranchType::CondDirect;
        r.taken = r.type == trace::BranchType::CondDirect
                      ? rng.nextBool(0.6)
                      : true;
        r.target = r.type == trace::BranchType::UncondIndirect &&
                           rng.nextBool(0.3)
                       ? 0x1000 + rng.nextBounded(2048) * 4
                       : targets[rng.nextBounded(targets.size())];
        t.records.push_back(r);
        fetch = r.taken ? r.target : r.pc + 4;
    }
    return t;
}

/** Random geometry: power-of-two set counts (a model invariant), but
 *  associativities that are deliberately awkward — 1-way, odd, and
 *  non-power-of-two — so the tag-search tail paths are exercised. */
cache::CacheConfig
randomGeometry(Rng &rng, std::uint32_t block_bytes)
{
    static constexpr std::uint32_t kWays[] = {1, 2, 3, 4, 5, 7, 8, 12};
    cache::CacheConfig cfg;
    cfg.blockBytes = block_bytes;
    cfg.assoc = kWays[rng.nextBounded(std::size(kWays))];
    const std::uint32_t sets = 1u << (1 + rng.nextBounded(5));  // 2..32
    cfg.sizeBytes = sets * cfg.assoc * cfg.blockBytes;
    return cfg;
}

void
runOneSeed(std::uint64_t seed)
{
    // Everything about the case derives from the seed via splitMix64,
    // so a printed seed replays the exact trace and geometries.
    Rng rng(splitMix64(seed));

    const trace::Trace tr = randomTrace(rng);

    FrontendConfig base;
    base.icache = randomGeometry(rng, rng.nextBool(0.5) ? 32 : 64);
    base.btb = randomGeometry(rng, 4);
    base.warmupFraction = rng.nextBool(0.5) ? 0.0 : 0.3;
    const DirectionKind kinds[] = {DirectionKind::HashedPerceptron,
                                   DirectionKind::Gshare,
                                   DirectionKind::Bimodal};
    base.direction = kinds[rng.nextBounded(std::size(kinds))];

    trace::DecodedTrace dec =
        trace::decodeTrace(tr, base.icache.blockBytes, base.instBytes);
    if (rng.nextBool(0.8))
        resolveDirectionStream(dec, base.direction);

    const std::vector<PolicySpec> policies(
        allPolicies, allPolicies + std::size(allPolicies));
    const std::vector<FrontendResult> fused =
        simulateFused(base, policies, dec);
    ASSERT_EQ(fused.size(), policies.size());

    for (std::size_t i = 0; i < policies.size(); ++i) {
        FrontendConfig cfg = base;
        cfg.policy = policies[i];
        FrontendSim oracle(cfg);
        const FrontendResult ref = oracle.runWalker(tr);
        const FrontendResult &got = fused[i];

        SCOPED_TRACE(::testing::Message()
                     << "REPLAY: runOneSeed(" << seed << ") policy "
                     << policyName(policies[i]) << " icache "
                     << base.icache.describe() << " btb "
                     << base.btb.describe() << " records "
                     << tr.records.size());
        ASSERT_EQ(got.totalInstructions, ref.totalInstructions);
        ASSERT_EQ(got.measuredInstructions, ref.measuredInstructions);
        ASSERT_EQ(got.icache.accesses, ref.icache.accesses);
        ASSERT_EQ(got.icache.hits, ref.icache.hits);
        ASSERT_EQ(got.icache.misses, ref.icache.misses);
        ASSERT_EQ(got.icache.bypasses, ref.icache.bypasses);
        ASSERT_EQ(got.icache.evictions, ref.icache.evictions);
        ASSERT_EQ(got.icache.deadEvictions, ref.icache.deadEvictions);
        ASSERT_EQ(got.btb.accesses, ref.btb.accesses);
        ASSERT_EQ(got.btb.hits, ref.btb.hits);
        ASSERT_EQ(got.btb.misses, ref.btb.misses);
        ASSERT_EQ(got.btb.evictions, ref.btb.evictions);
        ASSERT_EQ(got.btb.deadEvictions, ref.btb.deadEvictions);
        ASSERT_EQ(got.condBranches, ref.condBranches);
        ASSERT_EQ(got.condMispredicts, ref.condMispredicts);
        ASSERT_EQ(got.btbTargetMismatches, ref.btbTargetMismatches);
        ASSERT_EQ(got.rasReturns, ref.rasReturns);
        ASSERT_EQ(got.rasMispredicts, ref.rasMispredicts);
        ASSERT_EQ(got.indirectBranches, ref.indirectBranches);
        ASSERT_EQ(got.indirectMispredicts, ref.indirectMispredicts);
        ASSERT_EQ(got.icacheMpki, ref.icacheMpki);
        ASSERT_EQ(got.btbMpki, ref.btbMpki);
    }
}

TEST(FusedProperty, RandomTracesAndGeometriesMatchWalkerOracle)
{
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        runOneSeed(seed);
        if (::testing::Test::HasFatalFailure()) {
            // Belt and braces: the SCOPED_TRACE above carries the
            // seed, but print it unmissably for replay too.
            std::fprintf(stderr,
                         "[fused-property] FAILING SEED: %llu — replay "
                         "with runOneSeed(%llu)\n",
                         static_cast<unsigned long long>(seed),
                         static_cast<unsigned long long>(seed));
            return;
        }
    }
}

/** 1-way structures force an eviction on every conflicting fill; keep
 *  a dedicated always-run case beyond the random draw. */
TEST(FusedProperty, DirectMappedStructures)
{
    Rng rng(splitMix64(0xD1EC7));
    const trace::Trace tr = randomTrace(rng);

    FrontendConfig base;
    base.icache.blockBytes = 64;
    base.icache.assoc = 1;
    base.icache.sizeBytes = 16 * 64;  // 16 sets, direct-mapped
    base.btb.blockBytes = 4;
    base.btb.assoc = 1;
    base.btb.sizeBytes = 64 * 4;
    base.warmupFraction = 0.0;

    trace::DecodedTrace dec =
        trace::decodeTrace(tr, base.icache.blockBytes, base.instBytes);
    resolveDirectionStream(dec, base.direction);

    const std::vector<PolicySpec> policies(
        allPolicies, allPolicies + std::size(allPolicies));
    const std::vector<FrontendResult> fused =
        simulateFused(base, policies, dec);
    for (std::size_t i = 0; i < policies.size(); ++i) {
        FrontendConfig cfg = base;
        cfg.policy = policies[i];
        FrontendSim oracle(cfg);
        const FrontendResult ref = oracle.runWalker(tr);
        SCOPED_TRACE(policyName(policies[i]));
        EXPECT_EQ(fused[i].icache.misses, ref.icache.misses);
        EXPECT_EQ(fused[i].icache.evictions, ref.icache.evictions);
        EXPECT_EQ(fused[i].btb.misses, ref.btb.misses);
        EXPECT_EQ(fused[i].condMispredicts, ref.condMispredicts);
        EXPECT_EQ(fused[i].icacheMpki, ref.icacheMpki);
        EXPECT_EQ(fused[i].btbMpki, ref.btbMpki);
    }
}

} // anonymous namespace

/** @file
 * Differential tests: the decode-once fetch-op path must be
 * bit-identical to the reference walker path for every policy, with
 * and without the pre-resolved direction stream.
 */

#include <gtest/gtest.h>

#include "frontend/frontend.hh"
#include "trace/decoded_trace.hh"
#include "workload/suite.hh"

namespace
{

using namespace ghrp;
using namespace ghrp::frontend;

void
expectIdentical(const FrontendResult &a, const FrontendResult &b,
                const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.totalInstructions, b.totalInstructions);
    EXPECT_EQ(a.warmupInstructions, b.warmupInstructions);
    EXPECT_EQ(a.measuredInstructions, b.measuredInstructions);
    EXPECT_EQ(a.icache.accesses, b.icache.accesses);
    EXPECT_EQ(a.icache.hits, b.icache.hits);
    EXPECT_EQ(a.icache.misses, b.icache.misses);
    EXPECT_EQ(a.icache.bypasses, b.icache.bypasses);
    EXPECT_EQ(a.icache.evictions, b.icache.evictions);
    EXPECT_EQ(a.icache.deadEvictions, b.icache.deadEvictions);
    EXPECT_EQ(a.btb.accesses, b.btb.accesses);
    EXPECT_EQ(a.btb.hits, b.btb.hits);
    EXPECT_EQ(a.btb.misses, b.btb.misses);
    EXPECT_EQ(a.btb.bypasses, b.btb.bypasses);
    EXPECT_EQ(a.btb.evictions, b.btb.evictions);
    EXPECT_EQ(a.btb.deadEvictions, b.btb.deadEvictions);
    EXPECT_EQ(a.condBranches, b.condBranches);
    EXPECT_EQ(a.condMispredicts, b.condMispredicts);
    EXPECT_EQ(a.btbTargetMismatches, b.btbTargetMismatches);
    EXPECT_EQ(a.rasReturns, b.rasReturns);
    EXPECT_EQ(a.rasMispredicts, b.rasMispredicts);
    EXPECT_EQ(a.indirectBranches, b.indirectBranches);
    EXPECT_EQ(a.indirectMispredicts, b.indirectMispredicts);
    EXPECT_DOUBLE_EQ(a.icacheMpki, b.icacheMpki);
    EXPECT_DOUBLE_EQ(a.btbMpki, b.btbMpki);
}

constexpr PolicyKind allPolicies[] = {
    PolicyKind::Lru,  PolicyKind::Random, PolicyKind::Fifo,
    PolicyKind::Srrip, PolicyKind::Brrip,  PolicyKind::Drrip,
    PolicyKind::Sdbp, PolicyKind::Ship,   PolicyKind::Ghrp,
};

class DecodedVsWalker
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>>
{
};

TEST_P(DecodedVsWalker, BitIdenticalForEveryPolicy)
{
    const auto [seed, trace_index] = GetParam();
    const auto specs = workload::makeSuite(4, seed);
    const trace::Trace tr =
        workload::buildTrace(specs[static_cast<std::size_t>(trace_index)],
                             120'000);

    FrontendConfig base;
    base.icache = cache::CacheConfig::icache(8, 4);
    base.btb = cache::CacheConfig::btb(512, 4);

    trace::DecodedTrace dec =
        trace::decodeTrace(tr, base.icache.blockBytes, base.instBytes);
    trace::DecodedTrace resolved = dec;
    resolveDirectionStream(resolved, base.direction);

    for (PolicyKind policy : allPolicies) {
        FrontendConfig cfg = base;
        cfg.policy = policy;

        FrontendSim walker_sim(cfg);
        const FrontendResult ref = walker_sim.runWalker(tr);

        FrontendSim decoded_sim(cfg);
        expectIdentical(decoded_sim.run(dec), ref,
                        std::string(policyName(policy)) + " decoded");

        FrontendSim resolved_sim(cfg);
        expectIdentical(resolved_sim.run(resolved), ref,
                        std::string(policyName(policy)) +
                            " decoded+direction");
    }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndTraces, DecodedVsWalker,
    ::testing::Combine(::testing::Values(9u, 42u, 1234u),
                       ::testing::Values(0, 1, 2, 3)));

TEST(DecodedVsWalkerEdge, TinyHandBuiltTrace)
{
    trace::Trace t;
    t.entryPc = 0x1000;
    for (int i = 0; i < 3; ++i)
        t.records.push_back(
            {0x1010, 0x1000, trace::BranchType::CondDirect, true});
    t.records.push_back(
        {0x1010, 0x1000, trace::BranchType::CondDirect, false});
    t.records.push_back({0x1020, 0x2000, trace::BranchType::Call, true});
    t.records.push_back(
        {0x2008, 0x1024, trace::BranchType::Return, true});

    FrontendConfig cfg;
    cfg.warmupFraction = 0.0;
    for (PolicyKind policy : allPolicies) {
        cfg.policy = policy;
        FrontendSim a(cfg), b(cfg);
        expectIdentical(b.run(trace::decodeTrace(t, cfg.icache.blockBytes,
                                                 cfg.instBytes)),
                        a.runWalker(t), policyName(policy));
    }
}

TEST(DecodedVsWalkerEdge, MismatchedDirectionStreamFallsBackLive)
{
    const auto specs = workload::makeSuite(1, 5);
    const trace::Trace tr = workload::buildTrace(specs.front(), 60'000);

    FrontendConfig cfg;
    cfg.policy = PolicyKind::Ghrp;
    cfg.direction = DirectionKind::Gshare;

    trace::DecodedTrace dec =
        trace::decodeTrace(tr, cfg.icache.blockBytes, cfg.instBytes);
    // Resolve with a *different* predictor kind: the leg must ignore
    // the stream and simulate its own predictor, still matching the
    // walker reference.
    resolveDirectionStream(dec, DirectionKind::Bimodal);
    ASSERT_TRUE(dec.hasDirectionStream());

    FrontendSim a(cfg), b(cfg);
    expectIdentical(b.run(dec), a.runWalker(tr), "gshare fallback");
}

TEST(DecodedVsWalkerEdge, ResolvedStreamMatchesLivePredictor)
{
    const auto specs = workload::makeSuite(1, 21);
    const trace::Trace tr = workload::buildTrace(specs.front(), 60'000);

    for (DirectionKind kind :
         {DirectionKind::HashedPerceptron, DirectionKind::Gshare,
          DirectionKind::Bimodal}) {
        FrontendConfig cfg;
        cfg.direction = kind;

        trace::DecodedTrace dec =
            trace::decodeTrace(tr, cfg.icache.blockBytes, cfg.instBytes);
        resolveDirectionStream(dec, kind);

        FrontendSim live(cfg), pre(cfg);
        trace::DecodedTrace plain =
            trace::decodeTrace(tr, cfg.icache.blockBytes, cfg.instBytes);
        expectIdentical(pre.run(dec), live.run(plain),
                        "direction kind " +
                            std::to_string(static_cast<int>(kind)));
    }
}

} // anonymous namespace

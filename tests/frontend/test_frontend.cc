/** @file Unit tests for the trace-driven front-end simulator. */

#include <gtest/gtest.h>

#include "frontend/frontend.hh"
#include "workload/suite.hh"

namespace
{

using namespace ghrp;
using namespace ghrp::frontend;
using trace::BranchRecord;
using trace::BranchType;

trace::Trace
tinyTrace()
{
    // A small hand-built loop: block at 0x1000, backward branch taken
    // 3 times then exits into a call/return pair.
    trace::Trace t;
    t.entryPc = 0x1000;
    for (int i = 0; i < 3; ++i)
        t.records.push_back(
            {0x1010, 0x1000, BranchType::CondDirect, true});
    t.records.push_back({0x1010, 0x1000, BranchType::CondDirect, false});
    t.records.push_back({0x1020, 0x2000, BranchType::Call, true});
    t.records.push_back({0x2008, 0x1024, BranchType::Return, true});
    t.records.push_back(
        {0x1030, 0x1000, BranchType::UncondDirect, true});
    return t;
}

TEST(PolicyNames, ParseRoundTrip)
{
    for (PolicyKind kind :
         {PolicyKind::Lru, PolicyKind::Random, PolicyKind::Fifo,
          PolicyKind::Srrip, PolicyKind::Brrip, PolicyKind::Drrip,
          PolicyKind::Sdbp, PolicyKind::Ghrp})
        EXPECT_EQ(parsePolicy(policyName(kind)), kind);
    EXPECT_EQ(parsePolicy("lru"), PolicyKind::Lru);
    EXPECT_EQ(parsePolicy("ghrp"), PolicyKind::Ghrp);
}

TEST(PolicyNamesDeathTest, UnknownPolicyFatal)
{
    EXPECT_EXIT(parsePolicy("clairvoyant"), ::testing::ExitedWithCode(1),
                "unknown replacement policy");
}

TEST(Frontend, CountsInstructionsAndBranches)
{
    FrontendConfig cfg;
    cfg.warmupFraction = 0.0;
    const FrontendResult r = simulateTrace(cfg, tinyTrace());
    EXPECT_EQ(r.condBranches, 4u);
    // Loop: 3 runs of 5 instrs + exit run + call path + return path.
    EXPECT_GT(r.totalInstructions, 10u);
    EXPECT_EQ(r.totalInstructions, r.measuredInstructions);
}

TEST(Frontend, RasPredictsReturn)
{
    FrontendConfig cfg;
    cfg.warmupFraction = 0.0;
    const FrontendResult r = simulateTrace(cfg, tinyTrace());
    EXPECT_EQ(r.rasReturns, 1u);
    EXPECT_EQ(r.rasMispredicts, 0u);
    // With the RAS on, the return never touches the BTB: 3 taken loop
    // iterations + call + final jump = 5 accesses.
    EXPECT_EQ(r.btb.accesses, 5u);
}

TEST(Frontend, ReturnsUseBtbWhenRasDisabled)
{
    FrontendConfig cfg;
    cfg.warmupFraction = 0.0;
    cfg.useRas = false;
    const FrontendResult r = simulateTrace(cfg, tinyTrace());
    EXPECT_EQ(r.rasReturns, 0u);
    EXPECT_EQ(r.btb.accesses, 6u);  // the return now accesses the BTB
}

TEST(Frontend, CoalescesSameBlockFetches)
{
    // The loop at 0x1000..0x1010 stays in one 64B block: the three
    // loop iterations must not re-access the I-cache.
    FrontendConfig cfg;
    cfg.warmupFraction = 0.0;
    const FrontendResult r = simulateTrace(cfg, tinyTrace());
    // Blocks touched: 0x1000 (loop + after-return re-entry is the same
    // block! coalescing only merges consecutive) and 0x2000.
    EXPECT_LE(r.icache.accesses, 4u);
    EXPECT_GE(r.icache.accesses, 2u);
}

TEST(Frontend, WarmupExcludesEarlyMisses)
{
    workload::TraceSpec spec;
    spec.category = workload::Category::ShortMobile;
    spec.seed = 3;
    spec.name = "w";
    const trace::Trace tr = workload::buildTrace(spec, 400'000);

    FrontendConfig cold;
    cold.warmupFraction = 0.0;
    FrontendConfig warm;
    warm.warmupFraction = 0.5;

    const FrontendResult rc = simulateTrace(cold, tr);
    const FrontendResult rw = simulateTrace(warm, tr);
    EXPECT_EQ(rw.warmupInstructions, rw.totalInstructions / 2);
    EXPECT_LT(rw.measuredInstructions, rc.measuredInstructions);
    // Cold-start misses are excluded, so the warmed MPKI is lower for
    // this small footprint workload.
    EXPECT_LE(rw.icacheMpki, rc.icacheMpki * 1.5);
}

TEST(Frontend, WarmupCapRespected)
{
    FrontendConfig cfg;
    cfg.warmupFraction = 0.5;
    cfg.warmupCapInstructions = 10;
    const FrontendResult r = simulateTrace(cfg, tinyTrace());
    EXPECT_LE(r.warmupInstructions, 10u);
}

TEST(Frontend, DeterministicAcrossRuns)
{
    workload::TraceSpec spec;
    spec.category = workload::Category::ShortServer;
    spec.seed = 5;
    spec.name = "d";
    const trace::Trace tr = workload::buildTrace(spec, 300'000);
    for (PolicyKind policy : paperPolicies) {
        FrontendConfig cfg;
        cfg.policy = policy;
        const FrontendResult a = simulateTrace(cfg, tr);
        const FrontendResult b = simulateTrace(cfg, tr);
        EXPECT_EQ(a.icache.misses, b.icache.misses)
            << policyName(policy);
        EXPECT_EQ(a.btb.misses, b.btb.misses) << policyName(policy);
    }
}

TEST(Frontend, AllPoliciesRunAndProduceSaneStats)
{
    workload::TraceSpec spec;
    spec.category = workload::Category::ShortMobile;
    spec.seed = 8;
    spec.name = "sanity";
    const trace::Trace tr = workload::buildTrace(spec, 300'000);
    for (PolicyKind policy :
         {PolicyKind::Lru, PolicyKind::Random, PolicyKind::Fifo,
          PolicyKind::Srrip, PolicyKind::Brrip, PolicyKind::Drrip,
          PolicyKind::Sdbp, PolicyKind::Ghrp}) {
        FrontendConfig cfg;
        cfg.policy = policy;
        const FrontendResult r = simulateTrace(cfg, tr);
        EXPECT_GT(r.icache.accesses, 0u) << policyName(policy);
        EXPECT_EQ(r.icache.accesses, r.icache.hits + r.icache.misses);
        EXPECT_GE(r.icacheMpki, 0.0);
        EXPECT_LT(r.mispredictRate(), 0.5) << policyName(policy);
    }
}

TEST(Frontend, DirectionPredictorSelectable)
{
    // A hand-built trace whose single conditional alternates T,N,T,N:
    // trivially learnable from history, impossible for bimodal.
    trace::Trace tr;
    tr.entryPc = 0x1000;
    for (int i = 0; i < 2000; ++i)
        tr.records.push_back({0x1010, 0x1000, BranchType::CondDirect,
                              i % 2 == 0});

    FrontendConfig hp;
    hp.direction = DirectionKind::HashedPerceptron;
    hp.warmupFraction = 0.5;
    FrontendConfig bi;
    bi.direction = DirectionKind::Bimodal;
    bi.warmupFraction = 0.5;
    const double hp_rate = simulateTrace(hp, tr).mispredictRate();
    const double bi_rate = simulateTrace(bi, tr).mispredictRate();
    EXPECT_LT(hp_rate, 0.1);
    EXPECT_GT(bi_rate, 0.3);
}

TEST(Frontend, GhrpWrongPathRecoveryRuns)
{
    workload::TraceSpec spec;
    spec.category = workload::Category::ShortMobile;
    spec.seed = 4;
    spec.name = "wp";
    const trace::Trace tr = workload::buildTrace(spec, 200'000);
    FrontendConfig with;
    with.policy = PolicyKind::Ghrp;
    with.recoverGhrpHistory = true;
    FrontendConfig without;
    without.policy = PolicyKind::Ghrp;
    without.recoverGhrpHistory = false;
    without.wrongPathNoise = 8;
    // Both must run; results may differ (pollution persists).
    const FrontendResult a = simulateTrace(with, tr);
    const FrontendResult b = simulateTrace(without, tr);
    EXPECT_GT(a.icache.accesses, 0u);
    EXPECT_GT(b.icache.accesses, 0u);
}

TEST(Frontend, EfficiencyTrackersAttach)
{
    FrontendConfig cfg;
    cfg.trackEfficiency = true;
    FrontendSim sim(cfg);
    EXPECT_NE(sim.icacheTracker(), nullptr);
    EXPECT_NE(sim.btbTracker(), nullptr);
    sim.run(tinyTrace());
    EXPECT_GE(sim.icacheTracker()->meanEfficiency(), 0.0);
}

TEST(Frontend, TrackersAbsentByDefault)
{
    FrontendConfig cfg;
    FrontendSim sim(cfg);
    EXPECT_EQ(sim.icacheTracker(), nullptr);
    EXPECT_EQ(sim.btbTracker(), nullptr);
}

} // anonymous namespace

/**
 * @file
 * Tests for the phase flight recorder at the front-end layer: a zero
 * window disables sampling and perturbs nothing, sampling produces
 * monotone interval records, fused lanes reproduce per-leg
 * trajectories bit-identically, and the 128-slot decimating sampler
 * bounds memory at 1M-instruction scale while keeping power-of-two
 * strides.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "frontend/fused.hh"
#include "workload/suite.hh"

namespace
{

using namespace ghrp;
using namespace ghrp::frontend;

trace::Trace
phaseTrace(std::size_t index = 0, std::uint64_t instructions = 60000)
{
    const auto specs = workload::makeSuite(4, 42);
    return workload::buildTrace(specs[index % specs.size()],
                                instructions);
}

void
expectSameRecord(const PhaseRecord &a, const PhaseRecord &b,
                 std::size_t index)
{
    SCOPED_TRACE("record " + std::to_string(index));
    EXPECT_EQ(a.window, b.window);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.icacheAccesses, b.icacheAccesses);
    EXPECT_EQ(a.icacheMisses, b.icacheMisses);
    EXPECT_EQ(a.icacheEvictions, b.icacheEvictions);
    EXPECT_EQ(a.btbAccesses, b.btbAccesses);
    EXPECT_EQ(a.btbMisses, b.btbMisses);
    EXPECT_EQ(a.btbEvictions, b.btbEvictions);
    EXPECT_EQ(a.condBranches, b.condBranches);
    EXPECT_EQ(a.condMispredicts, b.condMispredicts);
    EXPECT_EQ(a.btbTargetMismatches, b.btbTargetMismatches);
    EXPECT_EQ(a.deadHits, b.deadHits);
    EXPECT_EQ(a.liveHits, b.liveHits);
    EXPECT_EQ(a.deadEvictions, b.deadEvictions);
    EXPECT_EQ(a.liveEvictions, b.liveEvictions);
    EXPECT_EQ(a.psel, b.psel);
}

void
expectSameTrajectory(const PhaseTrajectory &a, const PhaseTrajectory &b)
{
    EXPECT_EQ(a.window, b.window);
    EXPECT_EQ(a.stride, b.stride);
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t i = 0; i < a.records.size(); ++i)
        expectSameRecord(a.records[i], b.records[i], i);
}

/** The flight-recorder invariants every trajectory must satisfy. */
void
expectWellFormed(const PhaseTrajectory &t)
{
    EXPECT_GT(t.window, 0u);
    // Power-of-two stride: decimation only ever doubles it.
    EXPECT_GT(t.stride, 0u);
    EXPECT_EQ(t.stride & (t.stride - 1), 0u);
    EXPECT_LE(t.records.size(), kPhaseTrajectoryCapacity);
    std::uint64_t prev_window = 0;
    std::uint64_t prev_instructions = 0;
    bool first = true;
    for (const PhaseRecord &r : t.records) {
        if (!first) {
            EXPECT_GT(r.window, prev_window);
            EXPECT_GT(r.instructions, prev_instructions);
        }
        prev_window = r.window;
        prev_instructions = r.instructions;
        first = false;
    }
}

TEST(Phases, WindowZeroDisablesSamplingWithoutPerturbingResults)
{
    const trace::Trace tr = phaseTrace();
    FrontendConfig off;
    off.policy = PolicyKind::Ghrp;
    FrontendConfig on = off;
    on.phaseWindow = 10'000;

    const FrontendResult a = simulateTrace(off, tr);
    const FrontendResult b = simulateTrace(on, tr);

    EXPECT_FALSE(a.hasPhases);
    EXPECT_TRUE(a.phases.records.empty());
    ASSERT_TRUE(b.hasPhases);
    EXPECT_FALSE(b.phases.records.empty());

    // Observation must not perturb the simulation: every headline
    // counter is bit-identical with the recorder on and off.
    EXPECT_EQ(a.icache.accesses, b.icache.accesses);
    EXPECT_EQ(a.icache.misses, b.icache.misses);
    EXPECT_EQ(a.icache.evictions, b.icache.evictions);
    EXPECT_EQ(a.btb.misses, b.btb.misses);
    EXPECT_EQ(a.condMispredicts, b.condMispredicts);
    EXPECT_EQ(a.icacheMpki, b.icacheMpki);
    EXPECT_EQ(a.btbMpki, b.btbMpki);
}

TEST(Phases, SamplesMonotoneIntervalRecordsDeterministically)
{
    FrontendConfig cfg;
    cfg.policy = PolicyKind::Ghrp;
    cfg.phaseWindow = 10'000;
    const trace::Trace tr = phaseTrace(1);

    const FrontendResult r = simulateTrace(cfg, tr);
    ASSERT_TRUE(r.hasPhases);
    EXPECT_EQ(r.phases.window, 10'000u);
    // 6 raw windows over a 60k trace: nowhere near the capacity, so
    // the stride never decimates.
    EXPECT_EQ(r.phases.stride, 1u);
    expectWellFormed(r.phases);

    std::uint64_t accesses = 0;
    for (const PhaseRecord &rec : r.phases.records)
        accesses += rec.icacheAccesses;
    EXPECT_GT(accesses, 0u);

    // GHRP legs report dead-block predictor outcomes; the totals over
    // the run are visible through the interval records.
    std::uint64_t outcomes = 0;
    for (const PhaseRecord &rec : r.phases.records)
        outcomes += rec.deadHits + rec.liveHits + rec.deadEvictions +
                    rec.liveEvictions;
    EXPECT_GT(outcomes, 0u);

    // A predictor-less leg carries all-zero outcome fields.
    FrontendConfig lru = cfg;
    lru.policy = PolicyKind::Lru;
    const FrontendResult plain = simulateTrace(lru, tr);
    ASSERT_TRUE(plain.hasPhases);
    for (const PhaseRecord &rec : plain.phases.records) {
        EXPECT_EQ(rec.deadHits + rec.liveHits + rec.deadEvictions +
                      rec.liveEvictions,
                  0u);
        EXPECT_EQ(rec.psel, 0);
    }

    // Determinism: an identical run reproduces the trajectory exactly.
    const FrontendResult again = simulateTrace(cfg, tr);
    ASSERT_TRUE(again.hasPhases);
    expectSameTrajectory(r.phases, again.phases);
}

TEST(Phases, FusedLanesMatchPerLegTrajectoriesBitExactly)
{
    const trace::Trace tr = phaseTrace(2);
    FrontendConfig base;
    base.phaseWindow = 5'000;
    trace::DecodedTrace dec =
        trace::decodeTrace(tr, base.icache.blockBytes, base.instBytes);
    resolveDirectionStream(dec, base.direction);

    const std::vector<PolicySpec> lanes = {
        PolicyKind::Lru,
        PolicyKind::Ghrp,
        parsePolicySpec("duel:ghrp,lru"),
    };
    const std::vector<FrontendResult> fused =
        simulateFused(base, lanes, dec);
    ASSERT_EQ(fused.size(), lanes.size());

    for (std::size_t i = 0; i < lanes.size(); ++i) {
        SCOPED_TRACE(policyName(lanes[i]));
        FrontendConfig cfg = base;
        cfg.policy = lanes[i];
        const FrontendResult leg = simulateDecoded(cfg, dec);
        ASSERT_TRUE(leg.hasPhases);
        ASSERT_TRUE(fused[i].hasPhases);
        expectSameTrajectory(leg.phases, fused[i].phases);
    }
}

TEST(Phases, DecimationBoundsRecordsAtMillionInstructionScale)
{
    // 1000 raw windows against a 128-slot sampler: the recorder must
    // merge pairwise until everything fits, ending at a power-of-two
    // stride with a half-full-or-better trajectory.
    FrontendConfig cfg;
    cfg.policy = PolicyKind::Ghrp;
    cfg.phaseWindow = 1'000;
    const trace::Trace tr = phaseTrace(0, 1'000'000);

    const FrontendResult r = simulateTrace(cfg, tr);
    ASSERT_TRUE(r.hasPhases);
    expectWellFormed(r.phases);
    EXPECT_GT(r.phases.stride, 1u);
    EXPECT_LE(r.phases.records.size(), kPhaseTrajectoryCapacity);
    EXPECT_GT(r.phases.records.size(), kPhaseTrajectoryCapacity / 2);
    EXPECT_LE(r.phases.records.back().instructions,
              r.totalInstructions);

    // Decimation golden: the exact same run decimates the exact same
    // way — stride, record count and every merged interval.
    const FrontendResult again = simulateTrace(cfg, tr);
    ASSERT_TRUE(again.hasPhases);
    expectSameTrajectory(r.phases, again.phases);
}

} // anonymous namespace

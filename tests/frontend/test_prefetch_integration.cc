/** @file Integration test for next-line instruction prefetching. */

#include <gtest/gtest.h>

#include "frontend/frontend.hh"
#include "workload/suite.hh"

namespace
{

using namespace ghrp;
using namespace ghrp::frontend;

TEST(NextLinePrefetch, ReducesMissesOnSequentialCode)
{
    workload::TraceSpec spec;
    spec.category = workload::Category::ShortServer;
    spec.seed = 47;
    spec.name = "pf";
    const trace::Trace tr = workload::buildTrace(spec, 1'000'000);

    FrontendConfig off;
    off.warmupFraction = 0.0;
    FrontendConfig on = off;
    on.nextLinePrefetch = 2;

    const FrontendResult r_off = simulateTrace(off, tr);
    const FrontendResult r_on = simulateTrace(on, tr);
    // Straight-line scan code is perfectly next-line predictable, so
    // prefetching must cut demand misses substantially.
    EXPECT_LT(r_on.icacheMpki, r_off.icacheMpki * 0.9);
}

TEST(NextLinePrefetch, OffByDefault)
{
    FrontendConfig cfg;
    EXPECT_EQ(cfg.nextLinePrefetch, 0u);
}

} // anonymous namespace

/**
 * @file
 * Tests for the duel:<A>,<B> meta-policy at the front-end layer: spec
 * parsing and canonical naming, the self-duel differential lock
 * (duel:X,X must be bit-identical to plain X for every self-contained
 * policy — forwarding to both constituents keeps the loser's metadata
 * synchronized, so an identical constituent changes nothing), dueling
 * telemetry harvest, and fused-vs-per-leg bit identity for duel lanes.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "frontend/fused.hh"
#include "workload/suite.hh"

namespace
{

using namespace ghrp;
using namespace ghrp::frontend;

/** Policies whose state lives entirely inside the policy object (no
 *  shared predictor), so duel:X,X is bit-identical to X. GHRP is
 *  excluded by design: both constituents would train the one shared
 *  predictor, which is double training, not the same policy. */
constexpr PolicyKind kSelfContained[] = {
    PolicyKind::Lru,   PolicyKind::Random, PolicyKind::Fifo,
    PolicyKind::Srrip, PolicyKind::Brrip,  PolicyKind::Drrip,
    PolicyKind::Sdbp,  PolicyKind::Ship,
};

void
expectIdenticalCounters(const FrontendResult &a, const FrontendResult &b,
                        const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.totalInstructions, b.totalInstructions);
    EXPECT_EQ(a.measuredInstructions, b.measuredInstructions);
    EXPECT_EQ(a.icache.accesses, b.icache.accesses);
    EXPECT_EQ(a.icache.hits, b.icache.hits);
    EXPECT_EQ(a.icache.misses, b.icache.misses);
    EXPECT_EQ(a.icache.bypasses, b.icache.bypasses);
    EXPECT_EQ(a.icache.evictions, b.icache.evictions);
    EXPECT_EQ(a.icache.deadEvictions, b.icache.deadEvictions);
    EXPECT_EQ(a.btb.accesses, b.btb.accesses);
    EXPECT_EQ(a.btb.hits, b.btb.hits);
    EXPECT_EQ(a.btb.misses, b.btb.misses);
    EXPECT_EQ(a.btb.bypasses, b.btb.bypasses);
    EXPECT_EQ(a.btb.evictions, b.btb.evictions);
    EXPECT_EQ(a.btb.deadEvictions, b.btb.deadEvictions);
    EXPECT_EQ(a.condMispredicts, b.condMispredicts);
    EXPECT_EQ(a.btbTargetMismatches, b.btbTargetMismatches);
    EXPECT_EQ(a.indirectMispredicts, b.indirectMispredicts);
    EXPECT_EQ(a.icacheMpki, b.icacheMpki);  // bit-identical, not close
    EXPECT_EQ(a.btbMpki, b.btbMpki);
}

trace::Trace
shortTrace(std::size_t index = 0)
{
    const auto specs = workload::makeSuite(4, 42);
    return workload::buildTrace(specs[index % specs.size()], 60000);
}

// ---- spec parsing -------------------------------------------------

TEST(DuelSpec, ParsesCanonicalAndParameterizedForms)
{
    const PolicySpec spec = parsePolicySpec("duel:ghrp,lru");
    EXPECT_TRUE(spec.isDuel());
    EXPECT_EQ(spec.duelA, PolicyKind::Ghrp);
    EXPECT_EQ(spec.duelB, PolicyKind::Lru);
    EXPECT_EQ(spec.duelPselMax, 1023u);
    EXPECT_EQ(spec.duelLeaders, 32u);
    EXPECT_EQ(policyName(spec), "duel:GHRP,LRU");

    const PolicySpec tuned =
        parsePolicySpec("duel:SRRIP,FIFO,psel=255,leaders=8");
    EXPECT_EQ(tuned.duelA, PolicyKind::Srrip);
    EXPECT_EQ(tuned.duelB, PolicyKind::Fifo);
    EXPECT_EQ(tuned.duelPselMax, 255u);
    EXPECT_EQ(tuned.duelLeaders, 8u);
    EXPECT_EQ(policyName(tuned), "duel:SRRIP,FIFO,psel=255,leaders=8");

    // Canonical names parse back to the same spec (report/journal
    // round trip).
    EXPECT_EQ(parsePolicySpec(policyName(spec)), spec);
    EXPECT_EQ(parsePolicySpec(policyName(tuned)), tuned);

    // Plain names still parse, and a plain spec never reads as duel.
    const PolicySpec plain = parsePolicySpec("lru");
    EXPECT_FALSE(plain.isDuel());
    EXPECT_EQ(plain, PolicySpec(PolicyKind::Lru));
}

TEST(DuelSpec, RejectsMalformedSpecs)
{
    PolicySpec out;
    EXPECT_FALSE(tryParsePolicySpec("duel:", out));
    EXPECT_FALSE(tryParsePolicySpec("duel:ghrp", out));
    EXPECT_FALSE(tryParsePolicySpec("duel:ghrp,clairvoyant", out));
    EXPECT_FALSE(tryParsePolicySpec("duel:ghrp,lru,psel=0", out));
    EXPECT_FALSE(tryParsePolicySpec("duel:ghrp,lru,psel=abc", out));
    EXPECT_FALSE(tryParsePolicySpec("duel:ghrp,lru,bogus=3", out));
    EXPECT_FALSE(tryParsePolicySpec("clairvoyant", out));
    EXPECT_TRUE(tryParsePolicySpec("duel:ghrp,lru", out));
}

TEST(DuelSpec, PolicyListAbsorbsDuelTokens)
{
    const std::vector<PolicySpec> list =
        parsePolicyList("lru, duel:ghrp,lru,psel=127, srrip");
    ASSERT_EQ(list.size(), 3u);
    EXPECT_EQ(list[0], PolicySpec(PolicyKind::Lru));
    EXPECT_TRUE(list[1].isDuel());
    EXPECT_EQ(list[1].duelPselMax, 127u);
    EXPECT_EQ(list[2], PolicySpec(PolicyKind::Srrip));
}

TEST(DuelSpec, DuelSortsAfterEveryStaticPolicy)
{
    const PolicySpec duel = parsePolicySpec("duel:lru,random");
    for (PolicyKind kind : allPolicyKinds())
        EXPECT_TRUE(PolicySpec(kind) < duel) << policyName(kind);
    // Distinct duels order deterministically too.
    EXPECT_NE(parsePolicySpec("duel:lru,random"),
              parsePolicySpec("duel:random,lru"));
}

// ---- self-duel differential lock ---------------------------------

TEST(DuelFrontend, SelfDuelIsBitIdenticalToPlainPolicy)
{
    const trace::Trace tr = shortTrace();
    for (PolicyKind kind : kSelfContained) {
        FrontendConfig plain;
        plain.policy = kind;
        FrontendConfig duel;
        duel.policy = parsePolicySpec(std::string("duel:") +
                                      policyName(kind) + "," +
                                      policyName(kind));

        const FrontendResult a = simulateTrace(plain, tr);
        const FrontendResult b = simulateTrace(duel, tr);
        expectIdenticalCounters(a, b, policyName(kind));
        EXPECT_FALSE(a.hasDuel);
        EXPECT_TRUE(b.hasDuel);
    }
}

TEST(DuelFrontend, HarvestsDuelingTelemetry)
{
    FrontendConfig cfg;
    cfg.policy = parsePolicySpec("duel:ghrp,lru");
    const FrontendResult r = simulateTrace(cfg, shortTrace(1));

    ASSERT_TRUE(r.hasDuel);
    // Leader sets saw misses in both structures on a real workload.
    EXPECT_GT(r.icacheDuel.leaderMissesA + r.icacheDuel.leaderMissesB,
              0u);
    EXPECT_GT(r.btbDuel.leaderMissesA + r.btbDuel.leaderMissesB, 0u);
    EXPECT_FALSE(r.icacheDuel.trajectory.empty());
    // PSEL stays inside the default saturation bound.
    EXPECT_LE(r.icacheDuel.finalPsel, 1023);
    EXPECT_GE(r.icacheDuel.finalPsel, -1023);

    // Determinism: an identical run reproduces the telemetry exactly.
    const FrontendResult again = simulateTrace(cfg, shortTrace(1));
    EXPECT_EQ(again.icacheDuel.finalPsel, r.icacheDuel.finalPsel);
    EXPECT_EQ(again.icacheDuel.trajectory, r.icacheDuel.trajectory);
    EXPECT_EQ(again.btbDuel.winnerFlips, r.btbDuel.winnerFlips);
}

TEST(DuelFrontend, PselBoundIsHonoredAtExtremeSettings)
{
    // psel=1: the selector flips on every leader miss — the most
    // hostile switching regime — and the simulation must still stay
    // inside the constituents' machinery without tripping any
    // assertion; psel huge: the counter never saturates.
    for (const char *spec :
         {"duel:srrip,lru,psel=1", "duel:srrip,lru,psel=1048576"}) {
        FrontendConfig cfg;
        cfg.policy = parsePolicySpec(spec);
        const FrontendResult r = simulateTrace(cfg, shortTrace(2));
        ASSERT_TRUE(r.hasDuel) << spec;
        const std::int64_t bound =
            static_cast<std::int64_t>(cfg.policy.duelPselMax);
        EXPECT_LE(r.icacheDuel.finalPsel, bound) << spec;
        EXPECT_GE(r.icacheDuel.finalPsel, -bound) << spec;
        EXPECT_GT(r.icache.accesses, 0u);
    }
}

// ---- fused execution ---------------------------------------------

TEST(DuelFused, FusedLanesMatchPerLegRunsBitExactly)
{
    const trace::Trace tr = shortTrace(3);
    FrontendConfig base;
    trace::DecodedTrace dec =
        trace::decodeTrace(tr, base.icache.blockBytes, base.instBytes);
    resolveDirectionStream(dec, base.direction);

    const std::vector<PolicySpec> lanes = {
        PolicyKind::Lru,
        parsePolicySpec("duel:lru,srrip"),
        PolicyKind::Ghrp,
        parsePolicySpec("duel:ghrp,lru"),
        parsePolicySpec("duel:sdbp,ship,psel=255,leaders=16"),
    };
    const std::vector<FrontendResult> fused =
        simulateFused(base, lanes, dec);
    ASSERT_EQ(fused.size(), lanes.size());

    for (std::size_t i = 0; i < lanes.size(); ++i) {
        FrontendConfig cfg = base;
        cfg.policy = lanes[i];
        const FrontendResult leg = simulateDecoded(cfg, dec);
        expectIdenticalCounters(leg, fused[i], policyName(lanes[i]));
        EXPECT_EQ(leg.hasDuel, fused[i].hasDuel);
        if (leg.hasDuel) {
            EXPECT_EQ(leg.icacheDuel.finalPsel,
                      fused[i].icacheDuel.finalPsel);
            EXPECT_EQ(leg.icacheDuel.trajectory,
                      fused[i].icacheDuel.trajectory);
            EXPECT_EQ(leg.btbDuel.finalPsel,
                      fused[i].btbDuel.finalPsel);
            EXPECT_EQ(leg.btbDuel.leaderMissesA,
                      fused[i].btbDuel.leaderMissesA);
            EXPECT_EQ(leg.btbDuel.leaderMissesB,
                      fused[i].btbDuel.leaderMissesB);
        }
    }
}

} // anonymous namespace

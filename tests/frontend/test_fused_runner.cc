/**
 * @file
 * Differential tests for the fused multi-policy executor: one chunked
 * walk of a decoded stream driving every policy lane must be
 * bit-identical to simulating the legs one at a time — per policy, per
 * workload category, for non-default I-cache/BTB geometries, through
 * core::runSuite at any worker count, and for lanes whose configured
 * direction predictor does not match the pre-resolved stream (they
 * must fall back to live prediction exactly as a per-leg run would).
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "core/runner.hh"
#include "frontend/fused.hh"
#include "trace/decoded_trace.hh"
#include "workload/suite.hh"

namespace
{

using namespace ghrp;
using namespace ghrp::frontend;

constexpr PolicyKind allPolicies[] = {
    PolicyKind::Lru,   PolicyKind::Random, PolicyKind::Fifo,
    PolicyKind::Srrip, PolicyKind::Brrip,  PolicyKind::Drrip,
    PolicyKind::Sdbp,  PolicyKind::Ship,   PolicyKind::Ghrp,
};

void
expectIdentical(const FrontendResult &a, const FrontendResult &b,
                const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.totalInstructions, b.totalInstructions);
    EXPECT_EQ(a.warmupInstructions, b.warmupInstructions);
    EXPECT_EQ(a.measuredInstructions, b.measuredInstructions);
    EXPECT_EQ(a.icache.accesses, b.icache.accesses);
    EXPECT_EQ(a.icache.hits, b.icache.hits);
    EXPECT_EQ(a.icache.misses, b.icache.misses);
    EXPECT_EQ(a.icache.bypasses, b.icache.bypasses);
    EXPECT_EQ(a.icache.evictions, b.icache.evictions);
    EXPECT_EQ(a.icache.deadEvictions, b.icache.deadEvictions);
    EXPECT_EQ(a.btb.accesses, b.btb.accesses);
    EXPECT_EQ(a.btb.hits, b.btb.hits);
    EXPECT_EQ(a.btb.misses, b.btb.misses);
    EXPECT_EQ(a.btb.bypasses, b.btb.bypasses);
    EXPECT_EQ(a.btb.evictions, b.btb.evictions);
    EXPECT_EQ(a.btb.deadEvictions, b.btb.deadEvictions);
    EXPECT_EQ(a.condBranches, b.condBranches);
    EXPECT_EQ(a.condMispredicts, b.condMispredicts);
    EXPECT_EQ(a.btbTargetMismatches, b.btbTargetMismatches);
    EXPECT_EQ(a.rasReturns, b.rasReturns);
    EXPECT_EQ(a.rasMispredicts, b.rasMispredicts);
    EXPECT_EQ(a.indirectBranches, b.indirectBranches);
    EXPECT_EQ(a.indirectMispredicts, b.indirectMispredicts);
    // Bit-identical, not merely close.
    EXPECT_EQ(a.icacheMpki, b.icacheMpki);
    EXPECT_EQ(a.btbMpki, b.btbMpki);
    EXPECT_EQ(a.policy, b.policy);
}

std::vector<PolicySpec>
everyPolicy()
{
    return {allPolicies, allPolicies + std::size(allPolicies)};
}

/**
 * All nine lanes fused over one stream vs. nine per-leg runs, across
 * the four workload categories (makeSuite(4) yields one trace per
 * category) and both a default-like and a deliberately small/skewed
 * geometry pair that forces heavy eviction traffic.
 */
TEST(FusedSim, MatchesPerLegForEveryPolicyAndCategory)
{
    const auto specs = workload::makeSuite(4, 42);
    ASSERT_EQ(specs.size(), 4u);

    struct Geometry
    {
        cache::CacheConfig icache;
        cache::CacheConfig btb;
        const char *name;
    };
    const Geometry geometries[] = {
        {cache::CacheConfig::icache(64, 8), cache::CacheConfig::btb(1024, 4),
         "default"},
        {cache::CacheConfig::icache(8, 2), cache::CacheConfig::btb(128, 2),
         "small"},
    };

    for (const auto &spec : specs) {
        const trace::Trace tr = workload::buildTrace(spec, 80'000);
        for (const Geometry &geo : geometries) {
            FrontendConfig base;
            base.icache = geo.icache;
            base.btb = geo.btb;

            trace::DecodedTrace dec = trace::decodeTrace(
                tr, base.icache.blockBytes, base.instBytes);
            resolveDirectionStream(dec, base.direction);

            const std::vector<FrontendResult> fused =
                simulateFused(base, everyPolicy(), dec);
            ASSERT_EQ(fused.size(), std::size(allPolicies));

            for (std::size_t i = 0; i < std::size(allPolicies); ++i) {
                FrontendConfig cfg = base;
                cfg.policy = allPolicies[i];
                expectIdentical(fused[i], simulateDecoded(cfg, dec),
                                spec.name + " / " + geo.name + " / " +
                                    policyName(allPolicies[i]));
            }
        }
    }
}

/**
 * Lanes whose direction predictor differs from the stream's resolved
 * kind must simulate their predictor live inside the fused walk and
 * still match their per-leg runs exactly.
 */
TEST(FusedSim, MismatchedDirectionStreamFallsBackLive)
{
    const auto specs = workload::makeSuite(1, 5);
    const trace::Trace tr = workload::buildTrace(specs.front(), 60'000);

    FrontendConfig base;
    base.direction = DirectionKind::Gshare;

    trace::DecodedTrace dec =
        trace::decodeTrace(tr, base.icache.blockBytes, base.instBytes);
    // Resolved for a different predictor: every lane must ignore it.
    resolveDirectionStream(dec, DirectionKind::Bimodal);
    ASSERT_TRUE(dec.hasDirectionStream());

    const std::vector<FrontendResult> fused =
        simulateFused(base, everyPolicy(), dec);
    for (std::size_t i = 0; i < std::size(allPolicies); ++i) {
        FrontendConfig cfg = base;
        cfg.policy = allPolicies[i];
        expectIdentical(fused[i], simulateDecoded(cfg, dec),
                        std::string("gshare fallback / ") +
                            policyName(allPolicies[i]));
    }
}

/** A fused group that is smaller than a full chunk (tiny trace) and a
 *  single-lane group both degenerate cleanly. */
TEST(FusedSim, TinyTraceAndSingleLane)
{
    trace::Trace t;
    t.entryPc = 0x1000;
    for (int i = 0; i < 3; ++i)
        t.records.push_back(
            {0x1010, 0x1000, trace::BranchType::CondDirect, true});
    t.records.push_back({0x1020, 0x2000, trace::BranchType::Call, true});
    t.records.push_back({0x2008, 0x1024, trace::BranchType::Return, true});

    FrontendConfig base;
    base.warmupFraction = 0.0;
    const trace::DecodedTrace dec =
        trace::decodeTrace(t, base.icache.blockBytes, base.instBytes);

    const std::vector<FrontendResult> fused =
        simulateFused(base, {PolicyKind::Ghrp}, dec);
    ASSERT_EQ(fused.size(), 1u);
    FrontendConfig cfg = base;
    cfg.policy = PolicyKind::Ghrp;
    expectIdentical(fused[0], simulateDecoded(cfg, dec),
                    "single-lane tiny trace");
}

// ----------------------------------------- through the suite runner

core::SuiteOptions
fusedSuite(std::uint64_t seed)
{
    core::SuiteOptions options;
    options.numTraces = 4;  // one trace per workload category
    options.baseSeed = seed;
    options.instructionOverride = 60'000;
    options.policies = everyPolicy();
    return options;
}

void
expectSuitesIdentical(const core::SuiteResults &a,
                      const core::SuiteResults &b)
{
    ASSERT_EQ(a.results.size(), b.results.size());
    for (const auto &[policy, legs] : a.results) {
        const auto it = b.results.find(policy);
        ASSERT_NE(it, b.results.end());
        ASSERT_EQ(legs.size(), it->second.size());
        for (std::size_t i = 0; i < legs.size(); ++i) {
            expectIdentical(legs[i], it->second[i],
                            std::string(frontend::policyName(policy)) +
                                " trace " + std::to_string(i));
            EXPECT_EQ(legs[i].traceName, it->second[i].traceName);
        }
    }
}

TEST(FusedRunner, MatchesPerLegSuiteForEveryJobCount)
{
    core::SuiteOptions per_leg = fusedSuite(42);
    per_leg.jobs = 1;
    const core::SuiteResults reference = core::runSuite(per_leg);

    for (unsigned jobs : {1u, 4u}) {
        SCOPED_TRACE(::testing::Message() << "jobs " << jobs);
        core::SuiteOptions options = fusedSuite(42);
        options.fused = true;
        options.jobs = jobs;
        expectSuitesIdentical(reference, core::runSuite(options));
    }
}

TEST(FusedRunner, NonDefaultGeometrySuite)
{
    core::SuiteOptions per_leg = fusedSuite(9);
    per_leg.base.icache = cache::CacheConfig::icache(8, 4);
    per_leg.base.btb = cache::CacheConfig::btb(256, 2);
    per_leg.jobs = 1;
    const core::SuiteResults reference = core::runSuite(per_leg);

    core::SuiteOptions options = per_leg;
    options.fused = true;
    options.jobs = 4;
    expectSuitesIdentical(reference, core::runSuite(options));
}

TEST(FusedRunner, ProgressAndTimingCoverEveryLeg)
{
    core::SuiteOptions options = fusedSuite(7);
    options.fused = true;
    options.jobs = 2;

    std::size_t calls = 0, last_done = 0;
    const core::SuiteResults results = core::runSuite(
        options,
        [&](std::size_t done, std::size_t, const std::string &) {
            ++calls;
            EXPECT_GT(done, last_done);  // serialised, monotonic
            last_done = done;
        });

    EXPECT_EQ(calls, results.totalLegs());
    EXPECT_EQ(results.totalLegs(),
              options.numTraces * options.policies.size());
    EXPECT_GT(results.wallSeconds, 0.0);
    for (const auto &[policy, seconds] : results.legSeconds) {
        ASSERT_EQ(seconds.size(), options.numTraces);
        // Group wall time is split across lanes — every simulated
        // leg still reports a positive share.
        for (double s : seconds)
            EXPECT_GT(s, 0.0);
    }
}

TEST(FusedRunner, SkipHookDropsLanesFromTheGroup)
{
    // Journal-resume shape: mark some legs as already done; the fused
    // group must simulate exactly the remaining lanes, tick progress
    // for all, and report onLegDone only for the simulated ones.
    core::SuiteOptions options = fusedSuite(3);
    options.numTraces = 2;
    options.fused = true;
    options.jobs = 1;

    const auto skip = [](std::size_t trace_index,
                         const PolicySpec &policy) {
        return trace_index == 0 || policy == PolicySpec(PolicyKind::Random);
    };
    core::RunHooks hooks;
    hooks.skipLeg = skip;
    std::size_t done_legs = 0;
    hooks.onLegDone = [&](std::size_t trace_index,
                          const PolicySpec &policy,
                          const FrontendResult &, double) {
        EXPECT_FALSE(skip(trace_index, policy));
        ++done_legs;
    };

    std::size_t ticks = 0;
    const core::SuiteResults results = core::runSuite(
        options,
        [&](std::size_t, std::size_t, const std::string &) { ++ticks; },
        hooks);

    const std::size_t lanes = options.policies.size();
    EXPECT_EQ(ticks, 2 * lanes);           // skipped legs still tick
    EXPECT_EQ(done_legs, lanes - 1);       // trace 1, minus Random
    // Skipped slots stay default-initialized (the caller's journal
    // fills them); simulated slots match a plain per-leg run.
    EXPECT_EQ(results.results.at(PolicyKind::Lru)[0].icache.accesses, 0u);

    core::SuiteOptions plain = options;
    plain.fused = false;
    const core::SuiteResults reference = core::runSuite(plain);
    expectIdentical(results.results.at(PolicyKind::Lru)[1],
                    reference.results.at(PolicyKind::Lru)[1],
                    "simulated lane after skips");
}

} // anonymous namespace

/** @file Config-variant tests for the front-end simulator. */

#include <gtest/gtest.h>

#include "frontend/frontend.hh"
#include "workload/suite.hh"

namespace
{

using namespace ghrp;
using namespace ghrp::frontend;

const trace::Trace &
sharedTrace()
{
    static const trace::Trace tr = [] {
        workload::TraceSpec spec;
        spec.category = workload::Category::ShortServer;
        spec.seed = 31;
        spec.name = "cfg";
        return workload::buildTrace(spec, 400'000);
    }();
    return tr;
}

TEST(FrontendConfigs, BtbAssociativitySweep)
{
    for (std::uint32_t assoc : {1u, 2u, 4u, 8u}) {
        FrontendConfig cfg;
        cfg.btb = cache::CacheConfig::btb(1024, assoc);
        const FrontendResult r = simulateTrace(cfg, sharedTrace());
        EXPECT_GT(r.btb.accesses, 0u) << assoc;
    }
}

TEST(FrontendConfigs, SmallerBtbMissesMore)
{
    FrontendConfig big;
    big.btb = cache::CacheConfig::btb(4096, 4);
    FrontendConfig small;
    small.btb = cache::CacheConfig::btb(256, 4);
    EXPECT_GE(simulateTrace(small, sharedTrace()).btbMpki,
              simulateTrace(big, sharedTrace()).btbMpki);
}

TEST(FrontendConfigs, BlockSizeAffectsAccessCount)
{
    FrontendConfig b64;
    FrontendConfig b128;
    b128.icache = cache::CacheConfig::icache(64, 8, 128);
    const FrontendResult r64 = simulateTrace(b64, sharedTrace());
    const FrontendResult r128 = simulateTrace(b128, sharedTrace());
    // Bigger blocks -> fewer block transitions -> fewer accesses.
    EXPECT_LT(r128.icache.accesses, r64.icache.accesses);
}

TEST(FrontendConfigs, GhrpOnTinyCache)
{
    FrontendConfig cfg;
    cfg.policy = PolicyKind::Ghrp;
    cfg.icache = cache::CacheConfig::icache(8, 4);
    cfg.btb = cache::CacheConfig::btb(256, 4);
    const FrontendResult r = simulateTrace(cfg, sharedTrace());
    EXPECT_GT(r.icacheMpki, 0.0);
}

TEST(FrontendConfigs, GshareSelectable)
{
    FrontendConfig cfg;
    cfg.direction = DirectionKind::Gshare;
    const FrontendResult r = simulateTrace(cfg, sharedTrace());
    EXPECT_GT(r.condBranches, 0u);
    EXPECT_LT(r.mispredictRate(), 0.5);
}

TEST(FrontendConfigs, MeasuredPlusWarmupEqualsTotal)
{
    FrontendConfig cfg;
    cfg.warmupFraction = 0.25;
    const FrontendResult r = simulateTrace(cfg, sharedTrace());
    EXPECT_EQ(r.warmupInstructions + r.measuredInstructions,
              r.totalInstructions);
}

TEST(FrontendConfigs, PaperPoliciesListIsFive)
{
    EXPECT_EQ(std::size(paperPolicies), 5u);
    EXPECT_EQ(paperPolicies[0], PolicyKind::Lru);
    EXPECT_EQ(paperPolicies[4], PolicyKind::Ghrp);
}

} // anonymous namespace

namespace
{

using namespace ghrp;
using namespace ghrp::frontend;

TEST(FrontendIndirect, CountsIndirectBranches)
{
    trace::Trace tr;
    tr.entryPc = 0x1000;
    for (int i = 0; i < 100; ++i) {
        tr.records.push_back({0x1010,
                              i % 2 ? Addr{0x2000} : Addr{0x3000},
                              trace::BranchType::UncondIndirect, true});
        tr.records.push_back({i % 2 ? Addr{0x2010} : Addr{0x3010},
                              0x1000, trace::BranchType::UncondDirect,
                              true});
    }
    FrontendConfig cfg;
    cfg.warmupFraction = 0.0;
    const FrontendResult r = simulateTrace(cfg, tr);
    EXPECT_EQ(r.indirectBranches, 100u);
    // Alternating targets: BTB last-seen target is almost always wrong.
    EXPECT_GT(r.indirectMispredicts, 90u);
}

TEST(FrontendIndirect, PredictorRecoversAlternation)
{
    trace::Trace tr;
    tr.entryPc = 0x1000;
    for (int i = 0; i < 1000; ++i) {
        tr.records.push_back({0x1010,
                              i % 2 ? Addr{0x2000} : Addr{0x3000},
                              trace::BranchType::UncondIndirect, true});
        tr.records.push_back({i % 2 ? Addr{0x2010} : Addr{0x3010},
                              0x1000, trace::BranchType::UncondDirect,
                              true});
    }
    FrontendConfig base;
    base.warmupFraction = 0.0;
    FrontendConfig with = base;
    with.useIndirectPredictor = true;
    const FrontendResult rb = simulateTrace(base, tr);
    const FrontendResult rw = simulateTrace(with, tr);
    EXPECT_LT(rw.indirectMispredicts, rb.indirectMispredicts / 2);
}

TEST(FrontendIndirect, MpkiHelper)
{
    FrontendResult r;
    r.indirectMispredicts = 4;
    r.measuredInstructions = 2000;
    EXPECT_DOUBLE_EQ(r.indirectMpki(), 2.0);
}

} // anonymous namespace

/**
 * @file
 * Metrics registry tests: hot-path correctness under concurrency (the
 * TSan target — N threads hammering shared instruments must lose no
 * updates and trip no races), log-bucket mapping, snapshot
 * determinism, and the reference-stability contract of resetForTest().
 */

#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/metrics.hh"

namespace
{

using namespace ghrp::telemetry;

TEST(TelemetryMetrics, CounterAddAndReset)
{
    Counter c;
    EXPECT_EQ(c.get(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.get(), 42u);
    c.reset();
    EXPECT_EQ(c.get(), 0u);
}

TEST(TelemetryMetrics, GaugeMovesBothWays)
{
    Gauge g;
    g.set(3.5);
    EXPECT_DOUBLE_EQ(g.get(), 3.5);
    g.add(-1.25);
    EXPECT_DOUBLE_EQ(g.get(), 2.25);
    g.reset();
    EXPECT_DOUBLE_EQ(g.get(), 0.0);
}

TEST(TelemetryMetrics, BucketIndexIsLogTwo)
{
    // Bucket i counts observations strictly below 2^i ns.
    EXPECT_EQ(Histogram::bucketIndex(0), 0u);
    EXPECT_EQ(Histogram::bucketIndex(1), 1u);
    EXPECT_EQ(Histogram::bucketIndex(2), 2u);
    EXPECT_EQ(Histogram::bucketIndex(3), 2u);
    EXPECT_EQ(Histogram::bucketIndex(4), 3u);
    EXPECT_EQ(Histogram::bucketIndex(1023), 10u);
    EXPECT_EQ(Histogram::bucketIndex(1024), 11u);
    // Values beyond the top boundary clamp into the last bucket.
    EXPECT_EQ(Histogram::bucketIndex(~std::uint64_t{0}),
              Histogram::kNumBuckets - 1);

    for (std::uint32_t i = 0; i + 1 < Histogram::kNumBuckets; ++i)
        EXPECT_DOUBLE_EQ(Histogram::bucketUpperSeconds(i),
                         std::ldexp(1.0, static_cast<int>(i)) * 1e-9);
}

TEST(TelemetryMetrics, HistogramObserveAccumulates)
{
    Histogram h;
    h.observeNanos(100);   // bucket 7 (100 < 128)
    h.observeNanos(100);
    h.observeNanos(5000);  // bucket 13 (5000 < 8192)
    EXPECT_EQ(h.count(), 3u);
    EXPECT_NEAR(h.sumSeconds(), 5200e-9, 1e-15);

    h.observeSeconds(-1.0);  // clamps to 0ns, bucket 0
    EXPECT_EQ(h.count(), 4u);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.sumSeconds(), 0.0);
}

TEST(TelemetryMetrics, QuantileUpperBound)
{
    Registry registry;
    Histogram &r = registry.histogram("h");
    for (int i = 0; i < 90; ++i)
        r.observeNanos(100);     // bucket 7, upper bound 128ns
    for (int i = 0; i < 10; ++i)
        r.observeNanos(100000);  // bucket 17, upper bound ~131us
    const Snapshot snap = registry.snapshot();
    const HistogramSnapshot &hs = snap.histograms.at("h");
    EXPECT_EQ(hs.count, 100u);
    EXPECT_DOUBLE_EQ(hs.quantileUpperBound(0.5),
                     Histogram::bucketUpperSeconds(7));
    EXPECT_DOUBLE_EQ(hs.quantileUpperBound(0.99),
                     Histogram::bucketUpperSeconds(17));
    EXPECT_DOUBLE_EQ(HistogramSnapshot{}.quantileUpperBound(0.5), 0.0);
}

TEST(TelemetryMetrics, RegistryReturnsSameInstrument)
{
    Registry registry;
    Counter &a = registry.counter("x");
    Counter &b = registry.counter("x");
    EXPECT_EQ(&a, &b);
    a.add(7);
    EXPECT_EQ(b.get(), 7u);
    // Distinct namespaces: a gauge and a counter may share a name.
    registry.gauge("x").set(1.0);
    EXPECT_EQ(registry.counter("x").get(), 7u);
}

TEST(TelemetryMetrics, ResetForTestKeepsReferencesValid)
{
    Registry registry;
    Counter &c = registry.counter("c");
    Gauge &g = registry.gauge("g");
    Histogram &h = registry.histogram("h");
    c.add(5);
    g.set(2.0);
    h.observeNanos(1000);

    registry.resetForTest();

    // The instruments survive (snapshot still lists them), zeroed.
    const Snapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counters.at("c"), 0u);
    EXPECT_DOUBLE_EQ(snap.gauges.at("g"), 0.0);
    EXPECT_EQ(snap.histograms.at("h").count, 0u);

    // Cached references still feed the same instruments.
    c.add(3);
    EXPECT_EQ(registry.snapshot().counters.at("c"), 3u);
}

TEST(TelemetryMetrics, SnapshotIsLexicographic)
{
    Registry registry;
    registry.counter("zebra").add();
    registry.counter("apple").add();
    registry.counter("mango").add();
    const Snapshot snap = registry.snapshot();
    std::vector<std::string> names;
    for (const auto &[name, value] : snap.counters)
        names.push_back(name);
    EXPECT_EQ(names,
              (std::vector<std::string>{"apple", "mango", "zebra"}));
}

/**
 * The TSan concurrency test: N threads hammer one counter, one gauge
 * and one histogram through the registry. The exact-sum checks prove
 * no update is lost; TSan proves no data race exists on the way.
 */
TEST(TelemetryMetrics, ConcurrentUpdatesLoseNothing)
{
    Registry registry;
    constexpr unsigned kThreads = 8;
    constexpr std::uint64_t kIterations = 10000;

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&registry] {
            // Resolve through the registry every few iterations too,
            // so the lookup path is exercised concurrently.
            Counter &c = registry.counter("shared.counter");
            Gauge &g = registry.gauge("shared.gauge");
            Histogram &h = registry.histogram("shared.hist");
            for (std::uint64_t i = 0; i < kIterations; ++i) {
                c.add();
                g.add(1.0);
                h.observeNanos(i);
                if (i % 1000 == 0)
                    registry.counter("shared.counter").add(0);
                if (i % 512 == 0)
                    (void)registry.snapshot();
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    const Snapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counters.at("shared.counter"),
              kThreads * kIterations);
    EXPECT_DOUBLE_EQ(snap.gauges.at("shared.gauge"),
                     static_cast<double>(kThreads) * kIterations);
    EXPECT_EQ(snap.histograms.at("shared.hist").count,
              kThreads * kIterations);
    // Sum of 0..kIterations-1 nanoseconds per thread.
    const double per_thread =
        static_cast<double>(kIterations - 1) * kIterations / 2.0;
    EXPECT_NEAR(snap.histograms.at("shared.hist").sumSeconds,
                kThreads * per_thread * 1e-9, 1e-9);
}

TEST(TelemetryMetrics, GlobalRegistryIsASingleton)
{
    EXPECT_EQ(&Registry::global(), &metrics());
}

} // anonymous namespace

/**
 * @file
 * Trace-span tests: the disabled fast path records nothing, enabled
 * spans land in per-thread buffers with stable ordering, and the
 * Chrome trace_event serialization is locked down byte-for-byte by a
 * golden test over fixed inputs (so perfetto compatibility can't
 * silently drift).
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "telemetry/span.hh"

namespace
{

using namespace ghrp::telemetry;

/** Restore the global tracing flag and drop recorded spans on exit. */
struct SpanFixture : ::testing::Test
{
    void SetUp() override
    {
        clearSpans();
        setTracingEnabled(false);
    }

    void TearDown() override
    {
        setTracingEnabled(false);
        clearSpans();
    }
};

using TelemetrySpan = SpanFixture;

TEST_F(TelemetrySpan, DisabledSpansRecordNothing)
{
    {
        TELEMETRY_SPAN("decode");
        TELEMETRY_SPAN("simulate", "t00 / LRU");
    }
    EXPECT_TRUE(collectSpans().empty());
}

TEST_F(TelemetrySpan, EnabledSpansRecordNameDetailAndDuration)
{
    setTracingEnabled(true);
    {
        TELEMETRY_SPAN("decode", "t00");
    }
    const std::vector<SpanEvent> events = collectSpans();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].name, "decode");
    EXPECT_EQ(events[0].detail, "t00");
    EXPECT_GT(events[0].tid, 0u);

    // The flag is latched at construction: a span opened while
    // tracing is on records even if tracing is turned off mid-scope.
    {
        TELEMETRY_SPAN("late");
        setTracingEnabled(false);
    }
    EXPECT_EQ(collectSpans().size(), 2u);
}

TEST_F(TelemetrySpan, SpansFromOtherThreadsSurviveThreadExit)
{
    setTracingEnabled(true);
    std::thread([] {
        setThreadName("helper");
        TELEMETRY_SPAN("work");
    }).join();

    const std::vector<SpanEvent> events = collectSpans();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].name, "work");

    bool named = false;
    for (const ThreadInfo &thread : collectThreads())
        named = named ||
            (thread.name == "helper" && thread.tid == events[0].tid);
    EXPECT_TRUE(named);
}

TEST_F(TelemetrySpan, ChromeTraceJsonGolden)
{
    // Fixed inputs: two threads (one named), three events covering
    // detail args, escaping and sub-microsecond timestamps.
    const std::vector<ThreadInfo> threads = {
        {1, "main"},
        {2, ""},  // never named: no thread_name metadata record
    };
    const std::vector<SpanEvent> events = {
        {"sweep", "24 traces x 5 policies", 1500, 2500000, 1},
        {"decode", "", 2000, 999, 1},
        {"simulate", "t\"00\" / LRU\n", 12345678, 1000, 2},
    };

    const std::string expected =
        "{\"traceEvents\":["
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"ghrp\"}},"
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
        "\"args\":{\"name\":\"main\"}},"
        "{\"name\":\"sweep\",\"cat\":\"ghrp\",\"ph\":\"X\",\"pid\":1,"
        "\"tid\":1,\"ts\":1.500,\"dur\":2500.000,"
        "\"args\":{\"detail\":\"24 traces x 5 policies\"}},"
        "{\"name\":\"decode\",\"cat\":\"ghrp\",\"ph\":\"X\",\"pid\":1,"
        "\"tid\":1,\"ts\":2.000,\"dur\":0.999},"
        "{\"name\":\"simulate\",\"cat\":\"ghrp\",\"ph\":\"X\","
        "\"pid\":1,\"tid\":2,\"ts\":12345.678,\"dur\":1.000,"
        "\"args\":{\"detail\":\"t\\\"00\\\" / LRU\\n\"}}"
        "],\"displayTimeUnit\":\"ms\"}\n";

    EXPECT_EQ(chromeTraceJson(events, threads), expected);
}

TEST_F(TelemetrySpan, WriteChromeTraceProducesLoadableFile)
{
    setTracingEnabled(true);
    {
        TELEMETRY_SPAN("decode", "golden");
    }
    const std::string path =
        (std::filesystem::temp_directory_path() /
         "ghrp_test_span_trace.json")
            .string();
    ASSERT_TRUE(writeChromeTrace(path));

    std::ifstream file(path);
    std::ostringstream buffer;
    buffer << file.rdbuf();
    const std::string json = buffer.str();
    std::filesystem::remove(path);

    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"decode\""), std::string::npos);
    EXPECT_NE(json.find("\"detail\":\"golden\""), std::string::npos);

    // Unwritable destination reports failure instead of throwing.
    EXPECT_FALSE(writeChromeTrace("/nonexistent-dir/trace.json"));
}

} // anonymous namespace

/**
 * @file
 * Exposition tests: the Prometheus text rendering is locked down with
 * a golden test (cumulative bucket semantics included), and the
 * extras.telemetry subtree survives a full round trip through the
 * schema-1.2 run-report JSON losslessly.
 */

#include <gtest/gtest.h>

#include "report/report.hh"
#include "report/telemetry_json.hh"
#include "telemetry/exposition.hh"
#include "telemetry/metrics.hh"

namespace
{

using namespace ghrp;
using namespace ghrp::telemetry;

Snapshot
exampleSnapshot()
{
    Registry registry;
    registry.counter("pool.tasks").add(42);
    registry.counter("trace_store.hits").add(7);
    registry.gauge("service.queue_depth").set(3);
    Histogram &h = registry.histogram("sweep.leg_seconds");
    h.observeNanos(100);     // bucket 7 (< 128ns)
    h.observeNanos(100);
    h.observeNanos(100000);  // bucket 17 (< ~131us)
    return registry.snapshot();
}

TEST(TelemetryExposition, PrometheusNameSanitization)
{
    EXPECT_EQ(prometheusName("pool.tasks"), "ghrp_pool_tasks");
    EXPECT_EQ(prometheusName("a-b c"), "ghrp_a_b_c");
    EXPECT_EQ(prometheusName("ok_name:x9"), "ghrp_ok_name:x9");
}

TEST(TelemetryExposition, PrometheusGolden)
{
    const std::string expected =
        "# TYPE ghrp_pool_tasks counter\n"
        "ghrp_pool_tasks 42\n"
        "# TYPE ghrp_trace_store_hits counter\n"
        "ghrp_trace_store_hits 7\n"
        "# TYPE ghrp_service_queue_depth gauge\n"
        "ghrp_service_queue_depth 3\n"
        "# TYPE ghrp_sweep_leg_seconds histogram\n"
        "ghrp_sweep_leg_seconds_bucket{le=\"1.28e-07\"} 2\n"
        "ghrp_sweep_leg_seconds_bucket{le=\"0.000131072\"} 3\n"
        "ghrp_sweep_leg_seconds_bucket{le=\"+Inf\"} 3\n"
        "ghrp_sweep_leg_seconds_sum 0.0001002\n"
        "ghrp_sweep_leg_seconds_count 3\n";
    EXPECT_EQ(renderPrometheus(exampleSnapshot()), expected);
}

TEST(TelemetryExposition, EmptySnapshotRendersNothing)
{
    EXPECT_EQ(renderPrometheus(Snapshot{}), "");
}

TEST(TelemetryExposition, JsonRoundTripIsLossless)
{
    const Snapshot before = exampleSnapshot();
    const report::Json json = report::telemetryToJson(before);
    const Snapshot after = report::telemetryFromJson(json);
    EXPECT_EQ(before, after);
    // And the JSON text itself is a fixed point.
    EXPECT_EQ(report::telemetryToJson(after).dump(2), json.dump(2));
}

TEST(TelemetryExposition, FromJsonToleratesMissingSections)
{
    const Snapshot empty =
        report::telemetryFromJson(report::Json::object());
    EXPECT_TRUE(empty.empty());
}

TEST(TelemetryExposition, FromJsonRejectsMalformedInput)
{
    report::Json bad = report::Json::object();
    bad.set("counters", "not an object");
    EXPECT_THROW(report::telemetryFromJson(bad), report::ReportError);
}

TEST(TelemetryExposition, SnapshotRoundTripsThroughRunReport)
{
    // The extras.telemetry subtree must survive the full report path:
    // embed -> serialize (schema minor >= 2) -> parse -> extract.
    const Snapshot before = exampleSnapshot();

    report::RunReport report;
    report.experiment = "telemetry_roundtrip";
    report.extras.set("telemetry", report::telemetryToJson(before));
    ASSERT_GE(report.versionMinor, 2);

    const std::string text = report.toJson().dump(2);
    const report::RunReport parsed =
        report::RunReport::fromJson(report::Json::parse(text));

    const report::Json *embedded = parsed.extras.find("telemetry");
    ASSERT_NE(embedded, nullptr);
    EXPECT_EQ(report::telemetryFromJson(*embedded), before);
}

} // anonymous namespace

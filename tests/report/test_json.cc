/** @file Unit tests for the run-report JSON document model. */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "report/json.hh"

namespace
{

using ghrp::report::Json;
using ghrp::report::JsonError;

TEST(Json, TypesAndAccessors)
{
    EXPECT_TRUE(Json().isNull());
    EXPECT_TRUE(Json(nullptr).isNull());
    EXPECT_TRUE(Json(true).asBool());
    EXPECT_FALSE(Json(false).asBool());
    EXPECT_EQ(Json(-7).asInt(), -7);
    EXPECT_EQ(Json(std::uint64_t{18446744073709551615ull}).asUint(),
              18446744073709551615ull);
    EXPECT_DOUBLE_EQ(Json(2.5).asDouble(), 2.5);
    EXPECT_EQ(Json("hi").asString(), "hi");

    // Any numeric kind widens to double.
    EXPECT_DOUBLE_EQ(Json(-7).asDouble(), -7.0);
    EXPECT_DOUBLE_EQ(Json(7u).asDouble(), 7.0);
}

TEST(Json, TypeMismatchThrows)
{
    EXPECT_THROW(Json(1).asString(), JsonError);
    EXPECT_THROW(Json("x").asUint(), JsonError);
    EXPECT_THROW(Json(-1).asUint(), JsonError);
    EXPECT_THROW(Json(2.5).asInt(), JsonError);
    EXPECT_THROW(Json().asBool(), JsonError);
}

TEST(Json, ObjectKeepsInsertionOrder)
{
    Json obj = Json::object();
    obj.set("zebra", 1);
    obj.set("alpha", 2);
    obj.set("mid", 3);
    EXPECT_EQ(obj.dump(0), R"({"zebra":1,"alpha":2,"mid":3})");
    ASSERT_NE(obj.find("alpha"), nullptr);
    EXPECT_EQ(obj.find("alpha")->asInt(), 2);
    EXPECT_EQ(obj.find("missing"), nullptr);
    EXPECT_THROW(obj.at("missing"), JsonError);
}

TEST(Json, DumpCompactAndPretty)
{
    Json obj = Json::object();
    obj.set("a", 1);
    Json arr = Json::array();
    arr.push(true);
    arr.push("s");
    obj.set("b", std::move(arr));
    EXPECT_EQ(obj.dump(0), R"({"a":1,"b":[true,"s"]})");
    EXPECT_EQ(obj.dump(2),
              "{\n  \"a\": 1,\n  \"b\": [\n    true,\n    \"s\"\n  ]\n}");
}

TEST(Json, StringEscapes)
{
    const Json s(std::string("a\"b\\c\n\t\x01"));
    EXPECT_EQ(s.dump(0), R"("a\"b\\c\n\t\u0001")");
    const Json parsed = Json::parse(s.dump(0));
    EXPECT_EQ(parsed.asString(), s.asString());
}

TEST(Json, ParseUnicodeEscapes)
{
    EXPECT_EQ(Json::parse(R"("A")").asString(), "A");
    // U+00E9 (e-acute) -> 2-byte UTF-8.
    EXPECT_EQ(Json::parse(R"("é")").asString(), "\xc3\xa9");
    // Surrogate pair: U+1F600.
    EXPECT_EQ(Json::parse(R"("😀")").asString(),
              "\xf0\x9f\x98\x80");
}

TEST(Json, NumbersClassifyOnParse)
{
    EXPECT_EQ(Json::parse("42").type(), Json::Type::Uint);
    EXPECT_EQ(Json::parse("-42").type(), Json::Type::Int);
    EXPECT_EQ(Json::parse("4.5").type(), Json::Type::Double);
    EXPECT_EQ(Json::parse("1e3").type(), Json::Type::Double);
    EXPECT_EQ(Json::parse("18446744073709551615").asUint(),
              18446744073709551615ull);
}

TEST(Json, NonFiniteDumpsAsNull)
{
    EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(0),
              "null");
    EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(0),
              "null");
}

TEST(Json, RoundTripIsByteIdentical)
{
    Json doc = Json::object();
    doc.set("u", std::uint64_t{12345678901234567ull});
    doc.set("i", std::int64_t{-987654321});
    doc.set("pi", 3.141592653589793);
    doc.set("tiny", 5e-324);
    doc.set("frac", 0.1);
    doc.set("s", "text with \"quotes\" and \\ slashes\n");
    Json arr = Json::array();
    for (int i = 0; i < 5; ++i)
        arr.push(i * 0.3);
    doc.set("series", std::move(arr));
    Json nested = Json::object();
    nested.set("empty_arr", Json::array());
    nested.set("empty_obj", Json::object());
    nested.set("null", nullptr);
    doc.set("nested", std::move(nested));

    for (int indent : {0, 2, 4}) {
        const std::string once = doc.dump(indent);
        const std::string twice = Json::parse(once).dump(indent);
        EXPECT_EQ(once, twice) << "indent " << indent;
    }
}

TEST(Json, ParseErrors)
{
    EXPECT_THROW(Json::parse(""), JsonError);
    EXPECT_THROW(Json::parse("{"), JsonError);
    EXPECT_THROW(Json::parse("[1,]"), JsonError);
    EXPECT_THROW(Json::parse(R"({"a":1,})"), JsonError);
    EXPECT_THROW(Json::parse("tru"), JsonError);
    EXPECT_THROW(Json::parse("1 2"), JsonError);  // trailing garbage
    EXPECT_THROW(Json::parse(R"("unterminated)"), JsonError);
    EXPECT_THROW(Json::parse(R"({"a" 1})"), JsonError);
    EXPECT_THROW(Json::parse("--1"), JsonError);
}

TEST(Json, ParseWhitespaceTolerant)
{
    const Json doc =
        Json::parse("  {\n\t\"a\" : [ 1 , 2 ] ,\r\n \"b\" : null }  ");
    EXPECT_EQ(doc.at("a").size(), 2u);
    EXPECT_TRUE(doc.at("b").isNull());
}

} // namespace

/**
 * @file
 * Schema-minor-4 tests: the per-leg "phases" subtree must round-trip
 * bit-identically (legs are the crash-resume/shard-merge currency),
 * buildSuiteReport must synthesize the extras.phases digest from the
 * suite results alone, merged shard reports must carry identical
 * phase data, and the phase render/check/diff surfaces must behave on
 * real and degenerate reports.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/runner.hh"
#include "report/render.hh"
#include "report/report.hh"

namespace
{

using namespace ghrp;
using report::Json;
using report::RunReport;

frontend::PhaseRecord
phaseRecord(std::uint64_t window, std::uint64_t instructions)
{
    frontend::PhaseRecord r;
    r.window = window;
    r.instructions = instructions;
    r.icacheAccesses = 4'000 + window;
    r.icacheMisses = 90 + window;
    r.icacheEvictions = 70 + window;
    r.btbAccesses = 1'200 + window;
    r.btbMisses = 30 + window;
    r.btbEvictions = 25 + window;
    r.condBranches = 900 + window;
    r.condMispredicts = 40 + window;
    r.btbTargetMismatches = 3 + window;
    r.deadHits = 11 + window;
    r.liveHits = 300 + window;
    r.deadEvictions = 9 + window;
    r.liveEvictions = 50 + window;
    r.psel = static_cast<std::int64_t>(window) * 7 - 10;
    return r;
}

frontend::FrontendResult
phaseResult()
{
    frontend::FrontendResult r;
    r.traceName = "trace-0";
    r.policy = "GHRP";
    r.totalInstructions = 60'000;
    r.measuredInstructions = 30'000;
    r.icache.accesses = 12'000;
    r.icache.misses = 300;
    r.icache.hits = 11'700;
    r.icacheMpki = 10.0;
    r.btb.accesses = 4'000;
    r.btb.misses = 90;
    r.btb.hits = 3'910;
    r.btbMpki = 3.0;
    r.hasPhases = true;
    r.phases.window = 10'000;
    r.phases.stride = 2;
    r.phases.records = {phaseRecord(1, 20'000), phaseRecord(3, 40'000),
                        phaseRecord(5, 60'000)};
    return r;
}

TEST(PhaseLeg, RoundTripsThroughJsonBitIdentically)
{
    const report::Leg leg =
        report::makeLeg("trace-0", "GHRP", phaseResult(), 0.5);
    ASSERT_TRUE(leg.hasPhases);
    EXPECT_EQ(leg.phases.window, 10'000u);
    EXPECT_EQ(leg.phases.stride, 2u);
    ASSERT_EQ(leg.phases.records.size(), 3u);

    const std::string once = report::legToJson(leg).dump(2);
    const report::Leg reparsed =
        report::legFromJson(Json::parse(once));
    EXPECT_EQ(report::legToJson(reparsed).dump(2), once);
    ASSERT_TRUE(reparsed.hasPhases);
    EXPECT_EQ(reparsed.phases.stride, 2u);

    // toFrontendResult is the exact inverse of makeLeg — the resume
    // path must restore the flight-recorder trajectory too.
    const frontend::FrontendResult restored =
        report::toFrontendResult(reparsed);
    ASSERT_TRUE(restored.hasPhases);
    EXPECT_EQ(restored.phases.window, 10'000u);
    ASSERT_EQ(restored.phases.records.size(), 3u);
    for (std::size_t i = 0; i < restored.phases.records.size(); ++i)
        EXPECT_EQ(
            report::phaseRecordJson(restored.phases.records[i]).dump(2),
            report::phaseRecordJson(phaseResult().phases.records[i])
                .dump(2))
            << "record " << i;
}

TEST(PhaseLeg, NonPhaseLegsSerializeWithoutPhasesSubtree)
{
    frontend::FrontendResult r = phaseResult();
    r.hasPhases = false;
    const report::Leg leg = report::makeLeg("trace-0", "GHRP", r, 0.0);
    EXPECT_FALSE(leg.hasPhases);
    const Json j = report::legToJson(leg);
    EXPECT_EQ(j.find("phases"), nullptr);
    EXPECT_FALSE(report::legFromJson(j).hasPhases);
}

core::SuiteOptions
phaseSuiteOptions(std::uint64_t window = 20'000)
{
    core::SuiteOptions options;
    options.numTraces = 2;
    options.instructionOverride = 150'000;
    options.jobs = 1;
    options.policies = {frontend::PolicyKind::Lru,
                        frontend::PolicyKind::Ghrp};
    options.base.phaseWindow = window;
    return options;
}

TEST(PhaseReport, BuildSuiteReportSynthesizesPhasesExtras)
{
    const core::SuiteOptions options = phaseSuiteOptions();
    const core::SuiteResults results = core::runSuite(options);
    const RunReport report =
        report::buildSuiteReport("phase_suite", options, results);

    EXPECT_EQ(report.options.at("phaseWindow").asUint(), 20'000u);
    for (const report::Leg &leg : report.legs) {
        ASSERT_TRUE(leg.hasPhases) << leg.trace << "/" << leg.policy;
        EXPECT_EQ(leg.phases.window, 20'000u);
        EXPECT_FALSE(leg.phases.records.empty());
    }

    const Json *phases = report.extras.find("phases");
    ASSERT_NE(phases, nullptr);
    EXPECT_EQ(phases->at("window").asUint(), 20'000u);
    const Json &per_policy = phases->at("perPolicy");
    for (const char *name : {"LRU", "GHRP"}) {
        const Json *entry = per_policy.find(name);
        ASSERT_NE(entry, nullptr) << name;
        EXPECT_GT(entry->at("records").asUint(), 0u);
        EXPECT_GE(entry->at("maxStride").asUint(), 1u);
        EXPECT_GE(entry->at("icacheMpkiMax").asDouble(),
                  entry->at("icacheMpkiMin").asDouble());
    }

    // The whole document still round-trips bit-identically.
    const std::string once = report.toJson().dump(2);
    EXPECT_EQ(RunReport::fromJson(Json::parse(once)).toJson().dump(2),
              once);
}

TEST(PhaseReport, WindowZeroProducesZeroReportDelta)
{
    const core::SuiteOptions options = phaseSuiteOptions(0);
    const RunReport report = report::buildSuiteReport(
        "phase_suite", options, core::runSuite(options));

    EXPECT_EQ(report.extras.find("phases"), nullptr);
    for (const report::Leg &leg : report.legs) {
        EXPECT_FALSE(leg.hasPhases);
        EXPECT_EQ(report::legToJson(leg).find("phases"), nullptr);
    }
    EXPECT_EQ(report.options.at("phaseWindow").asUint(), 0u);
}

/** Keep the simulation payload plus the phases extras; strip identity,
 *  timing, capture and the process-global telemetry. */
std::string
phaseNormalizedDump(RunReport r)
{
    r.runId.clear();
    r.createdUnix = 0;
    r.build.clear();
    r.environment.clear();
    r.options = Json::object();
    r.sweep = report::SweepStats{};
    Json extras = Json::object();
    if (const Json *phases = r.extras.find("phases"))
        extras.set("phases", *phases);
    r.extras = std::move(extras);
    for (report::Leg &leg : r.legs)
        leg.seconds = 0.0;
    return r.toJson().dump(2);
}

TEST(PhaseReport, ShardMergeReproducesPhasesBitIdentically)
{
    const core::SuiteOptions cell = phaseSuiteOptions();
    const RunReport reference = report::buildSuiteReport(
        "phase-merge", cell, core::runSuite(cell));

    std::vector<RunReport> shards;
    for (const frontend::PolicySpec &policy : cell.policies) {
        core::SuiteOptions shard = cell;
        shard.policies = {policy};
        shards.push_back(report::buildSuiteReport(
            "phase-merge", shard, core::runSuite(shard)));
    }
    const RunReport merged =
        report::mergeShardReports("phase-merge", cell, shards);
    EXPECT_EQ(phaseNormalizedDump(merged),
              phaseNormalizedDump(reference));
    ASSERT_NE(merged.extras.find("phases"), nullptr);
    for (const report::Leg &leg : merged.legs)
        EXPECT_TRUE(leg.hasPhases);
}

TEST(PhaseRender, RenderCheckAndDiffSurfaces)
{
    const core::SuiteOptions options = phaseSuiteOptions();
    const RunReport report = report::buildSuiteReport(
        "phase_suite", options, core::runSuite(options));

    const std::string text = report::renderPhases(report);
    EXPECT_NE(text.find("GHRP"), std::string::npos);
    EXPECT_NE(text.find("records"), std::string::npos);
    EXPECT_NE(text.find("I$ MPKI"), std::string::npos);

    const report::PhaseCheckResult ok = report::checkPhases(report);
    EXPECT_TRUE(ok.ok) << ok.text;
    EXPECT_NE(ok.text.find("OK"), std::string::npos);

    // One .dat per phase leg plus one overlay .gp.
    const auto files = report::phaseFiles(report);
    ASSERT_EQ(files.size(), report.legs.size() + 1);
    EXPECT_NE(files.front().first.find("phase_"), std::string::npos);
    EXPECT_NE(files.front().second.find("# window"),
              std::string::npos);
    EXPECT_NE(files.back().first.find(".gp"), std::string::npos);

    // A report against itself diffs with zero winner flips.
    const std::string diff = report::diffPhases(report, report);
    EXPECT_NE(diff.find("0 winner flips total"), std::string::npos);

    // A report with no phase legs fails the check instead of lying.
    const core::SuiteOptions off = phaseSuiteOptions(0);
    const RunReport plain = report::buildSuiteReport(
        "phase_suite", off, core::runSuite(off));
    const report::PhaseCheckResult bad = report::checkPhases(plain);
    EXPECT_FALSE(bad.ok);
    EXPECT_TRUE(report::renderPhases(plain).empty());
}

} // anonymous namespace

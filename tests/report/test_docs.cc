/**
 * @file
 * Documentation consistency checks: the committed EXPERIMENTS.md tables
 * must match what `ghrp-report render` produces from the committed seed
 * reports, and every `--flag` a doc mentions must actually exist.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <fstream>
#include <filesystem>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/cli.hh"
#include "report/render.hh"

#ifndef GHRP_SOURCE_DIR
#error "GHRP_SOURCE_DIR must point at the repository root"
#endif

namespace
{

using namespace ghrp;

namespace fs = std::filesystem;

fs::path
sourceDir()
{
    return fs::path(GHRP_SOURCE_DIR);
}

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** The marked block for @p experiment inside @p document, or "". */
std::string
extractBlock(const std::string &document, const std::string &experiment)
{
    const std::string begin = report::beginMarker(experiment);
    const std::string end = report::endMarker(experiment);
    const std::size_t b = document.find(begin);
    if (b == std::string::npos)
        return "";
    const std::size_t e = document.find(end, b);
    if (e == std::string::npos)
        return "";
    return document.substr(b, e + end.size() - b);
}

/**
 * Drift gate: every seed report under reports/seed/ must render
 * byte-for-byte to the marked block committed in EXPERIMENTS.md. When
 * this fails, either the renderer changed or the tables were
 * hand-edited; rerun `ghrp-report render --splice EXPERIMENTS.md` on
 * the seed reports and commit the result.
 */
TEST(Docs, SeedReportsMatchExperimentsTables)
{
    const fs::path seed_dir = sourceDir() / "reports" / "seed";
    ASSERT_TRUE(fs::is_directory(seed_dir))
        << seed_dir << " missing: seed reports must be committed";

    std::vector<fs::path> seeds;
    for (const auto &entry : fs::directory_iterator(seed_dir))
        if (entry.path().extension() == ".json")
            seeds.push_back(entry.path());
    std::sort(seeds.begin(), seeds.end());
    ASSERT_FALSE(seeds.empty()) << "no seed reports in " << seed_dir;

    const std::string experiments =
        readFile(sourceDir() / "EXPERIMENTS.md");
    for (const auto &path : seeds) {
        SCOPED_TRACE(path.string());
        const report::RunReport run =
            report::RunReport::load(path.string());
        const std::string committed =
            extractBlock(experiments, run.experiment);
        ASSERT_FALSE(committed.empty())
            << "EXPERIMENTS.md has no marker block for "
            << run.experiment;
        EXPECT_EQ(report::renderBlock(run), committed)
            << "EXPERIMENTS.md drifted from " << path
            << "; regenerate with ghrp-report render --splice";
    }
}

/** Collect every `--flag` token mentioned in @p text. */
std::set<std::string>
flagTokens(const std::string &text)
{
    std::set<std::string> flags;
    for (std::size_t i = 0; i + 2 < text.size(); ++i) {
        if (text[i] != '-' || text[i + 1] != '-')
            continue;
        if (i > 0 && (text[i - 1] == '-' || std::isalnum(
                static_cast<unsigned char>(text[i - 1]))))
            continue;
        std::size_t j = i + 2;
        if (!std::isalpha(static_cast<unsigned char>(text[j])))
            continue;
        std::string name;
        while (j < text.size() &&
               (std::isalnum(static_cast<unsigned char>(text[j])) ||
                text[j] == '-' || text[j] == '_'))
            name.push_back(text[j++]);
        flags.insert(name);
        i = j - 1;
    }
    return flags;
}

/**
 * Every `--flag` the docs mention must be a real flag: either a
 * simulator CLI flag registered in core::knownCliFlags(), a ghrp-report
 * subcommand option, or a known external tool's flag. Catches docs that
 * advertise flags the binaries no longer (or never) parsed.
 */
TEST(Docs, MentionedFlagsExist)
{
    std::set<std::string> known;
    for (const auto &flag : core::knownCliFlags())
        known.insert(flag.name);
    // ghrp-report options (parsed in tools/ghrp_report.cc).
    for (const char *name : {"splice", "check-docs", "check",
                             "max-regress", "out-dir"})
        known.insert(name);
    // External tools whose invocations the docs quote.
    for (const char *name : {"build", "test-dir", "output-on-failure",
                             "parallel", "benchmark_filter",
                             "benchmark_out", "benchmark_out_format"})
        known.insert(name);

    for (const char *doc : {"README.md", "DESIGN.md", "EXPERIMENTS.md"}) {
        SCOPED_TRACE(doc);
        const std::set<std::string> mentioned =
            flagTokens(readFile(sourceDir() / doc));
        EXPECT_FALSE(mentioned.empty());
        for (const auto &flag : mentioned)
            EXPECT_TRUE(known.count(flag))
                << doc << " mentions unknown flag --" << flag;
    }
}

/**
 * Inverse direction for the user-facing flags: the core runner flags
 * must all be documented in README.md's flag list.
 */
TEST(Docs, CoreSweepFlagsDocumented)
{
    const std::string readme = readFile(sourceDir() / "README.md");
    for (const char *name : {"traces", "instructions", "seed", "jobs",
                             "trace-cache", "leg-times", "quiet",
                             "report"})
        EXPECT_NE(readme.find(std::string("--") + name),
                  std::string::npos)
            << "README.md does not document --" << name;
}

} // namespace

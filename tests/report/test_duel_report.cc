/**
 * @file
 * Schema-minor-3 tests: the per-leg "duel" subtree must round-trip
 * bit-identically (legs are the crash-resume/shard-merge currency),
 * buildSuiteReport must synthesize the extras.oracle per-trace
 * best-static aggregate and the extras.dueling summaries from the
 * suite results alone, merged shard reports must carry identical duel
 * extras, and the rendered block must show the oracle comparison.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/runner.hh"
#include "report/render.hh"
#include "report/report.hh"

namespace
{

using namespace ghrp;
using report::Json;
using report::RunReport;

frontend::FrontendResult
duelResult()
{
    frontend::FrontendResult r;
    r.traceName = "trace-0";
    r.policy = "duel:GHRP,LRU";
    r.totalInstructions = 1'000'000;
    r.measuredInstructions = 800'000;
    r.icache.accesses = 100'000;
    r.icache.misses = 1'000;
    r.icache.hits = 99'000;
    r.icacheMpki = 1.25;
    r.btb.accesses = 30'000;
    r.btb.misses = 600;
    r.btb.hits = 29'400;
    r.btbMpki = 0.75;
    r.hasDuel = true;
    r.icacheDuel.finalPsel = -37;
    r.icacheDuel.leaderMissesA = 420;
    r.icacheDuel.leaderMissesB = 383;
    r.icacheDuel.winnerFlips = 5;
    r.icacheDuel.sampleStride = 4;
    r.icacheDuel.trajectory = {0, -3, -11, -20, -37};
    r.btbDuel.finalPsel = 12;
    r.btbDuel.leaderMissesA = 100;
    r.btbDuel.leaderMissesB = 112;
    r.btbDuel.winnerFlips = 1;
    r.btbDuel.sampleStride = 1;
    r.btbDuel.trajectory = {1, 2, 12};
    return r;
}

TEST(DuelLeg, RoundTripsThroughJsonBitIdentically)
{
    const report::Leg leg =
        report::makeLeg("trace-0", "duel:GHRP,LRU", duelResult(), 0.5);
    ASSERT_TRUE(leg.hasDuel);
    EXPECT_EQ(leg.duelIcache.finalPsel, -37);
    EXPECT_EQ(leg.duelBtb.trajectory,
              (std::vector<std::int64_t>{1, 2, 12}));

    const std::string once = report::legToJson(leg).dump(2);
    const report::Leg reparsed =
        report::legFromJson(Json::parse(once));
    EXPECT_EQ(report::legToJson(reparsed).dump(2), once);
    EXPECT_TRUE(reparsed.hasDuel);
    EXPECT_EQ(reparsed.duelIcache.sampleStride, 4u);
    EXPECT_EQ(reparsed.duelIcache.trajectory, leg.duelIcache.trajectory);

    // toFrontendResult is the exact inverse of makeLeg — the resume
    // path must restore the duel telemetry too.
    const frontend::FrontendResult restored =
        report::toFrontendResult(reparsed);
    EXPECT_TRUE(restored.hasDuel);
    EXPECT_EQ(restored.icacheDuel.finalPsel, -37);
    EXPECT_EQ(restored.icacheDuel.leaderMissesA, 420u);
    EXPECT_EQ(restored.icacheDuel.winnerFlips, 5u);
    EXPECT_EQ(restored.btbDuel.finalPsel, 12);
    EXPECT_EQ(restored.btbDuel.trajectory, duelResult().btbDuel.trajectory);
}

TEST(DuelLeg, NonDuelLegsSerializeWithoutDuelSubtree)
{
    frontend::FrontendResult r = duelResult();
    r.hasDuel = false;
    const report::Leg leg = report::makeLeg("trace-0", "LRU", r, 0.0);
    EXPECT_FALSE(leg.hasDuel);
    const Json j = report::legToJson(leg);
    EXPECT_EQ(j.find("duel"), nullptr);
    EXPECT_FALSE(report::legFromJson(j).hasDuel);
}

core::SuiteOptions
duelSuiteOptions()
{
    core::SuiteOptions options;
    options.numTraces = 2;
    options.instructionOverride = 150'000;
    options.jobs = 1;
    options.policies = {frontend::PolicyKind::Lru,
                        frontend::PolicyKind::Srrip,
                        frontend::parsePolicySpec("duel:srrip,lru")};
    return options;
}

TEST(DuelReport, BuildSuiteReportSynthesizesOracleAndDuelingExtras)
{
    const core::SuiteOptions options = duelSuiteOptions();
    const core::SuiteResults results = core::runSuite(options);
    const RunReport report =
        report::buildSuiteReport("duel_suite", options, results);

    // The oracle is an extras subtree, NEVER a policy row (diff
    // tooling matches rows by name).
    ASSERT_EQ(report.policies.size(), 3u);
    for (const report::PolicySummary &p : report.policies)
        EXPECT_EQ(p.policy.find("oracle"), std::string::npos);

    const Json *oracle = report.extras.find("oracle");
    ASSERT_NE(oracle, nullptr);
    ASSERT_EQ(oracle->at("staticPolicies").size(), 2u);
    EXPECT_EQ(oracle->at("staticPolicies").asArray()[0].asString(),
              "LRU");
    EXPECT_EQ(oracle->at("staticPolicies").asArray()[1].asString(),
              "SRRIP");

    // Per structure: per-trace minima over the static policies, and
    // meanMpki = mean of those minima.
    const std::vector<double> lru =
        results.icacheMpki(frontend::PolicyKind::Lru);
    const std::vector<double> srrip =
        results.icacheMpki(frontend::PolicyKind::Srrip);
    double mean_min = 0.0;
    for (std::size_t t = 0; t < lru.size(); ++t)
        mean_min += std::min(lru[t], srrip[t]);
    mean_min /= static_cast<double>(lru.size());
    const Json &icache = oracle->at("icache");
    EXPECT_DOUBLE_EQ(icache.at("meanMpki").asDouble(), mean_min);
    ASSERT_EQ(icache.at("perTrace").size(), lru.size());
    for (std::size_t t = 0; t < lru.size(); ++t) {
        const Json &row = icache.at("perTrace").asArray()[t];
        EXPECT_DOUBLE_EQ(row.at("mpki").asDouble(),
                         std::min(lru[t], srrip[t]));
        EXPECT_EQ(row.at("policy").asString(),
                  lru[t] <= srrip[t] ? "LRU" : "SRRIP");
    }

    // The dueling summary is keyed by the canonical spec name and
    // compares against the oracle mean.
    const Json *dueling = report.extras.find("dueling");
    ASSERT_NE(dueling, nullptr);
    const Json *entry = dueling->find("duel:SRRIP,LRU");
    ASSERT_NE(entry, nullptr);
    const double duel_mean = core::SuiteResults::mean(results.icacheMpki(
        frontend::parsePolicySpec("duel:srrip,lru")));
    EXPECT_DOUBLE_EQ(entry->at("icache").at("meanMpki").asDouble(),
                     duel_mean);
    EXPECT_DOUBLE_EQ(
        entry->at("icache").at("oracleMeanMpki").asDouble(), mean_min);
    if (mean_min > 0.0)
        EXPECT_DOUBLE_EQ(
            entry->at("icache").at("vsOraclePct").asDouble(),
            (duel_mean - mean_min) / mean_min * 100.0);
    ASSERT_EQ(entry->at("perTrace").size(), lru.size());
    const Json &first = entry->at("perTrace").asArray()[0];
    EXPECT_NE(first.at("icache").find("finalPsel"), nullptr);
    EXPECT_NE(first.at("icache").find("trajectory"), nullptr);

    // The whole document still round-trips bit-identically.
    const std::string once = report.toJson().dump(2);
    EXPECT_EQ(RunReport::fromJson(Json::parse(once)).toJson().dump(2),
              once);
}

TEST(DuelReport, RenderedBlockShowsOracleComparison)
{
    const core::SuiteOptions options = duelSuiteOptions();
    const core::SuiteResults results = core::runSuite(options);
    const RunReport report =
        report::buildSuiteReport("duel_suite", options, results);

    const std::string block = report::renderBlock(report);
    EXPECT_NE(block.find("Oracle (per-trace best static):"),
              std::string::npos);
    EXPECT_NE(block.find("duel:SRRIP,LRU vs oracle:"),
              std::string::npos);
    EXPECT_NE(block.find("duel:SRRIP,LRU"), std::string::npos);

    // Reports without dueling render without the oracle footer.
    core::SuiteOptions plain = options;
    plain.policies = {frontend::PolicyKind::Lru};
    const RunReport plain_report = report::buildSuiteReport(
        "plain_suite", plain, core::runSuite(plain));
    EXPECT_EQ(report::renderBlock(plain_report).find("Oracle"),
              std::string::npos);
}

/** Keep the simulation payload plus the oracle/dueling extras; strip
 *  identity, timing, capture and the process-global telemetry. */
std::string
duelNormalizedDump(RunReport r)
{
    r.runId.clear();
    r.createdUnix = 0;
    r.build.clear();
    r.environment.clear();
    r.options = Json::object();
    r.sweep = report::SweepStats{};
    Json extras = Json::object();
    if (const Json *oracle = r.extras.find("oracle"))
        extras.set("oracle", *oracle);
    if (const Json *dueling = r.extras.find("dueling"))
        extras.set("dueling", *dueling);
    r.extras = std::move(extras);
    for (report::Leg &leg : r.legs)
        leg.seconds = 0.0;
    return r.toJson().dump(2);
}

TEST(DuelReport, ShardMergeReproducesDuelExtrasBitIdentically)
{
    const core::SuiteOptions cell = duelSuiteOptions();
    const RunReport reference = report::buildSuiteReport(
        "duel-merge", cell, core::runSuite(cell));

    std::vector<RunReport> shards;
    for (const frontend::PolicySpec &policy : cell.policies) {
        core::SuiteOptions shard = cell;
        shard.policies = {policy};
        shards.push_back(report::buildSuiteReport(
            "duel-merge", shard, core::runSuite(shard)));
    }
    const RunReport merged =
        report::mergeShardReports("duel-merge", cell, shards);
    EXPECT_EQ(duelNormalizedDump(merged), duelNormalizedDump(reference));
    ASSERT_NE(merged.extras.find("oracle"), nullptr);
    ASSERT_NE(merged.extras.find("dueling"), nullptr);
}

} // anonymous namespace

/** @file Tests for the report renderer, diff and trajectory layers. */

#include <gtest/gtest.h>

#include "report/render.hh"

namespace
{

using namespace ghrp;
using report::DiffOptions;
using report::DiffResult;
using report::PolicySummary;
using report::RunReport;

PolicySummary
summary(const std::string &policy, double icache, double btb,
        double icache_vs_lru_pct, bool vs_lru_present)
{
    PolicySummary s;
    s.policy = policy;
    s.icacheMeanMpki = icache;
    s.btbMeanMpki = btb;
    if (vs_lru_present) {
        s.icacheVsLru.present = true;
        s.icacheVsLru.meanPct = icache_vs_lru_pct;
        s.icacheVsLru.ciHalfWidthPct = 1.0;
        s.icacheVsLru.traces = 4;
        s.btbVsLru.present = true;
        s.btbVsLru.meanPct = icache_vs_lru_pct / 2;
        s.btbVsLru.ciHalfWidthPct = 1.0;
        s.btbVsLru.traces = 4;
    }
    return s;
}

/** A frozen fig03-style report with fixed aggregates. */
RunReport
frozenHeadlineReport()
{
    RunReport report;
    report.runId = "fig03_icache_scurve-1700000000-1";
    report.experiment = "fig03_icache_scurve";
    report.policies = {
        summary("LRU", 4.58, 1.44, 0.0, false),
        summary("Random", 5.29, 1.64, 15.6, true),
        summary("SRRIP", 4.77, 1.42, 4.3, true),
        summary("SDBP", 4.55, 1.44, -0.5, true),
        summary("GHRP", 4.41, 1.45, -3.6, true),
    };
    report.sweep.wallSeconds = 10.0;
    report.sweep.legs = 120;
    report.sweep.legsPerSec = 12.0;
    report.sweep.mInstrPerSec = 100.0;
    return report;
}

/**
 * Golden render: the exact Markdown block for a frozen report. If this
 * test breaks, the committed EXPERIMENTS.md tables will drift too —
 * regenerate them (ghrp-report render --splice) in the same change.
 */
TEST(Render, GoldenHeadlineBlock)
{
    const char *expected =
        "<!-- ghrp-report:fig03_icache_scurve:begin -->\n"
        "| policy | paper MPKI | paper vs LRU | measured MPKI | "
        "measured vs LRU |\n"
        "|---|---|---|---|---|\n"
        "| LRU    | 1.05       | -            | 4.58          | "
        "-               |\n"
        "| Random | 1.14       | +8.6%        | 5.29          | "
        "+15.6%          |\n"
        "| SRRIP  | 1.02       | -2.9%        | 4.77          | "
        "+4.3%           |\n"
        "| SDBP   | 1.10       | +4.8%        | 4.55          | "
        "-0.5%           |\n"
        "| GHRP   | 0.86       | -18.1%       | 4.41          | "
        "-3.6%           |\n"
        "<!-- ghrp-report:fig03_icache_scurve:end -->";
    EXPECT_EQ(report::renderBlock(frozenHeadlineReport()), expected);
}

TEST(Render, RenderIsDeterministic)
{
    const RunReport report = frozenHeadlineReport();
    EXPECT_EQ(report::renderBlock(report), report::renderBlock(report));
}

TEST(Render, GenericExperimentRendersPolicyTable)
{
    RunReport report = frozenHeadlineReport();
    report.experiment = "fig06_icache_perbench";
    const std::string block = report::renderBlock(report);
    EXPECT_NE(block.find("fig06_icache_perbench:begin"),
              std::string::npos);
    EXPECT_NE(block.find("I-cache MPKI"), std::string::npos);
    EXPECT_EQ(block.find("paper MPKI"), std::string::npos);
}

TEST(Render, MetricOnlyReportRendersMetricsTable)
{
    RunReport report;
    report.experiment = "tab01_storage";
    report.metrics = {{"ghrp_total_kib", 5.8}, {"overhead_pct", 9.1}};
    const std::string block = report::renderBlock(report);
    EXPECT_NE(block.find("| metric"), std::string::npos);
    EXPECT_NE(block.find("ghrp_total_kib"), std::string::npos);
    EXPECT_NE(block.find("5.8"), std::string::npos);
}

TEST(Render, SpliceReplacesMarkedBlock)
{
    const RunReport report = frozenHeadlineReport();
    std::string doc = "# Title\n\nintro text\n\n"
                      "<!-- ghrp-report:fig03_icache_scurve:begin -->\n"
                      "stale table\n"
                      "<!-- ghrp-report:fig03_icache_scurve:end -->\n\n"
                      "outro text\n";
    ASSERT_TRUE(report::spliceBlock(doc, report));
    EXPECT_EQ(doc.find("stale table"), std::string::npos);
    EXPECT_NE(doc.find("| GHRP   | 0.86"), std::string::npos);
    EXPECT_NE(doc.find("intro text"), std::string::npos);
    EXPECT_NE(doc.find("outro text"), std::string::npos);

    // Splicing the same report again is idempotent.
    std::string again = doc;
    ASSERT_TRUE(report::spliceBlock(again, report));
    EXPECT_EQ(again, doc);

    std::string no_markers = "# Title\nno markers here\n";
    EXPECT_FALSE(report::spliceBlock(no_markers, report));
    EXPECT_EQ(no_markers, "# Title\nno markers here\n");
}

TEST(Diff, IdenticalReportsPassCheck)
{
    const RunReport report = frozenHeadlineReport();
    DiffOptions options;
    options.check = true;
    const DiffResult result = report::diffReports(report, report, options);
    EXPECT_FALSE(result.mpkiChanged);
    EXPECT_FALSE(result.throughputRegressed);
    EXPECT_TRUE(result.ok());
}

TEST(Diff, KnownMpkiDeltaDetected)
{
    const RunReport base = frozenHeadlineReport();
    RunReport cand = frozenHeadlineReport();
    cand.policies[4].icacheMeanMpki += 0.07;  // GHRP drifts

    DiffOptions options;
    options.check = true;
    const DiffResult result = report::diffReports(base, cand, options);
    EXPECT_TRUE(result.mpkiChanged);
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.text.find("+0.0700"), std::string::npos);
    EXPECT_NE(result.text.find("FAIL"), std::string::npos);
}

TEST(Diff, ThroughputGate)
{
    const RunReport base = frozenHeadlineReport();
    RunReport cand = frozenHeadlineReport();
    cand.sweep.legsPerSec = base.sweep.legsPerSec * 0.80;  // -20%

    DiffOptions options;
    options.check = true;
    options.maxRegressPct = 5.0;
    EXPECT_FALSE(report::diffReports(base, cand, options).ok());

    options.maxRegressPct = 25.0;  // loose gate tolerates -20%
    EXPECT_TRUE(report::diffReports(base, cand, options).ok());

    // Without --check the regression is reported but not gated.
    options.check = false;
    options.maxRegressPct = 5.0;
    const DiffResult ungated = report::diffReports(base, cand, options);
    EXPECT_TRUE(ungated.throughputRegressed);
    EXPECT_TRUE(ungated.ok());
}

TEST(Diff, AddedAndRemovedPoliciesAreChanges)
{
    const RunReport base = frozenHeadlineReport();
    RunReport cand = frozenHeadlineReport();
    cand.policies.pop_back();

    DiffOptions options;
    options.check = true;
    const DiffResult result = report::diffReports(base, cand, options);
    EXPECT_TRUE(result.mpkiChanged);
    EXPECT_NE(result.text.find("removed"), std::string::npos);
}

TEST(Diff, MetricOnlyReportsCompareMetrics)
{
    RunReport base, cand;
    base.experiment = cand.experiment = "tab01_storage";
    base.metrics = {{"kib", 5.8}};
    cand.metrics = {{"kib", 6.0}};

    DiffOptions options;
    options.check = true;
    const DiffResult result = report::diffReports(base, cand, options);
    EXPECT_TRUE(result.mpkiChanged);
    EXPECT_NE(result.text.find("kib"), std::string::npos);
}

TEST(Trajectory, EmitsThroughputAndPolicyPoints)
{
    const auto points = report::trajectoryPoints(frozenHeadlineReport());
    ASSERT_GE(points.size(), 2u + 2u * 5u);
    EXPECT_EQ(points[0].first, "fig03_icache_scurve_legs_per_sec");
    EXPECT_DOUBLE_EQ(points[0].second.at("value").asDouble(), 12.0);
    EXPECT_EQ(points[0].second.at("unit").asString(), "legs/s");

    bool found_ghrp = false;
    for (const auto &[name, point] : points)
        if (name == "fig03_icache_scurve_ghrp_icache_mpki") {
            found_ghrp = true;
            EXPECT_DOUBLE_EQ(point.at("value").asDouble(), 4.41);
        }
    EXPECT_TRUE(found_ghrp);
}

} // namespace

/** @file Schema tests for the ghrp-run-report document. */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "report/report.hh"

namespace
{

using namespace ghrp;
using report::Json;
using report::ReportBuilder;
using report::ReportError;
using report::RunReport;

frontend::FrontendResult
fakeResult(double icache_mpki, double btb_mpki)
{
    frontend::FrontendResult r;
    r.totalInstructions = 1'000'000;
    r.warmupInstructions = 500'000;
    r.measuredInstructions = 500'000;
    r.icache.accesses = 120'000;
    r.icache.misses = 2'000;
    r.icache.hits = 118'000;
    r.icache.evictions = 1'500;
    r.icache.deadEvictions = 300;
    r.icache.bypasses = 50;
    r.btb.accesses = 40'000;
    r.btb.misses = 700;
    r.btb.hits = 39'300;
    r.icacheMpki = icache_mpki;
    r.btbMpki = btb_mpki;
    r.condBranches = 90'000;
    r.condMispredicts = 4'200;
    r.rasReturns = 8'000;
    r.indirectBranches = 1'000;
    r.indirectMispredicts = 150;
    return r;
}

RunReport
makeReport()
{
    ReportBuilder builder("test_experiment");
    Json options = Json::object();
    options.set("traces", 2);
    builder.setOptions(std::move(options));
    builder.addLeg("trace-0", "LRU", fakeResult(4.0, 1.5), 0.25);
    builder.addLeg("trace-0", "GHRP", fakeResult(3.5, 1.4), 0.5);
    builder.addMetric("some_metric", 12.5);
    builder.setSweep(0.75, 2);
    return builder.finish();
}

TEST(RunReport, BuilderPopulatesSchema)
{
    const RunReport report = makeReport();
    EXPECT_EQ(report.versionMajor, report::kSchemaMajor);
    EXPECT_EQ(report.versionMinor, report::kSchemaMinor);
    EXPECT_EQ(report.experiment, "test_experiment");
    EXPECT_NE(report.runId.find("test_experiment-"), std::string::npos);
    EXPECT_GT(report.createdUnix, 0);
    EXPECT_FALSE(report.build.empty());
    EXPECT_FALSE(report.environment.empty());
    ASSERT_EQ(report.legs.size(), 2u);
    EXPECT_EQ(report.legs[0].policy, "LRU");
    EXPECT_DOUBLE_EQ(report.legs[0].icache.mpki, 4.0);
    EXPECT_EQ(report.legs[0].icache.misses, 2'000u);
    EXPECT_EQ(report.sweep.legs, 2u);
    EXPECT_EQ(report.sweep.simulatedInstructions, 2'000'000u);
    EXPECT_DOUBLE_EQ(report.sweep.wallSeconds, 0.75);
    EXPECT_NEAR(report.sweep.legsPerSec, 2 / 0.75, 1e-12);
}

TEST(RunReport, JsonRoundTripIsBitIdentical)
{
    const RunReport report = makeReport();
    const std::string once = report.toJson().dump(2);
    const RunReport reparsed =
        RunReport::fromJson(Json::parse(once));
    const std::string twice = reparsed.toJson().dump(2);
    EXPECT_EQ(once, twice);

    EXPECT_EQ(reparsed.runId, report.runId);
    EXPECT_EQ(reparsed.experiment, report.experiment);
    EXPECT_EQ(reparsed.legs.size(), report.legs.size());
    EXPECT_EQ(reparsed.metrics.size(), report.metrics.size());
    EXPECT_EQ(reparsed.build, report.build);
}

TEST(RunReport, WriteAndLoad)
{
    const std::string path =
        (std::filesystem::temp_directory_path() / "ghrp_test_report.json")
            .string();
    const RunReport report = makeReport();
    report.write(path);
    const RunReport loaded = RunReport::load(path);
    EXPECT_EQ(loaded.toJson().dump(2), report.toJson().dump(2));
    std::remove(path.c_str());
}

TEST(RunReport, UnknownFieldsIgnored)
{
    Json doc = makeReport().toJson();
    doc.set("future_field", "ignored");
    Json nested = Json::object();
    nested.set("x", 1);
    doc.set("another", std::move(nested));
    const RunReport loaded = RunReport::fromJson(doc);
    EXPECT_EQ(loaded.experiment, "test_experiment");
}

TEST(RunReport, MajorVersionAboveSupportedRejected)
{
    Json doc = makeReport().toJson();
    Json version = Json::object();
    version.set("major", report::kSchemaMajor + 1);
    version.set("minor", 0);
    doc.set("version", std::move(version));
    EXPECT_THROW(RunReport::fromJson(doc), ReportError);
}

TEST(RunReport, MinorVersionAboveSupportedAccepted)
{
    Json doc = makeReport().toJson();
    Json version = Json::object();
    version.set("major", report::kSchemaMajor);
    version.set("minor", report::kSchemaMinor + 7);
    doc.set("version", std::move(version));
    const RunReport loaded = RunReport::fromJson(doc);
    EXPECT_EQ(loaded.versionMinor, report::kSchemaMinor + 7);
}

TEST(RunReport, WrongSchemaNameRejected)
{
    Json doc = makeReport().toJson();
    doc.set("schema", "something-else");
    EXPECT_THROW(RunReport::fromJson(doc), ReportError);

    Json empty = Json::object();
    EXPECT_THROW(RunReport::fromJson(empty), ReportError);
}

TEST(RunReport, SuiteReportCoversEveryLegAndPolicy)
{
    core::SuiteOptions options;
    options.numTraces = 2;
    options.instructionOverride = 150'000;
    options.jobs = 1;
    const core::SuiteResults results = core::runSuite(options);

    const RunReport report =
        report::buildSuiteReport("suite_test", options, results);
    EXPECT_EQ(report.experiment, "suite_test");
    EXPECT_EQ(report.legs.size(),
              options.policies.size() * options.numTraces);
    ASSERT_EQ(report.policies.size(), options.policies.size());
    EXPECT_EQ(report.policies.front().policy, "LRU");
    EXPECT_FALSE(report.policies.front().icacheVsLru.present);
    EXPECT_TRUE(report.policies.back().icacheVsLru.present);
    EXPECT_GT(report.sweep.wallSeconds, 0.0);
    EXPECT_EQ(report.sweep.legs, results.totalLegs());

    // The options subtree captures the full suite configuration.
    EXPECT_EQ(report.options.at("numTraces").asUint(), 2u);
    EXPECT_EQ(report.options.at("instructionOverride").asUint(),
              150'000u);
    EXPECT_EQ(report.options.at("policies").size(),
              options.policies.size());

    // And the whole thing survives a serialize/parse cycle.
    const std::string once = report.toJson().dump(2);
    EXPECT_EQ(RunReport::fromJson(Json::parse(once)).toJson().dump(2),
              once);
}

} // namespace

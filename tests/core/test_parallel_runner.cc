/**
 * @file
 * Differential tests for the parallel suite runner: the sweep must be
 * bit-identical for every worker count. Per-trace seeds are derived
 * purely from (baseSeed, trace index) and every leg writes into a
 * pre-sized slot, so neither the simulated results nor the aggregation
 * may depend on scheduling. These tests pin that guarantee down by
 * comparing complete per-trace FrontendResults — MPKI values and the
 * raw hit/miss/bypass/eviction counters — across jobs = 1, 2 and 8,
 * repeated for several base seeds.
 */

#include <gtest/gtest.h>

#include <cstddef>

#include "core/runner.hh"

namespace
{

using namespace ghrp;

core::SuiteOptions
smallSuite(std::uint64_t seed)
{
    core::SuiteOptions options;
    options.numTraces = 4;
    options.baseSeed = seed;
    options.instructionOverride = 60'000;
    return options;
}

void
expectStatsIdentical(const stats::AccessStats &a, const stats::AccessStats &b)
{
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.hits, b.hits);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.bypasses, b.bypasses);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_EQ(a.deadEvictions, b.deadEvictions);
}

/**
 * Assert that two suite runs produced bit-identical results. Timing
 * fields (legSeconds, wallSeconds) are deliberately not compared: they
 * are the only scheduling-dependent outputs.
 */
void
expectResultsIdentical(const core::SuiteResults &a,
                       const core::SuiteResults &b)
{
    ASSERT_EQ(a.specs.size(), b.specs.size());
    for (std::size_t i = 0; i < a.specs.size(); ++i) {
        EXPECT_EQ(a.specs[i].seed, b.specs[i].seed);
        EXPECT_EQ(a.specs[i].category, b.specs[i].category);
    }

    ASSERT_EQ(a.results.size(), b.results.size());
    for (const auto &[policy, legs] : a.results) {
        const auto it = b.results.find(policy);
        ASSERT_NE(it, b.results.end());
        ASSERT_EQ(legs.size(), it->second.size());
        for (std::size_t i = 0; i < legs.size(); ++i) {
            const frontend::FrontendResult &x = legs[i];
            const frontend::FrontendResult &y = it->second[i];
            SCOPED_TRACE(::testing::Message()
                         << frontend::policyName(policy) << " trace " << i);

            // Exact equality, not EXPECT_NEAR: the guarantee is
            // bit-identical, not merely close.
            EXPECT_EQ(x.icacheMpki, y.icacheMpki);
            EXPECT_EQ(x.btbMpki, y.btbMpki);
            expectStatsIdentical(x.icache, y.icache);
            expectStatsIdentical(x.btb, y.btb);

            EXPECT_EQ(x.totalInstructions, y.totalInstructions);
            EXPECT_EQ(x.warmupInstructions, y.warmupInstructions);
            EXPECT_EQ(x.measuredInstructions, y.measuredInstructions);
            EXPECT_EQ(x.condBranches, y.condBranches);
            EXPECT_EQ(x.condMispredicts, y.condMispredicts);
            EXPECT_EQ(x.btbTargetMismatches, y.btbTargetMismatches);
            EXPECT_EQ(x.rasReturns, y.rasReturns);
            EXPECT_EQ(x.rasMispredicts, y.rasMispredicts);
            EXPECT_EQ(x.indirectBranches, y.indirectBranches);
            EXPECT_EQ(x.indirectMispredicts, y.indirectMispredicts);
            EXPECT_EQ(x.traceName, y.traceName);
            EXPECT_EQ(x.policy, y.policy);
        }
    }
}

TEST(ParallelRunner, WorkerCountNeverChangesResults)
{
    for (std::uint64_t seed : {1ull, 42ull, 1234ull}) {
        SCOPED_TRACE(::testing::Message() << "base seed " << seed);

        core::SuiteOptions serial = smallSuite(seed);
        serial.jobs = 1;
        const core::SuiteResults reference = core::runSuite(serial);

        for (unsigned jobs : {2u, 8u}) {
            SCOPED_TRACE(::testing::Message() << "jobs " << jobs);
            core::SuiteOptions options = smallSuite(seed);
            options.jobs = jobs;
            expectResultsIdentical(reference, core::runSuite(options));
        }
    }
}

TEST(ParallelRunner, HardwareDefaultMatchesSerial)
{
    core::SuiteOptions serial = smallSuite(42);
    serial.jobs = 1;
    core::SuiteOptions dflt = smallSuite(42);
    dflt.jobs = 0;  // resolve to hardware concurrency
    expectResultsIdentical(core::runSuite(serial), core::runSuite(dflt));
}

TEST(ParallelRunner, RepeatedParallelRunsIdentical)
{
    // Two parallel runs with the same options — interleaving differs,
    // results must not.
    core::SuiteOptions options = smallSuite(7);
    options.jobs = 8;
    expectResultsIdentical(core::runSuite(options), core::runSuite(options));
}

TEST(ParallelRunner, TimingFieldsPopulated)
{
    core::SuiteOptions options = smallSuite(42);
    options.jobs = 2;
    const core::SuiteResults results = core::runSuite(options);

    EXPECT_GT(results.wallSeconds, 0.0);
    EXPECT_EQ(results.totalLegs(),
              options.numTraces * options.policies.size());
    EXPECT_GT(results.simulatedInstructions(), 0u);
    ASSERT_EQ(results.legSeconds.size(), results.results.size());
    for (const auto &[policy, seconds] : results.legSeconds) {
        ASSERT_EQ(seconds.size(), options.numTraces);
        for (double s : seconds)
            EXPECT_GE(s, 0.0);
    }
}

TEST(ParallelRunner, ProgressCoversEveryLeg)
{
    core::SuiteOptions options = smallSuite(42);
    options.jobs = 4;
    std::size_t calls = 0;
    std::size_t last_done = 0;
    std::size_t reported_total = 0;
    const core::SuiteResults results = core::runSuite(
        options, [&](std::size_t done, std::size_t total,
                     const std::string &) {
            ++calls;
            // Serialised callback: completion counter is monotonic even
            // though leg completion order is scheduling-dependent.
            EXPECT_GT(done, last_done);
            last_done = done;
            reported_total = total;
        });
    EXPECT_EQ(calls, results.totalLegs());
    EXPECT_EQ(last_done, results.totalLegs());
    EXPECT_EQ(reported_total, results.totalLegs());
}

TEST(ParallelRunner, SingleLegSuiteRuns)
{
    core::SuiteOptions options = smallSuite(42);
    options.numTraces = 1;
    options.policies = {frontend::PolicyKind::Lru};
    options.jobs = 8;  // more workers than legs must still work
    const core::SuiteResults results = core::runSuite(options);
    ASSERT_EQ(results.totalLegs(), 1u);
    EXPECT_GT(results.results.at(frontend::PolicyKind::Lru)[0].icacheMpki,
              0.0);
}

} // anonymous namespace

/** @file Unit tests for the Belady's-OPT offline simulator. */

#include <gtest/gtest.h>

#include "core/opt.hh"
#include "util/random.hh"
#include "frontend/frontend.hh"
#include "workload/suite.hh"

namespace
{

using namespace ghrp;
using core::OptResult;
using core::simulateOptStream;

TEST(OptStream, ColdMissesOnly)
{
    const OptResult r = simulateOptStream({1, 2, 3, 1, 2, 3}, 1, 4);
    EXPECT_EQ(r.accesses, 6u);
    EXPECT_EQ(r.misses, 3u);
    EXPECT_EQ(r.compulsory, 3u);
}

TEST(OptStream, BeladyClassicExample)
{
    // Fully associative, 3 frames; a textbook reference string.
    const std::vector<std::uint64_t> keys = {7, 0, 1, 2, 0, 3, 0, 4,
                                             2, 3, 0, 3, 2, 1, 2, 0,
                                             1, 7, 0, 1};
    const OptResult r = simulateOptStream(keys, 1, 3);
    // Textbook demand-paging OPT yields 9 faults on this string; our
    // variant additionally bypasses (never caches a block whose next
    // use is farthest), which saves one more.
    EXPECT_EQ(r.misses, 8u);
}

TEST(OptStream, OptNeverWorseThanLruOnAnyStream)
{
    // Differential property against a simple LRU model.
    Rng rng(5);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 20000; ++i)
        keys.push_back(rng.nextZipf(128, 1.2));
    const OptResult opt = simulateOptStream(keys, 4, 4);

    // Reference LRU.
    std::vector<std::vector<std::uint64_t>> sets(4);
    std::uint64_t lru_misses = 0;
    for (std::uint64_t key : keys) {
        auto &s = sets[key % 4];
        bool hit = false;
        for (std::size_t j = 0; j < s.size(); ++j) {
            if (s[j] == key) {
                s.erase(s.begin() + static_cast<std::ptrdiff_t>(j));
                s.push_back(key);
                hit = true;
                break;
            }
        }
        if (!hit) {
            ++lru_misses;
            if (s.size() >= 4)
                s.erase(s.begin());
            s.push_back(key);
        }
    }
    EXPECT_LE(opt.misses, lru_misses);
}

TEST(OptStream, BypassBeatsForcedFill)
{
    // Stream where a never-reused key interleaves a hot pair in a
    // 1-way set: OPT must bypass the cold key and keep the hot one.
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 50; ++i) {
        keys.push_back(0);                              // hot
        keys.push_back(100 + static_cast<unsigned>(i)); // cold, 1-shot
    }
    const OptResult r = simulateOptStream(keys, 1, 1);
    // Misses: 1 for the hot key + 50 cold = 51; hot stays resident.
    EXPECT_EQ(r.misses, 51u);
}

TEST(OptIcache, LowerBoundsOnlinePolicies)
{
    workload::TraceSpec spec;
    spec.category = workload::Category::ShortServer;
    spec.seed = 13;
    spec.name = "opt";
    const trace::Trace tr = workload::buildTrace(spec, 1'000'000);

    const cache::CacheConfig cfg = cache::CacheConfig::icache(64, 8);
    const OptResult opt = core::simulateOptIcache(tr, cfg);

    frontend::FrontendConfig fcfg;
    fcfg.warmupFraction = 0.0;  // compare cold-start to cold-start
    for (frontend::PolicyKind policy : frontend::paperPolicies) {
        fcfg.policy = policy;
        const frontend::FrontendResult r =
            frontend::simulateTrace(fcfg, tr);
        EXPECT_LE(opt.misses, r.icache.misses)
            << frontend::policyName(policy);
    }
    EXPECT_GT(opt.instructions, 999'000u);
}

TEST(OptBtb, LowerBoundsOnlinePolicies)
{
    workload::TraceSpec spec;
    spec.category = workload::Category::ShortServer;
    spec.seed = 17;
    spec.name = "optbtb";
    const trace::Trace tr = workload::buildTrace(spec, 1'000'000);

    const cache::CacheConfig cfg = cache::CacheConfig::btb(4096, 4);
    const OptResult opt = core::simulateOptBtb(tr, cfg);

    frontend::FrontendConfig fcfg;
    fcfg.warmupFraction = 0.0;
    fcfg.btb = cfg;
    for (frontend::PolicyKind policy : frontend::paperPolicies) {
        fcfg.policy = policy;
        const frontend::FrontendResult r =
            frontend::simulateTrace(fcfg, tr);
        EXPECT_LE(opt.misses, r.btb.misses)
            << frontend::policyName(policy);
    }
}

TEST(OptResultStruct, Mpki)
{
    OptResult r;
    r.misses = 10;
    r.instructions = 2000;
    EXPECT_DOUBLE_EQ(r.mpki(), 5.0);
    r.instructions = 0;
    EXPECT_EQ(r.mpki(), 0.0);
}

} // anonymous namespace

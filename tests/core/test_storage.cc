/** @file Unit tests for the Table I storage model. */

#include <gtest/gtest.h>

#include "core/storage.hh"

namespace
{

using namespace ghrp;
using namespace ghrp::core;

TEST(Storage, GhrpBudgetComponents)
{
    predictor::GhrpConfig cfg;
    cfg.tableEntries = 4096;
    cfg.counterBits = 2;
    cfg.historyBits = 16;
    const cache::CacheConfig icache = cache::CacheConfig::icache(64, 8);
    const StorageBudget b = ghrpStorage(icache, cfg, 0);

    // 1024 blocks x (1+1+3+16) bits + 3*4096*2 + 32.
    EXPECT_EQ(b.totalBits(), 1024ull * 21 + 24576 + 32);
    EXPECT_EQ(b.items.size(), 3u);
}

TEST(Storage, GhrpBtbBitsAdded)
{
    predictor::GhrpConfig cfg;
    const cache::CacheConfig icache = cache::CacheConfig::icache(64, 8);
    const StorageBudget without = ghrpStorage(icache, cfg, 0);
    const StorageBudget with = ghrpStorage(icache, cfg, 4096);
    EXPECT_EQ(with.totalBits(), without.totalBits() + 4096);
}

TEST(Storage, PaperExampleOrderOfMagnitude)
{
    // Paper Section III-B: ~5KB overhead, ~8% of a 64KB I-cache with
    // 128B blocks (2-bit counters as in the paper).
    predictor::GhrpConfig cfg;
    cfg.counterBits = 2;
    const cache::CacheConfig exynos =
        cache::CacheConfig::icache(64, 8, 128);
    const StorageBudget b = ghrpStorage(exynos, cfg, 0);
    EXPECT_GT(b.totalKiB(), 3.0);
    EXPECT_LT(b.totalKiB(), 7.0);
    EXPECT_NEAR(b.overheadFraction(exynos.sizeBytes), 0.07, 0.03);
}

TEST(Storage, SdbpLargerThanGhrp)
{
    predictor::GhrpConfig gcfg;
    predictor::SdbpConfig scfg;
    const cache::CacheConfig icache = cache::CacheConfig::icache(64, 8);
    EXPECT_GT(sdbpStorage(icache, scfg).totalBits(),
              ghrpStorage(icache, gcfg, 4096).totalBits());
}

TEST(Storage, KibConversion)
{
    StorageItem item{"x", 8192};
    EXPECT_DOUBLE_EQ(item.kib(), 1.0);
}

} // anonymous namespace

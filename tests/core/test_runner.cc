/** @file Unit tests for suite-result aggregation and the runner. */

#include <gtest/gtest.h>

#include "core/runner.hh"

namespace
{

using namespace ghrp;
using core::SuiteOptions;
using core::SuiteResults;

TEST(Aggregates, Mean)
{
    EXPECT_EQ(SuiteResults::mean({}), 0.0);
    EXPECT_DOUBLE_EQ(SuiteResults::mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Aggregates, SubsetMean)
{
    const std::vector<double> series{10.0, 20.0, 30.0};
    const std::vector<double> base{0.5, 2.0, 3.0};
    const auto [m, n] = SuiteResults::subsetMean(series, base, 1.0);
    EXPECT_EQ(n, 2u);
    EXPECT_DOUBLE_EQ(m, 25.0);
}

TEST(Aggregates, SubsetMeanEmptySubset)
{
    const auto [m, n] =
        SuiteResults::subsetMean({1.0}, {0.1}, 1.0);
    EXPECT_EQ(n, 0u);
    EXPECT_EQ(m, 0.0);
}

TEST(Aggregates, RelativeDifference)
{
    const std::vector<double> rel = SuiteResults::relativeDifference(
        {0.9, 2.2, 5.0}, {1.0, 2.0, 0.001});
    // The near-zero baseline entry is skipped.
    ASSERT_EQ(rel.size(), 2u);
    EXPECT_NEAR(rel[0], -0.1, 1e-12);
    EXPECT_NEAR(rel[1], 0.1, 1e-12);
}

TEST(Aggregates, WinLoss)
{
    const std::vector<double> base{1.0, 1.0, 1.0, 1.0};
    const std::vector<double> series{0.5, 1.0, 1.5, 1.01};
    const SuiteResults::WinLoss wl =
        SuiteResults::winLoss(series, base, 0.02, 0.005);
    EXPECT_EQ(wl.better, 1u);
    EXPECT_EQ(wl.worse, 1u);
    EXPECT_EQ(wl.similar, 2u);
}

TEST(Aggregates, WinLossEpsilonForTinyBaselines)
{
    // Absolute epsilon keeps near-zero MPKI noise in "similar".
    const SuiteResults::WinLoss wl =
        SuiteResults::winLoss({0.004}, {0.001}, 0.02, 0.005);
    EXPECT_EQ(wl.similar, 1u);
}

TEST(Runner, TinySuiteRuns)
{
    SuiteOptions options;
    options.numTraces = 2;
    options.instructionOverride = 150'000;
    options.policies = {frontend::PolicyKind::Lru,
                        frontend::PolicyKind::Ghrp};

    const SuiteResults results = core::runSuite(options);
    ASSERT_EQ(results.specs.size(), 2u);
    ASSERT_EQ(results.results.size(), 2u);
    for (const auto &[policy, runs] : results.results) {
        ASSERT_EQ(runs.size(), 2u);
        for (const auto &r : runs)
            EXPECT_GT(r.icache.accesses, 0u);
    }
    EXPECT_EQ(results.icacheMpki(frontend::PolicyKind::Lru).size(), 2u);
    EXPECT_EQ(results.btbMpki(frontend::PolicyKind::Ghrp).size(), 2u);
}

TEST(Runner, ProgressCallbackInvoked)
{
    SuiteOptions options;
    options.numTraces = 1;
    options.instructionOverride = 100'000;
    options.policies = {frontend::PolicyKind::Lru};
    std::size_t calls = 0, last_total = 0;
    core::runSuite(options,
                   [&](std::size_t done, std::size_t total,
                       const std::string &) {
                       ++calls;
                       last_total = total;
                       EXPECT_LE(done, total);
                   });
    EXPECT_EQ(calls, 1u);
    EXPECT_EQ(last_total, 1u);
}

TEST(Runner, PairedTracesAcrossPolicies)
{
    // The same generated trace must be used for every policy: LRU run
    // twice in one suite must give identical MPKI.
    SuiteOptions options;
    options.numTraces = 1;
    options.instructionOverride = 100'000;
    options.policies = {frontend::PolicyKind::Lru,
                        frontend::PolicyKind::Lru};
    // (Map keying dedupes policies; instead compare across suites.)
    options.policies = {frontend::PolicyKind::Lru};
    const auto a = core::runSuite(options);
    const auto b = core::runSuite(options);
    EXPECT_EQ(a.results.at(frontend::PolicyKind::Lru)[0].icache.misses,
              b.results.at(frontend::PolicyKind::Lru)[0].icache.misses);
}

} // anonymous namespace

/** @file Unit tests for command-line option parsing. */

#include <gtest/gtest.h>

#include <vector>

#include "core/cli.hh"

namespace
{

using ghrp::core::CliOptions;

CliOptions
parse(std::vector<const char *> args)
{
    args.insert(args.begin(), "prog");
    return CliOptions(static_cast<int>(args.size()),
                      const_cast<char **>(args.data()));
}

TEST(Cli, DefaultsWhenAbsent)
{
    const CliOptions cli = parse({});
    EXPECT_EQ(cli.getUint("traces", 7), 7u);
    EXPECT_EQ(cli.getString("name", "x"), "x");
    EXPECT_DOUBLE_EQ(cli.getDouble("f", 1.5), 1.5);
    EXPECT_FALSE(cli.has("quiet"));
}

TEST(Cli, SpaceSeparatedValues)
{
    const CliOptions cli = parse({"--traces", "12", "--name", "hello"});
    EXPECT_EQ(cli.getUint("traces", 0), 12u);
    EXPECT_EQ(cli.getString("name", ""), "hello");
}

TEST(Cli, EqualsSeparatedValues)
{
    const CliOptions cli = parse({"--traces=42", "--f=2.5"});
    EXPECT_EQ(cli.getUint("traces", 0), 42u);
    EXPECT_DOUBLE_EQ(cli.getDouble("f", 0), 2.5);
}

TEST(Cli, BareBooleanFlags)
{
    const CliOptions cli = parse({"--quiet", "--traces", "3"});
    EXPECT_TRUE(cli.has("quiet"));
    EXPECT_EQ(cli.getUint("traces", 0), 3u);
}

TEST(Cli, TrailingBooleanFlag)
{
    const CliOptions cli = parse({"--traces", "3", "--verbose"});
    EXPECT_TRUE(cli.has("verbose"));
}

TEST(CliDeathTest, NonFlagArgumentFatal)
{
    EXPECT_EXIT(parse({"positional"}), ::testing::ExitedWithCode(1),
                "unexpected argument");
}

TEST(CliDeathTest, BooleanUsedAsValueFatal)
{
    const CliOptions cli = parse({"--quiet"});
    EXPECT_EXIT(cli.getUint("quiet", 1), ::testing::ExitedWithCode(1),
                "requires a value");
}

} // anonymous namespace

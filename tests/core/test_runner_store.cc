/** @file Suite-runner integration with the content-addressed trace
 *  store: cached runs must be bit-identical to in-memory runs. */

#include <gtest/gtest.h>

#include <filesystem>

#include "core/runner.hh"

namespace
{

using namespace ghrp;
using core::SuiteOptions;
using core::SuiteResults;

SuiteOptions
tinyOptions()
{
    SuiteOptions options;
    options.numTraces = 2;
    options.instructionOverride = 120'000;
    options.policies = {frontend::PolicyKind::Lru,
                        frontend::PolicyKind::Ghrp};
    return options;
}

void
expectSameResults(const SuiteResults &a, const SuiteResults &b)
{
    ASSERT_EQ(a.results.size(), b.results.size());
    for (const auto &[policy, runs] : a.results) {
        const auto &other = b.results.at(policy);
        ASSERT_EQ(runs.size(), other.size());
        for (std::size_t i = 0; i < runs.size(); ++i) {
            EXPECT_EQ(runs[i].icache.misses, other[i].icache.misses);
            EXPECT_EQ(runs[i].icache.hits, other[i].icache.hits);
            EXPECT_EQ(runs[i].btb.misses, other[i].btb.misses);
            EXPECT_EQ(runs[i].condMispredicts, other[i].condMispredicts);
            EXPECT_EQ(runs[i].totalInstructions,
                      other[i].totalInstructions);
            EXPECT_DOUBLE_EQ(runs[i].icacheMpki, other[i].icacheMpki);
            EXPECT_DOUBLE_EQ(runs[i].btbMpki, other[i].btbMpki);
        }
    }
}

TEST(RunnerStore, ColdAndWarmRunsMatchStorelessRun)
{
    const std::string dir =
        ::testing::TempDir() + "/runner-store-parity";
    std::filesystem::remove_all(dir);

    SuiteOptions storeless = tinyOptions();
    const SuiteResults reference = core::runSuite(storeless);
    EXPECT_FALSE(reference.traceStoreEnabled);

    SuiteOptions cached = tinyOptions();
    cached.traceCacheDir = dir;

    const SuiteResults cold = core::runSuite(cached);
    EXPECT_TRUE(cold.traceStoreEnabled);
    EXPECT_EQ(cold.traceStore.hits, 0u);
    EXPECT_EQ(cold.traceStore.misses, 2u);
    EXPECT_EQ(cold.traceStore.stores, 2u);
    expectSameResults(cold, reference);

    const SuiteResults warm = core::runSuite(cached);
    EXPECT_EQ(warm.traceStore.hits, 2u);
    EXPECT_EQ(warm.traceStore.misses, 0u);
    expectSameResults(warm, reference);

    std::filesystem::remove_all(dir);
}

TEST(RunnerStore, SerialAndParallelAgreeWithWarmStore)
{
    const std::string dir =
        ::testing::TempDir() + "/runner-store-jobs";
    std::filesystem::remove_all(dir);

    SuiteOptions serial = tinyOptions();
    serial.traceCacheDir = dir;
    serial.jobs = 1;
    const SuiteResults a = core::runSuite(serial);

    SuiteOptions parallel = serial;
    parallel.jobs = 4;
    const SuiteResults b = core::runSuite(parallel);
    EXPECT_EQ(b.traceStore.hits, 2u);
    expectSameResults(a, b);

    std::filesystem::remove_all(dir);
}

} // anonymous namespace

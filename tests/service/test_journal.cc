/** @file Unit tests for the crash-safe job journal. */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include "service/journal.hh"

namespace
{

using namespace ghrp;
using namespace ghrp::service;

std::string
scratchFile(const std::string &name)
{
    const std::string path =
        ::testing::TempDir() + "/journal-" + name + ".journal";
    std::filesystem::remove(path);
    return path;
}

report::Json
record(int n)
{
    report::Json j = report::Json::object();
    j.set("type", "leg");
    j.set("n", std::int64_t(n));
    return j;
}

std::string
readRaw(const std::string &path)
{
    std::ifstream file(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(file), {});
}

void
writeRaw(const std::string &path, const std::string &bytes)
{
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    file.write(bytes.data(),
               static_cast<std::streamsize>(bytes.size()));
}

TEST(Journal, RoundTrip)
{
    const std::string path = scratchFile("roundtrip");
    Journal journal;
    journal.open(path, FsyncPolicy::Never);
    for (int i = 0; i < 5; ++i)
        journal.append(record(i));
    journal.close();

    const JournalScan scan = readJournal(path);
    EXPECT_FALSE(scan.truncatedTail);
    ASSERT_EQ(scan.records.size(), 5u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(scan.records[i].at("n").asInt(), i);
    EXPECT_EQ(scan.durableBytes,
              std::filesystem::file_size(path));
}

TEST(Journal, MissingFileYieldsEmptyScan)
{
    const JournalScan scan =
        readJournal(scratchFile("does-not-exist"));
    EXPECT_TRUE(scan.records.empty());
    EXPECT_FALSE(scan.truncatedTail);
    EXPECT_EQ(scan.durableBytes, 0u);
}

TEST(Journal, TornTailTruncatedAtEveryOffset)
{
    const std::string path = scratchFile("torn");
    Journal journal;
    journal.open(path, FsyncPolicy::Never);
    journal.append(record(0));
    journal.append(record(1));
    journal.close();
    const std::string full = readRaw(path);
    ASSERT_GT(full.size(), 16u);
    // Both records serialize to the same compact JSON length, so the
    // first frame ends exactly halfway through the file.
    const std::size_t first_end = full.size() / 2;

    // Chop the file after every possible byte count: the scan must
    // keep exactly the records whose frames fit completely, and flag
    // the tail whenever bytes were lost mid-record.
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
        writeRaw(path, full.substr(0, cut));
        const JournalScan scan = readJournal(path);
        if (cut < first_end) {
            EXPECT_EQ(scan.records.size(), 0u) << "cut=" << cut;
            EXPECT_EQ(scan.truncatedTail, cut != 0) << "cut=" << cut;
        } else {
            EXPECT_EQ(scan.records.size(), 1u) << "cut=" << cut;
            EXPECT_EQ(scan.truncatedTail, cut != first_end)
                << "cut=" << cut;
        }
    }

    writeRaw(path, full);
    const JournalScan intact = readJournal(path);
    EXPECT_EQ(intact.records.size(), 2u);
    EXPECT_FALSE(intact.truncatedTail);
}

TEST(Journal, CorruptPayloadStopsScan)
{
    const std::string path = scratchFile("bitflip");
    Journal journal;
    journal.open(path, FsyncPolicy::Never);
    journal.append(record(0));
    journal.append(record(1));
    journal.append(record(2));
    journal.close();

    std::string bytes = readRaw(path);
    // Flip one payload bit inside the second record (skip the first
    // record's frame, then its 8-byte header).
    const JournalScan before = readJournal(path);
    ASSERT_EQ(before.records.size(), 3u);
    const std::size_t first_frame = before.durableBytes / 3;
    bytes[first_frame + 8 + 2] ^= 0x01;
    writeRaw(path, bytes);

    const JournalScan scan = readJournal(path);
    EXPECT_EQ(scan.records.size(), 1u);
    EXPECT_TRUE(scan.truncatedTail);
    EXPECT_EQ(scan.records[0].at("n").asInt(), 0);
}

TEST(Journal, AppendAfterReopenExtends)
{
    const std::string path = scratchFile("reopen");
    {
        Journal journal;
        journal.open(path, FsyncPolicy::Close);
        journal.append(record(0));
        journal.close();
    }
    {
        Journal journal;
        journal.open(path, FsyncPolicy::Close);
        journal.append(record(1));
    }  // destructor closes
    const JournalScan scan = readJournal(path);
    ASSERT_EQ(scan.records.size(), 2u);
    EXPECT_EQ(scan.records[1].at("n").asInt(), 1);
}

TEST(Journal, ParseFsyncPolicy)
{
    EXPECT_EQ(parseFsyncPolicy("every"), FsyncPolicy::EveryRecord);
    EXPECT_EQ(parseFsyncPolicy("close"), FsyncPolicy::Close);
    EXPECT_EQ(parseFsyncPolicy("off"), FsyncPolicy::Never);
    EXPECT_THROW(parseFsyncPolicy("sometimes"), JournalError);
}

TEST(Journal, Crc32MatchesKnownVector)
{
    // The classic zlib check value.
    EXPECT_EQ(crc32("123456789", 9), 0xcbf43926u);
    EXPECT_EQ(crc32("", 0), 0u);
}

} // anonymous namespace

/**
 * @file
 * End-to-end tests of the sweep-serving daemon: protocol dialogue
 * against an in-process server, queue backpressure and priorities,
 * timeouts and cancellation, and the crash-recovery contract — a
 * daemon killed with SIGKILL mid-job resumes from its journal and
 * produces a report whose legs are bit-identical to an uninterrupted
 * in-process run.
 */

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/runner.hh"
#include "report/report.hh"
#include "service/client.hh"
#include "service/journal.hh"
#include "service/protocol.hh"
#include "service/server.hh"

namespace
{

using namespace ghrp;
using namespace ghrp::service;
namespace fs = std::filesystem;

std::string
scratchDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "/service-" + name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

ServerConfig
testConfig(const std::string &dir)
{
    ServerConfig cfg;
    cfg.socketPath = dir + "/daemon.sock";
    cfg.journalDir = dir + "/journals";
    cfg.jobs = 2;
    cfg.fsync = FsyncPolicy::Never;
    return cfg;
}

/** In-process daemon: run() on its own thread, stopped on scope exit. */
class TestDaemon
{
  public:
    explicit TestDaemon(ServerConfig cfg) : server(std::move(cfg))
    {
        server.start();
        thread = std::thread([this] { server.run(); });
    }

    ~TestDaemon() { stop(); }

    void
    stop()
    {
        if (thread.joinable()) {
            server.requestStop();
            thread.join();
        }
    }

    ServiceServer server;

  private:
    std::thread thread;
};

core::SuiteOptions
smallSuite(std::uint32_t traces = 2, std::uint64_t instructions = 200'000)
{
    core::SuiteOptions options;
    options.numTraces = traces;
    options.baseSeed = 42;
    options.instructionOverride = instructions;
    options.jobs = 2;
    return options;
}

report::Json
submitMessage(const core::SuiteOptions &options,
              std::int64_t priority = 0, double timeout_seconds = 0.0)
{
    report::Json msg = makeMessage("submit");
    msg.set("experiment", "fig03_icache_scurve");
    msg.set("options", report::suiteOptionsToJson(options));
    msg.set("priority", priority);
    msg.set("timeoutSeconds", timeout_seconds);
    return msg;
}

std::string
submitJob(ServiceClient &client, const core::SuiteOptions &options,
          std::int64_t priority = 0, double timeout_seconds = 0.0)
{
    const report::Json reply =
        client.request(submitMessage(options, priority, timeout_seconds));
    EXPECT_EQ(checkMessage(reply), "submitted");
    return reply.at("job").asString();
}

report::Json
jobStatus(ServiceClient &client, const std::string &job)
{
    report::Json msg = makeMessage("status");
    msg.set("job", job);
    return client.request(msg);
}

/** Poll status until the job leaves queued/running (120 s cap). */
std::string
awaitTerminal(ServiceClient &client, const std::string &job)
{
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(120);
    while (std::chrono::steady_clock::now() < deadline) {
        const std::string state =
            jobStatus(client, job).at("state").asString();
        if (state != "queued" && state != "running")
            return state;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return "poll-timeout";
}

report::RunReport
fetchReport(ServiceClient &client, const std::string &job)
{
    report::Json msg = makeMessage("result");
    msg.set("job", job);
    const report::Json reply = client.request(msg);
    EXPECT_EQ(checkMessage(reply), "result");
    return report::RunReport::fromJson(reply.at("report"));
}

/**
 * Strip everything a served run legitimately changes — identity,
 * timestamps, host/build capture, wall times, the echoed options —
 * leaving the simulation payload: legs (counters, MPKI) and the
 * per-policy aggregates. Equal dumps mean bit-identical results.
 */
std::string
normalizedDump(report::RunReport r)
{
    r.runId.clear();
    r.createdUnix = 0;
    r.build.clear();
    r.environment.clear();
    r.options = report::Json::object();
    r.sweep = report::SweepStats{};
    // The embedded telemetry snapshot captures process-wide run timing
    // (histograms of wall times), which legitimately differs between a
    // served and an in-process run of the same sweep.
    r.extras = report::Json::object();
    for (report::Leg &leg : r.legs)
        leg.seconds = 0.0;
    return r.toJson().dump(2);
}

std::size_t
countRecords(const std::string &journal_path, const std::string &type)
{
    std::size_t n = 0;
    for (const report::Json &record : readJournal(journal_path).records)
        if (record.at("type").asString() == type)
            ++n;
    return n;
}

TEST(Service, ServedRunMatchesInProcessRun)
{
    const std::string dir = scratchDir("match");
    const core::SuiteOptions options = smallSuite();
    TestDaemon daemon(testConfig(dir));

    ServiceClient client(daemon.server.config().socketPath);
    ASSERT_TRUE(client.connect(30.0));
    const std::string job = submitJob(client, options);
    ASSERT_EQ(awaitTerminal(client, job), "done");
    const report::RunReport served = fetchReport(client, job);
    daemon.stop();

    const core::SuiteResults local = core::runSuite(options);
    const report::RunReport reference =
        report::buildSuiteReport("fig03_icache_scurve", options, local);

    EXPECT_EQ(normalizedDump(served), normalizedDump(reference));
    EXPECT_EQ(served.legs.size(),
              options.numTraces * options.policies.size());
}

TEST(Service, PingAndUnknownJobAndVersionGate)
{
    const std::string dir = scratchDir("protocol");
    TestDaemon daemon(testConfig(dir));
    ServiceClient client(daemon.server.config().socketPath);
    ASSERT_TRUE(client.connect(30.0));

    EXPECT_EQ(checkMessage(client.request(makeMessage("ping"))), "pong");

    report::Json status = makeMessage("status");
    status.set("job", "job-999999");
    EXPECT_THROW(client.request(status), ProtocolError);

    // A future-major message must be answered with an error reply,
    // not dropped and not executed.
    report::Json future = makeMessage("ping");
    report::Json version = report::Json::object();
    version.set("major", std::int64_t(kProtocolMajor + 1));
    version.set("minor", std::int64_t(0));
    future.set("version", version);
    client.send(future);
    const auto reply = client.receive();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->at("type").asString(), "error");
}

TEST(Service, BackpressureRejectsBeyondMaxQueue)
{
    const std::string dir = scratchDir("backpressure");
    ServerConfig cfg = testConfig(dir);
    cfg.maxQueue = 1;
    cfg.retryAfterSeconds = 7;
    cfg.startPaused = true;
    TestDaemon daemon(std::move(cfg));

    ServiceClient client(daemon.server.config().socketPath);
    ASSERT_TRUE(client.connect(30.0));
    const core::SuiteOptions options = smallSuite(1, 50'000);

    const std::string queued = submitJob(client, options);
    const report::Json reply =
        client.request(submitMessage(options));
    EXPECT_EQ(checkMessage(reply), "rejected");
    EXPECT_EQ(reply.at("retryAfterSeconds").asUint(), 7u);

    // Cancelling the queued job frees the slot; the next submit is
    // accepted again.
    report::Json cancel = makeMessage("cancel");
    cancel.set("job", queued);
    EXPECT_EQ(client.request(cancel).at("state").asString(),
              "cancelled");
    EXPECT_EQ(countRecords(daemon.server.journalPath(queued),
                           "cancelled"),
              1u);
    const std::string next = submitJob(client, options);

    daemon.server.resumeWorker();
    EXPECT_EQ(awaitTerminal(client, next), "done");
}

TEST(Service, HigherPriorityRunsFirst)
{
    const std::string dir = scratchDir("priority");
    ServerConfig cfg = testConfig(dir);
    cfg.startPaused = true;
    // The mtime-ordering assertion below needs serial execution.
    cfg.maxActiveJobs = 1;
    TestDaemon daemon(std::move(cfg));

    ServiceClient client(daemon.server.config().socketPath);
    ASSERT_TRUE(client.connect(30.0));
    // Jobs long enough that the two report mtimes cannot land in the
    // same filesystem timestamp tick.
    const core::SuiteOptions options = smallSuite(1, 2'000'000);

    const std::string low = submitJob(client, options, 0);
    const std::string high = submitJob(client, options, 5);
    daemon.server.resumeWorker();
    ASSERT_EQ(awaitTerminal(client, low), "done");
    ASSERT_EQ(awaitTerminal(client, high), "done");

    // The worker is serial, so report write times order execution:
    // the high-priority job must have finished first even though it
    // was submitted second.
    EXPECT_LT(fs::last_write_time(daemon.server.reportPath(high)),
              fs::last_write_time(daemon.server.reportPath(low)));
}

/**
 * The scheduler acceptance check: with a 4-thread budget, a mix of 8
 * small jobs finishes in measurably less wall-clock on the concurrent
 * daemon (--max-active 4) than on the serial one (--max-active 1),
 * because jobs lease threads from one shared pool instead of queueing
 * behind each other. The batch also observes >= 2 jobs in the running
 * state at once, so the speedup is attributable to concurrency.
 */
TEST(Service, ConcurrentSmallJobsBeatSerialDaemon)
{
    core::SuiteOptions options = smallSuite(1, 1'000'000);
    options.jobs = 1;  // each job asks for one thread of the budget

    const auto runBatch = [&options](const std::string &scratch,
                                     unsigned max_active,
                                     unsigned &peak_running) -> double {
        const std::string dir = scratchDir(scratch);
        ServerConfig cfg = testConfig(dir);
        cfg.totalThreads = 4;
        cfg.maxActiveJobs = max_active;
        cfg.maxQueue = 16;
        TestDaemon daemon(std::move(cfg));

        ServiceClient client(daemon.server.config().socketPath);
        EXPECT_TRUE(client.connect(30.0));
        const auto start = std::chrono::steady_clock::now();
        std::vector<std::string> jobs;
        for (int i = 0; i < 8; ++i)
            jobs.push_back(submitJob(client, options));

        peak_running = 0;
        const auto deadline = start + std::chrono::seconds(300);
        while (true) {
            EXPECT_LT(std::chrono::steady_clock::now(), deadline);
            unsigned running = 0;
            bool all_done = true;
            for (const std::string &job : jobs) {
                const std::string state =
                    jobStatus(client, job).at("state").asString();
                EXPECT_NE(state, "failed");
                if (state == "running")
                    ++running;
                if (state != "done")
                    all_done = false;
            }
            peak_running = std::max(peak_running, running);
            if (all_done)
                break;
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };

    unsigned peak_serial = 0;
    unsigned peak_concurrent = 0;
    const double serial = runBatch("sched-serial", 1, peak_serial);
    const double concurrent =
        runBatch("sched-concurrent", 4, peak_concurrent);

    // Structural, hardware-independent: the serial daemon never
    // overlaps jobs, the scheduler does.
    EXPECT_LE(peak_serial, 1u);
    EXPECT_GE(peak_concurrent, 2u);

    // Wall-clock only where concurrency can physically express it: on
    // a 1-2 core host the 4-thread budget is oversubscribed and the
    // overlapped batch legitimately takes as long as the serial one.
    if (util::ThreadPool::hardwareJobs() >= 4) {
        EXPECT_LT(concurrent, serial * 0.8)
            << "serial " << serial << "s vs concurrent " << concurrent
            << "s";
    }
}

/**
 * The client's queue-full backoff path: a rejected submit sleeps for
 * the server's retryAfterSeconds hint and retries until a slot frees;
 * a queue that never frees within the deadline throws instead of
 * spinning.
 */
TEST(Service, SubmitWithBackoffHonorsRetryAfterHint)
{
    const std::string dir = scratchDir("backoff");
    ServerConfig cfg = testConfig(dir);
    cfg.maxQueue = 1;
    cfg.retryAfterSeconds = 1;
    cfg.startPaused = true;
    TestDaemon daemon(std::move(cfg));

    ServiceClient client(daemon.server.config().socketPath);
    ASSERT_TRUE(client.connect(30.0));
    const core::SuiteOptions options = smallSuite(1, 50'000);
    const std::string queued = submitJob(client, options);

    // The queue never frees: the deadline passes during the first
    // 1 s backoff sleep and the helper gives up.
    unsigned rejections = 0;
    EXPECT_THROW(client.submitWithBackoff(submitMessage(options), 0.5,
                                          &rejections),
                 ProtocolError);
    EXPECT_EQ(rejections, 1u);

    // Free the slot mid-backoff: the retry after the hinted wait is
    // accepted.
    std::thread releaser([&daemon, &queued] {
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
        ServiceClient canceller(daemon.server.config().socketPath);
        ASSERT_TRUE(canceller.connect(30.0));
        report::Json cancel = makeMessage("cancel");
        cancel.set("job", queued);
        canceller.request(cancel);
    });
    const auto start = std::chrono::steady_clock::now();
    rejections = 0;
    const report::Json reply =
        client.submitWithBackoff(submitMessage(options), 30.0,
                                 &rejections);
    const double waited = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
    releaser.join();
    EXPECT_EQ(checkMessage(reply), "submitted");
    EXPECT_GE(rejections, 1u);
    // The retry respected the server's 1 s hint rather than hammering.
    EXPECT_GE(waited, 0.9);

    daemon.server.resumeWorker();
    ServiceClient observer(daemon.server.config().socketPath);
    ASSERT_TRUE(observer.connect(30.0));
    EXPECT_EQ(awaitTerminal(observer, reply.at("job").asString()),
              "done");
}

TEST(Service, TimeoutSealsJobAsFailed)
{
    const std::string dir = scratchDir("timeout");
    TestDaemon daemon(testConfig(dir));
    ServiceClient client(daemon.server.config().socketPath);
    ASSERT_TRUE(client.connect(30.0));

    // A sweep far larger than a millisecond of work.
    const std::string job = submitJob(
        client, smallSuite(4, 4'000'000), 0, 0.001);
    ASSERT_EQ(awaitTerminal(client, job), "failed");
    const report::Json status = jobStatus(client, job);
    EXPECT_NE(status.at("error").asString().find("timeout"),
              std::string::npos);
    EXPECT_EQ(countRecords(daemon.server.journalPath(job), "failed"),
              1u);
}

TEST(Service, CancelStopsRunningJob)
{
    const std::string dir = scratchDir("cancel");
    TestDaemon daemon(testConfig(dir));
    ServiceClient client(daemon.server.config().socketPath);
    ASSERT_TRUE(client.connect(30.0));

    const std::string job = submitJob(client, smallSuite(6, 8'000'000));
    // Wait until it is actually running, then cancel.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (jobStatus(client, job).at("state").asString() != "running") {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    report::Json cancel = makeMessage("cancel");
    cancel.set("job", job);
    client.request(cancel);
    EXPECT_EQ(awaitTerminal(client, job), "cancelled");
    EXPECT_EQ(countRecords(daemon.server.journalPath(job), "cancelled"),
              1u);
}

TEST(Service, TwoClientsShareOneDaemon)
{
    const std::string dir = scratchDir("multiclient");
    ServerConfig cfg = testConfig(dir);
    cfg.startPaused = true;
    TestDaemon daemon(std::move(cfg));

    ServiceClient submitter(daemon.server.config().socketPath);
    ServiceClient observer(daemon.server.config().socketPath);
    ASSERT_TRUE(submitter.connect(30.0));
    ASSERT_TRUE(observer.connect(30.0));

    const std::string job =
        submitJob(submitter, smallSuite(1, 100'000));
    EXPECT_EQ(jobStatus(observer, job).at("state").asString(),
              "queued");
    EXPECT_EQ(checkMessage(observer.request(makeMessage("ping"))),
              "pong");

    daemon.server.resumeWorker();
    EXPECT_EQ(awaitTerminal(observer, job), "done");
    const report::RunReport via_submitter = fetchReport(submitter, job);
    const report::RunReport via_observer = fetchReport(observer, job);
    EXPECT_EQ(normalizedDump(via_submitter),
              normalizedDump(via_observer));
}

TEST(Service, WatchStreamsProgressToTerminalStatus)
{
    const std::string dir = scratchDir("watch");
    TestDaemon daemon(testConfig(dir));
    ServiceClient client(daemon.server.config().socketPath);
    ASSERT_TRUE(client.connect(30.0));

    const core::SuiteOptions options = smallSuite(4, 2'000'000);
    const std::string job = submitJob(client, options);

    report::Json watch = makeMessage("watch");
    watch.set("job", job);
    client.send(watch);

    std::size_t progress_messages = 0;
    std::string terminal;
    while (true) {
        const auto message = client.receive();
        ASSERT_TRUE(message.has_value());
        const std::string type = checkMessage(*message);
        if (type == "progress") {
            ++progress_messages;
            continue;
        }
        ASSERT_EQ(type, "jobStatus");
        const std::string state = message->at("state").asString();
        if (state == "queued" || state == "running")
            continue;
        terminal = state;
        break;
    }
    EXPECT_EQ(terminal, "done");
    EXPECT_GT(progress_messages, 0u);
}

/**
 * The crash-recovery contract. Phase 1: a forked daemon process
 * accepts a sweep and is SIGKILLed only after its journal holds at
 * least three durable leg records. Phase 2: a second daemon process
 * over the same journal directory resumes the job, re-simulating only
 * the missing legs (every leg is journaled exactly once across both
 * lives). The final report's legs must be bit-identical to an
 * uninterrupted in-process PER-LEG run of the same options — for a
 * fused job too, where the kill lands mid-group and the resume fuses
 * only the lanes the journal is missing.
 */
void
sigkillResumeCase(const std::string &scratch, bool fused,
                  std::uint64_t phase_window = 0)
{
    const std::string dir = scratchDir(scratch);
    const ServerConfig cfg = testConfig(dir);
    // Big enough that the kill lands mid-job with wide margin: 30
    // legs at several milliseconds each.
    core::SuiteOptions options = smallSuite(6, 8'000'000);
    options.fused = fused;
    options.base.phaseWindow = phase_window;

    const auto spawn_daemon = [&cfg]() -> pid_t {
        const pid_t pid = ::fork();
        if (pid == 0) {
            try {
                ServiceServer server(cfg);
                server.start();
                server.run();
            } catch (...) {
                ::_exit(3);
            }
            ::_exit(0);
        }
        return pid;
    };

    const pid_t first = spawn_daemon();
    ASSERT_GT(first, 0);

    std::string job;
    {
        ServiceClient client(cfg.socketPath);
        ASSERT_TRUE(client.connect(30.0));
        job = submitJob(client, options);
    }
    const std::string journal_path = dir + "/journals/" + job + ".journal";

    // Wait for three durable legs, then kill without warning.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(120);
    while (countRecords(journal_path, "leg") < 3) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline);
        ASSERT_EQ(countRecords(journal_path, "done"), 0u)
            << "job finished before the kill; enlarge the sweep";
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_EQ(::kill(first, SIGKILL), 0);
    int wait_status = 0;
    ASSERT_EQ(::waitpid(first, &wait_status, 0), first);
    ASSERT_TRUE(WIFSIGNALED(wait_status));

    const std::size_t durable_before =
        countRecords(journal_path, "leg");
    ASSERT_GE(durable_before, 3u);
    ASSERT_EQ(countRecords(journal_path, "done"), 0u);

    // Phase 2: restart over the same journal directory. The recovered
    // job re-enters the queue and runs to completion unattended.
    const pid_t second = spawn_daemon();
    ASSERT_GT(second, 0);

    report::RunReport served;
    {
        ServiceClient client(cfg.socketPath);
        ASSERT_TRUE(client.connect(30.0));
        ASSERT_EQ(awaitTerminal(client, job), "done");
        served = fetchReport(client, job);
        client.request(makeMessage("shutdown"));
    }
    ASSERT_EQ(::waitpid(second, &wait_status, 0), second);

    // Each leg was simulated and journaled exactly once across both
    // daemon lives: the resume skipped the durable prefix.
    const std::size_t total_legs =
        options.numTraces * options.policies.size();
    EXPECT_EQ(countRecords(journal_path, "leg"), total_legs);
    EXPECT_EQ(countRecords(journal_path, "done"), 1u);

    // Reference legs always come from the per-leg path, so the fused
    // case additionally pins fused == per-leg across a crash boundary.
    core::SuiteOptions per_leg = options;
    per_leg.fused = false;
    const core::SuiteResults local = core::runSuite(per_leg);
    const report::RunReport reference =
        report::buildSuiteReport("fig03_icache_scurve", options, local);
    EXPECT_EQ(normalizedDump(served), normalizedDump(reference));

    // A windowed job's flight-recorder trajectories ride along in the
    // comparison above; make the coverage explicit.
    if (phase_window > 0)
        for (const report::Leg &leg : served.legs) {
            EXPECT_TRUE(leg.hasPhases) << leg.trace << "/" << leg.policy;
            EXPECT_FALSE(leg.phases.records.empty());
        }
}

TEST(Service, SigkillMidJobResumesFromJournal)
{
    sigkillResumeCase("crash", false);
}

TEST(Service, SigkillMidFusedJobResumesFromJournal)
{
    sigkillResumeCase("crash-fused", true);
}

TEST(Service, SigkillMidPhaseJobResumesBitIdenticalTrajectories)
{
    // Journaled legs carry their phase records; the resumed report's
    // trajectories must be bit-identical to an uninterrupted run.
    sigkillResumeCase("crash-phases", false, 100'000);
}

} // anonymous namespace

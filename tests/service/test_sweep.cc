/**
 * @file
 * Tests of the multi-daemon sweep fabric: the report-layer shard merge
 * (bit-identical to the unsharded run, loud on missing/duplicate
 * legs), a two-daemon campaign whose merged cell matches an
 * in-process runSuite, and shard retry when a daemon dies
 * mid-campaign.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/runner.hh"
#include "report/report.hh"
#include "service/server.hh"
#include "service/sweep.hh"

namespace
{

using namespace ghrp;
using namespace ghrp::service;
namespace fs = std::filesystem;

std::string
scratchDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "/sweep-" + name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

ServerConfig
testConfig(const std::string &dir)
{
    ServerConfig cfg;
    cfg.socketPath = dir + "/daemon.sock";
    cfg.journalDir = dir + "/journals";
    cfg.jobs = 2;
    cfg.fsync = FsyncPolicy::Never;
    return cfg;
}

/** In-process daemon: run() on its own thread, stopped on scope exit. */
class TestDaemon
{
  public:
    explicit TestDaemon(ServerConfig cfg) : server(std::move(cfg))
    {
        server.start();
        thread = std::thread([this] { server.run(); });
    }

    ~TestDaemon() { stop(); }

    void
    stop()
    {
        if (thread.joinable()) {
            server.requestStop();
            thread.join();
        }
    }

    ServiceServer server;

  private:
    std::thread thread;
};

core::SuiteOptions
cellOptions(std::uint32_t traces = 2,
            std::uint64_t instructions = 200'000)
{
    core::SuiteOptions options;
    options.numTraces = traces;
    options.baseSeed = 42;
    options.instructionOverride = instructions;
    options.jobs = 2;
    return options;
}

/** Same normalization as the service end-to-end tests: strip identity,
 *  timing and capture, keep the simulation payload. */
std::string
normalizedDump(report::RunReport r)
{
    r.runId.clear();
    r.createdUnix = 0;
    r.build.clear();
    r.environment.clear();
    r.options = report::Json::object();
    r.sweep = report::SweepStats{};
    r.extras = report::Json::object();
    for (report::Leg &leg : r.legs)
        leg.seconds = 0.0;
    return r.toJson().dump(2);
}

TEST(Service, MergedShardReportsMatchUnshardedReport)
{
    core::SuiteOptions cell = cellOptions();
    cell.policies = {frontend::PolicyKind::Lru,
                     frontend::PolicyKind::Srrip,
                     frontend::PolicyKind::Ghrp};

    const core::SuiteResults full = core::runSuite(cell);
    const report::RunReport reference =
        report::buildSuiteReport("merge-test", cell, full);

    std::vector<report::RunReport> shards;
    for (const frontend::PolicySpec &policy : cell.policies) {
        core::SuiteOptions shard = cell;
        shard.policies = {policy};
        shards.push_back(report::buildSuiteReport(
            "merge-test", shard, core::runSuite(shard)));
    }

    const report::RunReport merged =
        report::mergeShardReports("merge-test", cell, shards);
    EXPECT_EQ(normalizedDump(merged), normalizedDump(reference));
    EXPECT_EQ(merged.legs.size(), reference.legs.size());

    // A shard set with legs missing or duplicated must fail loudly
    // rather than aggregate a partial cell.
    EXPECT_THROW(report::mergeShardReports("merge-test", cell,
                                           {shards.front()}),
                 report::ReportError);
    std::vector<report::RunReport> duplicated = shards;
    duplicated.push_back(shards.front());
    EXPECT_THROW(
        report::mergeShardReports("merge-test", cell, duplicated),
        report::ReportError);

    // A shard from a different cell (other seed) must be refused.
    core::SuiteOptions other = cell;
    other.baseSeed = 43;
    other.policies = {frontend::PolicyKind::Lru};
    std::vector<report::RunReport> mismatched = {
        report::buildSuiteReport("merge-test", other,
                                 core::runSuite(other))};
    EXPECT_THROW(
        report::mergeShardReports("merge-test", cell, mismatched),
        report::ReportError);
}

TEST(Service, SweepCampaignMergesBitIdenticalAcrossTwoDaemons)
{
    TestDaemon a(testConfig(scratchDir("two-a")));
    TestDaemon b(testConfig(scratchDir("two-b")));

    SweepGrid grid;
    grid.experiment = "sweep-two-daemons";
    grid.base = cellOptions();
    grid.seeds = {42};

    SweepOptions options;
    options.daemons = {a.server.config().socketPath,
                       b.server.config().socketPath};
    options.pollSeconds = 0.02;
    options.connectTimeoutSeconds = 0.5;

    const SweepOutcome outcome = runSweepCampaign(grid, options);
    ASSERT_EQ(outcome.cells.size(), 1u);
    EXPECT_EQ(outcome.shards, grid.base.policies.size());
    EXPECT_EQ(outcome.resubmits, 0u);

    const core::SuiteOptions &cell = outcome.cellOptions.front();
    const report::RunReport reference = report::buildSuiteReport(
        grid.experiment, cell, core::runSuite(cell));
    EXPECT_EQ(normalizedDump(outcome.cells.front()),
              normalizedDump(reference));
}

TEST(Service, SweepRetriesShardsLostWithDaemonDeath)
{
    TestDaemon survivor(testConfig(scratchDir("death-a")));
    auto victim = std::make_unique<TestDaemon>(
        testConfig(scratchDir("death-b")));

    SweepGrid grid;
    grid.experiment = "sweep-daemon-death";
    grid.base = cellOptions(2, 500'000);
    grid.seeds = {42};

    SweepOptions options;
    options.daemons = {survivor.server.config().socketPath,
                       victim->server.config().socketPath};
    options.pollSeconds = 0.02;
    options.connectTimeoutSeconds = 0.3;
    // The deterministic kill point: every shard has been accepted,
    // none has been polled — the victim's shards must be re-run.
    options.onAllSubmitted = [&victim] { victim.reset(); };

    const SweepOutcome outcome = runSweepCampaign(grid, options);
    ASSERT_EQ(outcome.cells.size(), 1u);
    EXPECT_GE(outcome.resubmits, 1u);

    const core::SuiteOptions &cell = outcome.cellOptions.front();
    const report::RunReport reference = report::buildSuiteReport(
        grid.experiment, cell, core::runSuite(cell));
    EXPECT_EQ(normalizedDump(outcome.cells.front()),
              normalizedDump(reference));
}

} // anonymous namespace

/** @file Unit tests for the service wire protocol framing. */

#include <gtest/gtest.h>

#include <string>

#include "service/protocol.hh"

namespace
{

using namespace ghrp;
using namespace ghrp::service;

TEST(Protocol, MakeMessageCarriesEnvelope)
{
    const report::Json msg = makeMessage("ping");
    EXPECT_EQ(msg.at("proto").asString(), kProtocolName);
    EXPECT_EQ(msg.at("version").at("major").asInt(), kProtocolMajor);
    EXPECT_EQ(msg.at("version").at("minor").asInt(), kProtocolMinor);
    EXPECT_EQ(checkMessage(msg), "ping");
}

TEST(Protocol, FrameRoundTrip)
{
    report::Json msg = makeMessage("submit");
    msg.set("experiment", "fig03_icache_scurve");
    msg.set("priority", std::int64_t(7));

    FrameDecoder decoder;
    const std::string frame = encodeFrame(msg);
    decoder.feed(frame.data(), frame.size());

    const auto decoded = decoder.next();
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->dump(), msg.dump());
    EXPECT_EQ(decoder.pending(), 0u);
    EXPECT_FALSE(decoder.next().has_value());
}

TEST(Protocol, DecoderReassemblesSplitFeeds)
{
    report::Json a = makeMessage("ping");
    report::Json b = makeMessage("status");
    b.set("job", "job-000001");
    const std::string stream = encodeFrame(a) + encodeFrame(b);

    // Deliver one byte at a time: frames must still come out whole
    // and in order.
    FrameDecoder decoder;
    std::vector<std::string> types;
    for (char c : stream) {
        decoder.feed(&c, 1);
        while (const auto msg = decoder.next())
            types.push_back(checkMessage(*msg));
    }
    ASSERT_EQ(types.size(), 2u);
    EXPECT_EQ(types[0], "ping");
    EXPECT_EQ(types[1], "status");
}

TEST(Protocol, OversizedFrameThrows)
{
    // Header announcing a payload beyond kMaxFrameBytes: the decoder
    // must refuse rather than try to buffer it.
    const std::uint32_t huge =
        static_cast<std::uint32_t>(kMaxFrameBytes) + 1;
    const char header[4] = {
        static_cast<char>(huge >> 24), static_cast<char>(huge >> 16),
        static_cast<char>(huge >> 8), static_cast<char>(huge)};
    FrameDecoder decoder;
    decoder.feed(header, sizeof(header));
    EXPECT_THROW(decoder.next(), ProtocolError);
}

TEST(Protocol, MalformedPayloadThrows)
{
    const std::string payload = "{not json";
    const std::uint32_t size = static_cast<std::uint32_t>(payload.size());
    const char header[4] = {
        static_cast<char>(size >> 24), static_cast<char>(size >> 16),
        static_cast<char>(size >> 8), static_cast<char>(size)};
    FrameDecoder decoder;
    decoder.feed(header, sizeof(header));
    decoder.feed(payload.data(), payload.size());
    EXPECT_THROW(decoder.next(), report::JsonError);
}

TEST(Protocol, ChecksProtocolNameAndMajor)
{
    report::Json wrong_name = makeMessage("ping");
    wrong_name.set("proto", "not-ghrp");
    EXPECT_THROW(checkMessage(wrong_name), ProtocolError);

    // Future major versions are rejected...
    report::Json future = makeMessage("ping");
    report::Json version = report::Json::object();
    version.set("major", std::int64_t(kProtocolMajor + 1));
    version.set("minor", std::int64_t(0));
    future.set("version", version);
    EXPECT_THROW(checkMessage(future), ProtocolError);

    // ...while higher minors (and unknown members) are fine.
    report::Json newer_minor = makeMessage("ping");
    report::Json v2 = report::Json::object();
    v2.set("major", std::int64_t(kProtocolMajor));
    v2.set("minor", std::int64_t(kProtocolMinor + 5));
    newer_minor.set("version", v2);
    newer_minor.set("someFutureField", "ignored");
    EXPECT_EQ(checkMessage(newer_minor), "ping");
}

} // anonymous namespace

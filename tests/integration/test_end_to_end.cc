/**
 * @file
 * Integration tests: whole-pipeline runs spanning the workload
 * generator, trace I/O, front-end simulation, and result aggregation.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "core/runner.hh"
#include "trace/trace_io.hh"
#include "workload/suite.hh"

namespace
{

using namespace ghrp;

TEST(EndToEnd, TraceSurvivesDiskRoundTripIdentically)
{
    workload::TraceSpec spec;
    spec.category = workload::Category::ShortServer;
    spec.seed = 6;
    spec.name = "rt";
    const trace::Trace original = workload::buildTrace(spec, 200'000);

    const std::string path = ::testing::TempDir() + "/rt.ghrptrc";
    trace::writeTrace(original, path);
    const trace::Trace loaded = trace::readTrace(path);
    std::remove(path.c_str());

    // Simulating the original and the reloaded trace must agree bit
    // for bit in every statistic.
    frontend::FrontendConfig cfg;
    cfg.policy = frontend::PolicyKind::Ghrp;
    const frontend::FrontendResult a = frontend::simulateTrace(cfg, original);
    const frontend::FrontendResult b = frontend::simulateTrace(cfg, loaded);
    EXPECT_EQ(a.icache.misses, b.icache.misses);
    EXPECT_EQ(a.btb.misses, b.btb.misses);
    EXPECT_EQ(a.condMispredicts, b.condMispredicts);
}

TEST(EndToEnd, PolicyOrderingOnServerTrace)
{
    // On a server-style trace with warmed caches, Random must be the
    // worst policy and GHRP must not be meaningfully worse than LRU.
    workload::TraceSpec spec;
    spec.category = workload::Category::LongServer;
    spec.seed = 49;
    spec.name = "ord";
    const trace::Trace tr = workload::buildTrace(spec, 8'000'000);

    frontend::FrontendConfig cfg;
    cfg.policy = frontend::PolicyKind::Lru;
    const frontend::FrontendResult lru = frontend::simulateTrace(cfg, tr);
    cfg.policy = frontend::PolicyKind::Random;
    const frontend::FrontendResult rnd = frontend::simulateTrace(cfg, tr);
    cfg.policy = frontend::PolicyKind::Ghrp;
    const frontend::FrontendResult ghrp = frontend::simulateTrace(cfg, tr);

    // GHRP must clearly beat LRU on this thrash-prone trace, and
    // Random must be the worst policy on the BTB.
    EXPECT_LT(ghrp.icacheMpki, lru.icacheMpki * 0.99);
    EXPECT_GT(rnd.btbMpki, lru.btbMpki);
    EXPECT_LE(ghrp.btbMpki, lru.btbMpki * 1.05);
}

TEST(EndToEnd, SmallSuiteAggregation)
{
    core::SuiteOptions options;
    options.numTraces = 4;
    // At 250k instructions the Random-vs-LRU ordering is noisy trace
    // to trace; this base seed gives LRU a comfortable margin so the
    // assertion tests the aggregation machinery, not seed luck.
    options.baseSeed = 5;
    options.instructionOverride = 250'000;
    options.policies = {frontend::PolicyKind::Lru,
                        frontend::PolicyKind::Random,
                        frontend::PolicyKind::Ghrp};
    const core::SuiteResults results = core::runSuite(options);

    const auto lru = results.icacheMpki(frontend::PolicyKind::Lru);
    const auto rnd = results.icacheMpki(frontend::PolicyKind::Random);
    ASSERT_EQ(lru.size(), 4u);
    // Random must lose to LRU on average even on short runs.
    EXPECT_GT(core::SuiteResults::mean(rnd),
              core::SuiteResults::mean(lru) * 0.95);
    // Win/loss machinery consumes the series without issue.
    const auto wl = core::SuiteResults::winLoss(rnd, lru);
    EXPECT_EQ(wl.better + wl.similar + wl.worse, 4u);
}

TEST(EndToEnd, BtbAndIcacheConfigsComposable)
{
    workload::TraceSpec spec;
    spec.category = workload::Category::LongMobile;
    spec.seed = 9;
    spec.name = "cfg";
    const trace::Trace tr = workload::buildTrace(spec, 300'000);

    for (std::uint32_t kb : {8u, 32u}) {
        for (std::uint32_t assoc : {4u, 8u}) {
            frontend::FrontendConfig cfg;
            cfg.policy = frontend::PolicyKind::Ghrp;
            cfg.icache = cache::CacheConfig::icache(kb, assoc);
            cfg.btb = cache::CacheConfig::btb(1024, assoc);
            const frontend::FrontendResult r =
                frontend::simulateTrace(cfg, tr);
            EXPECT_GT(r.icache.accesses, 0u);
        }
    }
}

TEST(EndToEnd, SmallerCachesMissMore)
{
    workload::TraceSpec spec;
    spec.category = workload::Category::ShortServer;
    spec.seed = 10;
    spec.name = "sz";
    const trace::Trace tr = workload::buildTrace(spec, 1'000'000);

    double prev = -1.0;
    for (std::uint32_t kb : {64u, 16u, 8u}) {
        frontend::FrontendConfig cfg;
        cfg.icache = cache::CacheConfig::icache(kb, 8);
        const double mpki = frontend::simulateTrace(cfg, tr).icacheMpki;
        if (prev >= 0) {
            EXPECT_GE(mpki, prev * 0.9);
        }
        prev = mpki;
    }
}

} // anonymous namespace

/**
 * @file
 * Golden regression test: a frozen 4-trace suite under the paper's
 * five policies, compared against checked-in results. Any change to
 * trace generation, the simulator, a replacement policy, or the
 * aggregate statistics shows up here as an exact mismatch.
 *
 * The configuration deliberately uses small structures (8KB 4-way
 * I-cache, 512-entry 4-way BTB) so the predictive policies actually
 * diverge from LRU at 1M instructions — GHRP's bypass and dead-victim
 * paths are live in these goldens, not idle.
 *
 * If a change is *supposed* to alter results (new workload component,
 * retuned predictor), regenerate the table by printing the fields
 * below from a run with the same SuiteOptions and update the goldens
 * in the same commit, with the reason in the commit message.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "core/runner.hh"
#include "stats/confidence.hh"

namespace
{

using namespace ghrp;

/** Frozen per-leg counters. */
struct GoldenLeg
{
    const char *policy;
    const char *trace;
    std::uint64_t measuredInstructions;
    std::uint64_t icacheAccesses;
    std::uint64_t icacheMisses;
    std::uint64_t icacheEvictions;
    std::uint64_t icacheBypasses;
    std::uint64_t btbMisses;
    std::uint64_t condMispredicts;
};

// clang-format off
constexpr GoldenLeg kGoldenLegs[] = {
    {"LRU",    "SHORT-MOBILE-01", 500000ull, 47568ull, 12343ull, 12343ull,    0ull, 2229ull, 4367ull},
    {"LRU",    "SHORT-SERVER-01", 500002ull, 45953ull,  6818ull,  6818ull,    0ull, 2042ull, 4620ull},
    {"LRU",    "LONG-MOBILE-01",  500004ull, 44029ull,  4449ull,  4449ull,    0ull, 1831ull, 3812ull},
    {"LRU",    "LONG-SERVER-01",  500001ull, 48353ull,  3509ull,  3509ull,    0ull, 1485ull, 3431ull},
    {"Random", "SHORT-MOBILE-01", 500000ull, 47568ull, 12302ull, 12302ull,    0ull, 2538ull, 4367ull},
    {"Random", "SHORT-SERVER-01", 500002ull, 45953ull,  7160ull,  7160ull,    0ull, 2240ull, 4620ull},
    {"Random", "LONG-MOBILE-01",  500004ull, 44029ull,  4733ull,  4733ull,    0ull, 2086ull, 3812ull},
    {"Random", "LONG-SERVER-01",  500001ull, 48353ull,  3769ull,  3769ull,    0ull, 1640ull, 3431ull},
    {"SRRIP",  "SHORT-MOBILE-01", 500000ull, 47568ull, 12058ull, 12058ull,    0ull, 2152ull, 4367ull},
    {"SRRIP",  "SHORT-SERVER-01", 500002ull, 45953ull,  6723ull,  6723ull,    0ull, 2046ull, 4620ull},
    {"SRRIP",  "LONG-MOBILE-01",  500004ull, 44029ull,  4373ull,  4373ull,    0ull, 1758ull, 3812ull},
    {"SRRIP",  "LONG-SERVER-01",  500001ull, 48353ull,  3492ull,  3492ull,    0ull, 1464ull, 3431ull},
    {"SDBP",   "SHORT-MOBILE-01", 500000ull, 47568ull, 12332ull, 12302ull,   30ull, 2228ull, 4367ull},
    {"SDBP",   "SHORT-SERVER-01", 500002ull, 45953ull,  6818ull,  6818ull,    0ull, 2042ull, 4620ull},
    {"SDBP",   "LONG-MOBILE-01",  500004ull, 44029ull,  4472ull,  4472ull,    0ull, 1831ull, 3812ull},
    {"SDBP",   "LONG-SERVER-01",  500001ull, 48353ull,  3509ull,  3509ull,    0ull, 1485ull, 3431ull},
    {"GHRP",   "SHORT-MOBILE-01", 500000ull, 47568ull, 12250ull,  8031ull, 4219ull, 2261ull, 4367ull},
    {"GHRP",   "SHORT-SERVER-01", 500002ull, 45953ull,  7307ull,  6600ull,  707ull, 2031ull, 4620ull},
    {"GHRP",   "LONG-MOBILE-01",  500004ull, 44029ull,  4672ull,  4079ull,  593ull, 1850ull, 3812ull},
    {"GHRP",   "LONG-SERVER-01",  500001ull, 48353ull,  3537ull,  3468ull,   69ull, 1489ull, 3431ull},
};
// clang-format on

/** Frozen aggregate MPKI means, [policy] = {icache, btb}. */
struct GoldenMean
{
    const char *policy;
    double icacheMean;
    double btbMean;
};
constexpr GoldenMean kGoldenMeans[] = {
    {"LRU", 13.559465059203928, 3.7934871070778979},
    {"Random", 13.981962979216274, 4.2519855360879513},
    {"SRRIP", 13.322965570200703, 3.7099874120755523},
    {"SDBP", 13.565464967204665, 3.7929871070778973},
    {"GHRP", 13.882963161215033, 3.815487049078425},
};

class GoldenSuite : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        core::SuiteOptions options;
        options.numTraces = 4;
        options.baseSeed = 9;
        options.instructionOverride = 1'000'000;
        options.base.icache = cache::CacheConfig::icache(8, 4);
        options.base.btb = cache::CacheConfig::btb(512, 4);
        results = new core::SuiteResults(core::runSuite(options));
    }

    static void
    TearDownTestSuite()
    {
        delete results;
        results = nullptr;
    }

    static const frontend::FrontendResult &
    leg(const char *policy, std::size_t trace_index)
    {
        return results->results.at(frontend::parsePolicy(policy))
            .at(trace_index);
    }

    static core::SuiteResults *results;
};

core::SuiteResults *GoldenSuite::results = nullptr;

TEST_F(GoldenSuite, PerLegCountersMatchGoldens)
{
    ASSERT_EQ(results->totalLegs(), std::size(kGoldenLegs));
    for (std::size_t i = 0; i < std::size(kGoldenLegs); ++i) {
        const GoldenLeg &g = kGoldenLegs[i];
        const frontend::FrontendResult &r = leg(g.policy, i % 4);
        SCOPED_TRACE(::testing::Message()
                     << g.policy << " / " << g.trace);
        EXPECT_EQ(r.traceName, g.trace);
        EXPECT_EQ(r.measuredInstructions, g.measuredInstructions);
        EXPECT_EQ(r.icache.accesses, g.icacheAccesses);
        EXPECT_EQ(r.icache.misses, g.icacheMisses);
        EXPECT_EQ(r.icache.evictions, g.icacheEvictions);
        EXPECT_EQ(r.icache.bypasses, g.icacheBypasses);
        EXPECT_EQ(r.btb.misses, g.btbMisses);
        EXPECT_EQ(r.condMispredicts, g.condMispredicts);
    }
}

TEST_F(GoldenSuite, GoldensExerciseThePredictivePaths)
{
    // Guard against the goldens silently degenerating: GHRP must be
    // actually bypassing and diverging from LRU in this configuration,
    // otherwise the table above locks down nothing interesting.
    std::uint64_t ghrp_bypasses = 0;
    for (const frontend::FrontendResult &r :
         results->results.at(frontend::PolicyKind::Ghrp))
        ghrp_bypasses += r.icache.bypasses;
    EXPECT_GT(ghrp_bypasses, 0u);
    EXPECT_NE(results->icacheMpki(frontend::PolicyKind::Ghrp),
              results->icacheMpki(frontend::PolicyKind::Lru));
}

TEST_F(GoldenSuite, AggregateMeansMatchGoldens)
{
    for (const GoldenMean &g : kGoldenMeans) {
        SCOPED_TRACE(g.policy);
        const frontend::PolicyKind policy = frontend::parsePolicy(g.policy);
        EXPECT_DOUBLE_EQ(
            core::SuiteResults::mean(results->icacheMpki(policy)),
            g.icacheMean);
        EXPECT_DOUBLE_EQ(core::SuiteResults::mean(results->btbMpki(policy)),
                         g.btbMean);
    }
}

TEST_F(GoldenSuite, ConfidenceIntervalMatchesGoldens)
{
    // 95% CI of GHRP's per-trace relative I-cache MPKI difference vs
    // LRU (the Figure 8 statistic).
    const std::vector<double> rel = core::SuiteResults::relativeDifference(
        results->icacheMpki(frontend::PolicyKind::Ghrp),
        results->icacheMpki(frontend::PolicyKind::Lru));
    ASSERT_EQ(rel.size(), 4u);
    const stats::ConfidenceInterval ci = stats::meanConfidence(rel);
    EXPECT_DOUBLE_EQ(ci.mean, 0.030572595547095547);
    EXPECT_DOUBLE_EQ(ci.halfWidth, 0.058371264099626625);
    EXPECT_DOUBLE_EQ(ci.lower(), ci.mean - ci.halfWidth);
    EXPECT_DOUBLE_EQ(ci.upper(), ci.mean + ci.halfWidth);
}

TEST_F(GoldenSuite, WinTieLossMatchesGoldens)
{
    const auto icache_wl = core::SuiteResults::winLoss(
        results->icacheMpki(frontend::PolicyKind::Ghrp),
        results->icacheMpki(frontend::PolicyKind::Lru));
    EXPECT_EQ(icache_wl.better, 0u);
    EXPECT_EQ(icache_wl.similar, 2u);
    EXPECT_EQ(icache_wl.worse, 2u);

    const auto btb_wl = core::SuiteResults::winLoss(
        results->btbMpki(frontend::PolicyKind::Ghrp),
        results->btbMpki(frontend::PolicyKind::Lru));
    EXPECT_EQ(btb_wl.better, 0u);
    EXPECT_EQ(btb_wl.similar, 4u);
    EXPECT_EQ(btb_wl.worse, 0u);
}

} // anonymous namespace

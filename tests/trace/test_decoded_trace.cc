/** @file Unit tests for the decode-once fetch-op stream. */

#include <gtest/gtest.h>

#include <cstdio>

#include "trace/decoded_trace.hh"
#include "trace/fetch_stream.hh"
#include "trace/trace_io.hh"
#include "workload/suite.hh"

namespace
{

using namespace ghrp;
using namespace ghrp::trace;

Trace
loopTrace()
{
    Trace t;
    t.name = "loop";
    t.category = "TEST";
    t.entryPc = 0x1000;
    for (int i = 0; i < 3; ++i)
        t.records.push_back(
            {0x1010, 0x1000, BranchType::CondDirect, true});
    t.records.push_back({0x1010, 0x1000, BranchType::CondDirect, false});
    t.records.push_back({0x1080, 0x2000, BranchType::Call, true});
    t.records.push_back({0x2008, 0x1084, BranchType::Return, true});
    return t;
}

TEST(BranchMeta, PackRoundTrip)
{
    for (unsigned t = 0; t < numBranchTypes; ++t) {
        const auto type = static_cast<BranchType>(t);
        for (bool taken : {false, true}) {
            const std::uint8_t m = branch_meta::pack(type, taken);
            EXPECT_EQ(branch_meta::type(m), type);
            EXPECT_EQ(branch_meta::taken(m), taken);
            EXPECT_EQ(branch_meta::conditional(m), isConditional(type));
            EXPECT_EQ(branch_meta::indirect(m), isIndirect(type));
            EXPECT_EQ(branch_meta::call(m), isCall(type));
            EXPECT_EQ(branch_meta::isReturn(m),
                      type == BranchType::Return);
        }
    }
}

TEST(DecodedTrace, MirrorsWalkerExactly)
{
    const Trace tr = loopTrace();
    const DecodedTrace dec = decodeTrace(tr, 64, 4);

    ASSERT_EQ(dec.numRecords(), tr.records.size());
    ASSERT_EQ(dec.opBegin.size(), tr.records.size() + 1);
    EXPECT_EQ(dec.opBegin.front(), 0u);
    EXPECT_EQ(dec.opBegin.back(), dec.numFetchOps());
    EXPECT_EQ(dec.entryPc, tr.entryPc);
    EXPECT_EQ(dec.resyncs, 0u);

    // Replay the walker with the front-end's coalescing rule and
    // compare op-for-op.
    FetchStreamWalker walker(tr.entryPc, 64, 4);
    Addr last_block = ~Addr{0};
    std::size_t op = 0;
    for (std::size_t i = 0; i < tr.records.size(); ++i) {
        const Addr run_start = walker.currentPc();
        walker.advance(tr.records[i], [&](Addr block_addr) {
            if (block_addr == last_block)
                return;
            last_block = block_addr;
            ASSERT_LT(op, dec.numFetchOps());
            const Addr fetch_pc = std::max(run_start, block_addr);
            EXPECT_EQ(dec.fetchPc[op], fetch_pc);
            // The block address must be recoverable from the fetch pc.
            EXPECT_EQ(dec.fetchPc[op] & ~Addr{63}, block_addr);
            ++op;
        });
        EXPECT_EQ(dec.opBegin[i + 1], op);
        EXPECT_EQ(dec.cumInstructions[i], walker.instructionCount());
        EXPECT_EQ(dec.brPc[i], tr.records[i].pc);
        EXPECT_EQ(dec.brTarget[i], tr.records[i].target);
        EXPECT_EQ(branch_meta::type(dec.brMeta[i]), tr.records[i].type);
        EXPECT_EQ(branch_meta::taken(dec.brMeta[i]),
                  tr.records[i].taken);
    }
    EXPECT_EQ(op, dec.numFetchOps());
    EXPECT_EQ(dec.totalInstructions(), walker.instructionCount());
}

TEST(DecodedTrace, CoalescesIntraBlockRuns)
{
    // Three loop iterations within one 64-byte block: only the first
    // touches the block; the rest are fetch-buffer hits.
    Trace t;
    t.entryPc = 0x1000;
    for (int i = 0; i < 3; ++i)
        t.records.push_back(
            {0x1010, 0x1000, BranchType::CondDirect, true});
    const DecodedTrace dec = decodeTrace(t, 64, 4);
    EXPECT_EQ(dec.numFetchOps(), 1u);
    EXPECT_EQ(dec.fetchPc[0], 0x1000u);
}

TEST(DecodedTrace, EmptyTrace)
{
    Trace t;
    t.entryPc = 0x4000;
    const DecodedTrace dec = decodeTrace(t, 64, 4);
    EXPECT_EQ(dec.numRecords(), 0u);
    EXPECT_EQ(dec.numFetchOps(), 0u);
    EXPECT_EQ(dec.totalInstructions(), 0u);
    ASSERT_EQ(dec.opBegin.size(), 1u);
    EXPECT_EQ(dec.opBegin[0], 0u);
    EXPECT_FALSE(dec.hasDirectionStream());
}

TEST(DecodedTrace, MappedDecodeMatchesInMemoryDecode)
{
    const auto specs = workload::makeSuite(1, 123);
    const Trace tr = workload::buildTrace(specs.front(), 50'000);
    const std::string path = ::testing::TempDir() + "/mapped.ghrptrc";
    writeTrace(tr, path);

    const auto mapped = MappedTrace::tryOpen(path);
    ASSERT_TRUE(mapped.has_value());
    const DecodedTrace from_map = decodeTrace(*mapped, 64, 4);
    const DecodedTrace from_mem = decodeTrace(tr, 64, 4);

    EXPECT_EQ(from_map.brPc, from_mem.brPc);
    EXPECT_EQ(from_map.brTarget, from_mem.brTarget);
    EXPECT_EQ(from_map.brMeta, from_mem.brMeta);
    EXPECT_EQ(from_map.cumInstructions, from_mem.cumInstructions);
    EXPECT_EQ(from_map.opBegin, from_mem.opBegin);
    EXPECT_EQ(from_map.fetchPc, from_mem.fetchPc);
    EXPECT_EQ(from_map.resyncs, from_mem.resyncs);
    std::remove(path.c_str());
}

TEST(DecodedTrace, SuiteTraceDecodeIsSelfConsistent)
{
    const auto specs = workload::makeSuite(2, 7);
    for (const auto &spec : specs) {
        const Trace tr = workload::buildTrace(spec, 100'000);
        const DecodedTrace dec = decodeTrace(tr, 64, 4);
        ASSERT_EQ(dec.numRecords(), tr.records.size());
        // Generated traces never resync and monotonic cumulative
        // counts are what places the warm-up boundary.
        EXPECT_EQ(dec.resyncs, 0u);
        for (std::size_t i = 1; i < dec.cumInstructions.size(); ++i)
            EXPECT_GE(dec.cumInstructions[i], dec.cumInstructions[i - 1]);
        EXPECT_GT(dec.totalInstructions(), 90'000u);
        EXPECT_GT(dec.memoryBytes(), 0u);
    }
}

} // anonymous namespace

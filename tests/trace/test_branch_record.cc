/** @file Unit tests for branch-record helpers and trace summaries. */

#include <gtest/gtest.h>

#include "trace/branch_record.hh"

namespace
{

using namespace ghrp;
using namespace ghrp::trace;

TEST(BranchType, Classification)
{
    EXPECT_TRUE(isConditional(BranchType::CondDirect));
    EXPECT_TRUE(isConditional(BranchType::CondIndirect));
    EXPECT_FALSE(isConditional(BranchType::Call));
    EXPECT_FALSE(isConditional(BranchType::Return));

    EXPECT_TRUE(isIndirect(BranchType::IndirectCall));
    EXPECT_TRUE(isIndirect(BranchType::UncondIndirect));
    EXPECT_FALSE(isIndirect(BranchType::UncondDirect));

    EXPECT_TRUE(isCall(BranchType::Call));
    EXPECT_TRUE(isCall(BranchType::IndirectCall));
    EXPECT_FALSE(isCall(BranchType::Return));
}

TEST(BranchType, NamesDistinct)
{
    for (unsigned a = 0; a < numBranchTypes; ++a)
        for (unsigned b = a + 1; b < numBranchTypes; ++b)
            EXPECT_STRNE(branchTypeName(static_cast<BranchType>(a)),
                         branchTypeName(static_cast<BranchType>(b)));
}

TEST(Summarize, CountsRecordsAndTypes)
{
    Trace t;
    t.entryPc = 0x1000;
    t.records = {
        {0x1008, 0x2000, BranchType::Call, true},
        {0x2004, 0x100C, BranchType::Return, true},
        {0x1010, 0x1000, BranchType::CondDirect, false},
        {0x1010, 0x1000, BranchType::CondDirect, true},
    };
    const TraceSummary s = summarize(t);
    EXPECT_EQ(s.records, 4u);
    EXPECT_EQ(s.takenCount, 3u);
    EXPECT_EQ(s.perType[static_cast<int>(BranchType::Call)], 1u);
    EXPECT_EQ(s.perType[static_cast<int>(BranchType::CondDirect)], 2u);
    // 0x1008, 0x2004, 0x1010 -> 3 distinct branch PCs, all taken at
    // least once.
    EXPECT_EQ(s.staticBranches, 3u);
    EXPECT_EQ(s.staticTakenBranches, 3u);
    EXPECT_DOUBLE_EQ(s.takenFraction(), 0.75);
    EXPECT_GT(s.instructions, 0u);
}

TEST(Summarize, CountsDistinctBlocks)
{
    Trace t;
    t.entryPc = 0x1000;
    // One long run 0x1000..0x10FF touches 4 blocks.
    t.records = {{0x10FC, 0x1000, BranchType::UncondDirect, true}};
    const TraceSummary s = summarize(t);
    EXPECT_EQ(s.staticBlocks64, 4u);
}

TEST(Summarize, EmptyTrace)
{
    Trace t;
    const TraceSummary s = summarize(t);
    EXPECT_EQ(s.records, 0u);
    EXPECT_EQ(s.takenFraction(), 0.0);
}

} // anonymous namespace

/** @file Unit tests for binary trace file I/O. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "trace/trace_io.hh"

namespace
{

using namespace ghrp;
using namespace ghrp::trace;

Trace
sampleTrace()
{
    Trace t;
    t.name = "sample";
    t.category = "SHORT-MOBILE";
    t.entryPc = 0x400000;
    t.records = {
        {0x400010, 0x400100, BranchType::CondDirect, true},
        {0x400104, 0x400200, BranchType::Call, true},
        {0x400204, 0x400108, BranchType::Return, true},
        {0x400110, 0, BranchType::CondDirect, false},
    };
    return t;
}

TEST(TraceIo, RoundTrip)
{
    const std::string path = ::testing::TempDir() + "/t.ghrptrc";
    const Trace original = sampleTrace();
    writeTrace(original, path);
    const Trace loaded = readTrace(path);
    EXPECT_EQ(loaded.name, original.name);
    EXPECT_EQ(loaded.category, original.category);
    EXPECT_EQ(loaded.entryPc, original.entryPc);
    ASSERT_EQ(loaded.records.size(), original.records.size());
    for (std::size_t i = 0; i < loaded.records.size(); ++i)
        EXPECT_EQ(loaded.records[i], original.records[i]);
    std::remove(path.c_str());
}

TEST(TraceIo, EmptyTraceRoundTrip)
{
    const std::string path = ::testing::TempDir() + "/empty.ghrptrc";
    Trace t;
    t.name = "";
    t.entryPc = 0;
    writeTrace(t, path);
    const Trace loaded = readTrace(path);
    EXPECT_TRUE(loaded.records.empty());
    std::remove(path.c_str());
}

TEST(TraceIoDeathTest, MissingFileIsFatal)
{
    EXPECT_EXIT(readTrace("/nonexistent/nowhere.trc"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceIoDeathTest, BadMagicIsFatal)
{
    const std::string path = ::testing::TempDir() + "/bad.ghrptrc";
    {
        std::ofstream f(path, std::ios::binary);
        f << "NOTATRACEFILE-------------";
    }
    EXPECT_EXIT(readTrace(path), ::testing::ExitedWithCode(1),
                "not a GHRP trace");
    std::remove(path.c_str());
}

TEST(TraceIoDeathTest, TruncatedFileIsFatal)
{
    const std::string path = ::testing::TempDir() + "/trunc.ghrptrc";
    writeTrace(sampleTrace(), path);
    // Truncate to half size.
    std::ifstream in(path, std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(data.data(),
                  static_cast<std::streamsize>(data.size() / 2));
    }
    EXPECT_EXIT(readTrace(path), ::testing::ExitedWithCode(1),
                "truncated");
    std::remove(path.c_str());
}

} // anonymous namespace

/** @file Unit tests for fetch-stream reconstruction (Section IV-A). */

#include <gtest/gtest.h>

#include <vector>

#include "trace/fetch_stream.hh"

namespace
{

using namespace ghrp;
using namespace ghrp::trace;

std::vector<Addr>
visitBlocks(FetchStreamWalker &walker, const BranchRecord &rec)
{
    std::vector<Addr> blocks;
    walker.advance(rec, [&](Addr b) { blocks.push_back(b); });
    return blocks;
}

TEST(FetchStream, SingleBlockRun)
{
    FetchStreamWalker w(0x1000);
    // Branch at 0x1008, same block as the entry point.
    const auto blocks = visitBlocks(
        w, {0x1008, 0x2000, BranchType::UncondDirect, true});
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_EQ(blocks[0], 0x1000u);
    // 0x1000..0x1008 inclusive = 3 instructions.
    EXPECT_EQ(w.instructionCount(), 3u);
    EXPECT_EQ(w.currentPc(), 0x2000u);
}

TEST(FetchStream, MultiBlockRun)
{
    FetchStreamWalker w(0x1000);
    // Run spans 0x1000..0x10A0: blocks 0x1000, 0x1040, 0x1080.
    const auto blocks = visitBlocks(
        w, {0x10A0, 0, BranchType::CondDirect, false});
    ASSERT_EQ(blocks.size(), 3u);
    EXPECT_EQ(blocks[0], 0x1000u);
    EXPECT_EQ(blocks[1], 0x1040u);
    EXPECT_EQ(blocks[2], 0x1080u);
    EXPECT_EQ(w.instructionCount(), (0xA0u / 4) + 1);
}

TEST(FetchStream, NotTakenFallsThrough)
{
    FetchStreamWalker w(0x1000);
    visitBlocks(w, {0x1000, 0x9000, BranchType::CondDirect, false});
    EXPECT_EQ(w.currentPc(), 0x1004u);
}

TEST(FetchStream, TakenGoesToTarget)
{
    FetchStreamWalker w(0x1000);
    visitBlocks(w, {0x1000, 0x9000, BranchType::CondDirect, true});
    EXPECT_EQ(w.currentPc(), 0x9000u);
}

TEST(FetchStream, BranchIsItsOwnRun)
{
    FetchStreamWalker w(0x2000);
    // Branch at the entry PC itself: one instruction, one block.
    const auto blocks = visitBlocks(
        w, {0x2000, 0x3000, BranchType::Call, true});
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_EQ(w.instructionCount(), 1u);
}

TEST(FetchStream, AccumulatesInstructions)
{
    FetchStreamWalker w(0x1000);
    visitBlocks(w, {0x1008, 0x4000, BranchType::UncondDirect, true});
    visitBlocks(w, {0x4004, 0x1000, BranchType::UncondDirect, true});
    EXPECT_EQ(w.instructionCount(), 3u + 2u);
}

TEST(FetchStream, ResyncOnMalformedTrace)
{
    FetchStreamWalker w(0x9000);
    // Record behind the fetch PC: tolerated with a resync count.
    visitBlocks(w, {0x1000, 0x2000, BranchType::UncondDirect, true});
    EXPECT_EQ(w.resyncs(), 1u);
}

TEST(FetchStream, CustomBlockAndInstrSizes)
{
    FetchStreamWalker w(0x100, 32, 2);
    const auto blocks = visitBlocks(
        w, {0x140, 0, BranchType::CondDirect, false});
    // 0x100..0x140 at 32B blocks: 0x100, 0x120, 0x140.
    ASSERT_EQ(blocks.size(), 3u);
    EXPECT_EQ(w.instructionCount(), (0x40u / 2) + 1);
}

/** Property: block visits are ascending and aligned for random runs. */
class FetchStreamRuns : public ::testing::TestWithParam<Addr>
{
};

TEST_P(FetchStreamRuns, BlocksAscendingAligned)
{
    FetchStreamWalker w(GetParam());
    const Addr branch_pc = GetParam() + 4 * 37;
    std::vector<Addr> blocks = visitBlocks(
        w, {branch_pc, 0, BranchType::CondDirect, false});
    ASSERT_FALSE(blocks.empty());
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        EXPECT_EQ(blocks[i] % 64, 0u);
        if (i > 0) {
            EXPECT_EQ(blocks[i], blocks[i - 1] + 64);
        }
    }
    EXPECT_EQ(blocks.front(), GetParam() & ~Addr{63});
    EXPECT_EQ(blocks.back(), branch_pc & ~Addr{63});
}

INSTANTIATE_TEST_SUITE_P(Starts, FetchStreamRuns,
                         ::testing::Values(0x1000u, 0x1004u, 0x103Cu,
                                           0x7FFC4u));

} // anonymous namespace

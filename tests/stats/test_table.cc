/** @file Unit tests for table rendering and S-curve ordering. */

#include <gtest/gtest.h>

#include "stats/table.hh"

namespace
{

using namespace ghrp::stats;

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t({"a", "bb"});
    t.addRow({"1", "2"});
    const std::string out = t.render();
    EXPECT_NE(out.find("a"), std::string::npos);
    EXPECT_NE(out.find("bb"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
    EXPECT_NE(out.find("1"), std::string::npos);
}

TEST(TextTable, ColumnsAligned)
{
    TextTable t({"name", "v"});
    t.addRow({"x", "10"});
    t.addRow({"longername", "3"});
    const std::string out = t.render();
    // Column 2 must start at the same offset in both data rows.
    const auto first_nl = out.find('\n');
    const auto rule_end = out.find('\n', first_nl + 1);
    const auto row1 = out.substr(rule_end + 1,
                                 out.find('\n', rule_end + 1) - rule_end);
    const auto row2_start = out.find('\n', rule_end + 1) + 1;
    const auto row2 = out.substr(row2_start,
                                 out.find('\n', row2_start) - row2_start);
    EXPECT_EQ(row1.find("10"), row2.find("3"));
}

TEST(TextTable, NumFormatting)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::num(-0.5, 1), "-0.5");
    EXPECT_EQ(TextTable::num(3.0, 0), "3");
}

TEST(TextTable, CsvOutput)
{
    TextTable t({"x", "y"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.renderCsv(), "x,y\n1,2\n");
}

TEST(TextTable, CsvFileRoundTrip)
{
    TextTable t({"h"});
    t.addRow({"v"});
    const std::string path = ::testing::TempDir() + "/t.csv";
    t.writeCsv(path);
    FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[16] = {};
    ASSERT_GT(std::fread(buf, 1, sizeof(buf) - 1, f), 0u);
    std::fclose(f);
    EXPECT_STREQ(buf, "h\nv\n");
    std::remove(path.c_str());
}

TEST(TextTableDeathTest, RowWidthMismatchPanics)
{
    TextTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only one"}), "table row");
}

TEST(SCurve, OrdersByBaseline)
{
    const std::vector<double> base{3.0, 1.0, 2.0};
    const SCurve curve = SCurve::byAscending(base);
    ASSERT_EQ(curve.order.size(), 3u);
    EXPECT_EQ(curve.order[0], 1u);
    EXPECT_EQ(curve.order[1], 2u);
    EXPECT_EQ(curve.order[2], 0u);
}

TEST(SCurve, AppliesOrderingToOtherSeries)
{
    const std::vector<double> base{3.0, 1.0, 2.0};
    const SCurve curve = SCurve::byAscending(base);
    const std::vector<double> other{30.0, 10.0, 20.0};
    EXPECT_EQ(curve.apply(other), (std::vector<double>{10.0, 20.0, 30.0}));
}

TEST(SCurve, StableForTies)
{
    const std::vector<double> base{1.0, 1.0, 0.5};
    const SCurve curve = SCurve::byAscending(base);
    EXPECT_EQ(curve.order[0], 2u);
    EXPECT_EQ(curve.order[1], 0u);  // stable: original order kept
    EXPECT_EQ(curve.order[2], 1u);
}

} // anonymous namespace

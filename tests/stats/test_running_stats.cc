/** @file Unit tests for the Welford accumulator. */

#include <gtest/gtest.h>

#include "stats/running_stats.hh"

namespace
{

using ghrp::stats::RunningStats;

TEST(RunningStats, EmptyIsZero)
{
    RunningStats rs;
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_EQ(rs.mean(), 0.0);
    EXPECT_EQ(rs.variance(), 0.0);
    EXPECT_EQ(rs.stderror(), 0.0);
}

TEST(RunningStats, MeanAndSum)
{
    RunningStats rs;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        rs.add(v);
    EXPECT_EQ(rs.count(), 4u);
    EXPECT_DOUBLE_EQ(rs.mean(), 2.5);
    EXPECT_DOUBLE_EQ(rs.sum(), 10.0);
}

TEST(RunningStats, VarianceMatchesClosedForm)
{
    RunningStats rs;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        rs.add(v);
    // Known data set: sample variance = 32/7.
    EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(rs.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStats, MinMax)
{
    RunningStats rs;
    for (double v : {3.0, -1.0, 7.5, 2.0})
        rs.add(v);
    EXPECT_EQ(rs.min(), -1.0);
    EXPECT_EQ(rs.max(), 7.5);
}

TEST(RunningStats, SingleValue)
{
    RunningStats rs;
    rs.add(42.0);
    EXPECT_EQ(rs.mean(), 42.0);
    EXPECT_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, ConstantStream)
{
    RunningStats rs;
    for (int i = 0; i < 100; ++i)
        rs.add(5.0);
    EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
    EXPECT_NEAR(rs.variance(), 0.0, 1e-12);
}

} // anonymous namespace

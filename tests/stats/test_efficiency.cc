/** @file Unit tests for the cache-efficiency (heat map) tracker. */

#include <gtest/gtest.h>

#include <cstdio>

#include "stats/efficiency.hh"

namespace
{

using ghrp::stats::EfficiencyTracker;

TEST(Efficiency, FullyLiveGeneration)
{
    EfficiencyTracker t(2, 2);
    t.onFill(0, 0, 10);
    t.onHit(0, 0, 20);
    t.onEvict(0, 0, 20);  // evicted exactly at last hit
    EXPECT_DOUBLE_EQ(t.efficiency(0, 0), 1.0);
}

TEST(Efficiency, DeadOnArrival)
{
    EfficiencyTracker t(2, 2);
    t.onFill(0, 1, 10);
    t.onEvict(0, 1, 110);  // never hit: live time 0 of 100
    EXPECT_DOUBLE_EQ(t.efficiency(0, 1), 0.0);
}

TEST(Efficiency, HalfLive)
{
    EfficiencyTracker t(1, 1);
    t.onFill(0, 0, 0);
    t.onHit(0, 0, 50);
    t.onEvict(0, 0, 100);
    EXPECT_DOUBLE_EQ(t.efficiency(0, 0), 0.5);
}

TEST(Efficiency, AccumulatesAcrossGenerations)
{
    EfficiencyTracker t(1, 1);
    t.onFill(0, 0, 0);
    t.onEvict(0, 0, 100);  // dead 100
    t.onFill(0, 0, 100);
    t.onHit(0, 0, 200);
    t.onEvict(0, 0, 200);  // live 100
    EXPECT_DOUBLE_EQ(t.efficiency(0, 0), 0.5);
}

TEST(Efficiency, ImplicitEvictionOnRefill)
{
    EfficiencyTracker t(1, 1);
    t.onFill(0, 0, 0);
    t.onFill(0, 0, 100);  // closes first generation (dead)
    t.onHit(0, 0, 150);
    t.finalize(200);
    // First generation: 0/100 live; second: 50/100.
    EXPECT_DOUBLE_EQ(t.efficiency(0, 0), 0.25);
}

TEST(Efficiency, FinalizeClosesOpenGenerations)
{
    EfficiencyTracker t(1, 2);
    t.onFill(0, 0, 0);
    t.onHit(0, 0, 80);
    t.finalize(100);
    EXPECT_DOUBLE_EQ(t.efficiency(0, 0), 0.8);
}

TEST(Efficiency, MeanSkipsUntouchedFrames)
{
    EfficiencyTracker t(2, 2);
    t.onFill(0, 0, 0);
    t.onHit(0, 0, 50);
    t.onEvict(0, 0, 100);
    EXPECT_DOUBLE_EQ(t.meanEfficiency(), 0.5);
}

TEST(Efficiency, AsciiRenderShape)
{
    EfficiencyTracker t(8, 4);
    t.onFill(0, 0, 0);
    t.onEvict(0, 0, 10);
    const std::string art = t.renderAscii(8);
    // 8 rows of 4 chars + newline each.
    EXPECT_EQ(art.size(), 8u * 5u);
}

TEST(Efficiency, AsciiFoldsRows)
{
    EfficiencyTracker t(64, 4);
    const std::string art = t.renderAscii(16);
    EXPECT_EQ(art.size(), 16u * 5u);
}

TEST(Efficiency, WritePgm)
{
    EfficiencyTracker t(4, 4);
    t.onFill(1, 1, 0);
    t.onHit(1, 1, 50);
    t.onEvict(1, 1, 100);
    const std::string path = ::testing::TempDir() + "/eff.pgm";
    t.writePgm(path);
    FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char magic[2];
    ASSERT_EQ(std::fread(magic, 1, 2, f), 2u);
    EXPECT_EQ(magic[0], 'P');
    EXPECT_EQ(magic[1], '5');
    std::fclose(f);
    std::remove(path.c_str());
}

} // anonymous namespace

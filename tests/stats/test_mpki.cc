/** @file Unit tests for MPKI accounting. */

#include <gtest/gtest.h>

#include "stats/mpki.hh"

namespace
{

using ghrp::stats::AccessStats;

TEST(AccessStats, RecordsHitsAndMisses)
{
    AccessStats s;
    s.recordHit();
    s.recordHit();
    s.recordMiss(false);
    s.recordMiss(true);
    EXPECT_EQ(s.accesses, 4u);
    EXPECT_EQ(s.hits, 2u);
    EXPECT_EQ(s.misses, 2u);
    EXPECT_EQ(s.bypasses, 1u);
}

TEST(AccessStats, HitRate)
{
    AccessStats s;
    EXPECT_EQ(s.hitRate(), 0.0);
    s.recordHit();
    s.recordMiss(false);
    EXPECT_DOUBLE_EQ(s.hitRate(), 0.5);
}

TEST(AccessStats, Mpki)
{
    AccessStats s;
    for (int i = 0; i < 5; ++i)
        s.recordMiss(false);
    EXPECT_DOUBLE_EQ(s.mpki(1000), 5.0);
    EXPECT_DOUBLE_EQ(s.mpki(10000), 0.5);
    EXPECT_EQ(s.mpki(0), 0.0);
}

} // anonymous namespace

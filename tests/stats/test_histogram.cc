/** @file Unit tests for the linear-bin histogram. */

#include <gtest/gtest.h>

#include "stats/histogram.hh"

namespace
{

using ghrp::stats::Histogram;

TEST(Histogram, BinsSamples)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(1.5);
    h.add(1.6);
    h.add(9.99);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(1), 2u);
    EXPECT_EQ(h.binCount(9), 1u);
}

TEST(Histogram, UnderOverflow)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-5.0);
    h.add(2.0);
    h.add(1.0);  // hi bound is exclusive -> overflow
    EXPECT_EQ(h.underflowCount(), 1u);
    EXPECT_EQ(h.overflowCount(), 2u);
}

TEST(Histogram, BinLowEdges)
{
    Histogram h(10.0, 20.0, 5);
    EXPECT_DOUBLE_EQ(h.binLow(0), 10.0);
    EXPECT_DOUBLE_EQ(h.binLow(4), 18.0);
}

TEST(Histogram, CumulativeFraction)
{
    Histogram h(0.0, 4.0, 4);
    h.add(0.5);
    h.add(1.5);
    h.add(2.5);
    h.add(3.5);
    EXPECT_DOUBLE_EQ(h.cumulativeFraction(0), 0.25);
    EXPECT_DOUBLE_EQ(h.cumulativeFraction(1), 0.5);
    EXPECT_DOUBLE_EQ(h.cumulativeFraction(3), 1.0);
}

TEST(Histogram, RenderContainsCounts)
{
    Histogram h(0.0, 2.0, 2);
    h.add(0.5);
    h.add(0.6);
    const std::string art = h.render(20);
    EXPECT_NE(art.find('#'), std::string::npos);
    EXPECT_NE(art.find('2'), std::string::npos);
}

} // anonymous namespace

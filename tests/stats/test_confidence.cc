/** @file Unit tests for t-quantiles, confidence intervals, quantiles. */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/confidence.hh"

namespace
{

using namespace ghrp::stats;

TEST(TQuantile, MatchesTablesAt95)
{
    // Exact small-dof values.
    EXPECT_NEAR(tQuantile(1, 0.95), 12.706, 1e-3);
    EXPECT_NEAR(tQuantile(5, 0.95), 2.571, 1e-3);
    EXPECT_NEAR(tQuantile(10, 0.95), 2.228, 1e-3);
    // Larger dof via the expansion (reference values from tables).
    EXPECT_NEAR(tQuantile(30, 0.95), 2.042, 0.01);
    EXPECT_NEAR(tQuantile(100, 0.95), 1.984, 0.01);
    EXPECT_NEAR(tQuantile(1000, 0.95), 1.962, 0.01);
}

TEST(TQuantile, OtherConfidenceLevels)
{
    EXPECT_NEAR(tQuantile(30, 0.90), 1.697, 0.02);
    EXPECT_NEAR(tQuantile(30, 0.99), 2.750, 0.03);
}

TEST(TQuantile, DecreasesWithDof)
{
    EXPECT_GT(tQuantile(2, 0.95), tQuantile(5, 0.95));
    EXPECT_GT(tQuantile(5, 0.95), tQuantile(50, 0.95));
}

TEST(MeanConfidence, EmptyAndSingle)
{
    EXPECT_EQ(meanConfidence({}).mean, 0.0);
    const ConfidenceInterval one = meanConfidence({3.0});
    EXPECT_EQ(one.mean, 3.0);
    EXPECT_EQ(one.halfWidth, 0.0);
}

TEST(MeanConfidence, KnownData)
{
    // n=4, mean 2.5, sd = sqrt(5/3), se = sd/2, t(3,.95)=3.182.
    const ConfidenceInterval ci = meanConfidence({1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(ci.mean, 2.5);
    const double se = std::sqrt(5.0 / 3.0) / 2.0;
    EXPECT_NEAR(ci.halfWidth, 3.182 * se, 1e-3);
    EXPECT_LT(ci.lower(), ci.mean);
    EXPECT_GT(ci.upper(), ci.mean);
}

TEST(MeanConfidence, TightensWithSamples)
{
    std::vector<double> few, many;
    for (int i = 0; i < 8; ++i)
        few.push_back(i % 2 ? 1.0 : -1.0);
    for (int i = 0; i < 800; ++i)
        many.push_back(i % 2 ? 1.0 : -1.0);
    EXPECT_GT(meanConfidence(few).halfWidth,
              meanConfidence(many).halfWidth);
}

TEST(Quantile, Endpoints)
{
    std::vector<double> v{5.0, 1.0, 3.0};
    EXPECT_EQ(quantile(v, 0.0), 1.0);
    EXPECT_EQ(quantile(v, 1.0), 5.0);
    EXPECT_EQ(quantile(v, 0.5), 3.0);
}

TEST(Quantile, Interpolates)
{
    std::vector<double> v{0.0, 10.0};
    EXPECT_NEAR(quantile(v, 0.25), 2.5, 1e-12);
    EXPECT_NEAR(quantile(v, 0.75), 7.5, 1e-12);
}

} // anonymous namespace

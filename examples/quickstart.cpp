/**
 * @file
 * Quickstart: generate one synthetic workload, simulate the front-end
 * under the paper's five replacement policies, and print I-cache and
 * BTB MPKI side by side.
 *
 * Usage: quickstart [--seed S] [--instructions N] [--category NAME]
 */

#include <cstdio>

#include "core/cli.hh"
#include "frontend/frontend.hh"
#include "stats/table.hh"
#include "trace/branch_record.hh"
#include "workload/suite.hh"

int
main(int argc, char **argv)
{
    using namespace ghrp;

    core::CliOptions cli(argc, argv);

    workload::TraceSpec spec;
    spec.category = workload::parseCategory(
        cli.getString("category", "SHORT-SERVER"));
    spec.seed = cli.getUint("seed", 7);
    spec.name = "quickstart";

    const std::uint64_t instructions =
        cli.getUint("instructions", 2'000'000);

    std::printf("Generating a %s workload (seed %llu, %llu instructions)"
                "...\n",
                workload::categoryName(spec.category),
                static_cast<unsigned long long>(spec.seed),
                static_cast<unsigned long long>(instructions));

    const trace::Trace tr = workload::buildTrace(spec, instructions);
    const trace::TraceSummary summary = trace::summarize(tr);
    std::printf("  %llu branch records, %llu instructions, "
                "%llu static branches (%llu taken sites), "
                "%.0f KB code footprint\n\n",
                static_cast<unsigned long long>(summary.records),
                static_cast<unsigned long long>(summary.instructions),
                static_cast<unsigned long long>(summary.staticBranches),
                static_cast<unsigned long long>(
                    summary.staticTakenBranches),
                static_cast<double>(summary.staticBlocks64) * 64 / 1024);

    stats::TextTable table({"policy", "icache-MPKI", "btb-MPKI",
                            "icache-hit%", "dead-evict%", "bypass%",
                            "btb-dead-evict%", "cond-mispredict%"});

    for (frontend::PolicyKind policy : frontend::paperPolicies) {
        frontend::FrontendConfig config;
        config.policy = policy;
        const frontend::FrontendResult r =
            frontend::simulateTrace(config, tr);
        const double dead_pct =
            r.icache.evictions
                ? 100.0 * static_cast<double>(r.icache.deadEvictions) /
                      static_cast<double>(r.icache.evictions)
                : 0.0;
        const double bypass_pct =
            r.icache.misses
                ? 100.0 * static_cast<double>(r.icache.bypasses) /
                      static_cast<double>(r.icache.misses)
                : 0.0;
        const double btb_dead_pct =
            r.btb.evictions
                ? 100.0 * static_cast<double>(r.btb.deadEvictions) /
                      static_cast<double>(r.btb.evictions)
                : 0.0;
        table.addRow({frontend::policyName(policy),
                      stats::TextTable::num(r.icacheMpki),
                      stats::TextTable::num(r.btbMpki),
                      stats::TextTable::num(r.icache.hitRate() * 100, 2),
                      stats::TextTable::num(dead_pct, 1),
                      stats::TextTable::num(bypass_pct, 1),
                      stats::TextTable::num(btb_dead_pct, 1),
                      stats::TextTable::num(r.mispredictRate() * 100, 2)});
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("64KB 8-way 64B I-cache, 4K-entry 4-way BTB, hashed "
                "perceptron direction predictor.\n");
    return 0;
}

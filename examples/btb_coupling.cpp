/**
 * @file
 * Inspect GHRP's I-cache/BTB metadata sharing (paper Section III-E):
 * runs one trace under GHRP and reports how BTB predictions were
 * sourced — from the branch's resident I-cache block signature or from
 * the fresh-history fallback — plus the dead-entry prediction rate and
 * the resulting replacement statistics.
 *
 * Usage: btb_coupling [--category NAME] [--seed S] [--instructions N]
 */

#include <cstdio>

#include "core/cli.hh"
#include "frontend/frontend.hh"
#include "predictor/ghrp.hh"
#include "workload/suite.hh"

int
main(int argc, char **argv)
{
    using namespace ghrp;

    core::CliOptions cli(argc, argv);
    workload::TraceSpec spec;
    spec.category = workload::parseCategory(
        cli.getString("category", "LONG-SERVER"));
    spec.seed = cli.getUint("seed", 13);
    spec.name = "btb-coupling";
    const std::uint64_t instructions =
        cli.getUint("instructions", 8'000'000);

    const trace::Trace tr = workload::buildTrace(spec, instructions);

    frontend::FrontendConfig cfg;
    cfg.policy = frontend::PolicyKind::Ghrp;
    frontend::FrontendSim sim(cfg);
    const frontend::FrontendResult r = sim.run(tr);

    const auto &btb_policy =
        dynamic_cast<predictor::GhrpBtbReplacement &>(
            sim.btbModel().cacheModel().policy());
    const auto &cs = btb_policy.couplingStats();

    std::printf("=== GHRP I-cache/BTB coupling on %s seed %llu ===\n\n",
                workload::categoryName(spec.category),
                static_cast<unsigned long long>(spec.seed));
    std::printf("BTB accesses (taken branches):   %llu\n",
                static_cast<unsigned long long>(cs.accesses));
    std::printf("  signature from resident block: %llu (%.1f%%)\n",
                static_cast<unsigned long long>(cs.residentBlock),
                cs.accesses ? 100.0 * cs.residentBlock / cs.accesses : 0);
    std::printf("  fresh-history fallback:        %llu (%.1f%%)\n",
                static_cast<unsigned long long>(cs.fallback),
                cs.accesses ? 100.0 * cs.fallback / cs.accesses : 0);
    std::printf("  predicted dead at access:      %llu (%.2f%%)\n\n",
                static_cast<unsigned long long>(cs.predictedDead),
                cs.accesses ? 100.0 * cs.predictedDead / cs.accesses : 0);
    std::printf("BTB MPKI %.3f (dead-entry evictions: %.1f%% of %llu "
                "evictions)\n",
                r.btbMpki,
                r.btb.evictions
                    ? 100.0 * r.btb.deadEvictions / r.btb.evictions
                    : 0,
                static_cast<unsigned long long>(r.btb.evictions));
    std::printf("I-cache MPKI %.3f (dead evictions %.1f%%, bypasses "
                "%.1f%% of misses)\n",
                r.icacheMpki,
                r.icache.evictions
                    ? 100.0 * r.icache.deadEvictions / r.icache.evictions
                    : 0,
                r.icache.misses
                    ? 100.0 * r.icache.bypasses / r.icache.misses
                    : 0);
    std::printf("\nThe BTB carries only one prediction bit per entry; "
                "everything else is\nreused from the I-cache's GHRP "
                "state (paper Section III-E).\n");
    return 0;
}

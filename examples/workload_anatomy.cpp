/**
 * @file
 * Workload anatomy: dissects one synthetic trace's I-cache behaviour.
 *
 *  - LRU vs Belady's OPT (the offline optimum) — the headroom any
 *    online replacement policy could possibly capture;
 *  - generation statistics under LRU: how many block generations die
 *    without a single hit (dead-on-arrival traffic);
 *  - access/miss composition (compulsory vs capacity/conflict).
 *
 * Usage: workload_anatomy [--category NAME] [--seed S]
 *                         [--instructions N] [--kb 64] [--assoc 8]
 */

#include <cstdio>
#include <deque>
#include <unordered_map>
#include <vector>

#include "core/cli.hh"
#include "trace/fetch_stream.hh"
#include "util/bit_ops.hh"
#include "workload/suite.hh"

namespace
{

using namespace ghrp;

/** Flat record of the fetch-block access stream. */
struct AccessStream
{
    std::vector<Addr> blocks;  ///< block address per access
    std::uint64_t instructions = 0;
};

AccessStream
collectStream(const trace::Trace &tr)
{
    AccessStream stream;
    stream.blocks.reserve(tr.records.size() * 2);
    trace::FetchStreamWalker walker(tr.entryPc, 64, 4);
    Addr last_block = ~Addr{0};
    for (const trace::BranchRecord &rec : tr.records)
        walker.advance(rec, [&](Addr block) {
            if (block == last_block)
                return;
            last_block = block;
            stream.blocks.push_back(block);
        });
    stream.instructions = walker.instructionCount();
    return stream;
}

/** LRU simulation collecting generation statistics. */
struct LruOutcome
{
    std::uint64_t misses = 0;
    std::uint64_t compulsory = 0;
    std::uint64_t generations = 0;
    std::uint64_t zeroHitGenerations = 0;
    std::uint64_t singleHitGenerations = 0;
};

LruOutcome
simulateLru(const AccessStream &stream, std::uint32_t sets,
            std::uint32_t ways)
{
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        std::uint64_t hits = 0;
    };
    std::vector<std::vector<Line>> cache(sets);
    for (auto &set : cache)
        set.reserve(ways);
    std::unordered_map<Addr, bool> seen;

    LruOutcome out;
    std::uint64_t pos = 0, half_misses = 0;
    for (Addr block : stream.blocks) {
        ++pos;
        if (pos == stream.blocks.size() / 2)
            half_misses = out.misses;
        const std::uint32_t set =
            static_cast<std::uint32_t>((block >> 6) & (sets - 1));
        auto &lines = cache[set];
        bool hit = false;
        for (std::size_t i = 0; i < lines.size(); ++i) {
            if (lines[i].valid && lines[i].tag == block) {
                Line line = lines[i];
                ++line.hits;
                lines.erase(lines.begin() +
                            static_cast<std::ptrdiff_t>(i));
                lines.push_back(line);  // MRU at back
                hit = true;
                break;
            }
        }
        if (hit)
            continue;
        ++out.misses;
        if (!seen[block]) {
            seen[block] = true;
            ++out.compulsory;
        }
        if (lines.size() >= ways) {
            const Line &victim = lines.front();
            ++out.generations;
            if (victim.hits == 0)
                ++out.zeroHitGenerations;
            else if (victim.hits == 1)
                ++out.singleHitGenerations;
            lines.erase(lines.begin());
        }
        lines.push_back({block, true, 0});
    }
    std::printf("  [first half misses: %llu, second half: %llu]\n",
                static_cast<unsigned long long>(half_misses),
                static_cast<unsigned long long>(out.misses - half_misses));
    return out;
}

/** Belady's OPT misses (per-set, using future reference positions). */
std::uint64_t
simulateOpt(const AccessStream &stream, std::uint32_t sets,
            std::uint32_t ways)
{
    // Pre-pass: for each access, the index of the next access to the
    // same block (or "infinity").
    const std::uint64_t n = stream.blocks.size();
    const std::uint64_t inf = ~std::uint64_t{0};
    std::vector<std::uint64_t> next_use(n, inf);
    std::unordered_map<Addr, std::uint64_t> last_pos;
    for (std::uint64_t i = n; i-- > 0;) {
        const Addr block = stream.blocks[i];
        const auto it = last_pos.find(block);
        next_use[i] = it == last_pos.end() ? inf : it->second;
        last_pos[block] = i;
    }

    struct Line
    {
        Addr tag;
        std::uint64_t nextUse;
    };
    std::vector<std::vector<Line>> cache(sets);
    std::uint64_t misses = 0;

    for (std::uint64_t i = 0; i < n; ++i) {
        const Addr block = stream.blocks[i];
        const std::uint32_t set =
            static_cast<std::uint32_t>((block >> 6) & (sets - 1));
        auto &lines = cache[set];

        bool hit = false;
        for (Line &line : lines) {
            if (line.tag == block) {
                line.nextUse = next_use[i];
                hit = true;
                break;
            }
        }
        if (hit)
            continue;
        ++misses;
        if (lines.size() < ways) {
            lines.push_back({block, next_use[i]});
            continue;
        }
        // Evict the line referenced farthest in the future. OPT with
        // bypass: if the incoming block's next use is farther than
        // every resident line's, do not cache it at all.
        std::size_t victim = 0;
        for (std::size_t w = 1; w < lines.size(); ++w)
            if (lines[w].nextUse > lines[victim].nextUse)
                victim = w;
        if (next_use[i] >= lines[victim].nextUse)
            continue;  // bypass
        lines[victim] = {block, next_use[i]};
    }
    return misses;
}


/**
 * Signature informativeness: replay the stream under LRU, tagging each
 * resident block with (a) its GHRP path signature and (b) its block
 * address, at every access. Each eviction is a "dead" event for the
 * tag; each hit is a "live" event. A signature family is informative
 * when many dead events land on signatures that are almost always
 * dead.
 */
struct SigStats
{
    std::uint64_t dead = 0;
    std::uint64_t live = 0;
};

struct Informativeness
{
    double deadCoverage80 = 0;  ///< dead events on >=80%-dead sigs
    double liveLoss80 = 0;      ///< live events lost on those sigs
    std::uint64_t signatures = 0;
};

template <typename TagFn>
Informativeness
measureInformativeness(const AccessStream &stream, std::uint32_t sets,
                       std::uint32_t ways, TagFn &&tag_of)
{
    struct Line
    {
        Addr tag = 0;
        std::uint64_t sig = 0;
    };
    std::vector<std::deque<Line>> cache(sets);
    std::unordered_map<std::uint64_t, SigStats> stats;

    std::uint32_t history = 0;
    for (Addr block : stream.blocks) {
        const std::uint64_t sig = tag_of(block, history);
        history = ((history << 4) | (((block >> 6) & 7u) << 1)) & 0xFFFF;

        const std::uint32_t set =
            static_cast<std::uint32_t>((block >> 6) & (sets - 1));
        auto &lines = cache[set];
        bool hit = false;
        for (std::size_t i = 0; i < lines.size(); ++i) {
            if (lines[i].tag == block) {
                ++stats[lines[i].sig].live;
                Line line = lines[i];
                line.sig = sig;
                lines.erase(lines.begin() +
                            static_cast<std::ptrdiff_t>(i));
                lines.push_back(line);
                hit = true;
                break;
            }
        }
        if (hit)
            continue;
        if (lines.size() >= ways) {
            ++stats[lines.front().sig].dead;
            lines.pop_front();
        }
        lines.push_back({block, sig});
    }

    std::uint64_t total_dead = 0, total_live = 0;
    std::uint64_t covered_dead = 0, lost_live = 0;
    for (const auto &[sig, st] : stats) {
        total_dead += st.dead;
        total_live += st.live;
        const double ratio =
            st.dead + st.live
                ? static_cast<double>(st.dead) / (st.dead + st.live)
                : 0.0;
        if (ratio >= 0.8 && st.dead + st.live >= 2) {
            covered_dead += st.dead;
            lost_live += st.live;
        }
    }
    Informativeness info;
    info.signatures = stats.size();
    info.deadCoverage80 =
        total_dead ? 100.0 * static_cast<double>(covered_dead) / total_dead
                   : 0.0;
    info.liveLoss80 =
        total_live ? 100.0 * static_cast<double>(lost_live) / total_live
                   : 0.0;
    return info;
}

} // anonymous namespace

namespace
{

AccessStream
collectBtbStream(const trace::Trace &tr)
{
    AccessStream stream;
    trace::FetchStreamWalker walker(tr.entryPc, 64, 4);
    for (const trace::BranchRecord &rec : tr.records) {
        walker.advance(rec, [](Addr) {});
        // Only taken non-return branches access the BTB (returns use
        // the RAS). Shift so entry-granular set indexing works with
        // the generic >>6 machinery below (entries are 4B slots).
        if (rec.taken && rec.type != trace::BranchType::Return)
            stream.blocks.push_back(rec.pc << 4);  // (pc>>2) << 6
    }
    stream.instructions = walker.instructionCount();
    return stream;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    core::CliOptions cli(argc, argv);

    workload::TraceSpec spec;
    spec.category =
        workload::parseCategory(cli.getString("category", "SHORT-SERVER"));
    spec.seed = cli.getUint("seed", 7);
    spec.name = "anatomy";
    const std::uint64_t instructions = cli.getUint("instructions", 0);
    const auto kb = static_cast<std::uint32_t>(cli.getUint("kb", 64));
    const auto assoc = static_cast<std::uint32_t>(cli.getUint("assoc", 8));
    const std::uint32_t sets = kb * 1024 / 64 / assoc;

    const trace::Trace tr = workload::buildTrace(spec, instructions);
    const AccessStream stream = collectStream(tr);

    const LruOutcome lru = simulateLru(stream, sets, assoc);
    const std::uint64_t opt = simulateOpt(stream, sets, assoc);

    const double to_mpki =
        1000.0 / static_cast<double>(stream.instructions);
    std::printf("trace %s seed %llu: %zu accesses, %llu instructions\n",
                workload::categoryName(spec.category),
                static_cast<unsigned long long>(spec.seed),
                stream.blocks.size(),
                static_cast<unsigned long long>(stream.instructions));
    std::printf("I-cache %uKB %u-way (%u sets)\n\n", kb, assoc, sets);
    std::printf("LRU  misses: %8llu  (%.3f MPKI; %llu compulsory)\n",
                static_cast<unsigned long long>(lru.misses),
                static_cast<double>(lru.misses) * to_mpki,
                static_cast<unsigned long long>(lru.compulsory));
    std::printf("OPT  misses: %8llu  (%.3f MPKI)  -> headroom vs LRU: "
                "%.1f%%\n\n",
                static_cast<unsigned long long>(opt),
                static_cast<double>(opt) * to_mpki,
                lru.misses
                    ? (1.0 -
                       static_cast<double>(opt) /
                           static_cast<double>(lru.misses)) *
                          100.0
                    : 0.0);
    std::printf("LRU generations: %llu; zero-hit (dead-on-arrival): "
                "%.1f%%; single-hit: %.1f%%\n",
                static_cast<unsigned long long>(lru.generations),
                lru.generations ? 100.0 *
                                      static_cast<double>(
                                          lru.zeroHitGenerations) /
                                      static_cast<double>(lru.generations)
                                : 0.0,
                lru.generations ? 100.0 *
                                      static_cast<double>(
                                          lru.singleHitGenerations) /
                                      static_cast<double>(lru.generations)
                                : 0.0);

    // Online learnability: replay under LRU with an ideal (unaliased)
    // counter table; a dead event is "online-covered" when its
    // signature's counter already reached the threshold (trained by
    // earlier events: +1 on dead, -1 on live, saturating at 7).
    for (unsigned depth : {1u, 2u, 3u, 4u, 6u}) {
        struct Line { Addr tag; std::uint64_t sig; };
        std::vector<std::deque<Line>> cache2(sets);
        std::unordered_map<std::uint64_t, int> counter;
        std::uint64_t dead_total = 0, dead_covered = 0, live_flagged = 0,
                      live_total = 0;
        std::uint64_t history = 0;
        const std::uint64_t hist_mask = mask(4 * depth);
        for (Addr block : stream.blocks) {
            const std::uint64_t sig =
                (history ^ ((block >> 6) & 0xFFFF)) & 0xFFFF;
            history =
                ((history << 4) | (((block >> 6) & 7u) << 1)) & hist_mask;
            const std::uint32_t set =
                static_cast<std::uint32_t>((block >> 6) & (sets - 1));
            auto &lines = cache2[set];
            bool hit = false;
            for (std::size_t i = 0; i < lines.size(); ++i) {
                if (lines[i].tag == block) {
                    ++live_total;
                    int &c = counter[lines[i].sig];
                    if (c >= 2)
                        ++live_flagged;
                    if (c > 0)
                        --c;
                    Line line = lines[i];
                    line.sig = sig;
                    lines.erase(lines.begin() +
                                static_cast<std::ptrdiff_t>(i));
                    lines.push_back(line);
                    hit = true;
                    break;
                }
            }
            if (hit)
                continue;
            if (lines.size() >= assoc) {
                ++dead_total;
                int &c = counter[lines.front().sig];
                if (c >= 2)
                    ++dead_covered;
                if (c < 7)
                    ++c;
                lines.pop_front();
            }
            lines.push_back({block, sig});
        }
        std::printf("  online (history %u blocks): dead coverage %.1f%%, "
                    "false-dead on live %.2f%%\n",
                    depth,
                    dead_total ? 100.0 * dead_covered / dead_total : 0.0,
                    live_total ? 100.0 * live_flagged / live_total : 0.0);
    }

    const Informativeness ghrp_info = measureInformativeness(
        stream, sets, assoc, [](Addr block, std::uint32_t history) {
            return static_cast<std::uint64_t>(
                (history ^ ((block >> 6) & 0xFFFF)) & 0xFFFF);
        });
    const Informativeness pc_info = measureInformativeness(
        stream, sets, assoc,
        [](Addr block, std::uint32_t) { return block; });
    std::printf("\nsignature informativeness (>=80%%-dead signatures):\n");
    std::printf("  GHRP path signature: %llu sigs, dead coverage %.1f%%, "
                "live loss %.1f%%\n",
                static_cast<unsigned long long>(ghrp_info.signatures),
                ghrp_info.deadCoverage80, ghrp_info.liveLoss80);
    std::printf("  per-block (PC) tag:  %llu sigs, dead coverage %.1f%%, "
                "live loss %.1f%%\n",
                static_cast<unsigned long long>(pc_info.signatures),
                pc_info.deadCoverage80, pc_info.liveLoss80);

    // ---- BTB anatomy ------------------------------------------------
    const auto btb_entries =
        static_cast<std::uint32_t>(cli.getUint("btb-entries", 4096));
    const auto btb_assoc =
        static_cast<std::uint32_t>(cli.getUint("btb-assoc", 8));
    const std::uint32_t btb_sets = btb_entries / btb_assoc;
    const AccessStream btb_stream = collectBtbStream(tr);
    const LruOutcome btb_lru =
        simulateLru(btb_stream, btb_sets, btb_assoc);
    const std::uint64_t btb_opt =
        simulateOpt(btb_stream, btb_sets, btb_assoc);
    std::printf("\nBTB %u-entry %u-way: %zu taken accesses\n",
                btb_entries, btb_assoc, btb_stream.blocks.size());
    std::printf("  LRU misses %llu (%.3f MPKI, %llu compulsory); OPT %llu "
                "-> headroom %.1f%%\n",
                static_cast<unsigned long long>(btb_lru.misses),
                static_cast<double>(btb_lru.misses) * 1000.0 /
                    static_cast<double>(stream.instructions),
                static_cast<unsigned long long>(btb_lru.compulsory),
                static_cast<unsigned long long>(btb_opt),
                btb_lru.misses ? (1.0 - static_cast<double>(btb_opt) /
                                            btb_lru.misses) * 100.0
                               : 0.0);
    std::printf("  zero-hit generations: %.1f%%\n",
                btb_lru.generations
                    ? 100.0 * btb_lru.zeroHitGenerations /
                          btb_lru.generations
                    : 0.0);
    return 0;
}

/**
 * @file
 * Tutorial: plugging a custom replacement policy into the front-end
 * pipeline via the cache::ReplacementPolicy interface.
 *
 * The example implements MRU-skip ("segmented LRU lite"): the victim
 * is the second-least-recently-used block; the LRU block gets one
 * extra lease of life. It then races the custom policy against LRU
 * and GHRP on a synthetic workload, sharing the same trace.
 */

#include <cstdio>

#include "cache/basic_policies.hh"
#include "cache/cache.hh"
#include "cache/lru_stack.hh"
#include "core/cli.hh"
#include "frontend/frontend.hh"
#include "stats/table.hh"
#include "trace/fetch_stream.hh"
#include "workload/suite.hh"

namespace
{

using namespace ghrp;

/** The custom policy: evict the second-least-recent block. */
class MruSkipPolicy : public cache::ReplacementPolicy
{
  public:
    void
    reset(std::uint32_t num_sets, std::uint32_t num_ways) override
    {
        ways = num_ways;
        stack.reset(num_sets, num_ways);
    }

    std::uint32_t
    chooseVictim(const cache::AccessInfo &info) override
    {
        // Second-to-last stack position when associativity allows.
        if (ways < 2)
            return stack.lruWay(info.set);
        for (std::uint32_t w = 0; w < ways; ++w)
            if (stack.positionOf(info.set, w) == ways - 2)
                return w;
        return stack.lruWay(info.set);
    }

    void
    onHit(const cache::AccessInfo &info, std::uint32_t way) override
    {
        stack.touch(info.set, way);
    }

    void
    onFill(const cache::AccessInfo &info, std::uint32_t way) override
    {
        stack.touch(info.set, way);
    }

    std::string name() const override { return "MRU-skip"; }

  private:
    std::uint32_t ways = 0;
    cache::LruStack stack;
};

/**
 * Drive a stand-alone I-cache (any policy) over a trace's fetch
 * stream; the FrontendSim only instantiates built-in policies, so a
 * custom policy gets its own small driver.
 */
double
icacheMpkiWith(std::unique_ptr<cache::ReplacementPolicy> policy,
               const trace::Trace &tr)
{
    cache::CacheModel<> icache(cache::CacheConfig::icache(64, 8),
                               std::move(policy));
    trace::FetchStreamWalker walker(tr.entryPc);
    Addr last_block = ~Addr{0};
    for (const trace::BranchRecord &rec : tr.records) {
        const Addr run_start = walker.currentPc();
        walker.advance(rec, [&](Addr block) {
            if (block == last_block)
                return;
            last_block = block;
            icache.access(block, std::max(run_start, block));
        });
    }
    return icache.accessStats().mpki(walker.instructionCount());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    core::CliOptions cli(argc, argv);
    workload::TraceSpec spec;
    spec.category = workload::parseCategory(
        cli.getString("category", "SHORT-SERVER"));
    spec.seed = cli.getUint("seed", 21);
    spec.name = "custom";
    const trace::Trace tr =
        workload::buildTrace(spec, cli.getUint("instructions", 2'000'000));

    std::printf("Racing a custom policy against the built-ins on %s "
                "(cold caches, no warmup)...\n\n",
                workload::categoryName(spec.category));

    stats::TextTable table({"policy", "icache MPKI"});
    table.addRow({"LRU",
                  stats::TextTable::num(icacheMpkiWith(
                      std::make_unique<cache::LruPolicy>(), tr))});
    table.addRow({"MRU-skip (custom)",
                  stats::TextTable::num(icacheMpkiWith(
                      std::make_unique<MruSkipPolicy>(), tr))});
    predictor::GhrpPredictor ghrp_predictor;
    table.addRow(
        {"GHRP",
         stats::TextTable::num(icacheMpkiWith(
             std::make_unique<predictor::GhrpReplacement>(ghrp_predictor),
             tr))});
    std::printf("%s\n", table.render().c_str());
    std::printf("Implementing a policy takes four hooks: reset, "
                "chooseVictim, onHit, onFill\n(plus optional "
                "shouldBypass/onEvict). See cache/replacement.hh.\n");
    return 0;
}

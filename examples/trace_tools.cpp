/**
 * @file
 * Trace toolkit: generate synthetic traces to disk, inspect stored
 * traces, and replay them through the front-end — the workflow a user
 * with their own (converted) traces would follow.
 *
 * Usage:
 *   trace_tools --generate out.trc [--category NAME] [--seed S]
 *               [--instructions N]
 *   trace_tools --info file.trc
 *   trace_tools --replay file.trc [--policy GHRP] [--kb 64] [--assoc 8]
 */

#include <cstdio>

#include "core/cli.hh"
#include "frontend/frontend.hh"
#include "trace/trace_io.hh"
#include "workload/suite.hh"

namespace
{

using namespace ghrp;

void
generate(const core::CliOptions &cli, const std::string &path)
{
    workload::TraceSpec spec;
    spec.category = workload::parseCategory(
        cli.getString("category", "SHORT-MOBILE"));
    spec.seed = cli.getUint("seed", 1);
    spec.name = path;
    const trace::Trace tr =
        workload::buildTrace(spec, cli.getUint("instructions", 0));
    trace::writeTrace(tr, path);
    std::printf("wrote %zu branch records to %s\n", tr.records.size(),
                path.c_str());
}

void
info(const std::string &path)
{
    const trace::Trace tr = trace::readTrace(path);
    const trace::TraceSummary s = trace::summarize(tr);
    std::printf("trace %s (category %s)\n", tr.name.c_str(),
                tr.category.c_str());
    std::printf("  records:          %llu (%.1f%% taken)\n",
                static_cast<unsigned long long>(s.records),
                s.takenFraction() * 100);
    std::printf("  instructions:     %llu\n",
                static_cast<unsigned long long>(s.instructions));
    std::printf("  static branches:  %llu (%llu ever taken)\n",
                static_cast<unsigned long long>(s.staticBranches),
                static_cast<unsigned long long>(s.staticTakenBranches));
    std::printf("  code footprint:   %.1f KB\n",
                static_cast<double>(s.staticBlocks64) * 64 / 1024);
    for (unsigned t = 0; t < trace::numBranchTypes; ++t) {
        if (s.perType[t] == 0)
            continue;
        std::printf("  %-16s %llu\n",
                    trace::branchTypeName(
                        static_cast<trace::BranchType>(t)),
                    static_cast<unsigned long long>(s.perType[t]));
    }
}

void
replay(const core::CliOptions &cli, const std::string &path)
{
    const trace::Trace tr = trace::readTrace(path);
    frontend::FrontendConfig cfg;
    cfg.policy =
        frontend::parsePolicySpec(cli.getString("policy", "GHRP"));
    cfg.icache = cache::CacheConfig::icache(
        static_cast<std::uint32_t>(cli.getUint("kb", 64)),
        static_cast<std::uint32_t>(cli.getUint("assoc", 8)));
    const frontend::FrontendResult r = frontend::simulateTrace(cfg, tr);
    std::printf("%s on %s (%s I-cache):\n", r.policy.c_str(),
                tr.name.c_str(), cfg.icache.describe().c_str());
    std::printf("  icache MPKI %.3f  (hit rate %.2f%%)\n", r.icacheMpki,
                r.icache.hitRate() * 100);
    std::printf("  btb    MPKI %.3f\n", r.btbMpki);
    std::printf("  cond mispredict %.2f%%\n", r.mispredictRate() * 100);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    core::CliOptions cli(argc, argv);
    if (cli.has("generate")) {
        generate(cli, cli.getString("generate", ""));
    } else if (cli.has("info")) {
        info(cli.getString("info", ""));
    } else if (cli.has("replay")) {
        replay(cli, cli.getString("replay", ""));
    } else {
        // Default demo: generate to a temp file, inspect, replay.
        const std::string path = "/tmp/ghrp_demo.trc";
        generate(cli, path);
        info(path);
        replay(cli, path);
        std::remove(path.c_str());
    }
    return 0;
}

#include "core/runner.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <memory>
#include <mutex>

#include "frontend/fused.hh"
#include "telemetry/metrics.hh"
#include "telemetry/span.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace ghrp::core
{

std::vector<double>
SuiteResults::icacheMpki(const frontend::PolicySpec &policy) const
{
    const auto it = results.find(policy);
    GHRP_ASSERT(it != results.end());
    std::vector<double> series;
    series.reserve(it->second.size());
    for (const frontend::FrontendResult &r : it->second)
        series.push_back(r.icacheMpki);
    return series;
}

std::vector<double>
SuiteResults::btbMpki(const frontend::PolicySpec &policy) const
{
    const auto it = results.find(policy);
    GHRP_ASSERT(it != results.end());
    std::vector<double> series;
    series.reserve(it->second.size());
    for (const frontend::FrontendResult &r : it->second)
        series.push_back(r.btbMpki);
    return series;
}

double
SuiteResults::mean(const std::vector<double> &series)
{
    if (series.empty())
        return 0.0;
    double total = 0.0;
    for (double v : series)
        total += v;
    return total / static_cast<double>(series.size());
}

std::pair<double, std::size_t>
SuiteResults::subsetMean(const std::vector<double> &series,
                         const std::vector<double> &baseline, double floor)
{
    GHRP_ASSERT(series.size() == baseline.size());
    double total = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i < series.size(); ++i) {
        if (baseline[i] >= floor) {
            total += series[i];
            ++count;
        }
    }
    return {count ? total / static_cast<double>(count) : 0.0, count};
}

std::vector<double>
SuiteResults::relativeDifference(const std::vector<double> &series,
                                 const std::vector<double> &base,
                                 double min_base)
{
    GHRP_ASSERT(series.size() == base.size());
    std::vector<double> out;
    out.reserve(series.size());
    for (std::size_t i = 0; i < series.size(); ++i) {
        if (base[i] >= min_base)
            out.push_back((series[i] - base[i]) / base[i]);
    }
    return out;
}

SuiteResults::WinLoss
SuiteResults::winLoss(const std::vector<double> &series,
                      const std::vector<double> &base, double tolerance,
                      double epsilon)
{
    GHRP_ASSERT(series.size() == base.size());
    WinLoss wl;
    for (std::size_t i = 0; i < series.size(); ++i) {
        const double margin = std::max(base[i] * tolerance, epsilon);
        if (series[i] < base[i] - margin)
            ++wl.better;
        else if (series[i] > base[i] + margin)
            ++wl.worse;
        else
            ++wl.similar;
    }
    return wl;
}

std::size_t
SuiteResults::totalLegs() const
{
    std::size_t legs = 0;
    for (const auto &[policy, runs] : results)
        legs += runs.size();
    return legs;
}

std::uint64_t
SuiteResults::simulatedInstructions() const
{
    std::uint64_t total = 0;
    for (const auto &[policy, runs] : results)
        for (const frontend::FrontendResult &r : runs)
            total += r.totalInstructions;
    return total;
}

namespace
{

using DecodedPtr = std::shared_ptr<const trace::DecodedTrace>;

/** Sweep telemetry, resolved once per process. */
struct SweepMetrics
{
    telemetry::Counter &legs;
    telemetry::Counter &slowLegs;
    telemetry::Counter &tracesDecoded;
    telemetry::Counter &fusedGroups;
    telemetry::Histogram &legSeconds;
    telemetry::Histogram &decodeSeconds;
};

SweepMetrics &
sweepMetrics()
{
    static SweepMetrics m{
        telemetry::metrics().counter("sweep.legs"),
        telemetry::metrics().counter("sweep.slow_legs"),
        telemetry::metrics().counter("sweep.traces_decoded"),
        telemetry::metrics().counter("sweep.fused_groups"),
        telemetry::metrics().histogram("sweep.leg_seconds"),
        telemetry::metrics().histogram("sweep.decode_seconds"),
    };
    return m;
}

/** Shared bookkeeping for one sweep: pre-sized result slots plus a
 *  serialised progress tick, with the optional RunHooks control
 *  points (skip / cancel / leg-done journaling) applied per leg. */
class SweepSink
{
  public:
    SweepSink(SuiteResults &out, const SuiteOptions &options,
              const ProgressFn &progress, const RunHooks &hooks)
        : out(out), options(options), progress(progress), hooks(hooks),
          totalUnits(out.specs.size() * options.policies.size())
    {
        for (const frontend::PolicySpec &policy : options.policies) {
            out.results[policy].resize(out.specs.size());
            out.legSeconds[policy].resize(out.specs.size(), 0.0);
        }
    }

    /**
     * Consume one leg without simulating it when the hooks say so.
     * Returns true when the leg was handled here: skipped legs tick
     * progress (their result comes from the caller's journal),
     * cancelled legs are silently left for a future resume.
     */
    bool
    preempted(std::size_t trace_index, const frontend::PolicySpec &policy)
    {
        if (hooks.skipLeg && hooks.skipLeg(trace_index, policy)) {
            tick(trace_index, policy, nullptr, 0.0);
            return true;
        }
        return hooks.cancelled && hooks.cancelled();
    }

    /** True when every policy leg of @p trace_index is skipped — the
     *  trace build itself can then be elided on resume. */
    bool
    allSkipped(std::size_t trace_index) const
    {
        if (!hooks.skipLeg || options.policies.empty())
            return false;
        for (const frontend::PolicySpec &policy : options.policies)
            if (!hooks.skipLeg(trace_index, policy))
                return false;
        return true;
    }

    /** Simulate one (trace, policy) leg and store it in its slot. The
     *  decoded stream is immutable and shared by every leg of its
     *  trace — decoding happened exactly once, upstream. */
    void
    runLeg(std::size_t trace_index, const frontend::PolicySpec &policy,
           const trace::DecodedTrace &dec)
    {
        if (preempted(trace_index, policy))
            return;

        frontend::FrontendConfig config = options.base;
        config.policy = policy;

        const auto start = std::chrono::steady_clock::now();
        frontend::FrontendResult result = [&] {
            TELEMETRY_SPAN("simulate",
                           out.specs[trace_index].name + " / " +
                               frontend::policyName(policy));
            return frontend::simulateDecoded(config, dec);
        }();
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        sweepMetrics().legs.add();
        sweepMetrics().legSeconds.observeSeconds(elapsed.count());

        result.traceName = out.specs[trace_index].name;
        // Slot writes: distinct (policy, trace_index) pairs never
        // alias, and the vectors were sized up front, so concurrent
        // legs need no lock here.
        out.results[policy][trace_index] = std::move(result);
        out.legSeconds[policy][trace_index] = elapsed.count();
        tick(trace_index, policy, &out.results[policy][trace_index],
             elapsed.count());
    }

    /**
     * Fused counterpart of running every policy leg of one trace:
     * journaled legs are ticked and dropped from the lane set, the
     * remaining lanes are simulated in one FusedSim walk of the shared
     * stream, and each lane's result lands in the same slot a per-leg
     * run would fill — bit-identically, since lanes execute the
     * per-leg stepwise code on independent state. Group wall time is
     * split evenly across lanes for the per-leg timing views.
     */
    void
    runFusedGroup(std::size_t trace_index, const trace::DecodedTrace &dec)
    {
        std::vector<frontend::PolicySpec> lanes;
        lanes.reserve(options.policies.size());
        for (const frontend::PolicySpec &policy : options.policies) {
            if (hooks.skipLeg && hooks.skipLeg(trace_index, policy))
                tick(trace_index, policy, nullptr, 0.0);
            else
                lanes.push_back(policy);
        }
        if (lanes.empty() || (hooks.cancelled && hooks.cancelled()))
            return;

        const auto start = std::chrono::steady_clock::now();
        std::vector<frontend::FrontendResult> results = [&] {
            TELEMETRY_SPAN("simulate-fused",
                           out.specs[trace_index].name + " / " +
                               std::to_string(lanes.size()) + " lanes");
            return frontend::simulateFused(options.base, lanes, dec);
        }();
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        sweepMetrics().fusedGroups.add();
        const double per_lane =
            elapsed.count() / static_cast<double>(lanes.size());

        for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
            const frontend::PolicySpec &policy = lanes[lane];
            sweepMetrics().legs.add();
            sweepMetrics().legSeconds.observeSeconds(per_lane);
            results[lane].traceName = out.specs[trace_index].name;
            out.results[policy][trace_index] = std::move(results[lane]);
            out.legSeconds[policy][trace_index] = per_lane;
            tick(trace_index, policy,
                 &out.results[policy][trace_index], per_lane);
        }
    }

  private:
    void
    tick(std::size_t trace_index, const frontend::PolicySpec &policy,
         const frontend::FrontendResult *result, double seconds)
    {
        std::lock_guard<std::mutex> lock(progressMutex);
        // Journal before progress: a watcher that reacts to the
        // progress tick may already rely on the leg being durable.
        if (result && hooks.onLegDone)
            hooks.onLegDone(trace_index, policy, *result, seconds);
        if (result && options.slowLegMs > 0.0 &&
            seconds * 1000.0 > options.slowLegMs) {
            sweepMetrics().slowLegs.add();
            warn("slow leg: %s / %s took %.1f ms (threshold %.1f ms)",
                 out.specs[trace_index].name.c_str(),
                 frontend::policyName(policy).c_str(), seconds * 1000.0,
                 options.slowLegMs);
        }
        ++done;
        if (progress)
            progress(done, totalUnits,
                     out.specs[trace_index].name + " / " +
                         frontend::policyName(policy));
        else if (options.verbose)
            inform("[%zu/%zu] %s %s", done, totalUnits,
                   out.specs[trace_index].name.c_str(),
                   frontend::policyName(policy).c_str());
    }

    SuiteResults &out;
    const SuiteOptions &options;
    const ProgressFn &progress;
    const RunHooks &hooks;
    const std::size_t totalUnits;
    std::mutex progressMutex;
    std::size_t done = 0;
};

/**
 * Caps one run's in-flight pool tasks at its thread lease, so several
 * concurrent runs can share one pool without any of them swamping the
 * queue: a run with lease L keeps at most L tasks submitted-but-
 * unfinished, leaving the remaining workers to other runs. acquire()
 * blocks the coordinating (non-pool) thread only; pool tasks never
 * block, so the shared pool cannot deadlock.
 */
class TaskThrottle
{
  public:
    explicit TaskThrottle(std::size_t limit)
        : limit(std::max<std::size_t>(limit, 1))
    {
    }

    void
    acquire()
    {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [this] { return inFlight < limit; });
        ++inFlight;
    }

    void
    release()
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            --inFlight;
        }
        cv.notify_one();
    }

  private:
    const std::size_t limit;
    std::mutex mutex;
    std::condition_variable cv;
    std::size_t inFlight = 0;
};

/** Submit @p fn to @p pool, holding one throttle permit (when a
 *  throttle is present) from submission until the task finishes,
 *  normally or by exception. */
template <typename F>
auto
submitLeased(util::ThreadPool &pool, TaskThrottle *throttle, F fn)
{
    if (!throttle)
        return pool.submit(std::move(fn));
    throttle->acquire();
    return pool.submit([throttle, fn = std::move(fn)]() {
        struct Permit
        {
            TaskThrottle *throttle;
            ~Permit() { throttle->release(); }
        } permit{throttle};
        return fn();
    });
}

/** Acquire + decode + direction-resolve one trace, honouring the
 *  hooks' decoded-trace provider when present. */
DecodedPtr
buildDecoded(const workload::TraceSpec &spec, const SuiteOptions &options,
             workload::TraceStore &store, const RunHooks &hooks)
{
    if (hooks.acquireDecoded)
        return hooks.acquireDecoded(spec, options);
    TELEMETRY_SPAN("decode", spec.name);
    const auto start = std::chrono::steady_clock::now();
    auto dec = std::make_shared<trace::DecodedTrace>(store.acquireDecoded(
        spec, options.instructionOverride, options.base.icache.blockBytes,
        options.base.instBytes));
    // The resolved direction stream is a pure function of (trace
    // content, direction kind), so the store can serve it from a
    // sidecar; a miss resolves live and persists for the next run.
    const int dir_kind = static_cast<int>(options.base.direction);
    if (!store.loadDirectionStream(spec, options.instructionOverride,
                                   dir_kind, *dec)) {
        frontend::resolveDirectionStream(*dec, options.base.direction);
        store.storeDirectionStream(spec, options.instructionOverride,
                                   dir_kind, *dec);
    }
    sweepMetrics().tracesDecoded.add();
    sweepMetrics().decodeSeconds.observeSeconds(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count());
    return DecodedPtr(std::move(dec));
}

/** Serial reference path: same slot discipline, no threads. */
void
runSerial(SweepSink &sink, const SuiteResults &out,
          const SuiteOptions &options, workload::TraceStore &store,
          const RunHooks &hooks)
{
    for (std::size_t i = 0; i < out.specs.size(); ++i) {
        if (hooks.cancelled && hooks.cancelled())
            return;
        // A fully-journaled trace never needs acquiring or decoding on
        // resume — tick its legs and move on.
        if (sink.allSkipped(i)) {
            for (const frontend::PolicySpec &policy : options.policies)
                sink.preempted(i, policy);
            continue;
        }
        // Acquire and decode the trace once and reuse the stream for
        // every policy so the comparison is paired (identical access
        // streams) and the decode cost is paid once, not per leg. The
        // direction predictor is policy-independent, so its stream is
        // resolved here too instead of once per leg.
        const DecodedPtr dec = buildDecoded(out.specs[i], options, store,
                                            hooks);
        if (options.fused) {
            sink.runFusedGroup(i, *dec);
        } else {
            for (const frontend::PolicySpec &policy : options.policies)
                sink.runLeg(i, policy, *dec);
        }
    }
}

/**
 * Parallel path: every (trace, policy) leg is an independent pool job.
 * The decoded stream for leg (i, *) is produced by a per-trace job
 * (store lookup or generation, then one decode) and shared read-only
 * by that trace's legs via shared_ptr; builds run at most `window`
 * traces ahead of the harvest cursor so memory stays bounded on large
 * suites.
 */
void
runParallel(SweepSink &sink, const SuiteResults &out,
            const SuiteOptions &options, workload::TraceStore &store,
            util::ThreadPool &pool, const RunHooks &hooks,
            TaskThrottle *throttle, unsigned lease)
{
    const std::size_t num_traces = out.specs.size();
    // The build window follows the lease, not the pool: a run leasing
    // 2 of 16 shared workers must not decode 32 traces ahead.
    const std::size_t window =
        std::max<std::size_t>(2 * static_cast<std::size_t>(lease), 4);

    std::vector<std::future<DecodedPtr>> builds(num_traces);
    std::vector<char> elided(num_traces, 0);
    std::vector<std::vector<std::future<void>>> legs(num_traces);

    std::size_t next_build = 0;
    const auto pump = [&](std::size_t upto) {
        for (; next_build < std::min(upto, num_traces); ++next_build) {
            // Stop opening new builds once cancelled: queued leg jobs
            // drain as no-ops and the harvest loop below ends at the
            // first unscheduled build.
            if (hooks.cancelled && hooks.cancelled())
                return;
            if (sink.allSkipped(next_build)) {
                elided[next_build] = 1;
                continue;
            }
            const workload::TraceSpec &spec = out.specs[next_build];
            builds[next_build] = submitLeased(
                pool, throttle, [&spec, &options, &store, &hooks]() {
                    return buildDecoded(spec, options, store, hooks);
                });
        }
    };

    pump(window);
    for (std::size_t i = 0; i < num_traces; ++i) {
        if (elided[i]) {
            for (const frontend::PolicySpec &policy : options.policies)
                sink.preempted(i, policy);
            pump(i + 1 + window);
            continue;
        }
        if (!builds[i].valid())
            break;  // cancelled before this trace's build was scheduled
        const DecodedPtr dec = builds[i].get();  // rethrows build errors
        builds[i] = {};
        if (options.fused) {
            // One job per trace-group: the fused walk simulates every
            // remaining lane of this trace in one pass, so the unit of
            // scheduling grows from a leg to a group while the window/
            // harvest bookkeeping stays unchanged.
            legs[i].push_back(submitLeased(pool, throttle, [&sink, i,
                                                            dec]() {
                sink.runFusedGroup(i, *dec);
            }));
        } else {
            legs[i].reserve(options.policies.size());
            for (const frontend::PolicySpec &policy : options.policies)
                legs[i].push_back(submitLeased(
                    pool, throttle, [&sink, i, policy, dec]() {
                        sink.runLeg(i, policy, *dec);
                    }));
        }
        // Keep at most `window` traces with outstanding legs before
        // opening new builds, then harvest (and rethrow from) the
        // oldest trace's legs.
        pump(i + 1 + window);
        if (i + 1 >= window)
            for (std::future<void> &f : legs[i + 1 - window])
                if (f.valid())
                    f.get();
    }
    // Harvest (and rethrow from) every leg not already collected; legs
    // of elided or unscheduled traces are simply absent.
    for (std::vector<std::future<void>> &trace_legs : legs)
        for (std::future<void> &f : trace_legs)
            if (f.valid())
                f.get();
}

} // anonymous namespace

SuiteResults
runSuite(const SuiteOptions &options, const ProgressFn &progress,
         const RunHooks &hooks)
{
    SuiteResults out;
    TELEMETRY_SPAN("sweep",
                   std::to_string(options.numTraces) + " traces x " +
                       std::to_string(options.policies.size()) +
                       " policies");
    out.specs = workload::makeSuite(options.numTraces, options.baseSeed);

    SweepSink sink(out, options, progress, hooks);
    workload::TraceStore store(options.traceCacheDir);
    const unsigned jobs =
        options.jobs ? options.jobs : util::ThreadPool::hardwareJobs();

    const auto start = std::chrono::steady_clock::now();
    if (hooks.pool) {
        // Shared pool: options.jobs is this run's thread lease, and a
        // throttle keeps at most that many of its tasks in flight so
        // concurrent runs on the same pool share the budget fairly.
        const unsigned lease =
            std::min(std::max(jobs, 1u), hooks.pool->size());
        TaskThrottle throttle(lease);
        runParallel(sink, out, options, store, *hooks.pool, hooks,
                    &throttle, lease);
    } else if (jobs <= 1 ||
               out.specs.size() * options.policies.size() <= 1) {
        runSerial(sink, out, options, store, hooks);
    } else {
        // Destroyed before `out` and `sink`, so no job outlives the
        // state it references even on exception unwind.
        util::ThreadPool pool(jobs);
        runParallel(sink, out, options, store, pool, hooks, nullptr,
                    pool.size());
    }
    out.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    out.traceStore = store.stats();
    out.traceStoreEnabled = store.enabled();
    return out;
}

} // namespace ghrp::core

#include "core/runner.hh"

#include <cmath>

#include "util/logging.hh"

namespace ghrp::core
{

std::vector<double>
SuiteResults::icacheMpki(frontend::PolicyKind policy) const
{
    const auto it = results.find(policy);
    GHRP_ASSERT(it != results.end());
    std::vector<double> series;
    series.reserve(it->second.size());
    for (const frontend::FrontendResult &r : it->second)
        series.push_back(r.icacheMpki);
    return series;
}

std::vector<double>
SuiteResults::btbMpki(frontend::PolicyKind policy) const
{
    const auto it = results.find(policy);
    GHRP_ASSERT(it != results.end());
    std::vector<double> series;
    series.reserve(it->second.size());
    for (const frontend::FrontendResult &r : it->second)
        series.push_back(r.btbMpki);
    return series;
}

double
SuiteResults::mean(const std::vector<double> &series)
{
    if (series.empty())
        return 0.0;
    double total = 0.0;
    for (double v : series)
        total += v;
    return total / static_cast<double>(series.size());
}

std::pair<double, std::size_t>
SuiteResults::subsetMean(const std::vector<double> &series,
                         const std::vector<double> &baseline, double floor)
{
    GHRP_ASSERT(series.size() == baseline.size());
    double total = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i < series.size(); ++i) {
        if (baseline[i] >= floor) {
            total += series[i];
            ++count;
        }
    }
    return {count ? total / static_cast<double>(count) : 0.0, count};
}

std::vector<double>
SuiteResults::relativeDifference(const std::vector<double> &series,
                                 const std::vector<double> &base,
                                 double min_base)
{
    GHRP_ASSERT(series.size() == base.size());
    std::vector<double> out;
    out.reserve(series.size());
    for (std::size_t i = 0; i < series.size(); ++i) {
        if (base[i] >= min_base)
            out.push_back((series[i] - base[i]) / base[i]);
    }
    return out;
}

SuiteResults::WinLoss
SuiteResults::winLoss(const std::vector<double> &series,
                      const std::vector<double> &base, double tolerance,
                      double epsilon)
{
    GHRP_ASSERT(series.size() == base.size());
    WinLoss wl;
    for (std::size_t i = 0; i < series.size(); ++i) {
        const double margin = std::max(base[i] * tolerance, epsilon);
        if (series[i] < base[i] - margin)
            ++wl.better;
        else if (series[i] > base[i] + margin)
            ++wl.worse;
        else
            ++wl.similar;
    }
    return wl;
}

SuiteResults
runSuite(const SuiteOptions &options, const ProgressFn &progress)
{
    SuiteResults out;
    out.specs = workload::makeSuite(options.numTraces, options.baseSeed);
    for (frontend::PolicyKind policy : options.policies)
        out.results[policy] = {};

    const std::size_t total_units =
        out.specs.size() * options.policies.size();
    std::size_t done = 0;

    for (const workload::TraceSpec &spec : out.specs) {
        // Generate the trace once and reuse it for every policy so the
        // comparison is paired (identical access streams).
        const trace::Trace tr =
            workload::buildTrace(spec, options.instructionOverride);

        for (frontend::PolicyKind policy : options.policies) {
            frontend::FrontendConfig config = options.base;
            config.policy = policy;

            frontend::FrontendResult result =
                frontend::simulateTrace(config, tr);
            result.traceName = spec.name;
            out.results[policy].push_back(std::move(result));

            ++done;
            if (progress)
                progress(done, total_units,
                         spec.name + " / " + frontend::policyName(policy));
            else if (options.verbose)
                inform("[%zu/%zu] %s %s", done, total_units,
                       spec.name.c_str(), frontend::policyName(policy));
        }
    }
    return out;
}

} // namespace ghrp::core

/**
 * @file
 * Experiment runner: generates the synthetic workload suite and
 * simulates every (trace, policy) combination, collecting per-trace
 * MPKI for the I-cache and BTB plus the aggregate views the paper's
 * figures report (means, relative differences, confidence intervals,
 * win/tie/loss counts, S-curves).
 */

#ifndef GHRP_CORE_RUNNER_HH
#define GHRP_CORE_RUNNER_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "frontend/frontend.hh"
#include "stats/confidence.hh"
#include "workload/suite.hh"

namespace ghrp::core
{

/** Options for a suite run. */
struct SuiteOptions
{
    std::uint32_t numTraces = 20;
    std::uint64_t baseSeed = 42;
    /** Override per-trace dynamic instruction counts (0 = category
     *  default). */
    std::uint64_t instructionOverride = 0;
    std::vector<frontend::PolicyKind> policies{
        frontend::paperPolicies,
        frontend::paperPolicies + std::size(frontend::paperPolicies)};
    frontend::FrontendConfig base;  ///< policy field is overridden
    bool verbose = false;           ///< progress to stderr
};

/** All results of a suite run. */
struct SuiteResults
{
    std::vector<workload::TraceSpec> specs;
    /** results[policy][trace index] */
    std::map<frontend::PolicyKind, std::vector<frontend::FrontendResult>>
        results;

    /** Per-trace I-cache MPKI series for @p policy. */
    std::vector<double> icacheMpki(frontend::PolicyKind policy) const;

    /** Per-trace BTB MPKI series for @p policy. */
    std::vector<double> btbMpki(frontend::PolicyKind policy) const;

    /** Arithmetic mean over traces of a per-trace series. */
    static double mean(const std::vector<double> &series);

    /**
     * Mean over the subset of traces where @p baseline's series is at
     * least @p floor (the paper's ">= 1 MPKI under LRU" subset).
     * @return pair (subset mean of series, subset size).
     */
    static std::pair<double, std::size_t>
    subsetMean(const std::vector<double> &series,
               const std::vector<double> &baseline, double floor);

    /**
     * Per-trace relative difference (series - base) / base, skipping
     * traces where base < @p min_base (avoids exploding ratios on
     * near-zero MPKI).
     */
    static std::vector<double>
    relativeDifference(const std::vector<double> &series,
                       const std::vector<double> &base,
                       double min_base = 0.01);

    /** Win/tie/loss of @p series against @p base: better when lower by
     *  more than @p tolerance (relative), worse when higher by more. */
    struct WinLoss
    {
        std::size_t better = 0;
        std::size_t similar = 0;
        std::size_t worse = 0;
    };
    static WinLoss winLoss(const std::vector<double> &series,
                           const std::vector<double> &base,
                           double tolerance = 0.02,
                           double epsilon = 0.005);
};

/** Progress callback: (completed units, total units, description). */
using ProgressFn =
    std::function<void(std::size_t, std::size_t, const std::string &)>;

/**
 * Run the full suite: for each trace spec, generate the trace once and
 * simulate it under every requested policy.
 */
SuiteResults runSuite(const SuiteOptions &options,
                      const ProgressFn &progress = nullptr);

} // namespace ghrp::core

#endif // GHRP_CORE_RUNNER_HH

/**
 * @file
 * Experiment runner: generates the synthetic workload suite and
 * simulates every (trace, policy) combination, collecting per-trace
 * MPKI for the I-cache and BTB plus the aggregate views the paper's
 * figures report (means, relative differences, confidence intervals,
 * win/tie/loss counts, S-curves).
 */

#ifndef GHRP_CORE_RUNNER_HH
#define GHRP_CORE_RUNNER_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "frontend/frontend.hh"
#include "stats/confidence.hh"
#include "util/thread_pool.hh"
#include "workload/suite.hh"
#include "workload/trace_store.hh"

namespace ghrp::core
{

/** Options for a suite run. */
struct SuiteOptions
{
    std::uint32_t numTraces = 20;
    std::uint64_t baseSeed = 42;
    /** Override per-trace dynamic instruction counts (0 = category
     *  default). */
    std::uint64_t instructionOverride = 0;
    std::vector<frontend::PolicySpec> policies{
        frontend::paperPolicies,
        frontend::paperPolicies + std::size(frontend::paperPolicies)};
    frontend::FrontendConfig base;  ///< policy field is overridden
    bool verbose = false;           ///< progress to stderr

    /**
     * Worker threads for the sweep: each (trace, policy) leg is an
     * independent job. 0 = hardware concurrency; 1 = run serially on
     * the calling thread. Results are bit-identical for every value —
     * per-trace seeds are derived purely from (baseSeed, trace index)
     * and every leg writes into a pre-sized slot, so neither the
     * simulation nor the aggregation order depends on scheduling.
     */
    unsigned jobs = 0;

    /**
     * Fused execution: simulate all policy legs of a trace in ONE
     * chunked walk of its decoded stream (frontend::FusedSim) instead
     * of one walk per leg, so the stream is pulled from memory once
     * per trace-group rather than once per policy. Scheduling
     * granularity changes from (trace, policy) legs to trace-groups —
     * with jobs > 1, each group is one pool job. Results are
     * bit-identical to the per-leg path for every policy and jobs
     * value: lanes share no mutable state and step through the exact
     * per-leg simulation code. RunHooks semantics are preserved —
     * journaled legs are skipped (dropped from the group's lane set)
     * and onLegDone still fires once per simulated leg. Per-leg
     * timing becomes the group wall time split evenly across lanes
     * (timing is outside the determinism guarantee).
     */
    bool fused = false;

    /**
     * Directory for the content-addressed trace store. Empty falls back
     * to the GHRP_TRACE_CACHE environment variable; if that is also
     * unset the store is disabled and every trace is generated in
     * memory. Results are bit-identical either way — the store only
     * skips regeneration of traces it has already seen.
     */
    std::string traceCacheDir;

    /**
     * warn() about any (trace, policy) leg whose simulation takes
     * longer than this many milliseconds, so stragglers surface in CI
     * logs. 0 (the default) disables the check. Timing only — never
     * affects results.
     */
    double slowLegMs = 0.0;
};

/** All results of a suite run. */
struct SuiteResults
{
    std::vector<workload::TraceSpec> specs;
    /** results[policy][trace index] */
    std::map<frontend::PolicySpec, std::vector<frontend::FrontendResult>>
        results;

    /** Wall-clock seconds each leg spent simulating its decoded
     *  stream: legSeconds[policy][trace index]. Timing only — excluded
     *  from the determinism guarantee. */
    std::map<frontend::PolicySpec, std::vector<double>> legSeconds;
    /** End-to-end wall-clock seconds for the whole sweep. */
    double wallSeconds = 0.0;

    /** Trace-store traffic for this run (zeros when disabled). */
    workload::TraceStore::Stats traceStore;
    /** Whether a trace store directory was in effect. */
    bool traceStoreEnabled = false;

    /** Number of (trace, policy) legs simulated. */
    std::size_t totalLegs() const;

    /** Sum of simulated dynamic instructions over all legs. */
    std::uint64_t simulatedInstructions() const;

    /** Per-trace I-cache MPKI series for @p policy. */
    std::vector<double> icacheMpki(const frontend::PolicySpec &policy) const;

    /** Per-trace BTB MPKI series for @p policy. */
    std::vector<double> btbMpki(const frontend::PolicySpec &policy) const;

    /** Arithmetic mean over traces of a per-trace series. */
    static double mean(const std::vector<double> &series);

    /**
     * Mean over the subset of traces where @p baseline's series is at
     * least @p floor (the paper's ">= 1 MPKI under LRU" subset).
     * @return pair (subset mean of series, subset size).
     */
    static std::pair<double, std::size_t>
    subsetMean(const std::vector<double> &series,
               const std::vector<double> &baseline, double floor);

    /**
     * Per-trace relative difference (series - base) / base, skipping
     * traces where base < @p min_base (avoids exploding ratios on
     * near-zero MPKI).
     */
    static std::vector<double>
    relativeDifference(const std::vector<double> &series,
                       const std::vector<double> &base,
                       double min_base = 0.01);

    /** Win/tie/loss of @p series against @p base: better when lower by
     *  more than @p tolerance (relative), worse when higher by more. */
    struct WinLoss
    {
        std::size_t better = 0;
        std::size_t similar = 0;
        std::size_t worse = 0;
    };
    static WinLoss winLoss(const std::vector<double> &series,
                           const std::vector<double> &base,
                           double tolerance = 0.02,
                           double epsilon = 0.005);
};

/** Progress callback: (completed units, total units, description). */
using ProgressFn =
    std::function<void(std::size_t, std::size_t, const std::string &)>;

/**
 * Optional control hooks for a suite run, used by long-lived callers
 * (the sweep-serving daemon) that need journaling, crash resume,
 * cooperative cancellation, or a shared decoded-trace cache. All
 * members are optional; a default-constructed RunHooks reproduces
 * plain runSuite behaviour exactly.
 */
struct RunHooks
{
    /**
     * Return true to skip simulating one (trace, policy) leg — e.g. a
     * leg already journaled by an interrupted run. Skipped legs still
     * tick the progress callback but leave their result slot
     * default-initialized; the caller is responsible for filling the
     * slot (from its journal) before aggregating. Must be pure per
     * (trace index, policy): it is consulted from worker threads and
     * may be called more than once per leg.
     */
    std::function<bool(std::size_t, const frontend::PolicySpec &)> skipLeg;

    /**
     * Invoked after every simulated (not skipped) leg with its results
     * and wall seconds. Invocations are serialised under the same lock
     * as the progress callback, so the callee may append to a journal
     * without further locking. Completion order is scheduling-
     * dependent.
     */
    std::function<void(std::size_t, const frontend::PolicySpec &,
                       const frontend::FrontendResult &, double)>
        onLegDone;

    /**
     * Polled before each leg starts (and before each trace build is
     * scheduled): returning true prevents new legs from starting while
     * in-flight legs complete normally, so runSuite drains quickly and
     * returns with the unstarted slots default-initialized. Unstarted
     * legs are NOT reported through onLegDone — a journaling caller
     * can therefore resume exactly the missing legs later.
     */
    std::function<bool()> cancelled;

    /**
     * Override trace acquisition + decoding, e.g. with a cross-run
     * decoded-trace cache. The returned stream must be decoded at
     * (options.base.icache.blockBytes, options.base.instBytes)
     * granularity and have its direction stream resolved for
     * options.base.direction; runSuite shares it read-only across the
     * trace's legs. When unset, runSuite acquires from its own
     * TraceStore and decodes per sweep.
     */
    std::function<std::shared_ptr<const trace::DecodedTrace>(
        const workload::TraceSpec &, const SuiteOptions &)>
        acquireDecoded;

    /**
     * Run this sweep's build and simulation tasks on an externally
     * owned pool instead of a pool created per call, so several
     * concurrent runSuite calls can share one global thread budget
     * (the daemon scheduler sizes the shared pool to --total-threads).
     * options.jobs then acts as this run's *thread lease*: the maximum
     * number of its tasks in flight on the shared pool at once (0 or
     * anything above the pool size leases the whole pool). The calling
     * thread only coordinates — builds the trace window and harvests
     * futures — and all simulation runs on pool threads, so a blocked
     * caller costs no budget. Results are bit-identical to an
     * owned-pool run for every lease value.
     */
    util::ThreadPool *pool = nullptr;
};

/**
 * Run the full suite: for each trace spec, acquire the trace (from the
 * content-addressed store when enabled, generating otherwise), decode
 * it once into the compact fetch-op stream, and simulate that shared
 * read-only stream under every requested policy.
 *
 * With options.jobs != 1 the (trace, policy) legs run on a
 * work-stealing thread pool. Trace acquisition + decoding is bounded
 * to a sliding window of roughly 2 x jobs traces ahead of the slowest
 * outstanding leg, so a 662-trace sweep never holds the whole suite in
 * memory.
 * The progress callback is serialised (never invoked concurrently),
 * but completion order is scheduling-dependent; only the *results* are
 * deterministic. Exceptions thrown by a leg are rethrown here.
 *
 * @p hooks adds journaling/resume/cancellation control; see RunHooks.
 */
SuiteResults runSuite(const SuiteOptions &options,
                      const ProgressFn &progress = nullptr,
                      const RunHooks &hooks = {});

} // namespace ghrp::core

#endif // GHRP_CORE_RUNNER_HH

#include "core/cli.hh"

#include <cstdlib>

#include "util/logging.hh"

namespace ghrp::core
{

CliOptions::CliOptions(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg(argv[i]);
        if (arg.rfind("--", 0) != 0)
            fatal("unexpected argument '%s' (flags start with --)",
                  arg.c_str());
        arg = arg.substr(2);

        const std::size_t eq = arg.find('=');
        if (eq != std::string::npos) {
            values[arg.substr(0, eq)] = arg.substr(eq + 1);
            continue;
        }
        if (i + 1 < argc && argv[i + 1][0] != '-') {
            values[arg] = argv[i + 1];
            ++i;
        } else {
            values[arg] = "";  // bare boolean flag
        }
    }
}

std::uint64_t
CliOptions::getUint(const std::string &name,
                    std::uint64_t default_value) const
{
    const auto it = values.find(name);
    if (it == values.end())
        return default_value;
    if (it->second.empty())
        fatal("flag --%s requires a value", name.c_str());
    return std::strtoull(it->second.c_str(), nullptr, 10);
}

double
CliOptions::getDouble(const std::string &name, double default_value) const
{
    const auto it = values.find(name);
    if (it == values.end())
        return default_value;
    if (it->second.empty())
        fatal("flag --%s requires a value", name.c_str());
    return std::strtod(it->second.c_str(), nullptr);
}

std::string
CliOptions::getString(const std::string &name,
                      const std::string &default_value) const
{
    const auto it = values.find(name);
    return it == values.end() ? default_value : it->second;
}

bool
CliOptions::has(const std::string &name) const
{
    return values.count(name) != 0;
}

const std::vector<CliFlag> &
knownCliFlags()
{
    static const std::vector<CliFlag> flags = {
        {"traces", "suite size (number of synthetic traces)"},
        {"instructions", "per-trace dynamic instruction override"},
        {"seed", "suite base seed"},
        {"jobs",
         "sweep worker threads (0 = hardware concurrency, 1 = serial)"},
        {"fused",
         "fuse all policy legs of a trace into one walk of its decoded "
         "stream (or GHRP_FUSED=1); results are bit-identical"},
        {"trace-cache",
         "content-addressed trace store directory (or GHRP_TRACE_CACHE)"},
        {"leg-times", "print the per-leg wall-time table"},
        {"quiet", "suppress progress and throughput reporting"},
        {"log-level",
         "verbosity: quiet|warn|info (or GHRP_LOG_LEVEL)"},
        {"slow-leg-ms",
         "warn about (trace, policy) legs slower than N milliseconds"},
        {"trace-out",
         "write a Chrome trace_event JSON of the run to FILE "
         "(or GHRP_TRACE_DIR)"},
        {"report",
         "write a versioned JSON run report to FILE (or GHRP_REPORT_DIR)"},
        {"kb", "I-cache size in KiB"},
        {"assoc", "I-cache associativity"},
        {"btb-entries", "BTB entry count"},
        {"btb-assoc", "BTB associativity"},
        {"policy",
         "replacement policy: a name (LRU, SRRIP, GHRP, ...) or a "
         "set-dueling spec duel:<A>,<B>[,psel=N][,leaders=K]"},
        {"category", "workload category for single-trace tools"},
        {"tolerance", "win/similar/worse relative tolerance"},
        {"generate", "trace-tool mode: generate a trace file"},
        {"replay", "trace-tool mode: replay a trace file"},
        {"info", "trace-tool mode: print trace metadata"},
        {"pgm", "heat-map tools: write PGM images"},
        {"socket", "service tools: unix-domain socket path"},
        {"journal-dir",
         "ghrp-served: directory for job journals and reports"},
        {"max-queue",
         "ghrp-served: queued-job bound before submits are rejected"},
        {"fsync",
         "ghrp-served: journal durability (every|close|off)"},
        {"experiment", "ghrp-client submit: experiment name"},
        {"priority", "ghrp-client submit: queue priority"},
        {"timeout",
         "ghrp-client: job wall-clock limit / connect timeout seconds"},
        {"wait", "ghrp-client submit: follow the job and fetch its report"},
        {"job", "ghrp-client: job id for status/watch/result/cancel"},
        {"out", "ghrp-client/ghrp-report: output file or directory"},
        {"prometheus",
         "ghrp-client metrics: render Prometheus text instead of JSON"},
        {"watch",
         "ghrp-client metrics: refresh the snapshot every SECS seconds"},
        {"total-threads",
         "ghrp-served: global simulation thread budget shared by all "
         "running jobs (0 = hardware concurrency)"},
        {"max-active",
         "ghrp-served: jobs running concurrently (0 = total-threads, "
         "1 = serial daemon)"},
        {"start-paused",
         "ghrp-served: accept and journal submissions but run nothing "
         "(fault-injection hook)"},
        {"daemons",
         "ghrp-client sweep: comma-separated daemon socket paths"},
        {"daemons-file",
         "ghrp-client sweep: discovery file, one daemon socket per line"},
        {"seeds",
         "ghrp-client sweep: comma-separated base seeds (one cell each)"},
        {"policies",
         "ghrp-client sweep: comma-separated policy names or "
         "duel:<A>,<B> specs per cell"},
        {"shard-attempts",
         "ghrp-client sweep: submit attempts per shard before giving up"},
        {"poll-ms",
         "ghrp-client sweep: fleet poll interval in milliseconds"},
        {"out-dir",
         "ghrp-client sweep: directory for the merged cell reports"},
        {"duel",
         "append a duel:<A>,<B> set-dueling leg to the suite's "
         "policy axis (bench suites)"},
        {"phase-window",
         "phase flight recorder: sample a windowed telemetry record "
         "every N instructions (or GHRP_PHASE_WINDOW; 0 = off)"},
        {"phases",
         "ghrp-client watch: render a rolling per-leg phase readout "
         "from the streamed flight-recorder records"},
        {"diff",
         "ghrp-report phases: align two reports' trajectories and "
         "print per-window I-cache MPKI winner flips"},
    };
    return flags;
}

void
applyLogLevel(const CliOptions &cli)
{
    std::string name;
    if (const char *env = std::getenv("GHRP_LOG_LEVEL"))
        name = env;
    if (cli.has("quiet"))
        name = "warn";
    name = cli.getString("log-level", name);
    if (name.empty())
        return;
    LogLevel level;
    if (!parseLogLevel(name, level))
        fatal("unknown log level '%s' (expected quiet|warn|info)",
              name.c_str());
    setLogLevel(level);
}

} // namespace ghrp::core

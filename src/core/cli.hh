/**
 * @file
 * Minimal command-line parsing shared by the bench binaries and
 * examples: --traces N, --instructions M, --seed S, --jobs N (sweep
 * worker threads; 0 = hardware concurrency, 1 = serial), --quiet,
 * plus binary-specific extras registered by name.
 */

#ifndef GHRP_CORE_CLI_HH
#define GHRP_CORE_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ghrp::core
{

/** Parsed command-line options. */
class CliOptions
{
  public:
    /**
     * Parse argv. Accepted shapes: "--name value", "--name=value" and
     * "--flag" (bare booleans). The parser is permissive — any --name
     * is stored and binaries read only the flags they know — but a
     * non-flag positional argument is fatal(). The registry of flags
     * the bench/example binaries actually consume is knownCliFlags();
     * the docs checker test verifies every flag mentioned in the
     * Markdown docs against it.
     */
    CliOptions(int argc, char **argv);

    /** Integer option with default. */
    std::uint64_t getUint(const std::string &name,
                          std::uint64_t default_value) const;

    /** Floating-point option with default. */
    double getDouble(const std::string &name, double default_value) const;

    /** String option with default. */
    std::string getString(const std::string &name,
                          const std::string &default_value) const;

    /** True when a bare boolean flag was given. */
    bool has(const std::string &name) const;

  private:
    std::map<std::string, std::string> values;
};

/** One entry of the known-flag registry. */
struct CliFlag
{
    std::string name;   ///< without the leading "--"
    std::string usage;  ///< one-line description
};

/**
 * Every --flag consumed by the bench and example binaries, with its
 * usage string. Documentation lives or dies by this list: the docs
 * checker (tests/report/test_docs.cc) fails when README/DESIGN/
 * EXPERIMENTS mention a flag that is not registered here.
 */
const std::vector<CliFlag> &knownCliFlags();

/**
 * Apply the unified verbosity flags: --log-level quiet|warn|info
 * (aliases: normal, debug/verbose), the GHRP_LOG_LEVEL environment
 * variable, and the legacy --quiet (mapped to Warn — progress off,
 * warnings on). Precedence: --log-level > --quiet > GHRP_LOG_LEVEL.
 * fatal() on an unknown level name.
 */
void applyLogLevel(const CliOptions &cli);

} // namespace ghrp::core

#endif // GHRP_CORE_CLI_HH

/**
 * @file
 * Minimal command-line parsing shared by the bench binaries and
 * examples: --traces N, --instructions M, --seed S, --jobs N (sweep
 * worker threads; 0 = hardware concurrency, 1 = serial), --quiet,
 * plus binary-specific extras registered by name.
 */

#ifndef GHRP_CORE_CLI_HH
#define GHRP_CORE_CLI_HH

#include <cstdint>
#include <map>
#include <string>

namespace ghrp::core
{

/** Parsed command-line options. */
class CliOptions
{
  public:
    /**
     * Parse argv. Recognized flags: "--name value" and "--flag" (bare
     * booleans). Unknown flags are fatal() so typos do not silently
     * run the default experiment.
     */
    CliOptions(int argc, char **argv);

    /** Integer option with default. */
    std::uint64_t getUint(const std::string &name,
                          std::uint64_t default_value) const;

    /** Floating-point option with default. */
    double getDouble(const std::string &name, double default_value) const;

    /** String option with default. */
    std::string getString(const std::string &name,
                          const std::string &default_value) const;

    /** True when a bare boolean flag was given. */
    bool has(const std::string &name) const;

  private:
    std::map<std::string, std::string> values;
};

} // namespace ghrp::core

#endif // GHRP_CORE_CLI_HH

/**
 * @file
 * Storage-cost model for Table I of the paper: the metadata and
 * prediction-table budget GHRP adds to a given I-cache geometry, and
 * the (larger) budget of the adapted SDBP for comparison.
 */

#ifndef GHRP_CORE_STORAGE_HH
#define GHRP_CORE_STORAGE_HH

#include <cstdint>
#include <string>

#include "cache/config.hh"
#include "predictor/ghrp.hh"
#include "predictor/sdbp.hh"

namespace ghrp::core
{

/** One line item of a storage budget. */
struct StorageItem
{
    std::string component;
    std::uint64_t bits = 0;

    double kib() const { return static_cast<double>(bits) / 8.0 / 1024.0; }
};

/** A full budget: items plus totals. */
struct StorageBudget
{
    std::vector<StorageItem> items;

    std::uint64_t
    totalBits() const
    {
        std::uint64_t total = 0;
        for (const StorageItem &item : items)
            total += item.bits;
        return total;
    }

    double
    totalKiB() const
    {
        return static_cast<double>(totalBits()) / 8.0 / 1024.0;
    }

    /** Overhead relative to the data capacity of @p cache_bytes. */
    double
    overheadFraction(std::uint64_t cache_bytes) const
    {
        return static_cast<double>(totalBits()) / 8.0 /
               static_cast<double>(cache_bytes);
    }
};

/**
 * GHRP budget for @p icache (Table I): per-block metadata (1 valid +
 * 1 prediction + 3 LRU-position + 16 signature bits), three prediction
 * tables of 2-bit counters, and the two path-history registers. BTB
 * coupling adds one prediction bit per BTB entry.
 */
StorageBudget ghrpStorage(const cache::CacheConfig &icache,
                          const predictor::GhrpConfig &config,
                          std::uint32_t btb_entries = 0);

/**
 * Adapted-SDBP budget for @p icache: full-size sampler (valid +
 * prediction + 3 LRU + 12 signature + 16 tag bits per entry), three
 * 8-bit-counter tables, and per-block prediction metadata.
 */
StorageBudget sdbpStorage(const cache::CacheConfig &icache,
                          const predictor::SdbpConfig &config);

} // namespace ghrp::core

#endif // GHRP_CORE_STORAGE_HH

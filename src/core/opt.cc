#include "core/opt.hh"

#include <unordered_map>

#include "trace/fetch_stream.hh"
#include "util/logging.hh"

namespace ghrp::core
{

OptResult
simulateOptStream(const std::vector<std::uint64_t> &keys,
                  std::uint32_t sets, std::uint32_t ways)
{
    GHRP_ASSERT(sets > 0 && ways > 0);
    const std::uint64_t n = keys.size();
    const std::uint64_t inf = ~std::uint64_t{0};

    // Backward pass: next-use index per access.
    std::vector<std::uint64_t> next_use(n, inf);
    std::unordered_map<std::uint64_t, std::uint64_t> last_pos;
    last_pos.reserve(n / 4);
    for (std::uint64_t i = n; i-- > 0;) {
        const auto it = last_pos.find(keys[i]);
        next_use[i] = it == last_pos.end() ? inf : it->second;
        last_pos[keys[i]] = i;
    }

    struct Line
    {
        std::uint64_t key;
        std::uint64_t nextUse;
    };
    std::vector<std::vector<Line>> cache(sets);
    std::unordered_map<std::uint64_t, bool> seen;
    seen.reserve(last_pos.size());

    OptResult result;
    result.accesses = n;

    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t key = keys[i];
        auto &lines = cache[key % sets];

        bool hit = false;
        for (Line &line : lines) {
            if (line.key == key) {
                line.nextUse = next_use[i];
                hit = true;
                break;
            }
        }
        if (hit)
            continue;

        ++result.misses;
        if (!seen[key]) {
            seen[key] = true;
            ++result.compulsory;
        }
        if (lines.size() < ways) {
            lines.push_back({key, next_use[i]});
            continue;
        }
        // Evict the line referenced farthest in the future; with
        // optimal bypass, skip caching when the incoming block's next
        // use is at least as far as every resident line's.
        std::size_t victim = 0;
        for (std::size_t w = 1; w < lines.size(); ++w)
            if (lines[w].nextUse > lines[victim].nextUse)
                victim = w;
        if (next_use[i] >= lines[victim].nextUse)
            continue;
        lines[victim] = {key, next_use[i]};
    }
    return result;
}

OptResult
simulateOptIcache(const trace::Trace &tr, const cache::CacheConfig &config)
{
    const unsigned shift = floorLog2(config.blockBytes);
    std::vector<std::uint64_t> keys;
    keys.reserve(tr.records.size() * 2);

    trace::FetchStreamWalker walker(tr.entryPc, config.blockBytes);
    std::uint64_t last_key = ~std::uint64_t{0};
    for (const trace::BranchRecord &rec : tr.records) {
        walker.advance(rec, [&](Addr block) {
            const std::uint64_t key = block >> shift;
            if (key == last_key)
                return;  // fetch-buffer coalescing
            last_key = key;
            keys.push_back(key);
        });
    }

    OptResult result =
        simulateOptStream(keys, config.numSets(), config.assoc);
    result.instructions = walker.instructionCount();
    return result;
}

OptResult
simulateOptBtb(const trace::Trace &tr, const cache::CacheConfig &config)
{
    std::vector<std::uint64_t> keys;
    keys.reserve(tr.records.size() / 2);

    trace::FetchStreamWalker walker(tr.entryPc);
    for (const trace::BranchRecord &rec : tr.records) {
        walker.advance(rec, [](Addr) {});
        if (rec.taken && rec.type != trace::BranchType::Return)
            keys.push_back(rec.pc >> 2);
    }

    OptResult result =
        simulateOptStream(keys, config.numSets(), config.assoc);
    result.instructions = walker.instructionCount();
    return result;
}

} // namespace ghrp::core

#include "core/storage.hh"

namespace ghrp::core
{

StorageBudget
ghrpStorage(const cache::CacheConfig &icache,
            const predictor::GhrpConfig &config, std::uint32_t btb_entries)
{
    StorageBudget budget;
    const std::uint64_t blocks = icache.numBlocks();

    // Per-block metadata: valid + prediction + 3-bit LRU position +
    // 16-bit signature (paper Section III-B).
    const std::uint64_t per_block = 1 + 1 + 3 + config.historyBits;
    budget.items.push_back(
        {"I-cache per-block metadata", blocks * per_block});

    budget.items.push_back(
        {"prediction tables (3 x " +
             std::to_string(config.tableEntries) + " x " +
             std::to_string(config.counterBits) + "b)",
         3ull * config.tableEntries * config.counterBits});

    budget.items.push_back(
        {"path history registers (spec + retired)",
         2ull * config.historyBits});

    if (btb_entries > 0) {
        budget.items.push_back(
            {"BTB prediction bits", static_cast<std::uint64_t>(btb_entries)});
    }
    return budget;
}

StorageBudget
sdbpStorage(const cache::CacheConfig &icache,
            const predictor::SdbpConfig &config)
{
    StorageBudget budget;
    const std::uint64_t blocks = icache.numBlocks();

    // The sampler is as large as the cache (Section IV-A): valid +
    // prediction + 3-bit LRU + 12-bit signature + 16-bit partial tag.
    const std::uint64_t per_sampler_entry =
        1 + 1 + 3 + config.signatureBits + config.samplerTagBits;
    budget.items.push_back(
        {"full-size sampler", blocks * per_sampler_entry});

    budget.items.push_back(
        {"prediction tables (3 x " +
             std::to_string(config.tableEntries) + " x " +
             std::to_string(config.counterBits) + "b)",
         3ull * config.tableEntries * config.counterBits});

    // Per-block metadata in the main cache: prediction bit + 3-bit LRU.
    budget.items.push_back({"I-cache per-block metadata", blocks * (1 + 3)});
    return budget;
}

} // namespace ghrp::core

/**
 * @file
 * Belady's OPT (the clairvoyant offline replacement optimum) for the
 * I-cache and the BTB. OPT needs future knowledge, so it cannot be a
 * cache::ReplacementPolicy; instead it replays a whole trace in two
 * passes. Used to bound the headroom available to *any* online
 * replacement policy on a given workload (EXPERIMENTS.md fidelity
 * analysis).
 */

#ifndef GHRP_CORE_OPT_HH
#define GHRP_CORE_OPT_HH

#include <cstdint>
#include <vector>

#include "cache/config.hh"
#include "trace/branch_record.hh"

namespace ghrp::core
{

/** Results of an offline OPT replay. */
struct OptResult
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    std::uint64_t compulsory = 0;  ///< first-ever accesses
    std::uint64_t instructions = 0;

    double
    mpki() const
    {
        return instructions ? static_cast<double>(misses) * 1000.0 /
                                  static_cast<double>(instructions)
                            : 0.0;
    }
};

/**
 * Replay @p tr's fetch-block stream (with fetch-buffer coalescing, as
 * the front-end does) through an OPT-managed I-cache of geometry
 * @p config. OPT here includes optimal bypass: an incoming block whose
 * next use is farther than every resident block's is not cached.
 */
OptResult simulateOptIcache(const trace::Trace &tr,
                            const cache::CacheConfig &config);

/**
 * Replay @p tr's taken-branch stream through an OPT-managed BTB of
 * geometry @p config (from CacheConfig::btb). Returns use the RAS and
 * are excluded, matching the front-end's default.
 */
OptResult simulateOptBtb(const trace::Trace &tr,
                         const cache::CacheConfig &config);

/**
 * Generic OPT over an explicit access stream: @p keys are
 * tag-granular identifiers (block numbers, entry indices); @p sets
 * and @p ways give the geometry; key-to-set mapping is modulo.
 */
OptResult simulateOptStream(const std::vector<std::uint64_t> &keys,
                            std::uint32_t sets, std::uint32_t ways);

} // namespace ghrp::core

#endif // GHRP_CORE_OPT_HH

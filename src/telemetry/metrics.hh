/**
 * @file
 * Process-wide metrics registry: named counters, gauges and log-scale
 * latency histograms with a point-in-time snapshot API.
 *
 * Design goals, in order:
 *
 *  1. Hot-path cost of one or two relaxed atomic RMWs. Counter::add
 *     is a single fetch_add; Histogram::observe is two (one bucket,
 *     one running sum). No locks, no allocation, no branches beyond
 *     the bucket clamp.
 *  2. Instruments are created once and never destroyed, so call sites
 *     may cache `static Counter &c = metrics().counter("x");` and pay
 *     the registry lock only on first use. resetForTest() zeroes
 *     values but keeps every instrument alive for exactly this
 *     reason.
 *  3. Snapshots are deterministic: instruments are stored in ordered
 *     maps, so Snapshot iterates names lexicographically and the JSON
 *     / Prometheus renderings are byte-stable for a given state.
 *
 * Histograms are log-scale over nanoseconds: bucket i counts
 * observations with ns < 2^i (see Histogram::bucketIndex). 44 buckets
 * cover one nanosecond to about 2.4 hours, which spans everything
 * from a single policy update to a full overnight sweep.
 *
 * This library sits below ghrp_util (the thread pool is instrumented
 * with it), so it depends on the C++ standard library only.
 */

#ifndef GHRP_TELEMETRY_METRICS_HH
#define GHRP_TELEMETRY_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ghrp::telemetry
{

/** Monotonically increasing event count. */
class Counter
{
  public:
    void add(std::uint64_t n = 1)
    {
        value.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t get() const
    {
        return value.load(std::memory_order_relaxed);
    }

    void reset() { value.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value{0};
};

/** Instantaneous value that can move both ways (queue depth, ...). */
class Gauge
{
  public:
    void set(double v) { value.store(v, std::memory_order_relaxed); }

    void add(double delta)
    {
        value.fetch_add(delta, std::memory_order_relaxed);
    }

    double get() const { return value.load(std::memory_order_relaxed); }

    void reset() { value.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value{0.0};
};

/**
 * Log-scale latency histogram over nanoseconds. Bucket i counts
 * observations strictly below 2^i ns; the last bucket is unbounded.
 */
class Histogram
{
  public:
    static constexpr std::uint32_t kNumBuckets = 44;

    /** Record a duration in seconds (negative values clamp to 0). */
    void observeSeconds(double seconds)
    {
        observeNanos(toNanos(seconds));
    }

    /** Record a duration in integral nanoseconds. */
    void observeNanos(std::uint64_t nanos)
    {
        buckets[bucketIndex(nanos)].fetch_add(
            1, std::memory_order_relaxed);
        sumNanos.fetch_add(nanos, std::memory_order_relaxed);
    }

    /** Index of the bucket counting @p nanos. */
    static std::uint32_t bucketIndex(std::uint64_t nanos)
    {
        std::uint32_t bits = 0;
        while (nanos) {
            ++bits;
            nanos >>= 1;
        }
        return bits < kNumBuckets ? bits : kNumBuckets - 1;
    }

    /** Exclusive upper bound of bucket @p index, in seconds. */
    static double bucketUpperSeconds(std::uint32_t index)
    {
        return static_cast<double>(std::uint64_t{1} << index) * 1e-9;
    }

    static std::uint64_t toNanos(double seconds)
    {
        if (seconds <= 0.0)
            return 0;
        return static_cast<std::uint64_t>(seconds * 1e9 + 0.5);
    }

    std::uint64_t count() const;
    double sumSeconds() const;

    void reset();

  private:
    friend class Registry;

    std::atomic<std::uint64_t> buckets[kNumBuckets] = {};
    std::atomic<std::uint64_t> sumNanos{0};
};

/** One non-empty histogram bucket in a snapshot. */
struct BucketCount
{
    std::uint32_t bucket = 0;  ///< log2 index, see bucketUpperSeconds
    std::uint64_t count = 0;

    bool operator==(const BucketCount &) const = default;
};

/** Point-in-time copy of one histogram. */
struct HistogramSnapshot
{
    std::uint64_t count = 0;
    double sumSeconds = 0.0;
    std::vector<BucketCount> buckets;  ///< non-empty buckets, ascending

    /**
     * Upper bound (seconds) of the first bucket at which the
     * cumulative count reaches @p q * count; 0 when empty.
     */
    double quantileUpperBound(double q) const;

    bool operator==(const HistogramSnapshot &) const = default;
};

/**
 * Point-in-time copy of every instrument. Maps are ordered, so
 * iteration (and everything rendered from it) is deterministic.
 */
struct Snapshot
{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    bool empty() const
    {
        return counters.empty() && gauges.empty() && histograms.empty();
    }

    bool operator==(const Snapshot &) const = default;
};

/**
 * Owns every instrument in the process. Lookup takes a mutex;
 * instruments themselves are lock-free, so the intended pattern is to
 * cache the returned reference (instruments are never deallocated).
 */
class Registry
{
  public:
    /** The process-wide registry used by all ghrp instrumentation. */
    static Registry &global();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    Snapshot snapshot() const;

    /**
     * Zero every instrument without deallocating any of them, so
     * cached references held by instrumentation sites stay valid.
     * Test-only: racing with live updates loses those updates.
     */
    void resetForTest();

  private:
    mutable std::mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

/** Shorthand for Registry::global(). */
inline Registry &metrics() { return Registry::global(); }

} // namespace ghrp::telemetry

#endif // GHRP_TELEMETRY_METRICS_HH

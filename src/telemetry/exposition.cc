#include "telemetry/exposition.hh"

#include <cctype>
#include <cstdio>

namespace ghrp::telemetry
{

namespace
{

std::string
formatDouble(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    return buf;
}

void
appendLine(std::string &out, const std::string &name,
           const std::string &value)
{
    out += name;
    out += " ";
    out += value;
    out += "\n";
}

} // anonymous namespace

std::string
prometheusName(const std::string &name)
{
    std::string out = "ghrp_";
    for (const char c : name) {
        const bool legal = std::isalnum(static_cast<unsigned char>(c))
            || c == '_' || c == ':';
        out += legal ? c : '_';
    }
    return out;
}

std::string
renderPrometheus(const Snapshot &snapshot)
{
    std::string out;
    for (const auto &[name, value] : snapshot.counters) {
        const std::string metric = prometheusName(name);
        out += "# TYPE " + metric + " counter\n";
        appendLine(out, metric, std::to_string(value));
    }
    for (const auto &[name, value] : snapshot.gauges) {
        const std::string metric = prometheusName(name);
        out += "# TYPE " + metric + " gauge\n";
        appendLine(out, metric, formatDouble(value));
    }
    for (const auto &[name, hist] : snapshot.histograms) {
        const std::string metric = prometheusName(name);
        out += "# TYPE " + metric + " histogram\n";
        std::uint64_t cumulative = 0;
        for (const BucketCount &bc : hist.buckets) {
            cumulative += bc.count;
            out += metric + "_bucket{le=\""
                + formatDouble(
                       Histogram::bucketUpperSeconds(bc.bucket))
                + "\"} " + std::to_string(cumulative) + "\n";
        }
        out += metric + "_bucket{le=\"+Inf\"} "
            + std::to_string(hist.count) + "\n";
        appendLine(out, metric + "_sum", formatDouble(hist.sumSeconds));
        appendLine(out, metric + "_count",
                   std::to_string(hist.count));
    }
    return out;
}

} // namespace ghrp::telemetry

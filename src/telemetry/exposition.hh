/**
 * @file
 * Render a metrics Snapshot as Prometheus text exposition format
 * (version 0.0.4). Counters become `ghrp_<name>` counters, gauges
 * become gauges, histograms become the usual `_bucket`/`_sum`/
 * `_count` triplet with cumulative `le` bounds taken from the
 * log-scale bucket boundaries.
 *
 * Output is deterministic for a given snapshot: names come from the
 * snapshot's ordered maps and numbers are printed with fixed printf
 * formats.
 */

#ifndef GHRP_TELEMETRY_EXPOSITION_HH
#define GHRP_TELEMETRY_EXPOSITION_HH

#include <string>

#include "telemetry/metrics.hh"

namespace ghrp::telemetry
{

/** Map a metric name to a Prometheus-legal name ('.' becomes '_'). */
std::string prometheusName(const std::string &name);

/** Render @p snapshot as Prometheus text exposition format. */
std::string renderPrometheus(const Snapshot &snapshot);

} // namespace ghrp::telemetry

#endif // GHRP_TELEMETRY_EXPOSITION_HH

/**
 * @file
 * Scoped trace spans recorded per thread and serialized as Chrome
 * trace_event JSON (loadable in perfetto or chrome://tracing).
 *
 * Usage:
 *
 *   TELEMETRY_SPAN("decode");               // name only
 *   TELEMETRY_SPAN("simulate", legLabel);   // name + detail string
 *
 * expands to a ScopedSpan whose constructor checks a single relaxed
 * atomic flag. When tracing is disabled (the default) the span is
 * inert: no clock read, no allocation, no lock. When enabled, the
 * destructor appends one complete event to a per-thread buffer; the
 * only lock taken is that buffer's own mutex, contended only by a
 * concurrent writeChromeTrace().
 *
 * Thread buffers are owned by shared_ptr from a global list, so spans
 * recorded by pool workers survive the worker threads themselves and
 * are still present when the main thread serializes the trace at
 * process exit. setThreadName() labels the row perfetto shows for the
 * calling thread.
 */

#ifndef GHRP_TELEMETRY_SPAN_HH
#define GHRP_TELEMETRY_SPAN_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ghrp::telemetry
{

namespace detail
{
extern std::atomic<bool> tracingFlag;
} // namespace detail

/** Whether TELEMETRY_SPAN records anything; one relaxed load. */
inline bool
tracingEnabled()
{
    return detail::tracingFlag.load(std::memory_order_relaxed);
}

/** Turn span recording on or off process-wide. */
void setTracingEnabled(bool enabled);

/** Nanoseconds since an arbitrary process-wide steady epoch. */
std::uint64_t nowNanos();

/** Name the calling thread's row in the serialized trace. */
void setThreadName(const std::string &name);

/** One completed span, as collected for serialization. */
struct SpanEvent
{
    std::string name;    ///< phase name ("decode", "simulate", ...)
    std::string detail;  ///< optional argument shown in the UI
    std::uint64_t startNs = 0;
    std::uint64_t durationNs = 0;
    std::uint32_t tid = 0;  ///< 1-based registration order
};

/** A thread that recorded spans (or was explicitly named). */
struct ThreadInfo
{
    std::uint32_t tid = 0;
    std::string name;
};

/** RAII span; prefer the TELEMETRY_SPAN macro. */
class ScopedSpan
{
  public:
    explicit ScopedSpan(const char *spanName)
        : active(tracingEnabled()), name(spanName)
    {
        if (active)
            startNs = nowNanos();
    }

    ScopedSpan(const char *spanName, std::string spanDetail)
        : active(tracingEnabled()), name(spanName),
          detail(std::move(spanDetail))
    {
        if (active)
            startNs = nowNanos();
    }

    ~ScopedSpan()
    {
        if (active)
            record();
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    void record();

    bool active;
    const char *name;
    std::string detail;
    std::uint64_t startNs = 0;
};

#define GHRP_SPAN_CONCAT2(a, b) a##b
#define GHRP_SPAN_CONCAT(a, b) GHRP_SPAN_CONCAT2(a, b)

/** Record a span covering the rest of the enclosing scope. */
#define TELEMETRY_SPAN(...)                                                \
    ::ghrp::telemetry::ScopedSpan GHRP_SPAN_CONCAT(                        \
        ghrpSpan_, __LINE__)(__VA_ARGS__)

/** Copy out every recorded span, sorted by (tid, start, name). */
std::vector<SpanEvent> collectSpans();

/** Threads that registered a buffer, in tid order. */
std::vector<ThreadInfo> collectThreads();

/** Drop all recorded spans (thread registrations persist). */
void clearSpans();

/**
 * Render Chrome trace_event JSON ("X" duration events plus
 * thread_name/process_name "M" metadata). Deterministic for a given
 * input; timestamps are microseconds with nanosecond precision.
 */
std::string chromeTraceJson(const std::vector<SpanEvent> &events,
                            const std::vector<ThreadInfo> &threads);

/**
 * Serialize all spans recorded so far to @p path. Returns false (and
 * leaves a partial file at most) on I/O failure.
 */
bool writeChromeTrace(const std::string &path);

} // namespace ghrp::telemetry

#endif // GHRP_TELEMETRY_SPAN_HH

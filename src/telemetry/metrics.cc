#include "telemetry/metrics.hh"

namespace ghrp::telemetry
{

std::uint64_t
Histogram::count() const
{
    std::uint64_t total = 0;
    for (const auto &bucket : buckets)
        total += bucket.load(std::memory_order_relaxed);
    return total;
}

double
Histogram::sumSeconds() const
{
    return static_cast<double>(
               sumNanos.load(std::memory_order_relaxed)) * 1e-9;
}

void
Histogram::reset()
{
    for (auto &bucket : buckets)
        bucket.store(0, std::memory_order_relaxed);
    sumNanos.store(0, std::memory_order_relaxed);
}

double
HistogramSnapshot::quantileUpperBound(double q) const
{
    if (count == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    const double target = q * static_cast<double>(count);
    std::uint64_t cumulative = 0;
    for (const BucketCount &bc : buckets) {
        cumulative += bc.count;
        if (static_cast<double>(cumulative) >= target)
            return Histogram::bucketUpperSeconds(bc.bucket);
    }
    return Histogram::bucketUpperSeconds(buckets.back().bucket);
}

Registry &
Registry::global()
{
    static Registry registry;
    return registry;
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard lock(mutex);
    auto &slot = counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard lock(mutex);
    auto &slot = gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name)
{
    std::lock_guard lock(mutex);
    auto &slot = histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

Snapshot
Registry::snapshot() const
{
    std::lock_guard lock(mutex);
    Snapshot snap;
    for (const auto &[name, counter] : counters)
        snap.counters[name] = counter->get();
    for (const auto &[name, gauge] : gauges)
        snap.gauges[name] = gauge->get();
    for (const auto &[name, histogram] : histograms) {
        HistogramSnapshot hs;
        hs.sumSeconds = histogram->sumSeconds();
        for (std::uint32_t i = 0; i < Histogram::kNumBuckets; ++i) {
            const std::uint64_t n =
                histogram->buckets[i].load(std::memory_order_relaxed);
            if (n == 0)
                continue;
            hs.buckets.push_back({i, n});
            hs.count += n;
        }
        snap.histograms[name] = std::move(hs);
    }
    return snap;
}

void
Registry::resetForTest()
{
    std::lock_guard lock(mutex);
    for (auto &[name, counter] : counters)
        counter->reset();
    for (auto &[name, gauge] : gauges)
        gauge->reset();
    for (auto &[name, histogram] : histograms)
        histogram->reset();
}

} // namespace ghrp::telemetry

#include "telemetry/span.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>

namespace ghrp::telemetry
{

namespace detail
{
std::atomic<bool> tracingFlag{false};
} // namespace detail

namespace
{

/** Span storage for one thread; outlives the thread via shared_ptr. */
struct ThreadBuffer
{
    std::mutex mutex;
    std::uint32_t tid = 0;
    std::string name;
    std::vector<SpanEvent> events;
};

struct SpanLog
{
    std::mutex mutex;
    std::uint32_t nextTid = 1;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

SpanLog &
spanLog()
{
    static SpanLog log;
    return log;
}

ThreadBuffer &
threadBuffer()
{
    thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
        auto buf = std::make_shared<ThreadBuffer>();
        SpanLog &log = spanLog();
        std::lock_guard lock(log.mutex);
        buf->tid = log.nextTid++;
        log.buffers.push_back(buf);
        return buf;
    }();
    return *buffer;
}

void
appendEscaped(std::string &out, const std::string &text)
{
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof(hex), "\\u%04x",
                              static_cast<unsigned>(c));
                out += hex;
            } else {
                out += c;
            }
        }
    }
}

/** Nanosecond count rendered as decimal microseconds ("12.345"). */
void
appendMicros(std::string &out, std::uint64_t nanos)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                  static_cast<unsigned long long>(nanos / 1000),
                  static_cast<unsigned long long>(nanos % 1000));
    out += buf;
}

} // anonymous namespace

void
setTracingEnabled(bool enabled)
{
    detail::tracingFlag.store(enabled, std::memory_order_relaxed);
}

std::uint64_t
nowNanos()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point epoch = Clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - epoch)
            .count());
}

void
setThreadName(const std::string &name)
{
    ThreadBuffer &buf = threadBuffer();
    std::lock_guard lock(buf.mutex);
    buf.name = name;
}

void
ScopedSpan::record()
{
    const std::uint64_t endNs = nowNanos();
    ThreadBuffer &buf = threadBuffer();
    SpanEvent event;
    event.name = name;
    event.detail = std::move(detail);
    event.startNs = startNs;
    event.durationNs = endNs - startNs;
    std::lock_guard lock(buf.mutex);
    event.tid = buf.tid;
    buf.events.push_back(std::move(event));
}

std::vector<SpanEvent>
collectSpans()
{
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        SpanLog &log = spanLog();
        std::lock_guard lock(log.mutex);
        buffers = log.buffers;
    }
    std::vector<SpanEvent> events;
    for (const auto &buf : buffers) {
        std::lock_guard lock(buf->mutex);
        events.insert(events.end(), buf->events.begin(),
                      buf->events.end());
    }
    std::sort(events.begin(), events.end(),
              [](const SpanEvent &a, const SpanEvent &b) {
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  if (a.startNs != b.startNs)
                      return a.startNs < b.startNs;
                  return a.name < b.name;
              });
    return events;
}

std::vector<ThreadInfo>
collectThreads()
{
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        SpanLog &log = spanLog();
        std::lock_guard lock(log.mutex);
        buffers = log.buffers;
    }
    std::vector<ThreadInfo> threads;
    for (const auto &buf : buffers) {
        std::lock_guard lock(buf->mutex);
        threads.push_back({buf->tid, buf->name});
    }
    std::sort(threads.begin(), threads.end(),
              [](const ThreadInfo &a, const ThreadInfo &b) {
                  return a.tid < b.tid;
              });
    return threads;
}

void
clearSpans()
{
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        SpanLog &log = spanLog();
        std::lock_guard lock(log.mutex);
        buffers = log.buffers;
    }
    for (const auto &buf : buffers) {
        std::lock_guard lock(buf->mutex);
        buf->events.clear();
    }
}

std::string
chromeTraceJson(const std::vector<SpanEvent> &events,
                const std::vector<ThreadInfo> &threads)
{
    std::string out;
    out.reserve(events.size() * 96 + 256);
    out += "{\"traceEvents\":[";
    bool first = true;
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
           "\"tid\":0,\"args\":{\"name\":\"ghrp\"}}";
    first = false;
    for (const ThreadInfo &thread : threads) {
        if (thread.name.empty())
            continue;
        if (!first)
            out += ",";
        first = false;
        out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
               "\"tid\":";
        out += std::to_string(thread.tid);
        out += ",\"args\":{\"name\":\"";
        appendEscaped(out, thread.name);
        out += "\"}}";
    }
    for (const SpanEvent &event : events) {
        if (!first)
            out += ",";
        first = false;
        out += "{\"name\":\"";
        appendEscaped(out, event.name);
        out += "\",\"cat\":\"ghrp\",\"ph\":\"X\",\"pid\":1,\"tid\":";
        out += std::to_string(event.tid);
        out += ",\"ts\":";
        appendMicros(out, event.startNs);
        out += ",\"dur\":";
        appendMicros(out, event.durationNs);
        if (!event.detail.empty()) {
            out += ",\"args\":{\"detail\":\"";
            appendEscaped(out, event.detail);
            out += "\"}";
        }
        out += "}";
    }
    out += "],\"displayTimeUnit\":\"ms\"}\n";
    return out;
}

bool
writeChromeTrace(const std::string &path)
{
    const std::string json =
        chromeTraceJson(collectSpans(), collectThreads());
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (!file)
        return false;
    const std::size_t written =
        std::fwrite(json.data(), 1, json.size(), file);
    const bool ok = written == json.size() && std::fclose(file) == 0;
    if (written != json.size())
        std::fclose(file);
    return ok;
}

} // namespace ghrp::telemetry

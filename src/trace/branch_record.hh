/**
 * @file
 * CBP-5-style branch trace records. A trace contains one record per
 * executed branch; the instructions between branch targets are inferred
 * by the fetch-stream walker (as in Section IV-A of the paper).
 */

#ifndef GHRP_TRACE_BRANCH_RECORD_HH
#define GHRP_TRACE_BRANCH_RECORD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/bit_ops.hh"

namespace ghrp::trace
{

/** Branch classes distinguished by the CBP-5 trace format. */
enum class BranchType : std::uint8_t
{
    CondDirect,    ///< conditional direct branch
    UncondDirect,  ///< unconditional direct jump
    CondIndirect,  ///< rare: conditional indirect
    UncondIndirect,///< unconditional indirect jump (e.g. switch)
    Call,          ///< direct call
    IndirectCall,  ///< indirect call (virtual dispatch)
    Return         ///< return
};

/** Number of distinct BranchType values. */
constexpr unsigned numBranchTypes = 7;

/** Short human-readable name for a branch type. */
const char *branchTypeName(BranchType type);

/** True for types whose direction is predicted (conditional). */
constexpr bool
isConditional(BranchType type)
{
    return type == BranchType::CondDirect ||
           type == BranchType::CondIndirect;
}

/** True for types whose target comes from the BTB indirection. */
constexpr bool
isIndirect(BranchType type)
{
    return type == BranchType::CondIndirect ||
           type == BranchType::UncondIndirect ||
           type == BranchType::IndirectCall;
}

/** True for call-type branches (push the return address). */
constexpr bool
isCall(BranchType type)
{
    return type == BranchType::Call || type == BranchType::IndirectCall;
}

/** One executed branch. */
struct BranchRecord
{
    Addr pc = 0;        ///< address of the branch instruction
    Addr target = 0;    ///< target address (valid when taken)
    BranchType type = BranchType::CondDirect;
    bool taken = false; ///< direction outcome

    bool
    operator==(const BranchRecord &other) const
    {
        return pc == other.pc && target == other.target &&
               type == other.type && taken == other.taken;
    }
};

/** An in-memory branch trace plus identifying metadata. */
struct Trace
{
    std::string name;                  ///< benchmark identifier
    Addr entryPc = 0;                  ///< first fetched instruction
    std::vector<BranchRecord> records; ///< executed branches in order

    /** Category tag (e.g. "SHORT-MOBILE") carried for reporting. */
    std::string category;
};

/** Summary statistics over a trace, for workload characterization. */
struct TraceSummary
{
    std::uint64_t records = 0;
    std::uint64_t takenCount = 0;
    std::uint64_t perType[numBranchTypes] = {};
    std::uint64_t staticBranches = 0;   ///< distinct branch PCs
    std::uint64_t staticTakenBranches = 0; ///< distinct PCs ever taken
    std::uint64_t staticBlocks64 = 0;   ///< distinct 64B code blocks touched
    std::uint64_t instructions = 0;     ///< reconstructed dynamic count

    double
    takenFraction() const
    {
        return records ? static_cast<double>(takenCount) / records : 0.0;
    }
};

/** Compute TraceSummary by walking the full trace. */
TraceSummary summarize(const Trace &trace, std::uint32_t inst_bytes = 4);

} // namespace ghrp::trace

#endif // GHRP_TRACE_BRANCH_RECORD_HH

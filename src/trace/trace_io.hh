/**
 * @file
 * Binary trace file format with a versioned header, so generated
 * workload suites can be stored and replayed without regeneration.
 *
 * Layout (little-endian):
 *   magic     8 bytes  "GHRPTRC\1"
 *   version   u32
 *   entry_pc  u64
 *   n_records u64
 *   name_len  u32, name bytes
 *   cat_len   u32, category bytes
 *   records   n_records * { pc u64, target u64, type u8, taken u8 }
 */

#ifndef GHRP_TRACE_TRACE_IO_HH
#define GHRP_TRACE_TRACE_IO_HH

#include <string>

#include "trace/branch_record.hh"

namespace ghrp::trace
{

/** Current trace file format version. */
constexpr std::uint32_t traceFormatVersion = 1;

/**
 * Write @p trace to @p path. Calls fatal() when the file cannot be
 * created or written.
 */
void writeTrace(const Trace &trace, const std::string &path);

/**
 * Read a trace from @p path. Calls fatal() on missing files, magic
 * mismatch, or version mismatch.
 */
Trace readTrace(const std::string &path);

} // namespace ghrp::trace

#endif // GHRP_TRACE_TRACE_IO_HH

/**
 * @file
 * Binary trace file format with a versioned header, so generated
 * workload suites can be stored and replayed without regeneration.
 *
 * Layout (little-endian):
 *   magic     8 bytes  "GHRPTRC\1"
 *   version   u32
 *   entry_pc  u64
 *   n_records u64
 *   name_len  u32, name bytes
 *   cat_len   u32, category bytes
 *   records   n_records * { pc u64, target u64, type u8, taken u8 }
 */

#ifndef GHRP_TRACE_TRACE_IO_HH
#define GHRP_TRACE_TRACE_IO_HH

#include <cstddef>
#include <cstring>
#include <optional>
#include <string>

#include "trace/branch_record.hh"
#include "util/logging.hh"

namespace ghrp::trace
{

/** Current trace file format version. */
constexpr std::uint32_t traceFormatVersion = 1;

/** On-disk stride of one record: pc u64, target u64, type u8, taken u8. */
constexpr std::size_t traceRecordStride = 18;

/**
 * Write @p trace to @p path. Calls fatal() when the file cannot be
 * created or written.
 */
void writeTrace(const Trace &trace, const std::string &path);

/**
 * Write @p trace to @p path, reporting failure instead of dying: false
 * when the file cannot be created or fully written (a partial file may
 * be left behind — write to a temporary path and rename).
 */
bool tryWriteTrace(const Trace &trace, const std::string &path);

/**
 * Read a trace from @p path. Calls fatal() on missing files, magic
 * mismatch, or version mismatch.
 */
Trace readTrace(const std::string &path);

/**
 * Zero-copy view of a trace file: the file is mapped read-only (mmap
 * on POSIX; a heap buffer fallback elsewhere) and records are unpacked
 * lazily from the mapped bytes — no per-record heap allocation, no
 * up-front copy of the record array. The header (name, category, entry
 * PC, record count) is validated and parsed at open time.
 *
 * Move-only; the mapping lives as long as the object.
 */
class MappedTrace
{
  public:
    /**
     * Open @p path, returning std::nullopt on any problem: missing
     * file, bad magic, version mismatch, or a size inconsistent with
     * the header. Never calls fatal() — callers with a regeneration
     * path (the trace store) treat every failure as a cache miss.
     */
    static std::optional<MappedTrace> tryOpen(const std::string &path);

    /** Open @p path; fatal() with a reason on failure. */
    static MappedTrace open(const std::string &path);

    MappedTrace(MappedTrace &&other) noexcept;
    MappedTrace &operator=(MappedTrace &&other) noexcept;
    MappedTrace(const MappedTrace &) = delete;
    MappedTrace &operator=(const MappedTrace &) = delete;
    ~MappedTrace();

    const std::string &name() const { return traceName; }
    const std::string &category() const { return traceCategory; }
    Addr entryPc() const { return entry; }
    std::uint64_t numRecords() const { return nRecords; }

    /** Unpack record @p i (no bounds check beyond the debug assert;
     *  fatal() on a corrupt branch-type byte). Inline: the decode loop
     *  unpacks every record of a trace through this accessor, and an
     *  out-of-line call per record dominated its profile. */
    BranchRecord
    record(std::uint64_t i) const
    {
        GHRP_ASSERT(i < nRecords);
        const unsigned char *p = records + i * traceRecordStride;
        BranchRecord rec;
        std::memcpy(&rec.pc, p, sizeof(rec.pc));
        std::memcpy(&rec.target, p + 8, sizeof(rec.target));
        const std::uint8_t type = p[16];
        if (type >= numBranchTypes)
            fatal("corrupt branch type %u in mapped trace '%s'", type,
                  traceName.c_str());
        rec.type = static_cast<BranchType>(type);
        rec.taken = p[17] != 0;
        return rec;
    }

    /** Materialize the full in-memory Trace (used where a caller needs
     *  the record vector rather than streaming access). */
    Trace materialize() const;

  private:
    MappedTrace() = default;

    void release() noexcept;

    const unsigned char *base = nullptr; ///< start of file bytes
    std::size_t length = 0;              ///< total mapped length
    const unsigned char *records = nullptr; ///< record array start
    bool mapped = false;                 ///< true: munmap, false: delete[]

    std::string traceName;
    std::string traceCategory;
    Addr entry = 0;
    std::uint64_t nRecords = 0;
};

} // namespace ghrp::trace

#endif // GHRP_TRACE_TRACE_IO_HH

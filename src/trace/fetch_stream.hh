/**
 * @file
 * Reconstruction of the instruction fetch stream from a branch trace.
 *
 * The CBP-5 traces record only branches. Following Section IV-A of the
 * paper, the block address of every instruction fetch group is
 * reconstructed by inferring the sequential instructions between one
 * branch's outcome and the next branch's PC.
 */

#ifndef GHRP_TRACE_FETCH_STREAM_HH
#define GHRP_TRACE_FETCH_STREAM_HH

#include <cstdint>

#include "trace/branch_record.hh"
#include "util/bit_ops.hh"
#include "util/logging.hh"

namespace ghrp::trace
{

/**
 * Walks a branch trace and reports, for each branch record, the fetch
 * blocks spanned by the sequential run that ends at that branch.
 *
 * The walker maintains the current fetch PC. advance() visits each
 * block of the run [fetchPc, record.pc] in order (at a caller-chosen
 * block granularity), counts the instructions in the run, and moves the
 * fetch PC to the branch outcome (target if taken, fall-through
 * otherwise).
 */
class FetchStreamWalker
{
  public:
    /**
     * @param entry_pc address of the first instruction of the trace.
     * @param block_bytes fetch-block granularity (power of two).
     * @param inst_bytes fixed instruction size (power of two).
     */
    FetchStreamWalker(Addr entry_pc, std::uint32_t block_bytes = 64,
                      std::uint32_t inst_bytes = 4)
        : fetchPc(entry_pc), blockShift(floorLog2(block_bytes)),
          instBytes(inst_bytes)
    {
        GHRP_ASSERT(isPowerOf2(block_bytes));
        GHRP_ASSERT(isPowerOf2(inst_bytes));
        GHRP_ASSERT(block_bytes >= inst_bytes);
    }

    /**
     * Process one branch record.
     *
     * @param record the next executed branch; record.pc must be >=
     *        the current fetch PC (sequential run).
     * @param visit_block callable invoked as visit_block(Addr
     *        block_address) once per fetch block of the run, in
     *        ascending address order.
     */
    template <typename V>
    void
    advance(const BranchRecord &record, V &&visit_block)
    {
        if (record.pc < fetchPc) {
            // A malformed trace; resynchronize at the branch. This can
            // only happen with hand-built traces, never with the
            // workload generator.
            ++resyncCount;
            fetchPc = record.pc;
        }

        const Addr first_block = fetchPc >> blockShift;
        const Addr last_block = record.pc >> blockShift;
        for (Addr blk = first_block; blk <= last_block; ++blk)
            visit_block(blk << blockShift);

        instructions += (record.pc - fetchPc) / instBytes + 1;

        fetchPc = record.taken ? record.target : record.pc + instBytes;
    }

    /** Dynamic instruction count reconstructed so far. */
    std::uint64_t instructionCount() const { return instructions; }

    /** Current fetch PC (next instruction to be fetched). */
    Addr currentPc() const { return fetchPc; }

    /** Number of out-of-order records tolerated (should stay 0). */
    std::uint64_t resyncs() const { return resyncCount; }

  private:
    Addr fetchPc;
    unsigned blockShift;
    std::uint32_t instBytes;
    std::uint64_t instructions = 0;
    std::uint64_t resyncCount = 0;
};

} // namespace ghrp::trace

#endif // GHRP_TRACE_FETCH_STREAM_HH

/**
 * @file
 * Decode-once fetch-op stream: the per-record work the front-end used
 * to redo for every policy leg — fetch-run reconstruction, fetch-buffer
 * coalescing, branch-type classification and instruction counting — is
 * performed once per trace and stored as a compact structure-of-arrays
 * stream that every leg then consumes read-only.
 *
 * The decoded stream is exactly equivalent to walking the branch
 * records through FetchStreamWalker with the front-end's coalescing
 * rule: the differential tests assert bit-identical simulation results
 * between the two paths for every policy.
 */

#ifndef GHRP_TRACE_DECODED_TRACE_HH
#define GHRP_TRACE_DECODED_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/branch_record.hh"

namespace ghrp::trace
{

class MappedTrace;

/**
 * Branch metadata packed into one byte per record: the raw type and
 * taken bit plus the precomputed classification flags the simulation
 * loop branches on, so the hot loop tests single bits instead of
 * re-deriving the class from the type.
 */
namespace branch_meta
{
constexpr std::uint8_t typeMask = 0x07;     ///< bits 0..2: BranchType
constexpr std::uint8_t takenBit = 1u << 3;
constexpr std::uint8_t condBit = 1u << 4;   ///< isConditional(type)
constexpr std::uint8_t indirectBit = 1u << 5; ///< isIndirect(type)
constexpr std::uint8_t callBit = 1u << 6;   ///< isCall(type)
constexpr std::uint8_t returnBit = 1u << 7; ///< type == Return

/** Pack @p type and @p taken with their classification flags. */
constexpr std::uint8_t
pack(BranchType type, bool taken)
{
    std::uint8_t m = static_cast<std::uint8_t>(type) & typeMask;
    if (taken)
        m |= takenBit;
    if (isConditional(type))
        m |= condBit;
    if (isIndirect(type))
        m |= indirectBit;
    if (isCall(type))
        m |= callBit;
    if (type == BranchType::Return)
        m |= returnBit;
    return m;
}

constexpr BranchType
type(std::uint8_t meta)
{
    return static_cast<BranchType>(meta & typeMask);
}

constexpr bool taken(std::uint8_t m) { return (m & takenBit) != 0; }
constexpr bool conditional(std::uint8_t m) { return (m & condBit) != 0; }
constexpr bool indirect(std::uint8_t m) { return (m & indirectBit) != 0; }
constexpr bool call(std::uint8_t m) { return (m & callBit) != 0; }
constexpr bool isReturn(std::uint8_t m) { return (m & returnBit) != 0; }
} // namespace branch_meta

/**
 * A branch trace decoded at a fixed (block size, instruction size)
 * granularity. Built once per trace by decodeTrace() and shared
 * read-only across all policy legs simulating that trace.
 *
 * Record i carries:
 *   - brPc[i] / brTarget[i] / brMeta[i]: the branch itself;
 *   - fetchPc[opBegin[i] .. opBegin[i+1]): the I-cache accesses of the
 *     sequential fetch run ending at the branch, *after* fetch-buffer
 *     coalescing (a run that stays within the previously fetched block
 *     contributes no ops). Each op's block address is fetchPc & ~(
 *     blockBytes - 1);
 *   - cumInstructions[i]: dynamic instructions reconstructed up to and
 *     including record i (the walker's running count), which gives the
 *     warm-up boundary and the total without a second pass.
 */
struct DecodedTrace
{
    std::string name;
    std::string category;
    Addr entryPc = 0;

    /** Decode granularity; legs must be configured to match. */
    std::uint32_t blockBytes = 64;
    std::uint32_t instBytes = 4;

    /** Out-of-order records tolerated during decode (0 for generated
     *  traces; mirrors FetchStreamWalker::resyncs()). */
    std::uint64_t resyncs = 0;

    std::vector<Addr> brPc;
    std::vector<Addr> brTarget;
    std::vector<std::uint8_t> brMeta;
    std::vector<std::uint64_t> cumInstructions;

    /** opBegin[i] .. opBegin[i+1] index record i's ops in fetchPc;
     *  size numRecords() + 1, opBegin[0] == 0. */
    std::vector<std::uint64_t> opBegin;
    std::vector<Addr> fetchPc;

    /**
     * Optional pre-resolved direction stream. Like the fetch ops, the
     * direction predictor's behaviour is a pure function of the branch
     * record sequence — it never observes cache or BTB state — so its
     * per-conditional-branch prediction can be resolved once per trace
     * and shared across policy legs instead of re-simulating the
     * predictor in every leg.
     *
     * directionKind holds the frontend::DirectionKind this stream was
     * resolved with (as an int, to keep this layer below the frontend),
     * or -1 when absent; dirPredictedTaken[i] is meaningful only for
     * conditional records. Legs whose configured predictor does not
     * match fall back to simulating the predictor live — results are
     * bit-identical either way.
     */
    int directionKind = -1;
    std::vector<std::uint8_t> dirPredictedTaken;

    bool
    hasDirectionStream() const
    {
        return directionKind >= 0 &&
               dirPredictedTaken.size() == brPc.size();
    }

    std::size_t numRecords() const { return brPc.size(); }
    std::size_t numFetchOps() const { return fetchPc.size(); }

    /** Total reconstructed dynamic instruction count. */
    std::uint64_t
    totalInstructions() const
    {
        return cumInstructions.empty() ? 0 : cumInstructions.back();
    }

    /** Approximate resident size, for cache budgeting. */
    std::size_t memoryBytes() const;
};

/**
 * Decode @p trace at the given granularity (one pass; the only walk of
 * the record stream the whole sweep performs).
 */
DecodedTrace decodeTrace(const Trace &trace, std::uint32_t block_bytes,
                         std::uint32_t inst_bytes);

/**
 * Decode directly from an mmap-backed trace file without materializing
 * a Trace: records are unpacked from the map as they are consumed.
 */
DecodedTrace decodeTrace(const MappedTrace &mapped,
                         std::uint32_t block_bytes,
                         std::uint32_t inst_bytes);

} // namespace ghrp::trace

#endif // GHRP_TRACE_DECODED_TRACE_HH

#include "trace/trace_io.hh"

#include <cstring>
#include <fstream>

#include "util/logging.hh"

namespace ghrp::trace
{

namespace
{

constexpr char traceMagic[8] = {'G', 'H', 'R', 'P', 'T', 'R', 'C', '\1'};

template <typename T>
void
writeScalar(std::ofstream &file, T value)
{
    file.write(reinterpret_cast<const char *>(&value), sizeof(value));
}

template <typename T>
T
readScalar(std::ifstream &file, const std::string &path)
{
    T value{};
    file.read(reinterpret_cast<char *>(&value), sizeof(value));
    if (!file)
        fatal("truncated trace file '%s'", path.c_str());
    return value;
}

void
writeString(std::ofstream &file, const std::string &s)
{
    writeScalar<std::uint32_t>(file, static_cast<std::uint32_t>(s.size()));
    file.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string
readString(std::ifstream &file, const std::string &path)
{
    const auto len = readScalar<std::uint32_t>(file, path);
    if (len > (1u << 20))
        fatal("corrupt string length in trace file '%s'", path.c_str());
    std::string s(len, '\0');
    file.read(s.data(), len);
    if (!file)
        fatal("truncated trace file '%s'", path.c_str());
    return s;
}

} // anonymous namespace

void
writeTrace(const Trace &trace, const std::string &path)
{
    std::ofstream file(path, std::ios::binary);
    if (!file)
        fatal("cannot create trace file '%s'", path.c_str());

    file.write(traceMagic, sizeof(traceMagic));
    writeScalar<std::uint32_t>(file, traceFormatVersion);
    writeScalar<std::uint64_t>(file, trace.entryPc);
    writeScalar<std::uint64_t>(file, trace.records.size());
    writeString(file, trace.name);
    writeString(file, trace.category);

    for (const BranchRecord &rec : trace.records) {
        writeScalar<std::uint64_t>(file, rec.pc);
        writeScalar<std::uint64_t>(file, rec.target);
        writeScalar<std::uint8_t>(file, static_cast<std::uint8_t>(rec.type));
        writeScalar<std::uint8_t>(file, rec.taken ? 1 : 0);
    }
    if (!file)
        fatal("error writing trace file '%s'", path.c_str());
}

Trace
readTrace(const std::string &path)
{
    std::ifstream file(path, std::ios::binary);
    if (!file)
        fatal("cannot open trace file '%s'", path.c_str());

    char magic[8];
    file.read(magic, sizeof(magic));
    if (!file || std::memcmp(magic, traceMagic, sizeof(magic)) != 0)
        fatal("'%s' is not a GHRP trace file", path.c_str());

    const auto version = readScalar<std::uint32_t>(file, path);
    if (version != traceFormatVersion)
        fatal("trace file '%s' has version %u, expected %u", path.c_str(),
              version, traceFormatVersion);

    Trace trace;
    trace.entryPc = readScalar<std::uint64_t>(file, path);
    const auto n = readScalar<std::uint64_t>(file, path);
    trace.name = readString(file, path);
    trace.category = readString(file, path);

    trace.records.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        BranchRecord rec;
        rec.pc = readScalar<std::uint64_t>(file, path);
        rec.target = readScalar<std::uint64_t>(file, path);
        const auto type = readScalar<std::uint8_t>(file, path);
        if (type >= numBranchTypes)
            fatal("corrupt branch type %u in '%s'", type, path.c_str());
        rec.type = static_cast<BranchType>(type);
        rec.taken = readScalar<std::uint8_t>(file, path) != 0;
        trace.records.push_back(rec);
    }
    return trace;
}

} // namespace ghrp::trace

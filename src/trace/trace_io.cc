#include "trace/trace_io.hh"

#include <cstring>
#include <fstream>

#include "util/logging.hh"

#if defined(__unix__) || defined(__APPLE__)
#define GHRP_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace ghrp::trace
{

namespace
{

constexpr char traceMagic[8] = {'G', 'H', 'R', 'P', 'T', 'R', 'C', '\1'};

template <typename T>
void
writeScalar(std::ofstream &file, T value)
{
    file.write(reinterpret_cast<const char *>(&value), sizeof(value));
}

template <typename T>
T
readScalar(std::ifstream &file, const std::string &path)
{
    T value{};
    file.read(reinterpret_cast<char *>(&value), sizeof(value));
    if (!file)
        fatal("truncated trace file '%s'", path.c_str());
    return value;
}

void
writeString(std::ofstream &file, const std::string &s)
{
    writeScalar<std::uint32_t>(file, static_cast<std::uint32_t>(s.size()));
    file.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string
readString(std::ifstream &file, const std::string &path)
{
    const auto len = readScalar<std::uint32_t>(file, path);
    if (len > (1u << 20))
        fatal("corrupt string length in trace file '%s'", path.c_str());
    std::string s(len, '\0');
    file.read(s.data(), len);
    if (!file)
        fatal("truncated trace file '%s'", path.c_str());
    return s;
}

/** Bounds-checked cursor over the mapped header bytes. */
struct ByteCursor
{
    const unsigned char *data;
    std::size_t length;
    std::size_t pos = 0;

    template <typename T>
    bool
    read(T &out)
    {
        if (length - pos < sizeof(T))
            return false;
        std::memcpy(&out, data + pos, sizeof(T));
        pos += sizeof(T);
        return true;
    }

    bool
    readString(std::string &out)
    {
        std::uint32_t len = 0;
        if (!read(len) || len > (1u << 20) || length - pos < len)
            return false;
        out.assign(reinterpret_cast<const char *>(data + pos), len);
        pos += len;
        return true;
    }
};

} // anonymous namespace

bool
tryWriteTrace(const Trace &trace, const std::string &path)
{
    std::ofstream file(path, std::ios::binary);
    if (!file)
        return false;

    file.write(traceMagic, sizeof(traceMagic));
    writeScalar<std::uint32_t>(file, traceFormatVersion);
    writeScalar<std::uint64_t>(file, trace.entryPc);
    writeScalar<std::uint64_t>(file, trace.records.size());
    writeString(file, trace.name);
    writeString(file, trace.category);

    for (const BranchRecord &rec : trace.records) {
        writeScalar<std::uint64_t>(file, rec.pc);
        writeScalar<std::uint64_t>(file, rec.target);
        writeScalar<std::uint8_t>(file, static_cast<std::uint8_t>(rec.type));
        writeScalar<std::uint8_t>(file, rec.taken ? 1 : 0);
    }
    file.flush();
    return static_cast<bool>(file);
}

void
writeTrace(const Trace &trace, const std::string &path)
{
    if (!tryWriteTrace(trace, path))
        fatal("cannot write trace file '%s'", path.c_str());
}

Trace
readTrace(const std::string &path)
{
    std::ifstream file(path, std::ios::binary);
    if (!file)
        fatal("cannot open trace file '%s'", path.c_str());

    char magic[8];
    file.read(magic, sizeof(magic));
    if (!file || std::memcmp(magic, traceMagic, sizeof(magic)) != 0)
        fatal("'%s' is not a GHRP trace file", path.c_str());

    const auto version = readScalar<std::uint32_t>(file, path);
    if (version != traceFormatVersion)
        fatal("trace file '%s' has version %u, expected %u", path.c_str(),
              version, traceFormatVersion);

    Trace trace;
    trace.entryPc = readScalar<std::uint64_t>(file, path);
    const auto n = readScalar<std::uint64_t>(file, path);
    trace.name = readString(file, path);
    trace.category = readString(file, path);

    trace.records.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        BranchRecord rec;
        rec.pc = readScalar<std::uint64_t>(file, path);
        rec.target = readScalar<std::uint64_t>(file, path);
        const auto type = readScalar<std::uint8_t>(file, path);
        if (type >= numBranchTypes)
            fatal("corrupt branch type %u in '%s'", type, path.c_str());
        rec.type = static_cast<BranchType>(type);
        rec.taken = readScalar<std::uint8_t>(file, path) != 0;
        trace.records.push_back(rec);
    }
    return trace;
}

// --------------------------------------------------------- MappedTrace

std::optional<MappedTrace>
MappedTrace::tryOpen(const std::string &path)
{
    MappedTrace mt;

#if GHRP_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return std::nullopt;
    struct stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
        ::close(fd);
        return std::nullopt;
    }
    const std::size_t len = static_cast<std::size_t>(st.st_size);
    void *map = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd); // the mapping keeps its own reference
    if (map == MAP_FAILED)
        return std::nullopt;
    mt.base = static_cast<const unsigned char *>(map);
    mt.length = len;
    mt.mapped = true;
#else
    std::ifstream file(path, std::ios::binary | std::ios::ate);
    if (!file)
        return std::nullopt;
    const std::streamoff size = file.tellg();
    if (size <= 0)
        return std::nullopt;
    auto *buffer = new unsigned char[static_cast<std::size_t>(size)];
    file.seekg(0);
    file.read(reinterpret_cast<char *>(buffer),
              static_cast<std::streamsize>(size));
    if (!file) {
        delete[] buffer;
        return std::nullopt;
    }
    mt.base = buffer;
    mt.length = static_cast<std::size_t>(size);
    mt.mapped = false;
#endif

    // Parse and validate the header against the mapped length.
    ByteCursor cur{mt.base, mt.length};
    if (mt.length < sizeof(traceMagic) ||
        std::memcmp(mt.base, traceMagic, sizeof(traceMagic)) != 0)
        return std::nullopt; // mt's destructor unmaps
    cur.pos = sizeof(traceMagic);

    std::uint32_t version = 0;
    if (!cur.read(version) || version != traceFormatVersion)
        return std::nullopt;
    if (!cur.read(mt.entry) || !cur.read(mt.nRecords) ||
        !cur.readString(mt.traceName) || !cur.readString(mt.traceCategory))
        return std::nullopt;
    if ((mt.length - cur.pos) / traceRecordStride < mt.nRecords)
        return std::nullopt; // truncated record array
    mt.records = mt.base + cur.pos;

    return mt;
}

MappedTrace
MappedTrace::open(const std::string &path)
{
    auto mt = tryOpen(path);
    if (!mt)
        fatal("cannot map trace file '%s' (missing, corrupt, or wrong "
              "version)", path.c_str());
    return std::move(*mt);
}

MappedTrace::MappedTrace(MappedTrace &&other) noexcept
{
    *this = std::move(other);
}

MappedTrace &
MappedTrace::operator=(MappedTrace &&other) noexcept
{
    if (this != &other) {
        release();
        base = other.base;
        length = other.length;
        records = other.records;
        mapped = other.mapped;
        traceName = std::move(other.traceName);
        traceCategory = std::move(other.traceCategory);
        entry = other.entry;
        nRecords = other.nRecords;
        other.base = nullptr;
        other.records = nullptr;
        other.length = 0;
        other.nRecords = 0;
    }
    return *this;
}

MappedTrace::~MappedTrace()
{
    release();
}

void
MappedTrace::release() noexcept
{
    if (!base)
        return;
#if GHRP_HAVE_MMAP
    if (mapped)
        ::munmap(const_cast<unsigned char *>(base), length);
    else
        delete[] base;
#else
    delete[] base;
#endif
    base = nullptr;
    records = nullptr;
    length = 0;
}

Trace
MappedTrace::materialize() const
{
    Trace trace;
    trace.name = traceName;
    trace.category = traceCategory;
    trace.entryPc = entry;
    trace.records.reserve(nRecords);
    for (std::uint64_t i = 0; i < nRecords; ++i)
        trace.records.push_back(record(i));
    return trace;
}

} // namespace ghrp::trace

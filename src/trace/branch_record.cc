#include "trace/branch_record.hh"

#include <unordered_set>

#include "trace/fetch_stream.hh"

namespace ghrp::trace
{

const char *
branchTypeName(BranchType type)
{
    switch (type) {
      case BranchType::CondDirect:
        return "cond-direct";
      case BranchType::UncondDirect:
        return "uncond-direct";
      case BranchType::CondIndirect:
        return "cond-indirect";
      case BranchType::UncondIndirect:
        return "uncond-indirect";
      case BranchType::Call:
        return "call";
      case BranchType::IndirectCall:
        return "indirect-call";
      case BranchType::Return:
        return "return";
    }
    return "unknown";
}

TraceSummary
summarize(const Trace &trace, std::uint32_t inst_bytes)
{
    TraceSummary summary;
    std::unordered_set<Addr> static_pcs;
    std::unordered_set<Addr> taken_pcs;
    std::unordered_set<Addr> blocks;

    FetchStreamWalker walker(trace.entryPc, 64, inst_bytes);
    for (const BranchRecord &rec : trace.records) {
        ++summary.records;
        if (rec.taken) {
            ++summary.takenCount;
            taken_pcs.insert(rec.pc);
        }
        ++summary.perType[static_cast<std::size_t>(rec.type)];
        static_pcs.insert(rec.pc);
        walker.advance(rec,
                       [&](Addr block) { blocks.insert(block); });
    }
    summary.staticBranches = static_pcs.size();
    summary.staticTakenBranches = taken_pcs.size();
    summary.staticBlocks64 = blocks.size();
    summary.instructions = walker.instructionCount();
    return summary;
}

} // namespace ghrp::trace

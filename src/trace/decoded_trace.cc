#include "trace/decoded_trace.hh"

#include <algorithm>

#include "trace/fetch_stream.hh"
#include "trace/trace_io.hh"

namespace ghrp::trace
{

namespace
{

/**
 * Shared decode loop: @p read_record(i) yields record i of @p n. The
 * loop mirrors the front-end's walker path exactly — including the
 * fetch-buffer coalescing rule, whose state (the last fetched block)
 * evolves deterministically from the visited-block sequence and can
 * therefore be resolved at decode time.
 */
template <typename ReadRecord>
DecodedTrace
decodeImpl(Addr entry_pc, std::uint64_t n, std::uint32_t block_bytes,
           std::uint32_t inst_bytes, ReadRecord &&read_record)
{
    DecodedTrace dec;
    dec.entryPc = entry_pc;
    dec.blockBytes = block_bytes;
    dec.instBytes = inst_bytes;

    dec.brPc.reserve(n);
    dec.brTarget.reserve(n);
    dec.brMeta.reserve(n);
    dec.cumInstructions.reserve(n);
    dec.opBegin.reserve(n + 1);
    dec.opBegin.push_back(0);
    // Fetch runs average a couple of blocks; over-reserving slightly
    // avoids the last doubling for typical traces.
    dec.fetchPc.reserve(n + n / 2);

    FetchStreamWalker walker(entry_pc, block_bytes, inst_bytes);
    Addr last_block = ~Addr{0};

    for (std::uint64_t i = 0; i < n; ++i) {
        const BranchRecord rec = read_record(i);
        const Addr run_start = walker.currentPc();
        walker.advance(rec, [&](Addr block_addr) {
            if (block_addr == last_block)
                return;
            last_block = block_addr;
            dec.fetchPc.push_back(std::max(run_start, block_addr));
        });

        dec.brPc.push_back(rec.pc);
        dec.brTarget.push_back(rec.target);
        dec.brMeta.push_back(branch_meta::pack(rec.type, rec.taken));
        dec.cumInstructions.push_back(walker.instructionCount());
        dec.opBegin.push_back(dec.fetchPc.size());
    }

    dec.resyncs = walker.resyncs();
    return dec;
}

} // anonymous namespace

std::size_t
DecodedTrace::memoryBytes() const
{
    return brPc.capacity() * sizeof(Addr) +
           brTarget.capacity() * sizeof(Addr) + brMeta.capacity() +
           cumInstructions.capacity() * sizeof(std::uint64_t) +
           opBegin.capacity() * sizeof(std::uint64_t) +
           fetchPc.capacity() * sizeof(Addr) +
           dirPredictedTaken.capacity() + sizeof(*this);
}

DecodedTrace
decodeTrace(const Trace &trace, std::uint32_t block_bytes,
            std::uint32_t inst_bytes)
{
    DecodedTrace dec = decodeImpl(
        trace.entryPc, trace.records.size(), block_bytes, inst_bytes,
        [&](std::uint64_t i) { return trace.records[i]; });
    dec.name = trace.name;
    dec.category = trace.category;
    return dec;
}

DecodedTrace
decodeTrace(const MappedTrace &mapped, std::uint32_t block_bytes,
            std::uint32_t inst_bytes)
{
    DecodedTrace dec = decodeImpl(
        mapped.entryPc(), mapped.numRecords(), block_bytes, inst_bytes,
        [&](std::uint64_t i) { return mapped.record(i); });
    dec.name = mapped.name();
    dec.category = mapped.category();
    return dec;
}

} // namespace ghrp::trace

/**
 * @file
 * Streaming mean/variance accumulator (Welford's algorithm) plus simple
 * min/max tracking, used for per-suite MPKI aggregation.
 */

#ifndef GHRP_STATS_RUNNING_STATS_HH
#define GHRP_STATS_RUNNING_STATS_HH

#include <cmath>
#include <cstdint>
#include <limits>

namespace ghrp::stats
{

/** Online accumulator for mean, variance, min, and max of a stream. */
class RunningStats
{
  public:
    /** Add one observation. */
    void
    add(double x)
    {
        ++n;
        const double delta = x - meanVal;
        meanVal += delta / static_cast<double>(n);
        m2 += delta * (x - meanVal);
        if (x < minVal)
            minVal = x;
        if (x > maxVal)
            maxVal = x;
        sumVal += x;
    }

    /** Number of observations so far. */
    std::uint64_t count() const { return n; }

    /** Arithmetic mean (0 when empty). */
    double mean() const { return n ? meanVal : 0.0; }

    /** Sum of all observations. */
    double sum() const { return sumVal; }

    /** Unbiased sample variance (0 when n < 2). */
    double
    variance() const
    {
        return n > 1 ? m2 / static_cast<double>(n - 1) : 0.0;
    }

    /** Sample standard deviation. */
    double stddev() const { return std::sqrt(variance()); }

    /** Standard error of the mean. */
    double
    stderror() const
    {
        return n > 0 ? stddev() / std::sqrt(static_cast<double>(n)) : 0.0;
    }

    /** Minimum observation (+inf when empty). */
    double min() const { return minVal; }

    /** Maximum observation (-inf when empty). */
    double max() const { return maxVal; }

  private:
    std::uint64_t n = 0;
    double meanVal = 0.0;
    double m2 = 0.0;
    double sumVal = 0.0;
    double minVal = std::numeric_limits<double>::infinity();
    double maxVal = -std::numeric_limits<double>::infinity();
};

} // namespace ghrp::stats

#endif // GHRP_STATS_RUNNING_STATS_HH

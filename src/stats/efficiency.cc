#include "stats/efficiency.hh"

#include <cstdio>
#include <fstream>

#include "util/logging.hh"

namespace ghrp::stats
{

EfficiencyTracker::EfficiencyTracker(std::uint32_t num_sets,
                                     std::uint32_t num_ways)
    : sets(num_sets), ways(num_ways),
      frames(static_cast<std::size_t>(num_sets) * num_ways)
{
    GHRP_ASSERT(num_sets > 0 && num_ways > 0);
}

EfficiencyTracker::Frame &
EfficiencyTracker::frame(std::uint32_t set, std::uint32_t way)
{
    GHRP_ASSERT(set < sets && way < ways);
    return frames[static_cast<std::size_t>(set) * ways + way];
}

const EfficiencyTracker::Frame &
EfficiencyTracker::frame(std::uint32_t set, std::uint32_t way) const
{
    GHRP_ASSERT(set < sets && way < ways);
    return frames[static_cast<std::size_t>(set) * ways + way];
}

void
EfficiencyTracker::closeGeneration(Frame &f, std::uint64_t tick)
{
    if (!f.occupied)
        return;
    const std::uint64_t end = tick > f.fillTick ? tick : f.fillTick;
    f.totalTime += end - f.fillTick;
    f.liveTime += f.lastHitTick - f.fillTick;
    f.occupied = false;
}

void
EfficiencyTracker::onFill(std::uint32_t set, std::uint32_t way,
                          std::uint64_t tick)
{
    Frame &f = frame(set, way);
    // An implicit eviction: if the caller did not report onEvict for the
    // previous occupant, close its generation here.
    closeGeneration(f, tick);
    f.occupied = true;
    f.fillTick = tick;
    f.lastHitTick = tick;
}

void
EfficiencyTracker::onHit(std::uint32_t set, std::uint32_t way,
                         std::uint64_t tick)
{
    Frame &f = frame(set, way);
    if (!f.occupied) {
        // Tolerate hits on frames we never saw filled (e.g. tracking
        // attached mid-simulation): treat as a fill.
        f.occupied = true;
        f.fillTick = tick;
    }
    f.lastHitTick = tick;
}

void
EfficiencyTracker::onEvict(std::uint32_t set, std::uint32_t way,
                           std::uint64_t tick)
{
    closeGeneration(frame(set, way), tick);
}

void
EfficiencyTracker::finalize(std::uint64_t tick)
{
    for (Frame &f : frames)
        closeGeneration(f, tick);
}

double
EfficiencyTracker::efficiency(std::uint32_t set, std::uint32_t way) const
{
    const Frame &f = frame(set, way);
    if (f.totalTime == 0)
        return 0.0;
    return static_cast<double>(f.liveTime) /
           static_cast<double>(f.totalTime);
}

double
EfficiencyTracker::meanEfficiency() const
{
    double total = 0.0;
    std::uint64_t counted = 0;
    for (std::uint32_t s = 0; s < sets; ++s) {
        for (std::uint32_t w = 0; w < ways; ++w) {
            const Frame &f = frame(s, w);
            if (f.totalTime == 0)
                continue;
            total += static_cast<double>(f.liveTime) /
                     static_cast<double>(f.totalTime);
            ++counted;
        }
    }
    return counted ? total / static_cast<double>(counted) : 0.0;
}

std::string
EfficiencyTracker::renderAscii(std::uint32_t max_rows) const
{
    // Light-to-dark ramp: high efficiency renders light (matching the
    // paper's convention that lighter pixels are longer live times).
    static const char ramp[] = "@%#*+=-:. ";
    const std::uint32_t nlevels = sizeof(ramp) - 2;

    const std::uint32_t fold =
        max_rows > 0 && sets > max_rows ? (sets + max_rows - 1) / max_rows
                                        : 1;
    std::string out;
    for (std::uint32_t row = 0; row < sets; row += fold) {
        for (std::uint32_t w = 0; w < ways; ++w) {
            double sum = 0.0;
            std::uint32_t count = 0;
            for (std::uint32_t s = row; s < row + fold && s < sets; ++s) {
                sum += efficiency(s, w);
                ++count;
            }
            const double e = count ? sum / count : 0.0;
            const auto level =
                static_cast<std::uint32_t>(e * nlevels + 0.5);
            out.push_back(ramp[level > nlevels ? nlevels : level]);
        }
        out.push_back('\n');
    }
    return out;
}

void
EfficiencyTracker::writePgm(const std::string &path) const
{
    std::ofstream file(path, std::ios::binary);
    if (!file)
        fatal("cannot open '%s' for writing", path.c_str());
    file << "P5\n" << ways << " " << sets << "\n255\n";
    for (std::uint32_t s = 0; s < sets; ++s) {
        for (std::uint32_t w = 0; w < ways; ++w) {
            const double e = efficiency(s, w);
            const auto pixel = static_cast<unsigned char>(e * 255.0 + 0.5);
            file.put(static_cast<char>(pixel));
        }
    }
}

} // namespace ghrp::stats

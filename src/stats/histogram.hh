/**
 * @file
 * Fixed-bin histogram used for trace characterization (branch distance
 * distributions, reuse-interval distributions) and workload validation.
 */

#ifndef GHRP_STATS_HISTOGRAM_HH
#define GHRP_STATS_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/logging.hh"

namespace ghrp::stats
{

/** Linear-bin histogram over [lo, hi) with out-of-range buckets. */
class Histogram
{
  public:
    /**
     * @param lo inclusive lower bound of the tracked range.
     * @param hi exclusive upper bound.
     * @param nbins number of equal-width bins.
     */
    Histogram(double lo, double hi, std::uint32_t nbins)
        : loBound(lo), hiBound(hi), bins(nbins, 0)
    {
        GHRP_ASSERT(hi > lo && nbins > 0);
        binWidth = (hi - lo) / nbins;
    }

    /** Add one sample. */
    void
    add(double x)
    {
        ++total;
        if (x < loBound) {
            ++underflow;
        } else if (x >= hiBound) {
            ++overflow;
        } else {
            auto idx = static_cast<std::size_t>((x - loBound) / binWidth);
            if (idx >= bins.size())
                idx = bins.size() - 1;
            ++bins[idx];
        }
    }

    std::uint64_t count() const { return total; }
    std::uint64_t underflowCount() const { return underflow; }
    std::uint64_t overflowCount() const { return overflow; }
    std::uint64_t binCount(std::size_t i) const { return bins.at(i); }
    std::size_t numBins() const { return bins.size(); }

    /** Lower edge of bin @p i. */
    double binLow(std::size_t i) const { return loBound + binWidth * i; }

    /** Fraction of in-range samples at or below bin @p i. */
    double
    cumulativeFraction(std::size_t i) const
    {
        std::uint64_t cum = underflow;
        for (std::size_t b = 0; b <= i && b < bins.size(); ++b)
            cum += bins[b];
        return total ? static_cast<double>(cum) / total : 0.0;
    }

    /** Render a simple vertical-bar text chart. */
    std::string
    render(std::uint32_t width = 50) const
    {
        std::uint64_t peak = 1;
        for (std::uint64_t b : bins)
            peak = b > peak ? b : peak;
        std::string out;
        char label[64];
        for (std::size_t i = 0; i < bins.size(); ++i) {
            std::snprintf(label, sizeof(label), "%12.2f | ", binLow(i));
            out += label;
            const auto len = static_cast<std::size_t>(
                static_cast<double>(bins[i]) / peak * width);
            out.append(len, '#');
            std::snprintf(label, sizeof(label), " %llu\n",
                          static_cast<unsigned long long>(bins[i]));
            out += label;
        }
        return out;
    }

  private:
    double loBound;
    double hiBound;
    double binWidth;
    std::vector<std::uint64_t> bins;
    std::uint64_t underflow = 0;
    std::uint64_t overflow = 0;
    std::uint64_t total = 0;
};

} // namespace ghrp::stats

#endif // GHRP_STATS_HISTOGRAM_HH

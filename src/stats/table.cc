#include "stats/table.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <numeric>

#include "util/logging.hh"

namespace ghrp::stats
{

TextTable::TextTable(std::vector<std::string> column_names)
    : header(std::move(column_names))
{
    GHRP_ASSERT(!header.empty());
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != header.size())
        panic("table row has %zu cells, expected %zu", cells.size(),
              header.size());
    rows.push_back(std::move(cells));
}

std::string
TextTable::num(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row,
                        std::string &out) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out += row[c];
            if (c + 1 < row.size())
                out.append(widths[c] - row[c].size() + 2, ' ');
        }
        out.push_back('\n');
    };

    std::string out;
    emit_row(header, out);
    const std::size_t total =
        std::accumulate(widths.begin(), widths.end(), std::size_t{0}) +
        2 * (widths.size() - 1);
    out.append(total, '-');
    out.push_back('\n');
    for (const auto &row : rows)
        emit_row(row, out);
    return out;
}

std::string
TextTable::renderMarkdown() const
{
    std::vector<std::size_t> widths(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row,
                        std::string &out) {
        out.push_back('|');
        for (std::size_t c = 0; c < row.size(); ++c) {
            out.push_back(' ');
            out += row[c];
            out.append(widths[c] - row[c].size() + 1, ' ');
            out.push_back('|');
        }
        out.push_back('\n');
    };

    std::string out;
    emit_row(header, out);
    out.push_back('|');
    for (std::size_t c = 0; c < header.size(); ++c)
        out += "---|";
    out.push_back('\n');
    for (const auto &row : rows)
        emit_row(row, out);
    return out;
}

std::string
TextTable::renderCsv() const
{
    auto emit_row = [](const std::vector<std::string> &row,
                       std::string &out) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out += row[c];
            if (c + 1 < row.size())
                out.push_back(',');
        }
        out.push_back('\n');
    };
    std::string out;
    emit_row(header, out);
    for (const auto &row : rows)
        emit_row(row, out);
    return out;
}

void
TextTable::writeCsv(const std::string &path) const
{
    std::ofstream file(path);
    if (!file)
        fatal("cannot open '%s' for writing", path.c_str());
    file << renderCsv();
}

SCurve
SCurve::byAscending(const std::vector<double> &baseline)
{
    SCurve curve;
    curve.order.resize(baseline.size());
    std::iota(curve.order.begin(), curve.order.end(), std::size_t{0});
    std::stable_sort(curve.order.begin(), curve.order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return baseline[a] < baseline[b];
                     });
    return curve;
}

std::vector<double>
SCurve::apply(const std::vector<double> &series) const
{
    GHRP_ASSERT(series.size() == order.size());
    std::vector<double> out(series.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        out[i] = series[order[i]];
    return out;
}

} // namespace ghrp::stats

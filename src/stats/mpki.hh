/**
 * @file
 * Miss-per-kilo-instruction accounting — the paper's figure of merit
 * for both the I-cache and the BTB.
 */

#ifndef GHRP_STATS_MPKI_HH
#define GHRP_STATS_MPKI_HH

#include <cstdint>

namespace ghrp::stats
{

/** Access/miss counters for one cache-like structure. */
struct AccessStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t bypasses = 0;   ///< misses whose fill was bypassed
    std::uint64_t evictions = 0;
    std::uint64_t deadEvictions = 0;  ///< victims chosen by dead prediction

    void
    recordHit()
    {
        ++accesses;
        ++hits;
    }

    void
    recordMiss(bool bypassed)
    {
        ++accesses;
        ++misses;
        if (bypassed)
            ++bypasses;
    }

    /** Hit rate in [0, 1]; 0 when no accesses. */
    double
    hitRate() const
    {
        return accesses ? static_cast<double>(hits) / accesses : 0.0;
    }

    /** Misses per 1000 of @p instructions. */
    double
    mpki(std::uint64_t instructions) const
    {
        if (instructions == 0)
            return 0.0;
        return static_cast<double>(misses) * 1000.0 /
               static_cast<double>(instructions);
    }
};

} // namespace ghrp::stats

#endif // GHRP_STATS_MPKI_HH

/**
 * @file
 * Text output helpers: aligned ASCII tables (for the figure/table
 * regeneration harness) and CSV writing (for plotting externally).
 */

#ifndef GHRP_STATS_TABLE_HH
#define GHRP_STATS_TABLE_HH

#include <string>
#include <vector>

namespace ghrp::stats
{

/**
 * A simple column-aligned text table. Rows are added as string cells;
 * numeric helpers format doubles with a fixed precision.
 */
class TextTable
{
  public:
    /** @param column_names header row. */
    explicit TextTable(std::vector<std::string> column_names);

    /** Append a fully formatted row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Format a double with @p precision digits after the point. */
    static std::string num(double value, int precision = 3);

    /** Render with padded columns, a header underline, and newlines. */
    std::string render() const;

    /**
     * Render as a GitHub-flavored Markdown table: every cell (header
     * included) padded to its column's maximum byte width, followed by
     * an unpadded `|---|` separator row. Deterministic — the run-report
     * renderer relies on byte-identical output for drift checks.
     */
    std::string renderMarkdown() const;

    /** Render as comma-separated values (header + rows). */
    std::string renderCsv() const;

    /** Write renderCsv() output to @p path. */
    void writeCsv(const std::string &path) const;

    std::size_t numRows() const { return rows.size(); }
    std::size_t numColumns() const { return header.size(); }

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

/**
 * Sorted S-curve series: given per-benchmark values for a baseline and
 * several policies, order benchmarks by the baseline value (the paper
 * sorts by LRU MPKI) and return the reordered series.
 */
struct SCurve
{
    /** Benchmark order (indices into the original vectors). */
    std::vector<std::size_t> order;

    /**
     * Build the ordering by ascending @p baseline value.
     */
    static SCurve byAscending(const std::vector<double> &baseline);

    /** Apply the ordering to one series. */
    std::vector<double> apply(const std::vector<double> &series) const;
};

} // namespace ghrp::stats

#endif // GHRP_STATS_TABLE_HH

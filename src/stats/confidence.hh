/**
 * @file
 * Confidence-interval helpers for Figure 8 of the paper (mean relative
 * MPKI difference vs LRU with 95% error bars).
 */

#ifndef GHRP_STATS_CONFIDENCE_HH
#define GHRP_STATS_CONFIDENCE_HH

#include <cstdint>
#include <vector>

namespace ghrp::stats
{

/** A symmetric confidence interval around a sample mean. */
struct ConfidenceInterval
{
    double mean = 0.0;       ///< sample mean
    double halfWidth = 0.0;  ///< half-width of the interval
    double lower() const { return mean - halfWidth; }
    double upper() const { return mean + halfWidth; }
};

/**
 * Two-sided Student-t quantile for the given confidence level.
 *
 * Uses the exact values for small degrees of freedom and the normal
 * approximation (with a Cornish-Fisher-style correction) above that —
 * accurate to better than 0.5% for the 0.90/0.95/0.99 levels used here.
 *
 * @param dof degrees of freedom (>= 1).
 * @param confidence confidence level in (0, 1), e.g. 0.95.
 */
double tQuantile(std::uint64_t dof, double confidence);

/**
 * Confidence interval for the mean of @p samples at @p confidence
 * (default 95%, matching the paper's error bars).
 */
ConfidenceInterval meanConfidence(const std::vector<double> &samples,
                                  double confidence = 0.95);

/**
 * Empirical quantile of @p samples (which is copied and sorted).
 * @param q quantile in [0, 1].
 */
double quantile(std::vector<double> samples, double q);

} // namespace ghrp::stats

#endif // GHRP_STATS_CONFIDENCE_HH

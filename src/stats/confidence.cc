#include "stats/confidence.hh"

#include <algorithm>
#include <cmath>

#include "stats/running_stats.hh"
#include "util/logging.hh"

namespace ghrp::stats
{

namespace
{

/** Inverse standard-normal CDF (Acklam's rational approximation). */
double
normalQuantile(double p)
{
    GHRP_ASSERT(p > 0.0 && p < 1.0);
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};
    const double plow = 0.02425;
    const double phigh = 1 - plow;

    if (p < plow) {
        const double q = std::sqrt(-2 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
                c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
    }
    if (p > phigh) {
        const double q = std::sqrt(-2 * std::log(1 - p));
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
                 c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
    }
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}

} // anonymous namespace

double
tQuantile(std::uint64_t dof, double confidence)
{
    GHRP_ASSERT(dof >= 1);
    GHRP_ASSERT(confidence > 0.0 && confidence < 1.0);
    const double p = 1.0 - (1.0 - confidence) / 2.0;

    // Exact two-sided 95% values for the first few degrees of freedom,
    // where the normal expansion is least accurate.
    if (confidence > 0.949 && confidence < 0.951 && dof <= 10) {
        static const double exact95[] = {12.706, 4.303, 3.182, 2.776, 2.571,
                                         2.447,  2.365, 2.306, 2.262, 2.228};
        return exact95[dof - 1];
    }

    const double z = normalQuantile(p);
    // Cornish-Fisher expansion of the t quantile in terms of z.
    const double n = static_cast<double>(dof);
    const double z3 = z * z * z;
    const double z5 = z3 * z * z;
    const double z7 = z5 * z * z;
    return z + (z3 + z) / (4 * n) + (5 * z5 + 16 * z3 + 3 * z) / (96 * n * n) +
           (3 * z7 + 19 * z5 + 17 * z3 - 15 * z) / (384 * n * n * n);
}

ConfidenceInterval
meanConfidence(const std::vector<double> &samples, double confidence)
{
    ConfidenceInterval ci;
    if (samples.empty())
        return ci;

    RunningStats rs;
    for (double s : samples)
        rs.add(s);
    ci.mean = rs.mean();
    if (samples.size() < 2)
        return ci;
    ci.halfWidth = tQuantile(samples.size() - 1, confidence) * rs.stderror();
    return ci;
}

double
quantile(std::vector<double> samples, double q)
{
    GHRP_ASSERT(!samples.empty());
    GHRP_ASSERT(q >= 0.0 && q <= 1.0);
    std::sort(samples.begin(), samples.end());
    const double pos = q * static_cast<double>(samples.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= samples.size())
        return samples.back();
    return samples[lo] * (1.0 - frac) + samples[lo + 1] * frac;
}

} // namespace ghrp::stats

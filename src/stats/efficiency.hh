/**
 * @file
 * Cache-efficiency tracking for the heat-map figures (Figures 1 and 5
 * of the paper). Efficiency of a cache frame is the fraction of its
 * occupied time during which the resident block was live, i.e. still
 * had a future reference before its eviction [Burger et al.].
 */

#ifndef GHRP_STATS_EFFICIENCY_HH
#define GHRP_STATS_EFFICIENCY_HH

#include <cstdint>
#include <string>
#include <vector>

namespace ghrp::stats
{

/**
 * Tracks per-frame live time across block generations. A generation
 * begins at fill and ends at eviction; its live time is the span from
 * fill to the final hit. Time is measured in accesses (ticks supplied
 * by the caller).
 */
class EfficiencyTracker
{
  public:
    /**
     * @param num_sets number of cache sets (heat-map rows).
     * @param num_ways associativity (heat-map columns).
     */
    EfficiencyTracker(std::uint32_t num_sets, std::uint32_t num_ways);

    /** Record a fill into (set, way) at time @p tick. */
    void onFill(std::uint32_t set, std::uint32_t way, std::uint64_t tick);

    /** Record a hit on the block in (set, way) at @p tick. */
    void onHit(std::uint32_t set, std::uint32_t way, std::uint64_t tick);

    /** Record an eviction of the block in (set, way) at @p tick. */
    void onEvict(std::uint32_t set, std::uint32_t way, std::uint64_t tick);

    /** Close all open generations at end of simulation. */
    void finalize(std::uint64_t tick);

    /** Efficiency of one frame in [0, 1]. */
    double efficiency(std::uint32_t set, std::uint32_t way) const;

    /** Mean efficiency over all frames. */
    double meanEfficiency() const;

    std::uint32_t numSets() const { return sets; }
    std::uint32_t numWays() const { return ways; }

    /**
     * Render the per-frame efficiencies as an ASCII heat map: one row
     * per set (optionally folded down to @p max_rows rows), one
     * character per way, using a light-to-dark ramp.
     */
    std::string renderAscii(std::uint32_t max_rows = 64) const;

    /** Write a binary PGM image (rows = sets, columns = ways). */
    void writePgm(const std::string &path) const;

  private:
    struct Frame
    {
        bool occupied = false;
        std::uint64_t fillTick = 0;
        std::uint64_t lastHitTick = 0;
        std::uint64_t liveTime = 0;   ///< accumulated across generations
        std::uint64_t totalTime = 0;  ///< accumulated occupied time
    };

    Frame &frame(std::uint32_t set, std::uint32_t way);
    const Frame &frame(std::uint32_t set, std::uint32_t way) const;
    void closeGeneration(Frame &f, std::uint64_t tick);

    std::uint32_t sets;
    std::uint32_t ways;
    std::vector<Frame> frames;
};

} // namespace ghrp::stats

#endif // GHRP_STATS_EFFICIENCY_HH

#include "service/protocol.hh"

#include <cstring>

namespace ghrp::service
{

namespace
{

std::string
encodeLength(std::size_t size)
{
    std::string header(4, '\0');
    header[0] = static_cast<char>((size >> 24) & 0xff);
    header[1] = static_cast<char>((size >> 16) & 0xff);
    header[2] = static_cast<char>((size >> 8) & 0xff);
    header[3] = static_cast<char>(size & 0xff);
    return header;
}

std::size_t
decodeLength(const char *data)
{
    const auto byte = [data](int i) {
        return static_cast<std::size_t>(
            static_cast<unsigned char>(data[i]));
    };
    return (byte(0) << 24) | (byte(1) << 16) | (byte(2) << 8) | byte(3);
}

} // anonymous namespace

std::string
encodeFrame(const report::Json &message)
{
    const std::string payload = message.dump(0);
    if (payload.size() > kMaxFrameBytes)
        throw ProtocolError("frame payload of " +
                            std::to_string(payload.size()) +
                            " bytes exceeds the protocol maximum");
    return encodeLength(payload.size()) + payload;
}

void
FrameDecoder::feed(const char *data, std::size_t size)
{
    buffer.append(data, size);
}

std::optional<report::Json>
FrameDecoder::next()
{
    if (buffer.size() < 4)
        return std::nullopt;
    const std::size_t length = decodeLength(buffer.data());
    if (length > kMaxFrameBytes)
        throw ProtocolError("incoming frame of " + std::to_string(length) +
                            " bytes exceeds the protocol maximum");
    if (buffer.size() < 4 + length)
        return std::nullopt;
    const std::string payload = buffer.substr(4, length);
    buffer.erase(0, 4 + length);
    return report::Json::parse(payload);
}

report::Json
makeMessage(const std::string &type)
{
    report::Json message = report::Json::object();
    message.set("proto", kProtocolName);
    report::Json version = report::Json::object();
    version.set("major", kProtocolMajor);
    version.set("minor", kProtocolMinor);
    message.set("version", std::move(version));
    message.set("type", type);
    return message;
}

std::string
checkMessage(const report::Json &message)
{
    try {
        const report::Json *proto = message.find("proto");
        if (!proto || proto->asString() != kProtocolName)
            throw ProtocolError("not a " + std::string(kProtocolName) +
                                " message");
        const int major = static_cast<int>(
            message.at("version").at("major").asInt());
        if (major > kProtocolMajor)
            throw ProtocolError(
                "unsupported protocol major version " +
                std::to_string(major) + " (peer supports " +
                std::to_string(kProtocolMajor) + ")");
        return message.at("type").asString();
    } catch (const report::JsonError &e) {
        throw ProtocolError(std::string("malformed message envelope: ") +
                            e.what());
    }
}

} // namespace ghrp::service

/**
 * @file
 * The sweep-serving daemon core: accepts jobs over a unix-domain
 * socket (service/protocol), queues them with bounded backpressure,
 * executes them one at a time on the shared suite runner, journals
 * every completed leg (service/journal) and streams progress to
 * watching clients.
 *
 * Threading model: one poll()-driven network thread (run()) owns all
 * sockets and the job table; a scheduler of N coordinator threads
 * (--max-active) executes up to N jobs concurrently. All simulation
 * work runs on ONE shared thread pool sized to the global budget
 * (--total-threads): each starting job leases threads from that
 * budget — lease = clamp(requested jobs, 1, free budget) — and the
 * lease caps the job's in-flight pool tasks, so small jobs pack
 * alongside large ones instead of serializing behind them while the
 * pool's OS thread count never exceeds the budget. Coordinators
 * communicate with the network thread through a mutex-protected event
 * queue plus a wakeup pipe, and requestStop() is async-signal-safe (a
 * single write to a self-pipe), so SIGTERM handlers can call it
 * directly.
 *
 * Durability: the submit handler journals the job record before
 * acknowledging, the worker journals each completed leg, and a
 * terminal record (done/failed/cancelled) seals the file. A daemon
 * restarted over the same --journal-dir re-enqueues every unsealed
 * job with a skip-set of its journaled legs; the runner re-simulates
 * only the missing legs and the journaled results are injected back
 * into their slots, so the final report matches an uninterrupted run
 * leg for leg.
 *
 * Warm-daemon speedups: one TraceStore and one LRU cache of decoded
 * traces (keyed by content, granularity and direction predictor) are
 * shared across jobs, so repeated sweeps skip generation and decode
 * entirely.
 */

#ifndef GHRP_SERVICE_SERVER_HH
#define GHRP_SERVICE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/runner.hh"
#include "report/report.hh"
#include "service/journal.hh"
#include "service/protocol.hh"
#include "util/thread_pool.hh"
#include "workload/trace_store.hh"

namespace ghrp::service
{

/** Configuration of one daemon instance. */
struct ServerConfig
{
    std::string socketPath;   ///< unix-domain socket to listen on
    std::string journalDir;   ///< per-job journals + final reports
    std::string traceCacheDir;  ///< shared TraceStore root ("" = env)

    /** Default thread request of jobs submitted with jobs == 0; 0
     *  requests the whole budget. The scheduler clamps every request
     *  to the free budget at start (min 1), so this is a ceiling, not
     *  a reservation. */
    unsigned jobs = 0;

    /** Global simulation thread budget: the size of the one pool
     *  every concurrent job leases from. 0 = hardware concurrency. */
    unsigned totalThreads = 0;

    /** Jobs running concurrently (scheduler coordinator threads).
     *  0 = the resolved totalThreads; 1 reproduces the old serial
     *  daemon exactly. Coordinators only harvest futures, so they add
     *  no OS-thread pressure beyond the pool budget. */
    unsigned maxActiveJobs = 0;

    /** Queued-job bound; submits beyond it are rejected with a
     *  retry-after hint (the running job does not count). */
    std::size_t maxQueue = 8;
    /** Retry-after hint attached to queue-full rejections. */
    unsigned retryAfterSeconds = 5;

    FsyncPolicy fsync = FsyncPolicy::EveryRecord;

    /** Decoded traces kept hot across jobs (LRU); 0 disables. */
    std::size_t decodedCacheTraces = 32;

    /** Test hook: start with the scheduler paused so queue behaviour
     *  (backpressure, priorities) is deterministic; resumeWorker()
     *  releases it. */
    bool startPaused = false;
};

/** Lifecycle states of a job. */
enum class JobState : std::uint8_t
{
    Queued,
    Running,
    Done,
    Failed,
    Cancelled
};

/** Display name ("queued", "running", ...). */
const char *jobStateName(JobState state);

class ServiceServer
{
  public:
    explicit ServiceServer(ServerConfig config);
    ~ServiceServer();

    ServiceServer(const ServiceServer &) = delete;
    ServiceServer &operator=(const ServiceServer &) = delete;

    /**
     * Bind the socket, replay existing journals (re-enqueueing
     * unfinished jobs), create the shared simulation pool and start
     * the scheduler threads. Throws std::runtime_error on socket/
     * journal-directory failures.
     */
    void start();

    /**
     * Serve until requestStop(): accept clients, dispatch requests,
     * forward scheduler events to watchers. On exit every in-flight
     * job has drained its completed legs into its journal and the
     * scheduler has stopped.
     */
    void run();

    /**
     * Ask run() to return. Async-signal-safe (one byte to a self-
     * pipe); callable from signal handlers and other threads. The
     * in-flight job stops at the next leg boundary with its completed
     * legs journaled but no terminal record, so a restart resumes it.
     */
    void requestStop();

    /** Release a startPaused scheduler (test hook). */
    void resumeWorker();

    const ServerConfig &config() const { return cfg; }

    /** Journal path of @p job_id: <journalDir>/<job_id>.journal. */
    std::string journalPath(const std::string &job_id) const;
    /** Report path of @p job_id: <journalDir>/<job_id>.report.json. */
    std::string reportPath(const std::string &job_id) const;

  private:
    struct Job
    {
        std::string id;
        std::string experiment;
        core::SuiteOptions options;
        report::Json optionsJson = report::Json::object();
        std::int64_t priority = 0;
        double timeoutSeconds = 0.0;  ///< 0 = no timeout

        JobState state = JobState::Queued;
        std::string error;
        std::size_t completedLegs = 0;
        std::size_t totalLegs = 0;

        /** When the job entered the queue (submit or recovery); the
         *  enqueue-to-start wait histogram is measured from here. */
        std::chrono::steady_clock::time_point enqueuedAt{};

        /** Legs recovered from the journal on restart, keyed by
         *  (trace index, policy); injected into the runner's skipped
         *  slots before the report is built. */
        std::map<std::pair<std::size_t, frontend::PolicySpec>,
                 report::Leg>
            recoveredLegs;

        /** Threads leased from the global budget while running. */
        unsigned leasedThreads = 0;

        /** Newest flight-recorder record of the latest finished leg
         *  (protocol minor 3), attached to progress frames so `watch
         *  --phases` can render a live readout. Only set when the job
         *  runs with a non-zero phase window. */
        bool hasLatestPhase = false;
        report::Json latestPhase = report::Json::object();

        bool cancelRequested = false;
    };

    struct Connection
    {
        int fd = -1;
        FrameDecoder decoder;
        std::string outBuffer;
        std::string watchedJob;  ///< non-empty: streaming progress
        bool closeAfterFlush = false;
    };

    /** Worker -> network-thread notification. */
    struct Event
    {
        enum class Kind : std::uint8_t
        {
            Progress,
            StateChange
        };
        Kind kind = Kind::Progress;
        std::string job;
        std::size_t completed = 0;
        std::size_t total = 0;
        std::string leg;  ///< "trace / policy" label (Progress)
        /** Wall seconds since the job started running (Progress). */
        double elapsedSeconds = 0.0;
    };

    // --- network thread ---------------------------------------------
    void bindSocket();
    void acceptClient();
    void handleReadable(Connection &conn);
    void dispatch(Connection &conn, const report::Json &message);
    void cmdSubmit(Connection &conn, const report::Json &message);
    void cmdStatus(Connection &conn, const report::Json &message);
    void cmdWatch(Connection &conn, const report::Json &message);
    void cmdResult(Connection &conn, const report::Json &message);
    void cmdCancel(Connection &conn, const report::Json &message);
    void sendMessage(Connection &conn, const report::Json &message);
    void sendError(Connection &conn, const std::string &text);
    void flushOut(Connection &conn);
    void closeConnection(std::size_t index);
    void drainEvents();
    report::Json jobStatusMessage(const Job &job);

    // --- scheduler (coordinator threads) ----------------------------
    void workerMain();
    void executeJob(const std::string &job_id, unsigned lease);
    void postEvent(Event event);
    std::shared_ptr<const trace::DecodedTrace>
    cachedDecoded(const workload::TraceSpec &spec,
                  const core::SuiteOptions &options);

    // --- startup ----------------------------------------------------
    void recoverJournals();
    bool recoverOne(const std::string &job_id);

    ServerConfig cfg;

    int listenFd = -1;
    int stopPipe[2] = {-1, -1};   ///< requestStop -> poll wakeup
    int eventPipe[2] = {-1, -1};  ///< worker events -> poll wakeup
    std::vector<Connection> connections;
    bool stopping = false;  ///< network thread only
    /** Seen by the worker's cancellation hook from runner threads. */
    std::atomic<bool> stopRequested{false};

    /** Guards jobs, queue, counters, leases and scheduler pause
     *  state. */
    std::mutex jobsMutex;
    std::condition_variable workerCv;
    std::map<std::string, Job> jobs;
    /** Queued job ids; coordinators pop the best (priority, FIFO). */
    std::deque<std::string> queue;
    std::uint64_t nextJobNumber = 1;
    bool workerPaused = false;
    bool workerExit = false;

    /** When start() ran; drives the service.uptime_seconds gauge. */
    std::chrono::steady_clock::time_point startedAt{};

    /** Resolved budget/concurrency (start()); immutable afterwards. */
    unsigned totalThreads = 0;
    unsigned maxActiveJobs = 0;
    /** Threads currently leased (jobsMutex). Can transiently exceed
     *  totalThreads because every admitted job gets at least one —
     *  the pool still never runs more than totalThreads OS threads;
     *  excess leases only interleave in its queue. */
    unsigned leasedThreads = 0;
    unsigned activeJobs = 0;  ///< jobs in state Running (jobsMutex)

    /** The one pool all concurrent jobs lease simulation threads
     *  from; coordinators only block on futures. */
    std::unique_ptr<util::ThreadPool> simPool;
    std::vector<std::thread> workers;  ///< scheduler coordinators

    std::mutex eventsMutex;
    std::deque<Event> events;

    /** Shared across jobs: the warm-daemon fast path. */
    workload::TraceStore traceStore;
    std::mutex decodedMutex;
    struct DecodedEntry
    {
        std::uint64_t key;
        std::shared_ptr<const trace::DecodedTrace> trace;
    };
    std::list<DecodedEntry> decodedLru;  ///< front = most recent
};

} // namespace ghrp::service

#endif // GHRP_SERVICE_SERVER_HH

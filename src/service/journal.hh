/**
 * @file
 * Crash-safe append-only job journal for the sweep-serving daemon.
 *
 * One journal file per job. Each record is framed on disk as
 *
 *   [u32 LE payload length][u32 LE CRC-32 of payload][payload]
 *
 * where the payload is one compact JSON object. Records are written
 * with O_APPEND in a single full-write loop and (under the default
 * fsync policy) made durable with fdatasync before append() returns,
 * so a record either exists completely or not at all after a crash.
 *
 * readJournal() replays a file and stops at the first torn or corrupt
 * record (short header, short payload, CRC mismatch, unparsable
 * JSON): everything before it is the durable prefix, the tail is
 * reported but ignored. A daemon restarted after `kill -9` therefore
 * resumes from exactly the legs whose records completed.
 *
 * Record types written by the server (the journal itself is
 * type-agnostic):
 *   job  {job, experiment, options, priority, timeoutSeconds}
 *   leg  {traceIndex, policy, leg}          — one completed leg
 *   done {} / failed {error} / cancelled {} — terminal markers
 */

#ifndef GHRP_SERVICE_JOURNAL_HH
#define GHRP_SERVICE_JOURNAL_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "report/json.hh"

namespace ghrp::service
{

/** Thrown on journal I/O failures (open, write, fsync). */
struct JournalError : std::runtime_error
{
    explicit JournalError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Largest accepted record payload; larger means corruption. */
inline constexpr std::size_t kMaxRecordBytes = 64u * 1024 * 1024;

/** When appended records are forced to stable storage. */
enum class FsyncPolicy : std::uint8_t
{
    EveryRecord,  ///< fdatasync after each append (crash-safe default)
    Close,        ///< one fdatasync on close (batch jobs, fast disks)
    Never         ///< no explicit sync (tests, throwaway runs)
};

/** Parse "every" / "close" / "off"; throws JournalError otherwise. */
FsyncPolicy parseFsyncPolicy(const std::string &name);

/** Append-only record writer for one journal file. */
class Journal
{
  public:
    Journal() = default;
    ~Journal();

    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /** Open @p path for appending, creating it if needed. */
    void open(const std::string &path, FsyncPolicy policy);

    /** Frame, write and (policy-dependent) sync one record. */
    void append(const report::Json &record);

    /** Sync (policy Close) and close the file. Idempotent. */
    void close();

    bool isOpen() const { return fd >= 0; }

  private:
    int fd = -1;
    FsyncPolicy fsyncPolicy = FsyncPolicy::EveryRecord;
    std::string path;
};

/** Result of replaying a journal file. */
struct JournalScan
{
    std::vector<report::Json> records;  ///< the durable prefix
    std::uint64_t durableBytes = 0;     ///< file offset after last record
    bool truncatedTail = false;  ///< torn/corrupt bytes followed it
};

/**
 * Replay @p path. A missing file yields an empty scan; a torn or
 * corrupt tail sets truncatedTail and is excluded from records.
 */
JournalScan readJournal(const std::string &path);

/** CRC-32 (IEEE 802.3 polynomial, the zlib convention). */
std::uint32_t crc32(const void *data, std::size_t size);

} // namespace ghrp::service

#endif // GHRP_SERVICE_JOURNAL_HH

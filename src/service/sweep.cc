#include "service/sweep.hh"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <limits>
#include <optional>
#include <thread>

#include "service/client.hh"
#include "service/protocol.hh"
#include "util/logging.hh"

namespace ghrp::service
{

namespace
{

/** One request over a throwaway connection. nullopt means the daemon
 *  is unreachable or dropped the connection (treated as down for this
 *  round); an error reply propagates as ProtocolError. */
std::optional<report::Json>
requestOnce(const std::string &socket, const report::Json &message,
            double connect_timeout)
{
    ServiceClient client(socket);
    if (!client.connect(connect_timeout))
        return std::nullopt;
    client.send(message);
    std::optional<report::Json> reply = client.receive();
    if (!reply)
        return std::nullopt;
    if (checkMessage(*reply) == "error")
        throw ProtocolError(reply->at("error").asString());
    return reply;
}

/**
 * Live load of one daemon from its telemetry: (queued + running jobs)
 * weighted by the observed mean job wall time, so a daemon chewing on
 * minute-long sweeps scores heavier than one clearing small jobs at
 * the same queue depth. Negative means unreachable.
 */
double
daemonLoadScore(const std::string &socket, double connect_timeout)
{
    std::optional<report::Json> reply;
    try {
        reply = requestOnce(socket, makeMessage("metrics"),
                            connect_timeout);
    } catch (const ProtocolError &) {
        return -1.0;
    }
    if (!reply)
        return -1.0;

    double queued = 0.0;
    double active = 0.0;
    double mean_job_seconds = 1.0;
    if (const report::Json *m = reply->find("metrics")) {
        if (const report::Json *gauges = m->find("gauges")) {
            if (const report::Json *v =
                    gauges->find("service.queue_depth"))
                queued = v->asDouble();
            if (const report::Json *v =
                    gauges->find("service.active_jobs"))
                active = v->asDouble();
        }
        if (const report::Json *hists = m->find("histograms"))
            if (const report::Json *h =
                    hists->find("service.job_seconds")) {
                const double count =
                    static_cast<double>(h->at("count").asUint());
                if (count > 0)
                    mean_job_seconds = std::max(
                        h->at("sumSeconds").asDouble() / count, 0.05);
            }
    }
    return (queued + active) * mean_job_seconds;
}

/** One (cell, policy) unit of campaign work. */
struct Shard
{
    std::size_t cell = 0;
    frontend::PolicySpec policy = frontend::PolicyKind::Lru;
    core::SuiteOptions options;  ///< cell options with one policy
    std::string daemon;          ///< socket it currently runs on
    std::string jobId;
    unsigned attempts = 0;
    bool done = false;
    report::RunReport report;
    std::string label;  ///< "cell N / policy" for log lines
};

} // anonymous namespace

std::vector<std::string>
readDaemonsFile(const std::string &path)
{
    std::ifstream file(path);
    if (!file)
        throw SweepError("sweep: cannot read daemons file '" + path +
                         "'");
    std::vector<std::string> daemons;
    std::string line;
    while (std::getline(file, line)) {
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        const std::size_t begin = line.find_first_not_of(" \t\r");
        if (begin == std::string::npos)
            continue;
        const std::size_t end = line.find_last_not_of(" \t\r");
        daemons.push_back(line.substr(begin, end - begin + 1));
    }
    if (daemons.empty())
        throw SweepError("sweep: daemons file '" + path +
                         "' lists no sockets");
    return daemons;
}

SweepOutcome
runSweepCampaign(const SweepGrid &grid, const SweepOptions &options)
{
    using Clock = std::chrono::steady_clock;

    if (options.daemons.empty())
        throw SweepError("sweep: no daemons given");
    const std::vector<std::uint64_t> seeds =
        grid.seeds.empty() ? std::vector<std::uint64_t>{grid.base.baseSeed}
                           : grid.seeds;
    const std::vector<frontend::PolicySpec> policies =
        grid.policies.empty() ? grid.base.policies : grid.policies;
    if (policies.empty())
        throw SweepError("sweep: no policies in the grid");
    if (grid.base.numTraces == 0)
        throw SweepError("sweep: zero traces per cell");

    SweepOutcome outcome;
    for (std::uint64_t seed : seeds) {
        core::SuiteOptions cell = grid.base;
        cell.baseSeed = seed;
        cell.policies = policies;
        outcome.cellOptions.push_back(std::move(cell));
    }

    std::vector<Shard> shards;
    for (std::size_t c = 0; c < outcome.cellOptions.size(); ++c)
        for (const frontend::PolicySpec &policy : policies) {
            Shard shard;
            shard.cell = c;
            shard.policy = policy;
            shard.options = outcome.cellOptions[c];
            shard.options.policies = {policy};
            shard.label = "seed " + std::to_string(seeds[c]) + " / " +
                          frontend::policyName(policy);
            shards.push_back(std::move(shard));
        }
    outcome.shards = shards.size();

    // Locally tracked in-flight shards per daemon: keeps consecutive
    // submits from dog-piling one daemon between telemetry updates.
    std::map<std::string, unsigned> outstanding;
    for (const std::string &daemon : options.daemons)
        outstanding[daemon] = 0;

    // Submit one shard to the least-loaded live daemon, skipping
    // @p avoid (the daemon that just lost it) unless nothing else is
    // up. Returns whether any daemon accepted it.
    const auto submitShard = [&](Shard &shard,
                                 const std::string &avoid) -> bool {
        std::vector<std::pair<double, std::string>> ranked;
        for (const std::string &daemon : options.daemons) {
            const double score =
                daemonLoadScore(daemon, options.connectTimeoutSeconds);
            if (score < 0)
                continue;  // down this round
            ranked.emplace_back(score + outstanding[daemon],
                                daemon);
        }
        std::stable_sort(ranked.begin(), ranked.end(),
                         [](const auto &a, const auto &b) {
                             return a.first < b.first;
                         });
        if (ranked.size() > 1 && !avoid.empty())
            std::stable_partition(ranked.begin(), ranked.end(),
                                  [&avoid](const auto &entry) {
                                      return entry.second != avoid;
                                  });

        report::Json message = makeMessage("submit");
        message.set("experiment", grid.experiment);
        message.set("options",
                    report::suiteOptionsToJson(shard.options));

        for (const auto &[score, daemon] : ranked) {
            try {
                ServiceClient client(daemon);
                if (!client.connect(options.connectTimeoutSeconds))
                    continue;
                const report::Json reply = client.submitWithBackoff(
                    message, options.submitTimeoutSeconds);
                shard.daemon = daemon;
                shard.jobId = reply.at("job").asString();
                ++shard.attempts;
                ++outstanding[daemon];
                if (options.verbose)
                    inform("sweep: %s -> %s as %s", shard.label.c_str(),
                           daemon.c_str(), shard.jobId.c_str());
                return true;
            } catch (const ProtocolError &e) {
                warn("sweep: submit of %s to %s failed: %s",
                     shard.label.c_str(), daemon.c_str(), e.what());
            }
        }
        return false;
    };

    const auto resubmit = [&](Shard &shard, const char *why) {
        if (!shard.daemon.empty()) {
            auto it = outstanding.find(shard.daemon);
            if (it != outstanding.end() && it->second > 0)
                --it->second;
        }
        if (shard.attempts >= options.maxAttempts)
            throw SweepError("sweep: shard " + shard.label + " " + why +
                             " after " +
                             std::to_string(shard.attempts) +
                             " attempt(s); giving up");
        warn("sweep: shard %s %s (attempt %u); resubmitting",
             shard.label.c_str(), why, shard.attempts);
        const std::string lost_on = shard.daemon;
        shard.daemon.clear();
        shard.jobId.clear();
        if (!submitShard(shard, lost_on))
            throw SweepError("sweep: no live daemon accepted shard " +
                             shard.label);
        ++outcome.resubmits;
    };

    for (Shard &shard : shards)
        if (!submitShard(shard, ""))
            throw SweepError("sweep: no live daemon accepted shard " +
                             shard.label);
    inform("sweep: %zu shard(s) submitted across %zu daemon(s)",
           shards.size(), options.daemons.size());
    if (options.onAllSubmitted)
        options.onAllSubmitted();

    const Clock::time_point campaign_deadline =
        options.campaignTimeoutSeconds > 0
            ? Clock::now() +
                  std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(
                          options.campaignTimeoutSeconds))
            : Clock::time_point::max();

    std::size_t done = 0;
    while (done < shards.size()) {
        if (Clock::now() > campaign_deadline)
            throw SweepError("sweep: campaign timed out with " +
                             std::to_string(shards.size() - done) +
                             " shard(s) in flight");

        for (Shard &shard : shards) {
            if (shard.done)
                continue;

            std::optional<report::Json> status;
            try {
                report::Json message = makeMessage("status");
                message.set("job", shard.jobId);
                status = requestOnce(shard.daemon, message,
                                     options.connectTimeoutSeconds);
            } catch (const ProtocolError &e) {
                // e.g. "unknown job": the daemon restarted without the
                // shard's journal. The shard is gone; run it again.
                resubmit(shard, "was lost");
                continue;
            }
            if (!status) {
                resubmit(shard, "lost its daemon");
                continue;
            }

            const std::string state = status->at("state").asString();
            if (state == "queued" || state == "running")
                continue;
            if (state != "done") {
                std::string why = "ended " + state;
                if (const report::Json *e = status->find("error"))
                    why += " (" + e->asString() + ")";
                resubmit(shard, why.c_str());
                continue;
            }

            report::Json message = makeMessage("result");
            message.set("job", shard.jobId);
            std::optional<report::Json> result;
            try {
                result = requestOnce(shard.daemon, message,
                                     options.connectTimeoutSeconds);
            } catch (const ProtocolError &e) {
                resubmit(shard, e.what());
                continue;
            }
            if (!result) {
                resubmit(shard, "lost its daemon");
                continue;
            }
            shard.report =
                report::RunReport::fromJson(result->at("report"));
            shard.done = true;
            ++done;
            auto it = outstanding.find(shard.daemon);
            if (it != outstanding.end() && it->second > 0)
                --it->second;
            if (options.verbose)
                inform("sweep: %s done (%zu/%zu)", shard.label.c_str(),
                       done, shards.size());
        }

        if (done < shards.size())
            std::this_thread::sleep_for(
                std::chrono::duration<double>(options.pollSeconds));
    }

    for (std::size_t c = 0; c < outcome.cellOptions.size(); ++c) {
        std::vector<report::RunReport> cell_shards;
        for (const Shard &shard : shards)
            if (shard.cell == c)
                cell_shards.push_back(shard.report);
        try {
            outcome.cells.push_back(report::mergeShardReports(
                grid.experiment, outcome.cellOptions[c], cell_shards));
        } catch (const report::ReportError &e) {
            throw SweepError(std::string("sweep: merge failed: ") +
                             e.what());
        }
    }
    return outcome;
}

} // namespace ghrp::service

/**
 * @file
 * Wire protocol of the sweep-serving daemon: length-prefixed frames
 * carrying compact JSON messages over a unix-domain socket.
 *
 * Framing: each frame is a 4-byte big-endian payload length followed
 * by exactly that many bytes of JSON (one message). The length guards
 * against runaway peers via kMaxFrameBytes.
 *
 * Every message is a JSON object with an envelope — "proto" (schema
 * name), "version" {major, minor} and "type" — plus type-specific
 * members. Compatibility follows the run-report rule: receivers
 * ignore unknown members (minor additions are free) and reject
 * messages whose major version is above their own.
 *
 * Message types (client -> server unless noted):
 *   ping                      -> pong
 *   submit {experiment, options, priority?, timeoutSeconds?}
 *                             -> submitted {job}
 *                              | rejected {reason, retryAfterSeconds?}
 *   status {job}              -> jobStatus {job, state, experiment,
 *                                           completedLegs, totalLegs,
 *                                           leasedThreads?, error?}
 *   watch {job}               -> progress {job, completed, total, leg,
 *                                          elapsedSeconds}*
 *                                then a terminal jobStatus
 *   result {job}              -> result {job, report}  (run-report JSON)
 *   cancel {job}              -> jobStatus
 *   metrics                   -> metrics {metrics}  (telemetry snapshot
 *                                JSON, see report/telemetry_json.hh)
 *   shutdown                  -> shuttingDown, then the server drains
 *   error {error}             (server -> client, any failed request)
 *
 * Minor 1 added the metrics request and the elapsedSeconds member of
 * progress events; both are invisible to minor-0 peers. Minor 2 added
 * the leasedThreads member of jobStatus (the running job's share of
 * the daemon's --total-threads budget), equally invisible to older
 * peers. Minor 3 added the optional phase member of progress events —
 * the latest finished leg's newest flight-recorder record (serialized
 * like a report phase record, plus trace/policy/window) when the job
 * runs with a non-zero phase window — which `ghrp-client watch
 * --phases` renders as a rolling readout; older peers ignore it.
 */

#ifndef GHRP_SERVICE_PROTOCOL_HH
#define GHRP_SERVICE_PROTOCOL_HH

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>

#include "report/json.hh"

namespace ghrp::service
{

/** Thrown on malformed frames or incompatible message envelopes. */
struct ProtocolError : std::runtime_error
{
    explicit ProtocolError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Protocol identity; bump major only on incompatible changes. */
inline constexpr char kProtocolName[] = "ghrp-service";
inline constexpr int kProtocolMajor = 1;
inline constexpr int kProtocolMinor = 3;

/** Upper bound on one frame's payload (a full run report fits with
 *  room to spare; anything larger is a corrupt or hostile peer). */
inline constexpr std::size_t kMaxFrameBytes = 64u * 1024 * 1024;

/** Serialize @p message as one frame (header + compact JSON). */
std::string encodeFrame(const report::Json &message);

/**
 * Incremental frame decoder: feed() arbitrary byte chunks as they
 * arrive from the socket, then drain complete messages with next().
 */
class FrameDecoder
{
  public:
    /** Append @p size raw bytes from the stream. */
    void feed(const char *data, std::size_t size);

    /**
     * The next complete message, or nullopt when more bytes are
     * needed. Throws ProtocolError on an oversized frame and JsonError
     * on malformed payload text.
     */
    std::optional<report::Json> next();

    /** Bytes buffered but not yet consumed by next(). */
    std::size_t pending() const { return buffer.size(); }

  private:
    std::string buffer;
};

/** A fresh message object with the standard envelope and @p type. */
report::Json makeMessage(const std::string &type);

/**
 * Validate @p message's envelope and return its type. Throws
 * ProtocolError when the protocol name is wrong or the major version
 * is above kProtocolMajor.
 */
std::string checkMessage(const report::Json &message);

} // namespace ghrp::service

#endif // GHRP_SERVICE_PROTOCOL_HH

/**
 * @file
 * Multi-daemon sweep campaigns: expand a parameter grid (seeds x
 * policies) into per-policy shards, load-balance the shards across a
 * pool of ghrp-served daemons using their live telemetry as the load
 * signal, poll the fleet until every shard lands, retry shards lost to
 * daemon crashes or failures, and merge each cell's shard reports back
 * into the document an in-process runSuite would have produced
 * (report::mergeShardReports, bit-identical per leg).
 *
 * Sharding is per (cell, policy): policy legs share no state, so a
 * cell's shards can run on different machines and still merge exactly.
 * A shard that dies with its daemon is simply resubmitted elsewhere —
 * the daemon's own journal handles intra-job resume, the campaign
 * handles whole-shard loss.
 */

#ifndef GHRP_SERVICE_SWEEP_HH
#define GHRP_SERVICE_SWEEP_HH

#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/runner.hh"
#include "report/report.hh"

namespace ghrp::service
{

/** Thrown when a campaign cannot complete (no live daemons, a shard
 *  out of attempts, an unmergeable report). */
struct SweepError : std::runtime_error
{
    explicit SweepError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** The parameter grid of one campaign: cells = seeds, shards =
 *  cells x policies. */
struct SweepGrid
{
    std::string experiment = "sweep";
    /** Cell template; its baseSeed/policies members are overridden per
     *  cell and shard. */
    core::SuiteOptions base;
    /** One cell per seed; empty means one cell at base.baseSeed. */
    std::vector<std::uint64_t> seeds;
    /** Policies of every cell; empty means base.policies. */
    std::vector<frontend::PolicySpec> policies;
};

/** Campaign knobs. */
struct SweepOptions
{
    /** Daemon socket paths; shards go to the least-loaded live one. */
    std::vector<std::string> daemons;
    /** Total submit attempts per shard before the campaign fails. */
    unsigned maxAttempts = 3;
    /** Fleet poll interval while shards are in flight. */
    double pollSeconds = 0.2;
    /** Per-daemon connect timeout; an unreachable daemon is treated as
     *  down for that round, and its shards as lost. */
    double connectTimeoutSeconds = 2.0;
    /** Deadline for one submit while a daemon's queue is full. */
    double submitTimeoutSeconds = 120.0;
    /** Wall-clock bound on the whole campaign; 0 = none. */
    double campaignTimeoutSeconds = 0.0;
    bool verbose = false;
    /** Test hook: invoked once after every shard's initial submit has
     *  been acknowledged, before the first poll — the deterministic
     *  point to kill a daemon when exercising shard retry. */
    std::function<void()> onAllSubmitted;
};

/** What one campaign did. */
struct SweepOutcome
{
    /** One merged report per cell, in seeds order. */
    std::vector<report::RunReport> cells;
    /** The cell options each report was merged against. */
    std::vector<core::SuiteOptions> cellOptions;
    std::size_t shards = 0;     ///< shards submitted at least once
    std::size_t resubmits = 0;  ///< shards resubmitted after loss
};

/**
 * Parse a daemon discovery file: one socket path per line, blank lines
 * and '#' comments ignored. Throws SweepError when unreadable or
 * empty.
 */
std::vector<std::string> readDaemonsFile(const std::string &path);

/**
 * Run one campaign to completion: expand, submit, poll, retry, merge.
 * Progress is reported through util/logging (inform/warn). Throws
 * SweepError when the campaign cannot complete.
 */
SweepOutcome runSweepCampaign(const SweepGrid &grid,
                              const SweepOptions &options);

} // namespace ghrp::service

#endif // GHRP_SERVICE_SWEEP_HH

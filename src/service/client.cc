#include "service/client.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace ghrp::service
{

ServiceClient::ServiceClient(std::string socket_path)
    : path(std::move(socket_path))
{
}

ServiceClient::~ServiceClient()
{
    close();
}

void
ServiceClient::close()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
    decoder = FrameDecoder();
}

bool
ServiceClient::connect(double timeout_seconds)
{
    using Clock = std::chrono::steady_clock;
    close();

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        throw ProtocolError("socket path too long: " + path);
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

    const Clock::time_point deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(timeout_seconds));
    auto backoff = std::chrono::milliseconds(50);
    while (true) {
        const int sock = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (sock < 0)
            throw ProtocolError(std::string("socket failed: ") +
                                std::strerror(errno));
        if (::connect(sock, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0) {
            fd = sock;
            return true;
        }
        ::close(sock);
        if (Clock::now() + backoff > deadline)
            return false;
        std::this_thread::sleep_for(backoff);
        backoff = std::min(backoff * 2, std::chrono::milliseconds(1000));
    }
}

void
ServiceClient::send(const report::Json &message)
{
    if (fd < 0)
        throw ProtocolError("send on a disconnected client");
    const std::string frame = encodeFrame(message);
    std::size_t sent = 0;
    while (sent < frame.size()) {
        const ssize_t n = ::send(fd, frame.data() + sent,
                                 frame.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            close();
            throw ProtocolError(std::string("send failed: ") +
                                std::strerror(errno));
        }
        sent += static_cast<std::size_t>(n);
    }
}

std::optional<report::Json>
ServiceClient::receive()
{
    if (fd < 0)
        return std::nullopt;
    while (true) {
        if (std::optional<report::Json> message = decoder.next())
            return message;
        char buf[64 * 1024];
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n > 0) {
            decoder.feed(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        close();  // EOF or hard error
        return std::nullopt;
    }
}

report::Json
ServiceClient::request(const report::Json &message)
{
    send(message);
    std::optional<report::Json> reply = receive();
    if (!reply)
        throw ProtocolError("connection closed before a reply arrived");
    if (checkMessage(*reply) == "error")
        throw ProtocolError(reply->at("error").asString());
    return *std::move(reply);
}

report::Json
ServiceClient::submitWithBackoff(const report::Json &submit_message,
                                 double deadline_seconds,
                                 unsigned *rejections)
{
    using Clock = std::chrono::steady_clock;
    const Clock::time_point deadline =
        Clock::now() +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(deadline_seconds));
    if (rejections)
        *rejections = 0;

    while (true) {
        report::Json reply = request(submit_message);
        if (checkMessage(reply) != "rejected")
            return reply;
        if (rejections)
            ++*rejections;

        double wait_seconds = 1.0;
        if (const report::Json *hint = reply.find("retryAfterSeconds"))
            wait_seconds = hint->asDouble();
        wait_seconds = std::clamp(wait_seconds, 0.05, 30.0);
        if (Clock::now() +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(wait_seconds)) >
            deadline)
            throw ProtocolError(
                "queue still full after " +
                std::to_string(deadline_seconds) + "s: " +
                reply.at("reason").asString());
        std::this_thread::sleep_for(
            std::chrono::duration<double>(wait_seconds));
    }
}

} // namespace ghrp::service

/**
 * @file
 * Blocking unix-domain-socket client for the sweep-serving daemon:
 * connect with exponential backoff, exchange framed protocol messages
 * (service/protocol), and reconnect-capable helpers for the watch
 * stream. Used by tools/ghrp-client and the service tests.
 */

#ifndef GHRP_SERVICE_CLIENT_HH
#define GHRP_SERVICE_CLIENT_HH

#include <optional>
#include <string>

#include "service/protocol.hh"

namespace ghrp::service
{

class ServiceClient
{
  public:
    explicit ServiceClient(std::string socket_path);
    ~ServiceClient();

    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;

    /**
     * Connect, retrying with exponential backoff (50 ms doubling to
     * 1 s) until connected or @p timeout_seconds elapsed. Returns
     * whether the connection is up. Reconnecting an open client
     * closes the old socket first.
     */
    bool connect(double timeout_seconds = 10.0);

    void close();
    bool connected() const { return fd >= 0; }
    const std::string &socketPath() const { return path; }

    /** Send one message; throws ProtocolError on a broken socket. */
    void send(const report::Json &message);

    /**
     * Block for the next message. nullopt means the server closed the
     * connection (e.g. it was killed); callers that must survive that
     * reconnect() and re-issue their request.
     */
    std::optional<report::Json> receive();

    /**
     * send() + receive() one reply; throws ProtocolError when the
     * connection drops before a reply arrives or when the reply is an
     * error message (the error text is rethrown).
     */
    report::Json request(const report::Json &message);

    /**
     * Submit with queue-full backoff: request() @p submit_message and,
     * on a "rejected" reply, sleep for the server's retryAfterSeconds
     * hint (default 1 s when absent, capped at 30 s) and retry until
     * accepted or @p deadline_seconds has elapsed since the first
     * attempt. Returns the "submitted" reply; throws ProtocolError
     * when the deadline passes while the queue is still full. If
     * @p rejections is non-null it receives the number of rejected
     * attempts (for tests and telemetry).
     */
    report::Json submitWithBackoff(const report::Json &submit_message,
                                   double deadline_seconds = 60.0,
                                   unsigned *rejections = nullptr);

  private:
    std::string path;
    int fd = -1;
    FrameDecoder decoder;
};

} // namespace ghrp::service

#endif // GHRP_SERVICE_CLIENT_HH

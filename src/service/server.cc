#include "service/server.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "report/report.hh"
#include "report/telemetry_json.hh"
#include "telemetry/metrics.hh"
#include "util/logging.hh"

namespace ghrp::service
{

namespace
{

namespace fs = std::filesystem;

/** Daemon telemetry: queue pressure and per-job latency. */
struct ServiceMetrics
{
    telemetry::Counter &submitted;
    telemetry::Counter &rejected;
    telemetry::Counter &done;
    telemetry::Counter &failed;
    telemetry::Counter &cancelled;
    telemetry::Gauge &queueDepth;
    telemetry::Gauge &activeJobs;
    telemetry::Gauge &leasedThreads;
    telemetry::Gauge &totalThreads;
    telemetry::Gauge &uptimeSeconds;
    telemetry::Histogram &jobWaitSeconds;
    telemetry::Histogram &jobSeconds;
};

ServiceMetrics &
serviceMetrics()
{
    static ServiceMetrics m{
        telemetry::metrics().counter("service.jobs_submitted"),
        telemetry::metrics().counter("service.jobs_rejected"),
        telemetry::metrics().counter("service.jobs_done"),
        telemetry::metrics().counter("service.jobs_failed"),
        telemetry::metrics().counter("service.jobs_cancelled"),
        telemetry::metrics().gauge("service.queue_depth"),
        telemetry::metrics().gauge("service.active_jobs"),
        telemetry::metrics().gauge("service.leased_threads"),
        telemetry::metrics().gauge("service.total_threads"),
        telemetry::metrics().gauge("service.uptime_seconds"),
        telemetry::metrics().histogram("service.job_wait_seconds"),
        telemetry::metrics().histogram("service.job_seconds"),
    };
    return m;
}

/** Pending-write bound per client; a slower/stuck watcher beyond it
 *  is dropped instead of growing the daemon without bound. */
constexpr std::size_t kMaxOutBuffer = 64u * 1024 * 1024;

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/** Reverse of frontend::policyName that throws instead of fatal()ing
 *  (journals may be damaged; the daemon must not die on them). Covers
 *  static policy names and duel:<A>,<B>[,...] specs alike. */
frontend::PolicySpec
policySpecFromName(const std::string &name)
{
    frontend::PolicySpec spec;
    if (!frontend::tryParsePolicySpec(name, spec))
        throw report::ReportError("unknown policy '" + name + "'");
    return spec;
}

std::uint64_t
mixKey(std::uint64_t h, std::uint64_t v)
{
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
}

} // anonymous namespace

const char *
jobStateName(JobState state)
{
    switch (state) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Done: return "done";
    case JobState::Failed: return "failed";
    case JobState::Cancelled: return "cancelled";
    }
    return "unknown";
}

ServiceServer::ServiceServer(ServerConfig config)
    : cfg(std::move(config)), traceStore(cfg.traceCacheDir)
{
}

ServiceServer::~ServiceServer()
{
    if (!workers.empty()) {
        stopRequested.store(true, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock(jobsMutex);
            workerExit = true;
        }
        workerCv.notify_all();
        for (std::thread &thread : workers)
            if (thread.joinable())
                thread.join();
        workers.clear();
    }
    for (Connection &conn : connections)
        if (conn.fd >= 0)
            ::close(conn.fd);
    if (listenFd >= 0) {
        ::close(listenFd);
        ::unlink(cfg.socketPath.c_str());
    }
    for (int fd : {stopPipe[0], stopPipe[1], eventPipe[0], eventPipe[1]})
        if (fd >= 0)
            ::close(fd);
}

std::string
ServiceServer::journalPath(const std::string &job_id) const
{
    return cfg.journalDir + "/" + job_id + ".journal";
}

std::string
ServiceServer::reportPath(const std::string &job_id) const
{
    return cfg.journalDir + "/" + job_id + ".report.json";
}

void
ServiceServer::start()
{
    if (cfg.journalDir.empty())
        throw std::runtime_error("service: journal directory required");
    fs::create_directories(cfg.journalDir);

    if (::pipe(stopPipe) != 0 || ::pipe(eventPipe) != 0)
        throw std::runtime_error(std::string("service: pipe failed: ") +
                                 std::strerror(errno));
    setNonBlocking(stopPipe[0]);
    setNonBlocking(eventPipe[0]);

    bindSocket();
    recoverJournals();

    totalThreads = cfg.totalThreads != 0 ? cfg.totalThreads
                                         : util::ThreadPool::hardwareJobs();
    maxActiveJobs =
        cfg.maxActiveJobs != 0 ? cfg.maxActiveJobs : totalThreads;
    simPool = std::make_unique<util::ThreadPool>(totalThreads);
    serviceMetrics().totalThreads.set(static_cast<double>(totalThreads));
    startedAt = std::chrono::steady_clock::now();
    serviceMetrics().uptimeSeconds.set(0.0);

    workerPaused = cfg.startPaused;
    workers.reserve(maxActiveJobs);
    for (unsigned i = 0; i < maxActiveJobs; ++i)
        workers.emplace_back([this] { workerMain(); });
    inform("ghrp-served: listening on %s (journal %s, queue %zu, "
           "%u threads / %u active jobs)",
           cfg.socketPath.c_str(), cfg.journalDir.c_str(), cfg.maxQueue,
           totalThreads, maxActiveJobs);
}

void
ServiceServer::bindSocket()
{
    if (cfg.socketPath.empty())
        throw std::runtime_error("service: socket path required");

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (cfg.socketPath.size() >= sizeof(addr.sun_path))
        throw std::runtime_error("service: socket path too long: " +
                                 cfg.socketPath);
    std::strncpy(addr.sun_path, cfg.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);

    listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd < 0)
        throw std::runtime_error(std::string("service: socket failed: ") +
                                 std::strerror(errno));
    // A stale socket file from a dead daemon would fail the bind; the
    // journal directory, not the socket, is the source of truth, so
    // replacing it is always safe.
    ::unlink(cfg.socketPath.c_str());
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        throw std::runtime_error("service: bind to '" + cfg.socketPath +
                                 "' failed: " + std::strerror(errno));
    if (::listen(listenFd, 16) != 0)
        throw std::runtime_error(std::string("service: listen failed: ") +
                                 std::strerror(errno));
    setNonBlocking(listenFd);
}

void
ServiceServer::requestStop()
{
    // Async-signal-safe: a single write, no locks, no allocation.
    const char byte = 's';
    [[maybe_unused]] ssize_t n = ::write(stopPipe[1], &byte, 1);
}

void
ServiceServer::resumeWorker()
{
    {
        std::lock_guard<std::mutex> lock(jobsMutex);
        workerPaused = false;
    }
    workerCv.notify_all();
}

void
ServiceServer::run()
{
    while (!stopping) {
        // Connections accepted during this iteration are not in `fds`;
        // they are polled from the next iteration on, so the indexed
        // loop below must only walk the first `polled` connections.
        const std::size_t polled = connections.size();
        std::vector<pollfd> fds;
        fds.push_back({stopPipe[0], POLLIN, 0});
        fds.push_back({eventPipe[0], POLLIN, 0});
        fds.push_back({listenFd, POLLIN, 0});
        for (const Connection &conn : connections) {
            short events = POLLIN;
            if (!conn.outBuffer.empty())
                events |= POLLOUT;
            fds.push_back({conn.fd, events, 0});
        }

        if (::poll(fds.data(), fds.size(), -1) < 0) {
            if (errno == EINTR)
                continue;
            warn("service: poll failed: %s", std::strerror(errno));
            break;
        }

        if (fds[0].revents & POLLIN) {
            char buf[64];
            while (::read(stopPipe[0], buf, sizeof(buf)) > 0) {}
            stopping = true;
            stopRequested.store(true, std::memory_order_relaxed);
        }
        if (fds[1].revents & POLLIN) {
            char buf[256];
            while (::read(eventPipe[0], buf, sizeof(buf)) > 0) {}
            drainEvents();
        }
        if (fds[2].revents & POLLIN)
            acceptClient();

        for (std::size_t i = 0; i < polled; ++i) {
            const short revents = fds[3 + i].revents;
            Connection &conn = connections[i];
            if (conn.fd < 0)
                continue;
            if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
                closeConnection(i);
                continue;
            }
            if (revents & POLLIN)
                handleReadable(conn);
            if (conn.fd >= 0 && (revents & POLLOUT))
                flushOut(conn);
        }
        connections.erase(
            std::remove_if(connections.begin(), connections.end(),
                           [](const Connection &c) { return c.fd < 0; }),
            connections.end());
    }

    // Drain: stop every in-flight job at its next leg boundary; the
    // completed legs are already journaled, so unfinished jobs resume
    // on the next start() over the same journal directory.
    stopRequested.store(true, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(jobsMutex);
        workerExit = true;
    }
    workerCv.notify_all();
    for (std::thread &thread : workers)
        if (thread.joinable())
            thread.join();
    workers.clear();
    inform("ghrp-served: stopped");
}

void
ServiceServer::acceptClient()
{
    while (true) {
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0)
            return;  // EAGAIN or a transient error: back to poll
        setNonBlocking(fd);
        Connection conn;
        conn.fd = fd;
        connections.push_back(std::move(conn));
    }
}

void
ServiceServer::handleReadable(Connection &conn)
{
    char buf[64 * 1024];
    while (true) {
        const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
        if (n > 0) {
            conn.decoder.feed(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        if (n < 0 && errno == EINTR)
            continue;
        // EOF or hard error: drop the connection.
        ::close(conn.fd);
        conn.fd = -1;
        return;
    }

    try {
        while (true) {
            std::optional<report::Json> message = conn.decoder.next();
            if (!message)
                break;
            dispatch(conn, *message);
            if (conn.fd < 0)
                return;
        }
    } catch (const std::exception &e) {
        // Unparseable or oversized frame: the stream is unframed from
        // here on, so answer once and drop the peer.
        sendError(conn, e.what());
        conn.closeAfterFlush = true;
    }
}

void
ServiceServer::dispatch(Connection &conn, const report::Json &message)
{
    std::string type;
    try {
        type = checkMessage(message);
    } catch (const ProtocolError &e) {
        sendError(conn, e.what());
        return;
    }

    try {
        if (type == "ping") {
            sendMessage(conn, makeMessage("pong"));
        } else if (type == "submit") {
            cmdSubmit(conn, message);
        } else if (type == "status") {
            cmdStatus(conn, message);
        } else if (type == "watch") {
            cmdWatch(conn, message);
        } else if (type == "result") {
            cmdResult(conn, message);
        } else if (type == "cancel") {
            cmdCancel(conn, message);
        } else if (type == "metrics") {
            serviceMetrics().uptimeSeconds.set(
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - startedAt)
                    .count());
            report::Json reply = makeMessage("metrics");
            reply.set("metrics",
                      report::telemetryToJson(
                          telemetry::Registry::global().snapshot()));
            sendMessage(conn, reply);
        } else if (type == "shutdown") {
            sendMessage(conn, makeMessage("shuttingDown"));
            requestStop();
        } else {
            sendError(conn, "unknown request type '" + type + "'");
        }
    } catch (const std::exception &e) {
        sendError(conn, e.what());
    }
}

void
ServiceServer::cmdSubmit(Connection &conn, const report::Json &message)
{
    const std::string experiment = message.at("experiment").asString();
    if (experiment.empty())
        throw ProtocolError("submit: experiment must be non-empty");
    core::SuiteOptions options =
        report::suiteOptionsFromJson(message.at("options"));
    if (options.numTraces == 0 || options.policies.empty())
        throw ProtocolError("submit: empty sweep");
    if (options.jobs == 0)
        options.jobs = cfg.jobs;

    std::int64_t priority = 0;
    if (const report::Json *v = message.find("priority"))
        priority = v->asInt();
    double timeout_seconds = 0.0;
    if (const report::Json *v = message.find("timeoutSeconds"))
        timeout_seconds = v->asDouble();

    std::lock_guard<std::mutex> lock(jobsMutex);
    if (queue.size() >= cfg.maxQueue) {
        serviceMetrics().rejected.add();
        report::Json reply = makeMessage("rejected");
        reply.set("reason", "queue full (" +
                                std::to_string(queue.size()) + "/" +
                                std::to_string(cfg.maxQueue) + " queued)");
        reply.set("retryAfterSeconds", cfg.retryAfterSeconds);
        sendMessage(conn, reply);
        return;
    }

    char id_buf[32];
    std::snprintf(id_buf, sizeof(id_buf), "job-%06llu",
                  static_cast<unsigned long long>(nextJobNumber));

    Job job;
    job.id = id_buf;
    job.experiment = experiment;
    job.options = options;
    job.optionsJson = report::suiteOptionsToJson(options);
    job.priority = priority;
    job.timeoutSeconds = timeout_seconds;
    job.totalLegs = static_cast<std::size_t>(options.numTraces) *
                    options.policies.size();

    // Journal the job before acknowledging: an accepted job survives
    // any crash from here on.
    report::Json record = report::Json::object();
    record.set("type", "job");
    record.set("job", job.id);
    record.set("experiment", job.experiment);
    record.set("options", job.optionsJson);
    record.set("priority", job.priority);
    record.set("timeoutSeconds", job.timeoutSeconds);
    Journal journal;
    journal.open(journalPath(job.id), cfg.fsync);
    journal.append(record);
    journal.close();

    ++nextJobNumber;
    job.enqueuedAt = std::chrono::steady_clock::now();
    queue.push_back(job.id);
    jobs.emplace(job.id, std::move(job));
    serviceMetrics().submitted.add();
    serviceMetrics().queueDepth.set(static_cast<double>(queue.size()));
    workerCv.notify_all();

    report::Json reply = makeMessage("submitted");
    reply.set("job", std::string(id_buf));
    sendMessage(conn, reply);
}

report::Json
ServiceServer::jobStatusMessage(const Job &job)
{
    report::Json reply = makeMessage("jobStatus");
    reply.set("job", job.id);
    reply.set("state", jobStateName(job.state));
    reply.set("experiment", job.experiment);
    reply.set("completedLegs", job.completedLegs);
    reply.set("totalLegs", job.totalLegs);
    if (job.state == JobState::Running)
        reply.set("leasedThreads", job.leasedThreads);
    if (!job.error.empty())
        reply.set("error", job.error);
    return reply;
}

void
ServiceServer::cmdStatus(Connection &conn, const report::Json &message)
{
    const std::string id = message.at("job").asString();
    std::lock_guard<std::mutex> lock(jobsMutex);
    const auto it = jobs.find(id);
    if (it == jobs.end())
        throw ProtocolError("unknown job '" + id + "'");
    sendMessage(conn, jobStatusMessage(it->second));
}

void
ServiceServer::cmdWatch(Connection &conn, const report::Json &message)
{
    const std::string id = message.at("job").asString();
    std::lock_guard<std::mutex> lock(jobsMutex);
    const auto it = jobs.find(id);
    if (it == jobs.end())
        throw ProtocolError("unknown job '" + id + "'");
    sendMessage(conn, jobStatusMessage(it->second));
    const JobState state = it->second.state;
    if (state == JobState::Queued || state == JobState::Running)
        conn.watchedJob = id;
}

void
ServiceServer::cmdResult(Connection &conn, const report::Json &message)
{
    const std::string id = message.at("job").asString();
    {
        std::lock_guard<std::mutex> lock(jobsMutex);
        const auto it = jobs.find(id);
        if (it == jobs.end())
            throw ProtocolError("unknown job '" + id + "'");
        if (it->second.state != JobState::Done)
            throw ProtocolError("job '" + id + "' is " +
                                jobStateName(it->second.state) +
                                (it->second.error.empty()
                                     ? std::string()
                                     : ": " + it->second.error));
    }

    std::ifstream file(reportPath(id));
    if (!file)
        throw ProtocolError("report for job '" + id + "' is missing");
    std::ostringstream buffer;
    buffer << file.rdbuf();

    report::Json reply = makeMessage("result");
    reply.set("job", id);
    reply.set("report", report::Json::parse(buffer.str()));
    sendMessage(conn, reply);
}

void
ServiceServer::cmdCancel(Connection &conn, const report::Json &message)
{
    const std::string id = message.at("job").asString();
    std::lock_guard<std::mutex> lock(jobsMutex);
    const auto it = jobs.find(id);
    if (it == jobs.end())
        throw ProtocolError("unknown job '" + id + "'");
    Job &job = it->second;
    if (job.state == JobState::Queued) {
        queue.erase(std::remove(queue.begin(), queue.end(), id),
                    queue.end());
        serviceMetrics().queueDepth.set(
            static_cast<double>(queue.size()));
        report::Json record = report::Json::object();
        record.set("type", "cancelled");
        Journal journal;
        journal.open(journalPath(id), cfg.fsync);
        journal.append(record);
        journal.close();
        job.state = JobState::Cancelled;
        serviceMetrics().cancelled.add();
    } else if (job.state == JobState::Running) {
        job.cancelRequested = true;  // sealed by the worker
    }
    sendMessage(conn, jobStatusMessage(job));
}

void
ServiceServer::sendMessage(Connection &conn, const report::Json &message)
{
    if (conn.fd < 0)
        return;
    conn.outBuffer += encodeFrame(message);
    if (conn.outBuffer.size() > kMaxOutBuffer) {
        warn("service: dropping client with %zu buffered bytes",
             conn.outBuffer.size());
        ::close(conn.fd);
        conn.fd = -1;
        return;
    }
    flushOut(conn);
}

void
ServiceServer::sendError(Connection &conn, const std::string &text)
{
    report::Json reply = makeMessage("error");
    reply.set("error", text);
    sendMessage(conn, reply);
}

void
ServiceServer::flushOut(Connection &conn)
{
    while (conn.fd >= 0 && !conn.outBuffer.empty()) {
        const ssize_t n = ::send(conn.fd, conn.outBuffer.data(),
                                 conn.outBuffer.size(), MSG_NOSIGNAL);
        if (n > 0) {
            conn.outBuffer.erase(0, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return;  // poll will report POLLOUT later
        if (n < 0 && errno == EINTR)
            continue;
        ::close(conn.fd);
        conn.fd = -1;
        return;
    }
    if (conn.fd >= 0 && conn.outBuffer.empty() && conn.closeAfterFlush) {
        ::close(conn.fd);
        conn.fd = -1;
    }
}

void
ServiceServer::closeConnection(std::size_t index)
{
    Connection &conn = connections[index];
    if (conn.fd >= 0) {
        ::close(conn.fd);
        conn.fd = -1;
    }
}

void
ServiceServer::drainEvents()
{
    std::deque<Event> pending;
    {
        std::lock_guard<std::mutex> lock(eventsMutex);
        pending.swap(events);
    }
    for (const Event &event : pending) {
        for (Connection &conn : connections) {
            if (conn.fd < 0 || conn.watchedJob != event.job)
                continue;
            if (event.kind == Event::Kind::Progress) {
                report::Json msg = makeMessage("progress");
                msg.set("job", event.job);
                msg.set("completed", event.completed);
                msg.set("total", event.total);
                msg.set("leg", event.leg);
                msg.set("elapsedSeconds", event.elapsedSeconds);
                {
                    // Latest flight-recorder record, when the job runs
                    // with phase sampling (protocol minor 3).
                    std::lock_guard<std::mutex> lock(jobsMutex);
                    const auto it = jobs.find(event.job);
                    if (it != jobs.end() && it->second.hasLatestPhase)
                        msg.set("phase", it->second.latestPhase);
                }
                sendMessage(conn, msg);
            } else {
                std::lock_guard<std::mutex> lock(jobsMutex);
                const auto it = jobs.find(event.job);
                if (it == jobs.end())
                    continue;
                sendMessage(conn, jobStatusMessage(it->second));
                const JobState state = it->second.state;
                if (state != JobState::Queued &&
                    state != JobState::Running)
                    conn.watchedJob.clear();
            }
        }
    }
}

void
ServiceServer::postEvent(Event event)
{
    {
        std::lock_guard<std::mutex> lock(eventsMutex);
        events.push_back(std::move(event));
    }
    const char byte = 'e';
    [[maybe_unused]] ssize_t n = ::write(eventPipe[1], &byte, 1);
}

void
ServiceServer::workerMain()
{
    while (true) {
        std::string job_id;
        unsigned lease = 0;
        {
            std::unique_lock<std::mutex> lock(jobsMutex);
            workerCv.wait(lock, [this] {
                return workerExit || (!workerPaused && !queue.empty());
            });
            if (workerExit)
                return;
            // Highest priority first; FIFO within a priority level.
            auto best = queue.begin();
            for (auto it = std::next(best); it != queue.end(); ++it)
                if (jobs.at(*it).priority > jobs.at(*best).priority)
                    best = it;
            job_id = *best;
            queue.erase(best);
            Job &job = jobs.at(job_id);
            job.state = JobState::Running;

            // Lease threads from the global budget: the request (the
            // job's own jobs value, already defaulted at submit) is
            // clamped to what is free, but never below one — every
            // admitted job makes progress, and a lease beyond the
            // budget only interleaves in the shared pool's queue.
            unsigned request = job.options.jobs != 0 ? job.options.jobs
                                                     : totalThreads;
            request = std::min(request, totalThreads);
            const unsigned free =
                totalThreads > leasedThreads ? totalThreads - leasedThreads
                                             : 0;
            lease = std::max(1u, std::min(request, std::max(free, 1u)));
            job.leasedThreads = lease;
            leasedThreads += lease;
            ++activeJobs;
            serviceMetrics().queueDepth.set(
                static_cast<double>(queue.size()));
            serviceMetrics().activeJobs.set(
                static_cast<double>(activeJobs));
            serviceMetrics().leasedThreads.set(
                static_cast<double>(leasedThreads));
            serviceMetrics().jobWaitSeconds.observeSeconds(
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - job.enqueuedAt)
                    .count());
        }
        postEvent({Event::Kind::StateChange, job_id, 0, 0, {}});
        executeJob(job_id, lease);
        {
            std::lock_guard<std::mutex> lock(jobsMutex);
            Job &job = jobs.at(job_id);
            leasedThreads -= job.leasedThreads;
            job.leasedThreads = 0;
            --activeJobs;
            serviceMetrics().activeJobs.set(
                static_cast<double>(activeJobs));
            serviceMetrics().leasedThreads.set(
                static_cast<double>(leasedThreads));
        }
        // Freed budget may unblock a coordinator waiting on the queue.
        workerCv.notify_all();
        if (stopRequested.load(std::memory_order_relaxed))
            return;
    }
}

void
ServiceServer::executeJob(const std::string &job_id, unsigned lease)
{
    using Clock = std::chrono::steady_clock;

    core::SuiteOptions options;
    std::string experiment;
    double timeout_seconds = 0.0;
    std::map<std::pair<std::size_t, frontend::PolicySpec>, report::Leg>
        recovered;
    {
        std::lock_guard<std::mutex> lock(jobsMutex);
        const Job &job = jobs.at(job_id);
        options = job.options;
        experiment = job.experiment;
        timeout_seconds = job.timeoutSeconds;
        recovered = job.recoveredLegs;
    }

    const Clock::time_point run_start = Clock::now();
    const Clock::time_point deadline =
        timeout_seconds > 0
            ? run_start + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(
                                  timeout_seconds))
            : Clock::time_point::max();

    const auto seal = [&](const char *type, const std::string &error,
                          JobState state) {
        serviceMetrics().jobSeconds.observeSeconds(
            std::chrono::duration<double>(Clock::now() - run_start)
                .count());
        if (state == JobState::Done)
            serviceMetrics().done.add();
        else if (state == JobState::Failed)
            serviceMetrics().failed.add();
        else if (state == JobState::Cancelled)
            serviceMetrics().cancelled.add();
        try {
            report::Json record = report::Json::object();
            record.set("type", type);
            if (!error.empty())
                record.set("error", error);
            Journal journal;
            journal.open(journalPath(job_id), cfg.fsync);
            journal.append(record);
            journal.close();
        } catch (const JournalError &e) {
            warn("service: sealing %s failed: %s", job_id.c_str(),
                 e.what());
        }
        {
            std::lock_guard<std::mutex> lock(jobsMutex);
            Job &job = jobs.at(job_id);
            job.state = state;
            job.error = error;
        }
        postEvent({Event::Kind::StateChange, job_id, 0, 0, {}});
    };

    try {
        Journal journal;
        journal.open(journalPath(job_id), cfg.fsync);

        core::RunHooks hooks;
        hooks.skipLeg = [&recovered](std::size_t trace,
                                     const frontend::PolicySpec &policy) {
            return recovered.count({trace, policy}) != 0;
        };
        hooks.cancelled = [this, &job_id, deadline] {
            if (stopRequested.load(std::memory_order_relaxed))
                return true;
            if (Clock::now() > deadline)
                return true;
            std::lock_guard<std::mutex> lock(jobsMutex);
            return jobs.at(job_id).cancelRequested;
        };
        hooks.onLegDone = [&](std::size_t trace,
                              const frontend::PolicySpec &policy,
                              const frontend::FrontendResult &result,
                              double seconds) {
            report::Json record = report::Json::object();
            record.set("type", "leg");
            record.set("traceIndex", trace);
            record.set("policy", frontend::policyName(policy));
            record.set(
                "leg",
                report::legToJson(report::makeLeg(
                    result.traceName, frontend::policyName(policy),
                    result, seconds)));
            journal.append(record);

            // Stash the leg's newest flight-recorder record for the
            // watchers' progress frames (protocol minor 3).
            if (result.hasPhases && !result.phases.records.empty()) {
                report::Json phase = report::phaseRecordJson(
                    result.phases.records.back());
                phase.set("trace", result.traceName);
                phase.set("policy", frontend::policyName(policy));
                phase.set("phaseWindow", result.phases.window);
                phase.set("stride", result.phases.stride);
                phase.set("records", result.phases.records.size());
                std::lock_guard<std::mutex> lock(jobsMutex);
                Job &job = jobs.at(job_id);
                job.hasLatestPhase = true;
                job.latestPhase = std::move(phase);
            }
        };
        hooks.acquireDecoded =
            [this](const workload::TraceSpec &spec,
                   const core::SuiteOptions &run_options) {
                return cachedDecoded(spec, run_options);
            };
        // All jobs share the scheduler's pool; the lease caps how many
        // of this job's tasks are in flight at once.
        hooks.pool = simPool.get();
        options.jobs = lease;

        const core::ProgressFn progress =
            [this, &job_id, run_start](std::size_t done,
                                       std::size_t total,
                                       const std::string &leg) {
                {
                    std::lock_guard<std::mutex> lock(jobsMutex);
                    jobs.at(job_id).completedLegs = done;
                }
                const double elapsed =
                    std::chrono::duration<double>(Clock::now() -
                                                  run_start)
                        .count();
                postEvent({Event::Kind::Progress, job_id, done, total,
                           leg, elapsed});
            };

        core::SuiteResults results =
            core::runSuite(options, progress, hooks);
        journal.close();

        if (stopRequested.load(std::memory_order_relaxed))
            return;  // drained for shutdown; the journal resumes it

        bool cancel_requested = false;
        {
            std::lock_guard<std::mutex> lock(jobsMutex);
            cancel_requested = jobs.at(job_id).cancelRequested;
        }
        if (cancel_requested) {
            seal("cancelled", "cancelled by client",
                 JobState::Cancelled);
            return;
        }
        if (Clock::now() > deadline) {
            seal("failed",
                 "wall-clock timeout after " +
                     std::to_string(timeout_seconds) + "s",
                 JobState::Failed);
            return;
        }

        // Inject the journaled legs into their skipped slots so the
        // rebuilt report aggregates exactly what an uninterrupted run
        // would have.
        for (const auto &[key, leg] : recovered) {
            const auto [trace_index, policy] = key;
            results.results.at(policy).at(trace_index) =
                report::toFrontendResult(leg);
            results.legSeconds.at(policy).at(trace_index) = leg.seconds;
        }

        const report::RunReport run_report =
            report::buildSuiteReport(experiment, options, results);
        const std::string path = reportPath(job_id);
        run_report.write(path + ".tmp");
        fs::rename(path + ".tmp", path);

        seal("done", "", JobState::Done);
        inform("ghrp-served: %s done (%s, %zu legs, %.1fs)",
               job_id.c_str(), experiment.c_str(), results.totalLegs(),
               results.wallSeconds);
    } catch (const std::exception &e) {
        seal("failed", e.what(), JobState::Failed);
    }
}

std::shared_ptr<const trace::DecodedTrace>
ServiceServer::cachedDecoded(const workload::TraceSpec &spec,
                             const core::SuiteOptions &options)
{
    std::uint64_t key = workload::TraceStore::contentKey(
        spec, options.instructionOverride);
    key = mixKey(key, options.base.icache.blockBytes);
    key = mixKey(key, options.base.instBytes);
    key = mixKey(key, static_cast<std::uint64_t>(options.base.direction));

    if (cfg.decodedCacheTraces > 0) {
        std::lock_guard<std::mutex> lock(decodedMutex);
        for (auto it = decodedLru.begin(); it != decodedLru.end(); ++it) {
            if (it->key == key) {
                decodedLru.splice(decodedLru.begin(), decodedLru, it);
                return decodedLru.front().trace;
            }
        }
    }

    // Build outside the lock; a concurrent build of the same trace is
    // wasted work, not a correctness problem (the content is pure).
    auto dec = std::make_shared<trace::DecodedTrace>(
        traceStore.acquireDecoded(spec, options.instructionOverride,
                                  options.base.icache.blockBytes,
                                  options.base.instBytes));
    frontend::resolveDirectionStream(*dec, options.base.direction);
    std::shared_ptr<const trace::DecodedTrace> shared = std::move(dec);

    if (cfg.decodedCacheTraces > 0) {
        std::lock_guard<std::mutex> lock(decodedMutex);
        for (auto it = decodedLru.begin(); it != decodedLru.end(); ++it)
            if (it->key == key) {
                decodedLru.splice(decodedLru.begin(), decodedLru, it);
                return decodedLru.front().trace;
            }
        decodedLru.push_front({key, shared});
        while (decodedLru.size() > cfg.decodedCacheTraces)
            decodedLru.pop_back();
    }
    return shared;
}

void
ServiceServer::recoverJournals()
{
    std::vector<std::string> ids;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(cfg.journalDir)) {
        if (!entry.is_regular_file())
            continue;
        const fs::path &path = entry.path();
        if (path.extension() != ".journal")
            continue;
        ids.push_back(path.stem().string());
    }
    std::sort(ids.begin(), ids.end());

    std::vector<std::string> resumed;
    for (const std::string &id : ids)
        if (recoverOne(id))
            resumed.push_back(id);
    if (!resumed.empty()) {
        // One warn-level line so interrupted work is visible in any
        // log level an operator is likely to run at.
        std::string joined;
        for (const std::string &id : resumed) {
            if (!joined.empty())
                joined += ", ";
            joined += id;
        }
        warn("ghrp-served: resuming %zu interrupted job(s) from "
             "journals: %s",
             resumed.size(), joined.c_str());
    } else if (!ids.empty()) {
        inform("ghrp-served: recovered %zu journal(s), none needed "
               "resuming",
               ids.size());
    }
}

bool
ServiceServer::recoverOne(const std::string &job_id)
{
    const JournalScan scan = readJournal(journalPath(job_id));
    if (scan.truncatedTail)
        warn("service: journal of %s has a torn tail; resuming from "
             "the last durable record",
             job_id.c_str());
    if (scan.records.empty()) {
        warn("service: journal of %s has no durable records; ignoring",
             job_id.c_str());
        return false;
    }

    Job job;
    try {
        const report::Json &head = scan.records.front();
        if (head.at("type").asString() != "job")
            throw report::ReportError("first record is not a job record");
        job.id = head.at("job").asString();
        job.experiment = head.at("experiment").asString();
        job.optionsJson = head.at("options");
        job.options = report::suiteOptionsFromJson(job.optionsJson);
        job.priority = head.at("priority").asInt();
        job.timeoutSeconds = head.at("timeoutSeconds").asDouble();
    } catch (const std::exception &e) {
        warn("service: journal of %s is unusable (%s); ignoring",
             job_id.c_str(), e.what());
        return false;
    }
    if (job.id != job_id) {
        warn("service: journal %s names job %s; ignoring",
             job_id.c_str(), job.id.c_str());
        return false;
    }
    job.totalLegs = static_cast<std::size_t>(job.options.numTraces) *
                    job.options.policies.size();

    bool terminal = false;
    for (std::size_t i = 1; i < scan.records.size(); ++i) {
        const report::Json &record = scan.records[i];
        try {
            const std::string type = record.at("type").asString();
            if (type == "leg") {
                const auto trace_index = static_cast<std::size_t>(
                    record.at("traceIndex").asUint());
                const frontend::PolicySpec policy = policySpecFromName(
                    record.at("policy").asString());
                job.recoveredLegs[{trace_index, policy}] =
                    report::legFromJson(record.at("leg"));
            } else if (type == "done") {
                job.state = JobState::Done;
                terminal = true;
            } else if (type == "failed") {
                job.state = JobState::Failed;
                if (const report::Json *v = record.find("error"))
                    job.error = v->asString();
                terminal = true;
            } else if (type == "cancelled") {
                job.state = JobState::Cancelled;
                job.error = "cancelled by client";
                terminal = true;
            }
        } catch (const std::exception &e) {
            warn("service: bad record %zu in journal of %s (%s); "
                 "stopping replay there",
                 i, job_id.c_str(), e.what());
            break;
        }
    }
    job.completedLegs =
        terminal && job.state == JobState::Done
            ? job.totalLegs
            : job.recoveredLegs.size();

    // Track the numeric suffix so new submissions never collide.
    const std::size_t dash = job_id.rfind('-');
    if (dash != std::string::npos) {
        const std::uint64_t number =
            std::strtoull(job_id.c_str() + dash + 1, nullptr, 10);
        nextJobNumber = std::max(nextJobNumber, number + 1);
    }

    const bool resume = !terminal;
    std::lock_guard<std::mutex> lock(jobsMutex);
    if (resume) {
        job.state = JobState::Queued;
        job.enqueuedAt = std::chrono::steady_clock::now();
        queue.push_back(job.id);
        serviceMetrics().queueDepth.set(
            static_cast<double>(queue.size()));
    }
    jobs.emplace(job_id, std::move(job));
    return resume;
}

} // namespace ghrp::service

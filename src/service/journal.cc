#include "service/journal.hh"

#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "telemetry/metrics.hh"
#include "telemetry/span.hh"

namespace ghrp::service
{

namespace
{

/** Journal telemetry: record volume and fdatasync latency. */
struct JournalMetrics
{
    telemetry::Counter &records;
    telemetry::Counter &bytes;
    telemetry::Histogram &fsyncSeconds;
};

JournalMetrics &
journalMetrics()
{
    static JournalMetrics m{
        telemetry::metrics().counter("service.journal_records"),
        telemetry::metrics().counter("service.journal_bytes"),
        telemetry::metrics().histogram(
            "service.journal_fsync_seconds"),
    };
    return m;
}

void
putU32(std::string &out, std::uint32_t value)
{
    out.push_back(static_cast<char>(value & 0xff));
    out.push_back(static_cast<char>((value >> 8) & 0xff));
    out.push_back(static_cast<char>((value >> 16) & 0xff));
    out.push_back(static_cast<char>((value >> 24) & 0xff));
}

std::uint32_t
getU32(const char *data)
{
    const auto byte = [data](int i) {
        return static_cast<std::uint32_t>(
            static_cast<unsigned char>(data[i]));
    };
    return byte(0) | (byte(1) << 8) | (byte(2) << 16) | (byte(3) << 24);
}

} // anonymous namespace

std::uint32_t
crc32(const void *data, std::size_t size)
{
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int bit = 0; bit < 8; ++bit)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();

    std::uint32_t crc = 0xffffffffu;
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i)
        crc = table[(crc ^ bytes[i]) & 0xff] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

FsyncPolicy
parseFsyncPolicy(const std::string &name)
{
    if (name == "every")
        return FsyncPolicy::EveryRecord;
    if (name == "close")
        return FsyncPolicy::Close;
    if (name == "off")
        return FsyncPolicy::Never;
    throw JournalError("unknown fsync policy '" + name +
                       "' (expected every|close|off)");
}

Journal::~Journal()
{
    try {
        close();
    } catch (const JournalError &) {
        // Destructors must not throw; close() failures on teardown are
        // reported by the explicit close() call sites that care.
    }
}

void
Journal::open(const std::string &journal_path, FsyncPolicy policy)
{
    close();
    fd = ::open(journal_path.c_str(), O_WRONLY | O_CREAT | O_APPEND,
                0644);
    if (fd < 0)
        throw JournalError("cannot open journal '" + journal_path +
                           "': " + std::strerror(errno));
    fsyncPolicy = policy;
    path = journal_path;
}

void
Journal::append(const report::Json &record)
{
    if (fd < 0)
        throw JournalError("append to a closed journal");

    const std::string payload = record.dump(0);
    if (payload.size() > kMaxRecordBytes)
        throw JournalError("journal record of " +
                           std::to_string(payload.size()) +
                           " bytes exceeds the record maximum");

    std::string frame;
    frame.reserve(8 + payload.size());
    putU32(frame, static_cast<std::uint32_t>(payload.size()));
    putU32(frame, crc32(payload.data(), payload.size()));
    frame += payload;

    // Full-write loop: O_APPEND makes each write() an atomic append,
    // and short writes (signals, quotas) are continued until the frame
    // is complete or the disk says no.
    std::size_t written = 0;
    while (written < frame.size()) {
        const ssize_t n = ::write(fd, frame.data() + written,
                                  frame.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw JournalError("write to journal '" + path +
                               "' failed: " + std::strerror(errno));
        }
        written += static_cast<std::size_t>(n);
    }

    journalMetrics().records.add();
    journalMetrics().bytes.add(frame.size());

    if (fsyncPolicy == FsyncPolicy::EveryRecord) {
        const std::uint64_t start = telemetry::nowNanos();
        const int rc = ::fdatasync(fd);
        journalMetrics().fsyncSeconds.observeNanos(
            telemetry::nowNanos() - start);
        if (rc != 0)
            throw JournalError("fdatasync of journal '" + path +
                               "' failed: " + std::strerror(errno));
    }
}

void
Journal::close()
{
    if (fd < 0)
        return;
    const int closing = fd;
    fd = -1;
    if (fsyncPolicy == FsyncPolicy::Close && ::fdatasync(closing) != 0) {
        ::close(closing);
        throw JournalError("fdatasync of journal '" + path +
                           "' failed: " + std::strerror(errno));
    }
    if (::close(closing) != 0)
        throw JournalError("close of journal '" + path +
                           "' failed: " + std::strerror(errno));
}

JournalScan
readJournal(const std::string &path)
{
    JournalScan scan;
    std::ifstream file(path, std::ios::binary);
    if (!file)
        return scan;
    std::ostringstream buffer;
    buffer << file.rdbuf();
    const std::string bytes = buffer.str();

    std::size_t offset = 0;
    while (offset + 8 <= bytes.size()) {
        const std::uint32_t length = getU32(bytes.data() + offset);
        const std::uint32_t crc = getU32(bytes.data() + offset + 4);
        if (length > kMaxRecordBytes ||
            offset + 8 + length > bytes.size())
            break;  // torn or corrupt tail
        const char *payload = bytes.data() + offset + 8;
        if (crc32(payload, length) != crc)
            break;
        report::Json record;
        try {
            record = report::Json::parse(std::string(payload, length));
        } catch (const report::JsonError &) {
            break;
        }
        scan.records.push_back(std::move(record));
        offset += 8 + length;
    }
    scan.durableBytes = offset;
    scan.truncatedTail = offset < bytes.size();
    return scan;
}

} // namespace ghrp::service

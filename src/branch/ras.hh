/**
 * @file
 * Return address stack: predicts return targets so returns need not
 * occupy BTB entries (configurable in the front-end).
 */

#ifndef GHRP_BRANCH_RAS_HH
#define GHRP_BRANCH_RAS_HH

#include <cstdint>
#include <vector>

#include "util/bit_ops.hh"

namespace ghrp::branch
{

/** Fixed-depth circular return address stack. */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(std::uint32_t depth = 32)
        : entries(depth, 0)
    {
    }

    /** Push a return address (on a call). */
    void
    push(Addr return_pc)
    {
        top = (top + 1) % entries.size();
        entries[top] = return_pc;
        if (occupancy < entries.size())
            ++occupancy;
    }

    /**
     * Pop the predicted return target. Returns 0 when empty (forces a
     * misprediction, as real hardware would after overflow).
     */
    Addr
    pop()
    {
        if (occupancy == 0)
            return 0;
        const Addr value = entries[top];
        top = (top + entries.size() - 1) % entries.size();
        --occupancy;
        return value;
    }

    std::uint32_t depth() const
    {
        return static_cast<std::uint32_t>(entries.size());
    }

    std::uint32_t size() const { return occupancy; }
    bool empty() const { return occupancy == 0; }

  private:
    std::vector<Addr> entries;
    std::size_t top = 0;
    std::uint32_t occupancy = 0;
};

} // namespace ghrp::branch

#endif // GHRP_BRANCH_RAS_HH

/**
 * @file
 * Branch target buffer: a set-associative cache of branch targets with
 * pluggable replacement, modeled after the 4K-entry Mongoose BTB the
 * paper evaluates. Only taken branches access (and allocate into) the
 * BTB, so never-taken branches never displace useful entries and
 * seldom-taken entries age toward LRU (paper Section III-E).
 */

#ifndef GHRP_BRANCH_BTB_HH
#define GHRP_BRANCH_BTB_HH

#include <memory>
#include <optional>

#include "cache/cache.hh"

namespace ghrp::branch
{

/** Outcome of one taken-branch BTB access. */
struct BtbResult
{
    bool hit = false;           ///< entry present
    bool targetMatched = false; ///< ... and its target was correct
    bool bypassed = false;      ///< allocation vetoed by the policy
};

/** Set-associative branch target buffer. */
class Btb
{
  public:
    /**
     * @param config geometry from CacheConfig::btb().
     * @param policy replacement policy (owned).
     */
    Btb(const cache::CacheConfig &config,
        std::unique_ptr<cache::ReplacementPolicy> policy)
        : model(config, std::move(policy))
    {
    }

    /**
     * Access for a taken branch at @p pc with resolved @p target:
     * a hit refreshes recency and updates the stored target; a miss
     * allocates (unless the policy bypasses).
     */
    BtbResult
    accessTaken(Addr pc, Addr target)
    {
        BtbResult result;
        Addr previous = 0;
        const cache::AccessOutcome outcome =
            model.accessExchange(pc, pc, target, previous);
        result.hit = outcome.hit;
        result.targetMatched = outcome.hit && previous == target;
        result.bypassed = outcome.bypassed;
        return result;
    }

    /**
     * Predict the target of the branch at @p pc without modifying any
     * state; nullopt on a BTB miss.
     */
    std::optional<Addr>
    predictTarget(Addr pc) const
    {
        if (auto way = model.probe(pc))
            return model.payloadAt(pc, *way);
        return std::nullopt;
    }

    const stats::AccessStats &accessStats() const
    {
        return model.accessStats();
    }

    void resetStats() { model.resetStats(); }

    /** Underlying cache model (for trackers and GHRP coupling). */
    cache::CacheModel<Addr> &cacheModel() { return model; }
    const cache::CacheModel<Addr> &cacheModel() const { return model; }

  private:
    cache::CacheModel<Addr> model;
};

} // namespace ghrp::branch

#endif // GHRP_BRANCH_BTB_HH

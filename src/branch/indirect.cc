#include "branch/indirect.hh"

#include "util/logging.hh"

namespace ghrp::branch
{

IndirectPredictor::IndirectPredictor(const IndirectConfig &config)
    : cfg(config), table(cfg.entries)
{
    GHRP_ASSERT(isPowerOf2(cfg.entries));
    GHRP_ASSERT(cfg.tagBits >= 4 && cfg.tagBits <= 16);
}

std::uint32_t
IndirectPredictor::indexOf(Addr pc) const
{
    const std::uint64_t h =
        ((pc >> 2) ^ (static_cast<std::uint64_t>(hist) << 3)) *
        0x9E3779B97F4A7C15ull;
    return static_cast<std::uint32_t>(h >> (64 - floorLog2(cfg.entries)));
}

std::uint16_t
IndirectPredictor::tagOf(Addr pc) const
{
    const std::uint64_t h =
        ((pc >> 2) + hist) * 0xC2B2AE3D27D4EB4Full;
    return static_cast<std::uint16_t>(
        (h >> (64 - cfg.tagBits)) & mask(cfg.tagBits));
}

std::optional<Addr>
IndirectPredictor::predict(Addr pc) const
{
    const Entry &entry = table[indexOf(pc)];
    if (entry.valid && entry.tag == tagOf(pc))
        return entry.target;
    return std::nullopt;
}

void
IndirectPredictor::update(Addr pc, Addr target)
{
    Entry &entry = table[indexOf(pc)];
    const std::uint16_t tag = tagOf(pc);
    const std::uint8_t conf_max =
        static_cast<std::uint8_t>((1u << cfg.confBits) - 1);

    if (entry.valid && entry.tag == tag) {
        if (entry.target == target) {
            if (entry.confidence < conf_max)
                ++entry.confidence;
        } else if (entry.confidence > 0) {
            --entry.confidence;
        } else {
            entry.target = target;
        }
    } else if (!entry.valid || entry.confidence == 0) {
        entry.valid = true;
        entry.tag = tag;
        entry.target = target;
        entry.confidence = 0;
    } else {
        // Tag mismatch against a confident resident entry: age it.
        --entry.confidence;
    }

    // Fold the resolved target into the path history.
    hist = static_cast<std::uint32_t>(
        ((hist << 4) ^ (target >> 2)) & mask(cfg.historyBits));
}

std::uint64_t
IndirectPredictor::storageBits() const
{
    return static_cast<std::uint64_t>(cfg.entries) *
           (1 + cfg.tagBits + 64 + cfg.confBits);
}

} // namespace ghrp::branch

/**
 * @file
 * Indirect branch target predictor — the paper's stated future work
 * ("we will explore how our techniques interact with high-performance
 * indirect branch prediction"). A tagged, path-history-indexed target
 * cache in the ITTAGE spirit, small enough to be a realistic front-end
 * structure: the index hashes the branch PC with a history of recent
 * indirect targets, entries carry partial tags and 2-bit confidence.
 *
 * Without it, indirect targets come from the BTB's last-seen target
 * (monomorphic prediction); the predictor recovers the polymorphic
 * cases whose target correlates with recent control flow.
 */

#ifndef GHRP_BRANCH_INDIRECT_HH
#define GHRP_BRANCH_INDIRECT_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "util/bit_ops.hh"

namespace ghrp::branch
{

/** Configuration of the indirect target predictor. */
struct IndirectConfig
{
    std::uint32_t entries = 2048;  ///< table entries (power of two)
    unsigned tagBits = 10;         ///< partial tag width
    unsigned historyBits = 16;     ///< target-history register width
    unsigned confBits = 2;         ///< replacement confidence width
};

/** Tagged path-history-indexed indirect target predictor. */
class IndirectPredictor
{
  public:
    explicit IndirectPredictor(const IndirectConfig &config =
                                   IndirectConfig{});

    /**
     * Predict the target of the indirect branch at @p pc; nullopt when
     * the table has no (tag-matching) entry.
     */
    std::optional<Addr> predict(Addr pc) const;

    /**
     * Train with the resolved @p target and update the target history.
     * Call once per executed indirect branch, after predict().
     */
    void update(Addr pc, Addr target);

    /** Current target-history register (exposed for tests). */
    std::uint32_t history() const { return hist; }

    /** Storage in bits (entries x (tag + target + confidence)). */
    std::uint64_t storageBits() const;

  private:
    struct Entry
    {
        bool valid = false;
        std::uint16_t tag = 0;
        Addr target = 0;
        std::uint8_t confidence = 0;
    };

    std::uint32_t indexOf(Addr pc) const;
    std::uint16_t tagOf(Addr pc) const;

    IndirectConfig cfg;
    std::uint32_t hist = 0;
    std::vector<Entry> table;
};

} // namespace ghrp::branch

#endif // GHRP_BRANCH_INDIRECT_HH

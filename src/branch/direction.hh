/**
 * @file
 * Conditional-branch direction predictors: the interface plus two
 * simple baselines (bimodal and gshare). The paper's predictor — the
 * hashed perceptron — lives in perceptron.hh.
 */

#ifndef GHRP_BRANCH_DIRECTION_HH
#define GHRP_BRANCH_DIRECTION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/bit_ops.hh"
#include "util/logging.hh"

namespace ghrp::branch
{

/** Abstract conditional-branch direction predictor. */
class DirectionPredictor
{
  public:
    virtual ~DirectionPredictor() = default;

    /** Predict the direction of the conditional branch at @p pc. */
    virtual bool predict(Addr pc) = 0;

    /**
     * Train with the resolved outcome. Must be called exactly once per
     * predict(), in order.
     *
     * @param pc branch address.
     * @param taken actual direction.
     */
    virtual void update(Addr pc, bool taken) = 0;

    /** Display name. */
    virtual std::string name() const = 0;
};

/** Classic bimodal predictor: one 2-bit counter per PC hash. */
class BimodalPredictor : public DirectionPredictor
{
  public:
    explicit BimodalPredictor(std::uint32_t entries = 16384)
        : table(entries, 2), indexMask(entries - 1)
    {
        GHRP_ASSERT(isPowerOf2(entries));
    }

    bool
    predict(Addr pc) override
    {
        return table[index(pc)] >= 2;
    }

    void
    update(Addr pc, bool taken) override
    {
        std::uint8_t &counter = table[index(pc)];
        if (taken) {
            if (counter < 3)
                ++counter;
        } else {
            if (counter > 0)
                --counter;
        }
    }

    std::string name() const override { return "bimodal"; }

  private:
    std::size_t
    index(Addr pc) const
    {
        return static_cast<std::size_t>((pc >> 2) & indexMask);
    }

    std::vector<std::uint8_t> table;
    std::uint64_t indexMask;
};

/** gshare [McFarling]: 2-bit counters indexed by PC xor history. */
class GsharePredictor : public DirectionPredictor
{
  public:
    explicit GsharePredictor(std::uint32_t entries = 65536,
                             unsigned history_bits = 16)
        : table(entries, 2), indexMask(entries - 1),
          historyMask(mask(history_bits))
    {
        GHRP_ASSERT(isPowerOf2(entries));
    }

    bool
    predict(Addr pc) override
    {
        return table[index(pc)] >= 2;
    }

    void
    update(Addr pc, bool taken) override
    {
        std::uint8_t &counter = table[index(pc)];
        if (taken) {
            if (counter < 3)
                ++counter;
        } else {
            if (counter > 0)
                --counter;
        }
        history = ((history << 1) | (taken ? 1 : 0)) & historyMask;
    }

    std::string name() const override { return "gshare"; }

  private:
    std::size_t
    index(Addr pc) const
    {
        return static_cast<std::size_t>(((pc >> 2) ^ history) & indexMask);
    }

    std::vector<std::uint8_t> table;
    std::uint64_t indexMask;
    std::uint64_t historyMask;
    std::uint64_t history = 0;
};

} // namespace ghrp::branch

#endif // GHRP_BRANCH_DIRECTION_HH

#include "branch/perceptron.hh"

#include <cmath>

#include "util/logging.hh"

namespace ghrp::branch
{

HashedPerceptron::HashedPerceptron(const PerceptronConfig &config)
    : cfg(config)
{
    GHRP_ASSERT(isPowerOf2(cfg.tableEntries));
    GHRP_ASSERT(!cfg.historyLengths.empty());
    GHRP_ASSERT(cfg.weightBits >= 2 && cfg.weightBits <= 15);

    weightMax = (1 << (cfg.weightBits - 1)) - 1;
    weightMin = -(1 << (cfg.weightBits - 1));

    if (cfg.theta != 0) {
        trainTheta = cfg.theta;
    } else {
        // The classic perceptron threshold heuristic, theta = 1.93h +
        // 14, using the mean history length across tables.
        double total = 0;
        for (unsigned len : cfg.historyLengths)
            total += len;
        const double mean = total / cfg.historyLengths.size();
        trainTheta = static_cast<std::int32_t>(1.93 * mean + 14);
    }

    tables.assign(cfg.historyLengths.size(),
                  std::vector<std::int16_t>(cfg.tableEntries, 0));
    prevIndices.assign(cfg.historyLengths.size(), 0);

    // Hoist everything that only depends on the configuration out of
    // the per-prediction loop: this indexing runs twice per history
    // table for every conditional branch and dominated sweep profiles.
    foldBits = floorLog2(cfg.tableEntries) + 3;
    foldMask = mask(foldBits);
    lenMasks.reserve(cfg.historyLengths.size());
    tableMuls.reserve(cfg.historyLengths.size());
    for (std::size_t t = 0; t < cfg.historyLengths.size(); ++t) {
        lenMasks.push_back(mask(cfg.historyLengths[t]));
        tableMuls.push_back(0x2545F4914F6CDD1Dull + 2 * t);
    }
}

std::uint32_t
HashedPerceptron::tableIndex(std::size_t table, Addr pc) const
{
    std::uint64_t h = pc >> 2;
    if (lenMasks[table] != 0) {
        const std::uint64_t outcome_seg = outcomeHistory & lenMasks[table];
        const std::uint64_t path_seg = pathHistory & lenMasks[table];
        // Merge gshare-style outcome history and path history; a
        // per-table odd multiplier skews the tables against each other.
        // The outcome segment is masked to the table's history length,
        // so its fold stops there; the path segment is multiplied up to
        // full 64-bit population first and needs the whole sweep.
        h ^= foldHistory(outcome_seg, cfg.historyLengths[table]);
        h ^= foldHistory(path_seg * 0x9E3779B97F4A7C15ull, 64);
    }
    h *= tableMuls[table];
    return static_cast<std::uint32_t>((h >> 13) & (cfg.tableEntries - 1));
}

bool
HashedPerceptron::predict(Addr pc)
{
    std::int32_t sum = 0;
    for (std::size_t t = 0; t < tables.size(); ++t) {
        prevIndices[t] = tableIndex(t, pc);
        sum += tables[t][prevIndices[t]];
    }
    prevSum = sum;
    prevPrediction = sum >= 0;
    return prevPrediction;
}

void
HashedPerceptron::update(Addr pc, bool taken)
{
    const bool mispredicted = prevPrediction != taken;
    if (mispredicted || std::abs(prevSum) <= trainTheta) {
        for (std::size_t t = 0; t < tables.size(); ++t) {
            std::int16_t &weight = tables[t][prevIndices[t]];
            if (taken) {
                if (weight < weightMax)
                    ++weight;
            } else {
                if (weight > weightMin)
                    --weight;
            }
        }
    }

    outcomeHistory = (outcomeHistory << 1) | (taken ? 1 : 0);
    pathHistory = (pathHistory << 3) ^ ((pc >> 2) & 0x3F);
}

} // namespace ghrp::branch

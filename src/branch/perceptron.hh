/**
 * @file
 * Hashed perceptron direction predictor [Tarjan & Skadron, TACO 2005],
 * the predictor the paper uses: it merges gshare, path-based and
 * perceptron prediction by hashing segments of global outcome and path
 * history to index several weight tables whose outputs are summed.
 */

#ifndef GHRP_BRANCH_PERCEPTRON_HH
#define GHRP_BRANCH_PERCEPTRON_HH

#include <cstdint>
#include <vector>

#include "branch/direction.hh"
#include "util/bit_ops.hh"

namespace ghrp::branch
{

/** Configuration of the hashed perceptron. */
struct PerceptronConfig
{
    std::uint32_t tableEntries = 4096; ///< per weight table
    unsigned weightBits = 8;           ///< signed weight width
    /** Global-history segment length per table; 0 = bias (PC only). */
    std::vector<unsigned> historyLengths = {0, 3, 6, 12, 21, 34, 51, 64};
    /** Extra training margin; trained when |sum| <= theta. */
    std::int32_t theta = 0;  ///< 0 = derive from history lengths
};

/** Hashed perceptron predictor. */
class HashedPerceptron : public DirectionPredictor
{
  public:
    explicit HashedPerceptron(const PerceptronConfig &config =
                                  PerceptronConfig{});

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    std::string name() const override { return "hashed-perceptron"; }

    /** Last prediction's weight sum (exposed for tests/telemetry). */
    std::int32_t lastSum() const { return prevSum; }

    std::int32_t theta() const { return trainTheta; }

  private:
    std::uint32_t tableIndex(std::size_t table, Addr pc) const;

    /**
     * foldXor(v, foldBits) with the iteration count fixed at
     * construction: xor-folding zero high chunks is a no-op, so
     * running the loop over @p top_bits unconditionally gives the same
     * result as the early-exit reference while staying branch-free —
     * this runs twice per table per prediction. @p top_bits bounds the
     * population of @p v (64 for arbitrary values; the table's history
     * length for a masked outcome segment, which skips the all-zero
     * high chunks entirely).
     */
    std::uint64_t
    foldHistory(std::uint64_t v, unsigned top_bits) const
    {
        if (foldBits >= 64)
            return v;
        std::uint64_t folded = 0;
        for (unsigned s = 0; s < top_bits; s += foldBits)
            folded ^= (v >> s) & foldMask;
        return folded;
    }

    PerceptronConfig cfg;
    std::int32_t trainTheta;
    std::int32_t weightMin;
    std::int32_t weightMax;
    std::vector<std::vector<std::int16_t>> tables;

    // Hoisted per-table constants (all derivable from cfg; computed
    // once so the per-prediction loop is pure arithmetic).
    unsigned foldBits = 0;               ///< idx_bits + 3
    std::uint64_t foldMask = 0;          ///< mask(foldBits)
    std::vector<std::uint64_t> lenMasks; ///< mask(historyLengths[t])
    std::vector<std::uint64_t> tableMuls;

    std::uint64_t outcomeHistory = 0; ///< global direction history
    std::uint64_t pathHistory = 0;    ///< folded path of branch PCs

    // State carried from predict() to update().
    std::vector<std::uint32_t> prevIndices;
    std::int32_t prevSum = 0;
    bool prevPrediction = false;
};

} // namespace ghrp::branch

#endif // GHRP_BRANCH_PERCEPTRON_HH

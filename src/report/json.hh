/**
 * @file
 * Minimal self-contained JSON value type for the run-report subsystem:
 * an ordered-object document model with a deterministic writer and a
 * strict recursive-descent parser. No external dependencies.
 *
 * Determinism contract: object members keep insertion order, integers
 * serialize via decimal digits, and doubles serialize via the shortest
 * round-trip representation (std::to_chars), so dump(parse(dump(x)))
 * is byte-identical to dump(x) for any value this writer produced.
 */

#ifndef GHRP_REPORT_JSON_HH
#define GHRP_REPORT_JSON_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace ghrp::report
{

/** Thrown on malformed JSON text or type-mismatched access. */
struct JsonError : std::runtime_error
{
    explicit JsonError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** One JSON value (document model). */
class Json
{
  public:
    enum class Type : std::uint8_t
    {
        Null,
        Bool,
        Int,     ///< negative integers
        Uint,    ///< non-negative integers (exact 64-bit counters)
        Double,
        String,
        Array,
        Object
    };

    /** Object member list; insertion order is preserved on dump(). */
    using Members = std::vector<std::pair<std::string, Json>>;
    using Array = std::vector<Json>;

    Json() : kind(Type::Null) {}
    Json(std::nullptr_t) : kind(Type::Null) {}
    Json(bool v) : kind(Type::Bool), boolValue(v) {}
    Json(int v) : kind(v < 0 ? Type::Int : Type::Uint)
    {
        if (v < 0)
            intValue = v;
        else
            uintValue = static_cast<std::uint64_t>(v);
    }
    Json(std::int64_t v) : kind(v < 0 ? Type::Int : Type::Uint)
    {
        if (v < 0)
            intValue = v;
        else
            uintValue = static_cast<std::uint64_t>(v);
    }
    Json(std::uint64_t v) : kind(Type::Uint), uintValue(v) {}
    Json(unsigned v) : kind(Type::Uint), uintValue(v) {}
    Json(double v) : kind(Type::Double), doubleValue(v) {}
    Json(const char *v) : kind(Type::String), stringValue(v) {}
    Json(std::string v) : kind(Type::String), stringValue(std::move(v)) {}

    /** Empty array / object factories (unambiguous construction). */
    static Json array() { Json j; j.kind = Type::Array; return j; }
    static Json object() { Json j; j.kind = Type::Object; return j; }

    Type type() const { return kind; }
    bool isNull() const { return kind == Type::Null; }
    bool isBool() const { return kind == Type::Bool; }
    bool isNumber() const
    {
        return kind == Type::Int || kind == Type::Uint ||
               kind == Type::Double;
    }
    bool isString() const { return kind == Type::String; }
    bool isArray() const { return kind == Type::Array; }
    bool isObject() const { return kind == Type::Object; }

    /** Typed access; throws JsonError on kind mismatch. */
    bool asBool() const;
    std::int64_t asInt() const;
    std::uint64_t asUint() const;
    /** Any numeric kind widens to double. */
    double asDouble() const;
    const std::string &asString() const;
    const Array &asArray() const;
    const Members &asObject() const;

    /** Array element append. */
    void push(Json value);

    /** Object member append (no duplicate-key check; callers own it). */
    void set(std::string key, Json value);

    /** Pointer to the member named @p key, or nullptr. O(n). */
    const Json *find(const std::string &key) const;

    /** Member access; throws JsonError when @p key is absent. */
    const Json &at(const std::string &key) const;

    /** Array element count / object member count. */
    std::size_t size() const;

    /**
     * Serialize. @p indent > 0 pretty-prints with that many spaces per
     * level; 0 emits the compact single-line form. Deterministic: see
     * the file comment.
     */
    std::string dump(int indent = 2) const;

    /** Parse a complete JSON document; throws JsonError with a byte
     *  offset on malformed input. Trailing garbage is an error. */
    static Json parse(const std::string &text);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type kind;
    bool boolValue = false;
    std::int64_t intValue = 0;
    std::uint64_t uintValue = 0;
    double doubleValue = 0.0;
    std::string stringValue;
    Array arrayValue;
    Members objectValue;
};

} // namespace ghrp::report

#endif // GHRP_REPORT_JSON_HH

#include "report/report.hh"

#include <chrono>
#include <fstream>
#include <sstream>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "report/telemetry_json.hh"
#include "stats/confidence.hh"
#include "telemetry/metrics.hh"
#include "telemetry/span.hh"
#include "util/thread_pool.hh"

// Configure-time provenance, injected by src/report/CMakeLists.txt.
#ifndef GHRP_GIT_DESCRIBE
#define GHRP_GIT_DESCRIBE "unknown"
#endif
#ifndef GHRP_BUILD_TYPE
#define GHRP_BUILD_TYPE "unknown"
#endif
#ifndef GHRP_CXX_FLAGS
#define GHRP_CXX_FLAGS ""
#endif

namespace ghrp::report
{

namespace
{

const char *
directionName(frontend::DirectionKind kind)
{
    switch (kind) {
    case frontend::DirectionKind::HashedPerceptron:
        return "hashed-perceptron";
    case frontend::DirectionKind::Gshare: return "gshare";
    case frontend::DirectionKind::Bimodal: return "bimodal";
    }
    return "unknown";
}

std::string
compilerString()
{
#if defined(__clang__)
    return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
    return std::string("gcc ") + __VERSION__;
#else
    return "unknown";
#endif
}

std::string
hostnameString()
{
#ifndef _WIN32
    char buf[256] = {};
    if (gethostname(buf, sizeof(buf) - 1) == 0 && buf[0])
        return buf;
#endif
    return "unknown";
}

std::vector<std::pair<std::string, std::string>>
captureBuild()
{
    return {
        {"gitDescribe", GHRP_GIT_DESCRIBE},
        {"buildType", GHRP_BUILD_TYPE},
        {"cxxFlags", GHRP_CXX_FLAGS},
        {"compiler", compilerString()},
        {"cxxStandard", std::to_string(__cplusplus)},
    };
}

std::vector<std::pair<std::string, std::string>>
captureEnvironment()
{
#if defined(__linux__)
    const char *os = "linux";
#elif defined(__APPLE__)
    const char *os = "darwin";
#else
    const char *os = "unknown";
#endif
    return {
        {"hostname", hostnameString()},
        {"os", os},
        {"pointerBits", std::to_string(sizeof(void *) * 8)},
        {"hardwareJobs",
         std::to_string(util::ThreadPool::hardwareJobs())},
    };
}

void
stamp(RunReport &report)
{
    report.createdUnix = std::chrono::duration_cast<std::chrono::seconds>(
                             std::chrono::system_clock::now()
                                 .time_since_epoch())
                             .count();
    long pid = 0;
#ifndef _WIN32
    pid = static_cast<long>(getpid());
#endif
    report.runId = report.experiment + "-" +
                   std::to_string(report.createdUnix) + "-" +
                   std::to_string(pid);
    report.build = captureBuild();
    report.environment = captureEnvironment();
}

Json
counterSetToJson(const CounterSet &c)
{
    Json j = Json::object();
    j.set("accesses", c.accesses);
    j.set("hits", c.hits);
    j.set("misses", c.misses);
    j.set("bypasses", c.bypasses);
    j.set("evictions", c.evictions);
    j.set("deadEvictions", c.deadEvictions);
    j.set("mpki", c.mpki);
    return j;
}

CounterSet
counterSetFromJson(const Json &j)
{
    CounterSet c;
    c.accesses = j.at("accesses").asUint();
    c.hits = j.at("hits").asUint();
    c.misses = j.at("misses").asUint();
    c.bypasses = j.at("bypasses").asUint();
    c.evictions = j.at("evictions").asUint();
    c.deadEvictions = j.at("deadEvictions").asUint();
    c.mpki = j.at("mpki").asDouble();
    return c;
}

Json
duelStatsToJson(const DuelStats &d)
{
    Json j = Json::object();
    j.set("finalPsel", d.finalPsel);
    j.set("leaderMissesA", d.leaderMissesA);
    j.set("leaderMissesB", d.leaderMissesB);
    j.set("winnerFlips", d.winnerFlips);
    j.set("sampleStride", d.sampleStride);
    Json traj = Json::array();
    for (std::int64_t v : d.trajectory)
        traj.push(v);
    j.set("trajectory", std::move(traj));
    return j;
}

DuelStats
duelStatsFromJson(const Json &j)
{
    DuelStats d;
    d.finalPsel = j.at("finalPsel").asInt();
    d.leaderMissesA = j.at("leaderMissesA").asUint();
    d.leaderMissesB = j.at("leaderMissesB").asUint();
    d.winnerFlips = j.at("winnerFlips").asUint();
    d.sampleStride = j.at("sampleStride").asUint();
    for (const Json &v : j.at("trajectory").asArray())
        d.trajectory.push_back(v.asInt());
    return d;
}

Json
phaseRecordToJson(const frontend::PhaseRecord &r)
{
    Json j = Json::object();
    j.set("window", r.window);
    j.set("instructions", r.instructions);
    j.set("icacheAccesses", r.icacheAccesses);
    j.set("icacheMisses", r.icacheMisses);
    j.set("icacheEvictions", r.icacheEvictions);
    j.set("btbAccesses", r.btbAccesses);
    j.set("btbMisses", r.btbMisses);
    j.set("btbEvictions", r.btbEvictions);
    j.set("condBranches", r.condBranches);
    j.set("condMispredicts", r.condMispredicts);
    j.set("btbTargetMismatches", r.btbTargetMismatches);
    j.set("deadHits", r.deadHits);
    j.set("liveHits", r.liveHits);
    j.set("deadEvictions", r.deadEvictions);
    j.set("liveEvictions", r.liveEvictions);
    j.set("psel", r.psel);
    return j;
}

frontend::PhaseRecord
phaseRecordFromJson(const Json &j)
{
    frontend::PhaseRecord r;
    r.window = j.at("window").asUint();
    r.instructions = j.at("instructions").asUint();
    r.icacheAccesses = j.at("icacheAccesses").asUint();
    r.icacheMisses = j.at("icacheMisses").asUint();
    r.icacheEvictions = j.at("icacheEvictions").asUint();
    r.btbAccesses = j.at("btbAccesses").asUint();
    r.btbMisses = j.at("btbMisses").asUint();
    r.btbEvictions = j.at("btbEvictions").asUint();
    r.condBranches = j.at("condBranches").asUint();
    r.condMispredicts = j.at("condMispredicts").asUint();
    r.btbTargetMismatches = j.at("btbTargetMismatches").asUint();
    r.deadHits = j.at("deadHits").asUint();
    r.liveHits = j.at("liveHits").asUint();
    r.deadEvictions = j.at("deadEvictions").asUint();
    r.liveEvictions = j.at("liveEvictions").asUint();
    r.psel = j.at("psel").asInt();
    return r;
}

Json
phaseStatsToJson(const PhaseStats &p)
{
    Json j = Json::object();
    j.set("window", p.window);
    j.set("stride", p.stride);
    Json records = Json::array();
    for (const frontend::PhaseRecord &r : p.records)
        records.push(phaseRecordToJson(r));
    j.set("records", std::move(records));
    return j;
}

PhaseStats
phaseStatsFromJson(const Json &j)
{
    PhaseStats p;
    p.window = j.at("window").asUint();
    p.stride = j.at("stride").asUint();
    for (const Json &r : j.at("records").asArray())
        p.records.push_back(phaseRecordFromJson(r));
    return p;
}

} // anonymous namespace

Json
phaseRecordJson(const frontend::PhaseRecord &record)
{
    return phaseRecordToJson(record);
}

Json
legToJson(const Leg &leg)
{
    Json j = Json::object();
    j.set("trace", leg.trace);
    j.set("policy", leg.policy);
    j.set("seconds", leg.seconds);

    Json instr = Json::object();
    instr.set("total", leg.totalInstructions);
    instr.set("warmup", leg.warmupInstructions);
    instr.set("measured", leg.measuredInstructions);
    j.set("instructions", std::move(instr));

    j.set("icache", counterSetToJson(leg.icache));
    j.set("btb", counterSetToJson(leg.btb));

    Json branch = Json::object();
    branch.set("condBranches", leg.condBranches);
    branch.set("condMispredicts", leg.condMispredicts);
    branch.set("btbTargetMismatches", leg.btbTargetMismatches);
    branch.set("rasReturns", leg.rasReturns);
    branch.set("rasMispredicts", leg.rasMispredicts);
    branch.set("indirectBranches", leg.indirectBranches);
    branch.set("indirectMispredicts", leg.indirectMispredicts);
    j.set("branch", std::move(branch));

    // Schema minor 3: emitted only for duel legs so pre-dueling
    // documents serialize byte-identically.
    if (leg.hasDuel) {
        Json duel = Json::object();
        duel.set("icache", duelStatsToJson(leg.duelIcache));
        duel.set("btb", duelStatsToJson(leg.duelBtb));
        j.set("duel", std::move(duel));
    }
    // Schema minor 4: emitted only for phase-sampled legs so
    // pre-flight-recorder documents serialize byte-identically.
    if (leg.hasPhases)
        j.set("phases", phaseStatsToJson(leg.phases));
    return j;
}

Leg
legFromJson(const Json &j)
{
    try {
        Leg leg;
        leg.trace = j.at("trace").asString();
        leg.policy = j.at("policy").asString();
        leg.seconds = j.at("seconds").asDouble();
        const Json &instr = j.at("instructions");
        leg.totalInstructions = instr.at("total").asUint();
        leg.warmupInstructions = instr.at("warmup").asUint();
        leg.measuredInstructions = instr.at("measured").asUint();
        leg.icache = counterSetFromJson(j.at("icache"));
        leg.btb = counterSetFromJson(j.at("btb"));
        const Json &branch = j.at("branch");
        leg.condBranches = branch.at("condBranches").asUint();
        leg.condMispredicts = branch.at("condMispredicts").asUint();
        leg.btbTargetMismatches =
            branch.at("btbTargetMismatches").asUint();
        leg.rasReturns = branch.at("rasReturns").asUint();
        leg.rasMispredicts = branch.at("rasMispredicts").asUint();
        leg.indirectBranches = branch.at("indirectBranches").asUint();
        leg.indirectMispredicts =
            branch.at("indirectMispredicts").asUint();
        if (const Json *duel = j.find("duel")) {
            leg.hasDuel = true;
            leg.duelIcache = duelStatsFromJson(duel->at("icache"));
            leg.duelBtb = duelStatsFromJson(duel->at("btb"));
        }
        if (const Json *phases = j.find("phases")) {
            leg.hasPhases = true;
            leg.phases = phaseStatsFromJson(*phases);
        }
        return leg;
    } catch (const JsonError &e) {
        throw ReportError(std::string("malformed leg: ") + e.what());
    }
}

namespace
{

Json
relToJson(const RelToLru &rel)
{
    Json j = Json::object();
    j.set("meanPct", rel.meanPct);
    j.set("ciHalfWidthPct", rel.ciHalfWidthPct);
    j.set("traces", rel.traces);
    return j;
}

RelToLru
relFromJson(const Json *j)
{
    RelToLru rel;
    if (!j)
        return rel;
    rel.present = true;
    rel.meanPct = j->at("meanPct").asDouble();
    rel.ciHalfWidthPct = j->at("ciHalfWidthPct").asDouble();
    rel.traces = j->at("traces").asUint();
    return rel;
}

Json
policyToJson(const PolicySummary &p)
{
    Json j = Json::object();
    j.set("policy", p.policy);
    Json icache = Json::object();
    icache.set("meanMpki", p.icacheMeanMpki);
    if (p.icacheVsLru.present)
        icache.set("vsLru", relToJson(p.icacheVsLru));
    j.set("icache", std::move(icache));
    Json btb = Json::object();
    btb.set("meanMpki", p.btbMeanMpki);
    if (p.btbVsLru.present)
        btb.set("vsLru", relToJson(p.btbVsLru));
    j.set("btb", std::move(btb));
    return j;
}

PolicySummary
policyFromJson(const Json &j)
{
    PolicySummary p;
    p.policy = j.at("policy").asString();
    const Json &icache = j.at("icache");
    p.icacheMeanMpki = icache.at("meanMpki").asDouble();
    p.icacheVsLru = relFromJson(icache.find("vsLru"));
    const Json &btb = j.at("btb");
    p.btbMeanMpki = btb.at("meanMpki").asDouble();
    p.btbVsLru = relFromJson(btb.find("vsLru"));
    return p;
}

Json
sweepToJson(const SweepStats &s)
{
    Json j = Json::object();
    j.set("wallSeconds", s.wallSeconds);
    j.set("legs", s.legs);
    j.set("simulatedInstructions", s.simulatedInstructions);
    j.set("jobs", s.jobs);
    j.set("legsPerSec", s.legsPerSec);
    j.set("mInstrPerSec", s.mInstrPerSec);
    Json store = Json::object();
    store.set("enabled", s.traceStoreEnabled);
    store.set("hits", s.traceStoreHits);
    store.set("misses", s.traceStoreMisses);
    store.set("stores", s.traceStoreStores);
    j.set("traceStore", std::move(store));
    return j;
}

SweepStats
sweepFromJson(const Json *j)
{
    SweepStats s;
    if (!j)
        return s;
    s.wallSeconds = j->at("wallSeconds").asDouble();
    s.legs = j->at("legs").asUint();
    s.simulatedInstructions = j->at("simulatedInstructions").asUint();
    s.jobs = static_cast<unsigned>(j->at("jobs").asUint());
    s.legsPerSec = j->at("legsPerSec").asDouble();
    s.mInstrPerSec = j->at("mInstrPerSec").asDouble();
    const Json &store = j->at("traceStore");
    s.traceStoreEnabled = store.at("enabled").asBool();
    s.traceStoreHits = store.at("hits").asUint();
    s.traceStoreMisses = store.at("misses").asUint();
    s.traceStoreStores = store.at("stores").asUint();
    return s;
}

Json
stringPairsToJson(
    const std::vector<std::pair<std::string, std::string>> &pairs)
{
    Json j = Json::object();
    for (const auto &[k, v] : pairs)
        j.set(k, v);
    return j;
}

std::vector<std::pair<std::string, std::string>>
stringPairsFromJson(const Json *j)
{
    std::vector<std::pair<std::string, std::string>> out;
    if (!j)
        return out;
    for (const auto &[k, v] : j->asObject())
        out.emplace_back(k, v.asString());
    return out;
}

} // anonymous namespace

Json
RunReport::toJson() const
{
    Json j = Json::object();
    j.set("schema", kSchemaName);
    Json version = Json::object();
    version.set("major", versionMajor);
    version.set("minor", versionMinor);
    j.set("version", std::move(version));
    j.set("runId", runId);
    j.set("experiment", experiment);
    j.set("createdUnix", createdUnix);
    j.set("build", stringPairsToJson(build));
    j.set("environment", stringPairsToJson(environment));
    j.set("options", options);
    j.set("sweep", sweepToJson(sweep));

    Json policy_array = Json::array();
    for (const PolicySummary &p : policies)
        policy_array.push(policyToJson(p));
    j.set("policies", std::move(policy_array));

    Json leg_array = Json::array();
    for (const Leg &leg : legs)
        leg_array.push(legToJson(leg));
    j.set("legs", std::move(leg_array));

    Json metric_obj = Json::object();
    for (const auto &[name, value] : metrics)
        metric_obj.set(name, value);
    j.set("metrics", std::move(metric_obj));
    if (extras.size() > 0)
        j.set("extras", extras);
    return j;
}

RunReport
RunReport::fromJson(const Json &json)
{
    try {
        const Json *schema = json.find("schema");
        if (!schema || schema->asString() != kSchemaName)
            throw ReportError("not a " + std::string(kSchemaName) +
                              " document");
        const Json &version = json.at("version");
        RunReport report;
        report.versionMajor =
            static_cast<int>(version.at("major").asInt());
        report.versionMinor =
            static_cast<int>(version.at("minor").asInt());
        if (report.versionMajor > kSchemaMajor)
            throw ReportError(
                "unsupported schema major version " +
                std::to_string(report.versionMajor) + " (reader supports " +
                std::to_string(kSchemaMajor) + ")");

        report.experiment = json.at("experiment").asString();
        if (const Json *v = json.find("runId"))
            report.runId = v->asString();
        if (const Json *v = json.find("createdUnix"))
            report.createdUnix = v->asInt();
        report.build = stringPairsFromJson(json.find("build"));
        report.environment = stringPairsFromJson(json.find("environment"));
        if (const Json *v = json.find("options"))
            report.options = *v;
        report.sweep = sweepFromJson(json.find("sweep"));
        if (const Json *v = json.find("policies"))
            for (const Json &p : v->asArray())
                report.policies.push_back(policyFromJson(p));
        if (const Json *v = json.find("legs"))
            for (const Json &leg : v->asArray())
                report.legs.push_back(legFromJson(leg));
        if (const Json *v = json.find("metrics"))
            for (const auto &[name, value] : v->asObject())
                report.metrics.emplace_back(name, value.asDouble());
        if (const Json *v = json.find("extras"))
            report.extras = *v;
        return report;
    } catch (const JsonError &e) {
        throw ReportError(std::string("malformed report: ") + e.what());
    }
}

void
RunReport::write(const std::string &path) const
{
    std::ofstream file(path);
    if (!file)
        throw ReportError("cannot open '" + path + "' for writing");
    file << toJson().dump(2) << '\n';
    if (!file)
        throw ReportError("write to '" + path + "' failed");
}

RunReport
RunReport::load(const std::string &path)
{
    std::ifstream file(path);
    if (!file)
        throw ReportError("cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return fromJson(Json::parse(buffer.str()));
}

ReportBuilder::ReportBuilder(std::string experiment)
{
    report.experiment = std::move(experiment);
}

void
ReportBuilder::setOptions(Json options)
{
    report.options = std::move(options);
}

void
ReportBuilder::addLeg(const std::string &trace, const std::string &label,
                      const frontend::FrontendResult &result,
                      double seconds)
{
    report.legs.push_back(makeLeg(trace, label, result, seconds));
}

void
ReportBuilder::addMetric(std::string name, double value)
{
    report.metrics.emplace_back(std::move(name), value);
}

void
ReportBuilder::addExtra(const std::string &name, Json value)
{
    report.extras.set(name, std::move(value));
}

void
ReportBuilder::setSweep(double wall_seconds, unsigned jobs,
                        std::uint64_t legs_override)
{
    SweepStats &s = report.sweep;
    s.wallSeconds = wall_seconds;
    s.jobs = jobs;
    s.legs = legs_override ? legs_override : report.legs.size();
    s.simulatedInstructions = 0;
    for (const Leg &leg : report.legs)
        s.simulatedInstructions += leg.totalInstructions;
    s.legsPerSec = wall_seconds > 0
                       ? static_cast<double>(s.legs) / wall_seconds
                       : 0.0;
    s.mInstrPerSec =
        wall_seconds > 0
            ? static_cast<double>(s.simulatedInstructions) /
                  wall_seconds / 1e6
            : 0.0;
}

RunReport
ReportBuilder::finish()
{
    const telemetry::Snapshot snapshot =
        telemetry::Registry::global().snapshot();
    if (!snapshot.empty() && !report.extras.find("telemetry"))
        report.extras.set("telemetry", telemetryToJson(snapshot));
    stamp(report);
    return std::move(report);
}

Leg
makeLeg(const std::string &trace, const std::string &label,
        const frontend::FrontendResult &result, double seconds)
{
    Leg leg;
    leg.trace = trace;
    leg.policy = label;
    leg.seconds = seconds;
    leg.totalInstructions = result.totalInstructions;
    leg.warmupInstructions = result.warmupInstructions;
    leg.measuredInstructions = result.measuredInstructions;

    const auto counters = [](const stats::AccessStats &s, double mpki) {
        CounterSet c;
        c.accesses = s.accesses;
        c.hits = s.hits;
        c.misses = s.misses;
        c.bypasses = s.bypasses;
        c.evictions = s.evictions;
        c.deadEvictions = s.deadEvictions;
        c.mpki = mpki;
        return c;
    };
    leg.icache = counters(result.icache, result.icacheMpki);
    leg.btb = counters(result.btb, result.btbMpki);

    leg.condBranches = result.condBranches;
    leg.condMispredicts = result.condMispredicts;
    leg.btbTargetMismatches = result.btbTargetMismatches;
    leg.rasReturns = result.rasReturns;
    leg.rasMispredicts = result.rasMispredicts;
    leg.indirectBranches = result.indirectBranches;
    leg.indirectMispredicts = result.indirectMispredicts;

    const auto duel = [](const cache::DuelTelemetry &t) {
        DuelStats d;
        d.finalPsel = t.finalPsel;
        d.leaderMissesA = t.leaderMissesA;
        d.leaderMissesB = t.leaderMissesB;
        d.winnerFlips = t.winnerFlips;
        d.sampleStride = t.sampleStride;
        d.trajectory = t.trajectory;
        return d;
    };
    leg.hasDuel = result.hasDuel;
    if (result.hasDuel) {
        leg.duelIcache = duel(result.icacheDuel);
        leg.duelBtb = duel(result.btbDuel);
    }

    leg.hasPhases = result.hasPhases;
    if (result.hasPhases) {
        leg.phases.window = result.phases.window;
        leg.phases.stride = result.phases.stride;
        leg.phases.records = result.phases.records;
    }
    return leg;
}

frontend::FrontendResult
toFrontendResult(const Leg &leg)
{
    frontend::FrontendResult result;
    result.traceName = leg.trace;
    result.policy = leg.policy;
    result.totalInstructions = leg.totalInstructions;
    result.warmupInstructions = leg.warmupInstructions;
    result.measuredInstructions = leg.measuredInstructions;

    const auto access = [](const CounterSet &c) {
        stats::AccessStats s;
        s.accesses = c.accesses;
        s.hits = c.hits;
        s.misses = c.misses;
        s.bypasses = c.bypasses;
        s.evictions = c.evictions;
        s.deadEvictions = c.deadEvictions;
        return s;
    };
    result.icache = access(leg.icache);
    result.btb = access(leg.btb);
    result.icacheMpki = leg.icache.mpki;
    result.btbMpki = leg.btb.mpki;

    result.condBranches = leg.condBranches;
    result.condMispredicts = leg.condMispredicts;
    result.btbTargetMismatches = leg.btbTargetMismatches;
    result.rasReturns = leg.rasReturns;
    result.rasMispredicts = leg.rasMispredicts;
    result.indirectBranches = leg.indirectBranches;
    result.indirectMispredicts = leg.indirectMispredicts;

    const auto duel = [](const DuelStats &d) {
        cache::DuelTelemetry t;
        t.finalPsel = d.finalPsel;
        t.leaderMissesA = d.leaderMissesA;
        t.leaderMissesB = d.leaderMissesB;
        t.winnerFlips = d.winnerFlips;
        t.sampleStride = d.sampleStride;
        t.trajectory = d.trajectory;
        return t;
    };
    result.hasDuel = leg.hasDuel;
    if (leg.hasDuel) {
        result.icacheDuel = duel(leg.duelIcache);
        result.btbDuel = duel(leg.duelBtb);
    }

    result.hasPhases = leg.hasPhases;
    if (leg.hasPhases) {
        result.phases.window = leg.phases.window;
        result.phases.stride = leg.phases.stride;
        result.phases.records = leg.phases.records;
    }
    return result;
}

namespace
{

Json
cacheConfigToJson(const cache::CacheConfig &config)
{
    Json j = Json::object();
    j.set("sizeBytes", config.sizeBytes);
    j.set("blockBytes", config.blockBytes);
    j.set("assoc", config.assoc);
    j.set("describe", config.describe());
    return j;
}

cache::CacheConfig
cacheConfigFromJson(const Json &j)
{
    cache::CacheConfig config;
    config.sizeBytes = static_cast<std::uint32_t>(
        j.at("sizeBytes").asUint());
    config.blockBytes = static_cast<std::uint32_t>(
        j.at("blockBytes").asUint());
    config.assoc = static_cast<std::uint32_t>(j.at("assoc").asUint());
    return config;
}

/** Reverse of frontend::policyName that throws instead of fatal()ing,
 *  so a serving daemon can reject a malformed job and keep running. */
frontend::PolicySpec
policyFromName(const std::string &name)
{
    frontend::PolicySpec spec;
    if (!frontend::tryParsePolicySpec(name, spec))
        throw ReportError("unknown policy '" + name + "'");
    return spec;
}

frontend::DirectionKind
directionFromName(const std::string &name)
{
    static constexpr frontend::DirectionKind kAll[] = {
        frontend::DirectionKind::HashedPerceptron,
        frontend::DirectionKind::Gshare,
        frontend::DirectionKind::Bimodal};
    for (frontend::DirectionKind kind : kAll)
        if (name == directionName(kind))
            return kind;
    throw ReportError("unknown direction predictor '" + name + "'");
}

} // anonymous namespace

Json
suiteOptionsToJson(const core::SuiteOptions &options)
{
    Json j = Json::object();
    j.set("numTraces", options.numTraces);
    j.set("baseSeed", options.baseSeed);
    j.set("instructionOverride", options.instructionOverride);
    j.set("jobs", options.jobs);
    j.set("fused", options.fused);
    j.set("traceCacheDir", options.traceCacheDir);
    Json policies = Json::array();
    for (const frontend::PolicySpec &policy : options.policies)
        policies.push(frontend::policyName(policy));
    j.set("policies", std::move(policies));
    j.set("icache", cacheConfigToJson(options.base.icache));
    j.set("btb", cacheConfigToJson(options.base.btb));
    j.set("direction", directionName(options.base.direction));
    j.set("warmupFraction", options.base.warmupFraction);
    j.set("warmupCapInstructions", options.base.warmupCapInstructions);
    j.set("useRas", options.base.useRas);
    j.set("useIndirectPredictor", options.base.useIndirectPredictor);
    j.set("nextLinePrefetch", options.base.nextLinePrefetch);
    j.set("ghrpDedicatedBtb", options.base.ghrpDedicatedBtb);
    j.set("recoverGhrpHistory", options.base.recoverGhrpHistory);
    j.set("wrongPathNoise", options.base.wrongPathNoise);
    j.set("instBytes", options.base.instBytes);
    j.set("phaseWindow", options.base.phaseWindow);
    return j;
}

core::SuiteOptions
suiteOptionsFromJson(const Json &json)
{
    try {
        core::SuiteOptions options;
        options.numTraces = static_cast<std::uint32_t>(
            json.at("numTraces").asUint());
        options.baseSeed = json.at("baseSeed").asUint();
        options.instructionOverride =
            json.at("instructionOverride").asUint();
        options.jobs = static_cast<unsigned>(json.at("jobs").asUint());
        // Optional: reports older than the fused executor lack it.
        if (const Json *fused = json.find("fused"))
            options.fused = fused->asBool();
        options.traceCacheDir = json.at("traceCacheDir").asString();
        options.policies.clear();
        for (const Json &name : json.at("policies").asArray())
            options.policies.push_back(policyFromName(name.asString()));
        options.base.icache = cacheConfigFromJson(json.at("icache"));
        options.base.btb = cacheConfigFromJson(json.at("btb"));
        options.base.direction =
            directionFromName(json.at("direction").asString());
        options.base.warmupFraction = json.at("warmupFraction").asDouble();
        options.base.warmupCapInstructions =
            json.at("warmupCapInstructions").asUint();
        options.base.useRas = json.at("useRas").asBool();
        options.base.useIndirectPredictor =
            json.at("useIndirectPredictor").asBool();
        options.base.nextLinePrefetch = static_cast<std::uint32_t>(
            json.at("nextLinePrefetch").asUint());
        options.base.ghrpDedicatedBtb =
            json.at("ghrpDedicatedBtb").asBool();
        options.base.recoverGhrpHistory =
            json.at("recoverGhrpHistory").asBool();
        options.base.wrongPathNoise = static_cast<std::uint32_t>(
            json.at("wrongPathNoise").asUint());
        options.base.instBytes = static_cast<std::uint32_t>(
            json.at("instBytes").asUint());
        // Optional: reports older than the phase flight recorder
        // (schema minor < 4) lack it.
        if (const Json *phase = json.find("phaseWindow"))
            options.base.phaseWindow = phase->asUint();
        return options;
    } catch (const JsonError &e) {
        throw ReportError(std::string("malformed suite options: ") +
                          e.what());
    }
}

Json
efficiencyMatrixJson(const stats::EfficiencyTracker &tracker)
{
    Json j = Json::object();
    j.set("numSets", tracker.numSets());
    j.set("numWays", tracker.numWays());
    j.set("meanEfficiency", tracker.meanEfficiency());
    Json rows = Json::array();
    for (std::uint32_t set = 0; set < tracker.numSets(); ++set) {
        Json row = Json::array();
        for (std::uint32_t way = 0; way < tracker.numWays(); ++way)
            row.push(tracker.efficiency(set, way));
        rows.push(std::move(row));
    }
    j.set("efficiency", std::move(rows));
    return j;
}

namespace
{

RelToLru
relStats(const std::vector<double> &series, const std::vector<double> &lru)
{
    const std::vector<double> rel =
        core::SuiteResults::relativeDifference(series, lru);
    RelToLru out;
    out.present = true;
    out.traces = rel.size();
    if (!rel.empty()) {
        const stats::ConfidenceInterval ci = stats::meanConfidence(rel);
        out.meanPct = ci.mean * 100.0;
        out.ciHalfWidthPct = ci.halfWidth * 100.0;
    }
    return out;
}

} // anonymous namespace

RunReport
buildSuiteReport(const std::string &experiment,
                 const core::SuiteOptions &options,
                 const core::SuiteResults &results)
{
    TELEMETRY_SPAN("aggregate", experiment);
    ReportBuilder builder(experiment);
    builder.setOptions(suiteOptionsToJson(options));

    // Legs in deterministic (policy, trace) order; the per-leg wall
    // times come from the runner's timing slots.
    for (const auto &[policy, runs] : results.results) {
        const auto &seconds = results.legSeconds.at(policy);
        for (std::size_t i = 0; i < runs.size(); ++i)
            builder.addLeg(results.specs[i].name,
                           frontend::policyName(policy), runs[i],
                           i < seconds.size() ? seconds[i] : 0.0);
    }

    RunReport report = builder.finish();

    const bool has_lru =
        results.results.count(frontend::PolicyKind::Lru) != 0;
    const std::vector<double> lru_icache =
        has_lru ? results.icacheMpki(frontend::PolicyKind::Lru)
                : std::vector<double>{};
    const std::vector<double> lru_btb =
        has_lru ? results.btbMpki(frontend::PolicyKind::Lru)
                : std::vector<double>{};

    for (const frontend::PolicySpec &policy : options.policies) {
        if (!results.results.count(policy))
            continue;
        PolicySummary summary;
        summary.policy = frontend::policyName(policy);
        const std::vector<double> icache = results.icacheMpki(policy);
        const std::vector<double> btb = results.btbMpki(policy);
        summary.icacheMeanMpki = core::SuiteResults::mean(icache);
        summary.btbMeanMpki = core::SuiteResults::mean(btb);
        if (has_lru && policy != frontend::PolicyKind::Lru) {
            summary.icacheVsLru = relStats(icache, lru_icache);
            summary.btbVsLru = relStats(btb, lru_btb);
        }
        report.policies.push_back(std::move(summary));
    }

    // ---- oracle + dueling extras (schema minor 3) ----------------
    // Both subtrees are pure functions of the per-leg counters above,
    // so reports rebuilt from journals or merged from shards carry
    // them bit-identically. The oracle is deliberately NOT a policy
    // row: diff/gate tooling matches PolicySummary rows by name and
    // must not see a synthetic policy appear.
    std::vector<frontend::PolicySpec> static_policies;
    std::vector<frontend::PolicySpec> duel_policies;
    for (const frontend::PolicySpec &policy : options.policies) {
        if (!results.results.count(policy))
            continue;
        (policy.isDuel() ? duel_policies : static_policies)
            .push_back(policy);
    }

    std::vector<double> oracle_icache;
    std::vector<double> oracle_btb;
    // A single static policy IS its own oracle — only synthesize the
    // aggregate when the per-trace best can differ from a policy row
    // (>= 2 statics) or a dueling row needs its upper bound.
    const bool want_oracle =
        static_policies.size() >= 2 ||
        (!static_policies.empty() && !duel_policies.empty());
    if (want_oracle) {
        // Per-trace best static policy: the upper bound a perfect
        // dynamic selector (always picking the winning constituent,
        // per trace) could reach with this policy set.
        const auto oracleOf =
            [&](const std::function<std::vector<double>(
                    const frontend::PolicySpec &)> &series,
                std::vector<double> &minima) {
                std::vector<std::vector<double>> all;
                all.reserve(static_policies.size());
                for (const frontend::PolicySpec &policy : static_policies)
                    all.push_back(series(policy));
                Json per_trace = Json::array();
                for (std::size_t t = 0; t < results.specs.size(); ++t) {
                    std::size_t best = 0;
                    for (std::size_t p = 1; p < all.size(); ++p)
                        if (all[p][t] < all[best][t])
                            best = p;  // ties keep the first in order
                    minima.push_back(all[best][t]);
                    Json row = Json::object();
                    row.set("trace", results.specs[t].name);
                    row.set("policy", frontend::policyName(
                                          static_policies[best]));
                    row.set("mpki", all[best][t]);
                    per_trace.push(std::move(row));
                }
                Json s = Json::object();
                s.set("meanMpki", core::SuiteResults::mean(minima));
                s.set("perTrace", std::move(per_trace));
                return s;
            };

        Json oracle = Json::object();
        Json names = Json::array();
        for (const frontend::PolicySpec &policy : static_policies)
            names.push(frontend::policyName(policy));
        oracle.set("staticPolicies", std::move(names));
        oracle.set("icache",
                   oracleOf([&](const frontend::PolicySpec &p) {
                       return results.icacheMpki(p);
                   }, oracle_icache));
        oracle.set("btb", oracleOf([&](const frontend::PolicySpec &p) {
                       return results.btbMpki(p);
                   }, oracle_btb));
        report.extras.set("oracle", std::move(oracle));
    }

    if (!duel_policies.empty()) {
        const auto duelJson = [](const cache::DuelTelemetry &t) {
            DuelStats d;
            d.finalPsel = t.finalPsel;
            d.leaderMissesA = t.leaderMissesA;
            d.leaderMissesB = t.leaderMissesB;
            d.winnerFlips = t.winnerFlips;
            d.sampleStride = t.sampleStride;
            d.trajectory = t.trajectory;
            return duelStatsToJson(d);
        };
        const auto structureJson = [&](double mean_mpki,
                                       const std::vector<double> &oracle) {
            Json s = Json::object();
            s.set("meanMpki", mean_mpki);
            if (!oracle.empty()) {
                const double oracle_mean =
                    core::SuiteResults::mean(oracle);
                s.set("oracleMeanMpki", oracle_mean);
                s.set("vsOraclePct",
                      oracle_mean > 0.0
                          ? (mean_mpki - oracle_mean) / oracle_mean *
                                100.0
                          : 0.0);
            }
            return s;
        };

        Json dueling = Json::object();
        for (const frontend::PolicySpec &policy : duel_policies) {
            const std::vector<frontend::FrontendResult> &runs =
                results.results.at(policy);
            Json d = Json::object();
            d.set("icache",
                  structureJson(core::SuiteResults::mean(
                                    results.icacheMpki(policy)),
                                oracle_icache));
            d.set("btb", structureJson(core::SuiteResults::mean(
                                           results.btbMpki(policy)),
                                       oracle_btb));
            Json per_trace = Json::array();
            for (std::size_t t = 0; t < runs.size(); ++t) {
                Json row = Json::object();
                row.set("trace", results.specs[t].name);
                row.set("icache", duelJson(runs[t].icacheDuel));
                row.set("btb", duelJson(runs[t].btbDuel));
                per_trace.push(std::move(row));
            }
            d.set("perTrace", std::move(per_trace));
            dueling.set(frontend::policyName(policy), std::move(d));
        }
        report.extras.set("dueling", std::move(dueling));
    }

    // ---- phase flight-recorder extras (schema minor 4) -----------
    // A compact per-policy digest of the per-leg trajectories: window
    // geometry, record counts, decimation strides and the interval
    // I-cache MPKI envelope. A pure function of the leg data, so
    // resumed/merged reports carry it bit-identically; omitted
    // entirely when no leg sampled, keeping minor-3 output unchanged.
    {
        bool any_phases = false;
        std::uint64_t window = 0;
        for (const auto &[policy, runs] : results.results)
            for (const frontend::FrontendResult &run : runs)
                if (run.hasPhases) {
                    any_phases = true;
                    window = run.phases.window;
                }
        if (any_phases) {
            Json phases = Json::object();
            phases.set("window", window);
            Json per_policy = Json::object();
            for (const frontend::PolicySpec &policy : options.policies) {
                if (!results.results.count(policy))
                    continue;
                const std::vector<frontend::FrontendResult> &runs =
                    results.results.at(policy);
                std::uint64_t records = 0;
                std::uint64_t max_stride = 0;
                double mpki_min = 0.0, mpki_max = 0.0;
                bool have_mpki = false;
                for (const frontend::FrontendResult &run : runs) {
                    if (!run.hasPhases)
                        continue;
                    records += run.phases.records.size();
                    max_stride =
                        std::max(max_stride, run.phases.stride);
                    std::uint64_t prev = 0;
                    for (const frontend::PhaseRecord &r :
                         run.phases.records) {
                        const std::uint64_t span =
                            r.instructions - prev;
                        prev = r.instructions;
                        if (span == 0)
                            continue;
                        const double mpki =
                            static_cast<double>(r.icacheMisses) *
                            1000.0 / static_cast<double>(span);
                        if (!have_mpki || mpki < mpki_min)
                            mpki_min = mpki;
                        if (!have_mpki || mpki > mpki_max)
                            mpki_max = mpki;
                        have_mpki = true;
                    }
                }
                Json p = Json::object();
                p.set("records", records);
                p.set("maxStride", max_stride);
                if (have_mpki) {
                    p.set("icacheMpkiMin", mpki_min);
                    p.set("icacheMpkiMax", mpki_max);
                }
                per_policy.set(frontend::policyName(policy),
                               std::move(p));
            }
            phases.set("perPolicy", std::move(per_policy));
            report.extras.set("phases", std::move(phases));
        }
    }

    SweepStats &sweep = report.sweep;
    sweep.wallSeconds = results.wallSeconds;
    sweep.legs = results.totalLegs();
    sweep.simulatedInstructions = results.simulatedInstructions();
    sweep.jobs = options.jobs ? options.jobs
                              : util::ThreadPool::hardwareJobs();
    sweep.legsPerSec = sweep.wallSeconds > 0
                           ? static_cast<double>(sweep.legs) /
                                 sweep.wallSeconds
                           : 0.0;
    sweep.mInstrPerSec =
        sweep.wallSeconds > 0
            ? static_cast<double>(sweep.simulatedInstructions) /
                  sweep.wallSeconds / 1e6
            : 0.0;
    sweep.traceStoreEnabled = results.traceStoreEnabled;
    sweep.traceStoreHits = results.traceStore.hits;
    sweep.traceStoreMisses = results.traceStore.misses;
    sweep.traceStoreStores = results.traceStore.stores;
    return report;
}

RunReport
mergeShardReports(const std::string &experiment,
                  const core::SuiteOptions &options,
                  const std::vector<RunReport> &shards)
{
    if (shards.empty())
        throw ReportError("merge: no shard reports");

    // Two shards belong to the same cell iff their options agree on
    // everything that can change results: policy subset, jobs, fused
    // and the trace cache are execution knobs with a bit-identical
    // guarantee, so they are normalized away before comparing.
    const auto cellIdentity = [](const core::SuiteOptions &o) {
        core::SuiteOptions norm = o;
        norm.policies.clear();
        norm.jobs = 0;
        norm.fused = false;
        norm.verbose = false;
        norm.slowLegMs = 0.0;
        norm.traceCacheDir.clear();
        return suiteOptionsToJson(norm).dump(0);
    };
    const std::string cell = cellIdentity(options);

    core::SuiteResults results;
    results.specs =
        workload::makeSuite(options.numTraces, options.baseSeed);
    std::map<std::string, std::size_t> spec_index;
    for (std::size_t i = 0; i < results.specs.size(); ++i)
        spec_index.emplace(results.specs[i].name, i);

    std::map<frontend::PolicySpec, std::vector<char>> filled;
    for (const frontend::PolicySpec &policy : options.policies) {
        results.results[policy].resize(results.specs.size());
        results.legSeconds[policy].assign(results.specs.size(), 0.0);
        filled[policy].assign(results.specs.size(), 0);
    }

    for (const RunReport &shard : shards) {
        const core::SuiteOptions shard_options =
            suiteOptionsFromJson(shard.options);
        if (cellIdentity(shard_options) != cell)
            throw ReportError("merge: shard '" + shard.runId +
                              "' ran a different sweep cell");

        for (const Leg &leg : shard.legs) {
            const frontend::PolicySpec policy =
                policyFromName(leg.policy);
            const auto fit = filled.find(policy);
            if (fit == filled.end())
                throw ReportError("merge: shard '" + shard.runId +
                                  "' carries policy '" + leg.policy +
                                  "' which is not in this cell");
            const auto sit = spec_index.find(leg.trace);
            if (sit == spec_index.end())
                throw ReportError("merge: shard '" + shard.runId +
                                  "' carries trace '" + leg.trace +
                                  "' which is not in this cell");
            char &slot = fit->second[sit->second];
            if (slot)
                throw ReportError("merge: duplicate leg (" + leg.trace +
                                  ", " + leg.policy + ")");
            slot = 1;
            // The crash-resume injection path: the slot holds exactly
            // what the shard's runner produced.
            results.results.at(policy)[sit->second] =
                toFrontendResult(leg);
            results.legSeconds.at(policy)[sit->second] = leg.seconds;
        }

        // Shards run concurrently: campaign wall is the slowest shard.
        results.wallSeconds =
            std::max(results.wallSeconds, shard.sweep.wallSeconds);
        results.traceStoreEnabled =
            results.traceStoreEnabled || shard.sweep.traceStoreEnabled;
        results.traceStore.hits += shard.sweep.traceStoreHits;
        results.traceStore.misses += shard.sweep.traceStoreMisses;
        results.traceStore.stores += shard.sweep.traceStoreStores;
    }

    for (const auto &[policy, slots] : filled)
        for (std::size_t i = 0; i < slots.size(); ++i)
            if (!slots[i])
                throw ReportError("merge: no shard carried leg (" +
                                  results.specs[i].name + ", " +
                                  frontend::policyName(policy) + ")");

    return buildSuiteReport(experiment, options, results);
}

} // namespace ghrp::report

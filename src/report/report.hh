/**
 * @file
 * Versioned machine-readable run reports: every bench binary can
 * serialize what it measured — environment and build provenance, the
 * full suite options, per-leg counters and wall times, per-policy
 * aggregates with confidence intervals, and free-form experiment
 * metrics — into one JSON document that `ghrp-report` renders, diffs
 * and gates on. The reports are the source of record for
 * EXPERIMENTS.md: the committed headline tables are regenerated from
 * the seed reports under reports/seed/ and drift-checked in CI.
 *
 * Schema compatibility rule: readers ignore unknown fields (minor
 * additions are free) and reject documents whose major version is
 * above the one they were built with.
 */

#ifndef GHRP_REPORT_REPORT_HH
#define GHRP_REPORT_REPORT_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/runner.hh"
#include "frontend/frontend.hh"
#include "report/json.hh"
#include "stats/efficiency.hh"

namespace ghrp::report
{

/** Thrown on schema violations (bad version, missing members). */
struct ReportError : std::runtime_error
{
    explicit ReportError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Schema identity; bump major only on incompatible layout changes.
 *  Minor 1 added the optional "extras" subtree (free-form named JSON
 *  blobs, e.g. per-frame efficiency matrices). Minor 2 added the
 *  "extras.telemetry" snapshot (counters / gauges / histograms; see
 *  report/telemetry_json.hh) stamped by ReportBuilder::finish().
 *  Minor 3 added the optional per-leg "duel" subtree (set-dueling
 *  PSEL statistics) plus the "extras.oracle" per-trace best-static
 *  aggregate and "extras.dueling" summaries built by
 *  buildSuiteReport(). Minor 4 added the optional per-leg "phases"
 *  subtree (windowed flight-recorder records), the "phaseWindow"
 *  suite option, and the "extras.phases" summary built by
 *  buildSuiteReport(); all omitted when phase sampling is off, so
 *  minor-3 documents render byte-identically. */
inline constexpr char kSchemaName[] = "ghrp-run-report";
inline constexpr int kSchemaMajor = 1;
inline constexpr int kSchemaMinor = 4;

/** Counters of one cache-like structure in one leg. */
struct CounterSet
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t bypasses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t deadEvictions = 0;
    double mpki = 0.0;
};

/** Set-dueling statistics of one structure in one leg (schema minor
 *  3). Mirrors cache::DuelTelemetry; everything is a pure function of
 *  the access stream, so legs carrying it merge/resume
 *  bit-identically. */
struct DuelStats
{
    std::int64_t finalPsel = 0;
    std::uint64_t leaderMissesA = 0;
    std::uint64_t leaderMissesB = 0;
    std::uint64_t winnerFlips = 0;
    std::uint64_t sampleStride = 1;
    std::vector<std::int64_t> trajectory;
};

/** Phase flight-recorder trajectory of one leg (schema minor 4).
 *  Mirrors frontend::PhaseTrajectory; a pure function of the access
 *  stream, so legs carrying it merge/resume bit-identically. */
struct PhaseStats
{
    std::uint64_t window = 0;  ///< raw window size, instructions
    std::uint64_t stride = 1;  ///< raw windows per record after decimation
    std::vector<frontend::PhaseRecord> records;
};

/** One simulated (trace, policy/variant) leg. */
struct Leg
{
    std::string trace;
    std::string policy;  ///< policy or variant label
    double seconds = 0.0;  ///< leg wall time (0 when not measured)

    std::uint64_t totalInstructions = 0;
    std::uint64_t warmupInstructions = 0;
    std::uint64_t measuredInstructions = 0;

    CounterSet icache;
    CounterSet btb;

    std::uint64_t condBranches = 0;
    std::uint64_t condMispredicts = 0;
    std::uint64_t btbTargetMismatches = 0;
    std::uint64_t rasReturns = 0;
    std::uint64_t rasMispredicts = 0;
    std::uint64_t indirectBranches = 0;
    std::uint64_t indirectMispredicts = 0;

    /** Present (serialized) only for duel:<A>,<B> legs, so documents
     *  without dueling render byte-identically to schema minor 2. */
    bool hasDuel = false;
    DuelStats duelIcache;
    DuelStats duelBtb;

    /** Present (serialized) only for legs simulated with a non-zero
     *  phase window, so documents without phase sampling render
     *  byte-identically to schema minor 3. */
    bool hasPhases = false;
    PhaseStats phases;
};

/** Relative-to-LRU statistics of one structure, in percent. */
struct RelToLru
{
    bool present = false;   ///< false for the LRU row itself
    double meanPct = 0.0;   ///< mean per-trace relative difference
    double ciHalfWidthPct = 0.0;  ///< 95% CI half width of the mean
    std::uint64_t traces = 0;     ///< traces entering the statistic
};

/** Suite-level aggregate for one policy. */
struct PolicySummary
{
    std::string policy;
    double icacheMeanMpki = 0.0;
    double btbMeanMpki = 0.0;
    RelToLru icacheVsLru;
    RelToLru btbVsLru;
};

/** Sweep-level wall-clock and throughput accounting. */
struct SweepStats
{
    double wallSeconds = 0.0;
    std::uint64_t legs = 0;
    std::uint64_t simulatedInstructions = 0;
    unsigned jobs = 0;
    double legsPerSec = 0.0;
    double mInstrPerSec = 0.0;
    bool traceStoreEnabled = false;
    std::uint64_t traceStoreHits = 0;
    std::uint64_t traceStoreMisses = 0;
    std::uint64_t traceStoreStores = 0;
};

/** One complete run report (schema root). */
struct RunReport
{
    int versionMajor = kSchemaMajor;
    int versionMinor = kSchemaMinor;
    std::string runId;
    std::string experiment;
    std::int64_t createdUnix = 0;

    /** Build provenance: git describe, build type, compiler, flags. */
    std::vector<std::pair<std::string, std::string>> build;
    /** Host capture: hostname, OS, hardware concurrency, ... */
    std::vector<std::pair<std::string, std::string>> environment;

    /** Full options of the run (suite options or binary-specific). */
    Json options = Json::object();

    SweepStats sweep;
    std::vector<PolicySummary> policies;
    std::vector<Leg> legs;
    /** Free-form named numbers for experiments without suite legs. */
    std::vector<std::pair<std::string, double>> metrics;
    /** Free-form named JSON blobs (schema minor 1), e.g. the per-frame
     *  efficiency matrices of the heat-map figures. Serialized only
     *  when non-empty so minor-0 documents render byte-identically. */
    Json extras = Json::object();

    Json toJson() const;

    /**
     * Parse a report document. Unknown fields are ignored; a major
     * version above kSchemaMajor, a wrong schema name or a missing
     * required member throws ReportError.
     */
    static RunReport fromJson(const Json &json);

    /** Serialize to @p path (pretty-printed, trailing newline). */
    void write(const std::string &path) const;

    /** Load and parse @p path; throws ReportError / JsonError. */
    static RunReport load(const std::string &path);
};

/**
 * Incremental report assembly for bench binaries whose sweep does not
 * go through core::runSuite. finish() stamps run ID, schema version,
 * creation time and build/environment capture.
 */
class ReportBuilder
{
  public:
    explicit ReportBuilder(std::string experiment);

    /** Replace the options subtree (any JSON object). */
    void setOptions(Json options);

    /** Append one simulated leg. */
    void addLeg(const std::string &trace, const std::string &label,
                const frontend::FrontendResult &result,
                double seconds = 0.0);

    /** Append one free-form metric. */
    void addMetric(std::string name, double value);

    /** Attach one free-form extra blob under report.extras[name]. */
    void addExtra(const std::string &name, Json value);

    /** Record sweep timing; legs/instruction totals come from the legs
     *  added so far, so call this after the last addLeg(). Metric-only
     *  reports (no addLeg) pass their simulation count via
     *  @p legs_override. */
    void setSweep(double wall_seconds, unsigned jobs,
                  std::uint64_t legs_override = 0);

    /**
     * Finalize. Stamps run ID, schema version, creation time,
     * build/environment capture, and — when the process-wide metrics
     * registry is non-empty — a compact telemetry snapshot under
     * extras.telemetry (unless addExtra already claimed that name).
     * The builder is left in a moved-from state.
     */
    RunReport finish();

  private:
    RunReport report;
};

/** Convert one FrontendResult into a leg record. */
Leg makeLeg(const std::string &trace, const std::string &label,
            const frontend::FrontendResult &result, double seconds = 0.0);

/** Serialize one leg as its report-schema JSON object. */
Json legToJson(const Leg &leg);

/** Serialize one flight-recorder record as its report-schema JSON
 *  object (the shape used inside leg "phases" subtrees and, with
 *  trace/policy members added, inside service progress frames). */
Json phaseRecordJson(const frontend::PhaseRecord &record);

/** Parse one leg object; throws ReportError on missing members. */
Leg legFromJson(const Json &json);

/**
 * Reconstruct the FrontendResult a leg was built from (the exact
 * inverse of makeLeg). Used by the service journal to refill skipped
 * runner slots on crash resume so the rebuilt report is bit-identical
 * to an uninterrupted run.
 */
frontend::FrontendResult toFrontendResult(const Leg &leg);

/** Serialize suite options as the report's "options" subtree. */
Json suiteOptionsToJson(const core::SuiteOptions &options);

/**
 * Parse an "options" subtree produced by suiteOptionsToJson back into
 * SuiteOptions. Unlike the CLI parsers this never fatal()s: unknown
 * policy or direction names and missing members throw ReportError, so
 * a daemon can reject a bad job without dying.
 */
core::SuiteOptions suiteOptionsFromJson(const Json &json);

/**
 * Per-frame efficiency matrix of one tracker as JSON: geometry, mean,
 * and a row-per-set array of per-way efficiencies in [0, 1]. Embedded
 * under extras by the heat-map benches so figures can be regenerated
 * from a report alone.
 */
Json efficiencyMatrixJson(const stats::EfficiencyTracker &tracker);

/**
 * Build the standard suite report from a core::runSuite sweep:
 * captures options, every (trace, policy) leg with its wall time,
 * per-policy aggregates with 95% CIs of the relative difference vs
 * LRU (when LRU ran), and sweep throughput.
 */
RunReport buildSuiteReport(const std::string &experiment,
                           const core::SuiteOptions &options,
                           const core::SuiteResults &results);

/**
 * Merge per-policy shard reports of ONE sweep cell back into the
 * report an in-process runSuite over @p options would have produced.
 * Each shard must be a suite report over the same cell (numTraces,
 * baseSeed, instruction override, frontend config — everything except
 * the policy subset, jobs and cache/fused execution knobs, which never
 * affect results) carrying some subset of the cell's (trace, policy)
 * legs. The legs are reassembled into their runner slots via
 * toFrontendResult — the same injection path crash resume uses — so
 * the merged document's legs and per-policy aggregates are
 * bit-identical to the unsharded run.
 *
 * Throws ReportError on an incompatible shard, an unknown trace or
 * policy, a duplicated leg, or a cell with missing legs after all
 * shards are consumed. Wall-clock is the max over shards (shards run
 * concurrently) and trace-store traffic the sum; both are outside the
 * determinism guarantee.
 */
RunReport mergeShardReports(const std::string &experiment,
                            const core::SuiteOptions &options,
                            const std::vector<RunReport> &shards);

} // namespace ghrp::report

#endif // GHRP_REPORT_REPORT_HH

#include "report/render.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <map>

#include "stats/table.hh"
#include "telemetry/metrics.hh"
#include "telemetry/span.hh"

namespace ghrp::report
{

namespace
{

std::string
fmt(const char *format, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, value);
    return buf;
}

std::string
mpkiCell(double value)
{
    return fmt("%.2f", value);
}

std::string
pctCell(const RelToLru &rel)
{
    if (!rel.present)
        return "-";
    return fmt("%+.1f%%", rel.meanPct);
}

/** Paper baseline for one policy row of a headline table. */
struct PaperRow
{
    const char *policy;
    const char *mpki;
    const char *vsLru;
};

/** One headline experiment: which structure it reports and the
 *  paper's numbers (Figures 3 and 11, suite means). */
struct HeadlineSpec
{
    const char *experiment;
    bool useBtb;
    std::vector<PaperRow> paper;
};

const std::vector<HeadlineSpec> &
headlineSpecs()
{
    static const std::vector<HeadlineSpec> specs = {
        {"fig03_icache_scurve",
         false,
         {{"LRU", "1.05", "-"},
          {"Random", "1.14", "+8.6%"},
          {"SRRIP", "1.02", "-2.9%"},
          {"SDBP", "1.10", "+4.8%"},
          {"GHRP", "0.86", "-18.1%"}}},
        {"fig11_btb_scurve",
         true,
         {{"LRU", "4.58", "-"},
          {"Random", "4.81", "+5.0%"},
          {"SRRIP", "4.17", "-9.0%"},
          {"SDBP", "4.57", "-0.2%"},
          {"GHRP", "3.21", "-30.0%"}}},
    };
    return specs;
}

const HeadlineSpec *
findHeadline(const std::string &experiment)
{
    for (const HeadlineSpec &spec : headlineSpecs())
        if (experiment == spec.experiment)
            return &spec;
    return nullptr;
}

std::string
headlineTable(const RunReport &report, const HeadlineSpec &spec)
{
    stats::TextTable table({"policy", "paper MPKI", "paper vs LRU",
                            "measured MPKI", "measured vs LRU"});
    for (const PolicySummary &p : report.policies) {
        const PaperRow *paper = nullptr;
        for (const PaperRow &row : spec.paper)
            if (p.policy == row.policy)
                paper = &row;
        const double measured =
            spec.useBtb ? p.btbMeanMpki : p.icacheMeanMpki;
        const RelToLru &rel = spec.useBtb ? p.btbVsLru : p.icacheVsLru;
        table.addRow({p.policy, paper ? paper->mpki : "-",
                      paper ? paper->vsLru : "-", mpkiCell(measured),
                      pctCell(rel)});
    }
    return table.renderMarkdown();
}

std::string
genericPolicyTable(const RunReport &report)
{
    stats::TextTable table({"policy", "I-cache MPKI", "vs LRU",
                            "BTB MPKI", "vs LRU"});
    for (const PolicySummary &p : report.policies)
        table.addRow({p.policy, mpkiCell(p.icacheMeanMpki),
                      pctCell(p.icacheVsLru), mpkiCell(p.btbMeanMpki),
                      pctCell(p.btbVsLru)});
    return table.renderMarkdown();
}

std::string
metricsTable(const RunReport &report)
{
    stats::TextTable table({"metric", "value"});
    for (const auto &[name, value] : report.metrics)
        table.addRow({name, fmt("%.6g", value)});
    return table.renderMarkdown();
}

/** Oracle upper bound + dueling-vs-oracle lines (schema minor 3).
 *  Empty when extras.oracle is absent, so pre-dueling reports render
 *  byte-identically. */
std::string
oracleLines(const RunReport &report)
{
    const Json *oracle = report.extras.find("oracle");
    if (!oracle)
        return "";
    std::string out =
        "\nOracle (per-trace best static): I-cache " +
        mpkiCell(oracle->at("icache").at("meanMpki").asDouble()) +
        " MPKI, BTB " +
        mpkiCell(oracle->at("btb").at("meanMpki").asDouble()) +
        " MPKI\n";
    if (const Json *dueling = report.extras.find("dueling")) {
        for (const auto &[name, d] : dueling->asObject()) {
            const Json *icache_pct = d.at("icache").find("vsOraclePct");
            const Json *btb_pct = d.at("btb").find("vsOraclePct");
            if (!icache_pct || !btb_pct)
                continue;
            out += name + " vs oracle: I-cache " +
                   fmt("%+.1f%%", icache_pct->asDouble()) + ", BTB " +
                   fmt("%+.1f%%", btb_pct->asDouble()) + "\n";
        }
    }
    return out;
}

} // anonymous namespace

std::string
beginMarker(const std::string &experiment)
{
    return "<!-- ghrp-report:" + experiment + ":begin -->";
}

std::string
endMarker(const std::string &experiment)
{
    return "<!-- ghrp-report:" + experiment + ":end -->";
}

std::string
renderBlock(const RunReport &report)
{
    TELEMETRY_SPAN("render", report.experiment);
    static telemetry::Counter &renders =
        telemetry::metrics().counter("report.renders");
    renders.add();
    std::string table;
    if (const HeadlineSpec *spec = findHeadline(report.experiment))
        table = headlineTable(report, *spec);
    else if (!report.policies.empty())
        table = genericPolicyTable(report);
    else
        table = metricsTable(report);
    return beginMarker(report.experiment) + "\n" + table +
           oracleLines(report) + endMarker(report.experiment);
}

bool
spliceBlock(std::string &document, const RunReport &report)
{
    const std::string begin = beginMarker(report.experiment);
    const std::string end = endMarker(report.experiment);
    const std::size_t begin_pos = document.find(begin);
    if (begin_pos == std::string::npos)
        return false;
    const std::size_t end_pos = document.find(end, begin_pos);
    if (end_pos == std::string::npos)
        return false;
    document.replace(begin_pos, end_pos + end.size() - begin_pos,
                     renderBlock(report));
    return true;
}

DiffResult
diffReports(const RunReport &baseline, const RunReport &candidate,
            const DiffOptions &options)
{
    DiffResult result;
    result.checked = options.check;

    std::map<std::string, const PolicySummary *> base_by_name;
    for (const PolicySummary &p : baseline.policies)
        base_by_name[p.policy] = &p;

    stats::TextTable table({"policy", "I$ base", "I$ cand", "I$ delta",
                            "BTB base", "BTB cand", "BTB delta"});
    for (const PolicySummary &cand : candidate.policies) {
        auto it = base_by_name.find(cand.policy);
        if (it == base_by_name.end()) {
            result.mpkiChanged = true;
            table.addRow({cand.policy, "-", mpkiCell(cand.icacheMeanMpki),
                          "new", "-", mpkiCell(cand.btbMeanMpki), "new"});
            continue;
        }
        const PolicySummary &base = *it->second;
        const double icache_delta =
            cand.icacheMeanMpki - base.icacheMeanMpki;
        const double btb_delta = cand.btbMeanMpki - base.btbMeanMpki;
        if (std::abs(icache_delta) > options.mpkiEpsilon ||
            std::abs(btb_delta) > options.mpkiEpsilon)
            result.mpkiChanged = true;
        table.addRow({cand.policy, mpkiCell(base.icacheMeanMpki),
                      mpkiCell(cand.icacheMeanMpki),
                      fmt("%+.4f", icache_delta),
                      mpkiCell(base.btbMeanMpki),
                      mpkiCell(cand.btbMeanMpki),
                      fmt("%+.4f", btb_delta)});
        base_by_name.erase(it);
    }
    for (const auto &[name, p] : base_by_name) {
        result.mpkiChanged = true;
        table.addRow({name, mpkiCell(p->icacheMeanMpki), "-", "removed",
                      mpkiCell(p->btbMeanMpki), "-", "removed"});
    }

    std::string text = "diff " + baseline.runId + " -> " +
                       candidate.runId + " (" + candidate.experiment +
                       ")\n";
    if (candidate.policies.empty() && baseline.policies.empty()) {
        // Metric-only reports: compare the named metrics instead.
        std::map<std::string, double> base_metrics(
            baseline.metrics.begin(), baseline.metrics.end());
        stats::TextTable mtable({"metric", "base", "cand", "delta"});
        for (const auto &[name, value] : candidate.metrics) {
            auto it = base_metrics.find(name);
            const bool known = it != base_metrics.end();
            const double delta = known ? value - it->second : 0.0;
            if (!known || std::abs(delta) > options.mpkiEpsilon)
                result.mpkiChanged = true;
            mtable.addRow({name, known ? fmt("%.6g", it->second) : "-",
                           fmt("%.6g", value),
                           known ? fmt("%+.6g", delta) : "new"});
        }
        text += mtable.render();
    } else {
        text += table.render();
    }

    const double base_tp = baseline.sweep.legsPerSec;
    const double cand_tp = candidate.sweep.legsPerSec;
    if (base_tp > 0.0 && cand_tp > 0.0) {
        const double change_pct = (cand_tp - base_tp) / base_tp * 100.0;
        text += "throughput: base " + fmt("%.2f", base_tp) +
                " legs/s, candidate " + fmt("%.2f", cand_tp) +
                " legs/s (" + fmt("%+.1f%%", change_pct) + ")\n";
        if (change_pct < -options.maxRegressPct)
            result.throughputRegressed = true;
    } else {
        text += "throughput: not comparable (missing sweep timing)\n";
    }

    if (options.check) {
        text += result.mpkiChanged
                    ? "[check] FAIL: MPKI changed (simulation is "
                      "deterministic; any delta is a code change)\n"
                    : "[check] MPKI: OK\n";
        text += result.throughputRegressed
                    ? "[check] FAIL: throughput regressed beyond " +
                          fmt("%.1f%%", options.maxRegressPct) + "\n"
                    : "[check] throughput: OK (gate " +
                          fmt("%.1f%%", options.maxRegressPct) + ")\n";
    }
    result.text = std::move(text);
    return result;
}

std::vector<std::pair<std::string, Json>>
trajectoryPoints(const RunReport &report)
{
    std::vector<std::pair<std::string, Json>> points;
    const auto add = [&](std::string name, const char *unit,
                         double value) {
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        Json j = Json::object();
        j.set("name", name);
        j.set("unit", unit);
        j.set("value", value);
        points.emplace_back(std::move(name), std::move(j));
    };

    if (report.sweep.legsPerSec > 0.0) {
        add(report.experiment + "_legs_per_sec", "legs/s",
            report.sweep.legsPerSec);
        add(report.experiment + "_minstr_per_sec", "Minstr/s",
            report.sweep.mInstrPerSec);
    }
    for (const PolicySummary &p : report.policies) {
        std::string policy = p.policy;
        for (char &c : policy)
            c = static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        add(report.experiment + "_" + policy + "_icache_mpki", "MPKI",
            p.icacheMeanMpki);
        add(report.experiment + "_" + policy + "_btb_mpki", "MPKI",
            p.btbMeanMpki);
    }
    for (const auto &[name, value] : report.metrics)
        add(report.experiment + "_" + name, "", value);
    return points;
}

std::vector<std::pair<std::string, std::string>>
plotFiles(const RunReport &report)
{
    std::vector<std::pair<std::string, std::string>> files;

    struct Structure
    {
        const char *name;
        const CounterSet Leg::*counters;
    };
    static constexpr Structure structures[] = {
        {"icache", &Leg::icache},
        {"btb", &Leg::btb},
    };

    for (const Structure &st : structures) {
        // Per-policy MPKI columns in first-appearance order, each
        // sorted ascending: rank r holds each policy's r-th best
        // trace, the S-curve presentation of figures 3 and 11.
        std::vector<std::string> order;
        std::map<std::string, std::vector<double>> columns;
        bool any_accesses = false;
        for (const Leg &leg : report.legs) {
            const CounterSet &c = leg.*(st.counters);
            if (c.accesses > 0)
                any_accesses = true;
            if (columns.find(leg.policy) == columns.end())
                order.push_back(leg.policy);
            columns[leg.policy].push_back(c.mpki);
        }
        if (!any_accesses || order.empty())
            continue;
        std::size_t ranks = 0;
        for (auto &[policy, mpki] : columns) {
            std::sort(mpki.begin(), mpki.end());
            ranks = std::max(ranks, mpki.size());
        }

        const std::string stem = report.experiment + "_" + st.name;
        std::string dat = "# " + report.experiment + ": per-trace " +
                          st.name + " MPKI, each column sorted "
                          "ascending (S-curve)\n# rank";
        for (const std::string &policy : order)
            dat += " " + policy;
        dat += "\n";
        for (std::size_t r = 0; r < ranks; ++r) {
            dat += std::to_string(r + 1);
            for (const std::string &policy : order) {
                const std::vector<double> &mpki = columns[policy];
                dat += r < mpki.size() ? " " + fmt("%.6f", mpki[r])
                                       : " nan";
            }
            dat += "\n";
        }
        files.emplace_back(stem + ".dat", std::move(dat));

        std::string gp = "# gnuplot script for " + stem + ".dat\n"
                         "set terminal pngcairo size 960,640\n"
                         "set output '" + stem + ".png'\n"
                         "set title '" + report.experiment + ": " +
                         st.name + " MPKI S-curve'\n"
                         "set xlabel 'trace rank (sorted per policy)'\n"
                         "set ylabel 'MPKI'\n"
                         "set key left top\n"
                         "set grid\n"
                         "plot \\\n";
        for (std::size_t p = 0; p < order.size(); ++p) {
            gp += "    '" + stem + ".dat' using 1:" +
                  std::to_string(p + 2) + " with linespoints title '" +
                  order[p] + "'";
            gp += p + 1 < order.size() ? ", \\\n" : "\n";
        }
        files.emplace_back(stem + ".gp", std::move(gp));
    }
    return files;
}

} // namespace ghrp::report

#include "report/render.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <map>

#include "stats/table.hh"
#include "telemetry/metrics.hh"
#include "telemetry/span.hh"

namespace ghrp::report
{

namespace
{

std::string
fmt(const char *format, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, value);
    return buf;
}

std::string
mpkiCell(double value)
{
    return fmt("%.2f", value);
}

std::string
pctCell(const RelToLru &rel)
{
    if (!rel.present)
        return "-";
    return fmt("%+.1f%%", rel.meanPct);
}

/** Paper baseline for one policy row of a headline table. */
struct PaperRow
{
    const char *policy;
    const char *mpki;
    const char *vsLru;
};

/** One headline experiment: which structure it reports and the
 *  paper's numbers (Figures 3 and 11, suite means). */
struct HeadlineSpec
{
    const char *experiment;
    bool useBtb;
    std::vector<PaperRow> paper;
};

const std::vector<HeadlineSpec> &
headlineSpecs()
{
    static const std::vector<HeadlineSpec> specs = {
        {"fig03_icache_scurve",
         false,
         {{"LRU", "1.05", "-"},
          {"Random", "1.14", "+8.6%"},
          {"SRRIP", "1.02", "-2.9%"},
          {"SDBP", "1.10", "+4.8%"},
          {"GHRP", "0.86", "-18.1%"}}},
        {"fig11_btb_scurve",
         true,
         {{"LRU", "4.58", "-"},
          {"Random", "4.81", "+5.0%"},
          {"SRRIP", "4.17", "-9.0%"},
          {"SDBP", "4.57", "-0.2%"},
          {"GHRP", "3.21", "-30.0%"}}},
    };
    return specs;
}

const HeadlineSpec *
findHeadline(const std::string &experiment)
{
    for (const HeadlineSpec &spec : headlineSpecs())
        if (experiment == spec.experiment)
            return &spec;
    return nullptr;
}

std::string
headlineTable(const RunReport &report, const HeadlineSpec &spec)
{
    stats::TextTable table({"policy", "paper MPKI", "paper vs LRU",
                            "measured MPKI", "measured vs LRU"});
    for (const PolicySummary &p : report.policies) {
        const PaperRow *paper = nullptr;
        for (const PaperRow &row : spec.paper)
            if (p.policy == row.policy)
                paper = &row;
        const double measured =
            spec.useBtb ? p.btbMeanMpki : p.icacheMeanMpki;
        const RelToLru &rel = spec.useBtb ? p.btbVsLru : p.icacheVsLru;
        table.addRow({p.policy, paper ? paper->mpki : "-",
                      paper ? paper->vsLru : "-", mpkiCell(measured),
                      pctCell(rel)});
    }
    return table.renderMarkdown();
}

std::string
genericPolicyTable(const RunReport &report)
{
    stats::TextTable table({"policy", "I-cache MPKI", "vs LRU",
                            "BTB MPKI", "vs LRU"});
    for (const PolicySummary &p : report.policies)
        table.addRow({p.policy, mpkiCell(p.icacheMeanMpki),
                      pctCell(p.icacheVsLru), mpkiCell(p.btbMeanMpki),
                      pctCell(p.btbVsLru)});
    return table.renderMarkdown();
}

std::string
metricsTable(const RunReport &report)
{
    stats::TextTable table({"metric", "value"});
    for (const auto &[name, value] : report.metrics)
        table.addRow({name, fmt("%.6g", value)});
    return table.renderMarkdown();
}

/** Oracle upper bound + dueling-vs-oracle lines (schema minor 3).
 *  Empty when extras.oracle is absent, so pre-dueling reports render
 *  byte-identically. */
std::string
oracleLines(const RunReport &report)
{
    const Json *oracle = report.extras.find("oracle");
    if (!oracle)
        return "";
    std::string out =
        "\nOracle (per-trace best static): I-cache " +
        mpkiCell(oracle->at("icache").at("meanMpki").asDouble()) +
        " MPKI, BTB " +
        mpkiCell(oracle->at("btb").at("meanMpki").asDouble()) +
        " MPKI\n";
    if (const Json *dueling = report.extras.find("dueling")) {
        for (const auto &[name, d] : dueling->asObject()) {
            const Json *icache_pct = d.at("icache").find("vsOraclePct");
            const Json *btb_pct = d.at("btb").find("vsOraclePct");
            if (!icache_pct || !btb_pct)
                continue;
            out += name + " vs oracle: I-cache " +
                   fmt("%+.1f%%", icache_pct->asDouble()) + ", BTB " +
                   fmt("%+.1f%%", btb_pct->asDouble()) + "\n";
        }
    }
    return out;
}

/** Lower-cased, filename/identifier-safe copy of @p name. */
std::string
sanitizeToken(std::string name)
{
    for (char &c : name) {
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return name;
}

/** Total set-dueling winner flips per duel policy, (icache, btb),
 *  keyed in first-appearance leg order. */
std::pair<std::vector<std::string>,
          std::map<std::string, std::pair<std::uint64_t, std::uint64_t>>>
duelFlipTotals(const RunReport &report)
{
    std::vector<std::string> order;
    std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> flips;
    for (const Leg &leg : report.legs) {
        if (!leg.hasDuel)
            continue;
        if (flips.find(leg.policy) == flips.end())
            order.push_back(leg.policy);
        auto &f = flips[leg.policy];
        f.first += leg.duelIcache.winnerFlips;
        f.second += leg.duelBtb.winnerFlips;
    }
    return {std::move(order), std::move(flips)};
}

/** Set-dueling winner-flip summary lines (schema minor 3). Empty
 *  without duel legs, so older reports render byte-identically. */
std::string
duelFlipLines(const RunReport &report)
{
    const auto [order, flips] = duelFlipTotals(report);
    std::string out;
    for (const std::string &name : order) {
        const auto &f = flips.at(name);
        out += name + " winner flips: I-cache " +
               std::to_string(f.first) + ", BTB " +
               std::to_string(f.second) + "\n";
    }
    return out.empty() ? out : "\n" + out;
}

/** ASCII sparkline of @p values on a 9-level ramp (min..max). */
std::string
sparkline(const std::vector<double> &values)
{
    static constexpr char ramp[] = ".:-=+*#%@";
    constexpr int levels = 9;
    double lo = values.front(), hi = values.front();
    for (double v : values) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    std::string out;
    out.reserve(values.size());
    for (double v : values) {
        const int level =
            hi > lo ? static_cast<int>((v - lo) / (hi - lo) *
                                           (levels - 1) +
                                       0.5)
                    : 0;
        out += ramp[level];
    }
    return out;
}

/** Per-record instruction spans of a phase trajectory (commit-point
 *  deltas; the first record spans from instruction 0). */
std::vector<double>
phaseSpans(const PhaseStats &phases)
{
    std::vector<double> spans;
    spans.reserve(phases.records.size());
    std::uint64_t prev = 0;
    for (const frontend::PhaseRecord &rec : phases.records) {
        spans.push_back(rec.instructions > prev
                            ? static_cast<double>(rec.instructions - prev)
                            : 0.0);
        prev = rec.instructions;
    }
    return spans;
}

double
intervalMpki(std::uint64_t misses, double span)
{
    return span > 0.0 ? static_cast<double>(misses) * 1000.0 / span : 0.0;
}

} // anonymous namespace

std::string
beginMarker(const std::string &experiment)
{
    return "<!-- ghrp-report:" + experiment + ":begin -->";
}

std::string
endMarker(const std::string &experiment)
{
    return "<!-- ghrp-report:" + experiment + ":end -->";
}

std::string
renderBlock(const RunReport &report)
{
    TELEMETRY_SPAN("render", report.experiment);
    static telemetry::Counter &renders =
        telemetry::metrics().counter("report.renders");
    renders.add();
    std::string table;
    if (const HeadlineSpec *spec = findHeadline(report.experiment))
        table = headlineTable(report, *spec);
    else if (!report.policies.empty())
        table = genericPolicyTable(report);
    else
        table = metricsTable(report);
    return beginMarker(report.experiment) + "\n" + table +
           oracleLines(report) + duelFlipLines(report) +
           endMarker(report.experiment);
}

bool
spliceBlock(std::string &document, const RunReport &report)
{
    const std::string begin = beginMarker(report.experiment);
    const std::string end = endMarker(report.experiment);
    const std::size_t begin_pos = document.find(begin);
    if (begin_pos == std::string::npos)
        return false;
    const std::size_t end_pos = document.find(end, begin_pos);
    if (end_pos == std::string::npos)
        return false;
    document.replace(begin_pos, end_pos + end.size() - begin_pos,
                     renderBlock(report));
    return true;
}

DiffResult
diffReports(const RunReport &baseline, const RunReport &candidate,
            const DiffOptions &options)
{
    DiffResult result;
    result.checked = options.check;

    std::map<std::string, const PolicySummary *> base_by_name;
    for (const PolicySummary &p : baseline.policies)
        base_by_name[p.policy] = &p;

    stats::TextTable table({"policy", "I$ base", "I$ cand", "I$ delta",
                            "BTB base", "BTB cand", "BTB delta"});
    for (const PolicySummary &cand : candidate.policies) {
        auto it = base_by_name.find(cand.policy);
        if (it == base_by_name.end()) {
            result.mpkiChanged = true;
            table.addRow({cand.policy, "-", mpkiCell(cand.icacheMeanMpki),
                          "new", "-", mpkiCell(cand.btbMeanMpki), "new"});
            continue;
        }
        const PolicySummary &base = *it->second;
        const double icache_delta =
            cand.icacheMeanMpki - base.icacheMeanMpki;
        const double btb_delta = cand.btbMeanMpki - base.btbMeanMpki;
        if (std::abs(icache_delta) > options.mpkiEpsilon ||
            std::abs(btb_delta) > options.mpkiEpsilon)
            result.mpkiChanged = true;
        table.addRow({cand.policy, mpkiCell(base.icacheMeanMpki),
                      mpkiCell(cand.icacheMeanMpki),
                      fmt("%+.4f", icache_delta),
                      mpkiCell(base.btbMeanMpki),
                      mpkiCell(cand.btbMeanMpki),
                      fmt("%+.4f", btb_delta)});
        base_by_name.erase(it);
    }
    for (const auto &[name, p] : base_by_name) {
        result.mpkiChanged = true;
        table.addRow({name, mpkiCell(p->icacheMeanMpki), "-", "removed",
                      mpkiCell(p->btbMeanMpki), "-", "removed"});
    }

    std::string text = "diff " + baseline.runId + " -> " +
                       candidate.runId + " (" + candidate.experiment +
                       ")\n";
    if (candidate.policies.empty() && baseline.policies.empty()) {
        // Metric-only reports: compare the named metrics instead.
        std::map<std::string, double> base_metrics(
            baseline.metrics.begin(), baseline.metrics.end());
        stats::TextTable mtable({"metric", "base", "cand", "delta"});
        for (const auto &[name, value] : candidate.metrics) {
            auto it = base_metrics.find(name);
            const bool known = it != base_metrics.end();
            const double delta = known ? value - it->second : 0.0;
            if (!known || std::abs(delta) > options.mpkiEpsilon)
                result.mpkiChanged = true;
            mtable.addRow({name, known ? fmt("%.6g", it->second) : "-",
                           fmt("%.6g", value),
                           known ? fmt("%+.6g", delta) : "new"});
        }
        text += mtable.render();
    } else {
        text += table.render();
    }

    const double base_tp = baseline.sweep.legsPerSec;
    const double cand_tp = candidate.sweep.legsPerSec;
    if (base_tp > 0.0 && cand_tp > 0.0) {
        const double change_pct = (cand_tp - base_tp) / base_tp * 100.0;
        text += "throughput: base " + fmt("%.2f", base_tp) +
                " legs/s, candidate " + fmt("%.2f", cand_tp) +
                " legs/s (" + fmt("%+.1f%%", change_pct) + ")\n";
        if (change_pct < -options.maxRegressPct)
            result.throughputRegressed = true;
    } else {
        text += "throughput: not comparable (missing sweep timing)\n";
    }

    if (options.check) {
        text += result.mpkiChanged
                    ? "[check] FAIL: MPKI changed (simulation is "
                      "deterministic; any delta is a code change)\n"
                    : "[check] MPKI: OK\n";
        text += result.throughputRegressed
                    ? "[check] FAIL: throughput regressed beyond " +
                          fmt("%.1f%%", options.maxRegressPct) + "\n"
                    : "[check] throughput: OK (gate " +
                          fmt("%.1f%%", options.maxRegressPct) + ")\n";
    }
    result.text = std::move(text);
    return result;
}

std::vector<std::pair<std::string, Json>>
trajectoryPoints(const RunReport &report)
{
    std::vector<std::pair<std::string, Json>> points;
    const auto add = [&](std::string name, const char *unit,
                         double value) {
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        Json j = Json::object();
        j.set("name", name);
        j.set("unit", unit);
        j.set("value", value);
        points.emplace_back(std::move(name), std::move(j));
    };

    if (report.sweep.legsPerSec > 0.0) {
        add(report.experiment + "_legs_per_sec", "legs/s",
            report.sweep.legsPerSec);
        add(report.experiment + "_minstr_per_sec", "Minstr/s",
            report.sweep.mInstrPerSec);
    }
    for (const PolicySummary &p : report.policies) {
        std::string policy = p.policy;
        for (char &c : policy)
            c = static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        add(report.experiment + "_" + policy + "_icache_mpki", "MPKI",
            p.icacheMeanMpki);
        add(report.experiment + "_" + policy + "_btb_mpki", "MPKI",
            p.btbMeanMpki);
    }
    for (const auto &[name, value] : report.metrics)
        add(report.experiment + "_" + name, "", value);

    // Set-dueling trajectory points (schema minor 3): total winner
    // flips per duel policy — deterministic integers, so any delta on
    // the benchmark trajectory is a code change.
    const auto [duel_order, duel_flips] = duelFlipTotals(report);
    for (const std::string &name : duel_order) {
        const auto &f = duel_flips.at(name);
        add(report.experiment + "_" + sanitizeToken(name) +
                "_icache_winner_flips",
            "flips", static_cast<double>(f.first));
        add(report.experiment + "_" + sanitizeToken(name) +
                "_btb_winner_flips",
            "flips", static_cast<double>(f.second));
    }
    return points;
}

std::vector<std::pair<std::string, std::string>>
plotFiles(const RunReport &report)
{
    std::vector<std::pair<std::string, std::string>> files;

    struct Structure
    {
        const char *name;
        const CounterSet Leg::*counters;
    };
    static constexpr Structure structures[] = {
        {"icache", &Leg::icache},
        {"btb", &Leg::btb},
    };

    for (const Structure &st : structures) {
        // Per-policy MPKI columns in first-appearance order, each
        // sorted ascending: rank r holds each policy's r-th best
        // trace, the S-curve presentation of figures 3 and 11.
        std::vector<std::string> order;
        std::map<std::string, std::vector<double>> columns;
        bool any_accesses = false;
        for (const Leg &leg : report.legs) {
            const CounterSet &c = leg.*(st.counters);
            if (c.accesses > 0)
                any_accesses = true;
            if (columns.find(leg.policy) == columns.end())
                order.push_back(leg.policy);
            columns[leg.policy].push_back(c.mpki);
        }
        if (!any_accesses || order.empty())
            continue;
        std::size_t ranks = 0;
        for (auto &[policy, mpki] : columns) {
            std::sort(mpki.begin(), mpki.end());
            ranks = std::max(ranks, mpki.size());
        }

        const std::string stem = report.experiment + "_" + st.name;
        std::string dat = "# " + report.experiment + ": per-trace " +
                          st.name + " MPKI, each column sorted "
                          "ascending (S-curve)\n# rank";
        for (const std::string &policy : order)
            dat += " " + policy;
        dat += "\n";
        for (std::size_t r = 0; r < ranks; ++r) {
            dat += std::to_string(r + 1);
            for (const std::string &policy : order) {
                const std::vector<double> &mpki = columns[policy];
                dat += r < mpki.size() ? " " + fmt("%.6f", mpki[r])
                                       : " nan";
            }
            dat += "\n";
        }
        files.emplace_back(stem + ".dat", std::move(dat));

        std::string gp = "# gnuplot script for " + stem + ".dat\n"
                         "set terminal pngcairo size 960,640\n"
                         "set output '" + stem + ".png'\n"
                         "set title '" + report.experiment + ": " +
                         st.name + " MPKI S-curve'\n"
                         "set xlabel 'trace rank (sorted per policy)'\n"
                         "set ylabel 'MPKI'\n"
                         "set key left top\n"
                         "set grid\n"
                         "plot \\\n";
        for (std::size_t p = 0; p < order.size(); ++p) {
            gp += "    '" + stem + ".dat' using 1:" +
                  std::to_string(p + 2) + " with linespoints title '" +
                  order[p] + "'";
            gp += p + 1 < order.size() ? ", \\\n" : "\n";
        }
        files.emplace_back(stem + ".gp", std::move(gp));
    }

    // Set-dueling PSEL trajectories (schema minor 3): one table per
    // trace that ran duel legs, with one decimated-sample column per
    // (duel policy, structure), plus a script plotting them.
    std::vector<std::string> trace_order;
    std::map<std::string, std::vector<const Leg *>> duel_legs;
    for (const Leg &leg : report.legs) {
        if (!leg.hasDuel)
            continue;
        if (duel_legs.find(leg.trace) == duel_legs.end())
            trace_order.push_back(leg.trace);
        duel_legs[leg.trace].push_back(&leg);
    }
    for (const std::string &trace : trace_order) {
        const std::vector<const Leg *> &legs = duel_legs[trace];
        std::size_t rows = 0;
        for (const Leg *leg : legs)
            rows = std::max({rows, leg->duelIcache.trajectory.size(),
                             leg->duelBtb.trajectory.size()});
        if (rows == 0)
            continue;

        const std::string stem = "psel_" + sanitizeToken(trace);
        std::string dat = "# " + report.experiment + ": " + trace +
                          " set-dueling PSEL trajectory (decimated "
                          "samples)\n# sample";
        for (const Leg *leg : legs)
            dat += " " + leg->policy + ":icache(stride=" +
                   std::to_string(leg->duelIcache.sampleStride) + ") " +
                   leg->policy + ":btb(stride=" +
                   std::to_string(leg->duelBtb.sampleStride) + ")";
        dat += "\n";
        for (std::size_t r = 0; r < rows; ++r) {
            dat += std::to_string(r + 1);
            for (const Leg *leg : legs) {
                const std::vector<std::int64_t> &ic =
                    leg->duelIcache.trajectory;
                const std::vector<std::int64_t> &bt =
                    leg->duelBtb.trajectory;
                dat += r < ic.size() ? " " + std::to_string(ic[r])
                                     : " nan";
                dat += r < bt.size() ? " " + std::to_string(bt[r])
                                     : " nan";
            }
            dat += "\n";
        }
        files.emplace_back(stem + ".dat", std::move(dat));

        std::string gp = "# gnuplot script for " + stem + ".dat\n"
                         "set terminal pngcairo size 960,640\n"
                         "set output '" + stem + ".png'\n"
                         "set title '" + report.experiment + ": " +
                         trace + " duel PSEL trajectory'\n"
                         "set xlabel 'sample'\n"
                         "set ylabel 'PSEL'\n"
                         "set key left top\n"
                         "set grid\n"
                         "plot \\\n";
        std::size_t col = 2;
        for (std::size_t l = 0; l < legs.size(); ++l) {
            gp += "    '" + stem + ".dat' using 1:" +
                  std::to_string(col++) + " with linespoints title '" +
                  legs[l]->policy + " icache', \\\n";
            gp += "    '" + stem + ".dat' using 1:" +
                  std::to_string(col++) + " with linespoints title '" +
                  legs[l]->policy + " btb'";
            gp += l + 1 < legs.size() ? ", \\\n" : "\n";
        }
        files.emplace_back(stem + ".gp", std::move(gp));
    }
    return files;
}

std::string
renderPhases(const RunReport &report)
{
    std::string out;
    for (const Leg &leg : report.legs) {
        if (!leg.hasPhases || leg.phases.records.empty())
            continue;
        const PhaseStats &ph = leg.phases;
        const std::vector<double> spans = phaseSpans(ph);

        std::vector<double> icache, btb, mispredict, dead, psel;
        bool any_outcomes = false, any_psel = false;
        for (std::size_t i = 0; i < ph.records.size(); ++i) {
            const frontend::PhaseRecord &r = ph.records[i];
            icache.push_back(intervalMpki(r.icacheMisses, spans[i]));
            btb.push_back(intervalMpki(r.btbMisses, spans[i]));
            mispredict.push_back(
                r.condBranches ? 100.0 *
                                     static_cast<double>(
                                         r.condMispredicts) /
                                     static_cast<double>(r.condBranches)
                               : 0.0);
            const std::uint64_t evictions =
                r.deadEvictions + r.liveEvictions;
            dead.push_back(evictions
                               ? 100.0 *
                                     static_cast<double>(
                                         r.deadEvictions) /
                                     static_cast<double>(evictions)
                               : 0.0);
            if (r.deadHits | r.liveHits | r.deadEvictions |
                r.liveEvictions)
                any_outcomes = true;
            psel.push_back(static_cast<double>(r.psel));
            if (r.psel != 0)
                any_psel = true;
        }

        out += leg.trace + "/" + leg.policy + ": " +
               std::to_string(ph.records.size()) + " records, window " +
               std::to_string(ph.window) + ", stride " +
               std::to_string(ph.stride) + "\n";
        const auto line = [&](const char *label,
                              const std::vector<double> &values,
                              const char *format) {
            double lo = values.front(), hi = values.front();
            for (double v : values) {
                lo = std::min(lo, v);
                hi = std::max(hi, v);
            }
            char head[96];
            std::snprintf(head, sizeof(head), "  %-11s [%s, %s]  ",
                          label, fmt(format, lo).c_str(),
                          fmt(format, hi).c_str());
            out += std::string(head) + sparkline(values) + "\n";
        };
        line("I$ MPKI", icache, "%.3f");
        line("BTB MPKI", btb, "%.3f");
        line("dir miss%", mispredict, "%.2f");
        if (any_outcomes)
            line("dead evict%", dead, "%.1f");
        if (any_psel)
            line("PSEL", psel, "%.0f");
        out += "\n";
    }
    return out;
}

std::vector<std::pair<std::string, std::string>>
phaseFiles(const RunReport &report)
{
    std::vector<std::pair<std::string, std::string>> files;
    std::vector<std::string> stems, titles;

    for (const Leg &leg : report.legs) {
        if (!leg.hasPhases || leg.phases.records.empty())
            continue;
        const PhaseStats &ph = leg.phases;
        const std::vector<double> spans = phaseSpans(ph);
        const std::string stem = "phase_" + sanitizeToken(leg.trace) +
                                 "_" + sanitizeToken(leg.policy);
        std::string dat =
            "# " + report.experiment + ": " + leg.trace + "/" +
            leg.policy + " flight-recorder trajectory (window " +
            std::to_string(ph.window) + ", stride " +
            std::to_string(ph.stride) + ")\n"
            "# window instructions icacheMpki btbMpki dirMissPct "
            "deadHits liveHits deadEvictions liveEvictions psel\n";
        for (std::size_t i = 0; i < ph.records.size(); ++i) {
            const frontend::PhaseRecord &r = ph.records[i];
            dat += std::to_string(r.window) + " " +
                   std::to_string(r.instructions) + " " +
                   fmt("%.6f", intervalMpki(r.icacheMisses, spans[i])) +
                   " " +
                   fmt("%.6f", intervalMpki(r.btbMisses, spans[i])) +
                   " " +
                   fmt("%.6f",
                       r.condBranches
                           ? 100.0 *
                                 static_cast<double>(r.condMispredicts) /
                                 static_cast<double>(r.condBranches)
                           : 0.0) +
                   " " + std::to_string(r.deadHits) + " " +
                   std::to_string(r.liveHits) + " " +
                   std::to_string(r.deadEvictions) + " " +
                   std::to_string(r.liveEvictions) + " " +
                   std::to_string(r.psel) + "\n";
        }
        files.emplace_back(stem + ".dat", std::move(dat));
        stems.push_back(stem);
        titles.push_back(leg.trace + "/" + leg.policy);
    }
    if (stems.empty())
        return files;

    std::string gp = "# gnuplot script for the phase trajectories of " +
                     report.experiment + "\n"
                     "set terminal pngcairo size 960,640\n"
                     "set output 'phase_" + report.experiment + ".png'\n"
                     "set title '" + report.experiment +
                     ": I-cache MPKI phase trajectory'\n"
                     "set xlabel 'instructions'\n"
                     "set ylabel 'interval MPKI'\n"
                     "set key outside right\n"
                     "set grid\n"
                     "plot \\\n";
    for (std::size_t s = 0; s < stems.size(); ++s) {
        gp += "    '" + stems[s] + ".dat' using 2:3 with linespoints "
              "title '" + titles[s] + "'";
        gp += s + 1 < stems.size() ? ", \\\n" : "\n";
    }
    files.emplace_back("phase_" + report.experiment + ".gp",
                       std::move(gp));
    return files;
}

PhaseCheckResult
checkPhases(const RunReport &report)
{
    PhaseCheckResult result;
    std::size_t phase_legs = 0, total_records = 0;
    const auto fail = [&](const Leg &leg, const std::string &why) {
        result.ok = false;
        result.text += "[check] FAIL " + leg.trace + "/" + leg.policy +
                       ": " + why + "\n";
    };

    for (const Leg &leg : report.legs) {
        if (!leg.hasPhases)
            continue;
        ++phase_legs;
        const PhaseStats &ph = leg.phases;
        total_records += ph.records.size();
        if (ph.window == 0)
            fail(leg, "zero phase window");
        if (ph.records.empty()) {
            fail(leg, "no committed phase records");
            continue;
        }
        if (ph.records.size() > frontend::kPhaseTrajectoryCapacity)
            fail(leg, "record count " +
                          std::to_string(ph.records.size()) +
                          " exceeds the decimation bound " +
                          std::to_string(
                              frontend::kPhaseTrajectoryCapacity));
        if (ph.stride == 0 || (ph.stride & (ph.stride - 1)) != 0)
            fail(leg, "stride " + std::to_string(ph.stride) +
                          " is not a power of two");
        for (std::size_t i = 1; i < ph.records.size(); ++i)
            if (ph.records[i].window <= ph.records[i - 1].window) {
                fail(leg, "window ids not strictly monotone at record " +
                              std::to_string(i));
                break;
            }
        for (std::size_t i = 1; i < ph.records.size(); ++i)
            if (ph.records[i].instructions <=
                ph.records[i - 1].instructions) {
                fail(leg,
                     "instruction commits not strictly monotone at "
                     "record " + std::to_string(i));
                break;
            }
    }

    if (phase_legs == 0) {
        result.ok = false;
        result.text +=
            "[check] FAIL: no leg carries flight-recorder records\n";
        return result;
    }
    if (result.ok)
        result.text += "[check] OK: " + std::to_string(phase_legs) +
                       " phase legs, " + std::to_string(total_records) +
                       " records, decimation bound " +
                       std::to_string(
                           frontend::kPhaseTrajectoryCapacity) + "\n";
    return result;
}

std::string
diffPhases(const RunReport &a, const RunReport &b)
{
    std::string out = "phase diff " + a.runId + " -> " + b.runId +
                      " (" + a.experiment + ")\n";
    std::map<std::pair<std::string, std::string>, const Leg *> b_legs;
    for (const Leg &leg : b.legs)
        if (leg.hasPhases)
            b_legs[{leg.trace, leg.policy}] = &leg;

    std::uint64_t total_flips = 0;
    std::size_t matched = 0;
    for (const Leg &la : a.legs) {
        if (!la.hasPhases)
            continue;
        const auto it = b_legs.find({la.trace, la.policy});
        if (it == b_legs.end()) {
            out += la.trace + "/" + la.policy +
                   ": no phase records in B, skipped\n";
            continue;
        }
        const Leg &lb = *it->second;
        if (la.phases.window != lb.phases.window ||
            la.phases.records.size() != lb.phases.records.size()) {
            out += la.trace + "/" + la.policy +
                   ": phase geometry differs (A window " +
                   std::to_string(la.phases.window) + " x " +
                   std::to_string(la.phases.records.size()) +
                   ", B window " + std::to_string(lb.phases.window) +
                   " x " + std::to_string(lb.phases.records.size()) +
                   "), skipped\n";
            continue;
        }
        ++matched;

        const std::vector<double> spans_a = phaseSpans(la.phases);
        const std::vector<double> spans_b = phaseSpans(lb.phases);
        std::string detail;
        std::uint64_t flips = 0;
        int winner = 0;  // 0 unset, 1 = A, 2 = B (ties go to A)
        for (std::size_t i = 0; i < la.phases.records.size(); ++i) {
            const double ma = intervalMpki(
                la.phases.records[i].icacheMisses, spans_a[i]);
            const double mb = intervalMpki(
                lb.phases.records[i].icacheMisses, spans_b[i]);
            const int now = mb < ma ? 2 : 1;
            if (winner != 0 && now != winner) {
                ++flips;
                detail +=
                    "  window " +
                    std::to_string(la.phases.records[i].window) +
                    ": winner " + (now == 2 ? "A -> B" : "B -> A") +
                    " (A " + fmt("%.3f", ma) + ", B " + fmt("%.3f", mb) +
                    " I$ MPKI)\n";
            }
            winner = now;
        }
        total_flips += flips;
        out += la.trace + "/" + la.policy + ": " +
               std::to_string(la.phases.records.size()) + " windows, " +
               std::to_string(flips) + " winner flips\n" + detail;
    }
    out += std::to_string(matched) + " legs compared, " +
           std::to_string(total_flips) + " winner flips total\n";
    return out;
}

} // namespace ghrp::report

#include "report/telemetry_json.hh"

#include "report/report.hh"

namespace ghrp::report
{

Json
telemetryToJson(const telemetry::Snapshot &snapshot)
{
    Json j = Json::object();
    if (!snapshot.counters.empty()) {
        Json counters = Json::object();
        for (const auto &[name, value] : snapshot.counters)
            counters.set(name, value);
        j.set("counters", std::move(counters));
    }
    if (!snapshot.gauges.empty()) {
        Json gauges = Json::object();
        for (const auto &[name, value] : snapshot.gauges)
            gauges.set(name, value);
        j.set("gauges", std::move(gauges));
    }
    if (!snapshot.histograms.empty()) {
        Json histograms = Json::object();
        for (const auto &[name, hist] : snapshot.histograms) {
            Json h = Json::object();
            h.set("count", hist.count);
            h.set("sumSeconds", hist.sumSeconds);
            Json buckets = Json::array();
            for (const telemetry::BucketCount &bc : hist.buckets) {
                Json b = Json::object();
                b.set("bucket", bc.bucket);
                b.set("count", bc.count);
                buckets.push(std::move(b));
            }
            h.set("buckets", std::move(buckets));
            histograms.set(name, std::move(h));
        }
        j.set("histograms", std::move(histograms));
    }
    return j;
}

telemetry::Snapshot
telemetryFromJson(const Json &json)
{
    if (!json.isObject())
        throw ReportError("telemetry subtree is not an object");
    telemetry::Snapshot snap;
    try {
        if (const Json *counters = json.find("counters"))
            for (const auto &[name, value] : counters->asObject())
                snap.counters[name] = value.asUint();
        if (const Json *gauges = json.find("gauges"))
            for (const auto &[name, value] : gauges->asObject())
                snap.gauges[name] = value.asDouble();
        if (const Json *histograms = json.find("histograms")) {
            for (const auto &[name, h] : histograms->asObject()) {
                telemetry::HistogramSnapshot hs;
                hs.count = h.at("count").asUint();
                hs.sumSeconds = h.at("sumSeconds").asDouble();
                for (const Json &b : h.at("buckets").asArray())
                    hs.buckets.push_back(
                        {static_cast<std::uint32_t>(
                             b.at("bucket").asUint()),
                         b.at("count").asUint()});
                snap.histograms[name] = std::move(hs);
            }
        }
    } catch (const JsonError &err) {
        throw ReportError(std::string("malformed telemetry subtree: ") +
                          err.what());
    }
    return snap;
}

} // namespace ghrp::report

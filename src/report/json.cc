#include "report/json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ghrp::report
{

namespace
{

[[noreturn]] void
typeError(const char *wanted, Json::Type got)
{
    static const char *const names[] = {"null",   "bool",  "int",
                                        "uint",   "double", "string",
                                        "array",  "object"};
    throw JsonError(std::string("expected ") + wanted + ", got " +
                    names[static_cast<int>(got)]);
}

void
escapeInto(std::string &out, const std::string &s)
{
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
}

void
numberInto(std::string &out, double v)
{
    // JSON has no NaN/Inf; represent them as null so a report with a
    // degenerate statistic still parses everywhere.
    if (!std::isfinite(v)) {
        out += "null";
        return;
    }
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    out.append(buf, res.ptr);
}

/** Strict parser over a byte range. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text(text) {}

    Json
    document()
    {
        skipWs();
        Json v = value();
        skipWs();
        if (pos != text.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw JsonError("JSON parse error at byte " + std::to_string(pos) +
                        ": " + what);
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    char
    peek() const
    {
        return pos < text.size() ? text[pos] : '\0';
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos;
    }

    bool
    consumeLiteral(const char *lit)
    {
        std::size_t n = 0;
        while (lit[n])
            ++n;
        if (text.compare(pos, n, lit) != 0)
            return false;
        pos += n;
        return true;
    }

    Json
    value()
    {
        switch (peek()) {
        case '{': return object();
        case '[': return array();
        case '"': return Json(string());
        case 't':
            if (!consumeLiteral("true"))
                fail("bad literal");
            return Json(true);
        case 'f':
            if (!consumeLiteral("false"))
                fail("bad literal");
            return Json(false);
        case 'n':
            if (!consumeLiteral("null"))
                fail("bad literal");
            return Json(nullptr);
        default: return number();
        }
    }

    Json
    object()
    {
        expect('{');
        Json out = Json::object();
        skipWs();
        if (peek() == '}') {
            ++pos;
            return out;
        }
        while (true) {
            skipWs();
            if (peek() != '"')
                fail("expected object key");
            std::string key = string();
            skipWs();
            expect(':');
            skipWs();
            out.set(std::move(key), value());
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect('}');
            return out;
        }
    }

    Json
    array()
    {
        expect('[');
        Json out = Json::array();
        skipWs();
        if (peek() == ']') {
            ++pos;
            return out;
        }
        while (true) {
            skipWs();
            out.push(value());
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect(']');
            return out;
        }
    }

    void
    appendUtf8(std::string &out, std::uint32_t cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    std::uint32_t
    hex4()
    {
        if (pos + 4 > text.size())
            fail("truncated \\u escape");
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text[pos++];
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= static_cast<std::uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<std::uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= static_cast<std::uint32_t>(c - 'A' + 10);
            else
                fail("bad \\u escape digit");
        }
        return v;
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos >= text.size())
                fail("unterminated string");
            const char c = text[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                if (static_cast<unsigned char>(c) < 0x20)
                    fail("raw control character in string");
                out += c;
                continue;
            }
            if (pos >= text.size())
                fail("unterminated escape");
            const char e = text[pos++];
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                std::uint32_t cp = hex4();
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // high surrogate; require the low half
                    if (pos + 1 < text.size() && text[pos] == '\\' &&
                        text[pos + 1] == 'u') {
                        pos += 2;
                        const std::uint32_t lo = hex4();
                        if (lo < 0xDC00 || lo > 0xDFFF)
                            fail("bad low surrogate");
                        cp = 0x10000 + ((cp - 0xD800) << 10) +
                             (lo - 0xDC00);
                    } else {
                        fail("lone high surrogate");
                    }
                }
                appendUtf8(out, cp);
                break;
            }
            default: fail("unknown escape");
            }
        }
    }

    Json
    number()
    {
        const std::size_t start = pos;
        if (peek() == '-')
            ++pos;
        bool integral = true;
        if (!(peek() >= '0' && peek() <= '9'))
            fail("expected value");
        while (peek() >= '0' && peek() <= '9')
            ++pos;
        if (peek() == '.') {
            integral = false;
            ++pos;
            while (peek() >= '0' && peek() <= '9')
                ++pos;
        }
        if (peek() == 'e' || peek() == 'E') {
            integral = false;
            ++pos;
            if (peek() == '+' || peek() == '-')
                ++pos;
            while (peek() >= '0' && peek() <= '9')
                ++pos;
        }
        const std::string token = text.substr(start, pos - start);
        if (integral) {
            if (token[0] == '-') {
                std::int64_t v = 0;
                const auto res = std::from_chars(
                    token.data(), token.data() + token.size(), v);
                if (res.ec == std::errc() &&
                    res.ptr == token.data() + token.size())
                    return Json(v);
            } else {
                std::uint64_t v = 0;
                const auto res = std::from_chars(
                    token.data(), token.data() + token.size(), v);
                if (res.ec == std::errc() &&
                    res.ptr == token.data() + token.size())
                    return Json(v);
            }
            // overflowed 64 bits: fall through to double
        }
        return Json(std::strtod(token.c_str(), nullptr));
    }

    const std::string &text;
    std::size_t pos = 0;
};

} // anonymous namespace

bool
Json::asBool() const
{
    if (kind != Type::Bool)
        typeError("bool", kind);
    return boolValue;
}

std::int64_t
Json::asInt() const
{
    if (kind == Type::Int)
        return intValue;
    if (kind == Type::Uint && uintValue <= 0x7FFFFFFFFFFFFFFFull)
        return static_cast<std::int64_t>(uintValue);
    typeError("int", kind);
}

std::uint64_t
Json::asUint() const
{
    if (kind == Type::Uint)
        return uintValue;
    if (kind == Type::Int && intValue >= 0)
        return static_cast<std::uint64_t>(intValue);
    typeError("uint", kind);
}

double
Json::asDouble() const
{
    switch (kind) {
    case Type::Double: return doubleValue;
    case Type::Int: return static_cast<double>(intValue);
    case Type::Uint: return static_cast<double>(uintValue);
    default: typeError("number", kind);
    }
}

const std::string &
Json::asString() const
{
    if (kind != Type::String)
        typeError("string", kind);
    return stringValue;
}

const Json::Array &
Json::asArray() const
{
    if (kind != Type::Array)
        typeError("array", kind);
    return arrayValue;
}

const Json::Members &
Json::asObject() const
{
    if (kind != Type::Object)
        typeError("object", kind);
    return objectValue;
}

void
Json::push(Json value)
{
    if (kind != Type::Array)
        typeError("array", kind);
    arrayValue.push_back(std::move(value));
}

void
Json::set(std::string key, Json value)
{
    if (kind != Type::Object)
        typeError("object", kind);
    for (auto &[k, v] : objectValue) {
        if (k == key) {
            v = std::move(value);
            return;
        }
    }
    objectValue.emplace_back(std::move(key), std::move(value));
}

const Json *
Json::find(const std::string &key) const
{
    if (kind != Type::Object)
        return nullptr;
    for (const auto &[k, v] : objectValue)
        if (k == key)
            return &v;
    return nullptr;
}

const Json &
Json::at(const std::string &key) const
{
    const Json *v = find(key);
    if (!v)
        throw JsonError("missing member '" + key + "'");
    return *v;
}

std::size_t
Json::size() const
{
    if (kind == Type::Array)
        return arrayValue.size();
    if (kind == Type::Object)
        return objectValue.size();
    typeError("array or object", kind);
}

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    const auto newline = [&](int d) {
        if (indent <= 0)
            return;
        out += '\n';
        out.append(static_cast<std::size_t>(indent) *
                       static_cast<std::size_t>(d),
                   ' ');
    };

    switch (kind) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += boolValue ? "true" : "false"; break;
    case Type::Int: out += std::to_string(intValue); break;
    case Type::Uint: out += std::to_string(uintValue); break;
    case Type::Double: numberInto(out, doubleValue); break;
    case Type::String: escapeInto(out, stringValue); break;
    case Type::Array:
        if (arrayValue.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < arrayValue.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            arrayValue[i].dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
    case Type::Object:
        if (objectValue.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < objectValue.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            escapeInto(out, objectValue[i].first);
            out += indent > 0 ? ": " : ":";
            objectValue[i].second.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        break;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

Json
Json::parse(const std::string &text)
{
    return Parser(text).document();
}

} // namespace ghrp::report

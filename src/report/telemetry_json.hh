/**
 * @file
 * Converters between a telemetry::Snapshot and the ordered report
 * JSON, used for the `extras.telemetry` subtree of run reports
 * (schema minor 2) and the service `metrics` reply.
 *
 * Layout (all members optional on read, unknown members ignored):
 *
 *   {
 *     "counters":   {"pool.tasks": 42, ...},
 *     "gauges":     {"service.queue_depth": 0, ...},
 *     "histograms": {
 *       "sweep.leg_seconds": {
 *         "count": 120,
 *         "sumSeconds": 1.25,
 *         "buckets": [{"bucket": 21, "count": 3}, ...]
 *       }, ...
 *     }
 *   }
 *
 * "bucket" is the log-scale index defined by
 * telemetry::Histogram::bucketUpperSeconds. The conversion is
 * lossless: toJson(fromJson(j)) reproduces j member-for-member.
 */

#ifndef GHRP_REPORT_TELEMETRY_JSON_HH
#define GHRP_REPORT_TELEMETRY_JSON_HH

#include "report/json.hh"
#include "telemetry/metrics.hh"

namespace ghrp::report
{

/** Render @p snapshot as ordered JSON. */
Json telemetryToJson(const telemetry::Snapshot &snapshot);

/** Parse a snapshot back; throws ReportError on malformed input. */
telemetry::Snapshot telemetryFromJson(const Json &json);

} // namespace ghrp::report

#endif // GHRP_REPORT_TELEMETRY_JSON_HH

/**
 * @file
 * Consumers of run reports: the Markdown renderer that regenerates the
 * EXPERIMENTS.md headline tables (byte-for-byte, inside
 * `<!-- ghrp-report:<experiment>:begin/end -->` markers), the
 * two-report diff with a CI regression gate, and trajectory-point
 * extraction for benchmark tracking.
 */

#ifndef GHRP_REPORT_RENDER_HH
#define GHRP_REPORT_RENDER_HH

#include <string>
#include <utility>
#include <vector>

#include "report/report.hh"

namespace ghrp::report
{

/** Marker line opening the rendered block of @p experiment. */
std::string beginMarker(const std::string &experiment);

/** Marker line closing the rendered block of @p experiment. */
std::string endMarker(const std::string &experiment);

/**
 * Render the report's Markdown block, including the begin/end marker
 * lines. For the headline experiments (fig03_icache_scurve,
 * fig11_btb_scurve) this is the paper-vs-measured table with the
 * paper's baselines embedded; other experiments get a generic
 * per-policy summary table, or a metrics table when the report carries
 * only free-form metrics. Deterministic: identical reports render to
 * identical bytes.
 */
std::string renderBlock(const RunReport &report);

/**
 * Replace the marked block of @p report inside @p document (the full
 * EXPERIMENTS.md text). Returns true and rewrites the block in place
 * when both markers are found; returns false (document untouched)
 * otherwise.
 */
bool spliceBlock(std::string &document, const RunReport &report);

/** Options for diffReports(). */
struct DiffOptions
{
    /** Enforce the gates: MPKI must not change, throughput must not
     *  regress by more than maxRegressPct. */
    bool check = false;
    /** Allowed legs/s regression, percent of the baseline. */
    double maxRegressPct = 5.0;
    /** MPKI differences at or below this are treated as unchanged. */
    double mpkiEpsilon = 1e-9;
};

/** Outcome of diffReports(). */
struct DiffResult
{
    std::string text;  ///< human-readable diff table + verdict lines
    bool mpkiChanged = false;
    bool throughputRegressed = false;

    /** Gate verdict (always true when DiffOptions::check is off). */
    bool checked = false;
    bool
    ok() const
    {
        return !checked || (!mpkiChanged && !throughputRegressed);
    }
};

/**
 * Compare two reports: per-policy I-cache/BTB mean-MPKI deltas
 * (policies matched by name) and sweep throughput. With
 * options.check, any MPKI change beyond epsilon or a legs/s drop
 * beyond maxRegressPct fails the gate — MPKI is bit-deterministic
 * across hosts, throughput is not, hence the split thresholds.
 */
DiffResult diffReports(const RunReport &baseline, const RunReport &candidate,
                       const DiffOptions &options = {});

/**
 * Extract benchmark trajectory points: sweep throughput plus each
 * policy's mean MPKI, as (name, value-document) pairs. The CLI writes
 * each pair to BENCH_<name>.json.
 */
std::vector<std::pair<std::string, Json>>
trajectoryPoints(const RunReport &report);

/**
 * Gnuplot S-curve sources regenerated from a report's legs, as
 * (filename, content) pairs: for each structure (icache, btb) that saw
 * accesses, an `<experiment>_<structure>.dat` table — one row per
 * per-trace MPKI rank (each policy's column sorted ascending, the
 * paper's S-curve presentation) — and a matching `.gp` script that
 * renders it to PNG. Traces with set-dueling legs additionally yield a
 * `psel_<trace>.dat` PSEL-trajectory table (one sample column per duel
 * policy and structure) with a matching `.gp`. Reports without suite
 * legs yield no files. Deterministic: identical reports produce
 * identical bytes.
 */
std::vector<std::pair<std::string, std::string>>
plotFiles(const RunReport &report);

/**
 * ASCII phase-trajectory view for `ghrp-report phases`: one block per
 * leg carrying flight-recorder records — record count, window and
 * stride, then sparklines of the interval I-cache/BTB MPKI, direction
 * mispredict rate, dead-eviction share (when a dead-block predictor
 * ran) and duel PSEL (duel legs). Empty string when no leg has phases.
 */
std::string renderPhases(const RunReport &report);

/**
 * Gnuplot phase-trajectory sources, as (filename, content) pairs: one
 * `phase_<trace>_<policy>.dat` per leg with flight-recorder records
 * (window id, cumulative instructions, interval MPKIs, mispredict
 * rate, predictor outcome counts, PSEL) and one
 * `phase_<experiment>.gp` script overlaying every leg's I-cache MPKI
 * trajectory. Deterministic: identical reports produce identical
 * bytes.
 */
std::vector<std::pair<std::string, std::string>>
phaseFiles(const RunReport &report);

/** Outcome of checkPhases(). */
struct PhaseCheckResult
{
    bool ok = true;
    std::string text;  ///< per-leg verdict lines
};

/**
 * Validate a report's flight-recorder records, the CI gate behind
 * `ghrp-report phases --check`: at least one leg carries phases, every
 * phase leg has non-empty records with strictly monotone window ids
 * and instruction commits, the record count respects the decimation
 * bound (frontend::kPhaseTrajectoryCapacity), and the stride is a
 * power of two.
 */
PhaseCheckResult checkPhases(const RunReport &report);

/**
 * Overlay the phase trajectories of two reports (`ghrp-report phases
 * --diff A B`): legs matched by (trace, policy), records aligned by
 * position, the per-window winner being the report with the lower
 * interval I-cache MPKI. Prints one line per winner flip plus per-leg
 * and total summaries; legs with mismatched phase geometry are
 * reported and skipped.
 */
std::string diffPhases(const RunReport &a, const RunReport &b);

} // namespace ghrp::report

#endif // GHRP_REPORT_RENDER_HH

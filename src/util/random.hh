/**
 * @file
 * Deterministic pseudo-random number generation for the synthetic
 * workload generator and the Random replacement policy.
 *
 * We use xoroshiro128++ rather than std::mt19937 so trace generation is
 * reproducible across standard-library implementations.
 */

#ifndef GHRP_UTIL_RANDOM_HH
#define GHRP_UTIL_RANDOM_HH

#include <cstdint>
#include <vector>

namespace ghrp
{

/**
 * xoroshiro128++ generator (Blackman & Vigna). Deterministic for a given
 * seed on every platform; passes BigCrush.
 */
class Rng
{
  public:
    /** Seed via SplitMix64 expansion of a single 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) without modulo bias; bound > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability @p p of returning true. */
    bool nextBool(double p = 0.5);

    /**
     * Geometric-ish burst length: 1 + number of successes before the
     * first failure with continuation probability @p p. Used for loop
     * trip counts and phase lengths.
     */
    std::uint64_t nextGeometric(double p);

    /**
     * Zipf-distributed integer in [0, n). Popular ranks are small
     * indices. @p s is the skew parameter (s > 0; larger = more skewed).
     */
    std::uint64_t nextZipf(std::uint64_t n, double s);

    /** Choose an index from a discrete weight vector (weights >= 0). */
    std::size_t nextWeighted(const std::vector<double> &weights);

  private:
    std::uint64_t s0;
    std::uint64_t s1;
};

} // namespace ghrp

#endif // GHRP_UTIL_RANDOM_HH

/**
 * @file
 * Deterministic pseudo-random number generation for the synthetic
 * workload generator and the Random replacement policy.
 *
 * We use xoroshiro128++ rather than std::mt19937 so trace generation is
 * reproducible across standard-library implementations.
 */

#ifndef GHRP_UTIL_RANDOM_HH
#define GHRP_UTIL_RANDOM_HH

#include <cstdint>
#include <vector>

namespace ghrp
{

/**
 * Stateless SplitMix64 step: scrambles @p x into a well-mixed 64-bit
 * value (Steele, Lea & Flood). Bijective, so distinct inputs give
 * distinct outputs.
 */
std::uint64_t splitMix64(std::uint64_t x);

/**
 * Pure per-trace seed derivation: the seed for trace @p trace_index of
 * a suite with base seed @p base_seed, independent of every other
 * trace. Equivalent to the (trace_index + 1)-th output of a SplitMix64
 * stream seeded with @p base_seed, computed in O(1) by jumping the
 * stream's Weyl sequence — so trace N's generator stream never depends
 * on traces 0..N-1 having been generated, and any (trace, policy) leg
 * can be simulated in isolation (or in parallel) with identical
 * results.
 */
std::uint64_t traceSeed(std::uint64_t base_seed,
                        std::uint64_t trace_index);

/**
 * xoroshiro128++ generator (Blackman & Vigna). Deterministic for a given
 * seed on every platform; passes BigCrush.
 */
class Rng
{
  public:
    /** Seed via SplitMix64 expansion of a single 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) without modulo bias; bound > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability @p p of returning true. */
    bool nextBool(double p = 0.5);

    /**
     * Geometric-ish burst length: 1 + number of successes before the
     * first failure with continuation probability @p p. Used for loop
     * trip counts and phase lengths.
     */
    std::uint64_t nextGeometric(double p);

    /**
     * Zipf-distributed integer in [0, n). Popular ranks are small
     * indices. @p s is the skew parameter (s > 0; larger = more skewed).
     */
    std::uint64_t nextZipf(std::uint64_t n, double s);

    /** Choose an index from a discrete weight vector (weights >= 0). */
    std::size_t nextWeighted(const std::vector<double> &weights);

  private:
    std::uint64_t s0;
    std::uint64_t s1;
};

} // namespace ghrp

#endif // GHRP_UTIL_RANDOM_HH

/**
 * @file
 * Status/error reporting in the gem5 style: panic() for internal
 * invariant violations, fatal() for user-caused unrecoverable errors,
 * warn()/inform() for non-fatal status messages.
 */

#ifndef GHRP_UTIL_LOGGING_HH
#define GHRP_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace ghrp
{

/** Verbosity levels for status messages, least to most talkative. */
enum class LogLevel
{
    Quiet,   ///< suppress warn() and inform() (errors still printed)
    Warn,    ///< warn() printed, inform() suppressed (old --quiet)
    Normal,  ///< default: inform() and warn() printed
    Verbose  ///< additionally print debug() messages
};

/** Set the process-wide verbosity for warn()/inform()/debug(). */
void setLogLevel(LogLevel level);

/** Current process-wide verbosity. */
LogLevel logLevel();

/** Whether inform() currently prints; use to gate progress output. */
bool informEnabled();

/** Whether warn() currently prints. */
bool warnEnabled();

/**
 * Parse a level name as accepted by --log-level / GHRP_LOG_LEVEL:
 * "quiet", "warn", "info" (alias "normal"), "debug" (alias
 * "verbose"). Returns false on anything else.
 */
bool parseLogLevel(const std::string &name, LogLevel &out);

/**
 * Report an internal invariant violation (a bug in this library) and
 * abort. Never returns.
 *
 * @param fmt printf-style format string.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user-caused error (bad configuration, bad
 * input file) and exit(1). Never returns.
 *
 * @param fmt printf-style format string.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning about suspicious-but-survivable conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational status message (suppressed when Quiet). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a debug message (only when Verbose). */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Assert-like helper used in hot paths: compiled in all build types.
 * Calls panic() with the stringified condition when it fails.
 */
#define GHRP_ASSERT(cond)                                                  \
    do {                                                                   \
        if (!(cond))                                                       \
            ::ghrp::panic("assertion failed at %s:%d: %s", __FILE__,       \
                          __LINE__, #cond);                                \
    } while (0)

} // namespace ghrp

#endif // GHRP_UTIL_LOGGING_HH

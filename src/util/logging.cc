#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace ghrp
{

namespace
{

LogLevel globalLevel = LogLevel::Normal;

void
vreport(const char *tag, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

} // anonymous namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

bool
informEnabled()
{
    return globalLevel >= LogLevel::Normal;
}

bool
warnEnabled()
{
    return globalLevel >= LogLevel::Warn;
}

bool
parseLogLevel(const std::string &name, LogLevel &out)
{
    if (name == "quiet") {
        out = LogLevel::Quiet;
    } else if (name == "warn") {
        out = LogLevel::Warn;
    } else if (name == "info" || name == "normal") {
        out = LogLevel::Normal;
    } else if (name == "debug" || name == "verbose") {
        out = LogLevel::Verbose;
    } else {
        return false;
    }
    return true;
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Warn)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Normal)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

void
debug(const char *fmt, ...)
{
    if (globalLevel != LogLevel::Verbose)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("debug", fmt, args);
    va_end(args);
}

} // namespace ghrp

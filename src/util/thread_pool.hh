/**
 * @file
 * Fixed-size work-stealing thread pool used to parallelise suite
 * sweeps: every (trace, policy) simulation leg is an independent job.
 *
 * Design:
 *  - one std::jthread per worker, stopped cooperatively via
 *    std::stop_token when the pool is destroyed;
 *  - one double-ended queue per worker: the owning worker pushes and
 *    pops at the back (LIFO, keeps the working set hot and bounds
 *    memory when jobs spawn jobs), thieves steal from the front (FIFO,
 *    oldest work first);
 *  - submissions from non-worker threads are distributed round-robin
 *    across the worker queues; submissions from inside a worker go to
 *    that worker's own queue;
 *  - submit() returns a std::future; an exception thrown by the job is
 *    captured and rethrown from future::get() in the caller.
 *
 * The queues are mutex-protected rather than lock-free: jobs here are
 * whole trace simulations (milliseconds to seconds), so queue overhead
 * is noise and the simple implementation is easy to reason about under
 * ThreadSanitizer.
 */

#ifndef GHRP_UTIL_THREAD_POOL_HH
#define GHRP_UTIL_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace ghrp::util
{

class ThreadPool
{
  public:
    /**
     * @param num_threads worker count; 0 means hardwareJobs().
     */
    explicit ThreadPool(unsigned num_threads = 0);

    /** Stops the workers after the queues drain of started work. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers.size()); }

    /**
     * Schedule @p fn to run on a worker. The returned future yields
     * fn's result; if fn throws, future::get() rethrows the exception
     * in the waiting thread.
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        // std::function requires copyable callables, so the move-only
        // packaged_task rides in a shared_ptr.
        auto task =
            std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
        std::future<R> future = task->get_future();
        enqueue([task]() { (*task)(); });
        return future;
    }

    /** std::thread::hardware_concurrency(), clamped to at least 1. */
    static unsigned hardwareJobs();

  private:
    /** A queued job plus its enqueue timestamp (for the pool.task_
     *  wait_seconds telemetry histogram). */
    struct Item
    {
        std::function<void()> fn;
        std::uint64_t enqueueNs = 0;
    };

    struct Worker
    {
        std::mutex mutex;
        std::deque<Item> jobs;
    };

    void enqueue(std::function<void()> job);
    void workerLoop(std::stop_token stop, unsigned index);
    bool tryPopOwn(unsigned index, Item &job);
    bool trySteal(unsigned thief, Item &job);

    std::vector<std::unique_ptr<Worker>> workers;
    std::atomic<std::size_t> queued{0};   ///< jobs enqueued, not yet popped
    std::atomic<std::size_t> submitCursor{0};
    std::mutex idleMutex;
    std::condition_variable_any idleCv;
    std::vector<std::jthread> threads;  ///< last member: joins first
};

} // namespace ghrp::util

#endif // GHRP_UTIL_THREAD_POOL_HH

/**
 * @file
 * Small bit-manipulation helpers shared by the cache, predictor and
 * branch models.
 */

#ifndef GHRP_UTIL_BIT_OPS_HH
#define GHRP_UTIL_BIT_OPS_HH

#include <bit>
#include <cstdint>

namespace ghrp
{

/** Address type used throughout the simulator. */
using Addr = std::uint64_t;

/** Return a mask with the low @p nbits bits set. */
constexpr std::uint64_t
mask(unsigned nbits)
{
    return nbits >= 64 ? ~std::uint64_t{0}
                       : ((std::uint64_t{1} << nbits) - 1);
}

/** Extract bits [lo, lo+nbits) of @p value. */
constexpr std::uint64_t
bits(std::uint64_t value, unsigned lo, unsigned nbits)
{
    return (value >> lo) & mask(nbits);
}

/** True when @p value is a (nonzero) power of two. */
constexpr bool
isPowerOf2(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** floor(log2(value)); value must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t value)
{
    return 63u - static_cast<unsigned>(std::countl_zero(value));
}

/** ceil(log2(value)); value must be nonzero. */
constexpr unsigned
ceilLog2(std::uint64_t value)
{
    return isPowerOf2(value) ? floorLog2(value) : floorLog2(value) + 1;
}

/**
 * Fold a 64-bit value down to @p nbits by repeated XOR of nbits-wide
 * chunks. Used to build table indices from addresses and signatures.
 */
constexpr std::uint64_t
foldXor(std::uint64_t value, unsigned nbits)
{
    if (nbits == 0 || nbits >= 64)
        return value;
    std::uint64_t folded = 0;
    while (value != 0) {
        folded ^= value & mask(nbits);
        value >>= nbits;
    }
    return folded;
}

} // namespace ghrp

#endif // GHRP_UTIL_BIT_OPS_HH

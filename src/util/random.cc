#include "util/random.hh"

#include <cmath>

#include "util/logging.hh"

namespace ghrp
{

namespace
{

constexpr std::uint64_t kSplitMixGamma = 0x9E3779B97F4A7C15ull;

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

std::uint64_t
splitMix64(std::uint64_t x)
{
    std::uint64_t z = x + kSplitMixGamma;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
traceSeed(std::uint64_t base_seed, std::uint64_t trace_index)
{
    // SplitMix64's state advances along a Weyl sequence (+= gamma per
    // draw), so the n-th output is reachable directly: jump the state
    // by n gammas and scramble once.
    return splitMix64(base_seed + trace_index * kSplitMixGamma);
}

Rng::Rng(std::uint64_t seed)
{
    s0 = splitMix64(seed);
    s1 = splitMix64(seed + kSplitMixGamma);
    // The all-zero state is invalid for xoroshiro; SplitMix64 cannot
    // produce two zero outputs in a row, but guard anyway.
    if (s0 == 0 && s1 == 0)
        s1 = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t a = s0;
    std::uint64_t b = s1;
    const std::uint64_t result = rotl(a + b, 17) + a;
    b ^= a;
    s0 = rotl(a, 49) ^ b ^ (b << 21);
    s1 = rotl(b, 28);
    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    GHRP_ASSERT(bound > 0);
    // Lemire-style rejection to avoid modulo bias.
    const std::uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    GHRP_ASSERT(lo <= hi);
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::uint64_t
Rng::nextGeometric(double p)
{
    if (p <= 0.0)
        return 1;
    if (p >= 1.0)
        p = 0.999999;
    std::uint64_t n = 1;
    while (nextBool(p) && n < (1ull << 30))
        ++n;
    return n;
}

std::uint64_t
Rng::nextZipf(std::uint64_t n, double s)
{
    GHRP_ASSERT(n > 0);
    if (n == 1)
        return 0;
    // Inverse-CDF via rejection (Devroye). Good enough for workload
    // generation; not on any hot path of the simulator proper.
    const double b = std::pow(2.0, s - 1.0);
    for (;;) {
        const double u = nextDouble();
        const double v = nextDouble();
        const double x = std::floor(std::pow(u, -1.0 / (s - 1.0 + 1e-9)));
        const double t = std::pow(1.0 + 1.0 / x, s - 1.0 + 1e-9);
        if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
            const std::uint64_t rank = static_cast<std::uint64_t>(x) - 1;
            if (rank < n)
                return rank;
        }
    }
}

std::size_t
Rng::nextWeighted(const std::vector<double> &weights)
{
    GHRP_ASSERT(!weights.empty());
    double total = 0.0;
    for (double w : weights)
        total += w;
    if (total <= 0.0)
        return nextBounded(weights.size());
    double point = nextDouble() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        point -= weights[i];
        if (point < 0.0)
            return i;
    }
    return weights.size() - 1;
}

} // namespace ghrp

#include "util/thread_pool.hh"

#include "telemetry/metrics.hh"
#include "telemetry/span.hh"
#include "util/logging.hh"

namespace ghrp::util
{

namespace
{

/** Set while a thread is executing a worker loop of some pool, so
 *  submit() from inside a job lands on the submitting worker's own
 *  queue (LIFO: child jobs run before further stolen work, which keeps
 *  the number of in-flight parent jobs — and their memory — bounded). */
thread_local ThreadPool *tl_pool = nullptr;
thread_local unsigned tl_worker = 0;

/** Pool telemetry, shared across every pool in the process. The
 *  references are resolved once; each update is a relaxed atomic. */
struct PoolMetrics
{
    telemetry::Counter &tasks;
    telemetry::Histogram &waitSeconds;
    telemetry::Histogram &runSeconds;
    telemetry::Gauge &queueDepth;
    telemetry::Gauge &busyWorkers;
    telemetry::Gauge &workers;
};

PoolMetrics &
poolMetrics()
{
    static PoolMetrics m{
        telemetry::metrics().counter("pool.tasks"),
        telemetry::metrics().histogram("pool.task_wait_seconds"),
        telemetry::metrics().histogram("pool.task_run_seconds"),
        telemetry::metrics().gauge("pool.queue_depth"),
        telemetry::metrics().gauge("pool.busy_workers"),
        telemetry::metrics().gauge("pool.workers"),
    };
    return m;
}

} // anonymous namespace

unsigned
ThreadPool::hardwareJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned num_threads)
{
    const unsigned n = num_threads ? num_threads : hardwareJobs();
    workers.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers.push_back(std::make_unique<Worker>());
    threads.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        threads.emplace_back(
            [this, i](std::stop_token stop) { workerLoop(stop, i); });
    poolMetrics().workers.add(static_cast<double>(n));
}

ThreadPool::~ThreadPool()
{
    poolMetrics().workers.add(-static_cast<double>(workers.size()));
    for (std::jthread &t : threads)
        t.request_stop();
    idleCv.notify_all();
    // ~jthread joins each worker; workers drain remaining queued jobs
    // before exiting so pending futures do not break their promises.
}

void
ThreadPool::enqueue(std::function<void()> job)
{
    Worker *target;
    if (tl_pool == this) {
        target = workers[tl_worker].get();
    } else {
        const std::size_t slot =
            submitCursor.fetch_add(1, std::memory_order_relaxed);
        target = workers[slot % workers.size()].get();
    }
    Item item{std::move(job), telemetry::nowNanos()};
    {
        std::lock_guard<std::mutex> lock(target->mutex);
        target->jobs.push_back(std::move(item));
    }
    const std::size_t depth =
        queued.fetch_add(1, std::memory_order_release) + 1;
    poolMetrics().queueDepth.set(static_cast<double>(depth));
    idleCv.notify_one();
}

bool
ThreadPool::tryPopOwn(unsigned index, Item &job)
{
    Worker &w = *workers[index];
    std::lock_guard<std::mutex> lock(w.mutex);
    if (w.jobs.empty())
        return false;
    job = std::move(w.jobs.back());
    w.jobs.pop_back();
    return true;
}

bool
ThreadPool::trySteal(unsigned thief, Item &job)
{
    const unsigned n = static_cast<unsigned>(workers.size());
    for (unsigned k = 1; k < n; ++k) {
        Worker &victim = *workers[(thief + k) % n];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (victim.jobs.empty())
            continue;
        job = std::move(victim.jobs.front());
        victim.jobs.pop_front();
        return true;
    }
    return false;
}

void
ThreadPool::workerLoop(std::stop_token stop, unsigned index)
{
    tl_pool = this;
    tl_worker = index;
    telemetry::setThreadName("worker-" + std::to_string(index + 1));
    PoolMetrics &metrics = poolMetrics();
    Item job;
    for (;;) {
        if (tryPopOwn(index, job) || trySteal(index, job)) {
            const std::size_t depth =
                queued.fetch_sub(1, std::memory_order_relaxed) - 1;
            metrics.queueDepth.set(static_cast<double>(depth));
            const std::uint64_t startNs = telemetry::nowNanos();
            metrics.waitSeconds.observeNanos(startNs - job.enqueueNs);
            metrics.busyWorkers.add(1.0);
            job.fn();
            metrics.busyWorkers.add(-1.0);
            metrics.runSeconds.observeNanos(
                telemetry::nowNanos() - startNs);
            metrics.tasks.add();
            job.fn = nullptr;  // release captures before waiting
            continue;
        }
        std::unique_lock<std::mutex> lock(idleMutex);
        const bool work = idleCv.wait(lock, stop, [this] {
            return queued.load(std::memory_order_acquire) > 0;
        });
        if (!work)  // stop requested and nothing queued
            break;
    }
    tl_pool = nullptr;
}

} // namespace ghrp::util

/**
 * @file
 * Saturating counter template used by the dead-block prediction tables,
 * SRRIP re-reference values, and branch predictor components.
 */

#ifndef GHRP_UTIL_SAT_COUNTER_HH
#define GHRP_UTIL_SAT_COUNTER_HH

#include <cstdint>

#include "util/logging.hh"

namespace ghrp
{

/**
 * An n-bit unsigned saturating counter. Width is a runtime parameter so
 * prediction tables can be configured (the paper uses 2-bit counters for
 * GHRP and 8-bit counters for the adapted SDBP).
 */
class SatCounter
{
  public:
    SatCounter() = default;

    /**
     * @param nbits counter width in bits, 1..31.
     * @param initial initial counter value (clamped to the maximum).
     */
    explicit SatCounter(unsigned nbits, std::uint32_t initial = 0)
        : maxVal((1u << nbits) - 1),
          value(initial > maxVal ? maxVal : initial)
    {
        GHRP_ASSERT(nbits >= 1 && nbits <= 31);
    }

    /** Increment, saturating at the maximum. */
    void
    increment()
    {
        if (value < maxVal)
            ++value;
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        if (value > 0)
            --value;
    }

    /** Current counter value. */
    std::uint32_t count() const { return value; }

    /** Largest representable value. */
    std::uint32_t maximum() const { return maxVal; }

    /** True when the counter is at its maximum. */
    bool saturated() const { return value == maxVal; }

    /** Reset to an explicit value (clamped). */
    void
    set(std::uint32_t v)
    {
        value = v > maxVal ? maxVal : v;
    }

    /** Thresholded prediction: counter >= threshold. */
    bool atLeast(std::uint32_t threshold) const { return value >= threshold; }

  private:
    std::uint32_t maxVal = 3;
    std::uint32_t value = 0;
};

/**
 * A signed saturating weight for perceptron-style predictors, clamped to
 * [-(2^(n-1)), 2^(n-1) - 1].
 */
class SignedSatCounter
{
  public:
    SignedSatCounter() = default;

    explicit SignedSatCounter(unsigned nbits, std::int32_t initial = 0)
        : minVal(-(1 << (nbits - 1))), maxVal((1 << (nbits - 1)) - 1),
          value(initial)
    {
        GHRP_ASSERT(nbits >= 2 && nbits <= 31);
        if (value < minVal)
            value = minVal;
        if (value > maxVal)
            value = maxVal;
    }

    /** Move the weight toward +1 (taken) or -1 (not taken). */
    void
    train(bool up)
    {
        if (up) {
            if (value < maxVal)
                ++value;
        } else {
            if (value > minVal)
                --value;
        }
    }

    std::int32_t count() const { return value; }
    std::int32_t minimum() const { return minVal; }
    std::int32_t maximum() const { return maxVal; }

  private:
    std::int32_t minVal = -128;
    std::int32_t maxVal = 127;
    std::int32_t value = 0;
};

} // namespace ghrp

#endif // GHRP_UTIL_SAT_COUNTER_HH

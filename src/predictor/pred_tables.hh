/**
 * @file
 * Skewed prediction-table bank shared by GHRP and SDBP: N tables of
 * n-bit saturating counters, each indexed by a distinct hash of a
 * signature, aggregated by majority vote (GHRP) or summation (SDBP).
 */

#ifndef GHRP_PREDICTOR_PRED_TABLES_HH
#define GHRP_PREDICTOR_PRED_TABLES_HH

#include <array>
#include <cstdint>
#include <vector>

#include "util/bit_ops.hh"
#include "util/logging.hh"

namespace ghrp::predictor
{

/** Number of skewed tables (the paper uses three). */
constexpr unsigned numPredTables = 3;

/** Indices into each of the three tables for one signature. */
using TableIndices = std::array<std::uint32_t, numPredTables>;

/**
 * Three skewed tables of saturating counters. Counters are stored as
 * raw integers with explicit saturation; the width is a constructor
 * parameter (2 bits for GHRP, 8 bits for the adapted SDBP).
 */
class PredictionTables
{
  public:
    /**
     * @param entries entries per table (power of two, 4096 in paper).
     * @param counter_bits counter width, 1..8.
     */
    PredictionTables(std::uint32_t entries, unsigned counter_bits)
        : numEntries(entries),
          counterMax(static_cast<std::uint8_t>((1u << counter_bits) - 1)),
          indexBits(floorLog2(entries))
    {
        GHRP_ASSERT(isPowerOf2(entries));
        GHRP_ASSERT(counter_bits >= 1 && counter_bits <= 8);
        for (auto &table : tables)
            table.assign(entries, 0);
    }

    /**
     * Compute the three skewed indices for @p signature.
     *
     * Each table uses a distinct multiplicative hash so aliasing in one
     * table is uncorrelated with aliasing in the others (the paper's
     * "three different 12-bit hashes of the 16-bit signature").
     */
    TableIndices
    computeIndices(std::uint32_t signature) const
    {
        static constexpr std::uint32_t kMul[numPredTables] = {
            0x9E3779B1u, 0x85EBCA77u, 0xC2B2AE3Du};
        TableIndices idx;
        for (unsigned t = 0; t < numPredTables; ++t) {
            const std::uint32_t h = signature * kMul[t];
            idx[t] = (h >> (32 - indexBits)) & (numEntries - 1);
        }
        return idx;
    }

    /**
     * Precompute the skewed indices of every signature below
     * @p num_signatures (the signature space is small: 2^16 for GHRP,
     * 2^12 for SDBP). The per-access triple multiply/shift then becomes
     * one table load in indicesFor(). Identical values to
     * computeIndices by construction.
     */
    void
    enableIndexCache(std::uint32_t num_signatures)
    {
        indexLut.resize(num_signatures);
        for (std::uint32_t sig = 0; sig < num_signatures; ++sig)
            indexLut[sig] = computeIndices(sig);
    }

    /** Indices for @p signature: one LUT load when enableIndexCache
     *  covers it, a live computeIndices otherwise. */
    TableIndices
    indicesFor(std::uint32_t signature) const
    {
        if (signature < indexLut.size()) [[likely]]
            return indexLut[signature];
        return computeIndices(signature);
    }

    /** Read the three counters at @p idx. */
    std::array<std::uint8_t, numPredTables>
    readCounters(const TableIndices &idx) const
    {
        std::array<std::uint8_t, numPredTables> counters;
        for (unsigned t = 0; t < numPredTables; ++t)
            counters[t] = tables[t][idx[t]];
        return counters;
    }

    /**
     * Majority vote: dead when two or more counters meet @p threshold.
     */
    bool
    majorityVote(const TableIndices &idx, std::uint32_t threshold) const
    {
        unsigned votes = 0;
        for (unsigned t = 0; t < numPredTables; ++t)
            if (tables[t][idx[t]] >= threshold)
                ++votes;
        return votes * 2 > numPredTables;
    }

    /** Summation: dead when the counter sum meets @p threshold. */
    bool
    sumVote(const TableIndices &idx, std::uint32_t threshold) const
    {
        std::uint32_t sum = 0;
        for (unsigned t = 0; t < numPredTables; ++t)
            sum += tables[t][idx[t]];
        return sum >= threshold;
    }

    /**
     * Train the three counters: increment when the signature led to a
     * dead block, decrement when it led to a reuse.
     */
    void
    train(const TableIndices &idx, bool dead)
    {
        for (unsigned t = 0; t < numPredTables; ++t) {
            std::uint8_t &counter = tables[t][idx[t]];
            if (dead) {
                if (counter < counterMax)
                    ++counter;
            } else {
                if (counter > 0)
                    --counter;
            }
        }
    }

    /** Zero all counters. */
    void
    clear()
    {
        for (auto &table : tables)
            table.assign(numEntries, 0);
    }

    std::uint32_t entriesPerTable() const { return numEntries; }
    std::uint8_t counterMaximum() const { return counterMax; }

    /** Total storage in bits (for the Table I storage model). */
    std::uint64_t
    storageBits() const
    {
        unsigned bits = 0;
        std::uint8_t v = counterMax;
        while (v) {
            ++bits;
            v >>= 1;
        }
        return static_cast<std::uint64_t>(numPredTables) * numEntries * bits;
    }

  private:
    std::uint32_t numEntries;
    std::uint8_t counterMax;
    unsigned indexBits;
    std::array<std::vector<std::uint8_t>, numPredTables> tables;
    std::vector<TableIndices> indexLut; ///< per-signature index cache
};

} // namespace ghrp::predictor

#endif // GHRP_PREDICTOR_PRED_TABLES_HH

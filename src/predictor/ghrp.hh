/**
 * @file
 * Global History Reuse Prediction (GHRP) — the paper's contribution.
 *
 * GHRP predicts dead blocks in the I-cache (and dead entries in the
 * BTB) from a signature that hashes a 16-bit global path history of
 * instruction addresses with the PC of the access being predicted.
 * Three skewed tables of 2-bit counters are read, thresholded and
 * majority-voted. Predicted-dead blocks are preferred victims and
 * predicted-dead fills are bypassed.
 */

#ifndef GHRP_PREDICTOR_GHRP_HH
#define GHRP_PREDICTOR_GHRP_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "cache/lru_stack.hh"
#include "cache/replacement.hh"
#include "predictor/pred_tables.hh"
#include "util/bit_ops.hh"

namespace ghrp::predictor
{

/** Tuning knobs for GHRP (paper defaults). */
struct GhrpConfig
{
    std::uint32_t tableEntries = 4096; ///< entries per prediction table
    unsigned counterBits = 3;          ///< counter width (tuned; the
                                       ///< paper's 2-bit tables are the
                                       ///< "c2" ablation variant)
    unsigned historyBits = 16;         ///< path-history register width
    unsigned shiftPerAccess = 4;       ///< history bits shifted per access
    unsigned pcBitsPerAccess = 3;      ///< PC bits pushed per access

    std::uint32_t deadThreshold = 5;   ///< replacement vote threshold
    std::uint32_t bypassThreshold = 7; ///< bypass vote threshold (stricter)
    bool bypassEnabled = true;

    /** BTB thresholds are tuned separately (paper Section III-E). */
    std::uint32_t btbDeadThreshold = 5;
    std::uint32_t btbBypassThreshold = 8; ///< > counter max disables
    bool btbBypassEnabled = false;

    /**
     * Victim staleness guard: among predicted-dead blocks choose the
     * least recently used one, and never dead-evict the MRU block (it
     * was touched this generation — the prediction is most likely a
     * false positive). Disabled in the "no staleness guard" ablation.
     */
    bool requireStaleVictim = true;

    bool majorityVote = true;          ///< false = summation (ablation)
    std::uint32_t sumDeadThreshold = 12;   ///< used when !majorityVote
    std::uint32_t sumBypassThreshold = 18; ///< used when !majorityVote

    /**
     * Low PC bits dropped before feeding the *history* register. With
     * 4-byte instructions and 64-byte fetch blocks the informative
     * unit of the path is the block number (pc >> 6); lower bits are
     * zero for most fetch addresses and would push empty nibbles.
     */
    unsigned historyPcShift = 6;

    /**
     * Low PC bits dropped before the signature XOR. Instruction grain
     * (pc >> 2) keeps the *entry offset* into the block — whether the
     * block was entered by fall-through or as a branch target — which
     * is itself reuse-relevant context.
     */
    unsigned pcAlignShift = 2;
};

/**
 * Shared GHRP prediction state: the path history registers (speculative
 * and retired) and the three skewed counter tables. One instance is
 * shared between the I-cache replacement policy and the BTB replacement
 * policy, as in the paper.
 */
class GhrpPredictor
{
  public:
    explicit GhrpPredictor(const GhrpConfig &config = GhrpConfig{});

    // ---- path history ---------------------------------------------
    /**
     * Push one access address into the speculative history: shift left
     * by shiftPerAccess, insert pcBitsPerAccess low PC bits followed by
     * a zero bit (Algorithm 2 of the paper).
     */
    void updateSpecHistory(Addr pc);

    /** Push one retired access address into the retired history. */
    void updateRetiredHistory(Addr pc);

    /** Restore the speculative history from the retired history
     *  (branch misprediction recovery, paper Section III-F). */
    void recoverHistory();

    /** Current speculative history value. */
    std::uint32_t specHistory() const { return spec; }

    /** Current retired history value. */
    std::uint32_t retiredHistory() const { return retired; }

    // ---- prediction -----------------------------------------------
    /** Signature for an access at @p pc given the current speculative
     *  history (Algorithm 2 line 4: history XOR PC). */
    std::uint16_t signature(Addr pc) const;

    /** Stateless variant used in tests: signature for explicit history. */
    std::uint16_t signatureFor(Addr pc, std::uint32_t history) const;

    /** Dead prediction for @p sig at the replacement threshold. */
    bool predictDead(std::uint16_t sig) const;

    /** Dead prediction for @p sig at the bypass threshold. */
    bool predictBypass(std::uint16_t sig) const;

    /** Dead prediction at the BTB replacement threshold. */
    bool predictBtbDead(std::uint16_t sig) const;

    /** Dead prediction at the BTB bypass threshold. */
    bool predictBtbBypass(std::uint16_t sig) const;

    /** Train the tables: @p sig led to a dead block (eviction without
     *  reuse) or to a reuse. */
    void train(std::uint16_t sig, bool dead);

    const GhrpConfig &config() const { return cfg; }
    const PredictionTables &tables() const { return bank; }

    /** Storage of the prediction tables + history registers, in bits. */
    std::uint64_t storageBits() const;

  private:
    bool vote(std::uint16_t sig, std::uint32_t majority_threshold,
              std::uint32_t sum_threshold) const;

    GhrpConfig cfg;
    PredictionTables bank;
    std::uint32_t historyMask;
    std::uint32_t spec = 0;
    std::uint32_t retired = 0;
};

/**
 * GHRP replacement + bypass for the I-cache. Keeps the per-block
 * metadata of the paper: 16-bit signature, 1 prediction bit, and LRU
 * stack position (the fallback victim order).
 */
class GhrpReplacement : public cache::ReplacementPolicy
{
  public:
    /** @param predictor shared prediction state (not owned). */
    explicit GhrpReplacement(GhrpPredictor &predictor);

    void reset(std::uint32_t num_sets, std::uint32_t num_ways) override;
    bool shouldBypass(const cache::AccessInfo &info) override;
    std::uint32_t chooseVictim(const cache::AccessInfo &info) override;
    void onHit(const cache::AccessInfo &info, std::uint32_t way) override;
    void onFill(const cache::AccessInfo &info, std::uint32_t way) override;
    void onEvict(const cache::AccessInfo &info, std::uint32_t way,
                 Addr victim_addr) override;
    std::string name() const override { return "GHRP"; }
    bool lastVictimWasDead() const override { return lastDead; }
    cache::PredictionOutcomes predictionOutcomes() const override
    {
        return outcomes;
    }

    /** Stored signature of frame (set, way) — read by the BTB policy. */
    std::uint16_t signatureAt(std::uint32_t set, std::uint32_t way) const;

    /** Stored prediction bit of frame (set, way). */
    bool predictionAt(std::uint32_t set, std::uint32_t way) const;

    GhrpPredictor &predictor() { return pred; }

  private:
    struct Meta
    {
        std::uint16_t signature = 0;
        bool predictedDead = false;
    };

    std::size_t
    index(std::uint32_t set, std::uint32_t way) const
    {
        return static_cast<std::size_t>(set) * ways + way;
    }

    GhrpPredictor &pred;
    std::uint32_t sets = 0;
    std::uint32_t ways = 0;
    std::vector<Meta> meta;
    cache::LruStack lru;
    bool lastDead = false;
    cache::PredictionOutcomes outcomes;
};

/**
 * GHRP replacement for the BTB (paper Section III-E). Reuses the
 * I-cache prediction tables and the signature stored with the branch's
 * I-cache block; each BTB entry carries only one extra prediction bit.
 */
class GhrpBtbReplacement : public cache::ReplacementPolicy
{
  public:
    /**
     * @param predictor shared prediction state (not owned).
     * @param icache_policy the I-cache's GHRP policy, for block
     *        signatures (not owned).
     * @param icache the I-cache itself, to locate a branch's block
     *        (not owned).
     */
    GhrpBtbReplacement(GhrpPredictor &predictor,
                       GhrpReplacement &icache_policy,
                       cache::CacheModel<cache::NoPayload> &icache);

    void reset(std::uint32_t num_sets, std::uint32_t num_ways) override;
    bool shouldBypass(const cache::AccessInfo &info) override;
    std::uint32_t chooseVictim(const cache::AccessInfo &info) override;
    void onHit(const cache::AccessInfo &info, std::uint32_t way) override;
    void onFill(const cache::AccessInfo &info, std::uint32_t way) override;
    std::string name() const override { return "GHRP"; }
    bool lastVictimWasDead() const override { return lastDead; }
    cache::PredictionOutcomes predictionOutcomes() const override
    {
        return outcomes;
    }

    /** Coupling telemetry (how BTB predictions were sourced). */
    struct CouplingStats
    {
        std::uint64_t accesses = 0;       ///< onHit + onFill
        std::uint64_t residentBlock = 0;  ///< signature from I-cache meta
        std::uint64_t fallback = 0;       ///< block absent, fresh signature
        std::uint64_t predictedDead = 0;  ///< dead bit set
    };

    const CouplingStats &couplingStats() const { return coupling; }

  private:
    /** Signature for the branch at @p pc: the one stored with its
     *  I-cache block when resident, else computed from the current
     *  history. */
    std::uint16_t signatureFor(Addr pc) const;

    mutable CouplingStats coupling;

    std::size_t
    index(std::uint32_t set, std::uint32_t way) const
    {
        return static_cast<std::size_t>(set) * ways + way;
    }

    GhrpPredictor &pred;
    GhrpReplacement &icachePolicy;
    cache::CacheModel<cache::NoPayload> &icache;
    std::uint32_t sets = 0;
    std::uint32_t ways = 0;
    std::vector<std::uint8_t> deadBit;
    cache::LruStack lru;
    bool lastDead = false;
    cache::PredictionOutcomes outcomes;
};


/**
 * Stand-alone GHRP for the BTB — the design the paper tried first and
 * rejected (Section III-E: "the size of the predictor would be so
 * large that it would make more sense to simply increase the BTB
 * size"). Owns its own prediction tables, path history (updated with
 * branch PCs) and per-entry signatures. Exists as the "dedicated vs
 * shared BTB metadata" ablation.
 */
class GhrpBtbDedicated : public cache::ReplacementPolicy
{
  public:
    explicit GhrpBtbDedicated(const GhrpConfig &config = GhrpConfig{});

    void reset(std::uint32_t num_sets, std::uint32_t num_ways) override;
    bool shouldBypass(const cache::AccessInfo &info) override;
    std::uint32_t chooseVictim(const cache::AccessInfo &info) override;
    void onHit(const cache::AccessInfo &info, std::uint32_t way) override;
    void onFill(const cache::AccessInfo &info, std::uint32_t way) override;
    void onEvict(const cache::AccessInfo &info, std::uint32_t way,
                 Addr victim_addr) override;
    std::string name() const override { return "GHRP-dedicated"; }
    bool lastVictimWasDead() const override { return lastDead; }
    cache::PredictionOutcomes predictionOutcomes() const override
    {
        return outcomes;
    }

    /** Storage cost of the dedicated predictor (tables + history +
     *  per-entry signatures), in bits — the paper's size argument. */
    std::uint64_t storageBits() const;

    GhrpPredictor &predictor() { return pred; }

  private:
    struct Meta
    {
        std::uint16_t signature = 0;
        bool predictedDead = false;
    };

    std::size_t
    index(std::uint32_t set, std::uint32_t way) const
    {
        return static_cast<std::size_t>(set) * ways + way;
    }

    GhrpPredictor pred;  ///< owned, unlike the shared variant
    std::uint32_t sets = 0;
    std::uint32_t ways = 0;
    std::vector<Meta> meta;
    cache::LruStack lru;
    bool lastDead = false;
    cache::PredictionOutcomes outcomes;
};

} // namespace ghrp::predictor

#endif // GHRP_PREDICTOR_GHRP_HH

/**
 * @file
 * Sampling-based Dead Block Prediction [Khan, Tian, Jiménez — MICRO
 * 2010], adapted for instruction streams as described in Sections II-A
 * and IV-A of the GHRP paper:
 *
 *  - the sampler is as large as the cache (same sets, same ways),
 *    because set-sampling cannot generalize when the PC itself indexes
 *    the structure;
 *  - 8-bit counters instead of 2-bit;
 *  - three skewed prediction tables, aggregated by summation;
 *  - tuned dead and bypass thresholds.
 */

#ifndef GHRP_PREDICTOR_SDBP_HH
#define GHRP_PREDICTOR_SDBP_HH

#include <cstdint>
#include <vector>

#include "cache/lru_stack.hh"
#include "cache/replacement.hh"
#include "predictor/pred_tables.hh"
#include "util/bit_ops.hh"

namespace ghrp::predictor
{

/** Tuning knobs for the adapted SDBP. */
struct SdbpConfig
{
    std::uint32_t tableEntries = 4096;
    unsigned counterBits = 8;       ///< modified from the original 2
    unsigned signatureBits = 12;    ///< partial-PC signature width
    unsigned samplerTagBits = 16;   ///< partial tags in the sampler

    std::uint32_t deadThreshold = 64;    ///< counter-sum threshold
    std::uint32_t bypassThreshold = 160; ///< stricter for bypass
    bool bypassEnabled = true;

    /** Low PC bits dropped before hashing: block-number granularity,
     *  making SDBP the pure per-block dead predictor that Section II-A
     *  says PC-based prediction degenerates to for instruction
     *  streams. */
    unsigned pcAlignShift = 6;
};

/**
 * SDBP replacement + bypass. Self-contained: owns its prediction
 * tables and its full-size sampler. Works for both the I-cache and the
 * BTB (the structure's tag address and the accessing PC are supplied
 * through AccessInfo).
 */
class SdbpReplacement : public cache::ReplacementPolicy
{
  public:
    explicit SdbpReplacement(const SdbpConfig &config = SdbpConfig{});

    void reset(std::uint32_t num_sets, std::uint32_t num_ways) override;
    bool shouldBypass(const cache::AccessInfo &info) override;
    std::uint32_t chooseVictim(const cache::AccessInfo &info) override;
    void onHit(const cache::AccessInfo &info, std::uint32_t way) override;
    void onFill(const cache::AccessInfo &info, std::uint32_t way) override;
    std::string name() const override { return "SDBP"; }
    bool lastVictimWasDead() const override { return lastDead; }
    cache::PredictionOutcomes predictionOutcomes() const override
    {
        return outcomes;
    }

    const SdbpConfig &config() const { return cfg; }

    /** Partial-PC signature (exposed for tests). */
    std::uint16_t partialPc(Addr pc) const;

    /** Dead prediction at the replacement threshold (for tests). */
    bool predictDead(std::uint16_t sig) const;

    /** Storage cost of tables + sampler + per-block metadata, bits. */
    std::uint64_t storageBits() const;

  private:
    std::size_t
    index(std::uint32_t set, std::uint32_t way) const
    {
        return static_cast<std::size_t>(set) * ways + way;
    }

    /**
     * Update the (full-size) sampler for this access and train the
     * prediction tables on sampler hits and evictions. Called on every
     * access, from onHit and shouldBypass.
     */
    void sampleAccess(const cache::AccessInfo &info);

    std::uint16_t samplerTag(Addr addr) const;

    /**
     * partialPc(info.pc), folded once per access: shouldBypass,
     * sampleAccess and the fill/hit hooks all need the signature of the
     * same access, so the first caller computes it and the tick guard
     * reuses it (same pattern as the sampleAccess double-run guard).
     */
    std::uint16_t
    signatureFor(const cache::AccessInfo &info)
    {
        if (info.tick != sigTick) {
            sigTick = info.tick;
            sigCache = partialPc(info.pc);
        }
        return sigCache;
    }

    SdbpConfig cfg;
    PredictionTables bank;
    std::uint32_t sets = 0;
    std::uint32_t ways = 0;

    /** Sampler state, struct-of-arrays: one validity bitmask word per
     *  set plus contiguous per-set tag and signature rows, so the
     *  per-access sampler lookup is a tight 16-bit compare over one
     *  cache line instead of a strided struct walk. */
    std::vector<std::uint64_t> samplerValid;
    std::vector<std::uint16_t> samplerTags;
    std::vector<std::uint16_t> samplerSigs;
    cache::LruStack samplerLru;

    std::vector<std::uint8_t> deadBit;  ///< per main-cache block
    cache::LruStack lru;
    bool lastDead = false;
    cache::PredictionOutcomes outcomes;
    std::uint64_t lastSampledTick = ~std::uint64_t{0};
    std::uint64_t sigTick = ~std::uint64_t{0};
    std::uint16_t sigCache = 0;
};

} // namespace ghrp::predictor

#endif // GHRP_PREDICTOR_SDBP_HH

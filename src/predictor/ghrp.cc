#include "predictor/ghrp.hh"

#include "util/logging.hh"

namespace ghrp::predictor
{

// ------------------------------------------------------ GhrpPredictor

GhrpPredictor::GhrpPredictor(const GhrpConfig &config)
    : cfg(config), bank(cfg.tableEntries, cfg.counterBits),
      historyMask(static_cast<std::uint32_t>(mask(cfg.historyBits)))
{
    GHRP_ASSERT(cfg.historyBits >= cfg.shiftPerAccess);
    GHRP_ASSERT(cfg.pcBitsPerAccess < cfg.shiftPerAccess);
    // Signatures are at most historyBits wide (the history/PC XOR is
    // masked); cache the whole index space when it is small enough,
    // otherwise indicesFor falls back to computing live.
    if (cfg.historyBits <= 16)
        bank.enableIndexCache(1u << cfg.historyBits);
}

void
GhrpPredictor::updateSpecHistory(Addr pc)
{
    const auto pc_bits = static_cast<std::uint32_t>(
        bits(pc >> cfg.historyPcShift, 0, cfg.pcBitsPerAccess));
    // Shift in the PC bits followed by one zero bit (Algorithm 2); the
    // zero lets PC bits pass into the signature unmodified in the XOR.
    spec = ((spec << cfg.shiftPerAccess) | (pc_bits << 1)) & historyMask;
}

void
GhrpPredictor::updateRetiredHistory(Addr pc)
{
    const auto pc_bits = static_cast<std::uint32_t>(
        bits(pc >> cfg.historyPcShift, 0, cfg.pcBitsPerAccess));
    retired =
        ((retired << cfg.shiftPerAccess) | (pc_bits << 1)) & historyMask;
}

void
GhrpPredictor::recoverHistory()
{
    spec = retired;
}

std::uint16_t
GhrpPredictor::signature(Addr pc) const
{
    return signatureFor(pc, spec);
}

std::uint16_t
GhrpPredictor::signatureFor(Addr pc, std::uint32_t history) const
{
    const auto pc_hash = static_cast<std::uint32_t>(
        bits(pc >> cfg.pcAlignShift, 0, cfg.historyBits));
    return static_cast<std::uint16_t>((history ^ pc_hash) & historyMask);
}

bool
GhrpPredictor::vote(std::uint16_t sig, std::uint32_t majority_threshold,
                    std::uint32_t sum_threshold) const
{
    const TableIndices &idx = bank.indicesFor(sig);
    if (cfg.majorityVote)
        return bank.majorityVote(idx, majority_threshold);
    return bank.sumVote(idx, sum_threshold);
}

bool
GhrpPredictor::predictDead(std::uint16_t sig) const
{
    return vote(sig, cfg.deadThreshold, cfg.sumDeadThreshold);
}

bool
GhrpPredictor::predictBypass(std::uint16_t sig) const
{
    return vote(sig, cfg.bypassThreshold, cfg.sumBypassThreshold);
}

bool
GhrpPredictor::predictBtbDead(std::uint16_t sig) const
{
    return vote(sig, cfg.btbDeadThreshold, cfg.sumDeadThreshold);
}

bool
GhrpPredictor::predictBtbBypass(std::uint16_t sig) const
{
    return vote(sig, cfg.btbBypassThreshold, cfg.sumBypassThreshold);
}

void
GhrpPredictor::train(std::uint16_t sig, bool dead)
{
    bank.train(bank.indicesFor(sig), dead);
}

std::uint64_t
GhrpPredictor::storageBits() const
{
    // Tables plus the two history registers.
    return bank.storageBits() + 2ull * cfg.historyBits;
}

// ---------------------------------------------------- GhrpReplacement

GhrpReplacement::GhrpReplacement(GhrpPredictor &predictor) : pred(predictor)
{
}

void
GhrpReplacement::reset(std::uint32_t num_sets, std::uint32_t num_ways)
{
    sets = num_sets;
    ways = num_ways;
    meta.assign(static_cast<std::size_t>(sets) * ways, Meta{});
    lru.reset(sets, ways);
    outcomes = {};
}

bool
GhrpReplacement::shouldBypass(const cache::AccessInfo &info)
{
    if (!pred.config().bypassEnabled)
        return false;
    return pred.predictBypass(pred.signature(info.pc));
}

std::uint32_t
GhrpReplacement::chooseVictim(const cache::AccessInfo &info)
{
    // Prefer a predicted-dead block (Algorithm 5); fall back to LRU.
    // With the staleness guard, take the least-recent dead block and
    // never the MRU one (most likely a false positive).
    std::uint32_t best = ways;
    std::uint8_t best_pos = 0;
    for (std::uint32_t w = 0; w < ways; ++w) {
        if (!meta[index(info.set, w)].predictedDead)
            continue;
        const std::uint8_t pos = lru.positionOf(info.set, w);
        if (!pred.config().requireStaleVictim) {
            lastDead = true;
            ++outcomes.deadEvictions;
            return w;
        }
        if (pos > 0 && (best == ways || pos > best_pos)) {
            best = w;
            best_pos = pos;
        }
    }
    if (best != ways) {
        lastDead = true;
        ++outcomes.deadEvictions;
        return best;
    }
    lastDead = false;
    ++outcomes.liveEvictions;
    return lru.lruWay(info.set);
}

void
GhrpReplacement::onHit(const cache::AccessInfo &info, std::uint32_t way)
{
    Meta &m = meta[index(info.set, way)];
    // A hit on a predicted-dead block is a predictor confusion; tally
    // the stored verdict before it is overwritten below.
    if (m.predictedDead)
        ++outcomes.deadHits;
    else
        ++outcomes.liveHits;
    // The old signature led to a reuse: train toward "live" so the same
    // path predicts live in the future (Algorithm 1 lines 23-25).
    pred.train(m.signature, false);
    // Re-predict under the current history and store the new signature
    // for future training (Algorithm 1 lines 26-28).
    const std::uint16_t sig = pred.signature(info.pc);
    m.signature = sig;
    m.predictedDead = pred.predictDead(sig);
    lru.touch(info.set, way);
}

void
GhrpReplacement::onFill(const cache::AccessInfo &info, std::uint32_t way)
{
    Meta &m = meta[index(info.set, way)];
    const std::uint16_t sig = pred.signature(info.pc);
    m.signature = sig;
    m.predictedDead = pred.predictDead(sig);
    lru.touch(info.set, way);
}

void
GhrpReplacement::onEvict(const cache::AccessInfo &info, std::uint32_t way,
                         Addr victim_addr)
{
    (void)info;
    (void)victim_addr;
    // The victim's stored signature led to a dead block: train toward
    // "dead" (Algorithm 6 with isDead = true).
    pred.train(meta[index(info.set, way)].signature, true);
}

std::uint16_t
GhrpReplacement::signatureAt(std::uint32_t set, std::uint32_t way) const
{
    return meta[index(set, way)].signature;
}

bool
GhrpReplacement::predictionAt(std::uint32_t set, std::uint32_t way) const
{
    return meta[index(set, way)].predictedDead;
}

// ------------------------------------------------- GhrpBtbReplacement

GhrpBtbReplacement::GhrpBtbReplacement(
    GhrpPredictor &predictor, GhrpReplacement &icache_policy,
    cache::CacheModel<cache::NoPayload> &icache_model)
    : pred(predictor), icachePolicy(icache_policy), icache(icache_model)
{
}

void
GhrpBtbReplacement::reset(std::uint32_t num_sets, std::uint32_t num_ways)
{
    sets = num_sets;
    ways = num_ways;
    deadBit.assign(static_cast<std::size_t>(sets) * ways, 0);
    lru.reset(sets, ways);
    outcomes = {};
}

std::uint16_t
GhrpBtbReplacement::signatureFor(Addr pc) const
{
    // Use the signature recorded with the branch's I-cache block when
    // the block is resident (the paper's shared-metadata scheme); fall
    // back to a freshly computed signature otherwise (block bypassed or
    // already evicted).
    if (auto way = icache.probe(pc)) {
        ++coupling.residentBlock;
        return icachePolicy.signatureAt(icache.setIndex(pc), *way);
    }
    ++coupling.fallback;
    return pred.signature(pc);
}

bool
GhrpBtbReplacement::shouldBypass(const cache::AccessInfo &info)
{
    if (!pred.config().btbBypassEnabled)
        return false;
    return pred.predictBtbBypass(signatureFor(info.pc));
}

std::uint32_t
GhrpBtbReplacement::chooseVictim(const cache::AccessInfo &info)
{
    for (std::uint32_t w = 0; w < ways; ++w) {
        if (deadBit[index(info.set, w)]) {
            lastDead = true;
            ++outcomes.deadEvictions;
            return w;
        }
    }
    lastDead = false;
    ++outcomes.liveEvictions;
    return lru.lruWay(info.set);
}

void
GhrpBtbReplacement::onHit(const cache::AccessInfo &info, std::uint32_t way)
{
    ++coupling.accesses;
    if (deadBit[index(info.set, way)])
        ++outcomes.deadHits;
    else
        ++outcomes.liveHits;
    const bool dead = pred.predictBtbDead(signatureFor(info.pc));
    if (dead)
        ++coupling.predictedDead;
    deadBit[index(info.set, way)] = dead ? 1 : 0;
    lru.touch(info.set, way);
}

void
GhrpBtbReplacement::onFill(const cache::AccessInfo &info, std::uint32_t way)
{
    ++coupling.accesses;
    const bool dead = pred.predictBtbDead(signatureFor(info.pc));
    if (dead)
        ++coupling.predictedDead;
    deadBit[index(info.set, way)] = dead ? 1 : 0;
    lru.touch(info.set, way);
}


// -------------------------------------------------- GhrpBtbDedicated

GhrpBtbDedicated::GhrpBtbDedicated(const GhrpConfig &config)
    : pred(config)
{
}

void
GhrpBtbDedicated::reset(std::uint32_t num_sets, std::uint32_t num_ways)
{
    sets = num_sets;
    ways = num_ways;
    meta.assign(static_cast<std::size_t>(sets) * ways, Meta{});
    lru.reset(sets, ways);
    outcomes = {};
}

bool
GhrpBtbDedicated::shouldBypass(const cache::AccessInfo &info)
{
    if (!pred.config().btbBypassEnabled)
        return false;
    return pred.predictBtbBypass(pred.signature(info.pc));
}

std::uint32_t
GhrpBtbDedicated::chooseVictim(const cache::AccessInfo &info)
{
    std::uint32_t best = ways;
    std::uint8_t best_pos = 0;
    for (std::uint32_t w = 0; w < ways; ++w) {
        if (!meta[index(info.set, w)].predictedDead)
            continue;
        const std::uint8_t pos = lru.positionOf(info.set, w);
        if (!pred.config().requireStaleVictim) {
            lastDead = true;
            ++outcomes.deadEvictions;
            return w;
        }
        if (pos > 0 && (best == ways || pos > best_pos)) {
            best = w;
            best_pos = pos;
        }
    }
    if (best != ways) {
        lastDead = true;
        ++outcomes.deadEvictions;
        return best;
    }
    lastDead = false;
    ++outcomes.liveEvictions;
    return lru.lruWay(info.set);
}

void
GhrpBtbDedicated::onHit(const cache::AccessInfo &info, std::uint32_t way)
{
    Meta &m = meta[index(info.set, way)];
    if (m.predictedDead)
        ++outcomes.deadHits;
    else
        ++outcomes.liveHits;
    pred.train(m.signature, false);
    const std::uint16_t sig = pred.signature(info.pc);
    m.signature = sig;
    m.predictedDead = pred.predictBtbDead(sig);
    lru.touch(info.set, way);
    // The dedicated history is fed with branch PCs, using the same
    // update formula (Section III-E).
    pred.updateSpecHistory(info.pc);
    pred.updateRetiredHistory(info.pc);
}

void
GhrpBtbDedicated::onFill(const cache::AccessInfo &info, std::uint32_t way)
{
    Meta &m = meta[index(info.set, way)];
    const std::uint16_t sig = pred.signature(info.pc);
    m.signature = sig;
    m.predictedDead = pred.predictBtbDead(sig);
    lru.touch(info.set, way);
    pred.updateSpecHistory(info.pc);
    pred.updateRetiredHistory(info.pc);
}

void
GhrpBtbDedicated::onEvict(const cache::AccessInfo &info, std::uint32_t way,
                          Addr victim_addr)
{
    (void)info;
    (void)victim_addr;
    pred.train(meta[index(info.set, way)].signature, true);
}

std::uint64_t
GhrpBtbDedicated::storageBits() const
{
    const std::uint64_t frames = static_cast<std::uint64_t>(sets) * ways;
    // Per-entry: 16-bit signature + prediction bit + 3-bit LRU.
    return pred.storageBits() + frames * (16 + 1 + 3);
}

} // namespace ghrp::predictor

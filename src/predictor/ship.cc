#include "predictor/ship.hh"

#include "util/logging.hh"

namespace ghrp::predictor
{

ShipReplacement::ShipReplacement(const ShipConfig &config)
    : cfg(config),
      rrpvMax(static_cast<std::uint8_t>((1u << cfg.rrpvBits) - 1))
{
    GHRP_ASSERT(isPowerOf2(cfg.shctEntries));
    GHRP_ASSERT(cfg.shctBits >= 1 && cfg.shctBits <= 8);
}

void
ShipReplacement::reset(std::uint32_t num_sets, std::uint32_t num_ways)
{
    sets = num_sets;
    ways = num_ways;
    rrpv.assign(static_cast<std::size_t>(sets) * ways, rrpvMax);
    meta.assign(static_cast<std::size_t>(sets) * ways, Meta{});
    // SHCT counters start weakly re-referenced so cold signatures are
    // not all inserted distant before any training.
    shct.assign(cfg.shctEntries, 1);
}

std::uint32_t
ShipReplacement::signatureOf(Addr pc) const
{
    const std::uint64_t h =
        (pc >> cfg.pcAlignShift) * 0x9E3779B97F4A7C15ull;
    return static_cast<std::uint32_t>(
        (h >> (64 - cfg.signatureBits)) & (cfg.shctEntries - 1));
}

std::uint32_t
ShipReplacement::shctOf(std::uint32_t sig) const
{
    return shct[sig & (cfg.shctEntries - 1)];
}

std::uint32_t
ShipReplacement::chooseVictim(const cache::AccessInfo &info)
{
    for (;;) {
        for (std::uint32_t w = 0; w < ways; ++w)
            if (rrpv[index(info.set, w)] == rrpvMax)
                return w;
        for (std::uint32_t w = 0; w < ways; ++w)
            ++rrpv[index(info.set, w)];
    }
}

void
ShipReplacement::onHit(const cache::AccessInfo &info, std::uint32_t way)
{
    Meta &m = meta[index(info.set, way)];
    if (!m.wasReused) {
        // First re-reference of this generation: the signature is a
        // hitter.
        std::uint8_t &counter = shct[m.signature];
        if (counter < (1u << cfg.shctBits) - 1)
            ++counter;
        m.wasReused = true;
    }
    rrpv[index(info.set, way)] = 0;
}

void
ShipReplacement::onFill(const cache::AccessInfo &info, std::uint32_t way)
{
    Meta &m = meta[index(info.set, way)];
    m.signature = signatureOf(info.pc);
    m.wasReused = false;
    // Insertion depth steered by the SHCT: signatures never observed
    // to re-reference insert distant, everyone else long.
    rrpv[index(info.set, way)] =
        shct[m.signature] == 0 ? rrpvMax
                               : static_cast<std::uint8_t>(rrpvMax - 1);
}

void
ShipReplacement::onEvict(const cache::AccessInfo &info, std::uint32_t way,
                         Addr victim_addr)
{
    (void)info;
    (void)victim_addr;
    Meta &m = meta[index(info.set, way)];
    if (!m.wasReused) {
        std::uint8_t &counter = shct[m.signature];
        if (counter > 0)
            --counter;
    }
}

} // namespace ghrp::predictor

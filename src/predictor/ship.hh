/**
 * @file
 * SHiP — Signature-based Hit Predictor [Wu et al., MICRO 2011] —
 * adapted for instruction streams the same way Section II-A of the
 * GHRP paper adapts SDBP: set-sampling cannot generalize when the PC
 * indexes the structure, so the signature history counter table (SHCT)
 * is trained by every set, and the signature is the block-granular PC
 * hash that PC-based prediction degenerates to for I-caches.
 *
 * SHiP rides on SRRIP: the SHCT only chooses the *insertion* RRPV
 * (distant for signatures with no observed re-reference, long
 * otherwise); victim selection is standard RRIP aging.
 */

#ifndef GHRP_PREDICTOR_SHIP_HH
#define GHRP_PREDICTOR_SHIP_HH

#include <cstdint>
#include <vector>

#include "cache/replacement.hh"
#include "util/bit_ops.hh"

namespace ghrp::predictor
{

/** Tuning knobs for the adapted SHiP. */
struct ShipConfig
{
    std::uint32_t shctEntries = 16384; ///< signature counter table size
    unsigned shctBits = 3;             ///< SHCT counter width
    unsigned rrpvBits = 2;             ///< RRIP value width
    unsigned signatureBits = 14;       ///< signature hash width
    /** Low PC bits dropped before hashing (block grain, see above). */
    unsigned pcAlignShift = 6;
};

/** SHiP replacement policy (SRRIP + signature-steered insertion). */
class ShipReplacement : public cache::ReplacementPolicy
{
  public:
    explicit ShipReplacement(const ShipConfig &config = ShipConfig{});

    void reset(std::uint32_t num_sets, std::uint32_t num_ways) override;
    std::uint32_t chooseVictim(const cache::AccessInfo &info) override;
    void onHit(const cache::AccessInfo &info, std::uint32_t way) override;
    void onFill(const cache::AccessInfo &info, std::uint32_t way) override;
    void onEvict(const cache::AccessInfo &info, std::uint32_t way,
                 Addr victim_addr) override;
    std::string name() const override { return "SHiP"; }

    /** Signature for @p pc (exposed for tests). */
    std::uint32_t signatureOf(Addr pc) const;

    /** Current SHCT counter for @p sig (exposed for tests). */
    std::uint32_t shctOf(std::uint32_t sig) const;

  private:
    struct Meta
    {
        std::uint32_t signature = 0;
        bool wasReused = false;  ///< outcome bit
    };

    std::size_t
    index(std::uint32_t set, std::uint32_t way) const
    {
        return static_cast<std::size_t>(set) * ways + way;
    }

    ShipConfig cfg;
    std::uint8_t rrpvMax;
    std::uint32_t sets = 0;
    std::uint32_t ways = 0;
    std::vector<std::uint8_t> rrpv;
    std::vector<Meta> meta;
    std::vector<std::uint8_t> shct;
};

} // namespace ghrp::predictor

#endif // GHRP_PREDICTOR_SHIP_HH

#include "predictor/sdbp.hh"

#include <bit>

#include "util/logging.hh"

namespace ghrp::predictor
{

SdbpReplacement::SdbpReplacement(const SdbpConfig &config)
    : cfg(config), bank(cfg.tableEntries, cfg.counterBits)
{
    // The partial-PC signature space is only 2^signatureBits wide:
    // precompute every signature's skewed table indices once. Wider
    // (unusual) configurations fall back to live index computation.
    if (cfg.signatureBits <= 16)
        bank.enableIndexCache(1u << cfg.signatureBits);
}

void
SdbpReplacement::reset(std::uint32_t num_sets, std::uint32_t num_ways)
{
    sets = num_sets;
    ways = num_ways;
    samplerValid.assign(sets, 0);
    samplerTags.assign(static_cast<std::size_t>(sets) * ways, 0);
    samplerSigs.assign(static_cast<std::size_t>(sets) * ways, 0);
    samplerLru.reset(sets, ways);
    deadBit.assign(static_cast<std::size_t>(sets) * ways, 0);
    lru.reset(sets, ways);
    outcomes = {};
}

std::uint16_t
SdbpReplacement::partialPc(Addr pc) const
{
    return static_cast<std::uint16_t>(
        foldXor(pc >> cfg.pcAlignShift, cfg.signatureBits));
}

std::uint16_t
SdbpReplacement::samplerTag(Addr addr) const
{
    return static_cast<std::uint16_t>(
        foldXor(addr, cfg.samplerTagBits));
}

bool
SdbpReplacement::predictDead(std::uint16_t sig) const
{
    return bank.sumVote(bank.indicesFor(sig), cfg.deadThreshold);
}

void
SdbpReplacement::sampleAccess(const cache::AccessInfo &info)
{
    // Guard against double-sampling one access: shouldBypass and the
    // fill hooks may both run for the same tick.
    if (info.tick == lastSampledTick)
        return;
    lastSampledTick = info.tick;

    const std::uint16_t tag = samplerTag(info.address);
    const std::uint16_t sig = signatureFor(info);
    const std::uint32_t set = info.set;
    const std::size_t row = index(set, 0);
    std::uint16_t *tags_row = &samplerTags[row];
    std::uint16_t *sigs_row = &samplerSigs[row];
    const std::uint64_t valid = samplerValid[set];

    // Sampler lookup: a partial tag can only occupy one way (installs
    // happen on misses only), so the scan order is immaterial.
    for (std::uint32_t w = 0; w < ways; ++w) {
        if (tags_row[w] == tag && ((valid >> w) & 1u) != 0) {
            // Reuse: the signature of the previous access to this
            // block did not lead to a dead block.
            bank.train(bank.indicesFor(sigs_row[w]), false);
            sigs_row[w] = sig;
            samplerLru.touch(set, w);
            return;
        }
    }

    // Sampler miss: victimize the lowest invalid way or the
    // sampler-LRU one, training "dead" for the victim's last
    // signature.
    std::uint32_t victim;
    const std::uint64_t invalid = ~valid & mask(ways);
    if (invalid != 0) {
        victim = static_cast<std::uint32_t>(std::countr_zero(invalid));
    } else {
        victim = samplerLru.lruWay(set);
        bank.train(bank.indicesFor(sigs_row[victim]), true);
    }
    samplerValid[set] = valid | (std::uint64_t{1} << victim);
    tags_row[victim] = tag;
    sigs_row[victim] = sig;
    samplerLru.touch(set, victim);
}

bool
SdbpReplacement::shouldBypass(const cache::AccessInfo &info)
{
    sampleAccess(info);
    if (!cfg.bypassEnabled)
        return false;
    return bank.sumVote(bank.indicesFor(signatureFor(info)),
                        cfg.bypassThreshold);
}

std::uint32_t
SdbpReplacement::chooseVictim(const cache::AccessInfo &info)
{
    for (std::uint32_t w = 0; w < ways; ++w) {
        if (deadBit[index(info.set, w)]) {
            lastDead = true;
            ++outcomes.deadEvictions;
            return w;
        }
    }
    lastDead = false;
    ++outcomes.liveEvictions;
    return lru.lruWay(info.set);
}

void
SdbpReplacement::onHit(const cache::AccessInfo &info, std::uint32_t way)
{
    sampleAccess(info);
    if (deadBit[index(info.set, way)])
        ++outcomes.deadHits;
    else
        ++outcomes.liveHits;
    deadBit[index(info.set, way)] =
        predictDead(signatureFor(info)) ? 1 : 0;
    lru.touch(info.set, way);
}

void
SdbpReplacement::onFill(const cache::AccessInfo &info, std::uint32_t way)
{
    deadBit[index(info.set, way)] =
        predictDead(signatureFor(info)) ? 1 : 0;
    lru.touch(info.set, way);
}

std::uint64_t
SdbpReplacement::storageBits() const
{
    const std::uint64_t frames = static_cast<std::uint64_t>(sets) * ways;
    // Sampler entry: valid + prediction + 3 LRU bits + signature + tag.
    const std::uint64_t sampler_bits =
        frames * (1 + 1 + 3 + cfg.signatureBits + cfg.samplerTagBits);
    // Main-cache metadata: prediction bit + 3 LRU bits per block.
    const std::uint64_t block_bits = frames * (1 + 3);
    return bank.storageBits() + sampler_bits + block_bits;
}

} // namespace ghrp::predictor

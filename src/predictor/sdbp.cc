#include "predictor/sdbp.hh"

#include "util/logging.hh"

namespace ghrp::predictor
{

SdbpReplacement::SdbpReplacement(const SdbpConfig &config)
    : cfg(config), bank(cfg.tableEntries, cfg.counterBits)
{
    // The partial-PC signature space is only 2^signatureBits wide:
    // precompute every signature's skewed table indices once. Wider
    // (unusual) configurations fall back to live index computation.
    if (cfg.signatureBits <= 16)
        bank.enableIndexCache(1u << cfg.signatureBits);
}

void
SdbpReplacement::reset(std::uint32_t num_sets, std::uint32_t num_ways)
{
    sets = num_sets;
    ways = num_ways;
    sampler.assign(static_cast<std::size_t>(sets) * ways, SamplerEntry{});
    samplerLru.reset(sets, ways);
    deadBit.assign(static_cast<std::size_t>(sets) * ways, 0);
    lru.reset(sets, ways);
}

std::uint16_t
SdbpReplacement::partialPc(Addr pc) const
{
    return static_cast<std::uint16_t>(
        foldXor(pc >> cfg.pcAlignShift, cfg.signatureBits));
}

std::uint16_t
SdbpReplacement::samplerTag(Addr addr) const
{
    return static_cast<std::uint16_t>(
        foldXor(addr, cfg.samplerTagBits));
}

bool
SdbpReplacement::predictDead(std::uint16_t sig) const
{
    return bank.sumVote(bank.indicesFor(sig), cfg.deadThreshold);
}

void
SdbpReplacement::sampleAccess(const cache::AccessInfo &info)
{
    // Guard against double-sampling one access: shouldBypass and the
    // fill hooks may both run for the same tick.
    if (info.tick == lastSampledTick)
        return;
    lastSampledTick = info.tick;

    const std::uint16_t tag = samplerTag(info.address);
    const std::uint16_t sig = partialPc(info.pc);
    const std::uint32_t set = info.set;

    // Sampler lookup.
    for (std::uint32_t w = 0; w < ways; ++w) {
        SamplerEntry &entry = sampler[index(set, w)];
        if (entry.valid && entry.tag == tag) {
            // Reuse: the signature of the previous access to this
            // block did not lead to a dead block.
            bank.train(bank.indicesFor(entry.signature), false);
            entry.signature = sig;
            samplerLru.touch(set, w);
            return;
        }
    }

    // Sampler miss: victimize an invalid entry or the sampler-LRU one,
    // training "dead" for the victim's last signature.
    std::uint32_t victim = ways;
    for (std::uint32_t w = 0; w < ways; ++w) {
        if (!sampler[index(set, w)].valid) {
            victim = w;
            break;
        }
    }
    if (victim == ways) {
        victim = samplerLru.lruWay(set);
        bank.train(bank.indicesFor(sampler[index(set, victim)].signature),
                   true);
    }
    SamplerEntry &entry = sampler[index(set, victim)];
    entry.valid = true;
    entry.tag = tag;
    entry.signature = sig;
    samplerLru.touch(set, victim);
}

bool
SdbpReplacement::shouldBypass(const cache::AccessInfo &info)
{
    sampleAccess(info);
    if (!cfg.bypassEnabled)
        return false;
    return bank.sumVote(bank.indicesFor(partialPc(info.pc)),
                        cfg.bypassThreshold);
}

std::uint32_t
SdbpReplacement::chooseVictim(const cache::AccessInfo &info)
{
    for (std::uint32_t w = 0; w < ways; ++w) {
        if (deadBit[index(info.set, w)]) {
            lastDead = true;
            return w;
        }
    }
    lastDead = false;
    return lru.lruWay(info.set);
}

void
SdbpReplacement::onHit(const cache::AccessInfo &info, std::uint32_t way)
{
    sampleAccess(info);
    deadBit[index(info.set, way)] = predictDead(partialPc(info.pc)) ? 1 : 0;
    lru.touch(info.set, way);
}

void
SdbpReplacement::onFill(const cache::AccessInfo &info, std::uint32_t way)
{
    deadBit[index(info.set, way)] = predictDead(partialPc(info.pc)) ? 1 : 0;
    lru.touch(info.set, way);
}

std::uint64_t
SdbpReplacement::storageBits() const
{
    const std::uint64_t frames = static_cast<std::uint64_t>(sets) * ways;
    // Sampler entry: valid + prediction + 3 LRU bits + signature + tag.
    const std::uint64_t sampler_bits =
        frames * (1 + 1 + 3 + cfg.signatureBits + cfg.samplerTagBits);
    // Main-cache metadata: prediction bit + 3 LRU bits per block.
    const std::uint64_t block_bits = frames * (1 + 3);
    return bank.storageBits() + sampler_bits + block_bits;
}

} // namespace ghrp::predictor

#include "cache/basic_policies.hh"

#include "util/logging.hh"

namespace ghrp::cache
{

// ---------------------------------------------------------------- LRU

void
LruPolicy::reset(std::uint32_t num_sets, std::uint32_t num_ways)
{
    stack.reset(num_sets, num_ways);
}

std::uint32_t
LruPolicy::chooseVictim(const AccessInfo &info)
{
    return stack.lruWay(info.set);
}

void
LruPolicy::onHit(const AccessInfo &info, std::uint32_t way)
{
    stack.touch(info.set, way);
}

void
LruPolicy::onFill(const AccessInfo &info, std::uint32_t way)
{
    stack.touch(info.set, way);
}

// ------------------------------------------------------------- Random

RandomPolicy::RandomPolicy(std::uint64_t seed) : rng(seed)
{
}

void
RandomPolicy::reset(std::uint32_t num_sets, std::uint32_t num_ways)
{
    (void)num_sets;
    ways = num_ways;
}

std::uint32_t
RandomPolicy::chooseVictim(const AccessInfo &info)
{
    (void)info;
    return static_cast<std::uint32_t>(rng.nextBounded(ways));
}

void
RandomPolicy::onHit(const AccessInfo &info, std::uint32_t way)
{
    (void)info;
    (void)way;
}

void
RandomPolicy::onFill(const AccessInfo &info, std::uint32_t way)
{
    (void)info;
    (void)way;
}

// --------------------------------------------------------------- FIFO

void
FifoPolicy::reset(std::uint32_t num_sets, std::uint32_t num_ways)
{
    sets = num_sets;
    ways = num_ways;
    nextOut.assign(sets, 0);
}

std::uint32_t
FifoPolicy::chooseVictim(const AccessInfo &info)
{
    return nextOut[info.set];
}

void
FifoPolicy::onHit(const AccessInfo &info, std::uint32_t way)
{
    (void)info;
    (void)way;
}

void
FifoPolicy::onFill(const AccessInfo &info, std::uint32_t way)
{
    // Round-robin through the ways: the way just filled is the newest,
    // so the cursor advances past it.
    if (way == nextOut[info.set])
        nextOut[info.set] = (way + 1) % ways;
}

// -------------------------------------------------------------- SRRIP

SrripPolicy::SrripPolicy(unsigned rrpv_bits)
    : rrpvMax(static_cast<std::uint8_t>((1u << rrpv_bits) - 1))
{
    GHRP_ASSERT(rrpv_bits >= 1 && rrpv_bits <= 8);
}

void
SrripPolicy::reset(std::uint32_t num_sets, std::uint32_t num_ways)
{
    sets = num_sets;
    ways = num_ways;
    rrpv.assign(static_cast<std::size_t>(sets) * ways, rrpvMax);
}

std::uint32_t
SrripPolicy::chooseVictim(const AccessInfo &info)
{
    for (;;) {
        for (std::uint32_t w = 0; w < ways; ++w)
            if (rrpv[index(info.set, w)] == rrpvMax)
                return w;
        // Age the whole set until a distant block appears.
        for (std::uint32_t w = 0; w < ways; ++w)
            ++rrpv[index(info.set, w)];
    }
}

void
SrripPolicy::onHit(const AccessInfo &info, std::uint32_t way)
{
    // Hit priority: promote to near-immediate re-reference.
    rrpv[index(info.set, way)] = 0;
}

void
SrripPolicy::onFill(const AccessInfo &info, std::uint32_t way)
{
    rrpv[index(info.set, way)] = insertionRrpv(info);
}

std::uint8_t
SrripPolicy::insertionRrpv(const AccessInfo &info)
{
    (void)info;
    // "Long" re-reference interval: max - 1.
    return static_cast<std::uint8_t>(rrpvMax - 1);
}

// -------------------------------------------------------------- BRRIP

BrripPolicy::BrripPolicy(unsigned rrpv_bits, double long_prob,
                         std::uint64_t seed)
    : SrripPolicy(rrpv_bits), longProb(long_prob), rng(seed)
{
}

std::uint8_t
BrripPolicy::insertionRrpv(const AccessInfo &info)
{
    (void)info;
    if (rng.nextBool(longProb))
        return static_cast<std::uint8_t>(rrpvMax - 1);
    return rrpvMax;
}

// -------------------------------------------------------------- DRRIP

DrripPolicy::DrripPolicy(unsigned rrpv_bits, std::uint32_t duel_sets,
                         std::uint64_t seed)
    : SrripPolicy(rrpv_bits), duelSets(duel_sets), rng(seed)
{
}

void
DrripPolicy::reset(std::uint32_t num_sets, std::uint32_t num_ways)
{
    SrripPolicy::reset(num_sets, num_ways);
    roles.assign(num_sets, SetRole::Follower);
    // Interleave leader sets through the index space.
    const std::uint32_t leaders =
        duelSets * 2 <= num_sets ? duelSets : num_sets / 2;
    for (std::uint32_t i = 0; i < leaders; ++i) {
        const std::uint32_t stride = num_sets / (leaders * 2);
        const std::uint32_t base = stride > 0 ? stride : 1;
        const std::uint32_t s1 = (2 * i) * base % num_sets;
        const std::uint32_t s2 = (2 * i + 1) * base % num_sets;
        roles[s1] = SetRole::LeaderSrrip;
        roles[s2] = SetRole::LeaderBrrip;
    }
    psel = 0;
}

bool
DrripPolicy::shouldBypass(const AccessInfo &info)
{
    // DRRIP never bypasses; this hook is only used to observe misses in
    // the leader sets and steer PSEL (misses in an SRRIP leader vote
    // for BRRIP and vice versa).
    if (info.set < roles.size()) {
        if (roles[info.set] == SetRole::LeaderSrrip && psel > -pselMax)
            --psel;
        else if (roles[info.set] == SetRole::LeaderBrrip && psel < pselMax)
            ++psel;
    }
    return false;
}

std::uint8_t
DrripPolicy::insertionRrpv(const AccessInfo &info)
{
    bool use_srrip;
    switch (info.set < roles.size() ? roles[info.set]
                                    : SetRole::Follower) {
      case SetRole::LeaderSrrip:
        use_srrip = true;
        break;
      case SetRole::LeaderBrrip:
        use_srrip = false;
        break;
      case SetRole::Follower:
      default:
        use_srrip = psel >= 0;
        break;
    }
    if (use_srrip)
        return static_cast<std::uint8_t>(rrpvMax - 1);
    if (rng.nextBool(longProb))
        return static_cast<std::uint8_t>(rrpvMax - 1);
    return rrpvMax;
}

} // namespace ghrp::cache

/**
 * @file
 * Replacement-policy interface shared by the I-cache and the BTB.
 *
 * The cache model owns tags and validity; a policy owns whatever
 * replacement metadata it needs (LRU stacks, RRPVs, signatures,
 * prediction bits). The cache drives the policy through the hooks
 * below. Bypass-capable policies additionally veto fills.
 */

#ifndef GHRP_CACHE_REPLACEMENT_HH
#define GHRP_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <string>

#include "util/bit_ops.hh"

namespace ghrp::cache
{

/** Context for one access, passed to every policy hook. */
struct AccessInfo
{
    Addr address = 0;   ///< tag-granularity address (block addr / branch PC)
    Addr pc = 0;        ///< address of the accessing instruction stream
    std::uint32_t set = 0;
    std::uint64_t tick = 0; ///< global access counter
};

/**
 * Running tally of a dead-block predictor's verdicts against ground
 * truth, accumulated since reset(). A hit on a predicted-dead block is
 * a confusion (the predictor would have sacrificed a live block); an
 * eviction of a predicted-dead block is the prediction paying off.
 * Predictor-less policies report all zeros.
 */
struct PredictionOutcomes
{
    std::uint64_t deadHits = 0;       ///< hits on predicted-dead blocks
    std::uint64_t liveHits = 0;       ///< hits on predicted-live blocks
    std::uint64_t deadEvictions = 0;  ///< victims chosen as predicted dead
    std::uint64_t liveEvictions = 0;  ///< victims chosen by recency fallback
};

/**
 * Abstract replacement policy. One instance manages one structure;
 * reset() is called by the owning cache with the final geometry before
 * any other hook.
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** Size internal metadata for @p num_sets x @p num_ways frames. */
    virtual void reset(std::uint32_t num_sets, std::uint32_t num_ways) = 0;

    /**
     * Decide whether a missing block should bypass the cache entirely
     * (no fill, no victim). Called on misses before victim selection.
     */
    virtual bool
    shouldBypass(const AccessInfo &info)
    {
        (void)info;
        return false;
    }

    /**
     * Choose a victim way in info.set. All ways are valid (the cache
     * fills invalid ways itself).
     */
    virtual std::uint32_t chooseVictim(const AccessInfo &info) = 0;

    /** Block in (info.set, way) was hit. */
    virtual void onHit(const AccessInfo &info, std::uint32_t way) = 0;

    /** Block in (info.set, way) is being filled with info.address. */
    virtual void onFill(const AccessInfo &info, std::uint32_t way) = 0;

    /**
     * Valid block in (info.set, way) is being evicted (before the
     * corresponding onFill). @p victim_addr is the evicted tag address.
     */
    virtual void
    onEvict(const AccessInfo &info, std::uint32_t way, Addr victim_addr)
    {
        (void)info;
        (void)way;
        (void)victim_addr;
    }

    /** Policy display name ("LRU", "GHRP", ...). */
    virtual std::string name() const = 0;

    /**
     * True when the last chooseVictim() picked a predicted-dead block
     * (rather than falling back to recency order). Used for the
     * dead-eviction statistics; base policies return false.
     */
    virtual bool lastVictimWasDead() const { return false; }

    /**
     * Dead-block prediction outcome counters accumulated since
     * reset(), feeding the phase flight recorder's per-window
     * predictor-accuracy view. Base policies carry no predictor and
     * report zeros.
     */
    virtual PredictionOutcomes predictionOutcomes() const { return {}; }
};

} // namespace ghrp::cache

#endif // GHRP_CACHE_REPLACEMENT_HH

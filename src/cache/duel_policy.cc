#include "cache/duel_policy.hh"

#include <utility>

#include "util/logging.hh"

namespace ghrp::cache
{

namespace
{

/** Trajectory ring capacity; beyond it the stride doubles and every
 *  other retained sample is dropped, keeping the buffer bounded while
 *  staying a deterministic function of the access stream. */
constexpr std::size_t kTrajectoryCapacity = 128;

} // anonymous namespace

DuelPolicy::DuelPolicy(std::unique_ptr<ReplacementPolicy> a,
                       std::unique_ptr<ReplacementPolicy> b,
                       Params params, std::string label)
    : a(std::move(a)), b(std::move(b)), params(params),
      label(std::move(label))
{
    GHRP_ASSERT(this->a && this->b);
    GHRP_ASSERT(this->params.pselMax > 0);
    GHRP_ASSERT(this->params.leaders > 0);
}

void
DuelPolicy::reset(std::uint32_t num_sets, std::uint32_t num_ways)
{
    a->reset(num_sets, num_ways);
    b->reset(num_sets, num_ways);

    // Leader assignment mirrors DrripPolicy::reset so the dueling
    // geometry matches the in-repo DRRIP precedent exactly:
    // interleave A/B leader pairs through the index space.
    roles.assign(num_sets, SetRole::Follower);
    const std::uint32_t leaders =
        params.leaders * 2 <= num_sets ? params.leaders : num_sets / 2;
    for (std::uint32_t i = 0; i < leaders; ++i) {
        const std::uint32_t stride = num_sets / (leaders * 2);
        const std::uint32_t base = stride > 0 ? stride : 1;
        const std::uint32_t s1 = (2 * i) * base % num_sets;
        const std::uint32_t s2 = (2 * i + 1) * base % num_sets;
        roles[s1] = SetRole::LeaderA;
        roles[s2] = SetRole::LeaderB;
    }

    pselValue = 0;
    lastDead = false;
    leaderMissesA = 0;
    leaderMissesB = 0;
    winnerFlips = 0;
    sampleStride = 1;
    sinceSample = 0;
    trajectory.clear();
}

DuelPolicy::SetRole
DuelPolicy::role(std::uint32_t set) const
{
    return set < roles.size() ? roles[set] : SetRole::Follower;
}

ReplacementPolicy &
DuelPolicy::owner(const AccessInfo &info) const
{
    switch (role(info.set)) {
      case SetRole::LeaderA:
        return *a;
      case SetRole::LeaderB:
        return *b;
      case SetRole::Follower:
        break;
    }
    return pselValue >= 0 ? *a : *b;
}

bool
DuelPolicy::shouldBypass(const AccessInfo &info)
{
    // Called on every miss before victim selection — the same
    // observation point DRRIP uses to steer its PSEL. A miss in an
    // A-leader set is a vote against A (and vice versa); follower
    // misses carry no signal.
    const bool was_a = pselValue >= 0;
    switch (role(info.set)) {
      case SetRole::LeaderA:
        ++leaderMissesA;
        if (pselValue > -params.pselMax)
            --pselValue;
        break;
      case SetRole::LeaderB:
        ++leaderMissesB;
        if (pselValue < params.pselMax)
            ++pselValue;
        break;
      case SetRole::Follower:
        break;
    }
    if (role(info.set) != SetRole::Follower) {
        if ((pselValue >= 0) != was_a)
            ++winnerFlips;
        if (++sinceSample >= sampleStride) {
            sinceSample = 0;
            trajectory.push_back(pselValue);
            if (trajectory.size() > kTrajectoryCapacity) {
                // Decimate in place: keep every other sample and
                // double the stride, preserving the full time span.
                std::size_t w = 0;
                for (std::size_t r = 0; r < trajectory.size(); r += 2)
                    trajectory[w++] = trajectory[r];
                trajectory.resize(w);
                sampleStride *= 2;
            }
        }
    }

    // Both constituents observe the miss (SDBP trains its sampler
    // here; DRRIP steers its own internal PSEL), then the set owner's
    // verdict decides whether the fill is vetoed.
    const bool bypass_a = a->shouldBypass(info);
    const bool bypass_b = b->shouldBypass(info);
    return &owner(info) == a.get() ? bypass_a : bypass_b;
}

std::uint32_t
DuelPolicy::chooseVictim(const AccessInfo &info)
{
    // Both constituents run their victim scan — SRRIP-family policies
    // age RRPVs inside chooseVictim, so skipping the loser here would
    // desynchronize its metadata from the access stream.
    const std::uint32_t victim_a = a->chooseVictim(info);
    const std::uint32_t victim_b = b->chooseVictim(info);
    if (&owner(info) == a.get()) {
        lastDead = a->lastVictimWasDead();
        return victim_a;
    }
    lastDead = b->lastVictimWasDead();
    return victim_b;
}

void
DuelPolicy::onHit(const AccessInfo &info, std::uint32_t way)
{
    a->onHit(info, way);
    b->onHit(info, way);
}

void
DuelPolicy::onFill(const AccessInfo &info, std::uint32_t way)
{
    a->onFill(info, way);
    b->onFill(info, way);
}

void
DuelPolicy::onEvict(const AccessInfo &info, std::uint32_t way,
                    Addr victim_addr)
{
    a->onEvict(info, way, victim_addr);
    b->onEvict(info, way, victim_addr);
}

PredictionOutcomes
DuelPolicy::predictionOutcomes() const
{
    // Both constituents predict on every access, so the duel reports
    // their combined confusion counts; the follower-set owner split is
    // already visible through the PSEL trajectory.
    const PredictionOutcomes oa = a->predictionOutcomes();
    const PredictionOutcomes ob = b->predictionOutcomes();
    PredictionOutcomes out;
    out.deadHits = oa.deadHits + ob.deadHits;
    out.liveHits = oa.liveHits + ob.liveHits;
    out.deadEvictions = oa.deadEvictions + ob.deadEvictions;
    out.liveEvictions = oa.liveEvictions + ob.liveEvictions;
    return out;
}

DuelTelemetry
DuelPolicy::telemetry() const
{
    DuelTelemetry t;
    t.finalPsel = pselValue;
    t.leaderMissesA = leaderMissesA;
    t.leaderMissesB = leaderMissesB;
    t.winnerFlips = winnerFlips;
    t.sampleStride = sampleStride;
    t.trajectory = trajectory;
    return t;
}

} // namespace ghrp::cache

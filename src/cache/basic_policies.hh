/**
 * @file
 * Baseline replacement policies: LRU, Random, FIFO, and the RRIP
 * family (SRRIP from the paper, plus BRRIP/DRRIP as extensions).
 */

#ifndef GHRP_CACHE_BASIC_POLICIES_HH
#define GHRP_CACHE_BASIC_POLICIES_HH

#include <cstdint>
#include <vector>

#include "cache/lru_stack.hh"
#include "cache/replacement.hh"
#include "util/random.hh"

namespace ghrp::cache
{

/** True least-recently-used replacement. */
class LruPolicy : public ReplacementPolicy
{
  public:
    void reset(std::uint32_t num_sets, std::uint32_t num_ways) override;
    std::uint32_t chooseVictim(const AccessInfo &info) override;
    void onHit(const AccessInfo &info, std::uint32_t way) override;
    void onFill(const AccessInfo &info, std::uint32_t way) override;
    std::string name() const override { return "LRU"; }

  private:
    LruStack stack;
};

/** Uniform random victim selection. */
class RandomPolicy : public ReplacementPolicy
{
  public:
    explicit RandomPolicy(std::uint64_t seed = 0xC0FFEE);
    void reset(std::uint32_t num_sets, std::uint32_t num_ways) override;
    std::uint32_t chooseVictim(const AccessInfo &info) override;
    void onHit(const AccessInfo &info, std::uint32_t way) override;
    void onFill(const AccessInfo &info, std::uint32_t way) override;
    std::string name() const override { return "Random"; }

  private:
    Rng rng;
    std::uint32_t ways = 0;
};

/** First-in first-out: evicts the oldest fill regardless of hits. */
class FifoPolicy : public ReplacementPolicy
{
  public:
    void reset(std::uint32_t num_sets, std::uint32_t num_ways) override;
    std::uint32_t chooseVictim(const AccessInfo &info) override;
    void onHit(const AccessInfo &info, std::uint32_t way) override;
    void onFill(const AccessInfo &info, std::uint32_t way) override;
    std::string name() const override { return "FIFO"; }

  private:
    std::uint32_t sets = 0;
    std::uint32_t ways = 0;
    std::vector<std::uint32_t> nextOut;  ///< per-set round-robin cursor
};

/**
 * Static Re-reference Interval Prediction [Jaleel et al., ISCA 2010].
 *
 * Each block carries an M-bit re-reference prediction value (RRPV).
 * Fills insert with RRPV = max-1 ("long"); hits promote to 0
 * (hit-priority variant); the victim is a block with RRPV = max, aging
 * all blocks until one exists.
 */
class SrripPolicy : public ReplacementPolicy
{
  public:
    /** @param rrpv_bits width of the RRPV field (2 in the paper). */
    explicit SrripPolicy(unsigned rrpv_bits = 2);

    void reset(std::uint32_t num_sets, std::uint32_t num_ways) override;
    std::uint32_t chooseVictim(const AccessInfo &info) override;
    void onHit(const AccessInfo &info, std::uint32_t way) override;
    void onFill(const AccessInfo &info, std::uint32_t way) override;
    std::string name() const override { return "SRRIP"; }

  protected:
    std::size_t
    index(std::uint32_t set, std::uint32_t way) const
    {
        return static_cast<std::size_t>(set) * ways + way;
    }

    /** Insertion RRPV for a fill (overridden by BRRIP). */
    virtual std::uint8_t insertionRrpv(const AccessInfo &info);

    std::uint8_t rrpvMax;
    std::uint32_t sets = 0;
    std::uint32_t ways = 0;
    std::vector<std::uint8_t> rrpv;
};

/**
 * Bimodal RRIP: inserts at max ("distant") most of the time and at
 * max-1 with low probability, which resists thrashing.
 */
class BrripPolicy : public SrripPolicy
{
  public:
    explicit BrripPolicy(unsigned rrpv_bits = 2, double long_prob = 1.0 / 32,
                         std::uint64_t seed = 0xB12F00D);
    std::string name() const override { return "BRRIP"; }

  protected:
    std::uint8_t insertionRrpv(const AccessInfo &info) override;

  private:
    double longProb;
    Rng rng;
};

/**
 * Dynamic RRIP: set-duels SRRIP against BRRIP with a PSEL counter and
 * follows the winner in the follower sets.
 */
class DrripPolicy : public SrripPolicy
{
  public:
    explicit DrripPolicy(unsigned rrpv_bits = 2,
                         std::uint32_t duel_sets = 32,
                         std::uint64_t seed = 0xD41113);
    void reset(std::uint32_t num_sets, std::uint32_t num_ways) override;
    std::string name() const override { return "DRRIP"; }

    /** The cache reports misses so the duel can be scored. */
    bool shouldBypass(const AccessInfo &info) override;

  protected:
    std::uint8_t insertionRrpv(const AccessInfo &info) override;

  private:
    enum class SetRole : std::uint8_t { Follower, LeaderSrrip, LeaderBrrip };

    std::uint32_t duelSets;
    double longProb = 1.0 / 32;
    Rng rng;
    std::vector<SetRole> roles;
    std::int32_t psel = 0;           ///< >0 favors SRRIP
    std::int32_t pselMax = 1023;
};

} // namespace ghrp::cache

#endif // GHRP_CACHE_BASIC_POLICIES_HH

#include "cache/tag_search.hh"

#include <cstdlib>

#if GHRP_TAG_SEARCH_HAVE_AVX2
#include <immintrin.h>
#endif

namespace ghrp::cache
{

std::uint32_t
findTagWayScalar(const Addr *tags, std::uint64_t valid_mask,
                 std::uint32_t ways, Addr tag)
{
    for (std::uint32_t w = 0; w < ways; ++w)
        if (((valid_mask >> w) & 1u) && tags[w] == tag)
            return w;
    return ways;
}

#if GHRP_TAG_SEARCH_HAVE_AVX2

__attribute__((target("avx2"))) std::uint32_t
findTagWayAvx2(const Addr *tags, std::uint64_t valid_mask,
               std::uint32_t ways, Addr tag)
{
    const __m256i needle =
        _mm256_set1_epi64x(static_cast<long long>(tag));
    std::uint64_t match = 0;
    std::uint32_t w = 0;
    for (; w + 4 <= ways; w += 4) {
        const __m256i row = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(tags + w));
        const int lanes = _mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(row, needle)));
        match |= static_cast<std::uint64_t>(lanes) << w;
    }
    for (; w < ways; ++w)
        if (tags[w] == tag)
            match |= std::uint64_t{1} << w;
    match &= valid_mask;
    return match ? static_cast<std::uint32_t>(std::countr_zero(match))
                 : ways;
}

#endif // GHRP_TAG_SEARCH_HAVE_AVX2

bool
tagSearchAvx2Supported()
{
#if GHRP_TAG_SEARCH_HAVE_AVX2
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

TagSearchFn
resolveTagSearch()
{
#if GHRP_TAG_SEARCH_HAVE_AVX2
    const char *off = std::getenv("GHRP_NO_AVX2");
    if ((off == nullptr || *off == '\0') && tagSearchAvx2Supported())
        return &findTagWayAvx2;
#endif
    return &findTagWayScalar;
}

TagSearchFn
activeTagSearch()
{
    static const TagSearchFn fn = resolveTagSearch();
    return fn;
}

const char *
tagSearchBackend()
{
#if GHRP_TAG_SEARCH_HAVE_AVX2
    return activeTagSearch() == &findTagWayAvx2 ? "avx2" : "scalar";
#else
    return "scalar";
#endif
}

} // namespace ghrp::cache

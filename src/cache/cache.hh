/**
 * @file
 * Generic set-associative tag store with pluggable replacement and an
 * optional payload per block. The I-cache instantiates it with no
 * payload; the BTB instantiates it with a branch-target payload.
 */

#ifndef GHRP_CACHE_CACHE_HH
#define GHRP_CACHE_CACHE_HH

#include <memory>
#include <optional>
#include <vector>

#include "cache/config.hh"
#include "cache/replacement.hh"
#include "stats/efficiency.hh"
#include "stats/mpki.hh"
#include "util/bit_ops.hh"
#include "util/logging.hh"

namespace ghrp::cache
{

/** Result of one cache access. */
struct AccessOutcome
{
    bool hit = false;
    bool bypassed = false;      ///< miss whose fill was vetoed
    bool evicted = false;       ///< a valid block was displaced
    bool victimWasDead = false; ///< victim chosen by dead prediction
    Addr victimAddress = 0;
    std::uint32_t set = 0;
    std::uint32_t way = 0;      ///< hit way or fill way (if !bypassed)
};

/** Empty payload type for structures that only need tags (I-cache). */
struct NoPayload
{
};

/**
 * Set-associative cache model.
 *
 * @tparam Payload per-block payload stored alongside the tag (e.g. the
 *         branch target for a BTB).
 */
template <typename Payload = NoPayload>
class CacheModel
{
  public:
    /**
     * @param config geometry.
     * @param policy replacement policy instance (owned).
     */
    CacheModel(const CacheConfig &config,
               std::unique_ptr<ReplacementPolicy> policy)
        : cfg(config), repl(std::move(policy)), sets(cfg.numSets()),
          ways(cfg.assoc), blockShift(floorLog2(cfg.blockBytes)),
          lines(static_cast<std::size_t>(sets) * ways)
    {
        GHRP_ASSERT(repl != nullptr);
        GHRP_ASSERT(isPowerOf2(sets));
        GHRP_ASSERT(isPowerOf2(cfg.blockBytes));
        repl->reset(sets, ways);
    }

    /** Block-granular address of @p addr. */
    Addr blockAddress(Addr addr) const { return addr >> blockShift; }

    /** Set index for @p addr (modulo indexing, as in the paper). */
    std::uint32_t
    setIndex(Addr addr) const
    {
        return static_cast<std::uint32_t>(blockAddress(addr) & (sets - 1));
    }

    /**
     * Perform one access.
     *
     * @param addr accessed address (any byte inside the block).
     * @param pc accessing instruction address (policy context).
     * @param payload payload to install on a fill / update on a hit.
     */
    AccessOutcome
    access(Addr addr, Addr pc, const Payload &payload = Payload{})
    {
        const std::uint64_t tick = ++tickCount;
        const Addr tag = blockAddress(addr);
        AccessInfo info{addr, pc, setIndex(addr), tick};

        AccessOutcome outcome;
        outcome.set = info.set;

        // --- lookup --------------------------------------------------
        Line *line_set = &lines[static_cast<std::size_t>(info.set) * ways];
        for (std::uint32_t w = 0; w < ways; ++w) {
            if (line_set[w].valid && line_set[w].tag == tag) {
                outcome.hit = true;
                outcome.way = w;
                line_set[w].payload = payload;
                stats.recordHit();
                repl->onHit(info, w);
                if (tracker)
                    tracker->onHit(info.set, w, tick);
                return outcome;
            }
        }

        // --- miss ----------------------------------------------------
        if (repl->shouldBypass(info)) {
            outcome.bypassed = true;
            stats.recordMiss(true);
            return outcome;
        }
        stats.recordMiss(false);

        // Prefer an invalid frame.
        std::uint32_t victim = ways;
        for (std::uint32_t w = 0; w < ways; ++w) {
            if (!line_set[w].valid) {
                victim = w;
                break;
            }
        }
        if (victim == ways) {
            victim = repl->chooseVictim(info);
            GHRP_ASSERT(victim < ways);
            outcome.evicted = true;
            outcome.victimWasDead = repl->lastVictimWasDead();
            outcome.victimAddress = line_set[victim].tag << blockShift;
            ++stats.evictions;
            if (outcome.victimWasDead)
                ++stats.deadEvictions;
            repl->onEvict(info, victim, outcome.victimAddress);
            if (tracker)
                tracker->onEvict(info.set, victim, tick);
        }

        line_set[victim].valid = true;
        line_set[victim].tag = tag;
        line_set[victim].payload = payload;
        outcome.way = victim;
        repl->onFill(info, victim);
        if (tracker)
            tracker->onFill(info.set, victim, tick);
        return outcome;
    }

    /**
     * Prefetch @p addr: fill it if absent, without touching the demand
     * hit/miss statistics (a separate prefetchFills counter is kept).
     * The replacement policy sees a normal fill; predicted-dead
     * prefetches are still subject to bypass. Prefetch hits do not
     * update recency (the block was not demanded).
     *
     * @return true when a fill happened.
     */
    bool
    prefetch(Addr addr, Addr pc)
    {
        if (probe(addr))
            return false;
        const std::uint64_t tick = ++tickCount;
        const Addr tag = blockAddress(addr);
        AccessInfo info{addr, pc, setIndex(addr), tick};
        Line *line_set = &lines[static_cast<std::size_t>(info.set) * ways];

        if (repl->shouldBypass(info))
            return false;

        std::uint32_t victim = ways;
        for (std::uint32_t w = 0; w < ways; ++w) {
            if (!line_set[w].valid) {
                victim = w;
                break;
            }
        }
        if (victim == ways) {
            victim = repl->chooseVictim(info);
            GHRP_ASSERT(victim < ways);
            ++stats.evictions;
            if (repl->lastVictimWasDead())
                ++stats.deadEvictions;
            repl->onEvict(info, victim, line_set[victim].tag << blockShift);
            if (tracker)
                tracker->onEvict(info.set, victim, tick);
        }
        line_set[victim].valid = true;
        line_set[victim].tag = tag;
        line_set[victim].payload = Payload{};
        repl->onFill(info, victim);
        if (tracker)
            tracker->onFill(info.set, victim, tick);
        ++prefetchFillCount;
        return true;
    }

    /** Number of fills issued by prefetch(). */
    std::uint64_t prefetchFills() const { return prefetchFillCount; }

    /**
     * Probe without modifying any state (no recency update, no fill).
     * @return the way holding @p addr, if present.
     */
    std::optional<std::uint32_t>
    probe(Addr addr) const
    {
        const Addr tag = blockAddress(addr);
        const std::uint32_t set = setIndex(addr);
        const Line *line_set = &lines[static_cast<std::size_t>(set) * ways];
        for (std::uint32_t w = 0; w < ways; ++w)
            if (line_set[w].valid && line_set[w].tag == tag)
                return w;
        return std::nullopt;
    }

    /** Payload of the block holding @p addr (must be present). */
    const Payload &
    payloadAt(Addr addr, std::uint32_t way) const
    {
        const std::uint32_t set = setIndex(addr);
        const Line &line = lines[static_cast<std::size_t>(set) * ways + way];
        GHRP_ASSERT(line.valid);
        return line.payload;
    }

    /** Invalidate everything (keeps policy metadata sizing). */
    void
    invalidateAll()
    {
        for (Line &line : lines)
            line.valid = false;
    }

    /** Attach an efficiency tracker (not owned); nullptr detaches. */
    void attachTracker(stats::EfficiencyTracker *t) { tracker = t; }

    /** Reset hit/miss statistics (e.g. after warm-up). */
    void resetStats() { stats = stats::AccessStats{}; }

    const stats::AccessStats &accessStats() const { return stats; }
    const CacheConfig &config() const { return cfg; }
    ReplacementPolicy &policy() { return *repl; }
    const ReplacementPolicy &policy() const { return *repl; }
    std::uint32_t numSets() const { return sets; }
    std::uint32_t numWays() const { return ways; }
    std::uint64_t ticks() const { return tickCount; }

  private:
    struct Line
    {
        bool valid = false;
        Addr tag = 0;
        Payload payload{};
    };

    CacheConfig cfg;
    std::unique_ptr<ReplacementPolicy> repl;
    std::uint32_t sets;
    std::uint32_t ways;
    unsigned blockShift;
    std::vector<Line> lines;
    stats::AccessStats stats;
    stats::EfficiencyTracker *tracker = nullptr;
    std::uint64_t tickCount = 0;
    std::uint64_t prefetchFillCount = 0;
};

} // namespace ghrp::cache

#endif // GHRP_CACHE_CACHE_HH
